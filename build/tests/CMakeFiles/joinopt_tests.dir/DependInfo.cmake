
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/annotation_baselines_test.cc" "tests/CMakeFiles/joinopt_tests.dir/baselines/annotation_baselines_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/baselines/annotation_baselines_test.cc.o.d"
  "/root/repo/tests/baselines/spark_shuffle_join_test.cc" "tests/CMakeFiles/joinopt_tests.dir/baselines/spark_shuffle_join_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/baselines/spark_shuffle_join_test.cc.o.d"
  "/root/repo/tests/cache/policy_test.cc" "tests/CMakeFiles/joinopt_tests.dir/cache/policy_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/cache/policy_test.cc.o.d"
  "/root/repo/tests/cache/tiered_cache_test.cc" "tests/CMakeFiles/joinopt_tests.dir/cache/tiered_cache_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/cache/tiered_cache_test.cc.o.d"
  "/root/repo/tests/common/ewma_test.cc" "tests/CMakeFiles/joinopt_tests.dir/common/ewma_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/common/ewma_test.cc.o.d"
  "/root/repo/tests/common/hash_test.cc" "tests/CMakeFiles/joinopt_tests.dir/common/hash_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/common/hash_test.cc.o.d"
  "/root/repo/tests/common/histogram_test.cc" "tests/CMakeFiles/joinopt_tests.dir/common/histogram_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/common/histogram_test.cc.o.d"
  "/root/repo/tests/common/random_test.cc" "tests/CMakeFiles/joinopt_tests.dir/common/random_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/common/random_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/joinopt_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/units_test.cc" "tests/CMakeFiles/joinopt_tests.dir/common/units_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/common/units_test.cc.o.d"
  "/root/repo/tests/engine/async_api_test.cc" "tests/CMakeFiles/joinopt_tests.dir/engine/async_api_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/engine/async_api_test.cc.o.d"
  "/root/repo/tests/engine/batcher_test.cc" "tests/CMakeFiles/joinopt_tests.dir/engine/batcher_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/engine/batcher_test.cc.o.d"
  "/root/repo/tests/engine/extensions_test.cc" "tests/CMakeFiles/joinopt_tests.dir/engine/extensions_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/engine/extensions_test.cc.o.d"
  "/root/repo/tests/engine/invariants_test.cc" "tests/CMakeFiles/joinopt_tests.dir/engine/invariants_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/engine/invariants_test.cc.o.d"
  "/root/repo/tests/engine/join_job_test.cc" "tests/CMakeFiles/joinopt_tests.dir/engine/join_job_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/engine/join_job_test.cc.o.d"
  "/root/repo/tests/freq/lossy_counting_test.cc" "tests/CMakeFiles/joinopt_tests.dir/freq/lossy_counting_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/freq/lossy_counting_test.cc.o.d"
  "/root/repo/tests/freq/space_saving_test.cc" "tests/CMakeFiles/joinopt_tests.dir/freq/space_saving_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/freq/space_saving_test.cc.o.d"
  "/root/repo/tests/harness/report_test.cc" "tests/CMakeFiles/joinopt_tests.dir/harness/report_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/harness/report_test.cc.o.d"
  "/root/repo/tests/harness/runner_test.cc" "tests/CMakeFiles/joinopt_tests.dir/harness/runner_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/harness/runner_test.cc.o.d"
  "/root/repo/tests/harness/trace_test.cc" "tests/CMakeFiles/joinopt_tests.dir/harness/trace_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/harness/trace_test.cc.o.d"
  "/root/repo/tests/loadbalance/balancer_test.cc" "tests/CMakeFiles/joinopt_tests.dir/loadbalance/balancer_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/loadbalance/balancer_test.cc.o.d"
  "/root/repo/tests/loadbalance/gradient_descent_test.cc" "tests/CMakeFiles/joinopt_tests.dir/loadbalance/gradient_descent_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/loadbalance/gradient_descent_test.cc.o.d"
  "/root/repo/tests/loadbalance/load_model_test.cc" "tests/CMakeFiles/joinopt_tests.dir/loadbalance/load_model_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/loadbalance/load_model_test.cc.o.d"
  "/root/repo/tests/mapreduce/mapreduce_test.cc" "tests/CMakeFiles/joinopt_tests.dir/mapreduce/mapreduce_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/mapreduce/mapreduce_test.cc.o.d"
  "/root/repo/tests/sim/cluster_test.cc" "tests/CMakeFiles/joinopt_tests.dir/sim/cluster_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/sim/cluster_test.cc.o.d"
  "/root/repo/tests/sim/event_queue_test.cc" "tests/CMakeFiles/joinopt_tests.dir/sim/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/sim/event_queue_test.cc.o.d"
  "/root/repo/tests/sim/network_test.cc" "tests/CMakeFiles/joinopt_tests.dir/sim/network_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/sim/network_test.cc.o.d"
  "/root/repo/tests/sim/resource_test.cc" "tests/CMakeFiles/joinopt_tests.dir/sim/resource_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/sim/resource_test.cc.o.d"
  "/root/repo/tests/skirental/cost_model_test.cc" "tests/CMakeFiles/joinopt_tests.dir/skirental/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/skirental/cost_model_test.cc.o.d"
  "/root/repo/tests/skirental/decision_engine_test.cc" "tests/CMakeFiles/joinopt_tests.dir/skirental/decision_engine_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/skirental/decision_engine_test.cc.o.d"
  "/root/repo/tests/skirental/ski_rental_test.cc" "tests/CMakeFiles/joinopt_tests.dir/skirental/ski_rental_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/skirental/ski_rental_test.cc.o.d"
  "/root/repo/tests/store/log_store_test.cc" "tests/CMakeFiles/joinopt_tests.dir/store/log_store_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/store/log_store_test.cc.o.d"
  "/root/repo/tests/store/parallel_store_test.cc" "tests/CMakeFiles/joinopt_tests.dir/store/parallel_store_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/store/parallel_store_test.cc.o.d"
  "/root/repo/tests/store/region_balancer_test.cc" "tests/CMakeFiles/joinopt_tests.dir/store/region_balancer_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/store/region_balancer_test.cc.o.d"
  "/root/repo/tests/store/region_map_test.cc" "tests/CMakeFiles/joinopt_tests.dir/store/region_map_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/store/region_map_test.cc.o.d"
  "/root/repo/tests/store/storage_engine_test.cc" "tests/CMakeFiles/joinopt_tests.dir/store/storage_engine_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/store/storage_engine_test.cc.o.d"
  "/root/repo/tests/store/update_notifier_test.cc" "tests/CMakeFiles/joinopt_tests.dir/store/update_notifier_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/store/update_notifier_test.cc.o.d"
  "/root/repo/tests/workload/cloudburst_test.cc" "tests/CMakeFiles/joinopt_tests.dir/workload/cloudburst_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/workload/cloudburst_test.cc.o.d"
  "/root/repo/tests/workload/entity_annotation_test.cc" "tests/CMakeFiles/joinopt_tests.dir/workload/entity_annotation_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/workload/entity_annotation_test.cc.o.d"
  "/root/repo/tests/workload/synthetic_test.cc" "tests/CMakeFiles/joinopt_tests.dir/workload/synthetic_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/workload/synthetic_test.cc.o.d"
  "/root/repo/tests/workload/tpcds_lite_test.cc" "tests/CMakeFiles/joinopt_tests.dir/workload/tpcds_lite_test.cc.o" "gcc" "tests/CMakeFiles/joinopt_tests.dir/workload/tpcds_lite_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/joinopt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
