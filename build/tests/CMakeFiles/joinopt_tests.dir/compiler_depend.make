# Empty compiler generated dependencies file for joinopt_tests.
# This may be replaced when dependencies are built.
