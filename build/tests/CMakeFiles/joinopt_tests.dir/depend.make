# Empty dependencies file for joinopt_tests.
# This may be replaced when dependencies are built.
