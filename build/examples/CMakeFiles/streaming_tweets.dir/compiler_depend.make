# Empty compiler generated dependencies file for streaming_tweets.
# This may be replaced when dependencies are built.
