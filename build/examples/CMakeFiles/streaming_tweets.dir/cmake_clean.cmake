file(REMOVE_RECURSE
  "CMakeFiles/streaming_tweets.dir/streaming_tweets.cpp.o"
  "CMakeFiles/streaming_tweets.dir/streaming_tweets.cpp.o.d"
  "streaming_tweets"
  "streaming_tweets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_tweets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
