# Empty compiler generated dependencies file for multi_join_tpcds.
# This may be replaced when dependencies are built.
