file(REMOVE_RECURSE
  "CMakeFiles/multi_join_tpcds.dir/multi_join_tpcds.cpp.o"
  "CMakeFiles/multi_join_tpcds.dir/multi_join_tpcds.cpp.o.d"
  "multi_join_tpcds"
  "multi_join_tpcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_join_tpcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
