file(REMOVE_RECURSE
  "CMakeFiles/premap_api.dir/premap_api.cpp.o"
  "CMakeFiles/premap_api.dir/premap_api.cpp.o.d"
  "premap_api"
  "premap_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/premap_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
