# Empty dependencies file for premap_api.
# This may be replaced when dependencies are built.
