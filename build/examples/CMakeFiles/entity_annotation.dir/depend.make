# Empty dependencies file for entity_annotation.
# This may be replaced when dependencies are built.
