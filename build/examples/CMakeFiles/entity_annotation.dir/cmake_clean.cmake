file(REMOVE_RECURSE
  "CMakeFiles/entity_annotation.dir/entity_annotation.cpp.o"
  "CMakeFiles/entity_annotation.dir/entity_annotation.cpp.o.d"
  "entity_annotation"
  "entity_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entity_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
