
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/joinopt/baselines/annotation_baselines.cc" "src/CMakeFiles/joinopt.dir/joinopt/baselines/annotation_baselines.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/baselines/annotation_baselines.cc.o.d"
  "/root/repo/src/joinopt/baselines/spark_shuffle_join.cc" "src/CMakeFiles/joinopt.dir/joinopt/baselines/spark_shuffle_join.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/baselines/spark_shuffle_join.cc.o.d"
  "/root/repo/src/joinopt/cache/tiered_cache.cc" "src/CMakeFiles/joinopt.dir/joinopt/cache/tiered_cache.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/cache/tiered_cache.cc.o.d"
  "/root/repo/src/joinopt/common/histogram.cc" "src/CMakeFiles/joinopt.dir/joinopt/common/histogram.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/common/histogram.cc.o.d"
  "/root/repo/src/joinopt/common/logging.cc" "src/CMakeFiles/joinopt.dir/joinopt/common/logging.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/common/logging.cc.o.d"
  "/root/repo/src/joinopt/common/random.cc" "src/CMakeFiles/joinopt.dir/joinopt/common/random.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/common/random.cc.o.d"
  "/root/repo/src/joinopt/common/status.cc" "src/CMakeFiles/joinopt.dir/joinopt/common/status.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/common/status.cc.o.d"
  "/root/repo/src/joinopt/common/units.cc" "src/CMakeFiles/joinopt.dir/joinopt/common/units.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/common/units.cc.o.d"
  "/root/repo/src/joinopt/engine/async_api.cc" "src/CMakeFiles/joinopt.dir/joinopt/engine/async_api.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/engine/async_api.cc.o.d"
  "/root/repo/src/joinopt/engine/join_job.cc" "src/CMakeFiles/joinopt.dir/joinopt/engine/join_job.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/engine/join_job.cc.o.d"
  "/root/repo/src/joinopt/engine/types.cc" "src/CMakeFiles/joinopt.dir/joinopt/engine/types.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/engine/types.cc.o.d"
  "/root/repo/src/joinopt/freq/lossy_counting.cc" "src/CMakeFiles/joinopt.dir/joinopt/freq/lossy_counting.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/freq/lossy_counting.cc.o.d"
  "/root/repo/src/joinopt/freq/space_saving.cc" "src/CMakeFiles/joinopt.dir/joinopt/freq/space_saving.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/freq/space_saving.cc.o.d"
  "/root/repo/src/joinopt/harness/report.cc" "src/CMakeFiles/joinopt.dir/joinopt/harness/report.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/harness/report.cc.o.d"
  "/root/repo/src/joinopt/harness/runner.cc" "src/CMakeFiles/joinopt.dir/joinopt/harness/runner.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/harness/runner.cc.o.d"
  "/root/repo/src/joinopt/harness/trace.cc" "src/CMakeFiles/joinopt.dir/joinopt/harness/trace.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/harness/trace.cc.o.d"
  "/root/repo/src/joinopt/loadbalance/balancer.cc" "src/CMakeFiles/joinopt.dir/joinopt/loadbalance/balancer.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/loadbalance/balancer.cc.o.d"
  "/root/repo/src/joinopt/loadbalance/gradient_descent.cc" "src/CMakeFiles/joinopt.dir/joinopt/loadbalance/gradient_descent.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/loadbalance/gradient_descent.cc.o.d"
  "/root/repo/src/joinopt/loadbalance/load_model.cc" "src/CMakeFiles/joinopt.dir/joinopt/loadbalance/load_model.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/loadbalance/load_model.cc.o.d"
  "/root/repo/src/joinopt/mapreduce/mapreduce.cc" "src/CMakeFiles/joinopt.dir/joinopt/mapreduce/mapreduce.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/mapreduce/mapreduce.cc.o.d"
  "/root/repo/src/joinopt/sim/cluster.cc" "src/CMakeFiles/joinopt.dir/joinopt/sim/cluster.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/sim/cluster.cc.o.d"
  "/root/repo/src/joinopt/sim/event_queue.cc" "src/CMakeFiles/joinopt.dir/joinopt/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/sim/event_queue.cc.o.d"
  "/root/repo/src/joinopt/sim/network.cc" "src/CMakeFiles/joinopt.dir/joinopt/sim/network.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/sim/network.cc.o.d"
  "/root/repo/src/joinopt/sim/resource.cc" "src/CMakeFiles/joinopt.dir/joinopt/sim/resource.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/sim/resource.cc.o.d"
  "/root/repo/src/joinopt/skirental/cost_model.cc" "src/CMakeFiles/joinopt.dir/joinopt/skirental/cost_model.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/skirental/cost_model.cc.o.d"
  "/root/repo/src/joinopt/skirental/decision_engine.cc" "src/CMakeFiles/joinopt.dir/joinopt/skirental/decision_engine.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/skirental/decision_engine.cc.o.d"
  "/root/repo/src/joinopt/skirental/ski_rental.cc" "src/CMakeFiles/joinopt.dir/joinopt/skirental/ski_rental.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/skirental/ski_rental.cc.o.d"
  "/root/repo/src/joinopt/store/log_store.cc" "src/CMakeFiles/joinopt.dir/joinopt/store/log_store.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/store/log_store.cc.o.d"
  "/root/repo/src/joinopt/store/parallel_store.cc" "src/CMakeFiles/joinopt.dir/joinopt/store/parallel_store.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/store/parallel_store.cc.o.d"
  "/root/repo/src/joinopt/store/region_balancer.cc" "src/CMakeFiles/joinopt.dir/joinopt/store/region_balancer.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/store/region_balancer.cc.o.d"
  "/root/repo/src/joinopt/store/region_map.cc" "src/CMakeFiles/joinopt.dir/joinopt/store/region_map.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/store/region_map.cc.o.d"
  "/root/repo/src/joinopt/store/storage_engine.cc" "src/CMakeFiles/joinopt.dir/joinopt/store/storage_engine.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/store/storage_engine.cc.o.d"
  "/root/repo/src/joinopt/stream/muppet.cc" "src/CMakeFiles/joinopt.dir/joinopt/stream/muppet.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/stream/muppet.cc.o.d"
  "/root/repo/src/joinopt/workload/cloudburst.cc" "src/CMakeFiles/joinopt.dir/joinopt/workload/cloudburst.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/workload/cloudburst.cc.o.d"
  "/root/repo/src/joinopt/workload/entity_annotation.cc" "src/CMakeFiles/joinopt.dir/joinopt/workload/entity_annotation.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/workload/entity_annotation.cc.o.d"
  "/root/repo/src/joinopt/workload/synthetic.cc" "src/CMakeFiles/joinopt.dir/joinopt/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/workload/synthetic.cc.o.d"
  "/root/repo/src/joinopt/workload/tpcds_lite.cc" "src/CMakeFiles/joinopt.dir/joinopt/workload/tpcds_lite.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/joinopt/workload/tpcds_lite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
