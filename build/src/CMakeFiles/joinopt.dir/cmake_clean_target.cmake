file(REMOVE_RECURSE
  "libjoinopt.a"
)
