# Empty dependencies file for fig8_hadoop_synthetic.
# This may be replaced when dependencies are built.
