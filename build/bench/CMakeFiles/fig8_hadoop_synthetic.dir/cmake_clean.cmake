file(REMOVE_RECURSE
  "CMakeFiles/fig8_hadoop_synthetic.dir/fig8_hadoop_synthetic.cc.o"
  "CMakeFiles/fig8_hadoop_synthetic.dir/fig8_hadoop_synthetic.cc.o.d"
  "fig8_hadoop_synthetic"
  "fig8_hadoop_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hadoop_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
