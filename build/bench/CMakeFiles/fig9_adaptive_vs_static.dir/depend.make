# Empty dependencies file for fig9_adaptive_vs_static.
# This may be replaced when dependencies are built.
