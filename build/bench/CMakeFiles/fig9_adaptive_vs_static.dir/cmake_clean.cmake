file(REMOVE_RECURSE
  "CMakeFiles/fig9_adaptive_vs_static.dir/fig9_adaptive_vs_static.cc.o"
  "CMakeFiles/fig9_adaptive_vs_static.dir/fig9_adaptive_vs_static.cc.o.d"
  "fig9_adaptive_vs_static"
  "fig9_adaptive_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_adaptive_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
