# Empty dependencies file for fig11_muppet_synthetic.
# This may be replaced when dependencies are built.
