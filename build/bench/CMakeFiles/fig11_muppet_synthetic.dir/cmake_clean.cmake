file(REMOVE_RECURSE
  "CMakeFiles/fig11_muppet_synthetic.dir/fig11_muppet_synthetic.cc.o"
  "CMakeFiles/fig11_muppet_synthetic.dir/fig11_muppet_synthetic.cc.o.d"
  "fig11_muppet_synthetic"
  "fig11_muppet_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_muppet_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
