file(REMOVE_RECURSE
  "CMakeFiles/fig5_clueweb_hadoop.dir/fig5_clueweb_hadoop.cc.o"
  "CMakeFiles/fig5_clueweb_hadoop.dir/fig5_clueweb_hadoop.cc.o.d"
  "fig5_clueweb_hadoop"
  "fig5_clueweb_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_clueweb_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
