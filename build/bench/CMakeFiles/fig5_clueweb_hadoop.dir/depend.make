# Empty dependencies file for fig5_clueweb_hadoop.
# This may be replaced when dependencies are built.
