# Empty compiler generated dependencies file for appendix_a_cloudburst.
# This may be replaced when dependencies are built.
