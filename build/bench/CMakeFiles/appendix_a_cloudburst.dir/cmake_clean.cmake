file(REMOVE_RECURSE
  "CMakeFiles/appendix_a_cloudburst.dir/appendix_a_cloudburst.cc.o"
  "CMakeFiles/appendix_a_cloudburst.dir/appendix_a_cloudburst.cc.o.d"
  "appendix_a_cloudburst"
  "appendix_a_cloudburst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_a_cloudburst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
