# Empty compiler generated dependencies file for fig7_tpcds_spark.
# This may be replaced when dependencies are built.
