file(REMOVE_RECURSE
  "CMakeFiles/fig7_tpcds_spark.dir/fig7_tpcds_spark.cc.o"
  "CMakeFiles/fig7_tpcds_spark.dir/fig7_tpcds_spark.cc.o.d"
  "fig7_tpcds_spark"
  "fig7_tpcds_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tpcds_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
