file(REMOVE_RECURSE
  "CMakeFiles/fig6_twitter_muppet.dir/fig6_twitter_muppet.cc.o"
  "CMakeFiles/fig6_twitter_muppet.dir/fig6_twitter_muppet.cc.o.d"
  "fig6_twitter_muppet"
  "fig6_twitter_muppet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_twitter_muppet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
