# Empty compiler generated dependencies file for fig6_twitter_muppet.
# This may be replaced when dependencies are built.
