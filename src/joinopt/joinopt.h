// Umbrella header: the joinopt public API.
//
// joinopt is a reproduction of "Runtime Optimization of Join Location in
// Parallel Data Management Systems" (Chandra & Sudarshan, VLDB 2017): a
// framework that joins streaming/stored input with data indexed in a
// parallel store, deciding **per key at runtime** whether to fetch-and-cache
// the stored value at the compute node (map-side) or ship the tuple to the
// data node (reduce-side), using an extended ski-rental policy plus
// compute/data-node load balancing.
//
// Typical use (see examples/):
//   1. Build a Cluster (simulated nodes) and load ParallelStores.
//   2. Generate or supply per-compute-node InputTuple streams.
//   3. Run a JoinJob under a Strategy (kFO = all optimizations).
//   4. Read the JobResult metrics, or use harness/ to sweep configurations.
#ifndef JOINOPT_JOINOPT_H_
#define JOINOPT_JOINOPT_H_

#include "joinopt/common/ewma.h"
#include "joinopt/common/hash.h"
#include "joinopt/common/histogram.h"
#include "joinopt/common/logging.h"
#include "joinopt/common/random.h"
#include "joinopt/common/status.h"
#include "joinopt/common/units.h"

#include "joinopt/sim/cluster.h"
#include "joinopt/sim/event_queue.h"
#include "joinopt/sim/network.h"
#include "joinopt/sim/resource.h"

#include "joinopt/store/parallel_store.h"
#include "joinopt/store/region_map.h"
#include "joinopt/store/storage_engine.h"
#include "joinopt/store/log_store.h"
#include "joinopt/store/region_balancer.h"
#include "joinopt/store/update_notifier.h"

#include "joinopt/freq/exact_counter.h"
#include "joinopt/freq/lossy_counting.h"
#include "joinopt/freq/space_saving.h"

#include "joinopt/cache/policy.h"
#include "joinopt/cache/tiered_cache.h"

#include "joinopt/skirental/cost_model.h"
#include "joinopt/skirental/decision_engine.h"
#include "joinopt/skirental/ski_rental.h"

#include "joinopt/loadbalance/balancer.h"
#include "joinopt/loadbalance/gradient_descent.h"
#include "joinopt/loadbalance/load_model.h"
#include "joinopt/loadbalance/stats.h"

#include "joinopt/engine/join_job.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/engine/types.h"

#include "joinopt/fault/fault_injector.h"
#include "joinopt/fault/fault_schedule.h"

#include "joinopt/mapreduce/mapreduce.h"
#include "joinopt/stream/muppet.h"

#include "joinopt/baselines/annotation_baselines.h"
#include "joinopt/baselines/spark_shuffle_join.h"

#include "joinopt/workload/entity_annotation.h"
#include "joinopt/workload/synthetic.h"
#include "joinopt/workload/cloudburst.h"
#include "joinopt/workload/tpcds_lite.h"
#include "joinopt/workload/workload.h"

#include "joinopt/harness/report.h"
#include "joinopt/harness/runner.h"
#include "joinopt/harness/trace.h"

#endif  // JOINOPT_JOINOPT_H_
