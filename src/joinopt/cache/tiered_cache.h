// Two-tier (memory + disk) cache with benefit-based admission and eviction —
// the mCache / dCache pair of Section 4.2.2 and Appendix B. The cache stores
// item *metadata* (size, benefit, version); actual payloads live with the
// caller (in a real deployment, Ehcache-style byte storage; in the simulator,
// synthesized values).
//
// Admission implements both variants of condCacheInMemory:
//  * Algorithm 2 (uniform item size): evict the single minimum-benefit
//    memory item if the newcomer's benefit exceeds it.
//  * Algorithm 3 (variable sizes): gather the least-benefit items whose
//    eviction frees enough space; admit iff the newcomer's benefit beats
//    their benefit sum; then keep back the highest-benefit gathered items
//    that still fit.
// Memory evictions demote to the disk tier; disk evictions (when the disk
// tier has finite capacity) discard by benefit-to-size ratio, per Appendix B.
//
// Storage (DESIGN.md §14): item metadata lives in an arena-backed FlatMap
// (6-byte probe slots + 24-byte entries), and the two benefit orders are
// IntrusiveMinHeaps embedded in those entries — each item carries its heap
// position inline (top bit encodes the tier), so benefit updates are one
// O(log n) sift and eviction picks are O(1), with zero allocations. This
// replaces one unordered_map node (~56 B overhead) plus one multimap
// rb-tree node (~64 B) per item. Heap order is (benefit, seq) where seq is
// refreshed on every (re)ordering, reproducing the old multimap's
// FIFO-among-equal-benefits semantics exactly (seq wraps after 2^32
// reorderings; the tie-break is momentarily scrambled, nothing else).
//
// Thread safety: every public method locks the cache's internal mutex
// (rank kTieredCache, a leaf under the owning invoker shard's lock), so
// the cache is safe against the cross-thread callers it now has — the
// subscriber re-sync path and the reactor backend's Notify flow control
// both reach InvalidateMatching/Invalidate from non-shard threads. The
// BenefitPolicy is consulted under the lock and must not call back in.
// The arena and both heaps are guarded by the same mutex.
#ifndef JOINOPT_CACHE_TIERED_CACHE_H_
#define JOINOPT_CACHE_TIERED_CACHE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "joinopt/cache/policy.h"
#include "joinopt/common/arena.h"
#include "joinopt/common/flat_map.h"
#include "joinopt/common/hash.h"
#include "joinopt/common/intrusive_heap.h"
#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/sync.h"

namespace joinopt {

/// Where a lookup found (or would place) an item.
enum class CacheTier { kMemory, kDisk, kNone };

struct TieredCacheConfig {
  /// Memory-tier capacity in bytes (the paper limits this to 100 MB in the
  /// experiments to force tier pressure).
  double memory_capacity_bytes = 100.0 * 1024 * 1024;
  /// Disk-tier capacity in bytes; infinity = unbounded (the paper's
  /// default assumption).
  double disk_capacity_bytes = std::numeric_limits<double>::infinity();
  /// Use Algorithm 2 (uniform sizes) instead of Algorithm 3. Only valid if
  /// every inserted item has the same size.
  bool uniform_item_size = false;
  /// Expected resident item count: pre-reserves the metadata table and
  /// both eviction heaps so warmup sees no rehash storm. 0 = grow on
  /// demand.
  size_t expected_items = 0;
};

struct TieredCacheStats {
  int64_t memory_hits = 0;
  int64_t disk_hits = 0;
  int64_t misses = 0;
  int64_t memory_insertions = 0;
  int64_t disk_insertions = 0;
  int64_t demotions = 0;   // memory -> disk
  int64_t promotions = 0;  // disk -> memory
  int64_t discards = 0;    // evicted from disk entirely
  int64_t invalidations = 0;
  int64_t admission_rejections = 0;
  /// Invalidations forced by an epoch-gap re-sync (a disconnect may have
  /// swallowed update notifications for these keys). Tracked apart from
  /// ordinary invalidations so tests can assert a re-sync touched only the
  /// gapped regions.
  int64_t resync_invalidations = 0;
};

/// Accumulates shard-local eviction/hit accounting into a merged view
/// (each ParallelInvoker shard owns one cache; totals are read-side).
TieredCacheStats& operator+=(TieredCacheStats& lhs,
                             const TieredCacheStats& rhs);

class TieredCache {
 public:
  /// The cache consults (but does not own) `policy` for eviction aging.
  TieredCache(const TieredCacheConfig& config, BenefitPolicy* policy);

  /// Looks `key` up, recording hit/miss stats. Does not change residency.
  CacheTier Lookup(Key key);

  /// Peeks without touching stats.
  CacheTier Peek(Key key) const;

  /// Re-scores a resident item after an access (Algorithm 1's
  /// updateBenefit for cached items).
  void UpdateBenefit(Key key, double benefit);

  /// condCacheInMemory: decides whether an item of the given size/benefit
  /// belongs in the memory tier; when `insert` is true and the decision is
  /// positive, performs the insertion (evicting/demoting as needed). For an
  /// item currently in the disk tier this acts as conditional promotion.
  /// Returns the decision.
  bool CondCacheInMemory(Key key, double size, double benefit, bool insert);

  /// Inserts into the disk tier directly (Algorithm 1 line 19: items bought
  /// under the disk-cache ski-rental condition).
  void InsertDisk(Key key, double size, double benefit);

  /// Drops `key` from whatever tier holds it (update notification,
  /// Section 4.2.3).
  void Invalidate(Key key);

  /// Epoch-gap re-sync (Section 4.2.3 after a disconnect): drops every
  /// resident key matching `pred` — typically "key hashes into a region
  /// whose epoch/sequence advanced while we were offline" — and returns
  /// the dropped keys so the caller can purge payloads and per-key
  /// counters too. Counted as resync_invalidations, not invalidations.
  std::vector<Key> InvalidateMatching(const std::function<bool(Key)>& pred);

  /// Size in bytes of a resident item; 0 if absent.
  double ItemSize(Key key) const;

  double memory_used() const {
    MutexLock lock(mu_);
    return memory_used_;
  }
  double disk_used() const {
    MutexLock lock(mu_);
    return disk_used_;
  }
  size_t memory_items() const {
    MutexLock lock(mu_);
    return memory_order_.size();
  }
  size_t disk_items() const {
    MutexLock lock(mu_);
    return disk_order_.size();
  }
  /// Minimum benefit currently held in the memory tier (+inf when empty).
  double MemoryMinBenefit() const;

  /// A consistent snapshot (by value: the counters move under the lock).
  TieredCacheStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }
  const TieredCacheConfig& config() const { return config_; }

  /// Accounted bytes of per-item storage (probe table + entry slabs +
  /// the two heap arrays).
  size_t AccountedBytes() const;

 private:
  /// Top bit of heap_pos: set while the item sits in the disk heap.
  static constexpr uint32_t kDiskBit = 0x80000000u;
  static constexpr uint32_t kNoPos = 0xFFFFFFFFu;

  struct Item {
    float size;
    float benefit;
    uint32_t heap_pos;  // position | (kDiskBit if disk tier)
    uint32_t seq;       // FIFO tie-break among equal benefits
  };
  using Table = FlatMap<Item>;
  using Handle = Table::Handle;

  /// Binds one eviction heap to the item table: order by (benefit, seq),
  /// store positions inline tagged with the heap's tier bit.
  struct OrderAdapter {
    const Table* table;
    uint32_t tier_bit;
    bool Less(uint32_t a, uint32_t b) const {
      const Item& x = table->EntryAt(a).value;
      const Item& y = table->EntryAt(b).value;
      if (x.benefit != y.benefit) return x.benefit < y.benefit;
      return x.seq < y.seq;
    }
    void SetPos(uint32_t handle, uint32_t pos) const {
      const_cast<Table*>(table)->EntryAt(handle).value.heap_pos =
          pos == kNoPos ? kNoPos : (pos | tier_bit);
    }
  };
  using OrderHeap = IntrusiveMinHeap<OrderAdapter>;

  CacheTier TierOf(const Item& item) const {
    return (item.heap_pos & kDiskBit) != 0 ? CacheTier::kDisk
                                           : CacheTier::kMemory;
  }
  OrderHeap& HeapOf(const Item& item) JOINOPT_REQUIRES(mu_) {
    return TierOf(item) == CacheTier::kMemory ? memory_order_ : disk_order_;
  }
  uint32_t PosOf(const Item& item) const { return item.heap_pos & ~kDiskBit; }

  CacheTier PeekLocked(Key key) const JOINOPT_REQUIRES(mu_);
  void UpdateBenefitLocked(Handle h, double benefit) JOINOPT_REQUIRES(mu_);
  void InvalidateLocked(Key key) JOINOPT_REQUIRES(mu_);

  bool CondCacheUniform(Key key, double size, double benefit, bool insert)
      JOINOPT_REQUIRES(mu_);
  bool CondCacheVariable(Key key, double size, double benefit, bool insert)
      JOINOPT_REQUIRES(mu_);

  /// Moves an existing memory item to the disk tier.
  void Demote(Handle h) JOINOPT_REQUIRES(mu_);
  /// Removes an item from the disk tier entirely.
  void DiscardFromDisk(Handle h) JOINOPT_REQUIRES(mu_);
  /// Frees disk space for `size` bytes by discarding lowest benefit/size
  /// ratio items.
  void EnsureDiskSpace(double size) JOINOPT_REQUIRES(mu_);
  /// Inserts a brand-new or promoted item into memory (space must exist).
  void PlaceInMemory(Key key, double size, double benefit)
      JOINOPT_REQUIRES(mu_);

  TieredCacheConfig config_;
  BenefitPolicy* policy_;  ///< consulted under mu_; must not reenter
  mutable Mutex mu_{lock_rank::kTieredCache, "TieredCache::mu_"};
  // arena_ is declared before the table so it is destroyed after it.
  Arena arena_ JOINOPT_GUARDED_BY(mu_);
  Table items_ JOINOPT_GUARDED_BY(mu_);
  OrderHeap memory_order_ JOINOPT_GUARDED_BY(mu_);
  OrderHeap disk_order_ JOINOPT_GUARDED_BY(mu_);
  uint32_t next_seq_ JOINOPT_GUARDED_BY(mu_) = 0;
  double memory_used_ JOINOPT_GUARDED_BY(mu_) = 0.0;
  double disk_used_ JOINOPT_GUARDED_BY(mu_) = 0.0;
  TieredCacheStats stats_ JOINOPT_GUARDED_BY(mu_);
};

}  // namespace joinopt

#endif  // JOINOPT_CACHE_TIERED_CACHE_H_
