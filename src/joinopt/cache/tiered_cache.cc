#include "joinopt/cache/tiered_cache.h"

#include <algorithm>
#include <cassert>

namespace joinopt {

TieredCache::TieredCache(const TieredCacheConfig& config,
                         BenefitPolicy* policy)
    : config_(config), policy_(policy) {
  assert(policy != nullptr);
  assert(config.memory_capacity_bytes >= 0.0);
}

CacheTier TieredCache::Lookup(Key key) {
  MutexLock lock(mu_);
  CacheTier tier = PeekLocked(key);
  switch (tier) {
    case CacheTier::kMemory:
      ++stats_.memory_hits;
      break;
    case CacheTier::kDisk:
      ++stats_.disk_hits;
      break;
    case CacheTier::kNone:
      ++stats_.misses;
      break;
  }
  return tier;
}

CacheTier TieredCache::Peek(Key key) const {
  MutexLock lock(mu_);
  return PeekLocked(key);
}

CacheTier TieredCache::PeekLocked(Key key) const {
  auto it = items_.find(key);
  return it == items_.end() ? CacheTier::kNone : it->second.tier;
}

void TieredCache::UpdateBenefit(Key key, double benefit) {
  MutexLock lock(mu_);
  UpdateBenefitLocked(key, benefit);
}

void TieredCache::UpdateBenefitLocked(Key key, double benefit) {
  auto it = items_.find(key);
  if (it == items_.end()) return;
  Item& item = it->second;
  OrderMap& order =
      item.tier == CacheTier::kMemory ? memory_order_ : disk_order_;
  order.erase(item.order_it);
  item.benefit = benefit;
  item.order_it = order.emplace(benefit, key);
}

bool TieredCache::CondCacheInMemory(Key key, double size, double benefit,
                                    bool insert) {
  MutexLock lock(mu_);
  auto it = items_.find(key);
  if (it != items_.end() && it->second.tier == CacheTier::kMemory) {
    if (insert) UpdateBenefitLocked(key, benefit);
    return true;  // already resident in memory
  }
  bool decision = config_.uniform_item_size
                      ? CondCacheUniform(key, size, benefit, insert)
                      : CondCacheVariable(key, size, benefit, insert);
  if (!decision) ++stats_.admission_rejections;
  return decision;
}

bool TieredCache::CondCacheUniform(Key key, double size, double benefit,
                                   bool insert) {
  // Algorithm 2: free space, or beat the single minimum-benefit item.
  if (memory_used_ + size <= config_.memory_capacity_bytes) {
    if (insert) PlaceInMemory(key, size, benefit);
    return true;
  }
  if (memory_order_.empty()) return false;  // item larger than the tier
  double min_benefit = memory_order_.begin()->first;
  if (benefit <= min_benefit) return false;
  if (insert) {
    Key victim = memory_order_.begin()->second;
    policy_->OnEvict(min_benefit);
    Demote(victim);
    PlaceInMemory(key, size, benefit);
  }
  return true;
}

bool TieredCache::CondCacheVariable(Key key, double size, double benefit,
                                    bool insert) {
  if (size > config_.memory_capacity_bytes) return false;
  if (memory_used_ + size <= config_.memory_capacity_bytes) {
    if (insert) PlaceInMemory(key, size, benefit);
    return true;
  }
  // Algorithm 3: gather least-benefit items until eviction would free
  // enough space.
  double free_mem = config_.memory_capacity_bytes - memory_used_;
  double gathered = 0.0;
  double benefit_sum = 0.0;
  std::vector<Key> prelim;
  for (const auto& [b, k] : memory_order_) {
    if (free_mem + gathered >= size) break;
    prelim.push_back(k);
    gathered += items_.at(k).size;
    benefit_sum += b;
  }
  if (free_mem + gathered < size) return false;  // cannot make space
  // Strictly-greater admission (Algorithm 3 writes >=; we reject ties like
  // Algorithm 2 does, so equal-benefit items cannot thrash each other).
  if (benefit <= benefit_sum) return false;
  if (!insert) return true;
  // Keep back the highest-benefit gathered items that still fit: walk the
  // prelim list from most to least valuable, retaining whatever fits into
  // the slack left after the newcomer is placed.
  double slack = free_mem + gathered - size;
  std::vector<Key> evict;
  for (auto rit = prelim.rbegin(); rit != prelim.rend(); ++rit) {
    double isz = items_.at(*rit).size;
    if (isz <= slack) {
      slack -= isz;  // retained
    } else {
      evict.push_back(*rit);
    }
  }
  for (Key victim : evict) {
    policy_->OnEvict(items_.at(victim).benefit);
    Demote(victim);
  }
  PlaceInMemory(key, size, benefit);
  return true;
}

void TieredCache::PlaceInMemory(Key key, double size, double benefit) {
  auto it = items_.find(key);
  if (it != items_.end()) {
    // Promotion from disk: remove the disk-tier residency first. (Appendix B:
    // items moved to mCache are removed from dCache to save space.)
    assert(it->second.tier == CacheTier::kDisk);
    disk_order_.erase(it->second.order_it);
    disk_used_ -= it->second.size;
    items_.erase(it);
    ++stats_.promotions;
  }
  Item item{size, benefit, CacheTier::kMemory, {}};
  auto [ins, ok] = items_.emplace(key, item);
  assert(ok);
  ins->second.order_it = memory_order_.emplace(benefit, key);
  memory_used_ += size;
  ++stats_.memory_insertions;
  assert(memory_used_ <= config_.memory_capacity_bytes + 1e-6);
}

void TieredCache::Demote(Key key) {
  auto it = items_.find(key);
  assert(it != items_.end() && it->second.tier == CacheTier::kMemory);
  Item& item = it->second;
  memory_order_.erase(item.order_it);
  memory_used_ -= item.size;
  EnsureDiskSpace(item.size);
  item.tier = CacheTier::kDisk;
  item.order_it = disk_order_.emplace(item.benefit, key);
  disk_used_ += item.size;
  ++stats_.demotions;
}

void TieredCache::InsertDisk(Key key, double size, double benefit) {
  MutexLock lock(mu_);
  auto it = items_.find(key);
  if (it != items_.end()) {
    UpdateBenefitLocked(key, benefit);
    return;
  }
  if (size > config_.disk_capacity_bytes) return;
  EnsureDiskSpace(size);
  Item item{size, benefit, CacheTier::kDisk, {}};
  auto [ins, ok] = items_.emplace(key, item);
  assert(ok);
  ins->second.order_it = disk_order_.emplace(benefit, key);
  disk_used_ += size;
  ++stats_.disk_insertions;
}

void TieredCache::EnsureDiskSpace(double size) {
  if (disk_used_ + size <= config_.disk_capacity_bytes) return;
  // Discard by lowest benefit-to-size ratio (Appendix B). The order map is
  // keyed by benefit, so scan it for the best ratio victims; the map is
  // bounded by the disk tier's item count, and finite disk tiers are an
  // ablation configuration, so the linear scan is acceptable.
  while (disk_used_ + size > config_.disk_capacity_bytes &&
         !disk_order_.empty()) {
    auto best = disk_order_.begin();
    double best_ratio = best->first / items_.at(best->second).size;
    for (auto it2 = disk_order_.begin(); it2 != disk_order_.end(); ++it2) {
      double ratio = it2->first / items_.at(it2->second).size;
      if (ratio < best_ratio) {
        best = it2;
        best_ratio = ratio;
      }
    }
    policy_->OnEvict(best->first);
    DiscardFromDisk(best->second);
  }
}

void TieredCache::DiscardFromDisk(Key key) {
  auto it = items_.find(key);
  assert(it != items_.end() && it->second.tier == CacheTier::kDisk);
  disk_order_.erase(it->second.order_it);
  disk_used_ -= it->second.size;
  items_.erase(it);
  ++stats_.discards;
}

void TieredCache::Invalidate(Key key) {
  MutexLock lock(mu_);
  InvalidateLocked(key);
}

void TieredCache::InvalidateLocked(Key key) {
  auto it = items_.find(key);
  if (it == items_.end()) return;
  Item& item = it->second;
  if (item.tier == CacheTier::kMemory) {
    memory_order_.erase(item.order_it);
    memory_used_ -= item.size;
  } else {
    disk_order_.erase(item.order_it);
    disk_used_ -= item.size;
  }
  items_.erase(it);
  ++stats_.invalidations;
}

std::vector<Key> TieredCache::InvalidateMatching(
    const std::function<bool(Key)>& pred) {
  MutexLock lock(mu_);
  std::vector<Key> dropped;
  for (const auto& [key, item] : items_) {
    if (pred(key)) dropped.push_back(key);
  }
  for (Key key : dropped) {
    InvalidateLocked(key);
    // InvalidateLocked counted it as an ordinary invalidation; reclassify.
    --stats_.invalidations;
    ++stats_.resync_invalidations;
  }
  return dropped;
}

double TieredCache::ItemSize(Key key) const {
  MutexLock lock(mu_);
  auto it = items_.find(key);
  return it == items_.end() ? 0.0 : it->second.size;
}

double TieredCache::MemoryMinBenefit() const {
  MutexLock lock(mu_);
  return memory_order_.empty() ? std::numeric_limits<double>::infinity()
                               : memory_order_.begin()->first;
}

TieredCacheStats& operator+=(TieredCacheStats& lhs,
                             const TieredCacheStats& rhs) {
  lhs.memory_hits += rhs.memory_hits;
  lhs.disk_hits += rhs.disk_hits;
  lhs.misses += rhs.misses;
  lhs.memory_insertions += rhs.memory_insertions;
  lhs.disk_insertions += rhs.disk_insertions;
  lhs.demotions += rhs.demotions;
  lhs.promotions += rhs.promotions;
  lhs.discards += rhs.discards;
  lhs.invalidations += rhs.invalidations;
  lhs.admission_rejections += rhs.admission_rejections;
  lhs.resync_invalidations += rhs.resync_invalidations;
  return lhs;
}

}  // namespace joinopt
