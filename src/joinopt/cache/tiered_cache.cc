#include "joinopt/cache/tiered_cache.h"

#include <algorithm>
#include <cassert>

namespace joinopt {

TieredCache::TieredCache(const TieredCacheConfig& config,
                         BenefitPolicy* policy)
    : config_(config),
      policy_(policy),
      items_(&arena_, /*seed=*/0x51ab3e7du),
      memory_order_(OrderAdapter{&items_, 0}),
      disk_order_(OrderAdapter{&items_, kDiskBit}) {
  assert(policy != nullptr);
  assert(config.memory_capacity_bytes >= 0.0);
  if (config.expected_items > 0) {
    items_.Reserve(config.expected_items);
    memory_order_.Reserve(config.expected_items);
    disk_order_.Reserve(config.expected_items);
  }
}

CacheTier TieredCache::Lookup(Key key) {
  MutexLock lock(mu_);
  CacheTier tier = PeekLocked(key);
  switch (tier) {
    case CacheTier::kMemory:
      ++stats_.memory_hits;
      break;
    case CacheTier::kDisk:
      ++stats_.disk_hits;
      break;
    case CacheTier::kNone:
      ++stats_.misses;
      break;
  }
  return tier;
}

CacheTier TieredCache::Peek(Key key) const {
  MutexLock lock(mu_);
  return PeekLocked(key);
}

CacheTier TieredCache::PeekLocked(Key key) const {
  const Item* item = items_.Find(key);
  return item == nullptr ? CacheTier::kNone : TierOf(*item);
}

void TieredCache::UpdateBenefit(Key key, double benefit) {
  MutexLock lock(mu_);
  Handle h = items_.FindHandle(key);
  if (h != Table::kNoHandle) UpdateBenefitLocked(h, benefit);
}

void TieredCache::UpdateBenefitLocked(Handle h, double benefit) {
  Item& item = items_.EntryAt(h).value;
  item.benefit = static_cast<float>(benefit);
  // Fresh seq = the old multimap's erase + emplace-at-upper-bound: the
  // re-scored item moves behind its equal-benefit peers.
  item.seq = next_seq_++;
  HeapOf(item).Update(PosOf(item));
}

bool TieredCache::CondCacheInMemory(Key key, double size, double benefit,
                                    bool insert) {
  MutexLock lock(mu_);
  // Round through the stored precision up front so admission arithmetic
  // and the stored entries agree: capacity checks must see the same size
  // later subtracted on eviction, and equal-benefit ties (which admission
  // rejects) must stay ties against float-stored residents.
  size = static_cast<double>(static_cast<float>(size));
  benefit = static_cast<double>(static_cast<float>(benefit));
  Handle h = items_.FindHandle(key);
  if (h != Table::kNoHandle &&
      TierOf(items_.EntryAt(h).value) == CacheTier::kMemory) {
    if (insert) UpdateBenefitLocked(h, benefit);
    return true;  // already resident in memory
  }
  bool decision = config_.uniform_item_size
                      ? CondCacheUniform(key, size, benefit, insert)
                      : CondCacheVariable(key, size, benefit, insert);
  if (!decision) ++stats_.admission_rejections;
  return decision;
}

bool TieredCache::CondCacheUniform(Key key, double size, double benefit,
                                   bool insert) {
  // Algorithm 2: free space, or beat the single minimum-benefit item.
  if (memory_used_ + size <= config_.memory_capacity_bytes) {
    if (insert) PlaceInMemory(key, size, benefit);
    return true;
  }
  if (memory_order_.empty()) return false;  // item larger than the tier
  Handle min_h = memory_order_.MinHandle();
  double min_benefit =
      static_cast<double>(items_.EntryAt(min_h).value.benefit);
  if (benefit <= min_benefit) return false;
  if (insert) {
    policy_->OnEvict(min_benefit);
    Demote(min_h);
    PlaceInMemory(key, size, benefit);
  }
  return true;
}

bool TieredCache::CondCacheVariable(Key key, double size, double benefit,
                                    bool insert) {
  if (size > config_.memory_capacity_bytes) return false;
  if (memory_used_ + size <= config_.memory_capacity_bytes) {
    if (insert) PlaceInMemory(key, size, benefit);
    return true;
  }
  // Algorithm 3: gather least-benefit items until eviction would free
  // enough space. Enumerate the heap in ascending (benefit, seq) order
  // without mutating it: a local candidate heap over node positions (a
  // node is only a candidate once its parent was consumed).
  double free_mem = config_.memory_capacity_bytes - memory_used_;
  double gathered = 0.0;
  double benefit_sum = 0.0;
  std::vector<Handle> prelim;
  const std::vector<uint32_t>& slots = memory_order_.data();
  OrderAdapter order{&items_, 0};
  auto pos_after = [&](uint32_t pa, uint32_t pb) {
    return order.Less(slots[pb], slots[pa]);  // reversed: min at heap front
  };
  std::vector<uint32_t> cand;
  if (!slots.empty()) cand.push_back(0);
  while (!cand.empty() && free_mem + gathered < size) {
    std::pop_heap(cand.begin(), cand.end(), pos_after);
    uint32_t p = cand.back();
    cand.pop_back();
    Handle h = slots[p];
    const Item& item = items_.EntryAt(h).value;
    prelim.push_back(h);
    gathered += static_cast<double>(item.size);
    benefit_sum += static_cast<double>(item.benefit);
    for (uint32_t c = 2 * p + 1; c <= 2 * p + 2; ++c) {
      if (c < slots.size()) {
        cand.push_back(c);
        std::push_heap(cand.begin(), cand.end(), pos_after);
      }
    }
  }
  if (free_mem + gathered < size) return false;  // cannot make space
  // Strictly-greater admission (Algorithm 3 writes >=; we reject ties like
  // Algorithm 2 does, so equal-benefit items cannot thrash each other).
  if (benefit <= benefit_sum) return false;
  if (!insert) return true;
  // Keep back the highest-benefit gathered items that still fit: walk the
  // prelim list from most to least valuable, retaining whatever fits into
  // the slack left after the newcomer is placed.
  double slack = free_mem + gathered - size;
  std::vector<Handle> evict;
  for (auto rit = prelim.rbegin(); rit != prelim.rend(); ++rit) {
    double isz = static_cast<double>(items_.EntryAt(*rit).value.size);
    if (isz <= slack) {
      slack -= isz;  // retained
    } else {
      evict.push_back(*rit);
    }
  }
  for (Handle victim : evict) {
    policy_->OnEvict(static_cast<double>(items_.EntryAt(victim).value.benefit));
    Demote(victim);
  }
  PlaceInMemory(key, size, benefit);
  return true;
}

void TieredCache::PlaceInMemory(Key key, double size, double benefit) {
  Handle h = items_.FindHandle(key);
  if (h != Table::kNoHandle) {
    // Promotion from disk: remove the disk-tier residency first. (Appendix B:
    // items moved to mCache are removed from dCache to save space.)
    Item& item = items_.EntryAt(h).value;
    assert(TierOf(item) == CacheTier::kDisk);
    disk_order_.Remove(PosOf(item));
    disk_used_ -= static_cast<double>(item.size);
    items_.Erase(key);
    ++stats_.promotions;
  }
  auto [nh, inserted] = items_.TryEmplaceHandle(key);
  assert(inserted);
  Item& item = items_.EntryAt(nh).value;
  item.size = static_cast<float>(size);
  item.benefit = static_cast<float>(benefit);
  item.heap_pos = kNoPos;
  item.seq = next_seq_++;
  memory_order_.Push(nh);
  memory_used_ += static_cast<double>(item.size);
  ++stats_.memory_insertions;
  assert(memory_used_ <= config_.memory_capacity_bytes + 1e-6);
}

void TieredCache::Demote(Handle h) {
  Item& item = items_.EntryAt(h).value;
  assert(TierOf(item) == CacheTier::kMemory);
  memory_order_.Remove(PosOf(item));
  memory_used_ -= static_cast<double>(item.size);
  // EnsureDiskSpace only discards disk-resident items; `item`'s slab entry
  // stays put while other keys are erased.
  EnsureDiskSpace(static_cast<double>(item.size));
  item.seq = next_seq_++;
  disk_order_.Push(h);
  disk_used_ += static_cast<double>(item.size);
  ++stats_.demotions;
}

void TieredCache::InsertDisk(Key key, double size, double benefit) {
  MutexLock lock(mu_);
  size = static_cast<double>(static_cast<float>(size));
  benefit = static_cast<double>(static_cast<float>(benefit));
  Handle h = items_.FindHandle(key);
  if (h != Table::kNoHandle) {
    UpdateBenefitLocked(h, benefit);
    return;
  }
  if (size > config_.disk_capacity_bytes) return;
  EnsureDiskSpace(size);
  auto [nh, inserted] = items_.TryEmplaceHandle(key);
  assert(inserted);
  Item& item = items_.EntryAt(nh).value;
  item.size = static_cast<float>(size);
  item.benefit = static_cast<float>(benefit);
  item.heap_pos = kNoPos;
  item.seq = next_seq_++;
  disk_order_.Push(nh);
  disk_used_ += static_cast<double>(item.size);
  ++stats_.disk_insertions;
}

void TieredCache::EnsureDiskSpace(double size) {
  if (disk_used_ + size <= config_.disk_capacity_bytes) return;
  // Discard by lowest benefit-to-size ratio (Appendix B). The heap is
  // ordered by benefit, so scan it for the best ratio victim; finite disk
  // tiers are an ablation configuration, so the linear scan is acceptable.
  // Ties replicate the old multimap scan exactly: the winner is the
  // lexicographic minimum of (ratio, benefit, seq).
  while (disk_used_ + size > config_.disk_capacity_bytes &&
         !disk_order_.empty()) {
    const std::vector<uint32_t>& slots = disk_order_.data();
    Handle best = slots[0];
    const Item* bi = &items_.EntryAt(best).value;
    double best_ratio = static_cast<double>(bi->benefit) /
                        static_cast<double>(bi->size);
    for (size_t i = 1; i < slots.size(); ++i) {
      const Item& it = items_.EntryAt(slots[i]).value;
      double ratio =
          static_cast<double>(it.benefit) / static_cast<double>(it.size);
      if (ratio < best_ratio ||
          (ratio == best_ratio &&
           (it.benefit < bi->benefit ||
            (it.benefit == bi->benefit && it.seq < bi->seq)))) {
        best = slots[i];
        bi = &it;
        best_ratio = ratio;
      }
    }
    policy_->OnEvict(static_cast<double>(bi->benefit));
    DiscardFromDisk(best);
  }
}

void TieredCache::DiscardFromDisk(Handle h) {
  Item& item = items_.EntryAt(h).value;
  assert(TierOf(item) == CacheTier::kDisk);
  disk_order_.Remove(PosOf(item));
  disk_used_ -= static_cast<double>(item.size);
  items_.Erase(items_.EntryAt(h).key);
  ++stats_.discards;
}

void TieredCache::Invalidate(Key key) {
  MutexLock lock(mu_);
  InvalidateLocked(key);
}

void TieredCache::InvalidateLocked(Key key) {
  Handle h = items_.FindHandle(key);
  if (h == Table::kNoHandle) return;
  Item& item = items_.EntryAt(h).value;
  if (TierOf(item) == CacheTier::kMemory) {
    memory_order_.Remove(PosOf(item));
    memory_used_ -= static_cast<double>(item.size);
  } else {
    disk_order_.Remove(PosOf(item));
    disk_used_ -= static_cast<double>(item.size);
  }
  items_.Erase(key);
  ++stats_.invalidations;
}

std::vector<Key> TieredCache::InvalidateMatching(
    const std::function<bool(Key)>& pred) {
  MutexLock lock(mu_);
  std::vector<Key> dropped;
  items_.ForEach([&](Key key, const Item&) {
    if (pred(key)) dropped.push_back(key);
  });
  for (Key key : dropped) {
    InvalidateLocked(key);
    // InvalidateLocked counted it as an ordinary invalidation; reclassify.
    --stats_.invalidations;
    ++stats_.resync_invalidations;
  }
  return dropped;
}

double TieredCache::ItemSize(Key key) const {
  MutexLock lock(mu_);
  const Item* item = items_.Find(key);
  return item == nullptr ? 0.0 : static_cast<double>(item->size);
}

double TieredCache::MemoryMinBenefit() const {
  MutexLock lock(mu_);
  if (memory_order_.empty()) return std::numeric_limits<double>::infinity();
  return static_cast<double>(
      items_.EntryAt(memory_order_.MinHandle()).value.benefit);
}

size_t TieredCache::AccountedBytes() const {
  MutexLock lock(mu_);
  return items_.MemoryBytes() + memory_order_.MemoryBytes() +
         disk_order_.MemoryBytes();
}

TieredCacheStats& operator+=(TieredCacheStats& lhs,
                             const TieredCacheStats& rhs) {
  lhs.memory_hits += rhs.memory_hits;
  lhs.disk_hits += rhs.disk_hits;
  lhs.misses += rhs.misses;
  lhs.memory_insertions += rhs.memory_insertions;
  lhs.disk_insertions += rhs.disk_insertions;
  lhs.demotions += rhs.demotions;
  lhs.promotions += rhs.promotions;
  lhs.discards += rhs.discards;
  lhs.invalidations += rhs.invalidations;
  lhs.admission_rejections += rhs.admission_rejections;
  lhs.resync_invalidations += rhs.resync_invalidations;
  return lhs;
}

}  // namespace joinopt
