// Cache benefit policies. Algorithm 1 calls updateBenefit(k) on every request
// and uses the benefit to drive condCacheInMemory. The paper adopts the
// weighted LFU-DA algorithm [Arlitt et al., 2000]: benefits grow with access
// frequency but are offset by a global "age" L that rises whenever an item is
// evicted, so stale-but-once-hot items eventually lose to recently-hot ones.
// An LRU policy is provided for the eviction-policy ablation.
#ifndef JOINOPT_CACHE_POLICY_H_
#define JOINOPT_CACHE_POLICY_H_

#include <cstdint>

#include "joinopt/common/hash.h"

namespace joinopt {

/// Computes the benefit score of an item at access time. Higher = more worth
/// keeping in memory.
class BenefitPolicy {
 public:
  virtual ~BenefitPolicy() = default;

  /// Benefit of an item accessed now. `frequency` is the item's estimated
  /// access count; `weight` its per-access value (the paper weights by the
  /// cost saved per hit divided by size — callers choose).
  virtual double Benefit(int64_t frequency, double weight) = 0;

  /// Notifies the policy that an item with the given stored benefit was
  /// evicted (LFU-DA raises its age to that value).
  virtual void OnEvict(double evicted_benefit) = 0;

  /// Current aging offset (0 for policies without aging).
  virtual double age() const { return 0.0; }
};

/// Weighted LFU with Dynamic Aging: benefit = weight * frequency + L, where
/// L is raised to the benefit of each evicted item. Recent and frequent
/// accesses both raise an item's standing.
class LfuDaPolicy : public BenefitPolicy {
 public:
  double Benefit(int64_t frequency, double weight) override {
    return weight * static_cast<double>(frequency) + age_;
  }
  void OnEvict(double evicted_benefit) override {
    if (evicted_benefit > age_) age_ = evicted_benefit;
  }
  double age() const override { return age_; }

 private:
  double age_ = 0.0;
};

/// LRU expressed in the benefit framework: benefit = access sequence number,
/// so the least recently touched item always has the minimum benefit.
class LruPolicy : public BenefitPolicy {
 public:
  double Benefit(int64_t /*frequency*/, double /*weight*/) override {
    return static_cast<double>(++tick_);
  }
  void OnEvict(double /*evicted_benefit*/) override {}

 private:
  int64_t tick_ = 0;
};

/// Plain LFU (no aging): benefit = weight * frequency. Ablation baseline
/// showing why aging matters under shifting distributions (Fig. 9 workloads).
class LfuPolicy : public BenefitPolicy {
 public:
  double Benefit(int64_t frequency, double weight) override {
    return weight * static_cast<double>(frequency);
  }
  void OnEvict(double /*evicted_benefit*/) override {}
};

}  // namespace joinopt

#endif  // JOINOPT_CACHE_POLICY_H_
