// The reduce-side-join skew-mitigation baselines of Figure 5, all running on
// the mini-MapReduce substrate over the same annotation corpus:
//
//  * Hadoop     — plain hash partitioning, no skew mitigation.
//  * CSAW       — Gupta et al. [12]: keys whose total load (frequency x
//                 classification cost, plus model fetch) exceeds a fair
//                 per-partition share are replicated: their records are
//                 sprayed over all partitions and their models read
//                 everywhere. Needs full precomputed statistics.
//  * FlowJoinLB — the Flow-Join [23] policy with *exact* statistics (hence a
//                 lower bound on real Flow-Join, which samples): replicates
//                 by frequency only, ignoring per-key UDF cost.
#ifndef JOINOPT_BASELINES_ANNOTATION_BASELINES_H_
#define JOINOPT_BASELINES_ANNOTATION_BASELINES_H_

#include "joinopt/mapreduce/mapreduce.h"
#include "joinopt/workload/entity_annotation.h"

namespace joinopt {

enum class MrBaselineKind { kHadoop, kCsaw, kFlowJoinLb };

const char* MrBaselineKindToString(MrBaselineKind k);

struct AnnotationBaselineResult {
  JobResult job;
  /// Keys the partitioner chose to replicate (0 for Hadoop).
  int64_t replicated_keys = 0;
};

/// Runs the chosen baseline on a cluster whose *every* node is a worker
/// (the paper gives the MapReduce baselines all 20 machines).
AnnotationBaselineResult RunAnnotationBaseline(Simulation* sim,
                                               Cluster* cluster,
                                               const AnnotationSpots& spots,
                                               MrBaselineKind kind,
                                               const MapReduceConfig& config = {});

}  // namespace joinopt

#endif  // JOINOPT_BASELINES_ANNOTATION_BASELINES_H_
