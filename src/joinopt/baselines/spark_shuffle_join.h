// SparkSQL-style multi-join baseline for the TPC-DS experiment (Figure 7):
// a left-deep sequence of shuffle hash joins with stage barriers, run on all
// cluster nodes. For each join the intermediate relation AND the dimension
// table are hash-shuffled across the workers (at SF=500 the paper's
// dimension tables exceed Spark's broadcast threshold), hash tables are
// built on the dimension partitions and the intermediate rows probe them.
//
// This is what Catalyst produces for Q3/Q7/Q27/Q42 minus the post-join
// aggregation, which the paper runs identically on both systems.
#ifndef JOINOPT_BASELINES_SPARK_SHUFFLE_JOIN_H_
#define JOINOPT_BASELINES_SPARK_SHUFFLE_JOIN_H_

#include "joinopt/engine/types.h"
#include "joinopt/sim/cluster.h"
#include "joinopt/sim/event_queue.h"
#include "joinopt/workload/tpcds_lite.h"

namespace joinopt {

struct SparkJoinConfig {
  // Per-row CPU costs calibrated to JVM row processing on the paper's
  // 2008-era Xeons (serialize + hash + copy per shuffled row; probe +
  // predicate per joined row). The framework's per-probe UDF cost (3 us)
  // is the same order.
  /// CPU to hash-partition / serialize one row on the map side.
  double partition_cost_per_row = 5.0e-6;
  /// CPU to insert one dimension row into the build hash table.
  double build_cost_per_row = 3.0e-6;
  /// CPU to probe + evaluate predicates for one intermediate row.
  double probe_cost_per_row = 4.0e-6;
  /// Shuffle data is materialized (written + read) at both ends.
  double materialize_factor = 2.0;
  /// Bytes the join adds to each surviving row (projected dim columns).
  double join_width_growth = 24.0;
};

/// Runs the plan and returns the metrics (tuples = fact rows).
JobResult RunSparkShuffleJoin(Simulation* sim, Cluster* cluster,
                              const TpcdsQuerySpec& spec,
                              int64_t fact_rows_total,
                              const SparkJoinConfig& config = {});

}  // namespace joinopt

#endif  // JOINOPT_BASELINES_SPARK_SHUFFLE_JOIN_H_
