#include "joinopt/baselines/spark_shuffle_join.h"

#include <algorithm>

#include "joinopt/common/histogram.h"

namespace joinopt {

namespace {

/// Charges one all-to-all shuffle of `rows` x `row_bytes` starting no
/// earlier than `start[w]` per worker: map-side partition CPU +
/// materialization, the network transfers, and returns each worker's
/// data-ready time in `ready`.
void Shuffle(Cluster* cluster, double rows, double row_bytes,
             const SparkJoinConfig& cfg, const std::vector<double>& start,
             std::vector<double>* ready) {
  const int W = cluster->num_nodes();
  std::vector<double> sent(static_cast<size_t>(W), 0.0);
  double rows_per_worker = rows / W;
  for (int w = 0; w < W; ++w) {
    SimNode& node = cluster->node(w);
    double cpu_work = rows_per_worker * cfg.partition_cost_per_row;
    double finish = 0.0;
    int cores = node.cpu().cores();
    for (int c = 0; c < cores; ++c) {
      finish = std::max(
          finish, node.cpu().Reserve(start[static_cast<size_t>(w)],
                                     cpu_work / cores));
    }
    double spill = rows_per_worker * row_bytes * cfg.materialize_factor;
    finish = std::max(finish,
                      node.disk().Reserve(start[static_cast<size_t>(w)],
                                          node.DiskServiceTime(spill)));
    sent[static_cast<size_t>(w)] = finish;
  }
  // Every worker sends a 1/W slice to every other worker.
  double cell_bytes = rows_per_worker * row_bytes / W;
  for (int w = 0; w < W; ++w) {
    for (int d = 0; d < W; ++d) {
      if (w == d) {
        (*ready)[static_cast<size_t>(d)] = std::max(
            (*ready)[static_cast<size_t>(d)], sent[static_cast<size_t>(w)]);
        continue;
      }
      double arrival = cluster->network().Transfer(
          w, d, cell_bytes, sent[static_cast<size_t>(w)]);
      (*ready)[static_cast<size_t>(d)] =
          std::max((*ready)[static_cast<size_t>(d)], arrival);
    }
  }
}

}  // namespace

JobResult RunSparkShuffleJoin(Simulation* sim, Cluster* cluster,
                              const TpcdsQuerySpec& spec,
                              int64_t fact_rows_total,
                              const SparkJoinConfig& config) {
  (void)sim;
  const int W = cluster->num_nodes();
  double rows = static_cast<double>(fact_rows_total);
  double row_bytes = spec.fact_row_bytes;
  std::vector<double> stage_start(static_cast<size_t>(W), 0.0);

  for (const TpcdsStageSpec& stage : spec.stages) {
    // Shuffle both sides of the join, then build + probe per worker.
    std::vector<double> fact_ready(static_cast<size_t>(W), 0.0);
    std::vector<double> dim_ready(static_cast<size_t>(W), 0.0);
    Shuffle(cluster, rows, row_bytes, config, stage_start, &fact_ready);
    Shuffle(cluster, static_cast<double>(stage.dim_rows),
            stage.dim_row_bytes, config, stage_start, &dim_ready);

    double dim_rows_per_worker = static_cast<double>(stage.dim_rows) / W;
    double fact_rows_per_worker = rows / W;
    std::vector<double> done(static_cast<size_t>(W), 0.0);
    for (int w = 0; w < W; ++w) {
      SimNode& node = cluster->node(w);
      double build_start = dim_ready[static_cast<size_t>(w)];
      double build_done =
          node.cpu().Reserve(build_start,
                             dim_rows_per_worker * config.build_cost_per_row);
      double probe_start =
          std::max(build_done, fact_ready[static_cast<size_t>(w)]);
      double probe_work = fact_rows_per_worker * config.probe_cost_per_row;
      double finish = 0.0;
      int cores = node.cpu().cores();
      for (int c = 0; c < cores; ++c) {
        finish = std::max(finish,
                          node.cpu().Reserve(probe_start, probe_work / cores));
      }
      done[static_cast<size_t>(w)] = finish;
    }
    // Spark stage barrier before the next shuffle.
    double barrier = *std::max_element(done.begin(), done.end());
    std::fill(stage_start.begin(), stage_start.end(), barrier);

    rows *= stage.selectivity;
    row_bytes += config.join_width_growth;
  }

  JobResult r;
  r.makespan = stage_start.empty() ? 0.0 : stage_start.front();
  r.tuples_processed = fact_rows_total;
  r.throughput = r.makespan > 0
                     ? static_cast<double>(fact_rows_total) / r.makespan
                     : 0.0;
  r.network_bytes = cluster->network().total_bytes_transferred();
  r.network_messages = cluster->network().total_messages();
  r.total_cpu_busy = cluster->TotalCpuBusy();
  SummaryStats busy;
  for (int w = 0; w < W; ++w) {
    busy.Observe(cluster->node(w).cpu().busy_time());
  }
  r.compute_cpu_skew = busy.mean() > 0 ? busy.max() / busy.mean() : 1.0;
  r.data_cpu_skew = r.compute_cpu_skew;
  return r;
}

}  // namespace joinopt
