#include "joinopt/baselines/annotation_baselines.h"

#include <unordered_set>

namespace joinopt {

const char* MrBaselineKindToString(MrBaselineKind k) {
  switch (k) {
    case MrBaselineKind::kHadoop:
      return "Hadoop";
    case MrBaselineKind::kCsaw:
      return "CSAW";
    case MrBaselineKind::kFlowJoinLb:
      return "FlowJoinLB";
  }
  return "?";
}

AnnotationBaselineResult RunAnnotationBaseline(Simulation* sim,
                                               Cluster* cluster,
                                               const AnnotationSpots& spots,
                                               MrBaselineKind kind,
                                               const MapReduceConfig& config) {
  const int W = cluster->num_nodes();
  const int P = W * config.reduce_tasks_per_node;
  const int64_t n = spots.num_spots();

  // Build the replicated-key set from the (precomputed) statistics. The
  // paper excludes the statistics-gathering time from the baselines'
  // reported numbers, and so do we.
  std::unordered_set<Key> replicated;
  if (kind == MrBaselineKind::kCsaw) {
    // Total per-key load: records x classify cost + one model read.
    // Replicate keys exceeding the fair per-partition share.
    double total_load = 0;
    std::vector<double> load(spots.model_bytes.size(), 0.0);
    SimNode& node0 = cluster->node(0);
    for (size_t t = 0; t < load.size(); ++t) {
      if (spots.token_count[t] == 0) continue;
      load[t] = static_cast<double>(spots.token_count[t]) *
                    spots.model_cost[t] +
                node0.DiskServiceTime(spots.model_bytes[t]);
      total_load += load[t];
    }
    double share = total_load / P;
    for (size_t t = 0; t < load.size(); ++t) {
      if (load[t] > share) replicated.insert(static_cast<Key>(t));
    }
  } else if (kind == MrBaselineKind::kFlowJoinLb) {
    // Frequency-only heavy hitters: keys above the fair record share.
    int64_t share = std::max<int64_t>(n / P, 1);
    for (size_t t = 0; t < spots.token_count.size(); ++t) {
      if (spots.token_count[t] > share) replicated.insert(static_cast<Key>(t));
    }
  }

  MapReduceJoinSpec spec;
  spec.records = &spots.tokens;
  spec.record_payload_bytes = spots.config.context_bytes;
  spec.value_bytes = &spots.model_bytes;
  spec.udf_cost = &spots.model_cost;
  spec.num_partitions = P;
  spec.partitioner = [&replicated, P](Key key, int64_t record_index) -> int {
    if (replicated.count(key) > 0) {
      // Spray replicated keys round-robin across all partitions.
      return static_cast<int>(record_index % P);
    }
    return static_cast<int>(Mix64(key) % static_cast<uint64_t>(P));
  };

  AnnotationBaselineResult result;
  result.replicated_keys = static_cast<int64_t>(replicated.size());
  result.job = RunMapReduceJoin(sim, cluster, spec, config);
  return result;
}

}  // namespace joinopt
