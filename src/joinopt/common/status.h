// Status and StatusOr: error handling without exceptions, in the style of
// Arrow / RocksDB. Every fallible public API in joinopt returns one of these.
#ifndef JOINOPT_COMMON_STATUS_H_
#define JOINOPT_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace joinopt {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kAborted,
};

/// Returns a human-readable name for a status code ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy in the OK case
/// (no allocation); carries a code plus message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Mirrors arrow::Result.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from non-OK status. Constructing from an OK status is a bug.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or a fallback when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ engaged
  std::optional<T> value_;
};

}  // namespace joinopt

/// Propagates an error status from an expression returning Status.
#define JOINOPT_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::joinopt::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Assigns the value of a StatusOr expression or propagates its error.
#define JOINOPT_ASSIGN_OR_RETURN(lhs, expr)         \
  auto JOINOPT_CONCAT_(_res, __LINE__) = (expr);    \
  if (!JOINOPT_CONCAT_(_res, __LINE__).ok())        \
    return JOINOPT_CONCAT_(_res, __LINE__).status();\
  lhs = std::move(JOINOPT_CONCAT_(_res, __LINE__)).value()

#define JOINOPT_CONCAT_IMPL_(a, b) a##b
#define JOINOPT_CONCAT_(a, b) JOINOPT_CONCAT_IMPL_(a, b)

#endif  // JOINOPT_COMMON_STATUS_H_
