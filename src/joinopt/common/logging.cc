#include "joinopt/common/logging.h"

namespace joinopt {

LogLevel Logger::threshold_ = LogLevel::kWarn;
std::ostream* Logger::stream_ = &std::cerr;

}  // namespace joinopt
