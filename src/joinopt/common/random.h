// Deterministic random number generation for workload synthesis and the
// simulator: xoshiro256** core generator plus the distributions the paper's
// workloads need (uniform, Zipf, exponential, heavy-tailed sizes).
#ifndef JOINOPT_COMMON_RANDOM_H_
#define JOINOPT_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace joinopt {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation). Deterministic across platforms; much faster than
/// std::mt19937_64 and with better statistical properties.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds via SplitMix64 so that nearby seeds give unrelated streams.
  void Seed(uint64_t seed);

  /// Next 64 uniformly random bits.
  uint64_t Next();

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's method.
  uint64_t NextBounded(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Exponentially distributed with the given rate (mean = 1/rate).
  double Exponential(double rate) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999999999;
    return -std::log(1.0 - u) / rate;
  }

  /// Bernoulli trial.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Pareto-distributed value with shape alpha and scale x_min.
  /// Heavy-tailed; used for model sizes / UDF costs in the annotation
  /// workload.
  double Pareto(double alpha, double x_min) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999999999;
    return x_min / std::pow(1.0 - u, 1.0 / alpha);
  }

  /// Forks an independent deterministic stream (for per-node RNGs).
  Rng Fork() { return Rng(Next()); }

 private:
  uint64_t s_[4];
};

/// Zipf(N, z) sampler over ranks {0, 1, ..., n-1}: rank i has probability
/// proportional to 1/(i+1)^z. z = 0 degenerates to uniform. Uses the
/// rejection-inversion method of Hormann & Derflinger, which needs O(1)
/// memory and setup regardless of n — important for the 10^6..10^8 key
/// domains the synthetic workloads use.
class ZipfDistribution {
 public:
  /// n: domain size (>= 1); z: skew parameter (>= 0).
  ZipfDistribution(uint64_t n, double z);

  uint64_t n() const { return n_; }
  double z() const { return z_; }

  /// Samples a rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  /// Probability mass of rank i (exact, O(1) after construction).
  double Pmf(uint64_t rank) const;

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double z_;
  double h_x1_;
  double h_n_;
  double s_;
  double generalized_harmonic_;  // H_{n,z}: normalization for Pmf
};

/// Fisher–Yates shuffle of a vector (deterministic given the Rng state).
template <typename T>
void Shuffle(std::vector<T>& v, Rng& rng) {
  for (size_t i = v.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.NextBounded(i));
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace joinopt

#endif  // JOINOPT_COMMON_RANDOM_H_
