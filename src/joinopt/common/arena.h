// Slab arena for per-key container storage (DESIGN.md §14). The compact
// per-key structures (FlatMap probe arrays, dense entry slabs, see
// flat_map.h) draw their memory from one of these instead of malloc:
//
//  * allocations bump out of large chunks (1 MB by default), so a table's
//    entries land contiguously instead of interleaving with unrelated heap
//    traffic — bytes/key is what we account, cache lines are what we win;
//  * freed blocks go into exact-size bins and are handed back verbatim on
//    the next same-size request. The only blocks the per-key containers
//    ever free are probe arrays replaced on growth, whose sizes repeat
//    across tables sharing the arena (all are pow2 slot counts times a
//    fixed slot width), so exact-size recycling wastes nothing and the
//    arena never needs a general-purpose free list;
//  * chunks are released to the OS only on destruction. An arena's
//    footprint is monotone, which keeps RSS-derived bytes/key honest.
//
// Thread safety: none. An Arena and every container drawing from it must
// be externally synchronized under one lock (the invoker shard lock for a
// DecisionEngine's arena, TieredCache::mu_ for the cache's). The arena
// must outlive the containers using it.
#ifndef JOINOPT_COMMON_ARENA_H_
#define JOINOPT_COMMON_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace joinopt {

class Arena {
 public:
  struct Stats {
    size_t reserved_bytes = 0;   ///< sum of chunk sizes obtained from ::new
    size_t allocated_bytes = 0;  ///< live bytes handed out (net of frees)
    size_t chunks = 0;
  };

  explicit Arena(size_t chunk_bytes = 1 << 20) : chunk_bytes_(chunk_bytes) {
    assert(chunk_bytes >= 4096);
  }
  ~Arena() {
    for (const Chunk& c : chunks_) {
      ::operator delete(c.base, std::align_val_t(kChunkAlign));
    }
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (power of two, <= 64).
  /// `bytes` == 0 returns a non-null unique-ish pointer like operator new.
  void* Allocate(size_t bytes, size_t align = 8) {
    assert(align > 0 && (align & (align - 1)) == 0 && align <= kChunkAlign);
    if (bytes == 0) bytes = 1;
    // Exact-size recycling first: growth sequences re-request old sizes.
    for (Bin& bin : bins_) {
      if (bin.size == bytes && bin.head != nullptr) {
        void* p = bin.head;
        bin.head = *static_cast<void**>(bin.head);
        stats_.allocated_bytes += bytes;
        return p;
      }
    }
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + bytes > limit_) {
      NewChunk(bytes + align);
      p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    stats_.allocated_bytes += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Recycles a block previously returned by Allocate with the same size.
  /// The block is kept for reuse; the OS sees nothing until destruction.
  void Free(void* ptr, size_t bytes) {
    if (ptr == nullptr) return;
    if (bytes == 0) bytes = 1;
    assert(stats_.allocated_bytes >= bytes);
    stats_.allocated_bytes -= bytes;
    if (bytes < sizeof(void*)) return;  // too small to chain; leak into slab
    for (Bin& bin : bins_) {
      if (bin.size == bytes) {
        *static_cast<void**>(ptr) = bin.head;
        bin.head = ptr;
        return;
      }
    }
    bins_.push_back(Bin{bytes, nullptr});
    *static_cast<void**>(ptr) = nullptr;
    bins_.back().head = ptr;
  }

  const Stats& stats() const { return stats_; }

 private:
  static constexpr size_t kChunkAlign = 64;  // cache-line aligned chunks

  struct Chunk {
    void* base;
    size_t bytes;
  };
  struct Bin {
    size_t size;
    void* head;  // singly linked through the blocks themselves
  };

  void NewChunk(size_t min_bytes) {
    size_t bytes = min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_;
    void* base = ::operator new(bytes, std::align_val_t(kChunkAlign));
    chunks_.push_back(Chunk{base, bytes});
    cursor_ = reinterpret_cast<uintptr_t>(base);
    limit_ = cursor_ + bytes;
    stats_.reserved_bytes += bytes;
    ++stats_.chunks;
  }

  size_t chunk_bytes_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  std::vector<Chunk> chunks_;
  std::vector<Bin> bins_;  // few distinct sizes in practice; linear scan
  Stats stats_;
};

}  // namespace joinopt

#endif  // JOINOPT_COMMON_ARENA_H_
