// Compact open-addressing hash table for per-key runtime state
// (DESIGN.md §14). Every hot-path map in the decision engine — ski-rental
// metadata, frequency-sketch entries, cached-item metadata — keys on the
// same 64-bit Key and used to be a std::unordered_map: one heap node and
// one pointer hop per key, ~56 bytes of overhead each. FlatMap replaces
// that with:
//
//  * a robin-hood probe table of power-of-two capacity. Each slot costs
//    6 bytes across two parallel arrays: a 2-byte meta word (probe
//    distance << 8 | 8-bit key fingerprint; distance 0 = empty) scanned
//    32 slots per cache line, and a 4-byte entry handle touched only on a
//    fingerprint match. Deletion is backward-shift (tombstone-free: the
//    following displaced run moves one slot back), so deletion-heavy
//    workloads never degrade probe lengths;
//  * dense entries ({Key, V} pairs) in fixed-size slabs drawn from an
//    Arena. Entries never move — growth rehashes only the 6-byte probe
//    slots — so the uint32 handle of an entry is stable for its lifetime
//    and intrusive indexes (see intrusive_heap.h) can point at entries
//    across rehashes. Freed handles are recycled LIFO.
//
// The probe hash is Mix64 from common/hash.h over (key ^ seed); pass
// distinct seeds to tables that would otherwise see correlated probe
// orders.
//
// Guarantees callers rely on:
//  * V* / Entry& / handles stay valid until that key is erased (or Clear).
//  * EraseIf sweeps in place: survivors are never re-bucketed, no
//    allocation happens, and the predicate (which must be pure) sees every
//    entry at least once.
//  * Reserve(n) guarantees no rehash before size() exceeds n.
//
// Not thread-safe; externally synchronized like the structures it backs.
#ifndef JOINOPT_COMMON_FLAT_MAP_H_
#define JOINOPT_COMMON_FLAT_MAP_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "joinopt/common/arena.h"
#include "joinopt/common/hash.h"

namespace joinopt {

template <typename V>
class FlatMap {
 public:
  using Handle = uint32_t;
  static constexpr Handle kNoHandle = 0xFFFFFFFFu;

  struct Entry {
    Key key;
    V value;
  };

  /// `arena` (optional, must outlive the map) supplies probe arrays and
  /// entry slabs; nullptr falls back to operator new. `seed` perturbs the
  /// probe hash.
  explicit FlatMap(Arena* arena = nullptr, uint64_t seed = 0)
      : arena_(arena), seed_(seed) {}

  ~FlatMap() { ReleaseAll(); }

  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;

  /// Max load factor, clamped to [0.25, 0.95]. Must be set before the
  /// first insert or Reserve.
  void set_max_load_factor(double f) {
    assert(capacity_ == 0);
    if (f < 0.25) f = 0.25;
    if (f > 0.95) f = 0.95;
    max_load_ = f;
  }
  double max_load_factor() const { return max_load_; }

  /// Pre-sizes the probe table for `n` keys: no rehash happens until
  /// size() exceeds n.
  void Reserve(size_t n) {
    if (n == 0) return;
    size_t want = NormalizeCapacity(n);
    if (want > capacity_) Rehash(want);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Probe-slot count (power of two; 0 before the first insert/Reserve).
  size_t capacity() const { return capacity_; }

  V* Find(Key key) {
    Handle h = FindHandle(key);
    return h == kNoHandle ? nullptr : &EntryAt(h).value;
  }
  const V* Find(Key key) const {
    Handle h = FindHandle(key);
    return h == kNoHandle ? nullptr : &EntryAt(h).value;
  }

  Handle FindHandle(Key key) const {
    if (size_ == 0) return kNoHandle;
    uint64_t hash = Mix64(key ^ seed_);
    size_t i = hash & mask_;
    uint16_t fp = Fingerprint(hash);
    for (uint16_t dist = 1;; ++dist, i = (i + 1) & mask_) {
      uint16_t m = meta_[i];
      if ((m >> 8) < dist) return kNoHandle;  // empty or richer slot: absent
      if ((m >> 8) == dist && (m & 0xFF) == fp) {
        Handle h = handles_[i];
        if (EntryAt(h).key == key) return h;
      }
    }
  }

  Entry& EntryAt(Handle h) { return slabs_[h >> kSlabShift][h & kSlabMask]; }
  const Entry& EntryAt(Handle h) const {
    return slabs_[h >> kSlabShift][h & kSlabMask];
  }

  /// Inserts `key` with a default-constructed value if absent. Returns
  /// the value slot and whether it was inserted.
  std::pair<V*, bool> TryEmplace(Key key) {
    auto [h, inserted] = TryEmplaceHandle(key);
    return {&EntryAt(h).value, inserted};
  }

  std::pair<Handle, bool> TryEmplaceHandle(Key key) {
    if (capacity_ == 0 || size_ + 1 > grow_at_) {
      Rehash(NormalizeCapacity(size_ + 1));
    }
    for (;;) {
      uint64_t hash = Mix64(key ^ seed_);
      size_t i = hash & mask_;
      uint16_t fp = Fingerprint(hash);
      uint16_t dist = 1;
      // Probe until the key is found, or until its placement slot (the
      // first slot whose resident sits at least as close to home).
      for (; dist <= kMaxDist; ++dist, i = (i + 1) & mask_) {
        uint16_t m = meta_[i];
        if ((m >> 8) < dist) break;
        if ((m >> 8) == dist && (m & 0xFF) == fp) {
          Handle h = handles_[i];
          if (EntryAt(h).key == key) return {h, false};
        }
      }
      if (dist > kMaxDist) {  // pathological clustering: grow and retry
        Rehash(capacity_ * 2);
        continue;
      }
      Handle h = NewEntry(key);
      if (!InsertDisplacing(i, static_cast<uint16_t>((dist << 8) | fp), h)) {
        // The displacement chain overflowed; the leftover entry sits in
        // overflow_ and Rehash folds it back in. `h` stays valid.
        Rehash(capacity_ * 2);
      }
      ++size_;
      return {h, true};
    }
  }

  bool Erase(Key key) {
    if (size_ == 0) return false;
    uint64_t hash = Mix64(key ^ seed_);
    size_t i = hash & mask_;
    uint16_t fp = Fingerprint(hash);
    for (uint16_t dist = 1;; ++dist, i = (i + 1) & mask_) {
      uint16_t m = meta_[i];
      if ((m >> 8) < dist) return false;
      if ((m >> 8) == dist && (m & 0xFF) == fp &&
          EntryAt(handles_[i]).key == key) {
        EraseSlot(i);
        return true;
      }
    }
  }

  /// Visits every entry as fn(Key, V&) (const overload: fn(Key, const
  /// V&)). Iteration order is probe-table order. Must not insert or erase.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < capacity_; ++i) {
      if (meta_[i] != 0) {
        Entry& e = EntryAt(handles_[i]);
        fn(e.key, e.value);
      }
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (meta_[i] != 0) {
        const Entry& e = EntryAt(handles_[i]);
        fn(e.key, e.value);
      }
    }
  }

  /// Erases every entry for which pred(Key, V&) returns true, in one
  /// in-place backward-shift sweep: no allocation, survivors are never
  /// re-bucketed (their handles and V* remain valid). `pred` must be pure
  /// — a shifted survivor can be re-tested. Returns the erase count.
  template <typename Pred>
  size_t EraseIf(Pred&& pred) {
    size_t erased = 0;
    for (size_t i = 0; i < capacity_; ++i) {
      while (meta_[i] != 0) {
        Entry& e = EntryAt(handles_[i]);
        if (!pred(e.key, e.value)) break;
        EraseSlot(i);  // backward shift may pull the next entry into i
        ++erased;
      }
    }
    return erased;
  }

  void Clear() {
    ReleaseAll();
    meta_ = nullptr;
    handles_ = nullptr;
    capacity_ = 0;
    mask_ = 0;
    grow_at_ = 0;
    size_ = 0;
    next_handle_ = 0;
    slabs_.clear();
    free_handles_.clear();
  }

  /// Accounted footprint: probe arrays + entry slabs + handle freelist.
  size_t MemoryBytes() const {
    return capacity_ * (sizeof(uint16_t) + sizeof(Handle)) +
           slabs_.size() * kSlabEntries * sizeof(Entry) +
           slabs_.capacity() * sizeof(Entry*) +
           free_handles_.capacity() * sizeof(Handle);
  }

 private:
  static constexpr uint16_t kMaxDist = 255;
  static constexpr size_t kSlabShift = 12;  // 4096 entries per slab
  static constexpr size_t kSlabEntries = size_t{1} << kSlabShift;
  static constexpr size_t kSlabMask = kSlabEntries - 1;

  static uint16_t Fingerprint(uint64_t hash) {
    return static_cast<uint16_t>((hash >> 56) & 0xFF);
  }

  size_t NormalizeCapacity(size_t n) const {
    size_t want = 16;
    while (static_cast<double>(want) * max_load_ < static_cast<double>(n)) {
      want <<= 1;
    }
    return want;
  }

  void* Alloc(size_t bytes, size_t align) {
    if (arena_ != nullptr) return arena_->Allocate(bytes, align);
    return ::operator new(bytes, std::align_val_t(align));
  }
  void Dealloc(void* p, size_t bytes, size_t align) {
    if (p == nullptr) return;
    if (arena_ != nullptr) {
      arena_->Free(p, bytes);
    } else {
      ::operator delete(p, std::align_val_t(align));
    }
  }

  Handle NewEntry(Key key) {
    Handle h;
    if (!free_handles_.empty()) {
      h = free_handles_.back();
      free_handles_.pop_back();
    } else {
      h = next_handle_++;
      if ((h >> kSlabShift) >= slabs_.size()) {
        void* slab = Alloc(kSlabEntries * sizeof(Entry), alignof(Entry));
        slabs_.push_back(static_cast<Entry*>(slab));
      }
    }
    Entry& e = EntryAt(h);
    e.key = key;
    ::new (static_cast<void*>(&e.value)) V();
    return h;
  }

  /// Robin-hood insertion of (meta, handle) starting at slot i (the
  /// placement slot the caller probed to), displacing poorer residents.
  /// Returns false if the displacement chain exceeded kMaxDist: the
  /// carried leftover entry is pushed to overflow_ and the caller must
  /// Rehash (which drains overflow_). Never allocates.
  bool InsertDisplacing(size_t i, uint16_t meta, Handle handle) {
    for (;;) {
      uint16_t m = meta_[i];
      if (m == 0) {
        meta_[i] = meta;
        handles_[i] = handle;
        return true;
      }
      if ((m >> 8) < (meta >> 8)) {  // displace the richer-placed resident
        std::swap(meta_[i], meta);
        std::swap(handles_[i], handle);
      }
      meta += 0x100;  // one slot further from home
      if ((meta >> 8) > kMaxDist) {
        overflow_.push_back(handle);
        return false;
      }
      i = (i + 1) & mask_;
    }
  }

  void EraseSlot(size_t i) {
    free_handles_.push_back(handles_[i]);
    EntryAt(handles_[i]).value.~V();
    // Backward shift: move the following displaced run one slot closer to
    // home, stopping at an empty or already-home (dist 1) slot. At least
    // one empty slot always exists (max load < 1), so this terminates.
    for (;;) {
      size_t next = (i + 1) & mask_;
      uint16_t m = meta_[next];
      if ((m >> 8) <= 1) {
        meta_[i] = 0;
        break;
      }
      meta_[i] = m - 0x100;
      handles_[i] = handles_[next];
      i = next;
    }
    --size_;
  }

  /// Rebuilds the probe table at `new_capacity` slots (doubling further if
  /// placement overflows, which Mix64 makes effectively impossible but
  /// termination must not depend on hash quality). Entries never move;
  /// only the 6-byte probe slots are rebuilt. Any handles parked in
  /// overflow_ (mid-insert overflow) are folded back in.
  void Rehash(size_t new_capacity) {
    uint16_t* old_meta = meta_;
    Handle* old_handles = handles_;
    size_t old_capacity = capacity_;
    // The immutable source set for (re)placement: the old probe table plus
    // entries carried out of an overflowed insert. A failed attempt leaves
    // both untouched, so retries replay the full set.
    std::vector<Handle> extra = std::move(overflow_);
    overflow_.clear();

    for (;;) {
      meta_ = static_cast<uint16_t*>(
          Alloc(new_capacity * sizeof(uint16_t), alignof(uint64_t)));
      std::memset(meta_, 0, new_capacity * sizeof(uint16_t));
      handles_ = static_cast<Handle*>(
          Alloc(new_capacity * sizeof(Handle), alignof(uint64_t)));
      capacity_ = new_capacity;
      mask_ = new_capacity - 1;
      grow_at_ =
          static_cast<size_t>(static_cast<double>(new_capacity) * max_load_);

      bool ok = true;
      for (size_t i = 0; i < old_capacity && ok; ++i) {
        if (old_meta[i] != 0) ok = ReinsertForRehash(old_handles[i]);
      }
      for (size_t j = 0; j < extra.size() && ok; ++j) {
        ok = ReinsertForRehash(extra[j]);
      }
      if (ok) break;
      // Some entry could not be placed: discard this attempt entirely and
      // retry larger from the same immutable source set.
      overflow_.clear();
      Dealloc(meta_, new_capacity * sizeof(uint16_t), alignof(uint64_t));
      Dealloc(handles_, new_capacity * sizeof(Handle), alignof(uint64_t));
      new_capacity *= 2;
    }
    Dealloc(old_meta, old_capacity * sizeof(uint16_t), alignof(uint64_t));
    Dealloc(old_handles, old_capacity * sizeof(Handle), alignof(uint64_t));
  }

  /// Places an existing entry's handle during rehash (keys are unique, so
  /// no equality probing). Returns false on placement overflow.
  bool ReinsertForRehash(Handle h) {
    uint64_t hash = Mix64(EntryAt(h).key ^ seed_);
    size_t i = hash & mask_;
    uint16_t dist = 1;
    for (; dist <= kMaxDist; ++dist, i = (i + 1) & mask_) {
      if ((meta_[i] >> 8) < dist) break;
    }
    if (dist > kMaxDist) return false;
    return InsertDisplacing(
        i, static_cast<uint16_t>((dist << 8) | Fingerprint(hash)), h);
  }

  void ReleaseAll() {
    if constexpr (!std::is_trivially_destructible_v<V>) {
      for (size_t i = 0; i < capacity_; ++i) {
        if (meta_[i] != 0) EntryAt(handles_[i]).value.~V();
      }
    }
    Dealloc(meta_, capacity_ * sizeof(uint16_t), alignof(uint64_t));
    Dealloc(handles_, capacity_ * sizeof(Handle), alignof(uint64_t));
    for (Entry* slab : slabs_) {
      Dealloc(slab, kSlabEntries * sizeof(Entry), alignof(Entry));
    }
  }

  Arena* arena_;
  uint64_t seed_;
  double max_load_ = 0.875;
  uint16_t* meta_ = nullptr;   ///< dist<<8 | fp; 0 = empty
  Handle* handles_ = nullptr;  ///< parallel to meta_
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t grow_at_ = 0;
  size_t size_ = 0;
  Handle next_handle_ = 0;
  std::vector<Entry*> slabs_;
  std::vector<Handle> free_handles_;
  std::vector<Handle> overflow_;  ///< carried entries during forced growth
};

}  // namespace joinopt

#endif  // JOINOPT_COMMON_FLAT_MAP_H_
