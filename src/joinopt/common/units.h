// Unit helpers. All simulator time is in seconds (double); all sizes are in
// bytes (double — payloads never materialize, only their sizes flow through
// cost formulas). These helpers keep workload configs readable.
#ifndef JOINOPT_COMMON_UNITS_H_
#define JOINOPT_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace joinopt {

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * kKiB;
constexpr double kGiB = 1024.0 * kMiB;

constexpr double KiB(double x) { return x * kKiB; }
constexpr double MiB(double x) { return x * kMiB; }
constexpr double GiB(double x) { return x * kGiB; }

constexpr double Microseconds(double x) { return x * 1e-6; }
constexpr double Milliseconds(double x) { return x * 1e-3; }
constexpr double Seconds(double x) { return x; }
constexpr double Minutes(double x) { return x * 60.0; }

/// Gigabit-per-second link speed expressed as bytes/second.
constexpr double Gbps(double x) { return x * 1e9 / 8.0; }
/// Megabit-per-second link speed expressed as bytes/second.
constexpr double Mbps(double x) { return x * 1e6 / 8.0; }

/// "1.50 GiB", "12.0 KiB", "830 B" — for reports.
std::string FormatBytes(double bytes);
/// "1.23 s", "45.1 ms", "7.8 us" — for reports.
std::string FormatDuration(double seconds);

}  // namespace joinopt

#endif  // JOINOPT_COMMON_UNITS_H_
