// Streaming summary statistics and a fixed-boundary histogram, used by the
// experiment harness to report per-node load distribution and skew.
#ifndef JOINOPT_COMMON_HISTOGRAM_H_
#define JOINOPT_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace joinopt {

/// Running mean / min / max / stddev without storing samples.
class SummaryStats {
 public:
  void Observe(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    // Welford's online algorithm.
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    sum_ += x;
  }

  int64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Coefficient of variation: stddev / mean (0 when mean == 0). A standard
  /// scalar measure of skew across per-node loads.
  double cv() const { return mean() != 0.0 ? stddev() / mean() : 0.0; }

  void Merge(const SummaryStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    double delta = other.mean_ - mean_;
    int64_t total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(total);
    mean_ = (mean_ * static_cast<double>(n_) +
             other.mean_ * static_cast<double>(other.n_)) /
            static_cast<double>(total);
    n_ = total;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over explicit bucket boundaries: bucket i counts values in
/// [bounds[i-1], bounds[i]), with under/overflow buckets at the ends.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void Observe(double x) {
    size_t i = std::upper_bound(bounds_.begin(), bounds_.end(), x) -
               bounds_.begin();
    ++counts_[i];
    stats_.Observe(x);
  }

  int64_t bucket_count(size_t i) const { return counts_[i]; }
  size_t num_buckets() const { return counts_.size(); }
  const SummaryStats& stats() const { return stats_; }

  /// Approximate quantile by linear interpolation within buckets.
  double Quantile(double q) const;

  /// Adds `other`'s counts into this histogram. Both must have been built
  /// over identical bucket boundaries (checked by size only).
  void Merge(const Histogram& other);

  /// Forgets all observations (bounds are kept).
  void Clear();

  std::string ToString() const;

 private:
  std::vector<double> bounds_;
  std::vector<int64_t> counts_;
  SummaryStats stats_;
};

}  // namespace joinopt

#endif  // JOINOPT_COMMON_HISTOGRAM_H_
