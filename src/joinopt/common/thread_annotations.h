// Clang Thread Safety Analysis attribute macros (DESIGN.md §12).
//
// Wrapping the attributes behind JOINOPT_* macros lets the same sources
// compile three ways:
//   * clang with -Wthread-safety: every GUARDED_BY / REQUIRES / ACQUIRE
//     contract is checked statically on every path, including the fault
//     re-sync paths no test schedule reaches (-Werror=thread-safety in CI
//     makes violations build breaks);
//   * gcc (the default toolchain): the attributes vanish and the wrappers
//     in sync.h compile down to plain std::mutex / std::shared_mutex;
//   * any compiler with the runtime lock-order checker on (sync.h), which
//     enforces the rank hierarchy dynamically where the static analysis
//     cannot see (cross-callback orderings).
//
// Naming follows the capability vocabulary of the Clang docs; only the
// subset this codebase uses is defined. Keep this header dependency-free.
#ifndef JOINOPT_COMMON_THREAD_ANNOTATIONS_H_
#define JOINOPT_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define JOINOPT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define JOINOPT_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Marks a class as a capability (a lock). The string names the capability
/// kind in diagnostics ("mutex").
#define JOINOPT_CAPABILITY(x) JOINOPT_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define JOINOPT_SCOPED_CAPABILITY \
  JOINOPT_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only with the capability held.
#define JOINOPT_GUARDED_BY(x) JOINOPT_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* requires the capability.
#define JOINOPT_PT_GUARDED_BY(x) JOINOPT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability held (exclusively) on entry; it is
/// still held on exit.
#define JOINOPT_REQUIRES(...) \
  JOINOPT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires at least shared (reader) access on entry.
#define JOINOPT_REQUIRES_SHARED(...) \
  JOINOPT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define JOINOPT_ACQUIRE(...) \
  JOINOPT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define JOINOPT_ACQUIRE_SHARED(...) \
  JOINOPT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define JOINOPT_RELEASE(...) \
  JOINOPT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define JOINOPT_RELEASE_SHARED(...) \
  JOINOPT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Releases either an exclusive or a shared hold (shared_mutex unlock).
#define JOINOPT_RELEASE_GENERIC(...) \
  JOINOPT_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define JOINOPT_TRY_ACQUIRE(b, ...) \
  JOINOPT_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the capability (anti-deadlock: the function takes
/// it itself, or hands off to code that does).
#define JOINOPT_EXCLUDES(...) \
  JOINOPT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime-checked assertion injecting the "held" fact into the static
/// analysis (for facts the analysis cannot derive, e.g. lambdas).
#define JOINOPT_ASSERT_CAPABILITY(x) \
  JOINOPT_THREAD_ANNOTATION_(assert_capability(x))

#define JOINOPT_ASSERT_SHARED_CAPABILITY(x) \
  JOINOPT_THREAD_ANNOTATION_(assert_shared_capability(x))

/// Function returns a reference to the capability guarding its result.
#define JOINOPT_RETURN_CAPABILITY(x) \
  JOINOPT_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch — forbidden in src/joinopt/{engine,net,cluster,cache}/
/// (the CI clang job builds those with zero suppressions); exists for
/// tests that deliberately violate the discipline to probe the checker.
#define JOINOPT_NO_THREAD_SAFETY_ANALYSIS \
  JOINOPT_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // JOINOPT_COMMON_THREAD_ANNOTATIONS_H_
