#include "joinopt/common/sync.h"

#if JOINOPT_SYNC_CHECKS

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace joinopt {
namespace sync_internal {
namespace {

// One lock the current thread holds, with where it was acquired. The
// stack is strictly LIFO-ish in practice but releases are matched by
// identity (scoped locks can release out of order after an early
// Unlock()).
struct Held {
  const void* mu;
  int rank;
  const char* name;
  const char* file;
  int line;
};

// Function-local to dodge the thread_local-with-dynamic-init ordering
// trap: worker threads may first touch this inside a detached lambda.
std::vector<Held>& HeldStack() {
  thread_local std::vector<Held> stack;
  return stack;
}

[[noreturn]] void Die(const char* what, const Held& incoming,
                      const Held* prior) {
  if (prior != nullptr) {
    std::fprintf(
        stderr,
        "joinopt sync: %s: acquiring \"%s\" (rank %d) at %s:%d while "
        "holding \"%s\" (rank %d) acquired at %s:%d\n",
        what, incoming.name, incoming.rank, incoming.file, incoming.line,
        prior->name, prior->rank, prior->file, prior->line);
  } else {
    std::fprintf(stderr, "joinopt sync: %s: \"%s\" at %s:%d\n", what,
                 incoming.name, incoming.file, incoming.line);
  }
  std::abort();
}

}  // namespace

void NoteAcquire(const void* mu, int rank, const char* name,
                 const char* file, int line, bool try_acquire) {
  std::vector<Held>& held = HeldStack();
  const Held incoming{mu, rank, name, file, line};
  for (const Held& h : held) {
    if (h.mu == mu) {
      // std::mutex/shared_mutex relock is UB; report it before it hangs.
      Die("recursive lock", incoming, &h);
    }
    // A try-acquisition already succeeded without blocking: it cannot be
    // the waiting edge of a deadlock cycle, so out-of-rank try-locks are
    // legal (the opportunistic-probe idiom). Blocking acquisitions out of
    // rank still abort regardless of how the held locks were taken — a
    // cycle deadlocks as soon as one edge can block.
    if (!try_acquire && rank != kNoRank && h.rank != kNoRank &&
        h.rank >= rank) {
      // Equal ranks abort too: same-rank mutexes (invoker shards, node
      // stores) are declared never-nested in lock_ranks.h.
      Die("lock-order inversion", incoming, &h);
    }
  }
  held.push_back(incoming);
}

void CheckNotRecursive(const void* mu, const char* name, const char* file,
                       int line) {
  for (const Held& h : HeldStack()) {
    if (h.mu == mu) {
      const Held incoming{mu, kNoRank, name, file, line};
      Die("recursive lock", incoming, &h);
    }
  }
}

void NoteRelease(const void* mu, const char* name) {
  std::vector<Held>& held = HeldStack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mu == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
  const Held incoming{mu, kNoRank, name, "(release)", 0};
  Die("releasing a mutex this thread does not hold", incoming, nullptr);
}

void AssertHeldOrDie(const void* mu, const char* name) {
  for (const Held& h : HeldStack()) {
    if (h.mu == mu) return;
  }
  const Held incoming{mu, kNoRank, name, "(assert)", 0};
  Die("AssertHeld failed: mutex not held by this thread", incoming,
      nullptr);
}

int HeldLockCountForTest() {
  return static_cast<int>(HeldStack().size());
}

}  // namespace sync_internal
}  // namespace joinopt

#endif  // JOINOPT_SYNC_CHECKS
