#include "joinopt/common/units.h"

#include <cmath>
#include <cstdio>

namespace joinopt {

std::string FormatBytes(double bytes) {
  char buf[64];
  double abs = std::fabs(bytes);
  if (abs >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", bytes / kGiB);
  } else if (abs >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", bytes / kMiB);
  } else if (abs >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", bytes / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  double abs = std::fabs(seconds);
  if (abs >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else if (abs >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace joinopt
