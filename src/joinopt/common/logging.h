// Minimal leveled logger used across the library. Logging is off by default
// (kWarn threshold) so simulations stay quiet; tests and examples can raise
// the level. Not thread safe by design: the simulator is single threaded.
#ifndef JOINOPT_COMMON_LOGGING_H_
#define JOINOPT_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace joinopt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

/// Global log configuration.
class Logger {
 public:
  static LogLevel threshold() { return threshold_; }
  static void set_threshold(LogLevel lvl) { threshold_ = lvl; }
  static std::ostream& stream() { return *stream_; }
  static void set_stream(std::ostream* os) { stream_ = os; }

 private:
  static LogLevel threshold_;
  static std::ostream* stream_;
};

/// One log statement; flushes on destruction. Fatal aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    buf_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
         << "] ";
  }
  ~LogMessage() {
    if (level_ >= Logger::threshold()) {
      Logger::stream() << buf_.str() << std::endl;
    }
    if (level_ == LogLevel::kFatal) std::abort();
  }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    buf_ << v;
    return *this;
  }

 private:
  static const char* LevelName(LogLevel lvl) {
    switch (lvl) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarn:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
      case LogLevel::kFatal:
        return "FATAL";
    }
    return "?";
  }
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream buf_;
};

}  // namespace joinopt

#define JO_LOG(level) \
  ::joinopt::LogMessage(::joinopt::LogLevel::k##level, __FILE__, __LINE__)

#define JO_CHECK(cond)                                         \
  if (!(cond))                                                 \
  ::joinopt::LogMessage(::joinopt::LogLevel::kFatal, __FILE__, \
                        __LINE__)                              \
      << "Check failed: " #cond " "

#define JO_DCHECK(cond) assert(cond)

#endif  // JOINOPT_COMMON_LOGGING_H_
