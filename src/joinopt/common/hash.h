// Hashing utilities shared by the partitioner, the lossy counter and the
// caches. Join keys are 64-bit identifiers (workloads map tokens / FK values
// onto them); partitioning hashes must be stable across runs.
#ifndef JOINOPT_COMMON_HASH_H_
#define JOINOPT_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace joinopt {

/// Join key type. Workload generators map domain values (tokens, foreign
/// keys) to dense or hashed 64-bit keys.
using Key = uint64_t;

/// Node identifier within a cluster (compute or data node).
using NodeId = int32_t;
constexpr NodeId kInvalidNode = -1;

/// Finalizer from MurmurHash3: a fast, high-quality 64-bit mixer. Used to
/// decorrelate sequential keys before modulo partitioning.
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// FNV-1a over bytes; for hashing string tokens to keys.
constexpr uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace joinopt

#endif  // JOINOPT_COMMON_HASH_H_
