#include "joinopt/common/random.h"

#include <cassert>

namespace joinopt {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

ZipfDistribution::ZipfDistribution(uint64_t n, double z) : n_(n), z_(z) {
  assert(n >= 1);
  assert(z >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -z));
  // Exact normalization for Pmf; O(n) once. For very large n where the
  // caller only samples, Pmf is still cheap to precompute lazily, but we
  // keep construction simple: cap the exact sum at 10M terms and use the
  // integral approximation beyond (error < 1e-7 relative there).
  generalized_harmonic_ = 0.0;
  const uint64_t exact_terms = n < 10'000'000 ? n : 10'000'000;
  for (uint64_t i = 1; i <= exact_terms; ++i) {
    generalized_harmonic_ += std::pow(static_cast<double>(i), -z);
  }
  if (exact_terms < n) {
    // Integral tail: sum_{i=a}^{b} i^-z ~ integral_{a-0.5}^{b+0.5} x^-z dx.
    double a = static_cast<double>(exact_terms) + 0.5;
    double b = static_cast<double>(n) + 0.5;
    if (z == 1.0) {
      generalized_harmonic_ += std::log(b / a);
    } else {
      generalized_harmonic_ +=
          (std::pow(b, 1.0 - z) - std::pow(a, 1.0 - z)) / (1.0 - z);
    }
  }
}

double ZipfDistribution::H(double x) const {
  // H(x) = integral of t^-z dt, the antiderivative used by
  // rejection-inversion.
  if (z_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - z_) - 1.0) / (1.0 - z_);
}

double ZipfDistribution::HInverse(double x) const {
  if (z_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - z_), 1.0 / (1.0 - z_));
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  if (z_ == 0.0) return rng.NextBounded(n_);
  // Hormann & Derflinger rejection-inversion for Zipf.
  while (true) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -z_)) {
      return k - 1;  // ranks are 0-based externally
    }
  }
}

double ZipfDistribution::Pmf(uint64_t rank) const {
  assert(rank < n_);
  return std::pow(static_cast<double>(rank + 1), -z_) / generalized_harmonic_;
}

}  // namespace joinopt
