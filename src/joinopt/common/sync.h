// Annotated synchronization primitives (DESIGN.md §12).
//
// joinopt::Mutex / SharedMutex / MutexLock / CondVar wrap the std
// primitives with two orthogonal layers of lock discipline:
//
//   1. Clang Thread Safety attributes (thread_annotations.h). Under
//      clang -Wthread-safety every GUARDED_BY field access and every
//      REQUIRES contract is proved statically on all paths; under gcc
//      the attributes vanish and these classes are thin std wrappers.
//
//   2. A runtime lock-order checker, compiled in when
//      JOINOPT_LOCK_ORDER_CHECK is defined (the default CMake build
//      defines it; -DJOINOPT_LOCK_ORDER_CHECK=OFF strips it) or in any
//      !NDEBUG build. Each Mutex may carry a rank from lock_ranks.h; a
//      per-thread stack of held locks aborts — printing BOTH
//      acquisition sites — when a thread acquires a ranked mutex while
//      holding one of equal or greater rank, re-locks a mutex it
//      already holds, or fails an AssertHeld().
//
// Conventions for migrated code:
//   * every mutex-guarded member is declared with JOINOPT_GUARDED_BY;
//   * private helpers called under a lock take JOINOPT_REQUIRES;
//   * condition waits are written as explicit `while (!cond) cv.Wait(mu);`
//     loops — never lambda predicates, which clang analyzes as separate
//     unannotated functions and would flag the guarded reads inside;
//   * JOINOPT_NO_THREAD_SAFETY_ANALYSIS is forbidden in
//     src/joinopt/{engine,net,cluster,cache}/.
#ifndef JOINOPT_COMMON_SYNC_H_
#define JOINOPT_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "joinopt/common/thread_annotations.h"

#if defined(JOINOPT_LOCK_ORDER_CHECK) || !defined(NDEBUG)
#define JOINOPT_SYNC_CHECKS 1
#else
#define JOINOPT_SYNC_CHECKS 0
#endif

namespace joinopt {

/// Rank given to mutexes that opt out of ordering (still tracked for
/// AssertHeld). Production locks in engine/net/cluster take a rank from
/// lock_ranks.h instead.
inline constexpr int kNoRank = -1;

/// True when the runtime lock-order checker is compiled in (tests use
/// this to gate death tests).
constexpr bool SyncChecksEnabled() { return JOINOPT_SYNC_CHECKS != 0; }

namespace sync_internal {

#if JOINOPT_SYNC_CHECKS
// All four take the mutex identity (its address), its rank and name, and
// the acquisition site captured at the call site via __builtin_FILE/LINE.
// NoteAcquire runs BEFORE blocking on the underlying lock, so a rank
// inversion aborts with a diagnostic instead of deadlocking. An
// acquisition that already *succeeded* through try_lock passes
// try_acquire=true: it can never have blocked, so it cannot be the
// waiting edge of a deadlock cycle and is exempt from the rank check
// (recursive-lock detection still applies — try_lock on a mutex the
// thread already holds is UB for the std primitives).
void NoteAcquire(const void* mu, int rank, const char* name,
                 const char* file, int line, bool try_acquire = false);
// Aborts if the calling thread already holds `mu`. Runs BEFORE a
// try_lock attempt: std::mutex::try_lock on a mutex the thread holds is
// UB, so the recursion diagnostic must not depend on its return value.
void CheckNotRecursive(const void* mu, const char* name, const char* file,
                       int line);
void NoteRelease(const void* mu, const char* name);
void AssertHeldOrDie(const void* mu, const char* name);
// Number of locks the calling thread currently holds (test hook).
int HeldLockCountForTest();
#endif

}  // namespace sync_internal

/// A std::mutex carrying thread-safety annotations and (optionally) a
/// lock-order rank. Copying is disabled; the address is the identity.
class JOINOPT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// A ranked mutex participates in the lock-order hierarchy; `name`
  /// appears in checker diagnostics and must outlive the mutex (string
  /// literals only).
  explicit Mutex(int rank, const char* name = "mutex")
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) JOINOPT_ACQUIRE() {
#if JOINOPT_SYNC_CHECKS
    sync_internal::NoteAcquire(this, rank_, name_, file, line);
#else
    (void)file;
    (void)line;
#endif
    mu_.lock();
  }

  void Unlock() JOINOPT_RELEASE() {
    mu_.unlock();
#if JOINOPT_SYNC_CHECKS
    sync_internal::NoteRelease(this, name_);
#endif
  }

  /// Never blocks, so a successful TryLock is exempt from the rank-order
  /// check: a pure try-lock cycle cannot deadlock (some thread always
  /// fails fast and releases). Recursive TryLock still aborts.
  bool TryLock(const char* file = __builtin_FILE(),
               int line = __builtin_LINE()) JOINOPT_TRY_ACQUIRE(true) {
#if JOINOPT_SYNC_CHECKS
    sync_internal::CheckNotRecursive(this, name_, file, line);
#endif
    if (!mu_.try_lock()) return false;
#if JOINOPT_SYNC_CHECKS
    sync_internal::NoteAcquire(this, rank_, name_, file, line,
                               /*try_acquire=*/true);
#else
    (void)file;
    (void)line;
#endif
    return true;
  }

  /// Aborts in checking builds if the calling thread does not hold this
  /// mutex; under clang it also injects the "held" fact into the static
  /// analysis.
  void AssertHeld() const JOINOPT_ASSERT_CAPABILITY(this) {
#if JOINOPT_SYNC_CHECKS
    sync_internal::AssertHeldOrDie(this, name_);
#endif
  }

  // BasicLockable surface so CondVar (condition_variable_any) can release
  // and reacquire through the same bookkeeping. Annotated identically to
  // Lock/Unlock; prefer the capitalized spellings in joinopt code.
  void lock() JOINOPT_ACQUIRE() { Lock("(condvar wait)", 0); }
  void unlock() JOINOPT_RELEASE() { Unlock(); }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const int rank_ = kNoRank;
  const char* const name_ = "mutex";
};

/// A std::shared_mutex with the same annotation + rank treatment. Reader
/// acquisitions obey the same rank ordering as writers (shared holds can
/// deadlock against writers just as well).
class JOINOPT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(int rank, const char* name = "shared_mutex")
      : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) JOINOPT_ACQUIRE() {
#if JOINOPT_SYNC_CHECKS
    sync_internal::NoteAcquire(this, rank_, name_, file, line);
#else
    (void)file;
    (void)line;
#endif
    mu_.lock();
  }

  void Unlock() JOINOPT_RELEASE() {
    mu_.unlock();
#if JOINOPT_SYNC_CHECKS
    sync_internal::NoteRelease(this, name_);
#endif
  }

  void ReaderLock(const char* file = __builtin_FILE(),
                  int line = __builtin_LINE()) JOINOPT_ACQUIRE_SHARED() {
#if JOINOPT_SYNC_CHECKS
    sync_internal::NoteAcquire(this, rank_, name_, file, line);
#else
    (void)file;
    (void)line;
#endif
    mu_.lock_shared();
  }

  void ReaderUnlock() JOINOPT_RELEASE_SHARED() {
    mu_.unlock_shared();
#if JOINOPT_SYNC_CHECKS
    sync_internal::NoteRelease(this, name_);
#endif
  }

  /// Held either exclusively or shared by the calling thread.
  void AssertHeld() const JOINOPT_ASSERT_CAPABILITY(this) {
#if JOINOPT_SYNC_CHECKS
    sync_internal::AssertHeldOrDie(this, name_);
#endif
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const int rank_ = kNoRank;
  const char* const name_ = "shared_mutex";
};

/// Scoped exclusive lock, relockable (the MutexLocker pattern from the
/// Clang TSA docs): Unlock() releases early, Relock() reacquires, the
/// destructor releases only if currently held.
class JOINOPT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu, const char* file = __builtin_FILE(),
                     int line = __builtin_LINE()) JOINOPT_ACQUIRE(mu)
      : mu_(mu), held_(true) {
    mu_.Lock(file, line);
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() JOINOPT_RELEASE() {
    if (held_) mu_.Unlock();
  }

  /// Release before scope end (e.g. to call out without the lock).
  void Unlock() JOINOPT_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }

  /// Reacquire after an early Unlock().
  void Relock(const char* file = __builtin_FILE(),
              int line = __builtin_LINE()) JOINOPT_ACQUIRE() {
    mu_.Lock(file, line);
    held_ = true;
  }

  /// The underlying mutex (for CondVar waits inside the scope).
  Mutex& mutex() JOINOPT_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  Mutex& mu_;
  bool held_;
};

/// Scoped exclusive lock on a SharedMutex.
class JOINOPT_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu,
                           const char* file = __builtin_FILE(),
                           int line = __builtin_LINE()) JOINOPT_ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(file, line);
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() JOINOPT_RELEASE() { mu_.Unlock(); }

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class JOINOPT_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu,
                           const char* file = __builtin_FILE(),
                           int line = __builtin_LINE())
      JOINOPT_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.ReaderLock(file, line);
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() JOINOPT_RELEASE_GENERIC() { mu_.ReaderUnlock(); }

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to joinopt::Mutex. Deliberately has no
/// predicate overloads: call sites spell the wait as an explicit
/// `while (!cond) cv.Wait(mu);` loop so the guarded reads in the
/// condition stay inside the function the static analysis sees.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, reacquires. `mu` must be held.
  void Wait(Mutex& mu) JOINOPT_REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait; returns std::cv_status::timeout if `seconds` elapsed
  /// without a notification (spurious wakes report no_timeout — callers
  /// loop on their condition anyway).
  std::cv_status WaitFor(Mutex& mu, double seconds) JOINOPT_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::duration<double>(seconds));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace joinopt

#endif  // JOINOPT_COMMON_SYNC_H_
