// The cross-module lock hierarchy, as explicit ranks (DESIGN.md §12).
//
// Rule: a thread may only acquire a mutex whose rank is strictly greater
// than every ranked mutex it already holds. Ranks therefore order locks
// outermost-first: rank N code may call into rank M code and take its
// locks iff N < M. The debug lock-order checker in sync.h aborts — naming
// both acquisition sites — on any violation, so an inversion introduced on
// a rare path (a fault-recovery callback, an epoch re-sync) dies loudly in
// the first test that reaches it instead of deadlocking in production.
//
// Gaps between ranks leave room to slot new locks between layers without
// renumbering. A mutex constructed without a rank is exempt from ordering
// (but still tracked for AssertHeld); production locks in engine/, net/
// and cluster/ must all take a rank from this table. Mutexes sharing a
// rank (e.g. all invoker shards) may never nest with each other — the
// checker rejects equal ranks too.
#ifndef JOINOPT_COMMON_LOCK_RANKS_H_
#define JOINOPT_COMMON_LOCK_RANKS_H_

namespace joinopt {
namespace lock_rank {

/// Chaos soak oracle state (per-key expected sequences + violation log).
/// Outermost by construction: workload threads consult it holding nothing,
/// and it calls nothing while held.
inline constexpr int kChaosOracle = 60;

/// ComputeWorkerGroup::mu_ — outermost: the compute pool's dispatch state
/// is released before any invoker/engine/client call.
inline constexpr int kComputeGroup = 100;

/// ParallelInvoker::barrier_mu_ — only pairs with the outstanding_ atomic.
inline constexpr int kInvokerBarrier = 150;

/// ParallelInvoker::Shard::mu — one stripe of the decision engine + payload
/// cache. The engine, TieredCache and BoundedResultMap inside a shard carry
/// no locks of their own: they are data guarded by this rank.
inline constexpr int kInvokerShard = 200;

/// TieredCache::mu_ — one cache's residency maps and stats. A leaf taken
/// under the owning invoker shard's kInvokerShard lock (the cache calls
/// nothing that locks: BenefitPolicy is plain data); also reachable
/// cross-thread by the subscriber re-sync path and the reactor's Notify
/// flow control, which is why it carries its own lock at all.
inline constexpr int kTieredCache = 220;

/// ParallelInvoker::deleg_mu_ — per-destination delegation batches.
inline constexpr int kInvokerDelegation = 250;

/// BoundedQueue::mu_ (the invoker's prefetch conduit).
inline constexpr int kInvokerQueue = 300;

/// NodeLoadView::mu_ — the shared per-node load estimates (latency EWMAs
/// + cost-model tCompute/tFetch). A leaf consulted by pickers and fed by
/// completion paths; ranked above the invoker shards because cost-model
/// observations are pushed while a shard lock (kInvokerShard) is held.
inline constexpr int kNodeLoadView = 270;

/// UpdateSubscriber::mu_ — per-(node, region) stream positions. Ranked
/// *above* the invoker shards on purpose: the re-sync callback walks shard
/// locks, so holding subscriber state across it would invert; the checker
/// turns that latent deadlock into an abort.
inline constexpr int kSubscriberState = 400;

/// ClusterController::mu_ — strike counts. Released before the topology
/// promotion it triggers (which would be legal nesting, but staying out of
/// the topology lock keeps the dead-node hook callback unconstrained).
inline constexpr int kControllerState = 450;

/// AntiEntropyAgent::mu_ — repair stats + the sweep timer's condvar. The
/// sweep thread releases it before every RPC or node-service call, so it
/// nests with nothing below.
inline constexpr int kAntiEntropy = 460;

/// ClusterDataNode lifecycle — the server pointer and pinned port. Held
/// across Start/Restart, which publish endpoints into the topology and
/// bump epochs under the update lock, so it sits below all three.
inline constexpr int kNodeLifecycle = 480;

/// ClusterNodeService::store_mu_ — one data node's LogStructuredStore.
/// Snapshot predicates consult the topology while this is held, so it
/// ranks below kTopology.
inline constexpr int kNodeStore = 500;

/// ClusterTopology::mu_ — the shared routing view. A leaf: topology
/// methods never call out while holding it.
inline constexpr int kTopology = 560;

/// ClusterNodeService::update_mu_ — region epochs + sink list, held across
/// the sink fan-out (which takes kUpdateSink below it — the one deliberate
/// cross-module nesting in the system).
inline constexpr int kNodeUpdateFanout = 600;

/// RpcServer::ConnSink::mu_ — a subscription's bounded event queue; the
/// innermost lock of the update fan-out path.
inline constexpr int kUpdateSink = 650;

/// RpcServer lifecycle (Start/Stop serialization).
inline constexpr int kServerLifecycle = 700;

/// RpcServer::conns_mu_ — open-connection registry (taken by Stop while
/// the lifecycle lock is held).
inline constexpr int kServerConns = 720;

/// RpcServer::dedup_mu_ — tagged-batch replay cache.
inline constexpr int kServerDedup = 740;

/// ReactorCore per-loop state — the pending-connection handoff list and
/// dirty-connection wake list of one IO thread's event loop. Taken by
/// Stop() under kServerLifecycle and by workers/sinks requesting a flush.
inline constexpr int kReactorLoop = 750;

/// Reactor worker pool's bounded task queue (IO threads push, workers
/// pop; never held across a dispatch).
inline constexpr int kReactorQueue = 760;

/// ReactorConn::mu_ — one connection's bounded write queue and pending
/// Notify coalescing state. Innermost of the reactor: appended to by
/// worker threads (holding nothing) and by update fan-out (holding
/// kNodeUpdateFanout), flushed by the IO thread (holding kReactorLoop at
/// most).
inline constexpr int kReactorConn = 780;

/// RpcClientService / ClusterClientService rec_mu_ — recovery counters and
/// the jitter RNG.
inline constexpr int kClientRecovery = 800;

/// RpcClientService hedged-call completion latch (one per hedged
/// exchange): the winner-takes-first state both attempt threads and the
/// caller synchronize on. Sits above kClientRecovery (counters are
/// updated outside the latch) and below kHedging, though today the
/// budget is consulted between the latch's two wait scopes, not under it.
inline constexpr int kHedgeState = 805;

/// HedgingManager::mu_ — per-endpoint latency quantiles + the hedge-rate
/// token bucket. A leaf: the manager calls nothing while holding it.
inline constexpr int kHedging = 820;

/// RpcClientService::Pool::mu — per-endpoint idle-connection pool; the
/// innermost lock before the raw socket.
inline constexpr int kClientPool = 850;

/// NetFaultInjector::mu_ — the socket-level partition registry. The very
/// innermost lock in the process: its hooks run inside TcpConnect /
/// SendAll / accept paths, which may be reached under any other lock.
inline constexpr int kNetFault = 900;

}  // namespace lock_rank
}  // namespace joinopt

#endif  // JOINOPT_COMMON_LOCK_RANKS_H_
