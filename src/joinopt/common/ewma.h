// Exponentially weighted moving average, the smoothing the paper applies to
// all runtime-measured cost parameters (Section 3.2):
//   value_{t+1} = alpha * measured + (1 - alpha) * value_t
#ifndef JOINOPT_COMMON_EWMA_H_
#define JOINOPT_COMMON_EWMA_H_

#include <cassert>

namespace joinopt {

/// Exponentially smoothed estimate of a scalar. The first observation
/// initializes the estimate directly (no bias toward zero).
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest measurement.
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {
    assert(alpha > 0.0 && alpha <= 1.0);
  }

  /// Feeds one measurement.
  void Observe(double measured) {
    if (!initialized_) {
      value_ = measured;
      initialized_ = true;
    } else {
      value_ = alpha_ * measured + (1.0 - alpha_) * value_;
    }
    ++count_;
  }

  /// Current smoothed value, or `fallback` before any observation.
  double ValueOr(double fallback) const {
    return initialized_ ? value_ : fallback;
  }

  double value() const {
    assert(initialized_);
    return value_;
  }
  bool initialized() const { return initialized_; }
  long count() const { return count_; }
  double alpha() const { return alpha_; }

  /// Forgets all observations.
  void Reset() {
    initialized_ = false;
    value_ = 0.0;
    count_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
  long count_ = 0;
};

}  // namespace joinopt

#endif  // JOINOPT_COMMON_EWMA_H_
