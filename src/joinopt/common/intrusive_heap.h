// Index-tracking binary min-heap over FlatMap entry handles
// (DESIGN.md §14). Replaces the std::multimap ordering indexes
// (TieredCache's benefit order, SpaceSaving's count order): instead of a
// 64-byte red-black node per key, the heap is one flat uint32 array and
// each entry carries its own heap position inline, so reorder-on-update
// is O(log n) with zero allocations and erase-by-entry is O(log n)
// without a lookup.
//
// The Adapter binds the heap to its owning table:
//
//   struct Adapter {
//     bool Less(uint32_t a, uint32_t b) const;   // strict weak order
//     void SetPos(uint32_t handle, uint32_t pos) const;  // store backref
//   };
//
// SetPos is called for every placement, including during sift; an
// entry's stored position is always current once the mutating call
// returns. To reproduce multimap FIFO-among-equal-keys iteration order,
// make Less tie-break on a monotonically assigned per-entry sequence
// number (see TieredCache::Item::seq).
//
// Not thread-safe; externally synchronized with the table it indexes.
#ifndef JOINOPT_COMMON_INTRUSIVE_HEAP_H_
#define JOINOPT_COMMON_INTRUSIVE_HEAP_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace joinopt {

template <typename Adapter>
class IntrusiveMinHeap {
 public:
  using Handle = uint32_t;
  static constexpr uint32_t kNoPos = 0xFFFFFFFFu;

  explicit IntrusiveMinHeap(Adapter adapter = Adapter{})
      : adapter_(adapter) {}

  size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }
  void Reserve(size_t n) { slots_.reserve(n); }

  /// Heap array in heap order (slot 0 = min). Read-only: for scans and
  /// non-mutating k-smallest traversals.
  const std::vector<Handle>& data() const { return slots_; }

  Handle MinHandle() const {
    assert(!slots_.empty());
    return slots_[0];
  }

  void Push(Handle h) {
    slots_.push_back(h);
    SiftUp(static_cast<uint32_t>(slots_.size() - 1));
  }

  /// Removes the min entry. The caller still holds its handle.
  void Pop() { Remove(0); }

  /// Removes the entry at `pos` (its stored heap position).
  void Remove(uint32_t pos) {
    assert(pos < slots_.size());
    uint32_t last = static_cast<uint32_t>(slots_.size() - 1);
    adapter_.SetPos(slots_[pos], kNoPos);
    if (pos != last) {
      slots_[pos] = slots_[last];
      slots_.pop_back();
      Update(pos);
    } else {
      slots_.pop_back();
    }
  }

  /// Restores heap order after the entry at `pos` changed its key.
  void Update(uint32_t pos) {
    assert(pos < slots_.size());
    if (pos > 0 && adapter_.Less(slots_[pos], slots_[(pos - 1) / 2])) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
  }

  void Clear() { slots_.clear(); }

  size_t MemoryBytes() const { return slots_.capacity() * sizeof(Handle); }

 private:
  void SiftUp(uint32_t pos) {
    Handle h = slots_[pos];
    while (pos > 0) {
      uint32_t parent = (pos - 1) / 2;
      if (!adapter_.Less(h, slots_[parent])) break;
      slots_[pos] = slots_[parent];
      adapter_.SetPos(slots_[pos], pos);
      pos = parent;
    }
    slots_[pos] = h;
    adapter_.SetPos(h, pos);
  }

  void SiftDown(uint32_t pos) {
    Handle h = slots_[pos];
    uint32_t n = static_cast<uint32_t>(slots_.size());
    for (;;) {
      uint32_t child = 2 * pos + 1;
      if (child >= n) break;
      if (child + 1 < n && adapter_.Less(slots_[child + 1], slots_[child])) {
        ++child;
      }
      if (!adapter_.Less(slots_[child], h)) break;
      slots_[pos] = slots_[child];
      adapter_.SetPos(slots_[pos], pos);
      pos = child;
    }
    slots_[pos] = h;
    adapter_.SetPos(h, pos);
  }

  Adapter adapter_;
  std::vector<Handle> slots_;
};

}  // namespace joinopt

#endif  // JOINOPT_COMMON_INTRUSIVE_HEAP_H_
