#include "joinopt/common/histogram.h"

#include <sstream>

namespace joinopt {

double Histogram::Quantile(double q) const {
  if (stats_.count() == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(stats_.count());
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      double lo = (i == 0) ? stats_.min() : bounds_[i - 1];
      double hi = (i == counts_.size() - 1) ? stats_.max() : bounds_[i];
      if (counts_[i] == 0) return lo;
      double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return stats_.max();
}

void Histogram::Merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size()) return;  // incompatible bounds
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  stats_.Merge(other.stats_);
}

void Histogram::Clear() {
  counts_.assign(counts_.size(), 0);
  stats_ = SummaryStats();
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << stats_.count() << " mean=" << stats_.mean()
     << " min=" << stats_.min() << " max=" << stats_.max() << " buckets=[";
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i) os << ", ";
    os << counts_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace joinopt
