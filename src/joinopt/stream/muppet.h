// Muppet-style streaming runs (Sections 9.1.2, Appendix E): the same engine
// as the batch runs, but fed as a stream and reported as throughput. The
// MapReduce-family baselines do not apply here — only NO/FC/FD/FR/CO/LO/FO.
#ifndef JOINOPT_STREAM_MUPPET_H_
#define JOINOPT_STREAM_MUPPET_H_

#include "joinopt/harness/runner.h"

namespace joinopt {

struct MuppetRunResult {
  JobResult job;
  /// Input items (spots/tuples) per second.
  double items_per_second = 0.0;
  /// Documents (tweets) per second — the Fig. 6 metric. Computed from the
  /// items/document ratio of the workload.
  double documents_per_second = 0.0;
};

/// Runs `workload` as a stream at maximum sustainable rate (batch-fed,
/// throughput = items / makespan — the steady-state rate the engine can
/// absorb). `documents` is the document count behind the item stream (used
/// for the documents/second metric; pass 0 to skip).
MuppetRunResult RunMuppetStream(const GeneratedWorkload& workload,
                                Strategy strategy,
                                const FrameworkRunConfig& config,
                                int64_t documents = 0);

}  // namespace joinopt

#endif  // JOINOPT_STREAM_MUPPET_H_
