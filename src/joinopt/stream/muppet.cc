#include "joinopt/stream/muppet.h"

namespace joinopt {

MuppetRunResult RunMuppetStream(const GeneratedWorkload& workload,
                                Strategy strategy,
                                const FrameworkRunConfig& config,
                                int64_t documents) {
  MuppetRunResult out;
  out.job = RunFrameworkJob(workload, strategy, config);
  out.items_per_second = out.job.throughput;
  int64_t items = workload.total_tuples();
  if (documents > 0 && items > 0) {
    out.documents_per_second = out.items_per_second *
                               static_cast<double>(documents) /
                               static_cast<double>(items);
  }
  return out;
}

}  // namespace joinopt
