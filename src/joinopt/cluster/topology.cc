#include "joinopt/cluster/topology.h"


namespace joinopt {

namespace {

std::vector<NodeId> AllNodes(int n) {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) ids.push_back(static_cast<NodeId>(i));
  return ids;
}

}  // namespace

ClusterTopology::ClusterTopology(const ClusterTopologyConfig& config)
    : config_(config),
      regions_(config.num_data_nodes * config.regions_per_node,
               AllNodes(config.num_data_nodes), config.replication_factor),
      endpoints_(static_cast<size_t>(config.num_data_nodes)),
      up_(static_cast<size_t>(config.num_data_nodes), 1) {}

NodeId ClusterTopology::OwnerOf(Key key) const {
  ReaderMutexLock lock(mu_);
  return regions_.OwnerOf(key);
}

NodeId ClusterTopology::RegionOwner(int region) const {
  ReaderMutexLock lock(mu_);
  return regions_.RegionOwner(region);
}

std::vector<NodeId> ClusterTopology::ReplicasOf(Key key) const {
  ReaderMutexLock lock(mu_);
  return regions_.ReplicasOf(key);
}

std::vector<NodeId> ClusterTopology::RegionReplicas(int region) const {
  ReaderMutexLock lock(mu_);
  return regions_.RegionReplicas(region);
}

std::vector<NodeId> ClusterTopology::LiveReplicasOf(Key key) const {
  ReaderMutexLock lock(mu_);
  std::vector<NodeId> live;
  for (NodeId node : regions_.ReplicasOf(key)) {
    if (up_[static_cast<size_t>(node)]) live.push_back(node);
  }
  return live;
}

std::vector<int> ClusterTopology::RegionsOwnedBy(NodeId node) const {
  ReaderMutexLock lock(mu_);
  return regions_.RegionsOf(node);
}

void ClusterTopology::SetEndpoint(NodeId node, const RpcEndpoint& endpoint) {
  WriterMutexLock lock(mu_);
  endpoints_[static_cast<size_t>(node)] = endpoint;
  version_.fetch_add(1, std::memory_order_acq_rel);
}

RpcEndpoint ClusterTopology::endpoint(NodeId node) const {
  ReaderMutexLock lock(mu_);
  return endpoints_[static_cast<size_t>(node)];
}

bool ClusterTopology::NodeUp(NodeId node) const {
  ReaderMutexLock lock(mu_);
  return up_[static_cast<size_t>(node)] != 0;
}

int ClusterTopology::MarkNodeDown(NodeId node) {
  WriterMutexLock lock(mu_);
  if (!up_[static_cast<size_t>(node)]) return 0;  // already down
  up_[static_cast<size_t>(node)] = 0;
  int reassigned = 0;
  for (int region : regions_.RegionsOf(node)) {
    for (NodeId follower : regions_.RegionReplicas(region)) {
      if (follower == node || !up_[static_cast<size_t>(follower)]) continue;
      if (regions_.MoveRegion(region, follower).ok()) ++reassigned;
      break;  // first live follower promoted (or move failed; keep as-is)
    }
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return reassigned;
}

void ClusterTopology::MarkNodeUp(NodeId node) {
  WriterMutexLock lock(mu_);
  up_[static_cast<size_t>(node)] = 1;
  version_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace joinopt
