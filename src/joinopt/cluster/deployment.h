// ClusterDeployment: the all-in-one harness tests and benches use to stand
// up a real multi-node deployment on loopback — N ClusterDataNodes (each
// its own RpcServer + LogStructuredStore), the shared ClusterTopology, an
// owner-aware ClusterClientService wired into a ClusterController (every
// client transport error is a failure-detector strike), and factory help
// for Subscribe/Notify streams feeding a ParallelInvoker's re-sync hooks.
//
// Fault API: KillDataNode(i) crashes node i's server and tells *nobody* —
// detection through probes/strikes is the point. RestartDataNode(i)
// re-syncs the node's hosted regions from the surviving primaries (values
// copied under the store locks), restarts the server on the same port
// (epoch bump included) and marks the node up again.
//
// Threading contract: the deployment owns no lock of its own — it composes
// components that each carry theirs (ranks in DESIGN.md §12). Client calls,
// controller probes and fault injections (KillDataNode/RestartDataNode) may
// all race; Restart's re-sync copies values under the source nodes' store
// locks (kNodeStore=500) one node at a time, never two at once, so
// equal-rank store locks are never nested.
#ifndef JOINOPT_CLUSTER_DEPLOYMENT_H_
#define JOINOPT_CLUSTER_DEPLOYMENT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "joinopt/cluster/anti_entropy.h"
#include "joinopt/cluster/cluster_client.h"
#include "joinopt/cluster/controller.h"
#include "joinopt/cluster/data_node.h"
#include "joinopt/cluster/subscriber.h"
#include "joinopt/cluster/topology.h"
#include "joinopt/common/status.h"
#include "joinopt/engine/parallel_invoker.h"

namespace joinopt {

struct ClusterDeploymentOptions {
  ClusterTopologyConfig topology;
  RpcServerOptions server;
  ClusterClientOptions client;
  ClusterControllerOptions controller;
  LogStoreConfig store;
  /// When false, no controller runs (tests that want manual liveness).
  bool start_controller = true;
  /// When true, an AntiEntropyAgent sweeps live replicas on a timer and
  /// repairs divergent regions over the wire (DESIGN.md §16).
  bool start_anti_entropy = false;
  AntiEntropyOptions anti_entropy;
};

class ClusterDeployment {
 public:
  /// `fn` is the server-side registered UDF (coprocessor-style).
  ClusterDeployment(UserFn fn, ClusterDeploymentOptions options = {});
  ~ClusterDeployment();

  ClusterDeployment(const ClusterDeployment&) = delete;
  ClusterDeployment& operator=(const ClusterDeployment&) = delete;

  /// Starts every data node, the client and (optionally) the controller.
  Status Start();
  void Stop();

  /// Writes through the in-process services of every replica (same
  /// seq-bump + notify path a wire Put takes). Returns the primary's
  /// version.
  StatusOr<uint64_t> Seed(Key key, const std::string& value);

  /// Crash: the node's server goes dark; nothing is told (the controller
  /// must detect it).
  void KillDataNode(int i);
  /// Two-way version-aware catch-up with a surviving replica of each hosted
  /// region (ApplyIfNewer both directions: pulls writes that landed while
  /// dark, pushes writes only this node had — and never overwrites a newer
  /// copy on either side), then restart on the same port + mark up. The
  /// epoch bump forces subscribers into targeted re-syncs.
  Status RestartDataNode(int i);

  /// Chaos: kill/revive the failure detector (see ClusterController::Crash).
  /// No-ops when the deployment runs without a controller.
  void KillController();
  void RestartController();

  /// A subscriber on all data nodes whose events drive `invoker`:
  /// in-order notifications call OnUpdate, gaps/epoch bumps trigger
  /// ResyncWhere over exactly the affected region's keys.
  std::unique_ptr<UpdateSubscriber> MakeSubscriber(
      ParallelInvoker* invoker, UpdateSubscriberOptions options = {});

  ClusterTopology& topology() { return *topology_; }
  ClusterClientService& client() { return *client_; }
  ClusterController* controller() { return controller_.get(); }
  AntiEntropyAgent* anti_entropy() { return anti_entropy_.get(); }
  /// Logical net-fault identity of the compute side (client, subscriber,
  /// controller probes): one past the last data node id.
  int32_t compute_identity() const {
    return options_.topology.num_data_nodes;
  }
  ClusterDataNode& data_node(int i) {
    return *nodes_[static_cast<size_t>(i)];
  }
  int num_data_nodes() const { return options_.topology.num_data_nodes; }

 private:
  UserFn fn_;
  ClusterDeploymentOptions options_;
  std::unique_ptr<ClusterTopology> topology_;
  std::vector<std::unique_ptr<ClusterDataNode>> nodes_;
  std::unique_ptr<ClusterClientService> client_;
  std::unique_ptr<ClusterController> controller_;
  std::unique_ptr<AntiEntropyAgent> anti_entropy_;
};

}  // namespace joinopt

#endif  // JOINOPT_CLUSTER_DEPLOYMENT_H_
