// Compute-side half of the wire-level invalidation path: one background
// thread per data node holds a Subscribe stream (frame.h v2) and feeds the
// events into callbacks — OnUpdate for in-order notifications, a targeted
// re-sync for everything the stream cannot vouch for.
//
// Epoch/seq discipline (see net/update_hub.h for the server side): the
// subscriber tracks the last seen (epoch, seq) per (node, region).
//   * seq == last + 1       -> deliver the invalidation (the common case).
//   * seq <= last           -> duplicate (snapshot/stream overlap); ignore.
//   * live-stream seq gap   -> benign: the reactor backend coalesces
//                              same-key events under backpressure, so the
//                              skipped seqs were superseded updates whose
//                              final versions arrive in later events.
//                              Deliver, count as coalesced_gaps, no re-sync.
//   * snapshot-ahead gap    -> updates happened while we were deaf
//                              (reconnect window): re-sync the region.
//   * epoch changed         -> the node restarted; every seq comparison is
//                              void: re-sync the region.
// "Re-sync a region" means dropping every cached payload whose key hashes
// into that region (ParallelInvoker::ResyncWhere) — targeted, not a full
// cache flush; the tests assert keys in untouched regions survive.
//
// Reconnect: any transport error tears the stream down; the thread redials
// with bounded backoff, compares the new epoch snapshot against its state,
// and re-syncs exactly the regions that advanced while it was deaf.
//
// Threading contract: callbacks (OnUpdate, the re-sync hook) fire on the
// per-node stream threads — one thread per data node, so callbacks for
// different nodes may run concurrently and must be thread-safe. mu_ (rank
// kSubscriberState=400, per-region epoch/seq + stats) is released before
// every callback: a slow re-sync stalls its own stream only, and callbacks
// may call back into the subscriber. Rank table: DESIGN.md §12.
#ifndef JOINOPT_CLUSTER_SUBSCRIBER_H_
#define JOINOPT_CLUSTER_SUBSCRIBER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/cluster/topology.h"
#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/status.h"
#include "joinopt/common/sync.h"
#include "joinopt/net/frame.h"

namespace joinopt {

struct UpdateSubscriberOptions {
  /// Poll tick while waiting for events (also the stop-latency bound).
  double poll_tick = 50e-3;
  /// Redial pacing after a torn stream.
  double reconnect_backoff = 20e-3;
  double connect_deadline = 1.0;
  /// NodeId reported in the SubscribeRequest (diagnostic only).
  NodeId subscriber_id = 0;
  /// Logical endpoint id for NetFaultInjector partitions; -1 opts out.
  int32_t net_identity = -1;
};

struct UpdateSubscriberStats {
  int64_t notifications = 0;      ///< in-order events delivered
  int64_t duplicates_ignored = 0;  ///< seq <= last seen (at-least-once overlap)
  int64_t gaps_detected = 0;      ///< snapshot-ahead gaps (missed while deaf)
  /// Seqs skipped on a *live* stream: same-key events the reactor backend
  /// coalesced away. Benign — the delivered event carries the key's final
  /// version — so these do NOT trigger re-syncs.
  int64_t coalesced_gaps = 0;
  int64_t epoch_bumps = 0;        ///< node restarts observed
  int64_t resyncs = 0;            ///< targeted region re-syncs triggered
  int64_t keys_dropped = 0;       ///< payloads dropped by those re-syncs
  int64_t reconnects = 0;         ///< stream teardowns that were redialed
};

class UpdateSubscriber {
 public:
  /// Called for every in-order invalidation event.
  using UpdateFn = std::function<void(Key key, uint64_t version)>;
  /// Called when a region of `node` needs a re-sync; returns the number of
  /// payloads dropped (fed into stats().keys_dropped).
  using ResyncFn = std::function<int64_t(NodeId node, int region)>;

  /// Subscribes to every node in `nodes` (endpoints read from `topology`
  /// at dial time, so a restart on the same port is re-reached). Threads
  /// start immediately.
  UpdateSubscriber(ClusterTopology* topology, std::vector<NodeId> nodes,
                   UpdateFn on_update, ResyncFn on_resync,
                   UpdateSubscriberOptions options = {});
  ~UpdateSubscriber();

  UpdateSubscriber(const UpdateSubscriber&) = delete;
  UpdateSubscriber& operator=(const UpdateSubscriber&) = delete;

  /// Tears all streams down and joins the threads. Idempotent.
  void Stop();

  /// Severs `node`'s stream at the socket (the fault hook: simulates a
  /// half-dead link without touching the server).
  void DropConnectionForTest(NodeId node);

  /// True once every subscribed node has delivered at least one snapshot.
  bool AllSnapshotsSeen() const;

  UpdateSubscriberStats stats() const;

 private:
  void StreamLoop(size_t slot, NodeId node);
  /// Reconciles a snapshot or event against the per-region state; triggers
  /// re-syncs. Returns true when the event should be delivered.
  bool Reconcile(NodeId node, int region, uint64_t epoch, uint64_t seq,
                 bool is_event) JOINOPT_EXCLUDES(mu_);
  /// Runs the re-sync callback with mu_ released: the callback walks
  /// invoker shard locks, which rank *below* kSubscriberState — holding
  /// mu_ across it is the inversion the checker exists to catch.
  void RunResync(NodeId node, int region) JOINOPT_EXCLUDES(mu_);

  ClusterTopology* topology_;
  std::vector<NodeId> nodes_;
  UpdateFn on_update_;
  ResyncFn on_resync_;
  UpdateSubscriberOptions options_;

  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
  /// Live stream fd per slot (-1 when disconnected); written by the stream
  /// thread, shutdown() by Stop/DropConnectionForTest.
  std::vector<std::unique_ptr<std::atomic<int>>> fds_;
  std::vector<std::unique_ptr<std::atomic<bool>>> snapshot_seen_;

  struct RegionState {
    uint64_t epoch = 0;
    uint64_t seq = 0;
    bool seen = false;
  };
  mutable Mutex mu_{lock_rank::kSubscriberState, "UpdateSubscriber::mu_"};
  std::map<std::pair<NodeId, int>, RegionState> state_ JOINOPT_GUARDED_BY(mu_);
  UpdateSubscriberStats stats_ JOINOPT_GUARDED_BY(mu_);
};

}  // namespace joinopt

#endif  // JOINOPT_CLUSTER_SUBSCRIBER_H_
