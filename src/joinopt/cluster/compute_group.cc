#include "joinopt/cluster/compute_group.h"

#include <algorithm>
#include <chrono>

namespace joinopt {

double ComputeWorkerGroup::NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ComputeWorkerGroup::ComputeWorkerGroup(DataService* service, UserFn fn,
                                       ComputeWorkerGroupOptions options)
    : service_(service), fn_(std::move(fn)), options_(std::move(options)) {
  size_t n = static_cast<size_t>(options_.num_workers);
  beats_.reserve(n);
  killed_.reserve(n);
  invokers_.reserve(n);
  for (int i = 0; i < options_.num_workers; ++i) {
    beats_.push_back(std::make_unique<std::atomic<double>>(NowSeconds()));
    killed_.push_back(std::make_unique<std::atomic<bool>>(false));
    invokers_.push_back(
        std::make_unique<ParallelInvoker>(service_, fn_, options_.invoker));
  }
  MutexLock lock(mu_);
  workers_.resize(n);
}

ComputeWorkerGroup::~ComputeWorkerGroup() = default;

void ComputeWorkerGroup::KillWorker(int w) {
  killed_[static_cast<size_t>(w)]->store(true, std::memory_order_release);
  cv_.NotifyAll();
}

ComputeWorkerGroupStats ComputeWorkerGroup::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::vector<StatusOr<std::string>> ComputeWorkerGroup::Run(
    const std::vector<std::pair<Key, std::string>>& items) {
  {
    MutexLock lock(mu_);
    outputs_.assign(items.size(),
                    StatusOr<std::string>(Status::Aborted("never run")));
    written_.assign(items.size(), 0);
    remaining_ = items.size();
    // Deal indices round-robin — the static partition assignment a join's
    // input scan would produce.
    for (size_t i = 0; i < items.size(); ++i) {
      workers_[i % workers_.size()].queue.push_back(i);
    }
  }
  done_.store(items.empty(), std::memory_order_release);

  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (int w = 0; w < options_.num_workers; ++w) {
    threads.emplace_back([this, w, &items] { WorkerLoop(w, items); });
  }
  std::thread monitor([this] { MonitorLoop(); });

  for (auto& t : threads) t.join();
  monitor.join();

  MutexLock lock(mu_);
  return outputs_;
}

void ComputeWorkerGroup::WriteOutput(int w, size_t idx,
                                     StatusOr<std::string> result) {
  MutexLock lock(mu_);
  WorkerState& ws = workers_[static_cast<size_t>(w)];
  for (auto it = ws.claimed.begin(); it != ws.claimed.end(); ++it) {
    if (*it == idx) {
      ws.claimed.erase(it);
      break;
    }
  }
  if (written_[idx]) {
    // A replay (or the original, racing its own replay) already landed.
    ++stats_.duplicate_outputs_suppressed;
    return;
  }
  written_[idx] = 1;
  outputs_[idx] = std::move(result);
  ++stats_.items_completed;
  if (--remaining_ == 0) {
    done_.store(true, std::memory_order_release);
    lock.Unlock();
    cv_.NotifyAll();
  }
}

void ComputeWorkerGroup::WorkerLoop(
    int w, const std::vector<std::pair<Key, std::string>>& items) {
  std::atomic<bool>& killed = *killed_[static_cast<size_t>(w)];
  std::atomic<double>& beat = *beats_[static_cast<size_t>(w)];
  ParallelInvoker& invoker = *invokers_[static_cast<size_t>(w)];
  while (!killed.load(std::memory_order_acquire)) {
    std::vector<size_t> window;
    {
      MutexLock lock(mu_);
      WorkerState& ws = workers_[static_cast<size_t>(w)];
      while (ws.queue.empty() && !done_.load(std::memory_order_acquire) &&
             !killed.load(std::memory_order_acquire)) {
        cv_.Wait(mu_);
      }
      if (done_.load(std::memory_order_acquire) ||
          killed.load(std::memory_order_acquire)) {
        return;
      }
      int take = std::max(1, options_.claim_window);
      while (take-- > 0 && !ws.queue.empty()) {
        window.push_back(ws.queue.front());
        ws.queue.pop_front();
      }
      ws.claimed.insert(ws.claimed.end(), window.begin(), window.end());
    }
    beat.store(NowSeconds(), std::memory_order_release);
    for (size_t idx : window) {
      invoker.SubmitComp(items[idx].first, items[idx].second);
    }
    for (size_t idx : window) {
      auto result = invoker.FetchComp(items[idx].first, items[idx].second);
      if (killed.load(std::memory_order_acquire)) {
        // Crash-before-ack: the computed result dies with the worker; the
        // monitor will replay every claimed-but-unwritten index.
        return;
      }
      beat.store(NowSeconds(), std::memory_order_release);
      WriteOutput(w, idx, std::move(result));
    }
  }
}

void ComputeWorkerGroup::ReplayLocked(int w) {
  WorkerState& lost = workers_[static_cast<size_t>(w)];
  lost.lost = true;
  std::vector<size_t> orphans(lost.claimed.begin(), lost.claimed.end());
  lost.claimed.clear();
  for (size_t idx : lost.queue) orphans.push_back(idx);
  lost.queue.clear();

  std::vector<int> survivors;
  for (int i = 0; i < options_.num_workers; ++i) {
    if (!workers_[static_cast<size_t>(i)].lost &&
        !killed_[static_cast<size_t>(i)]->load(std::memory_order_acquire)) {
      survivors.push_back(i);
    }
  }
  ++stats_.workers_lost;
  if (orphans.empty()) return;
  ++stats_.rebalances;
  size_t rr = 0;
  for (size_t idx : orphans) {
    if (written_[idx]) continue;  // acknowledged before the crash landed
    if (survivors.empty()) {
      // Everyone is gone: fail the item rather than hang Run forever.
      outputs_[idx] = Status::Aborted("all compute workers lost");
      written_[idx] = 1;
      if (--remaining_ == 0) done_.store(true, std::memory_order_release);
      continue;
    }
    workers_[static_cast<size_t>(survivors[rr++ % survivors.size()])]
        .queue.push_back(idx);
    ++stats_.items_replayed;
  }
}

void ComputeWorkerGroup::MonitorLoop() {
  while (!done_.load(std::memory_order_acquire)) {
    {
      MutexLock lock(mu_);
      double now = NowSeconds();
      for (int w = 0; w < options_.num_workers; ++w) {
        WorkerState& ws = workers_[static_cast<size_t>(w)];
        if (ws.lost) continue;
        bool busy = !ws.claimed.empty() || !ws.queue.empty();
        double silence =
            now - beats_[static_cast<size_t>(w)]->load(
                      std::memory_order_acquire);
        if (busy && silence > options_.recovery.request_timeout) {
          ReplayLocked(w);
        }
      }
    }
    cv_.NotifyAll();  // wake survivors for replayed work
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.monitor_interval));
  }
  cv_.NotifyAll();
}

}  // namespace joinopt
