#include "joinopt/cluster/compute_group.h"

#include <algorithm>
#include <chrono>

namespace joinopt {

double ComputeWorkerGroup::NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ComputeWorkerGroup::ComputeWorkerGroup(DataService* service, UserFn fn,
                                       ComputeWorkerGroupOptions options)
    : service_(service), fn_(std::move(fn)), options_(std::move(options)) {
  workers_.resize(static_cast<size_t>(options_.num_workers));
  for (auto& w : workers_) {
    w.last_beat = std::make_unique<std::atomic<double>>(NowSeconds());
    w.killed = std::make_unique<std::atomic<bool>>(false);
  }
  invokers_.reserve(workers_.size());
  for (int i = 0; i < options_.num_workers; ++i) {
    invokers_.push_back(
        std::make_unique<ParallelInvoker>(service_, fn_, options_.invoker));
  }
}

ComputeWorkerGroup::~ComputeWorkerGroup() = default;

void ComputeWorkerGroup::KillWorker(int w) {
  workers_[static_cast<size_t>(w)].killed->store(true,
                                                 std::memory_order_release);
  cv_.notify_all();
}

ComputeWorkerGroupStats ComputeWorkerGroup::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<StatusOr<std::string>> ComputeWorkerGroup::Run(
    const std::vector<std::pair<Key, std::string>>& items) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    outputs_.assign(items.size(),
                    StatusOr<std::string>(Status::Aborted("never run")));
    written_.assign(items.size(), 0);
    remaining_ = items.size();
    // Deal indices round-robin — the static partition assignment a join's
    // input scan would produce.
    for (size_t i = 0; i < items.size(); ++i) {
      workers_[i % workers_.size()].queue.push_back(i);
    }
  }
  done_.store(items.empty(), std::memory_order_release);

  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (int w = 0; w < options_.num_workers; ++w) {
    threads.emplace_back([this, w, &items] { WorkerLoop(w, items); });
  }
  std::thread monitor([this] { MonitorLoop(); });

  for (auto& t : threads) t.join();
  monitor.join();

  std::lock_guard<std::mutex> lock(mu_);
  return outputs_;
}

void ComputeWorkerGroup::WriteOutput(int w, size_t idx,
                                     StatusOr<std::string> result) {
  std::unique_lock<std::mutex> lock(mu_);
  WorkerState& ws = workers_[static_cast<size_t>(w)];
  for (auto it = ws.claimed.begin(); it != ws.claimed.end(); ++it) {
    if (*it == idx) {
      ws.claimed.erase(it);
      break;
    }
  }
  if (written_[idx]) {
    // A replay (or the original, racing its own replay) already landed.
    ++stats_.duplicate_outputs_suppressed;
    return;
  }
  written_[idx] = 1;
  outputs_[idx] = std::move(result);
  ++stats_.items_completed;
  if (--remaining_ == 0) {
    done_.store(true, std::memory_order_release);
    lock.unlock();
    cv_.notify_all();
  }
}

void ComputeWorkerGroup::WorkerLoop(
    int w, const std::vector<std::pair<Key, std::string>>& items) {
  WorkerState& ws = workers_[static_cast<size_t>(w)];
  ParallelInvoker& invoker = *invokers_[static_cast<size_t>(w)];
  while (!ws.killed->load(std::memory_order_acquire)) {
    std::vector<size_t> window;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return !ws.queue.empty() || done_.load(std::memory_order_acquire) ||
               ws.killed->load(std::memory_order_acquire);
      });
      if (done_.load(std::memory_order_acquire) ||
          ws.killed->load(std::memory_order_acquire)) {
        return;
      }
      int take = std::max(1, options_.claim_window);
      while (take-- > 0 && !ws.queue.empty()) {
        window.push_back(ws.queue.front());
        ws.queue.pop_front();
      }
      ws.claimed.insert(ws.claimed.end(), window.begin(), window.end());
    }
    ws.last_beat->store(NowSeconds(), std::memory_order_release);
    for (size_t idx : window) {
      invoker.SubmitComp(items[idx].first, items[idx].second);
    }
    for (size_t idx : window) {
      auto result = invoker.FetchComp(items[idx].first, items[idx].second);
      if (ws.killed->load(std::memory_order_acquire)) {
        // Crash-before-ack: the computed result dies with the worker; the
        // monitor will replay every claimed-but-unwritten index.
        return;
      }
      ws.last_beat->store(NowSeconds(), std::memory_order_release);
      WriteOutput(w, idx, std::move(result));
    }
  }
}

void ComputeWorkerGroup::ReplayLocked(int w) {
  WorkerState& lost = workers_[static_cast<size_t>(w)];
  lost.lost = true;
  std::vector<size_t> orphans(lost.claimed.begin(), lost.claimed.end());
  lost.claimed.clear();
  for (size_t idx : lost.queue) orphans.push_back(idx);
  lost.queue.clear();

  std::vector<int> survivors;
  for (int i = 0; i < options_.num_workers; ++i) {
    const WorkerState& cand = workers_[static_cast<size_t>(i)];
    if (!cand.lost && !cand.killed->load(std::memory_order_acquire)) {
      survivors.push_back(i);
    }
  }
  ++stats_.workers_lost;
  if (orphans.empty()) return;
  ++stats_.rebalances;
  size_t rr = 0;
  for (size_t idx : orphans) {
    if (written_[idx]) continue;  // acknowledged before the crash landed
    if (survivors.empty()) {
      // Everyone is gone: fail the item rather than hang Run forever.
      outputs_[idx] = Status::Aborted("all compute workers lost");
      written_[idx] = 1;
      if (--remaining_ == 0) done_.store(true, std::memory_order_release);
      continue;
    }
    workers_[static_cast<size_t>(survivors[rr++ % survivors.size()])]
        .queue.push_back(idx);
    ++stats_.items_replayed;
  }
}

void ComputeWorkerGroup::MonitorLoop() {
  while (!done_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      double now = NowSeconds();
      for (int w = 0; w < options_.num_workers; ++w) {
        WorkerState& ws = workers_[static_cast<size_t>(w)];
        if (ws.lost) continue;
        bool busy = !ws.claimed.empty() || !ws.queue.empty();
        double silence =
            now - ws.last_beat->load(std::memory_order_acquire);
        if (busy && silence > options_.recovery.request_timeout) {
          ReplayLocked(w);
        }
      }
    }
    cv_.notify_all();  // wake survivors for replayed work
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.monitor_interval));
  }
  cv_.notify_all();
}

}  // namespace joinopt
