// ComputeWorkerGroup: a pool of compute "nodes" (each a worker thread with
// its own ParallelInvoker — its own decision engine, caches and worker
// pool) jointly draining one input partition list, with crash recovery for
// the compute side: when a worker dies mid-join its unacknowledged items
// are replayed on the survivors, exactly once.
//
// Work distribution is the simulator's RebalanceInput applied to live
// threads: input indices are dealt round-robin into per-worker deques; a
// worker claims a small window, prefetches it through SubmitComp, then
// FetchComps and writes each output. A monitor thread watches heartbeats
// (one beat per claim/completion); a worker silent for longer than
// recovery.request_timeout is declared lost and its *unwritten* claimed
// items — plus everything still queued on its deque — are re-dealt to the
// survivors (stats: workers_lost, items_replayed, rebalances).
//
// Exactly-once outputs rest on three layers, each covering the others'
// gap:
//   1. only unwritten work is replayed (acknowledged outputs never re-run);
//   2. the output table is first-write-wins — a "lost" worker that was
//      merely slow and completes after replay is suppressed, not doubled
//      (duplicate_outputs_suppressed counts these zombies); and
//   3. delegated batches are tagged, so a replay that re-sends a batch the
//      data node already ran is answered from its dedup cache (RpcServer)
//      instead of re-executing.
// The fault test diffs the output table of a kill-mid-join run against a
// fault-free run: byte-identical, nothing lost, nothing doubled.
//
// Threading contract: Run() is single-caller; workers + the monitor are
// internal threads. mu_ (rank kComputeGroup=100, the lowest rank in the
// tree: deques, claims, outputs) is released before any invoker call, so
// worker threads never hold it while the engine takes its shard locks.
// Heartbeats are atomics outside the lock — the monitor reads them
// without contending with claim traffic. Rank table: DESIGN.md §12.
#ifndef JOINOPT_CLUSTER_COMPUTE_GROUP_H_
#define JOINOPT_CLUSTER_COMPUTE_GROUP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/status.h"
#include "joinopt/common/sync.h"
#include "joinopt/engine/parallel_invoker.h"
#include "joinopt/engine/types.h"

namespace joinopt {

struct ComputeWorkerGroupOptions {
  int num_workers = 4;
  /// Indices a worker claims (and prefetches) per window.
  int claim_window = 8;
  /// Per-worker ParallelInvoker configuration.
  ParallelInvokerOptions invoker;
  /// request_timeout bounds heartbeat staleness before a worker is
  /// declared lost (the same deadline vocabulary as the data side).
  RecoveryConfig recovery;
  /// Monitor sweep pause.
  double monitor_interval = 10e-3;

  ComputeWorkerGroupOptions() {
    recovery.enabled = true;
    recovery.request_timeout = 250e-3;
  }
};

struct ComputeWorkerGroupStats {
  int64_t items_completed = 0;
  int64_t workers_lost = 0;
  /// Unacknowledged items re-dealt after a worker loss.
  int64_t items_replayed = 0;
  /// Worker losses that triggered a re-deal (RebalanceInput events).
  int64_t rebalances = 0;
  /// Late writes by zombies (declared lost, then completed anyway).
  int64_t duplicate_outputs_suppressed = 0;
};

class ComputeWorkerGroup {
 public:
  /// `service` is shared by every worker's invoker (typically a
  /// ClusterClientService); `fn` must be thread-safe and deterministic —
  /// replay assumes f(k, p, v) is reproducible.
  ComputeWorkerGroup(DataService* service, UserFn fn,
                     ComputeWorkerGroupOptions options = {});
  ~ComputeWorkerGroup();

  ComputeWorkerGroup(const ComputeWorkerGroup&) = delete;
  ComputeWorkerGroup& operator=(const ComputeWorkerGroup&) = delete;

  /// Runs every item to a written output (value or final error status).
  /// Blocks until done; callable once per instance.
  std::vector<StatusOr<std::string>> Run(
      const std::vector<std::pair<Key, std::string>>& items);

  /// Crash worker `w` (callable from another thread while Run is in
  /// flight): it stops heartbeating and discards any result it has not
  /// yet written — the monitor must *detect* the silence and replay.
  void KillWorker(int w);

  ComputeWorkerGroupStats stats() const;
  int num_workers() const { return options_.num_workers; }
  /// The invoker of worker `w` (valid during and after Run; tests read
  /// merged stats off it).
  ParallelInvoker& invoker(int w) { return *invokers_[static_cast<size_t>(w)]; }

 private:
  /// All contents are guarded by mu_ (reached only through workers_, which
  /// is GUARDED_BY(mu_); a nested struct cannot name the enclosing class's
  /// member mutex in an attribute). The heartbeat/kill atomics live in the
  /// parallel beats_/killed_ vectors instead: workers touch those lock-free
  /// on the hot path, which a guarded member could not express.
  struct WorkerState {
    std::deque<size_t> queue;
    std::vector<size_t> claimed;  // current window, claimed but unwritten
    bool lost = false;
  };

  void WorkerLoop(int w, const std::vector<std::pair<Key, std::string>>& items);
  void MonitorLoop();
  /// Declares `w` lost and re-deals its unwritten work.
  void ReplayLocked(int w) JOINOPT_REQUIRES(mu_);
  void WriteOutput(int w, size_t idx, StatusOr<std::string> result)
      JOINOPT_EXCLUDES(mu_);
  static double NowSeconds();

  DataService* service_;
  UserFn fn_;
  ComputeWorkerGroupOptions options_;
  std::vector<std::unique_ptr<ParallelInvoker>> invokers_;
  /// Last heartbeat (monotonic seconds) per worker; written lock-free on
  /// every claim/completion, read by the monitor.
  std::vector<std::unique_ptr<std::atomic<double>>> beats_;
  /// KillWorker's crash switch per worker; checked lock-free mid-window.
  std::vector<std::unique_ptr<std::atomic<bool>>> killed_;

  /// mu_ is never held across invoker calls (SubmitComp/FetchComp), so it
  /// cannot participate in an inversion with the invoker's shard locks.
  mutable Mutex mu_{lock_rank::kComputeGroup, "ComputeWorkerGroup::mu_"};
  CondVar cv_;
  std::vector<WorkerState> workers_ JOINOPT_GUARDED_BY(mu_);
  std::vector<StatusOr<std::string>> outputs_ JOINOPT_GUARDED_BY(mu_);
  std::vector<char> written_ JOINOPT_GUARDED_BY(mu_);
  size_t remaining_ JOINOPT_GUARDED_BY(mu_) = 0;
  ComputeWorkerGroupStats stats_ JOINOPT_GUARDED_BY(mu_);
  std::atomic<bool> done_{false};
};

}  // namespace joinopt

#endif  // JOINOPT_CLUSTER_COMPUTE_GROUP_H_
