// ComputeWorkerGroup: a pool of compute "nodes" (each a worker thread with
// its own ParallelInvoker — its own decision engine, caches and worker
// pool) jointly draining one input partition list, with crash recovery for
// the compute side: when a worker dies mid-join its unacknowledged items
// are replayed on the survivors, exactly once.
//
// Work distribution is the simulator's RebalanceInput applied to live
// threads: input indices are dealt round-robin into per-worker deques; a
// worker claims a small window, prefetches it through SubmitComp, then
// FetchComps and writes each output. A monitor thread watches heartbeats
// (one beat per claim/completion); a worker silent for longer than
// recovery.request_timeout is declared lost and its *unwritten* claimed
// items — plus everything still queued on its deque — are re-dealt to the
// survivors (stats: workers_lost, items_replayed, rebalances).
//
// Exactly-once outputs rest on three layers, each covering the others'
// gap:
//   1. only unwritten work is replayed (acknowledged outputs never re-run);
//   2. the output table is first-write-wins — a "lost" worker that was
//      merely slow and completes after replay is suppressed, not doubled
//      (duplicate_outputs_suppressed counts these zombies); and
//   3. delegated batches are tagged, so a replay that re-sends a batch the
//      data node already ran is answered from its dedup cache (RpcServer)
//      instead of re-executing.
// The fault test diffs the output table of a kill-mid-join run against a
// fault-free run: byte-identical, nothing lost, nothing doubled.
#ifndef JOINOPT_CLUSTER_COMPUTE_GROUP_H_
#define JOINOPT_CLUSTER_COMPUTE_GROUP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/common/status.h"
#include "joinopt/engine/parallel_invoker.h"
#include "joinopt/engine/types.h"

namespace joinopt {

struct ComputeWorkerGroupOptions {
  int num_workers = 4;
  /// Indices a worker claims (and prefetches) per window.
  int claim_window = 8;
  /// Per-worker ParallelInvoker configuration.
  ParallelInvokerOptions invoker;
  /// request_timeout bounds heartbeat staleness before a worker is
  /// declared lost (the same deadline vocabulary as the data side).
  RecoveryConfig recovery;
  /// Monitor sweep pause.
  double monitor_interval = 10e-3;

  ComputeWorkerGroupOptions() {
    recovery.enabled = true;
    recovery.request_timeout = 250e-3;
  }
};

struct ComputeWorkerGroupStats {
  int64_t items_completed = 0;
  int64_t workers_lost = 0;
  /// Unacknowledged items re-dealt after a worker loss.
  int64_t items_replayed = 0;
  /// Worker losses that triggered a re-deal (RebalanceInput events).
  int64_t rebalances = 0;
  /// Late writes by zombies (declared lost, then completed anyway).
  int64_t duplicate_outputs_suppressed = 0;
};

class ComputeWorkerGroup {
 public:
  /// `service` is shared by every worker's invoker (typically a
  /// ClusterClientService); `fn` must be thread-safe and deterministic —
  /// replay assumes f(k, p, v) is reproducible.
  ComputeWorkerGroup(DataService* service, UserFn fn,
                     ComputeWorkerGroupOptions options = {});
  ~ComputeWorkerGroup();

  ComputeWorkerGroup(const ComputeWorkerGroup&) = delete;
  ComputeWorkerGroup& operator=(const ComputeWorkerGroup&) = delete;

  /// Runs every item to a written output (value or final error status).
  /// Blocks until done; callable once per instance.
  std::vector<StatusOr<std::string>> Run(
      const std::vector<std::pair<Key, std::string>>& items);

  /// Crash worker `w` (callable from another thread while Run is in
  /// flight): it stops heartbeating and discards any result it has not
  /// yet written — the monitor must *detect* the silence and replay.
  void KillWorker(int w);

  ComputeWorkerGroupStats stats() const;
  int num_workers() const { return options_.num_workers; }
  /// The invoker of worker `w` (valid during and after Run; tests read
  /// merged stats off it).
  ParallelInvoker& invoker(int w) { return *invokers_[static_cast<size_t>(w)]; }

 private:
  struct WorkerState {
    std::deque<size_t> queue;          // guarded by mu_
    std::vector<size_t> claimed;       // guarded by mu_ (current window)
    bool lost = false;                 // guarded by mu_
    std::unique_ptr<std::atomic<double>> last_beat;  // monotonic seconds
    std::unique_ptr<std::atomic<bool>> killed;
  };

  void WorkerLoop(int w, const std::vector<std::pair<Key, std::string>>& items);
  void MonitorLoop();
  /// Declares `w` lost and re-deals its unwritten work. Caller holds mu_.
  void ReplayLocked(int w);
  void WriteOutput(int w, size_t idx, StatusOr<std::string> result);
  static double NowSeconds();

  DataService* service_;
  UserFn fn_;
  ComputeWorkerGroupOptions options_;
  std::vector<std::unique_ptr<ParallelInvoker>> invokers_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<WorkerState> workers_;
  std::vector<StatusOr<std::string>> outputs_;  // guarded by mu_
  std::vector<char> written_;                   // guarded by mu_
  size_t remaining_ = 0;                        // guarded by mu_
  ComputeWorkerGroupStats stats_;               // guarded by mu_
  std::atomic<bool> done_{false};
};

}  // namespace joinopt

#endif  // JOINOPT_CLUSTER_COMPUTE_GROUP_H_
