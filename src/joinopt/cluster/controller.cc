#include "joinopt/cluster/controller.h"

#include "joinopt/net/socket.h"

namespace joinopt {

ClusterController::ClusterController(ClusterTopology* topology,
                                     ClusterControllerOptions options)
    : topology_(topology),
      options_(std::move(options)),
      consecutive_(static_cast<size_t>(topology->num_nodes()), 0),
      rejoin_streak_(static_cast<size_t>(topology->num_nodes()), 0) {
  probes_.reserve(consecutive_.size());
  for (int node = 0; node < topology_->num_nodes(); ++node) {
    RpcClientOptions copts;
    copts.endpoints = {topology_->endpoint(static_cast<NodeId>(node))};
    copts.connect_deadline = options_.recovery.request_timeout;
    copts.recovery.enabled = false;
    copts.recovery.request_timeout = options_.recovery.request_timeout;
    copts.balance_reads = false;
    copts.net_identity = options_.net_identity;
    probes_.push_back(std::make_unique<RpcClientService>(std::move(copts)));
  }
  prober_ = std::thread([this] { ProbeLoop(); });
}

ClusterController::~ClusterController() { Stop(); }

void ClusterController::Stop() {
  stop_.store(true, std::memory_order_release);
  cv_.NotifyAll();
  if (prober_.joinable()) prober_.join();
}

bool ClusterController::Strike(NodeId node) {
  bool declare = false;
  {
    MutexLock lock(mu_);
    int& strikes = consecutive_[static_cast<size_t>(node)];
    ++strikes;
    if (strikes >= options_.recovery.max_attempts) {
      strikes = 0;
      declare = true;
    }
  }
  if (!declare || !topology_->NodeUp(node)) return false;
  int reassigned = topology_->MarkNodeDown(node);
  {
    MutexLock lock(mu_);
    ++stats_.nodes_declared_dead;
    stats_.regions_reassigned += reassigned;
  }
  if (on_node_dead_) on_node_dead_(node);
  return true;
}

void ClusterController::ClearStrikes(NodeId node) {
  MutexLock lock(mu_);
  consecutive_[static_cast<size_t>(node)] = 0;
}

void ClusterController::Crash() {
  crashed_.store(true, std::memory_order_release);
  MutexLock lock(mu_);
  ++stats_.crashes;
}

void ClusterController::Restart() {
  {
    MutexLock lock(mu_);
    for (int& strikes : consecutive_) strikes = 0;
    for (int& streak : rejoin_streak_) streak = 0;
  }
  crashed_.store(false, std::memory_order_release);
  cv_.NotifyAll();  // wake the prober so detection resumes immediately
}

void ClusterController::ReportFailure(NodeId node) {
  if (node < 0 || node >= topology_->num_nodes()) return;
  if (crashed_.load(std::memory_order_acquire)) {
    MutexLock lock(mu_);
    ++stats_.dropped_while_crashed;
    return;
  }
  {
    MutexLock lock(mu_);
    ++stats_.reported_failures;
  }
  Strike(node);
}

void ClusterController::ProbeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (crashed_.load(std::memory_order_acquire)) {
      // Dead detectors don't probe; sleep out the crash window.
      MutexLock lock(mu_);
      ++stats_.dropped_while_crashed;
      if (!stop_.load(std::memory_order_acquire)) {
        cv_.WaitFor(mu_, options_.probe_interval);
      }
      continue;
    }
    for (int node = 0; node < topology_->num_nodes(); ++node) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (crashed_.load(std::memory_order_acquire)) break;
      NodeId id = static_cast<NodeId>(node);
      bool was_up = topology_->NodeUp(id);
      if (!was_up && options_.rejoin_threshold <= 0) continue;
      {
        MutexLock lock(mu_);
        ++stats_.probes;
      }
      auto stat = probes_[static_cast<size_t>(node)]->Stat(0);
      // Any in-band answer — NotFound for key 0 included — proves the
      // node is serving.
      bool serving = stat.ok() || !IsTransportError(stat.status());
      if (was_up) {
        if (serving) {
          ClearStrikes(id);
        } else {
          {
            MutexLock lock(mu_);
            ++stats_.probe_failures;
          }
          Strike(id);
        }
      } else if (serving) {
        // A down node answering probes was falsely suspected (or quietly
        // restarted); after a streak of successes, retract the verdict.
        // It re-enters its regions as a follower and anti-entropy repairs
        // what it missed — no process restart required.
        bool rejoin = false;
        {
          MutexLock lock(mu_);
          int& streak = rejoin_streak_[static_cast<size_t>(node)];
          if (++streak >= options_.rejoin_threshold) {
            streak = 0;
            consecutive_[static_cast<size_t>(node)] = 0;
            ++stats_.nodes_rejoined;
            rejoin = true;
          }
        }
        // Lock released first: MarkNodeUp takes the topology lock, and
        // declaration-path callers may hold it above ours.
        if (rejoin) topology_->MarkNodeUp(id);
      } else {
        MutexLock lock(mu_);
        rejoin_streak_[static_cast<size_t>(node)] = 0;
      }
    }
    // Single timed wait, no predicate: a spurious wake only costs one
    // early trip around the outer loop, which re-checks stop_ anyway.
    MutexLock lock(mu_);
    if (!stop_.load(std::memory_order_acquire)) {
      cv_.WaitFor(mu_, options_.probe_interval);
    }
  }
}

ClusterControllerStats ClusterController::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace joinopt
