#include "joinopt/cluster/controller.h"

#include "joinopt/net/socket.h"

namespace joinopt {

ClusterController::ClusterController(ClusterTopology* topology,
                                     ClusterControllerOptions options)
    : topology_(topology),
      options_(std::move(options)),
      consecutive_(static_cast<size_t>(topology->num_nodes()), 0) {
  probes_.reserve(consecutive_.size());
  for (int node = 0; node < topology_->num_nodes(); ++node) {
    RpcClientOptions copts;
    copts.endpoints = {topology_->endpoint(static_cast<NodeId>(node))};
    copts.connect_deadline = options_.recovery.request_timeout;
    copts.recovery.enabled = false;
    copts.recovery.request_timeout = options_.recovery.request_timeout;
    copts.balance_reads = false;
    probes_.push_back(std::make_unique<RpcClientService>(std::move(copts)));
  }
  prober_ = std::thread([this] { ProbeLoop(); });
}

ClusterController::~ClusterController() { Stop(); }

void ClusterController::Stop() {
  stop_.store(true, std::memory_order_release);
  cv_.NotifyAll();
  if (prober_.joinable()) prober_.join();
}

bool ClusterController::Strike(NodeId node) {
  bool declare = false;
  {
    MutexLock lock(mu_);
    int& strikes = consecutive_[static_cast<size_t>(node)];
    ++strikes;
    if (strikes >= options_.recovery.max_attempts) {
      strikes = 0;
      declare = true;
    }
  }
  if (!declare || !topology_->NodeUp(node)) return false;
  int reassigned = topology_->MarkNodeDown(node);
  {
    MutexLock lock(mu_);
    ++stats_.nodes_declared_dead;
    stats_.regions_reassigned += reassigned;
  }
  if (on_node_dead_) on_node_dead_(node);
  return true;
}

void ClusterController::ClearStrikes(NodeId node) {
  MutexLock lock(mu_);
  consecutive_[static_cast<size_t>(node)] = 0;
}

void ClusterController::ReportFailure(NodeId node) {
  if (node < 0 || node >= topology_->num_nodes()) return;
  {
    MutexLock lock(mu_);
    ++stats_.reported_failures;
  }
  Strike(node);
}

void ClusterController::ProbeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    for (int node = 0; node < topology_->num_nodes(); ++node) {
      if (stop_.load(std::memory_order_acquire)) return;
      NodeId id = static_cast<NodeId>(node);
      if (!topology_->NodeUp(id)) continue;  // dead stay dead until rejoin
      {
        MutexLock lock(mu_);
        ++stats_.probes;
      }
      auto stat = probes_[static_cast<size_t>(node)]->Stat(0);
      if (stat.ok() || !IsTransportError(stat.status())) {
        // Any in-band answer — NotFound for key 0 included — proves the
        // node is serving.
        ClearStrikes(id);
      } else {
        {
          MutexLock lock(mu_);
          ++stats_.probe_failures;
        }
        Strike(id);
      }
    }
    // Single timed wait, no predicate: a spurious wake only costs one
    // early trip around the outer loop, which re-checks stop_ anyway.
    MutexLock lock(mu_);
    if (!stop_.load(std::memory_order_acquire)) {
      cv_.WaitFor(mu_, options_.probe_interval);
    }
  }
}

ClusterControllerStats ClusterController::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace joinopt
