#include "joinopt/cluster/deployment.h"

#include <unordered_set>

namespace joinopt {

ClusterDeployment::ClusterDeployment(UserFn fn,
                                     ClusterDeploymentOptions options)
    : fn_(std::move(fn)), options_(std::move(options)) {
  topology_ = std::make_unique<ClusterTopology>(options_.topology);
}

ClusterDeployment::~ClusterDeployment() { Stop(); }

Status ClusterDeployment::Start() {
  nodes_.reserve(static_cast<size_t>(options_.topology.num_data_nodes));
  for (int i = 0; i < options_.topology.num_data_nodes; ++i) {
    nodes_.push_back(std::make_unique<ClusterDataNode>(
        static_cast<NodeId>(i), topology_.get(), fn_, options_.server,
        options_.store));
    JOINOPT_RETURN_NOT_OK(nodes_.back()->Start());
  }
  client_ =
      std::make_unique<ClusterClientService>(topology_.get(), options_.client);
  if (options_.start_controller) {
    controller_ = std::make_unique<ClusterController>(topology_.get(),
                                                      options_.controller);
    client_->set_failure_listener(
        [this](NodeId node) { controller_->ReportFailure(node); });
  }
  return Status::OK();
}

void ClusterDeployment::Stop() {
  if (controller_) controller_->Stop();
  for (auto& node : nodes_) {
    if (node) node->Stop();
  }
}

StatusOr<uint64_t> ClusterDeployment::Seed(Key key, const std::string& value) {
  std::vector<NodeId> chain = topology_->ReplicasOf(key);
  StatusOr<uint64_t> primary = Status::Aborted("no replicas");
  for (size_t i = 0; i < chain.size(); ++i) {
    auto version =
        nodes_[static_cast<size_t>(chain[i])]->service().Put(key, value);
    if (i == 0) primary = std::move(version);
  }
  return primary;
}

void ClusterDeployment::KillDataNode(int i) {
  nodes_[static_cast<size_t>(i)]->Stop();
}

Status ClusterDeployment::RestartDataNode(int i) {
  NodeId node = static_cast<NodeId>(i);
  ClusterNodeService& target = nodes_[static_cast<size_t>(i)]->service();
  // Regions this node hosts in any replica role.
  std::unordered_set<int> hosted;
  for (int r = 0; r < topology_->num_regions(); ++r) {
    for (NodeId rep : topology_->RegionReplicas(r)) {
      if (rep == node) hosted.insert(r);
    }
  }
  // Catch up from each region's *current* primary: copy every live record
  // whose value diverged (writes that happened while this node was dark).
  for (int j = 0; j < topology_->num_nodes(); ++j) {
    NodeId source = static_cast<NodeId>(j);
    if (source == node || !topology_->NodeUp(source)) continue;
    if (!nodes_[static_cast<size_t>(j)]->running()) continue;
    ClusterNodeService& src = nodes_[static_cast<size_t>(j)]->service();
    auto records = src.SnapshotWhere([&](Key key) {
      int region = topology_->RegionOf(key);
      return hosted.count(region) > 0 &&
             topology_->RegionOwner(region) == source;
    });
    for (auto& [key, value] : records) {
      auto current = target.Fetch(key);
      if (current.ok() && current->value == value) continue;  // in sync
      JOINOPT_RETURN_NOT_OK(target.Put(key, value).status());
    }
  }
  JOINOPT_RETURN_NOT_OK(nodes_[static_cast<size_t>(i)]->Restart());
  topology_->MarkNodeUp(node);
  return Status::OK();
}

std::unique_ptr<UpdateSubscriber> ClusterDeployment::MakeSubscriber(
    ParallelInvoker* invoker, UpdateSubscriberOptions options) {
  std::vector<NodeId> nodes;
  for (int i = 0; i < topology_->num_nodes(); ++i) {
    nodes.push_back(static_cast<NodeId>(i));
  }
  ClusterTopology* topology = topology_.get();
  return std::make_unique<UpdateSubscriber>(
      topology, std::move(nodes),
      [invoker](Key key, uint64_t version) { invoker->OnUpdate(key, version); },
      [invoker, topology](NodeId /*node*/, int region) {
        return invoker->ResyncWhere(
            [topology, region](Key key) {
              return topology->RegionOf(key) == region;
            });
      },
      options);
}

}  // namespace joinopt
