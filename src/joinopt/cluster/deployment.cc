#include "joinopt/cluster/deployment.h"

namespace joinopt {

ClusterDeployment::ClusterDeployment(UserFn fn,
                                     ClusterDeploymentOptions options)
    : fn_(std::move(fn)), options_(std::move(options)) {
  topology_ = std::make_unique<ClusterTopology>(options_.topology);
}

ClusterDeployment::~ClusterDeployment() { Stop(); }

Status ClusterDeployment::Start() {
  nodes_.reserve(static_cast<size_t>(options_.topology.num_data_nodes));
  for (int i = 0; i < options_.topology.num_data_nodes; ++i) {
    // Each node's server answers as its own logical net-fault endpoint so
    // half-open partitions can sever individual node↔node paths.
    RpcServerOptions sopts = options_.server;
    if (sopts.net_identity < 0) sopts.net_identity = i;
    nodes_.push_back(std::make_unique<ClusterDataNode>(
        static_cast<NodeId>(i), topology_.get(), fn_, std::move(sopts),
        options_.store));
    JOINOPT_RETURN_NOT_OK(nodes_.back()->Start());
  }
  ClusterClientOptions copts = options_.client;
  if (copts.net_identity < 0) copts.net_identity = compute_identity();
  client_ =
      std::make_unique<ClusterClientService>(topology_.get(), std::move(copts));
  if (options_.start_controller) {
    ClusterControllerOptions ctl = options_.controller;
    if (ctl.net_identity < 0) ctl.net_identity = compute_identity();
    controller_ =
        std::make_unique<ClusterController>(topology_.get(), std::move(ctl));
    client_->set_failure_listener(
        [this](NodeId node) { controller_->ReportFailure(node); });
  }
  if (options_.start_anti_entropy) {
    anti_entropy_ = std::make_unique<AntiEntropyAgent>(topology_.get(),
                                                       options_.anti_entropy);
  }
  return Status::OK();
}

void ClusterDeployment::Stop() {
  if (anti_entropy_) anti_entropy_->Stop();  // before its peers go dark
  if (controller_) controller_->Stop();
  for (auto& node : nodes_) {
    if (node) node->Stop();
  }
}

StatusOr<uint64_t> ClusterDeployment::Seed(Key key, const std::string& value) {
  std::vector<NodeId> chain = topology_->ReplicasOf(key);
  StatusOr<uint64_t> primary = Status::Aborted("no replicas");
  // Same discipline as the client write path: the primary assigns the
  // version, followers apply it as a floor, so seeded replicas agree on
  // version numbers from the very first write.
  for (size_t i = 0; i < chain.size(); ++i) {
    ClusterNodeService& svc = nodes_[static_cast<size_t>(chain[i])]->service();
    auto version = primary.ok() ? svc.PutReplica(key, value, *primary)
                                : svc.Put(key, value);
    if (i == 0) primary = std::move(version);
  }
  return primary;
}

void ClusterDeployment::KillDataNode(int i) {
  nodes_[static_cast<size_t>(i)]->Stop();
}

Status ClusterDeployment::RestartDataNode(int i) {
  NodeId node = static_cast<NodeId>(i);
  ClusterNodeService& target = nodes_[static_cast<size_t>(i)]->service();
  // Two-way version-aware catch-up, one hosted region at a time, against
  // the first surviving replica in chain order. Pull: records written while
  // this node was dark land via ApplyIfNewer (the version floor keeps the
  // counters comparable). Push: records only this node had — e.g. a write
  // it acked just before dying — flow back the other way. Neither direction
  // can overwrite a newer copy; the old blind Put() here used to clobber a
  // restarted node's newer values with the primary's stale ones.
  for (int r = 0; r < topology_->num_regions(); ++r) {
    bool hosted = false;
    for (NodeId rep : topology_->RegionReplicas(r)) {
      if (rep == node) hosted = true;
    }
    if (!hosted) continue;
    for (NodeId source : topology_->RegionReplicas(r)) {
      if (source == node || !topology_->NodeUp(source)) continue;
      if (!nodes_[static_cast<size_t>(source)]->running()) continue;
      ClusterNodeService& src = nodes_[static_cast<size_t>(source)]->service();
      for (const RegionRecord& rec : src.RegionRecords(r)) {
        target.ApplyIfNewer(rec.key, rec.value, rec.version);
      }
      for (const RegionRecord& rec : target.RegionRecords(r)) {
        src.ApplyIfNewer(rec.key, rec.value, rec.version);
      }
      break;  // one live replica per region suffices
    }
  }
  JOINOPT_RETURN_NOT_OK(nodes_[static_cast<size_t>(i)]->Restart());
  topology_->MarkNodeUp(node);
  return Status::OK();
}

void ClusterDeployment::KillController() {
  if (controller_) controller_->Crash();
}

void ClusterDeployment::RestartController() {
  if (controller_) controller_->Restart();
}

std::unique_ptr<UpdateSubscriber> ClusterDeployment::MakeSubscriber(
    ParallelInvoker* invoker, UpdateSubscriberOptions options) {
  if (options.net_identity < 0) options.net_identity = compute_identity();
  std::vector<NodeId> nodes;
  for (int i = 0; i < topology_->num_nodes(); ++i) {
    nodes.push_back(static_cast<NodeId>(i));
  }
  ClusterTopology* topology = topology_.get();
  return std::make_unique<UpdateSubscriber>(
      topology, std::move(nodes),
      [invoker](Key key, uint64_t version) { invoker->OnUpdate(key, version); },
      [invoker, topology](NodeId /*node*/, int region) {
        return invoker->ResyncWhere(
            [topology, region](Key key) {
              return topology->RegionOf(key) == region;
            });
      },
      options);
}

}  // namespace joinopt
