#include "joinopt/cluster/data_node.h"

#include <utility>

#include "joinopt/common/hash.h"

namespace joinopt {

ClusterNodeService::ClusterNodeService(NodeId node, ClusterTopology* topology,
                                       const LogStoreConfig& store_config)
    : node_(node), topology_(topology), store_(store_config) {
  MutexLock lock(update_mu_);
  epochs_.resize(static_cast<size_t>(topology->num_regions()));
  for (int r = 0; r < topology->num_regions(); ++r) {
    epochs_[static_cast<size_t>(r)].region = r;
  }
}

StatusOr<DataService::Fetched> ClusterNodeService::Fetch(Key key) {
  ReaderMutexLock lock(store_mu_);
  auto value = store_.Get(key);
  if (!value.ok()) return value.status();
  return Fetched{std::move(value).value(), store_.VersionOf(key)};
}

StatusOr<std::string> ClusterNodeService::Execute(Key key,
                                                  const std::string& params,
                                                  const UserFn& fn) {
  std::string value;
  {
    ReaderMutexLock lock(store_mu_);
    auto got = store_.Get(key);
    if (!got.ok()) return got.status();
    value = std::move(got).value();
  }
  return fn(key, params, value);  // UDF runs outside the store lock
}

StatusOr<DataService::ItemStat> ClusterNodeService::Stat(Key key) const {
  ReaderMutexLock lock(store_mu_);
  auto value = store_.Get(key);
  if (!value.ok()) return value.status();
  return ItemStat{static_cast<double>(value->size()), store_.VersionOf(key)};
}

NodeId ClusterNodeService::OwnerOf(Key key) const {
  return topology_->OwnerOf(key);
}

void ClusterNodeService::FanOutUpdate(Key key, uint64_t version) {
  UpdateEvent event;
  event.region = topology_->RegionOf(key);
  event.key = key;
  event.version = version;
  MutexLock lock(update_mu_);
  RegionEpoch& re = epochs_[static_cast<size_t>(event.region)];
  ++re.seq;
  event.epoch = re.epoch;
  event.seq = re.seq;
  for (UpdateSink* sink : sinks_) sink->OnUpdateEvent(event);
}

StatusOr<uint64_t> ClusterNodeService::Put(Key key, const std::string& value) {
  uint64_t version;
  {
    WriterMutexLock lock(store_mu_);
    version = store_.Put(key, value);
  }
  FanOutUpdate(key, version);
  return version;
}

StatusOr<uint64_t> ClusterNodeService::PutReplica(Key key,
                                                  const std::string& value,
                                                  uint64_t version) {
  // A zero floor means the caller had no primary version to propagate;
  // degrade to an ordinary local write rather than inventing version 0.
  if (version == 0) return Put(key, value);
  ApplyIfNewer(key, value, version);
  // Applied or not, the replica now holds the key at >= version — report
  // what it actually has (ApplyIfNewer refusing means a newer local copy).
  ReaderMutexLock lock(store_mu_);
  return store_.VersionOf(key);
}

bool ClusterNodeService::ApplyIfNewer(Key key, const std::string& value,
                                      uint64_t version) {
  if (version == 0) return false;  // "absent" is never newer
  uint64_t applied_version;
  {
    // Check and apply under one writer critical section: deciding outside
    // it could overwrite a racing client Put with older repair data.
    WriterMutexLock lock(store_mu_);
    uint64_t current = store_.VersionOf(key);
    if (current > version) return false;
    if (current == version) {
      // Same counter, possibly different contents: concurrent writers can
      // assign the same version number to different values on different
      // replicas (each store counts independently). Tie-break
      // deterministically — lexicographically larger value wins — so every
      // replica picks the same winner; applying bumps the winner to
      // version+1, making it strictly newer for the loser's next exchange.
      auto existing = store_.Get(key);
      if (existing.ok() && *existing >= value) return false;
    }
    applied_version = store_.PutWithFloor(key, value, version);
  }
  FanOutUpdate(key, applied_version);
  return true;
}

namespace {

/// Order-independent per-record digest: FNV-1a over the value bytes mixed
/// with the key. Summed (wrapping) across a region, so two replicas that
/// hold the same records get the same checksum whatever order the writes
/// arrived in.
uint64_t RecordDigest(Key key, const std::string& value) {
  return Mix64(Fnv1a(value) ^ Mix64(key));
}

}  // namespace

StatusOr<RegionSummary> ClusterNodeService::SummarizeRegion(
    int32_t region) const {
  if (region < 0 || region >= topology_->num_regions()) {
    return Status::InvalidArgument("no such region: " +
                                   std::to_string(region));
  }
  RegionSummary s;
  s.region = region;
  {
    ReaderMutexLock lock(store_mu_);
    store_.ForEach([&](Key key, const std::string& value) {
      if (topology_->RegionOf(key) != region) return;
      ++s.count;
      s.checksum += RecordDigest(key, value);  // wrapping: order-free
    });
  }
  {
    MutexLock lock(update_mu_);
    s.epoch = epochs_[static_cast<size_t>(region)].epoch;
    s.seq = epochs_[static_cast<size_t>(region)].seq;
  }
  return s;
}

std::vector<RegionRecord> ClusterNodeService::RegionRecords(
    int32_t region) const {
  std::vector<RegionRecord> out;
  ReaderMutexLock lock(store_mu_);
  store_.ForEach([&](Key key, const std::string& value) {
    if (topology_->RegionOf(key) != region) return;
    RegionRecord rec;
    rec.key = key;
    rec.version = store_.VersionOf(key);
    rec.value = value;
    out.push_back(std::move(rec));
  });
  return out;
}

StatusOr<std::vector<RegionRecord>> ClusterNodeService::SyncRegion(
    int32_t region, const std::vector<RegionRecord>& records) {
  if (region < 0 || region >= topology_->num_regions()) {
    return Status::InvalidArgument("no such region: " +
                                   std::to_string(region));
  }
  for (const RegionRecord& rec : records) {
    if (topology_->RegionOf(rec.key) != region) continue;  // misrouted
    ApplyIfNewer(rec.key, rec.value, rec.version);
  }
  return RegionRecords(region);
}

std::vector<RegionEpoch> ClusterNodeService::EpochSnapshot() const {
  MutexLock lock(update_mu_);
  return epochs_;
}

void ClusterNodeService::AddUpdateSink(UpdateSink* sink) {
  MutexLock lock(update_mu_);
  sinks_.push_back(sink);
}

void ClusterNodeService::RemoveUpdateSink(UpdateSink* sink) {
  MutexLock lock(update_mu_);
  for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
    if (*it == sink) {
      sinks_.erase(it);
      break;
    }
  }
}

std::vector<std::pair<Key, std::string>> ClusterNodeService::SnapshotWhere(
    const std::function<bool(Key)>& pred) const {
  ReaderMutexLock lock(store_mu_);
  std::vector<std::pair<Key, std::string>> out;
  store_.ForEach([&](Key key, const std::string& value) {
    if (pred(key)) out.emplace_back(key, value);
  });
  return out;
}

void ClusterNodeService::BumpEpochs() {
  MutexLock lock(update_mu_);
  for (RegionEpoch& re : epochs_) {
    ++re.epoch;
    re.seq = 0;
  }
}

ClusterDataNode::ClusterDataNode(NodeId node, ClusterTopology* topology,
                                 UserFn fn, RpcServerOptions server_options,
                                 const LogStoreConfig& store_config)
    : node_(node),
      topology_(topology),
      fn_(std::move(fn)),
      server_options_(std::move(server_options)),
      service_(node, topology, store_config) {}

ClusterDataNode::~ClusterDataNode() { Stop(); }

Status ClusterDataNode::Start() {
  MutexLock lock(lifecycle_mu_);
  return StartLocked();
}

void ClusterDataNode::Stop() {
  MutexLock lock(lifecycle_mu_);
  StopLocked();
}

Status ClusterDataNode::Restart() {
  // One lifecycle critical section end to end: a running() probe (or a
  // second Restart) sees the old server or the new one, never the window
  // where server_ points at a dead or half-constructed instance.
  MutexLock lock(lifecycle_mu_);
  StopLocked();
  service_.BumpEpochs();
  return StartLocked();
}

Status ClusterDataNode::StartLocked() {
  if (server_ && server_->running()) return Status::OK();
  RpcServerOptions opts = server_options_;
  opts.port = port_;  // 0 on first start (ephemeral), pinned afterwards
  server_ = std::make_unique<RpcServer>(&service_, fn_, opts);
  Status s = server_->Start();
  if (!s.ok()) {
    server_.reset();
    return s;
  }
  port_ = server_->port();
  topology_->SetEndpoint(node_, RpcEndpoint{server_->host(), port_});
  return Status::OK();
}

void ClusterDataNode::StopLocked() {
  if (server_) server_->Stop();
}

}  // namespace joinopt
