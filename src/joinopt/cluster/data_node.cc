#include "joinopt/cluster/data_node.h"

#include <utility>

namespace joinopt {

ClusterNodeService::ClusterNodeService(NodeId node, ClusterTopology* topology,
                                       const LogStoreConfig& store_config)
    : node_(node), topology_(topology), store_(store_config) {
  epochs_.resize(static_cast<size_t>(topology->num_regions()));
  for (int r = 0; r < topology->num_regions(); ++r) {
    epochs_[static_cast<size_t>(r)].region = r;
  }
}

StatusOr<DataService::Fetched> ClusterNodeService::Fetch(Key key) {
  std::shared_lock lock(store_mu_);
  auto value = store_.Get(key);
  if (!value.ok()) return value.status();
  return Fetched{std::move(value).value(), store_.VersionOf(key)};
}

StatusOr<std::string> ClusterNodeService::Execute(Key key,
                                                  const std::string& params,
                                                  const UserFn& fn) {
  std::string value;
  {
    std::shared_lock lock(store_mu_);
    auto got = store_.Get(key);
    if (!got.ok()) return got.status();
    value = std::move(got).value();
  }
  return fn(key, params, value);  // UDF runs outside the store lock
}

StatusOr<DataService::ItemStat> ClusterNodeService::Stat(Key key) const {
  std::shared_lock lock(store_mu_);
  auto value = store_.Get(key);
  if (!value.ok()) return value.status();
  return ItemStat{static_cast<double>(value->size()), store_.VersionOf(key)};
}

NodeId ClusterNodeService::OwnerOf(Key key) const {
  return topology_->OwnerOf(key);
}

StatusOr<uint64_t> ClusterNodeService::Put(Key key, const std::string& value) {
  uint64_t version;
  {
    std::unique_lock lock(store_mu_);
    version = store_.Put(key, value);
  }
  UpdateEvent event;
  event.region = topology_->RegionOf(key);
  event.key = key;
  event.version = version;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    RegionEpoch& re = epochs_[static_cast<size_t>(event.region)];
    ++re.seq;
    event.epoch = re.epoch;
    event.seq = re.seq;
    for (UpdateSink* sink : sinks_) sink->OnUpdateEvent(event);
  }
  return version;
}

std::vector<RegionEpoch> ClusterNodeService::EpochSnapshot() const {
  std::lock_guard<std::mutex> lock(update_mu_);
  return epochs_;
}

void ClusterNodeService::AddUpdateSink(UpdateSink* sink) {
  std::lock_guard<std::mutex> lock(update_mu_);
  sinks_.push_back(sink);
}

void ClusterNodeService::RemoveUpdateSink(UpdateSink* sink) {
  std::lock_guard<std::mutex> lock(update_mu_);
  for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
    if (*it == sink) {
      sinks_.erase(it);
      break;
    }
  }
}

std::vector<std::pair<Key, std::string>> ClusterNodeService::SnapshotWhere(
    const std::function<bool(Key)>& pred) const {
  std::shared_lock lock(store_mu_);
  std::vector<std::pair<Key, std::string>> out;
  store_.ForEach([&](Key key, const std::string& value) {
    if (pred(key)) out.emplace_back(key, value);
  });
  return out;
}

void ClusterNodeService::BumpEpochs() {
  std::lock_guard<std::mutex> lock(update_mu_);
  for (RegionEpoch& re : epochs_) {
    ++re.epoch;
    re.seq = 0;
  }
}

ClusterDataNode::ClusterDataNode(NodeId node, ClusterTopology* topology,
                                 UserFn fn, RpcServerOptions server_options,
                                 const LogStoreConfig& store_config)
    : node_(node),
      topology_(topology),
      fn_(std::move(fn)),
      server_options_(std::move(server_options)),
      service_(node, topology, store_config) {}

ClusterDataNode::~ClusterDataNode() { Stop(); }

Status ClusterDataNode::Start() {
  if (server_ && server_->running()) return Status::OK();
  RpcServerOptions opts = server_options_;
  opts.port = port_;  // 0 on first start (ephemeral), pinned afterwards
  server_ = std::make_unique<RpcServer>(&service_, fn_, opts);
  Status s = server_->Start();
  if (!s.ok()) {
    server_.reset();
    return s;
  }
  port_ = server_->port();
  topology_->SetEndpoint(node_, RpcEndpoint{server_->host(), port_});
  return Status::OK();
}

void ClusterDataNode::Stop() {
  if (server_) server_->Stop();
}

Status ClusterDataNode::Restart() {
  Stop();
  service_.BumpEpochs();
  return Start();
}

}  // namespace joinopt
