#include "joinopt/cluster/data_node.h"

#include <utility>

namespace joinopt {

ClusterNodeService::ClusterNodeService(NodeId node, ClusterTopology* topology,
                                       const LogStoreConfig& store_config)
    : node_(node), topology_(topology), store_(store_config) {
  MutexLock lock(update_mu_);
  epochs_.resize(static_cast<size_t>(topology->num_regions()));
  for (int r = 0; r < topology->num_regions(); ++r) {
    epochs_[static_cast<size_t>(r)].region = r;
  }
}

StatusOr<DataService::Fetched> ClusterNodeService::Fetch(Key key) {
  ReaderMutexLock lock(store_mu_);
  auto value = store_.Get(key);
  if (!value.ok()) return value.status();
  return Fetched{std::move(value).value(), store_.VersionOf(key)};
}

StatusOr<std::string> ClusterNodeService::Execute(Key key,
                                                  const std::string& params,
                                                  const UserFn& fn) {
  std::string value;
  {
    ReaderMutexLock lock(store_mu_);
    auto got = store_.Get(key);
    if (!got.ok()) return got.status();
    value = std::move(got).value();
  }
  return fn(key, params, value);  // UDF runs outside the store lock
}

StatusOr<DataService::ItemStat> ClusterNodeService::Stat(Key key) const {
  ReaderMutexLock lock(store_mu_);
  auto value = store_.Get(key);
  if (!value.ok()) return value.status();
  return ItemStat{static_cast<double>(value->size()), store_.VersionOf(key)};
}

NodeId ClusterNodeService::OwnerOf(Key key) const {
  return topology_->OwnerOf(key);
}

StatusOr<uint64_t> ClusterNodeService::Put(Key key, const std::string& value) {
  uint64_t version;
  {
    WriterMutexLock lock(store_mu_);
    version = store_.Put(key, value);
  }
  UpdateEvent event;
  event.region = topology_->RegionOf(key);
  event.key = key;
  event.version = version;
  {
    MutexLock lock(update_mu_);
    RegionEpoch& re = epochs_[static_cast<size_t>(event.region)];
    ++re.seq;
    event.epoch = re.epoch;
    event.seq = re.seq;
    for (UpdateSink* sink : sinks_) sink->OnUpdateEvent(event);
  }
  return version;
}

std::vector<RegionEpoch> ClusterNodeService::EpochSnapshot() const {
  MutexLock lock(update_mu_);
  return epochs_;
}

void ClusterNodeService::AddUpdateSink(UpdateSink* sink) {
  MutexLock lock(update_mu_);
  sinks_.push_back(sink);
}

void ClusterNodeService::RemoveUpdateSink(UpdateSink* sink) {
  MutexLock lock(update_mu_);
  for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
    if (*it == sink) {
      sinks_.erase(it);
      break;
    }
  }
}

std::vector<std::pair<Key, std::string>> ClusterNodeService::SnapshotWhere(
    const std::function<bool(Key)>& pred) const {
  ReaderMutexLock lock(store_mu_);
  std::vector<std::pair<Key, std::string>> out;
  store_.ForEach([&](Key key, const std::string& value) {
    if (pred(key)) out.emplace_back(key, value);
  });
  return out;
}

void ClusterNodeService::BumpEpochs() {
  MutexLock lock(update_mu_);
  for (RegionEpoch& re : epochs_) {
    ++re.epoch;
    re.seq = 0;
  }
}

ClusterDataNode::ClusterDataNode(NodeId node, ClusterTopology* topology,
                                 UserFn fn, RpcServerOptions server_options,
                                 const LogStoreConfig& store_config)
    : node_(node),
      topology_(topology),
      fn_(std::move(fn)),
      server_options_(std::move(server_options)),
      service_(node, topology, store_config) {}

ClusterDataNode::~ClusterDataNode() { Stop(); }

Status ClusterDataNode::Start() {
  MutexLock lock(lifecycle_mu_);
  return StartLocked();
}

void ClusterDataNode::Stop() {
  MutexLock lock(lifecycle_mu_);
  StopLocked();
}

Status ClusterDataNode::Restart() {
  // One lifecycle critical section end to end: a running() probe (or a
  // second Restart) sees the old server or the new one, never the window
  // where server_ points at a dead or half-constructed instance.
  MutexLock lock(lifecycle_mu_);
  StopLocked();
  service_.BumpEpochs();
  return StartLocked();
}

Status ClusterDataNode::StartLocked() {
  if (server_ && server_->running()) return Status::OK();
  RpcServerOptions opts = server_options_;
  opts.port = port_;  // 0 on first start (ephemeral), pinned afterwards
  server_ = std::make_unique<RpcServer>(&service_, fn_, opts);
  Status s = server_->Start();
  if (!s.ok()) {
    server_.reset();
    return s;
  }
  port_ = server_->port();
  topology_->SetEndpoint(node_, RpcEndpoint{server_->host(), port_});
  return Status::OK();
}

void ClusterDataNode::StopLocked() {
  if (server_) server_->Stop();
}

}  // namespace joinopt
