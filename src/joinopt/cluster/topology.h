// Shared cluster view: the RegionMap (key -> region -> replica chain) plus
// the live endpoint of every data node and its liveness flag. One instance
// is shared by every component of a deployment — clients route through it,
// the controller mutates it when a node is declared dead, data nodes read
// it to answer OwnerOf with cluster-wide placement.
//
// Failover policy: MarkNodeDown promotes, for every region whose primary is
// the dead node, the first *live* follower to primary (RegionMap::MoveRegion
// swaps the roles, so the demoted node re-enters the chain as a follower and
// resumes serving once it rejoins). Regions with no live follower keep the
// dead primary — requests for them keep failing until the node is back,
// which is the honest outcome when replication_factor copies are all gone.
//
// Thread safety: all methods are safe to call concurrently (shared_mutex;
// reads take the shared side). `version()` increments on every mutation so
// cached routing decisions can be revalidated cheaply.
#ifndef JOINOPT_CLUSTER_TOPOLOGY_H_
#define JOINOPT_CLUSTER_TOPOLOGY_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "joinopt/common/hash.h"
#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/status.h"
#include "joinopt/common/sync.h"
#include "joinopt/net/rpc_client.h"
#include "joinopt/store/region_map.h"

namespace joinopt {

struct ClusterTopologyConfig {
  int num_data_nodes = 3;
  /// Regions per node (HBase-style over-partitioning: more regions than
  /// nodes smooths the load when regions move on failover).
  int regions_per_node = 4;
  int replication_factor = 2;
};

class ClusterTopology {
 public:
  explicit ClusterTopology(const ClusterTopologyConfig& config);

  /// Pure hash of an immutable partition count; the reader lock is only
  /// there so the access stays provable under -Wthread-safety.
  int RegionOf(Key key) const {
    ReaderMutexLock lock(mu_);
    return regions_.RegionOf(key);
  }

  NodeId OwnerOf(Key key) const;
  NodeId RegionOwner(int region) const;
  /// Replica chain of `key`'s region, primary first (copy: the map can
  /// mutate under the caller).
  std::vector<NodeId> ReplicasOf(Key key) const;
  std::vector<NodeId> RegionReplicas(int region) const;
  /// ReplicasOf filtered to nodes currently marked up; may be empty.
  std::vector<NodeId> LiveReplicasOf(Key key) const;
  /// Regions whose primary is `node`.
  std::vector<int> RegionsOwnedBy(NodeId node) const;

  void SetEndpoint(NodeId node, const RpcEndpoint& endpoint);
  RpcEndpoint endpoint(NodeId node) const;

  bool NodeUp(NodeId node) const;
  /// Declares `node` dead and promotes live followers for every region it
  /// was primary of. Returns the number of regions reassigned.
  int MarkNodeDown(NodeId node);
  void MarkNodeUp(NodeId node);

  int num_regions() const { return regions_.num_regions(); }
  int num_nodes() const { return config_.num_data_nodes; }
  int replication_factor() const { return regions_.replication_factor(); }
  /// Bumped on every mutation (endpoint change, liveness flip, promotion).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  ClusterTopologyConfig config_;
  /// A leaf lock: no method calls out of the class while holding it.
  mutable SharedMutex mu_{lock_rank::kTopology, "ClusterTopology::mu_"};
  RegionMap regions_ JOINOPT_GUARDED_BY(mu_);
  std::vector<RpcEndpoint> endpoints_ JOINOPT_GUARDED_BY(mu_);
  /// vector<bool> races on proxy writes; char is a real lvalue per node.
  std::vector<char> up_ JOINOPT_GUARDED_BY(mu_);
  std::atomic<uint64_t> version_{0};
};

}  // namespace joinopt

#endif  // JOINOPT_CLUSTER_TOPOLOGY_H_
