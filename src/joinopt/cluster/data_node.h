// One simulated data node of a multi-node deployment: a WritableDataService
// over its own LogStructuredStore, served by its own RpcServer. The service
// answers OwnerOf from the *shared* ClusterTopology (cluster-wide placement,
// not the per-store shard hash LogStoreDataService uses), tracks per-region
// (epoch, seq) pairs, and fans UpdateEvents out to registered sinks — the
// server side of the §4.2.3 invalidation path over real sockets.
//
// Crash/restart semantics (what the fault tests drive): Stop() kills the
// RpcServer — in-flight connections are severed and the port goes dark —
// but the store survives, like a process whose durable log outlived it.
// Restart() brings a fresh RpcServer up on the SAME port and bumps every
// hosted region's epoch (seq resets to 0): subscriber registrations died
// with the old server, so updates applied between crash and resubscribe
// were never notified. The epoch bump is what forces reconnecting
// subscribers into a targeted re-sync instead of trusting stale sequence
// numbers.
//
// Threading contract: service methods run on RpcServer worker threads;
// Stop/Restart/running() may race them from test or controller threads.
// Three locks, in ascending rank (one thread may hold them only in this
// order): lifecycle_mu_ (kNodeLifecycle=480, server ptr + pinned port,
// held across RpcServer::Start), store_mu_ (kNodeStore=500, the log
// store), update_mu_ (kNodeUpdateFanout=600, region epochs + sink list,
// held across the per-sink fan-out at kUpdateSink=650). Rank table:
// DESIGN.md §12.
#ifndef JOINOPT_CLUSTER_DATA_NODE_H_
#define JOINOPT_CLUSTER_DATA_NODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "joinopt/cluster/topology.h"
#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/status.h"
#include "joinopt/common/sync.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/net/rpc_server.h"
#include "joinopt/net/update_hub.h"
#include "joinopt/store/log_store.h"

namespace joinopt {

/// The in-process service. Thread-safe: the store is guarded by a
/// shared_mutex (LogStructuredStore allows concurrent readers but only a
/// single writer), region epochs and the sink list by a plain mutex.
class ClusterNodeService : public WritableDataService {
 public:
  ClusterNodeService(NodeId node, ClusterTopology* topology,
                     const LogStoreConfig& store_config = {});

  // DataService (read verbs hit the local store; a key this node does not
  // host simply comes back NotFound — routing is the client's job).
  StatusOr<Fetched> Fetch(Key key) override;
  StatusOr<std::string> Execute(Key key, const std::string& params,
                                const UserFn& fn) override;
  StatusOr<ItemStat> Stat(Key key) const override;
  NodeId OwnerOf(Key key) const override;

  // WritableDataService.
  StatusOr<uint64_t> Put(Key key, const std::string& value) override;
  /// ApplyIfNewer with the primary's version as floor; answers with the
  /// key's resulting local version (== `version` when applied, the newer
  /// local version when this replica already superseded the write).
  StatusOr<uint64_t> PutReplica(Key key, const std::string& value,
                                uint64_t version) override;
  std::vector<RegionEpoch> EpochSnapshot() const override;
  void AddUpdateSink(UpdateSink* sink) override;
  void RemoveUpdateSink(UpdateSink* sink) override;

  // Anti-entropy (DESIGN.md §16): the server side of live replica repair.
  /// Order-independent content digest of one region: count + a wrapping
  /// sum of per-record hashes over (key, value). Equal digests mean equal
  /// contents regardless of write order; versions are excluded because
  /// per-key counters may legitimately differ by history.
  StatusOr<RegionSummary> SummarizeRegion(int32_t region) const override;
  /// Merges a peer's records (newest version per key wins, applied with a
  /// version floor so counters align), then returns this node's post-merge
  /// snapshot of the region. Applied records fan out update events like
  /// ordinary Puts, so subscribers invalidate repaired keys.
  StatusOr<std::vector<RegionRecord>> SyncRegion(
      int32_t region, const std::vector<RegionRecord>& records) override;

  /// Atomic "apply unless I already have something newer": stores `value`
  /// at version max(current + 1, `version`) iff current < `version`, or iff
  /// current == `version` with a different, lexicographically smaller local
  /// value (a deterministic tie-break: concurrent writers can hand the same
  /// version number to different values on different replicas, and without
  /// a common winner those replicas would never converge). Returns true
  /// when applied (with the update event fanned out). The version-aware
  /// merge primitive shared by anti-entropy and the restart catch-up path —
  /// never overwrites a newer local write.
  bool ApplyIfNewer(Key key, const std::string& value, uint64_t version);

  /// Live (key, version, value) records of one region, read consistently
  /// under the store lock.
  std::vector<RegionRecord> RegionRecords(int32_t region) const;

  /// Restart hook: bumps every region's epoch and zeroes its seq, modelling
  /// the loss of the subscriber registrations (see file comment).
  void BumpEpochs();

  /// Live records whose key satisfies `pred`, read under the store lock —
  /// the safe way to copy region contents between nodes (the restart
  /// catch-up path in ClusterDeployment).
  std::vector<std::pair<Key, std::string>> SnapshotWhere(
      const std::function<bool(Key)>& pred) const;

  NodeId node() const { return node_; }
  LogStructuredStore& store() { return store_; }
  const LogStructuredStore& store() const { return store_; }

  /// Store counters read under the store lock (safe against concurrent
  /// writers — the bare store() accessor is not).
  LogStoreStats StoreStats() const {
    ReaderMutexLock lock(store_mu_);
    return store_.stats();
  }

 private:
  /// Bumps the key's region seq and pushes the event to every sink.
  void FanOutUpdate(Key key, uint64_t version) JOINOPT_EXCLUDES(update_mu_);

  NodeId node_;
  ClusterTopology* topology_;

  /// Snapshot predicates read the topology while this is held
  /// (kNodeStore < kTopology makes that nesting legal).
  mutable SharedMutex store_mu_{lock_rank::kNodeStore,
                                "ClusterNodeService::store_mu_"};
  LogStructuredStore store_ JOINOPT_GUARDED_BY(store_mu_);

  /// Guards epochs_ and sinks_; held across the sink fan-out (which takes
  /// each sink's kUpdateSink lock) so a subscriber snapshot cannot
  /// interleave mid-update.
  mutable Mutex update_mu_{lock_rank::kNodeUpdateFanout,
                           "ClusterNodeService::update_mu_"};
  std::vector<RegionEpoch> epochs_
      JOINOPT_GUARDED_BY(update_mu_);  // indexed by region
  std::vector<UpdateSink*> sinks_ JOINOPT_GUARDED_BY(update_mu_);
};

/// Service + server, bundled with crash/restart controls.
class ClusterDataNode {
 public:
  ClusterDataNode(NodeId node, ClusterTopology* topology, UserFn fn,
                  RpcServerOptions server_options = {},
                  const LogStoreConfig& store_config = {});
  ~ClusterDataNode();

  /// Starts the RpcServer and publishes host:port into the topology.
  Status Start() JOINOPT_EXCLUDES(lifecycle_mu_);
  /// Crash: the server dies (port goes dark), the store survives.
  void Stop() JOINOPT_EXCLUDES(lifecycle_mu_);
  /// Re-serves the surviving store on the same port; bumps region epochs.
  Status Restart() JOINOPT_EXCLUDES(lifecycle_mu_);

  /// Safe against a concurrent Restart(): the server pointer swap happens
  /// under the lifecycle lock (a probe used to race the unique_ptr reset).
  bool running() const {
    MutexLock lock(lifecycle_mu_);
    return server_ != nullptr && server_->running();
  }
  uint16_t port() const {
    MutexLock lock(lifecycle_mu_);
    return port_;
  }
  ClusterNodeService& service() { return service_; }
  const RpcServer* server() const {
    MutexLock lock(lifecycle_mu_);
    return server_.get();
  }

 private:
  Status StartLocked() JOINOPT_REQUIRES(lifecycle_mu_);
  void StopLocked() JOINOPT_REQUIRES(lifecycle_mu_);

  NodeId node_;
  ClusterTopology* topology_;
  UserFn fn_;
  RpcServerOptions server_options_;
  ClusterNodeService service_;
  /// Guards the server pointer and the pinned port across crash/restart;
  /// held while calling into the server's own lifecycle (480 < 700).
  mutable Mutex lifecycle_mu_{lock_rank::kNodeLifecycle,
                              "ClusterDataNode::lifecycle_mu_"};
  std::unique_ptr<RpcServer> server_ JOINOPT_GUARDED_BY(lifecycle_mu_)
      JOINOPT_PT_GUARDED_BY(lifecycle_mu_);
  uint16_t port_ JOINOPT_GUARDED_BY(lifecycle_mu_) =
      0;  ///< pinned after the first Start so Restart reuses it
};

}  // namespace joinopt

#endif  // JOINOPT_CLUSTER_DATA_NODE_H_
