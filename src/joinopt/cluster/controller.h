// ClusterController: the failure detector. A background thread health-checks
// every data node (a payload-free Stat probe — any in-band answer, NotFound
// included, proves the node serves requests; only transport errors count
// against it). After `recovery.max_attempts` consecutive failures the node
// is declared dead: the topology marks it down and promotes live followers
// for every region it owned, which is the moment clients' per-attempt
// re-routing starts landing on the survivors.
//
// Down nodes keep being probed: `rejoin_threshold` consecutive in-band
// answers mark the node back up (re-entering its regions as a follower;
// anti-entropy repairs whatever it missed). Without this, a node declared
// dead through a transient partition — still serving the whole time, so
// nothing ever restarts it — would stay out of every replica chain
// forever: declared-dead must be a suspicion the detector can retract,
// not a verdict only a process restart can appeal.
//
// Two signal paths feed the same threshold:
//   * the probe loop (detects silent deaths with no traffic), and
//   * ReportFailure(node) — the fast path clients call on every transport
//     error, so a node under live load is declared dead in ~max_attempts
//     request timeouts instead of waiting out probe intervals.
// Any in-band success (probe or not) resets the node's strike count, so a
// one-off timeout under load cannot accumulate into a false positive.
//
// Reusing RecoveryConfig keeps one vocabulary for deadlines: request_timeout
// bounds a probe exactly like it bounds a data request, and max_attempts is
// "how many strikes" in both places.
//
// Threading contract: ReportFailure/ReportSuccess may be called from any
// client thread; the probe loop runs on the controller's own background
// thread. One lock, mu_ (rank kControllerState=450), guards strike
// counts and stats, and is always released before MarkNodeDown or the
// on-node-down hook fire — callbacks run lock-free and may re-enter the
// controller. Rank table: DESIGN.md §12.
#ifndef JOINOPT_CLUSTER_CONTROLLER_H_
#define JOINOPT_CLUSTER_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "joinopt/cluster/topology.h"
#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/sync.h"
#include "joinopt/engine/types.h"
#include "joinopt/net/rpc_client.h"

namespace joinopt {

struct ClusterControllerOptions {
  /// Pause between probe sweeps.
  double probe_interval = 20e-3;
  /// Logical endpoint id for the probe clients (net/net_fault.h). The
  /// deployment tags the controller with the compute-side identity so a
  /// half-open partition severs probes along with client traffic. -1 opts
  /// out.
  int32_t net_identity = -1;
  /// request_timeout bounds one probe; max_attempts is the consecutive
  /// failure threshold for declaring a node dead.
  RecoveryConfig recovery;
  /// Consecutive successful probes of a DOWN node before it is marked up
  /// again (a falsely-suspected node rejoins once the partition heals).
  /// 0 disables rejoin — down nodes then wait for an explicit restart.
  int rejoin_threshold = 2;

  ClusterControllerOptions() {
    recovery.enabled = true;
    recovery.request_timeout = 100e-3;
    recovery.max_attempts = 3;
  }
};

struct ClusterControllerStats {
  int64_t probes = 0;
  int64_t probe_failures = 0;
  int64_t reported_failures = 0;  ///< ReportFailure fast-path strikes
  int64_t nodes_declared_dead = 0;
  int64_t nodes_rejoined = 0;  ///< down nodes marked up by probe recovery
  int64_t regions_reassigned = 0;
  int64_t crashes = 0;            ///< Crash() calls (chaos injection)
  int64_t dropped_while_crashed = 0;  ///< strikes/probes skipped while down
};

class ClusterController {
 public:
  /// Endpoints must already be published in `topology`. The probe thread
  /// starts immediately.
  ClusterController(ClusterTopology* topology,
                    ClusterControllerOptions options = {});
  ~ClusterController();

  ClusterController(const ClusterController&) = delete;
  ClusterController& operator=(const ClusterController&) = delete;

  void Stop();

  /// Chaos injection: the failure detector dies. Probing pauses and
  /// ReportFailure strikes are dropped until Restart(). Data traffic is
  /// untouched — the cluster just can't *declare* anything dead, which is
  /// exactly the window the soak harness wants to shake out (a node killed
  /// while the controller is down must still be detected after Restart).
  void Crash();
  /// Controller comes back with strike counts cleared (a real restarted
  /// detector has no memory of pre-crash suspicions).
  void Restart();
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Client fast path: one transport-error strike against `node`.
  /// Thread-safe; crossing the threshold declares the node dead inline.
  /// No-op while crashed.
  void ReportFailure(NodeId node);

  /// Optional hook invoked (on the declaring thread) after a node is
  /// marked down and its regions reassigned. Set before traffic starts.
  void set_on_node_dead(std::function<void(NodeId)> hook) {
    on_node_dead_ = std::move(hook);
  }

  ClusterControllerStats stats() const;

 private:
  void ProbeLoop();
  /// One strike; declares dead at the threshold. Returns true when this
  /// call performed the declaration.
  bool Strike(NodeId node);
  void ClearStrikes(NodeId node);

  ClusterTopology* topology_;
  ClusterControllerOptions options_;
  /// One single-endpoint probe client per node (recovery disabled: the
  /// strike counting *is* the retry policy).
  std::vector<std::unique_ptr<RpcClientService>> probes_;

  /// Released before MarkNodeDown / the dead-node hook: the declaration
  /// path must not constrain what the hook may lock.
  mutable Mutex mu_{lock_rank::kControllerState, "ClusterController::mu_"};
  CondVar cv_;                     ///< wakes the probe loop for Stop
  std::vector<int> consecutive_
      JOINOPT_GUARDED_BY(mu_);     ///< strike count per node
  std::vector<int> rejoin_streak_
      JOINOPT_GUARDED_BY(mu_);     ///< consecutive OK probes while down
  ClusterControllerStats stats_ JOINOPT_GUARDED_BY(mu_);
  std::atomic<bool> stop_{false};
  std::atomic<bool> crashed_{false};
  std::thread prober_;
  std::function<void(NodeId)> on_node_dead_;
};

}  // namespace joinopt

#endif  // JOINOPT_CLUSTER_CONTROLLER_H_
