#include "joinopt/cluster/anti_entropy.h"

#include <vector>

namespace joinopt {

AntiEntropyAgent::AntiEntropyAgent(ClusterTopology* topology,
                                   AntiEntropyOptions options)
    : topology_(topology), options_(options) {
  sweeper_ = std::thread([this] { SweepLoop(); });
}

AntiEntropyAgent::~AntiEntropyAgent() { Stop(); }

void AntiEntropyAgent::Stop() {
  stop_.store(true, std::memory_order_release);
  cv_.NotifyAll();
  if (sweeper_.joinable()) sweeper_.join();
}

RpcClientService* AntiEntropyAgent::GetClient(NodeId from, NodeId to) {
  MutexLock lock(mu_);
  auto key = std::make_pair(from, to);
  auto it = clients_.find(key);
  if (it != clients_.end()) return it->second.get();
  RpcClientOptions copts;
  copts.endpoints = {topology_->endpoint(to)};
  copts.connect_deadline = options_.connect_deadline;
  copts.recovery.enabled = false;  // failed pairs wait for the next sweep
  copts.recovery.request_timeout = options_.request_timeout;
  copts.balance_reads = false;
  copts.net_identity = from;  // repair traffic obeys the same partitions
  auto client = std::make_unique<RpcClientService>(std::move(copts));
  RpcClientService* raw = client.get();
  clients_.emplace(key, std::move(client));
  return raw;
}

bool AntiEntropyAgent::RepairPair(int region, NodeId base, NodeId peer) {
  // Digest both sides. The client dialing `base` acts as `peer` (and vice
  // versa): a partitioned pair can't even compare notes, as on a real wire.
  RpcClientService* to_base = GetClient(peer, base);
  RpcClientService* to_peer = GetClient(base, peer);
  auto sum_base = to_base->SummarizeRegion(region);
  auto sum_peer = to_peer->SummarizeRegion(region);
  {
    MutexLock lock(mu_);
    stats_.summaries += 2;
    if (!sum_base.ok() || !sum_peer.ok()) {
      ++stats_.rpc_errors;
      return false;
    }
    if (sum_base->checksum == sum_peer->checksum &&
        sum_base->count == sum_peer->count) {
      return false;  // contents agree; versions are free to differ
    }
    ++stats_.mismatches;
  }

  // Full bidirectional sync: an empty push is a snapshot read, the second
  // leg merges base→peer, the third merges the peer's post-merge snapshot
  // back into base. Either side applies a record only when it is newer.
  auto base_records = to_base->SyncRegion(region, {});
  if (!base_records.ok()) {
    MutexLock lock(mu_);
    ++stats_.rpc_errors;
    return true;
  }
  auto merged = to_peer->SyncRegion(region, *base_records);
  if (!merged.ok()) {
    MutexLock lock(mu_);
    ++stats_.rpc_errors;
    return true;
  }
  auto back = to_base->SyncRegion(region, *merged);
  MutexLock lock(mu_);
  if (!back.ok()) {
    ++stats_.rpc_errors;
    return true;
  }
  ++stats_.syncs;
  stats_.records_shipped +=
      static_cast<int64_t>(base_records->size() + merged->size());
  return true;
}

void AntiEntropyAgent::SweepOnce() {
  for (int r = 0; r < topology_->num_regions(); ++r) {
    if (stop_.load(std::memory_order_acquire)) break;
    std::vector<NodeId> live;
    for (NodeId rep : topology_->RegionReplicas(r)) {
      if (topology_->NodeUp(rep)) live.push_back(rep);
    }
    if (live.size() < 2) continue;  // nothing to compare against
    for (size_t k = 1; k < live.size(); ++k) {
      RepairPair(r, live[0], live[k]);
    }
  }
  MutexLock lock(mu_);
  ++stats_.sweeps;
}

void AntiEntropyAgent::SweepLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    SweepOnce();
    MutexLock lock(mu_);
    if (!stop_.load(std::memory_order_acquire)) {
      cv_.WaitFor(mu_, options_.period);
    }
  }
}

AntiEntropyStats AntiEntropyAgent::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace joinopt
