#include "joinopt/cluster/cluster_client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "joinopt/common/hash.h"
#include "joinopt/net/socket.h"

namespace joinopt {

namespace {

/// Per-process instance counter (same scheme as RpcClientService's): keeps
/// dedup tags distinct across cluster clients even with identical seeds.
std::atomic<uint64_t> g_cluster_client_instance{0};

}  // namespace

ClusterClientService::ClusterClientService(ClusterTopology* topology,
                                           ClusterClientOptions options)
    : topology_(topology),
      options_(std::move(options)),
      jitter_rng_(options_.seed) {
  int n = topology_->num_nodes();
  clients_.reserve(static_cast<size_t>(n));
  for (int node = 0; node < n; ++node) {
    RpcClientOptions copts;
    copts.endpoints = {topology_->endpoint(static_cast<NodeId>(node))};
    copts.connect_deadline = options_.connect_deadline;
    // One attempt per node call: this layer owns rotation and backoff.
    copts.recovery.enabled = false;
    copts.recovery.request_timeout = options_.recovery.request_timeout;
    copts.balance_reads = false;
    copts.seed = options_.seed ^ static_cast<uint64_t>(node);
    copts.hedging = options_.hedging;
    copts.hedge_idempotent_batches = options_.hedge_idempotent_batches;
    copts.net_identity = options_.net_identity;
    clients_.push_back(std::make_unique<RpcClientService>(std::move(copts)));
  }
  if (options_.load_view != nullptr) {
    load_view_ = options_.load_view;
  } else {
    owned_load_view_ = std::make_unique<NodeLoadView>(n, options_.seed);
    load_view_ = owned_load_view_.get();
  }
  client_id_ =
      Mix64(options_.seed ^
            Mix64(g_cluster_client_instance.fetch_add(1) + 0x5eedULL)) |
      1ULL;
}

std::vector<NodeId> ClusterClientService::Candidates(Key key,
                                                     bool read) const {
  std::vector<NodeId> live = topology_->LiveReplicasOf(key);
  if (live.empty()) {
    // Every replica is marked down: fall back to the raw chain — a node
    // may be back without the controller having noticed yet, and failing
    // over the wire gives the honest error.
    live = topology_->ReplicasOf(key);
  }
  if (read && options_.read_consistency == ReadConsistency::kOwnerOnly) {
    // Owner-only never balances: the chain head is the freshest live
    // replica by the write path's construction.
    return live;
  }
  if (read && options_.balance_reads && live.size() > 1) {
    // Power-of-two-choices over the load view: sample two candidates, take
    // the lower (outstanding+1) * expected-latency score — latency-aware
    // where least-outstanding is blind to a slow-but-idle node.
    NodeId pick = load_view_->PickTwoChoices(live);
    std::rotate(live.begin(), std::find(live.begin(), live.end(), pick),
                live.end());
  }
  return live;
}

void ClusterClientService::NoteFailure(NodeId node,
                                       const Status& status) const {
  {
    MutexLock lock(rec_mu_);
    if (IsDeadlineExceeded(status)) ++rec_.timeouts;
  }
  // A timeout-sized penalty repels further traffic until successes decay it.
  load_view_->NoteFailure(node, options_.recovery.request_timeout);
  if (failure_listener_) failure_listener_(node);
}

double ClusterClientService::BackoffSeconds(int attempt) const {
  const RecoveryConfig& rec = options_.recovery;
  double backoff = std::min(rec.backoff_max,
                            rec.backoff_base * std::pow(2.0, attempt - 1));
  MutexLock lock(rec_mu_);
  return backoff * (1.0 + rec.jitter_fraction * jitter_rng_.NextDouble());
}

template <typename Op>
Status ClusterClientService::RoutedCall(Key key, bool read,
                                        const Op& op) const {
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  const RecoveryConfig& rec = options_.recovery;
  int max_attempts = rec.enabled ? std::max(1, rec.max_attempts) : 1;
  Status last = Status::Aborted("no replicas");
  NodeId first_choice = kInvalidNode;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Re-read the chain every attempt: a promotion between attempts must
    // redirect the retry, not rediscover the dead primary.
    std::vector<NodeId> candidates = Candidates(key, read);
    if (candidates.empty()) return last;
    // Owner-only reads retry against the *current* chain head (promotions
    // redirect them) instead of rotating onto followers.
    const bool owner_only =
        read && options_.read_consistency == ReadConsistency::kOwnerOnly;
    NodeId node =
        owner_only
            ? candidates.front()
            : candidates[static_cast<size_t>(attempt) % candidates.size()];
    if (attempt == 0) {
      first_choice = node;
    } else {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(BackoffSeconds(attempt)));
      MutexLock lock(rec_mu_);
      ++rec_.retries;
      if (node != first_choice) ++rec_.failovers;
    }
    if (attempt > 0 && node != first_choice) {
      stats_.node_failovers.fetch_add(1, std::memory_order_relaxed);
    }
    load_view_->StartRequest(node);
    auto t0 = std::chrono::steady_clock::now();
    Status status = op(node);
    // An in-band error is still a timed answer from a live node — observe
    // it; only transport failures go through the penalty path instead.
    double seconds =
        IsTransportError(status)
            ? -1.0
            : std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
    load_view_->FinishRequest(node, seconds);
    if (!IsTransportError(status)) return status;  // ok or in-band error
    NoteFailure(node, status);
    last = status;
  }
  {
    MutexLock lock(rec_mu_);
    ++rec_.tuples_failed;
  }
  return last;
}

StatusOr<DataService::Fetched> ClusterClientService::QuorumFetch(
    Key key) const {
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  stats_.quorum_reads.fetch_add(1, std::memory_order_relaxed);
  const std::vector<NodeId> chain = topology_->ReplicasOf(key);
  if (chain.empty()) return Status::Aborted("no replicas");
  // Majority of the *full* chain, so any write acked by all live replicas
  // intersects every quorum even while a minority is down or partitioned.
  const size_t quorum = chain.size() / 2 + 1;
  size_t answered = 0;
  bool found = false;
  uint64_t min_vote = UINT64_MAX, max_vote = 0;
  Fetched best{};
  Status last = Status::Aborted("quorum: no live replica answered");
  for (NodeId node : chain) {
    if (!topology_->NodeUp(node)) continue;
    auto r = clients_[static_cast<size_t>(node)]->Fetch(key);
    uint64_t vote = 0;  // in-band NotFound votes "version 0"
    if (!r.ok()) {
      if (IsTransportError(r.status())) {
        NoteFailure(node, r.status());
        last = r.status();
        continue;
      }
    } else {
      vote = r->version;
      if (!found || vote > best.version) {
        best = std::move(*r);
        found = true;
      }
    }
    ++answered;
    min_vote = std::min(min_vote, vote);
    max_vote = std::max(max_vote, vote);
  }
  if (answered < quorum) {
    return Status::Aborted("quorum not reached: " + last.message());
  }
  if (min_vote != max_vote) {
    stats_.quorum_divergence.fetch_add(1, std::memory_order_relaxed);
  }
  if (!found) return Status::NotFound("key not found");
  return best;
}

StatusOr<DataService::ItemStat> ClusterClientService::QuorumStat(
    Key key) const {
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  stats_.quorum_reads.fetch_add(1, std::memory_order_relaxed);
  const std::vector<NodeId> chain = topology_->ReplicasOf(key);
  if (chain.empty()) return Status::Aborted("no replicas");
  const size_t quorum = chain.size() / 2 + 1;
  size_t answered = 0;
  bool found = false;
  uint64_t min_vote = UINT64_MAX, max_vote = 0;
  ItemStat best{};
  Status last = Status::Aborted("quorum: no live replica answered");
  for (NodeId node : chain) {
    if (!topology_->NodeUp(node)) continue;
    auto r = clients_[static_cast<size_t>(node)]->Stat(key);
    uint64_t vote = 0;
    if (!r.ok()) {
      if (IsTransportError(r.status())) {
        NoteFailure(node, r.status());
        last = r.status();
        continue;
      }
    } else {
      vote = r->version;
      if (!found || vote > best.version) {
        best = *r;
        found = true;
      }
    }
    ++answered;
    min_vote = std::min(min_vote, vote);
    max_vote = std::max(max_vote, vote);
  }
  if (answered < quorum) {
    return Status::Aborted("quorum not reached: " + last.message());
  }
  if (min_vote != max_vote) {
    stats_.quorum_divergence.fetch_add(1, std::memory_order_relaxed);
  }
  if (!found) return Status::NotFound("key not found");
  return best;
}

StatusOr<DataService::Fetched> ClusterClientService::Fetch(Key key) {
  if (options_.read_consistency == ReadConsistency::kQuorumVersion) {
    return QuorumFetch(key);
  }
  StatusOr<Fetched> result = Status::Aborted("unrouted");
  Status s = RoutedCall(key, /*read=*/true, [&](NodeId node) {
    result = clients_[static_cast<size_t>(node)]->Fetch(key);
    return result.ok() ? Status::OK() : result.status();
  });
  if (!s.ok()) return s;
  return result;
}

StatusOr<std::string> ClusterClientService::Execute(Key key,
                                                    const std::string& params,
                                                    const UserFn& fn) {
  StatusOr<std::string> result = Status::Aborted("unrouted");
  Status s = RoutedCall(key, /*read=*/false, [&](NodeId node) {
    result = clients_[static_cast<size_t>(node)]->Execute(key, params, fn);
    return result.ok() ? Status::OK() : result.status();
  });
  if (!s.ok()) return s;
  return result;
}

std::vector<StatusOr<std::string>> ClusterClientService::ExecuteBatch(
    const std::vector<std::pair<Key, std::string>>& items, const UserFn& fn) {
  (void)fn;  // registered server-side
  std::vector<StatusOr<std::string>> results(
      items.size(), StatusOr<std::string>(Status::Aborted("unrouted")));
  if (items.empty()) return results;

  // Group by current owner; indices remember where results scatter back.
  std::unordered_map<NodeId, std::vector<size_t>> groups;
  for (size_t i = 0; i < items.size(); ++i) {
    groups[topology_->OwnerOf(items[i].first)].push_back(i);
  }
  if (groups.size() > 1) {
    stats_.batches_split.fetch_add(1, std::memory_order_relaxed);
  }

  for (auto& [owner, indices] : groups) {
    std::vector<std::pair<Key, std::string>> group;
    group.reserve(indices.size());
    for (size_t i : indices) group.push_back(items[i]);
    // The tag is fixed before the first send and reused on every retry —
    // including retries that land on a different node after a promotion —
    // so the server-side dedup cache can answer replays.
    uint64_t tag = batch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::vector<StatusOr<std::string>> group_results;
    Status s =
        RoutedCall(group.front().first, /*read=*/false, [&](NodeId node) {
          group_results = clients_[static_cast<size_t>(node)]
                              ->ExecuteBatchTagged(group, client_id_, tag);
          // A whole-batch transport failure surfaces on every item; probe
          // the first for retriability.
          for (const auto& r : group_results) {
            if (!r.ok() && IsTransportError(r.status())) return r.status();
          }
          return Status::OK();
        });
    if (s.ok()) {
      for (size_t j = 0; j < indices.size(); ++j) {
        results[indices[j]] = std::move(group_results[j]);
      }
    } else {
      for (size_t i : indices) results[i] = s;
    }
  }
  return results;
}

StatusOr<DataService::ItemStat> ClusterClientService::Stat(Key key) const {
  if (options_.read_consistency == ReadConsistency::kQuorumVersion) {
    return QuorumStat(key);
  }
  StatusOr<ItemStat> result = Status::Aborted("unrouted");
  Status s = RoutedCall(key, /*read=*/true, [&](NodeId node) {
    result = clients_[static_cast<size_t>(node)]->Stat(key);
    return result.ok() ? Status::OK() : result.status();
  });
  if (!s.ok()) return s;
  return result;
}

NodeId ClusterClientService::OwnerOf(Key key) const {
  return topology_->OwnerOf(key);
}

StatusOr<uint64_t> ClusterClientService::Put(Key key,
                                             const std::string& value,
                                             PutOutcome* outcome) {
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  std::vector<NodeId> chain = topology_->ReplicasOf(key);
  StatusOr<uint64_t> primary_version = Status::Aborted("no replicas");
  PutOutcome out;
  // One logical write must carry ONE version to every replica: the first
  // successful write (normally the primary's) assigns it, and everyone
  // after gets it as a floor applied with ApplyIfNewer semantics. Letting
  // each replica's store count independently drifts the numbering after
  // any skip or failure — then version-aware merges compare mismatched
  // counters and reads can legitimately return "older" numbers for newer
  // data, which an oracle rightly flags as stale/torn.
  uint64_t floor = 0;
  for (size_t i = 0; i < chain.size(); ++i) {
    NodeId node = chain[i];
    if (!topology_->NodeUp(node)) {
      // A marked-down replica re-syncs its store on rejoin; skipping it is
      // safe and counted, not silent.
      stats_.skipped_replica_writes.fetch_add(1, std::memory_order_relaxed);
      ++out.replicas_skipped;
      continue;
    }
    auto version = clients_[static_cast<size_t>(node)]->Put(key, value, floor);
    if (version.ok()) {
      ++out.replicas_acked;
      if (floor == 0) floor = *version;
    } else {
      ++out.replicas_failed;
      if (IsTransportError(version.status())) {
        NoteFailure(node, version.status());
      }
    }
    if (i == 0) primary_version = std::move(version);
  }
  if (primary_version.ok()) out.primary_version = *primary_version;
  if (outcome != nullptr) *outcome = out;
  return primary_version;
}

RecoveryCounters ClusterClientService::recovery_counters() const {
  MutexLock lock(rec_mu_);
  return rec_;
}

ClusterClientStats ClusterClientService::stats() const {
  ClusterClientStats s;
  s.calls = stats_.calls.load(std::memory_order_relaxed);
  s.node_failovers = stats_.node_failovers.load(std::memory_order_relaxed);
  s.batches_split = stats_.batches_split.load(std::memory_order_relaxed);
  s.skipped_replica_writes =
      stats_.skipped_replica_writes.load(std::memory_order_relaxed);
  s.quorum_reads = stats_.quorum_reads.load(std::memory_order_relaxed);
  s.quorum_divergence =
      stats_.quorum_divergence.load(std::memory_order_relaxed);
  return s;
}

}  // namespace joinopt
