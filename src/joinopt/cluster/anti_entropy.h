// AntiEntropyAgent: live background replica repair (DESIGN.md §16). A sweep
// thread walks every region on a timer and, for each pair of live replicas,
// exchanges cheap RegionSummary digests (count + order-independent checksum
// over key/value contents) over the wire. Digests that agree cost one small
// RPC per replica per sweep; digests that disagree trigger a full
// bidirectional RegionSync — pull the primary's records, merge them into the
// lagging peer (version-aware, ApplyIfNewer on the server: a repair can
// never clobber a newer local write), and merge the peer's post-merge
// snapshot back — so divergence introduced by crashes, partitions or lost
// fan-outs is healed *without restarting anything*.
//
// Partition realism: every repair RPC is made through a per-(from, to)
// client tagged with the `from` replica's logical net identity, so a
// half-open NetFaultInjector partition between two replicas blocks their
// repair traffic exactly like it blocks data traffic. Repair of a pair
// simply stalls until the link heals; other pairs keep converging.
//
// Threading contract: one background thread plus any test thread calling
// SweepOnce(). One lock, mu_ (rank kAntiEntropy=460), guards stats and the
// lazily-built client cache, and is never held across an RPC (clients are
// internally thread-safe; kAntiEntropy ranks below every net-layer lock).
#ifndef JOINOPT_CLUSTER_ANTI_ENTROPY_H_
#define JOINOPT_CLUSTER_ANTI_ENTROPY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "joinopt/cluster/topology.h"
#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/sync.h"
#include "joinopt/net/rpc_client.h"

namespace joinopt {

struct AntiEntropyOptions {
  /// Pause between sweeps. One "repair period" for convergence guarantees
  /// is period + the sweep's own RPC time.
  double period = 100e-3;
  /// Deadline for each repair RPC (single attempt — a failed pair just
  /// waits for the next sweep; retrying inside the sweep would stall every
  /// other region behind a partitioned link).
  double request_timeout = 250e-3;
  /// Deadline for dialing a repair connection.
  double connect_deadline = 250e-3;
};

struct AntiEntropyStats {
  int64_t sweeps = 0;
  int64_t summaries = 0;        ///< RegionSummary RPCs issued
  int64_t mismatches = 0;       ///< replica pairs whose digests disagreed
  int64_t syncs = 0;            ///< full bidirectional syncs completed
  int64_t records_shipped = 0;  ///< records moved over the wire by syncs
  int64_t rpc_errors = 0;       ///< repair RPCs that failed (partition/crash)
};

class AntiEntropyAgent {
 public:
  /// Endpoints must already be published in `topology`. The sweep thread
  /// starts immediately.
  AntiEntropyAgent(ClusterTopology* topology, AntiEntropyOptions options = {});
  ~AntiEntropyAgent();

  AntiEntropyAgent(const AntiEntropyAgent&) = delete;
  AntiEntropyAgent& operator=(const AntiEntropyAgent&) = delete;

  void Stop();

  /// One synchronous sweep over every region — the background thread's body,
  /// public so tests can force convergence deterministically.
  void SweepOnce();

  AntiEntropyStats stats() const;

 private:
  void SweepLoop();
  /// Repairs one (primary, peer) pair for one region; returns whether the
  /// pair's digests disagreed.
  bool RepairPair(int region, NodeId base, NodeId peer);
  /// Lazily-built client dialing `to`, tagged with `from`'s net identity.
  RpcClientService* GetClient(NodeId from, NodeId to)
      JOINOPT_EXCLUDES(mu_);

  ClusterTopology* topology_;
  AntiEntropyOptions options_;

  /// Guards stats_ and clients_; released before every RPC.
  mutable Mutex mu_{lock_rank::kAntiEntropy, "AntiEntropyAgent::mu_"};
  CondVar cv_;  ///< wakes the sweep loop for Stop
  AntiEntropyStats stats_ JOINOPT_GUARDED_BY(mu_);
  /// Keyed (from, to): same pair, same connection pool across sweeps. Never
  /// erased, so returned pointers stay valid lock-free.
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<RpcClientService>>
      clients_ JOINOPT_GUARDED_BY(mu_);

  std::atomic<bool> stop_{false};
  std::thread sweeper_;
};

}  // namespace joinopt

#endif  // JOINOPT_CLUSTER_ANTI_ENTROPY_H_
