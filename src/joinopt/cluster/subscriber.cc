#include "joinopt/cluster/subscriber.h"

#include <sys/socket.h>

#include <chrono>

#include "joinopt/net/net_fault.h"
#include "joinopt/net/socket.h"

namespace joinopt {

UpdateSubscriber::UpdateSubscriber(ClusterTopology* topology,
                                   std::vector<NodeId> nodes,
                                   UpdateFn on_update, ResyncFn on_resync,
                                   UpdateSubscriberOptions options)
    : topology_(topology),
      nodes_(std::move(nodes)),
      on_update_(std::move(on_update)),
      on_resync_(std::move(on_resync)),
      options_(options) {
  fds_.reserve(nodes_.size());
  snapshot_seen_.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    fds_.push_back(std::make_unique<std::atomic<int>>(-1));
    snapshot_seen_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  threads_.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    threads_.emplace_back([this, i] { StreamLoop(i, nodes_[i]); });
  }
}

UpdateSubscriber::~UpdateSubscriber() { Stop(); }

void UpdateSubscriber::Stop() {
  stop_.store(true, std::memory_order_release);
  for (auto& fd : fds_) {
    int raw = fd->load(std::memory_order_acquire);
    if (raw >= 0) ::shutdown(raw, SHUT_RDWR);
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void UpdateSubscriber::DropConnectionForTest(NodeId node) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] != node) continue;
    int raw = fds_[i]->load(std::memory_order_acquire);
    if (raw >= 0) ::shutdown(raw, SHUT_RDWR);
  }
}

bool UpdateSubscriber::AllSnapshotsSeen() const {
  for (const auto& seen : snapshot_seen_) {
    if (!seen->load(std::memory_order_acquire)) return false;
  }
  return true;
}

UpdateSubscriberStats UpdateSubscriber::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void UpdateSubscriber::RunResync(NodeId node, int region) {
  // Called with mu_ NOT held: the resync callback walks invoker shards.
  int64_t dropped = on_resync_ ? on_resync_(node, region) : 0;
  MutexLock lock(mu_);
  ++stats_.resyncs;
  stats_.keys_dropped += dropped;
}

bool UpdateSubscriber::Reconcile(NodeId node, int region, uint64_t epoch,
                                 uint64_t seq, bool is_event) {
  bool resync = false;
  bool deliver = false;
  {
    MutexLock lock(mu_);
    RegionState& st = state_[{node, region}];
    if (!st.seen) {
      // First contact: adopt the position. Nothing was cached from this
      // region before the stream existed, so there is nothing to re-sync —
      // but an *event* as first contact still delivers its invalidation.
      st = RegionState{epoch, seq, true};
      deliver = is_event;
    } else if (epoch != st.epoch) {
      ++stats_.epoch_bumps;
      resync = true;
      deliver = is_event;
      st = RegionState{epoch, seq, true};
    } else if (seq <= st.seq) {
      if (is_event) ++stats_.duplicates_ignored;
      // A snapshot at-or-behind our position needs nothing.
    } else if (!is_event) {
      // Snapshot ahead of us: updates happened while we were deaf.
      ++stats_.gaps_detected;
      resync = true;
      st.seq = seq;
    } else if (seq == st.seq + 1) {
      st.seq = seq;
      deliver = true;
      ++stats_.notifications;
    } else {
      // Live-stream jump. The reactor backend coalesces same-key events
      // in its bounded pending queue, so a gap on a *live* stream means
      // the skipped seqs were superseded same-key updates whose final
      // versions ride in later events — each delivered event still
      // carries its key's latest version, and nothing needs a re-sync.
      // (The thread-per-connection backend never gaps a live stream: it
      // drops the connection on overflow, and the reconnect snapshot path
      // above re-syncs.) Seqs missed while *disconnected* surface as a
      // snapshot-ahead gap or an epoch bump, which still re-sync.
      stats_.coalesced_gaps += static_cast<int64_t>(seq - st.seq - 1);
      deliver = true;
      st.seq = seq;
    }
    // Note `notifications` counts only clean in-order deliveries; gap and
    // epoch-bump deliveries are visible through their own counters.
  }
  if (resync) RunResync(node, region);
  return deliver;
}

void UpdateSubscriber::StreamLoop(size_t slot, NodeId node) {
  uint32_t seq = 1;
  while (!stop_.load(std::memory_order_acquire)) {
    RpcEndpoint ep = topology_->endpoint(node);
    NetFaultInjector::ScopedIdentity fault_id(options_.net_identity);
    auto conn = TcpConnect(ep.host, ep.port, options_.connect_deadline);
    if (!conn.ok()) {
      {
        MutexLock lock(mu_);
        ++stats_.reconnects;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.reconnect_backoff));
      continue;
    }
    UniqueFd fd = std::move(conn).value();
    fds_[slot]->store(fd.get(), std::memory_order_release);

    bool streamed = false;
    Status s = SendFrame(fd.get(), MsgType::kSubscribeReq, seq++,
                         EncodeSubscribeRequest(options_.subscriber_id),
                         options_.connect_deadline, kDefaultMaxFrameBytes);
    if (s.ok()) {
      // The snapshot answer may take a beat; poll within the connect
      // budget but bail promptly on stop.
      auto resp =
          RecvFrame(fd.get(), options_.connect_deadline, kDefaultMaxFrameBytes);
      if (resp.ok() && resp->header.type == MsgType::kSubscribeResp) {
        auto snapshot = DecodeSubscribeResponse(resp->body);
        if (snapshot.ok()) {
          for (const RegionEpoch& re : *snapshot) {
            Reconcile(node, re.region, re.epoch, re.seq, /*is_event=*/false);
          }
          snapshot_seen_[slot]->store(true, std::memory_order_release);
          streamed = true;
          // Drain the push stream until it breaks.
          while (!stop_.load(std::memory_order_acquire)) {
            auto frame = RecvFrame(fd.get(), options_.poll_tick,
                                   kDefaultMaxFrameBytes);
            if (!frame.ok()) {
              if (IsDeadlineExceeded(frame.status())) continue;  // idle tick
              break;  // torn stream
            }
            if (frame->header.type != MsgType::kNotifyEvt) {
              break;  // protocol violation; redial
            }
            auto event = DecodeNotifyEvent(frame->body);
            if (!event.ok()) break;
            if (Reconcile(node, event->region, event->epoch, event->seq,
                          /*is_event=*/true) &&
                on_update_) {
              on_update_(event->key, event->version);
            }
          }
        }
      }
    }
    fds_[slot]->store(-1, std::memory_order_release);
    if (stop_.load(std::memory_order_acquire)) break;
    {
      MutexLock lock(mu_);
      if (streamed) ++stats_.reconnects;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.reconnect_backoff));
  }
}

}  // namespace joinopt
