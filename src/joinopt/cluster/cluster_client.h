// Owner-aware cluster client: a DataService that routes every verb to the
// data node the ClusterTopology says owns the key, over one single-endpoint
// RpcClientService per node. This is the compute-node view of the cluster —
// what a ParallelInvoker holds instead of a single server's client.
//
// Routing and failover: the replica chain is re-read from the topology on
// *every* attempt, so a controller promotion between attempts redirects the
// retry to the new primary instead of hammering the corpse. Reads
// (Fetch/Stat) pick a live replica by power-of-two-choices over the shared
// NodeLoadView (DESIGN.md §15): sample two candidates, send to the one with
// the lower (outstanding+1) * expected-latency score, so a slow-but-idle
// node repels traffic that a pure least-outstanding policy would dump on
// it. Writes and Execute/ExecuteBatch go primary-first — delegated compute
// must run where the optimizer placed it. A transport error reports the
// node to the failure listener (the controller's fast path), feeds a
// request_timeout-sized latency penalty to the load view, backs off with
// deterministic jitter, and retries; attempts are bounded by
// recovery.max_attempts and exhaustion counts tuples_failed.
//
// Exactly-once batches: ExecuteBatch splits items by current owner and
// ships each group via ExecuteBatchTagged with a tag that stays stable
// across retries — even when the retry lands on a different node after a
// promotion — so a replayed batch whose original response was lost is
// answered from the server's dedup cache instead of re-executing.
//
// OwnerOf never leaves the process: the topology *is* the ownership oracle
// (zero RPCs — the test asserts this), which is the payoff of sharing the
// RegionMap instead of asking a data node per key.
//
// Threading contract: every DataService method is safe to call from any
// number of threads concurrently (the ParallelInvoker's workers all share
// one instance). Internal locks: rec_mu_ (rank kClientRecovery=800,
// counters + jitter RNG) and the NodeLoadView's per-node locks (rank
// kNodeLoadView=270); neither is held across an RPC, so a stalled remote
// never wedges routing. The failure listener and the topology's own lock
// run outside both. Rank table: DESIGN.md §12.
#ifndef JOINOPT_CLUSTER_CLUSTER_CLIENT_H_
#define JOINOPT_CLUSTER_CLUSTER_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "joinopt/cluster/topology.h"
#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/random.h"
#include "joinopt/common/status.h"
#include "joinopt/common/sync.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/engine/types.h"
#include "joinopt/loadbalance/node_load_view.h"
#include "joinopt/net/rpc_client.h"

namespace joinopt {

/// What a read (Fetch/Stat) is allowed to return (DESIGN.md §16). The
/// write path acks a Put after the primary (and every *live* follower)
/// applied it, so the modes trade latency against which replica's history
/// the caller may observe.
enum class ReadConsistency {
  /// Any live replica, picked by power-of-two-choices. Fastest; may miss
  /// writes a partitioned or catching-up follower has not applied yet.
  kAny,
  /// Always the current primary (chain head after promotions). Sees every
  /// write the cluster acked while that primary was in charge; after a
  /// promotion the new primary is the most conservative live choice.
  kOwnerOnly,
  /// Read a majority of the replica chain and return the highest version.
  /// Survives any minority of stale replicas: a write acked by all live
  /// replicas is always visible. Costs quorum-many RPCs per read.
  kQuorumVersion,
};

/// What one replicated Put actually did — the receipt the chaos oracle
/// uses to decide whether a write is guaranteed durable under faults.
struct PutOutcome {
  uint64_t primary_version = 0;
  int replicas_acked = 0;    ///< replicas whose Put returned OK
  int replicas_skipped = 0;  ///< marked-down replicas skipped (re-sync owed)
  int replicas_failed = 0;   ///< live replicas whose Put failed
  /// Every replica in the chain applied the write: no single crash — and
  /// no minority of crashes — can lose it.
  bool fully_replicated() const {
    return replicas_acked > 0 && replicas_skipped == 0 &&
           replicas_failed == 0;
  }
};

struct ClusterClientOptions {
  /// Retry/backoff discipline across nodes (per-node RPCs run with exactly
  /// one attempt and io deadline = request_timeout; this layer owns the
  /// rotation).
  RecoveryConfig recovery;
  /// Spread reads across live replicas by power-of-two-choices over the
  /// node load view (outstanding counts x expected latency).
  bool balance_reads = true;
  /// Shared load view sized to the topology's node count. Null (the
  /// default) makes the client own a private one; the engine layer passes
  /// the view it also feeds cost-model estimates into, so read balancing
  /// sees tCompute/tFetch before any direct latency sample exists.
  NodeLoadView* load_view = nullptr;
  double connect_deadline = 1.0;
  uint64_t seed = 0xc105731e;
  /// Staleness contract for Fetch/Stat (see ReadConsistency).
  ReadConsistency read_consistency = ReadConsistency::kAny;
  /// Shared hedging manager handed to every per-node transport client —
  /// one latency-quantile pool and one hedge budget for the whole cluster
  /// view. Null disables hedging at this layer.
  std::shared_ptr<HedgingManager> hedging;
  /// With `hedging` set: duplicate straggling tagged batches against the
  /// owner after the hedge delay; the server's replay-dedup cache absorbs
  /// the duplicate (see RpcClientOptions::hedge_idempotent_batches).
  bool hedge_idempotent_batches = false;
  /// Logical endpoint id for NetFaultInjector partitions; -1 opts out.
  /// ClusterDeployment tags its client with num_nodes (nodes use their own
  /// ids), so injected half-open links cut compute↔node paths.
  int32_t net_identity = -1;

  ClusterClientOptions() {
    recovery.enabled = true;
    recovery.request_timeout = 2.0;
    recovery.backoff_base = 10e-3;
    recovery.backoff_max = 200e-3;
    recovery.max_attempts = 4;
  }
};

struct ClusterClientStats {
  int64_t calls = 0;  ///< verb invocations (a batch counts once per group)
  /// Attempts that landed on a different node than the first choice.
  int64_t node_failovers = 0;
  /// ExecuteBatch calls that split into >1 per-owner group.
  int64_t batches_split = 0;
  /// Replica writes skipped because the topology had the node marked down.
  int64_t skipped_replica_writes = 0;
  /// Fetch/Stat calls served by a kQuorumVersion majority read.
  int64_t quorum_reads = 0;
  /// Quorum reads whose replicas disagreed on the version — each one is a
  /// staleness window kAny would have been exposed to.
  int64_t quorum_divergence = 0;
};

class ClusterClientService : public DataService {
 public:
  /// Every data node must already have its endpoint published in
  /// `topology` (ClusterDeployment starts the nodes first).
  ClusterClientService(ClusterTopology* topology,
                       ClusterClientOptions options = {});

  // DataService verbs, owner-routed.
  StatusOr<Fetched> Fetch(Key key) override;
  StatusOr<std::string> Execute(Key key, const std::string& params,
                                const UserFn& fn) override;
  std::vector<StatusOr<std::string>> ExecuteBatch(
      const std::vector<std::pair<Key, std::string>>& items,
      const UserFn& fn) override;
  StatusOr<ItemStat> Stat(Key key) const override;
  /// Local topology lookup — zero RPCs.
  NodeId OwnerOf(Key key) const override;

  /// Writes to every live replica of the key's region (primary must
  /// succeed; follower failures are reported and skipped). Returns the
  /// primary's new version. `outcome` (optional) reports how many replicas
  /// actually acked — the durability receipt the chaos oracle consumes.
  StatusOr<uint64_t> Put(Key key, const std::string& value,
                         PutOutcome* outcome = nullptr);

  /// Called with the NodeId on every transport error — the controller's
  /// failure fast path. Must be thread-safe; set before first use.
  void set_failure_listener(std::function<void(NodeId)> listener) {
    failure_listener_ = std::move(listener);
  }

  RecoveryCounters recovery_counters() const;
  ClusterClientStats stats() const;
  uint64_t client_id() const { return client_id_; }
  /// Direct access to one node's transport client (tests).
  RpcClientService& node_client(NodeId node) {
    return *clients_[static_cast<size_t>(node)];
  }
  /// The load view reads balance over (the shared one from the options, or
  /// the private one this client owns).
  NodeLoadView& load_view() const { return *load_view_; }

 private:
  /// One owner-routed call with the retry/failover rotation. `read`
  /// enables replica balancing; `op` runs one attempt against one node and
  /// returns true on success (in-band errors count as success: they came
  /// from a live node and are never retried). The Status out-param carries
  /// the transport error on false.
  template <typename Op>
  Status RoutedCall(Key key, bool read, const Op& op) const;
  /// Candidate nodes for this attempt, refreshed from the topology.
  std::vector<NodeId> Candidates(Key key, bool read) const;
  /// kQuorumVersion read path: majority of the replica chain, highest
  /// version wins (NotFound counts as a version-0 vote).
  StatusOr<Fetched> QuorumFetch(Key key) const;
  StatusOr<ItemStat> QuorumStat(Key key) const;
  void NoteFailure(NodeId node, const Status& status) const;
  double BackoffSeconds(int attempt) const;

  ClusterTopology* topology_;
  ClusterClientOptions options_;
  std::vector<std::unique_ptr<RpcClientService>> clients_;  // per node
  /// Cross-node balancing signal: outstanding counts + latency EWMAs +
  /// cost-model estimates, possibly shared with the engine layer.
  std::unique_ptr<NodeLoadView> owned_load_view_;
  NodeLoadView* load_view_ = nullptr;
  std::atomic<uint64_t> batch_seq_{0};
  uint64_t client_id_ = 0;
  /// Set once before the client is shared across threads (see the setter's
  /// contract); read-only afterwards, hence not lock-guarded.
  std::function<void(NodeId)> failure_listener_;

  mutable Mutex rec_mu_{lock_rank::kClientRecovery,
                        "ClusterClientService::rec_mu_"};
  mutable RecoveryCounters rec_ JOINOPT_GUARDED_BY(rec_mu_);
  mutable Rng jitter_rng_ JOINOPT_GUARDED_BY(rec_mu_);

  struct AtomicStats {
    std::atomic<int64_t> calls{0};
    std::atomic<int64_t> node_failovers{0};
    std::atomic<int64_t> batches_split{0};
    std::atomic<int64_t> skipped_replica_writes{0};
    std::atomic<int64_t> quorum_reads{0};
    std::atomic<int64_t> quorum_divergence{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace joinopt

#endif  // JOINOPT_CLUSTER_CLUSTER_CLIENT_H_
