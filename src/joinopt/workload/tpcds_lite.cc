#include "joinopt/workload/tpcds_lite.h"

#include <algorithm>
#include <cmath>

#include "joinopt/common/random.h"

namespace joinopt {

const char* TpcdsQueryToString(TpcdsQuery q) {
  switch (q) {
    case TpcdsQuery::kQ3:
      return "Q3";
    case TpcdsQuery::kQ7:
      return "Q7";
    case TpcdsQuery::kQ27:
      return "Q27";
    case TpcdsQuery::kQ42:
      return "Q42";
  }
  return "?";
}

std::vector<TpcdsQuery> AllTpcdsQueries() {
  return {TpcdsQuery::kQ3, TpcdsQuery::kQ7, TpcdsQuery::kQ27,
          TpcdsQuery::kQ42};
}

namespace {

TpcdsStageSpec DateDim(double scale, double selectivity) {
  // date_dim: dense calendar; filters select a month / a year.
  return {"date_dim", static_cast<int64_t>(7300 * scale), 160.0, 0.0,
          selectivity};
}
TpcdsStageSpec ItemDim(double scale, double selectivity) {
  // item: popular products dominate sales -> skewed FKs.
  return {"item", static_cast<int64_t>(18000 * scale), 300.0, 0.8,
          selectivity};
}
TpcdsStageSpec CdemoDim(double scale, double selectivity) {
  // customer_demographics: large, mildly skewed.
  return {"customer_demographics", static_cast<int64_t>(96000 * scale), 48.0,
          0.4, selectivity};
}
TpcdsStageSpec StoreDim(double scale, double selectivity) {
  // store: tiny, very skewed (big stores sell more).
  return {"store", std::max<int64_t>(static_cast<int64_t>(60 * scale), 4),
          260.0, 1.0, selectivity};
}
TpcdsStageSpec PromoDim(double scale, double selectivity) {
  return {"promotion", std::max<int64_t>(static_cast<int64_t>(150 * scale), 4),
          120.0, 0.6, selectivity};
}

}  // namespace

TpcdsQuerySpec GetTpcdsQuerySpec(TpcdsQuery query, double scale) {
  TpcdsQuerySpec spec;
  spec.name = TpcdsQueryToString(query);
  spec.fact_row_bytes = 110.0;  // the store_sales columns these queries read
  switch (query) {
    case TpcdsQuery::kQ3:
      // date filter (one month, d_moy = 11) then item (manufact filter).
      spec.stages = {DateDim(scale, 0.08), ItemDim(scale, 0.05)};
      break;
    case TpcdsQuery::kQ7:
      // cdemo filters (gender/marital/education), date (year), item,
      // promotion (email or event).
      spec.stages = {CdemoDim(scale, 0.15), DateDim(scale, 0.2),
                     ItemDim(scale, 1.0), PromoDim(scale, 0.4)};
      break;
    case TpcdsQuery::kQ27:
      spec.stages = {CdemoDim(scale, 0.15), DateDim(scale, 0.2),
                     StoreDim(scale, 0.5), ItemDim(scale, 1.0)};
      break;
    case TpcdsQuery::kQ42:
      spec.stages = {DateDim(scale, 0.08), ItemDim(scale, 0.1)};
      break;
  }
  return spec;
}

GeneratedWorkload MakeTpcdsWorkload(TpcdsQuery query,
                                    const TpcdsConfig& config,
                                    const NodeLayout& layout) {
  TpcdsQuerySpec spec = GetTpcdsQuerySpec(query, config.scale);
  GeneratedWorkload out;
  out.computed_value_bytes = 96.0;  // joined + projected row

  for (const TpcdsStageSpec& stage : spec.stages) {
    auto store = std::make_unique<ParallelStore>(
        ParallelStoreConfig{}, layout.data_nodes, layout.compute_nodes);
    for (Key k = 0; k < static_cast<Key>(stage.dim_rows); ++k) {
      StoredItem item;
      item.size_bytes = stage.dim_row_bytes;
      // Pure join + predicate: a cheap row-comparison "UDF".
      item.udf_cost = 3e-6;
      store->Put(k, item);
    }
    out.stores.push_back(std::move(store));
    out.stage_selectivity.push_back(stage.selectivity);
  }

  Rng rng(config.seed);
  std::vector<ZipfDistribution> fks;
  fks.reserve(spec.stages.size());
  for (const TpcdsStageSpec& stage : spec.stages) {
    fks.emplace_back(static_cast<uint64_t>(stage.dim_rows), stage.fk_zipf);
  }

  const int num_compute = static_cast<int>(layout.compute_nodes.size());
  out.inputs.resize(static_cast<size_t>(num_compute));
  for (int i = 0; i < num_compute; ++i) {
    auto& slice = out.inputs[static_cast<size_t>(i)];
    slice.reserve(static_cast<size_t>(config.fact_rows_per_node));
    for (int r = 0; r < config.fact_rows_per_node; ++r) {
      InputTuple tuple;
      tuple.keys.reserve(spec.stages.size());
      for (auto& fk : fks) tuple.keys.push_back(fk.Sample(rng));
      tuple.param_bytes = spec.fact_row_bytes;
      slice.push_back(std::move(tuple));
    }
  }
  return out;
}

}  // namespace joinopt
