// Entity-annotation workload (Sections 2.1 and 9.1): documents contain
// "spots" (token mentions with surrounding context); each spot joins with a
// trained per-token model stored in the parallel store, and a classification
// UDF runs on the pair.
//
// Synthetic stand-in for the paper's ClueWeb09 corpus + 28.7 GB model set
// (not available offline): token frequency is Zipf-distributed, and model
// sizes are rank-correlated and heavy-tailed (frequent tokens have the large
// models — the premise of CSAW's cost-aware partitioning [12]), with
// classification cost proportional to model size. Both skew sources the
// paper's Figure 5 exercises are present: key-frequency skew and per-key UDF
// cost skew.
#ifndef JOINOPT_WORKLOAD_ENTITY_ANNOTATION_H_
#define JOINOPT_WORKLOAD_ENTITY_ANNOTATION_H_

#include <cstdint>
#include <vector>

#include "joinopt/workload/workload.h"

namespace joinopt {

struct AnnotationConfig {
  int num_tokens = 20000;
  /// Zipf skew of token mentions across spots.
  double token_zipf = 1.0;
  int documents = 7000;
  /// Mean spots per document (geometric).
  double spots_per_doc_mean = 12.0;
  /// Model size tail: size(rank) ~ max_model_bytes * (rank+1)^-size_decay,
  /// floored at min_model_bytes, with multiplicative noise.
  double max_model_bytes = 2.0 * 1024 * 1024;
  double min_model_bytes = 512.0;
  double size_decay = 0.55;
  /// Classification cost = base + bytes * cost_per_byte. Classification is
  /// strongly CPU-bound in the paper (a 1 GB corpus takes >5 h of basic
  /// MapReduce), so per-byte cost dominates transfer time by an order of
  /// magnitude.
  double base_classify_cost = 0.5e-3;
  double cost_per_byte = 3.2e-7;
  /// Bytes of document context shipped with a spot (the p parameter).
  double context_bytes = 200.0;
  /// Annotated-result size (scv).
  double annotation_bytes = 128.0;
  /// > 0: the hot tokens change this many times over the stream (tweet
  /// style trending, Section 2.1's Twitter discussion).
  int popularity_shifts = 0;
  uint64_t seed = 7;
};

/// The flat spot stream plus per-token ground truth — shared by the
/// framework runs and the MapReduce baselines (Hadoop / CSAW / FlowJoinLB)
/// so every technique annotates exactly the same corpus.
struct AnnotationSpots {
  AnnotationConfig config;
  std::vector<Key> tokens;           ///< one entry per spot, stream order
  std::vector<double> model_bytes;   ///< indexed by token id
  std::vector<double> model_cost;    ///< classification cost per invocation
  std::vector<int64_t> token_count;  ///< exact frequency (baseline stats)
  int64_t documents = 0;

  int64_t num_spots() const { return static_cast<int64_t>(tokens.size()); }
  double total_model_bytes() const;
  /// Total classification CPU if every spot were computed once.
  double total_classify_cost() const;
};

AnnotationSpots GenerateAnnotationSpots(const AnnotationConfig& config);

/// Loads the models into a parallel store and splits the spot stream
/// round-robin across compute nodes for a framework (JoinJob) run.
GeneratedWorkload ToFrameworkWorkload(const AnnotationSpots& spots,
                                      const NodeLayout& layout);

/// Tweet-stream variant (Section 9.1.2): short documents, roughly half with
/// no annotatable entity, trending tokens. Returns spots with
/// popularity_shifts pre-set; `annotatable_fraction` of tweets carry >= 1
/// spot. `tweets` counts all tweets (for tweets/second reporting).
struct TweetStreamConfig {
  int num_tokens = 20000;
  double token_zipf = 1.0;
  int tweets = 40000;
  double annotatable_fraction = 0.5;
  double spots_per_annotatable_tweet = 1.4;
  int popularity_shifts = 8;
  uint64_t seed = 11;
};
AnnotationSpots GenerateTweetStream(const TweetStreamConfig& config);

}  // namespace joinopt

#endif  // JOINOPT_WORKLOAD_ENTITY_ANNOTATION_H_
