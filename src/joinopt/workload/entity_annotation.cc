#include "joinopt/workload/entity_annotation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "joinopt/common/random.h"

namespace joinopt {

double AnnotationSpots::total_model_bytes() const {
  return std::accumulate(model_bytes.begin(), model_bytes.end(), 0.0);
}

double AnnotationSpots::total_classify_cost() const {
  double total = 0;
  for (Key t : tokens) total += model_cost[static_cast<size_t>(t)];
  return total;
}

namespace {

/// Builds the rank-correlated heavy-tailed model catalog.
void BuildModels(const AnnotationConfig& cfg, Rng& rng,
                 std::vector<double>* bytes, std::vector<double>* cost) {
  bytes->resize(static_cast<size_t>(cfg.num_tokens));
  cost->resize(static_cast<size_t>(cfg.num_tokens));
  for (int t = 0; t < cfg.num_tokens; ++t) {
    double size = cfg.max_model_bytes *
                  std::pow(static_cast<double>(t + 1), -cfg.size_decay);
    // Multiplicative noise in [0.5, 2): model quality varies per token.
    size *= 0.5 * std::exp(rng.NextDouble() * std::log(4.0));
    size = std::max(size, cfg.min_model_bytes);
    (*bytes)[static_cast<size_t>(t)] = size;
    (*cost)[static_cast<size_t>(t)] =
        cfg.base_classify_cost + size * cfg.cost_per_byte;
  }
}

/// Draws a spot stream: Zipf ranks mapped to token ids through an
/// epoch-shifting permutation (identity when popularity_shifts == 0).
void DrawSpots(const AnnotationConfig& cfg, int64_t total_spots,
               const std::vector<int64_t>& spots_per_unit, Rng& rng,
               AnnotationSpots* out) {
  ZipfDistribution zipf(static_cast<uint64_t>(cfg.num_tokens),
                        cfg.token_zipf);
  std::vector<uint32_t> perm(static_cast<size_t>(cfg.num_tokens));
  std::iota(perm.begin(), perm.end(), 0u);
  int current_epoch = -1;
  out->tokens.reserve(static_cast<size_t>(total_spots));
  out->token_count.assign(static_cast<size_t>(cfg.num_tokens), 0);
  int64_t emitted = 0;
  for (size_t unit = 0; unit < spots_per_unit.size(); ++unit) {
    for (int64_t s = 0; s < spots_per_unit[unit]; ++s) {
      if (cfg.popularity_shifts > 0 && total_spots > 0) {
        int epoch = static_cast<int>(emitted * cfg.popularity_shifts /
                                     std::max<int64_t>(total_spots, 1));
        if (epoch != current_epoch) {
          current_epoch = epoch;
          Rng perm_rng(cfg.seed ^ (0xA24BAED4963EE407ULL *
                                   static_cast<uint64_t>(epoch + 1)));
          Shuffle(perm, perm_rng);
        }
      }
      Key token = perm[zipf.Sample(rng)];
      out->tokens.push_back(token);
      ++out->token_count[static_cast<size_t>(token)];
      ++emitted;
    }
  }
}

}  // namespace

AnnotationSpots GenerateAnnotationSpots(const AnnotationConfig& config) {
  AnnotationSpots out;
  out.config = config;
  out.documents = config.documents;
  Rng rng(config.seed);
  BuildModels(config, rng, &out.model_bytes, &out.model_cost);

  // Geometric spots-per-document with the configured mean.
  std::vector<int64_t> spots_per_doc(static_cast<size_t>(config.documents));
  double p = 1.0 / std::max(config.spots_per_doc_mean, 1.0);
  int64_t total = 0;
  for (auto& s : spots_per_doc) {
    int64_t n = 1;
    while (rng.NextDouble() > p && n < 1000) ++n;
    s = n;
    total += n;
  }
  DrawSpots(config, total, spots_per_doc, rng, &out);
  return out;
}

AnnotationSpots GenerateTweetStream(const TweetStreamConfig& config) {
  AnnotationConfig cfg;
  cfg.num_tokens = config.num_tokens;
  cfg.token_zipf = config.token_zipf;
  cfg.popularity_shifts = config.popularity_shifts;
  cfg.seed = config.seed;
  cfg.context_bytes = 140.0;  // tweets are short

  AnnotationSpots out;
  out.config = cfg;
  out.documents = config.tweets;
  Rng rng(config.seed);
  BuildModels(cfg, rng, &out.model_bytes, &out.model_cost);

  std::vector<int64_t> spots_per_tweet(static_cast<size_t>(config.tweets), 0);
  int64_t total = 0;
  double p = 1.0 / std::max(config.spots_per_annotatable_tweet, 1.0);
  for (auto& s : spots_per_tweet) {
    if (rng.NextDouble() >= config.annotatable_fraction) continue;  // 0 spots
    int64_t n = 1;
    while (rng.NextDouble() > p && n < 20) ++n;
    s = n;
    total += n;
  }
  DrawSpots(cfg, total, spots_per_tweet, rng, &out);
  return out;
}

GeneratedWorkload ToFrameworkWorkload(const AnnotationSpots& spots,
                                      const NodeLayout& layout) {
  GeneratedWorkload out;
  out.computed_value_bytes = spots.config.annotation_bytes;

  auto store = std::make_unique<ParallelStore>(
      ParallelStoreConfig{}, layout.data_nodes, layout.compute_nodes);
  for (size_t t = 0; t < spots.model_bytes.size(); ++t) {
    StoredItem item;
    item.size_bytes = spots.model_bytes[t];
    item.udf_cost = spots.model_cost[t];
    store->Put(static_cast<Key>(t), item);
  }
  out.stores.push_back(std::move(store));

  const int num_compute = static_cast<int>(layout.compute_nodes.size());
  out.inputs.resize(static_cast<size_t>(num_compute));
  for (size_t i = 0; i < spots.tokens.size(); ++i) {
    InputTuple tuple;
    tuple.keys = {spots.tokens[i]};
    tuple.param_bytes = spots.config.context_bytes;
    out.inputs[i % static_cast<size_t>(num_compute)].push_back(
        std::move(tuple));
  }
  return out;
}

}  // namespace joinopt
