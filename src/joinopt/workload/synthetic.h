// The paper's synthetic workloads (Section 9.3):
//   DH  — data heavy: 200 GB store, ~100 KB values, tiny UDF, small result
//   CH  — compute heavy: 20 GB store, small values, ~100 ms UDFs
//   DCH — both: 200 GB store, 100 KB values, ~100 ms UDFs
// Join keys are Zipf(z) over the key domain; z is swept 0..1.5 in the
// figures. The store has no skew (uniform primary keys, uniform sizes).
//
// Sizes here are scaled down from the paper's cluster by `scale` so a run
// finishes in simulator seconds; all *ratios* (value size vs bandwidth, UDF
// cost vs CPU) are preserved, which is what the normalized figures compare.
//
// Dynamic distribution (Section 9.3.2): `popularity_shifts` > 0 re-maps
// which concrete keys are the frequent ones that many times over the course
// of the stream, modelling trending keys in a tweet stream.
#ifndef JOINOPT_WORKLOAD_SYNTHETIC_H_
#define JOINOPT_WORKLOAD_SYNTHETIC_H_

#include <cstdint>

#include "joinopt/workload/workload.h"

namespace joinopt {

enum class SyntheticKind { kDataHeavy, kComputeHeavy, kDataComputeHeavy };

const char* SyntheticKindToString(SyntheticKind k);

struct SyntheticConfig {
  SyntheticKind kind = SyntheticKind::kDataHeavy;
  /// Zipf skew of the join keys (paper sweeps 0, 0.5, 1.0, 1.5).
  double zipf_z = 0.0;
  /// Tuples per compute node.
  int tuples_per_node = 20000;
  /// Number of distinct keys in the store.
  int num_keys = 100000;
  /// How many times the set of frequent keys changes during the stream
  /// (0 = static distribution; the paper's dynamic experiment uses 10).
  int popularity_shifts = 0;
  /// Copies of each region in the store (1 = none). >= 2 lets fault runs
  /// fail over reads when a data node crashes mid-join.
  int replication_factor = 1;
  uint64_t seed = 42;
};

/// Per-kind physical parameters (value size, UDF cost, result size).
struct SyntheticProfile {
  double stored_value_bytes;
  double udf_cost;
  double computed_value_bytes;
  static SyntheticProfile For(SyntheticKind kind);
};

/// Builds the stores and inputs for a synthetic run.
GeneratedWorkload MakeSyntheticWorkload(const SyntheticConfig& config,
                                        const NodeLayout& layout);

}  // namespace joinopt

#endif  // JOINOPT_WORKLOAD_SYNTHETIC_H_
