#include "joinopt/workload/cloudburst.h"

#include <algorithm>
#include <unordered_map>

#include "joinopt/common/hash.h"
#include "joinopt/common/random.h"

namespace joinopt {

namespace {

/// Packs an n-gram of bases (2 bits each) into a key.
Key PackNgram(const std::vector<uint8_t>& seq, int64_t pos, int n) {
  Key k = 0;
  for (int i = 0; i < n; ++i) {
    k = (k << 2) | seq[static_cast<size_t>(pos + i)];
  }
  return k;
}

}  // namespace

NgramIndex GenerateCloudBurst(const CloudBurstConfig& config) {
  NgramIndex out;
  out.config = config;
  Rng rng(config.seed);

  // Reference: random bases with planted repeats. A repeat region copies a
  // short motif over and over — the source of n-gram heavy hitters.
  std::vector<uint8_t> reference(static_cast<size_t>(config.reference_bases));
  for (auto& base : reference) base = static_cast<uint8_t>(rng.NextBounded(4));
  int64_t repeat_bases =
      static_cast<int64_t>(config.repeat_fraction *
                           static_cast<double>(config.reference_bases));
  int64_t planted = 0;
  while (planted < repeat_bases) {
    int64_t region =
        std::min<int64_t>(500 + static_cast<int64_t>(rng.NextBounded(2000)),
                          repeat_bases - planted);
    int64_t start = static_cast<int64_t>(rng.NextBounded(
        static_cast<uint64_t>(config.reference_bases - region)));
    int motif_len = 4 + static_cast<int>(rng.NextBounded(12));
    for (int64_t i = 0; i < region; ++i) {
      reference[static_cast<size_t>(start + i)] =
          reference[static_cast<size_t>(start + (i % motif_len))];
    }
    planted += region;
  }

  // Index every n-gram of the reference.
  std::unordered_map<Key, int32_t> occurrences;
  int64_t positions = config.reference_bases - config.ngram + 1;
  for (int64_t pos = 0; pos < positions; ++pos) {
    ++occurrences[PackNgram(reference, pos, config.ngram)];
  }
  out.keys.reserve(occurrences.size());
  out.occurrences.reserve(occurrences.size());
  for (const auto& [key, count] : occurrences) {
    out.keys.push_back(key);
    out.occurrences.push_back(count);
  }

  // Reads: sampled from the reference (with rare sequencing errors), each
  // probing the index with its leading n-gram — CloudBurst's seed step.
  out.read_stream.reserve(static_cast<size_t>(config.reads));
  for (int64_t r = 0; r < config.reads; ++r) {
    int64_t start = static_cast<int64_t>(rng.NextBounded(
        static_cast<uint64_t>(config.reference_bases - config.read_length)));
    Key probe = PackNgram(reference, start, config.ngram);
    if (rng.Bernoulli(0.02)) {
      // Sequencing error inside the seed: probe a mutated n-gram; align to
      // whatever it happens to hit (possibly nothing in real life — here
      // the nearest indexed n-gram, so the stream stays store-resolvable).
      probe ^= 1;
      if (occurrences.find(probe) == occurrences.end()) probe ^= 1;
    }
    out.read_stream.push_back(probe);
    out.total_candidate_alignments +=
        occurrences.at(probe);
  }
  return out;
}

GeneratedWorkload ToCloudBurstWorkload(const NgramIndex& index,
                                       const NodeLayout& layout) {
  GeneratedWorkload out;
  out.computed_value_bytes = 64.0;  // alignment result (position + score)

  const CloudBurstConfig& cfg = index.config;
  auto store = std::make_unique<ParallelStore>(
      ParallelStoreConfig{}, layout.data_nodes, layout.compute_nodes);
  for (size_t i = 0; i < index.keys.size(); ++i) {
    StoredItem item;
    // Location list: 4 bytes per occurrence plus header.
    item.size_bytes = 32.0 + 4.0 * index.occurrences[i];
    // Approximate matching against every candidate location.
    item.udf_cost = cfg.match_cost_per_hit * index.occurrences[i];
    store->Put(index.keys[i], item);
  }
  out.stores.push_back(std::move(store));

  const int num_compute = static_cast<int>(layout.compute_nodes.size());
  out.inputs.resize(static_cast<size_t>(num_compute));
  for (size_t i = 0; i < index.read_stream.size(); ++i) {
    InputTuple tuple;
    tuple.keys = {index.read_stream[i]};
    tuple.param_bytes = static_cast<double>(cfg.read_length);
    out.inputs[i % static_cast<size_t>(num_compute)].push_back(
        std::move(tuple));
  }
  return out;
}

}  // namespace joinopt
