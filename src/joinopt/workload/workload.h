// Common workload types: a generated workload bundles the loaded parallel
// stores (one per join stage) with the per-compute-node input partitions and
// the engine knobs the workload dictates (computed value size, selectivity).
#ifndef JOINOPT_WORKLOAD_WORKLOAD_H_
#define JOINOPT_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <vector>

#include "joinopt/engine/types.h"
#include "joinopt/store/parallel_store.h"

namespace joinopt {

/// Node layout handed to workload generators (who owns which store shard,
/// who consumes which input slice).
struct NodeLayout {
  std::vector<NodeId> compute_nodes;
  std::vector<NodeId> data_nodes;

  /// Convenience: 0..c-1 compute, c..c+d-1 data (the Cluster convention).
  static NodeLayout Of(int num_compute, int num_data) {
    NodeLayout l;
    for (int i = 0; i < num_compute; ++i) l.compute_nodes.push_back(i);
    for (int j = 0; j < num_data; ++j) l.data_nodes.push_back(num_compute + j);
    return l;
  }
};

struct GeneratedWorkload {
  /// One store per pipeline stage, already loaded.
  std::vector<std::unique_ptr<ParallelStore>> stores;
  /// inputs[i] = the tuple stream of compute node i.
  std::vector<std::vector<InputTuple>> inputs;
  /// Workload-dictated engine knobs (computed value size, selectivity);
  /// strategy-independent.
  double computed_value_bytes = 256.0;
  std::vector<double> stage_selectivity;

  std::vector<ParallelStore*> store_ptrs() const {
    std::vector<ParallelStore*> out;
    for (const auto& s : stores) out.push_back(s.get());
    return out;
  }
  int64_t total_tuples() const {
    int64_t n = 0;
    for (const auto& in : inputs) n += static_cast<int64_t>(in.size());
    return n;
  }
};

}  // namespace joinopt

#endif  // JOINOPT_WORKLOAD_WORKLOAD_H_
