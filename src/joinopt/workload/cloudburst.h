// CloudBurst-style genome read alignment (Appendix A of the paper): a large
// set of short reads is aligned against a reference sequence by matching
// n-grams. In the MapReduce formulation every read with a given n-gram goes
// to the single reducer owning that n-gram, and UDO (approximate-matching)
// cost varies per n-gram — the skew SkewTune was built for. In the paper's
// framework the reference's n-gram index lives in the parallel store; reads
// fan out from compute nodes and hot n-grams (low-complexity repeats like
// poly-A runs) get cached.
//
// Synthetic stand-in for real genome data (not available offline): the
// reference is a random sequence with planted repetitive regions, so the
// n-gram frequency distribution has the real data's heavy tail.
#ifndef JOINOPT_WORKLOAD_CLOUDBURST_H_
#define JOINOPT_WORKLOAD_CLOUDBURST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "joinopt/workload/workload.h"

namespace joinopt {

struct CloudBurstConfig {
  /// Reference sequence length in bases.
  int64_t reference_bases = 500000;
  /// Fraction of the reference covered by repetitive regions (drives the
  /// n-gram heavy hitters).
  double repeat_fraction = 0.15;
  /// Seed (n-gram) length used for indexing, as in CloudBurst.
  int ngram = 12;
  /// Number of reads to align.
  int64_t reads = 100000;
  int read_length = 36;
  /// Approximate-matching cost per candidate location (CPU seconds).
  double match_cost_per_hit = 40e-6;
  uint64_t seed = 17;
};

/// One entry of the reference n-gram index: the n-gram hash plus how many
/// reference locations it occurs at (the UDO workload per probing read).
struct NgramIndex {
  CloudBurstConfig config;
  /// Dense n-gram ids in stream order are not meaningful; entries are
  /// addressed by hashed n-gram key.
  std::vector<Key> keys;
  std::vector<int32_t> occurrences;       // hits per n-gram in the reference
  std::vector<Key> read_stream;           // one probed n-gram per read
  int64_t total_candidate_alignments = 0; // sum over reads of occurrences
};

/// Builds the reference, indexes its n-grams and samples the read stream
/// (reads are drawn from the reference with noise, so their n-grams follow
/// the reference's skewed n-gram distribution).
NgramIndex GenerateCloudBurst(const CloudBurstConfig& config);

/// Loads the n-gram index into a parallel store (value = the location list,
/// UDF = approximate matching against all candidate locations) and splits
/// the read stream across compute nodes.
GeneratedWorkload ToCloudBurstWorkload(const NgramIndex& index,
                                       const NodeLayout& layout);

}  // namespace joinopt

#endif  // JOINOPT_WORKLOAD_CLOUDBURST_H_
