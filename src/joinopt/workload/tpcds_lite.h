// TPC-DS-lite: a scaled-down star-schema generator for the multi-join
// experiment (Section 9.2 / Figure 7). The paper runs Q3, Q7, Q27 and Q42 at
// SF=500 on SparkSQL vs. the framework; we reproduce the *join structure* of
// those queries — store_sales joined left-deep with 2-4 dimension tables,
// with per-dimension filters — at a simulator-friendly scale.
//
// store_sales rows live with the compute nodes (the paper keeps the fact
// table in HDFS next to Spark); dimension tables are loaded into the
// parallel store, one pipeline stage per dimension.
#ifndef JOINOPT_WORKLOAD_TPCDS_LITE_H_
#define JOINOPT_WORKLOAD_TPCDS_LITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "joinopt/workload/workload.h"

namespace joinopt {

enum class TpcdsQuery { kQ3, kQ7, kQ27, kQ42 };

const char* TpcdsQueryToString(TpcdsQuery q);
std::vector<TpcdsQuery> AllTpcdsQueries();

/// One dimension join in a query plan (left-deep order).
struct TpcdsStageSpec {
  std::string dim_name;
  int64_t dim_rows;
  double dim_row_bytes;
  /// Zipf skew of the fact table's foreign keys into this dimension
  /// (popular items / common demographics).
  double fk_zipf;
  /// Fraction of probes surviving this dimension's filter predicate.
  double selectivity;
};

struct TpcdsQuerySpec {
  std::string name;
  double fact_row_bytes;
  std::vector<TpcdsStageSpec> stages;
};

struct TpcdsConfig {
  /// Scales all dimension cardinalities (1.0 ~ SF 5-ish lite tables).
  double scale = 1.0;
  /// store_sales rows per compute node.
  int fact_rows_per_node = 20000;
  uint64_t seed = 99;
};

/// The join plan + statistics for a query (also consumed by the Spark-style
/// shuffle-join baseline so both systems run the same logical plan).
TpcdsQuerySpec GetTpcdsQuerySpec(TpcdsQuery query, double scale);

/// Builds per-stage dimension stores and the per-compute-node fact slices.
GeneratedWorkload MakeTpcdsWorkload(TpcdsQuery query,
                                    const TpcdsConfig& config,
                                    const NodeLayout& layout);

}  // namespace joinopt

#endif  // JOINOPT_WORKLOAD_TPCDS_LITE_H_
