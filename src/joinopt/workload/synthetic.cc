#include "joinopt/workload/synthetic.h"

#include <numeric>

#include "joinopt/common/random.h"
#include "joinopt/common/units.h"

namespace joinopt {

const char* SyntheticKindToString(SyntheticKind k) {
  switch (k) {
    case SyntheticKind::kDataHeavy:
      return "DH";
    case SyntheticKind::kComputeHeavy:
      return "CH";
    case SyntheticKind::kDataComputeHeavy:
      return "DCH";
  }
  return "?";
}

SyntheticProfile SyntheticProfile::For(SyntheticKind kind) {
  switch (kind) {
    case SyntheticKind::kDataHeavy:
      // "each data fetch being about 100 KB ... heavy in disk and network
      // but not on CPU ... projects attributes, returning a small result"
      return {KiB(100), Microseconds(100), 128.0};
    case SyntheticKind::kComputeHeavy:
      // "fetches only small amounts of data but ... each computation takes
      // about 100 ms"
      return {KiB(2), Milliseconds(100), 256.0};
    case SyntheticKind::kDataComputeHeavy:
      return {KiB(100), Milliseconds(100), 256.0};
  }
  return {KiB(4), Milliseconds(1), 256.0};
}

GeneratedWorkload MakeSyntheticWorkload(const SyntheticConfig& config,
                                        const NodeLayout& layout) {
  GeneratedWorkload out;
  SyntheticProfile profile = SyntheticProfile::For(config.kind);
  out.computed_value_bytes = profile.computed_value_bytes;

  ParallelStoreConfig store_config;
  store_config.replication_factor = config.replication_factor;
  auto store = std::make_unique<ParallelStore>(
      store_config, layout.data_nodes, layout.compute_nodes);
  for (Key k = 0; k < static_cast<Key>(config.num_keys); ++k) {
    StoredItem item;
    item.size_bytes = profile.stored_value_bytes;
    item.udf_cost = profile.udf_cost;
    store->Put(k, item);
  }
  out.stores.push_back(std::move(store));

  // Keys are drawn Zipf over *ranks*; the rank -> key mapping is a
  // permutation that is re-drawn `popularity_shifts` times across the
  // stream, so "which keys are hot" changes while the skew stays constant.
  Rng rng(config.seed);
  ZipfDistribution zipf(static_cast<uint64_t>(config.num_keys),
                        config.zipf_z);
  std::vector<uint32_t> perm(static_cast<size_t>(config.num_keys));
  std::iota(perm.begin(), perm.end(), 0u);
  int current_epoch = -1;

  const int num_compute = static_cast<int>(layout.compute_nodes.size());
  const int64_t total =
      static_cast<int64_t>(config.tuples_per_node) * num_compute;
  out.inputs.resize(static_cast<size_t>(num_compute));
  for (auto& in : out.inputs) {
    in.reserve(static_cast<size_t>(config.tuples_per_node));
  }

  for (int64_t t = 0; t < total; ++t) {
    if (config.popularity_shifts > 0) {
      int epoch = static_cast<int>(t * config.popularity_shifts / total);
      if (epoch != current_epoch) {
        current_epoch = epoch;
        Rng perm_rng(config.seed ^ (0xD1B54A32D192ED03ULL *
                                    static_cast<uint64_t>(epoch + 1)));
        Shuffle(perm, perm_rng);
      }
    }
    uint64_t rank = zipf.Sample(rng);
    InputTuple tuple;
    tuple.keys = {static_cast<Key>(perm[rank])};
    tuple.param_bytes = 128.0;
    out.inputs[static_cast<size_t>(t % num_compute)].push_back(
        std::move(tuple));
  }
  return out;
}

}  // namespace joinopt
