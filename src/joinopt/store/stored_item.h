// The unit stored in the parallel data store. Payloads are optional: the
// simulator's workloads describe items by logical size and per-key UDF cost
// (what the cost formulas consume), while the storage engine also supports
// real byte payloads for library use outside the simulator.
#ifndef JOINOPT_STORE_STORED_ITEM_H_
#define JOINOPT_STORE_STORED_ITEM_H_

#include <cstdint>
#include <string>

#include "joinopt/common/hash.h"

namespace joinopt {

struct StoredItem {
  /// Logical size in bytes (drives disk and network costs). When a payload
  /// is present this should equal payload.size().
  double size_bytes = 0.0;
  /// CPU seconds one UDF invocation on this item costs (per-key UDF cost
  /// variance is a first-class skew source in the paper — e.g. expensive
  /// classification models).
  double udf_cost = 0.0;
  /// Monotonically increasing version; bumped on every update
  /// (Section 4.2.3's update timestamps).
  uint64_t version = 1;
  /// Optional real payload.
  std::string payload;
};

}  // namespace joinopt

#endif  // JOINOPT_STORE_STORED_ITEM_H_
