// Log-structured key-value store: the storage engine behind the real
// (non-simulated) data service. Writes append to fixed-size segments; a
// hash index maps keys to their latest record; deletes write tombstones;
// compaction rewrites live records out of garbage-heavy segments.
//
// This is the classic bitcask/LSM-lite design: O(1) indexed point reads
// (what the paper's framework requires of its data store) with sequential
// write amplification controlled by the compaction trigger.
#ifndef JOINOPT_STORE_LOG_STORE_H_
#define JOINOPT_STORE_LOG_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "joinopt/common/hash.h"
#include "joinopt/common/status.h"

namespace joinopt {

struct LogStoreConfig {
  /// Segment capacity in bytes; a full segment is sealed and a new one
  /// opened.
  size_t segment_bytes = 4 * 1024 * 1024;
  /// Compact a sealed segment once this fraction of its bytes is garbage
  /// (overwritten or deleted records).
  double compaction_garbage_ratio = 0.5;
  /// Run compaction automatically inside Put/Delete when triggered.
  bool auto_compact = true;
};

struct LogStoreStats {
  int64_t puts = 0;
  int64_t gets = 0;
  int64_t deletes = 0;
  int64_t compactions = 0;
  int64_t records_rewritten = 0;
  size_t live_keys = 0;
  size_t segments = 0;
  size_t live_bytes = 0;
  size_t total_bytes = 0;  // live + garbage
};

class LogStructuredStore {
 public:
  explicit LogStructuredStore(const LogStoreConfig& config = {});

  /// Inserts or overwrites; returns the record's version (monotonic per
  /// key).
  uint64_t Put(Key key, std::string value);

  /// Put whose version is at least `min_version`: the new version is
  /// max(current + 1, min_version). Replication and anti-entropy use this
  /// to align a replica's per-key counter with the copy it is applying, so
  /// "highest version" stays equivalent to "observed the most writes"
  /// across replicas — the invariant version-aware merges depend on.
  uint64_t PutWithFloor(Key key, std::string value, uint64_t min_version);

  /// Point lookup via the hash index.
  StatusOr<std::string> Get(Key key) const;
  /// Latest version of a key (0 if absent).
  uint64_t VersionOf(Key key) const;
  bool Contains(Key key) const;

  Status Delete(Key key);

  /// Compacts every segment whose garbage ratio exceeds the threshold.
  /// Returns the number of segments compacted.
  int CompactNow();

  /// Rebuilds the index from the log — the recovery path. Verifies that a
  /// rebuilt index matches the live one (used by tests and on "restart").
  void RecoverIndex();

  LogStoreStats stats() const;
  size_t size() const { return index_.size(); }

  /// Iterates live records.
  void ForEach(
      const std::function<void(Key, const std::string&)>& fn) const;

 private:
  struct Record {
    Key key;
    uint64_t version;
    bool tombstone;
    std::string value;
    size_t bytes() const { return value.size() + 24; }
  };
  struct Segment {
    std::vector<Record> records;
    size_t bytes = 0;
    size_t garbage_bytes = 0;
    bool sealed = false;
    /// Allocation order, re-stamped on every reuse. Physical position in
    /// `segments_` stops being chronological once slots are recycled, and
    /// RecoverIndex must replay the log in WRITE order (per-key versions
    /// restart after a delete, so replay cannot lean on versions alone).
    uint64_t seq = 0;
  };
  struct IndexEntry {
    size_t segment;
    size_t offset;  // record index within the segment
    uint64_t version;
  };

  Segment& ActiveSegment();
  /// Slot for a fresh active segment: reuses an emptied one (keeping its
  /// vector capacity warm) before growing `segments_`.
  size_t AllocateSegment();
  void Append(Record record);
  void MarkGarbage(const IndexEntry& entry);
  void MaybeCompact();
  void CompactSegment(size_t seg_index);

  LogStoreConfig config_;
  std::vector<std::unique_ptr<Segment>> segments_;
  /// Index of the segment currently taking appends. NOT always the last:
  /// compaction returns emptied segments to `free_slots_` and the next
  /// roll-over reuses one. Without reuse every ~segment_bytes of write
  /// traffic left a drained husk in `segments_` whose record vector kept
  /// its capacity — memory growing with bytes EVER written instead of
  /// bytes live, which is a leak under sustained overwrite load.
  size_t active_ = 0;
  std::vector<size_t> free_slots_;
  uint64_t next_seq_ = 0;
  std::unordered_map<Key, IndexEntry> index_;
  LogStoreStats stats_;  // gets tracked separately (concurrent readers)
  /// Atomic so concurrent readers can count lookups without a data race;
  /// the log itself is only safe for concurrent reads (single writer).
  mutable std::atomic<int64_t> gets_{0};
};

}  // namespace joinopt

#endif  // JOINOPT_STORE_LOG_STORE_H_
