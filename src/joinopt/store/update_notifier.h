// Update notification plumbing (Section 4.2.3). The data store keeps, per
// item, the set of compute nodes that fetched and cached it; an update
// notifies exactly those nodes (targeted mode) or everyone (broadcast mode,
// the paper's rejected-but-discussed alternative, kept for the ablation).
#ifndef JOINOPT_STORE_UPDATE_NOTIFIER_H_
#define JOINOPT_STORE_UPDATE_NOTIFIER_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "joinopt/common/hash.h"

namespace joinopt {

enum class NotifyMode { kTargeted, kBroadcast };

class UpdateNotifier {
 public:
  UpdateNotifier(NotifyMode mode, std::vector<NodeId> all_compute_nodes)
      : mode_(mode), all_compute_nodes_(std::move(all_compute_nodes)) {}

  /// Records that `compute_node` fetched (and may cache) `key`.
  void RegisterFetch(Key key, NodeId compute_node) {
    if (mode_ == NotifyMode::kTargeted) {
      cached_at_[key].insert(compute_node);
    }
  }

  /// The item behind `key` was updated: returns the compute nodes to
  /// notify, and clears the registration (they must re-fetch to re-cache).
  std::vector<NodeId> OnUpdate(Key key) {
    if (mode_ == NotifyMode::kBroadcast) return all_compute_nodes_;
    auto it = cached_at_.find(key);
    if (it == cached_at_.end()) return {};
    std::vector<NodeId> out(it->second.begin(), it->second.end());
    cached_at_.erase(it);
    return out;
  }

  /// A compute node dropped the key from its cache (eviction): stop
  /// notifying it.
  void Unregister(Key key, NodeId compute_node) {
    auto it = cached_at_.find(key);
    if (it == cached_at_.end()) return;
    it->second.erase(compute_node);
    if (it->second.empty()) cached_at_.erase(it);
  }

  NotifyMode mode() const { return mode_; }
  size_t tracked_keys() const { return cached_at_.size(); }

 private:
  NotifyMode mode_;
  std::vector<NodeId> all_compute_nodes_;
  std::unordered_map<Key, std::set<NodeId>> cached_at_;
};

}  // namespace joinopt

#endif  // JOINOPT_STORE_UPDATE_NOTIFIER_H_
