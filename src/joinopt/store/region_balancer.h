// The data store's long-term load balancer (Section 5: "Data storage
// systems can perform data migration to deal with load imbalances across
// data nodes, but since data migration is usually expensive, this would be
// done for long-term load imbalances" — HBase's balancer). Given observed
// per-region load, it proposes region moves that shrink the spread between
// the most- and least-loaded data nodes, subject to a minimum-improvement
// bar so migrations only happen for persistent imbalance.
#ifndef JOINOPT_STORE_REGION_BALANCER_H_
#define JOINOPT_STORE_REGION_BALANCER_H_

#include <vector>

#include "joinopt/store/region_map.h"

namespace joinopt {

struct RegionMove {
  int region;
  NodeId from;
  NodeId to;
};

struct RegionBalancerConfig {
  /// Keep proposing moves while max node load exceeds the mean by this
  /// factor.
  double imbalance_threshold = 1.2;
  /// Never propose a move that improves the max-min spread by less than
  /// this fraction of the mean (migration cost bar).
  double min_improvement = 0.05;
  /// Safety cap on moves per balancing round.
  int max_moves = 16;
};

/// Proposes (and optionally applies) region moves for the given observed
/// per-region loads (indexed by region id; any non-negative load metric —
/// requests, bytes, CPU seconds).
class RegionBalancer {
 public:
  explicit RegionBalancer(const RegionBalancerConfig& config = {})
      : config_(config) {}

  /// Computes the moves without touching the map.
  std::vector<RegionMove> PlanMoves(const RegionMap& regions,
                                    const std::vector<double>& region_load) const;

  /// Plans and applies; returns the applied moves.
  std::vector<RegionMove> Rebalance(RegionMap& regions,
                                    const std::vector<double>& region_load) const;

  /// Max-over-mean node load for the given assignment (1.0 = balanced).
  static double Imbalance(const RegionMap& regions,
                          const std::vector<double>& region_load);

 private:
  RegionBalancerConfig config_;
};

}  // namespace joinopt

#endif  // JOINOPT_STORE_REGION_BALANCER_H_
