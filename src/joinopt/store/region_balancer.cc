#include "joinopt/store/region_balancer.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace joinopt {

namespace {

std::map<NodeId, double> NodeLoads(const RegionMap& regions,
                                   const std::vector<double>& region_load) {
  std::map<NodeId, double> loads;
  for (NodeId n : regions.data_nodes()) loads[n] = 0.0;
  for (int r = 0; r < regions.num_regions(); ++r) {
    double load = static_cast<size_t>(r) < region_load.size()
                      ? region_load[static_cast<size_t>(r)]
                      : 0.0;
    loads[regions.RegionOwner(r)] += load;
  }
  return loads;
}

}  // namespace

double RegionBalancer::Imbalance(const RegionMap& regions,
                                 const std::vector<double>& region_load) {
  auto loads = NodeLoads(regions, region_load);
  double total = 0.0, max_load = 0.0;
  for (const auto& [n, l] : loads) {
    total += l;
    max_load = std::max(max_load, l);
  }
  double mean = total / static_cast<double>(loads.size());
  return mean > 0 ? max_load / mean : 1.0;
}

std::vector<RegionMove> RegionBalancer::PlanMoves(
    const RegionMap& regions, const std::vector<double>& region_load) const {
  // Work on a scratch copy so planning has no side effects.
  RegionMap scratch = regions;
  std::vector<RegionMove> moves;
  auto loads = NodeLoads(scratch, region_load);
  double total = 0.0;
  for (const auto& [n, l] : loads) total += l;
  double mean = total / static_cast<double>(loads.size());
  if (mean <= 0) return moves;

  for (int iteration = 0; iteration < config_.max_moves; ++iteration) {
    // Identify the most and least loaded nodes.
    NodeId hot = loads.begin()->first, cold = loads.begin()->first;
    for (const auto& [n, l] : loads) {
      if (l > loads[hot]) hot = n;
      if (l < loads[cold]) cold = n;
    }
    if (loads[hot] <= config_.imbalance_threshold * mean) break;

    // Best region to move: transferring load l changes the hot-cold gap to
    // |gap - 2l|, so the region with load closest to gap/2 equalizes the
    // pair best (moving more than the gap would just swap the imbalance).
    double gap = loads[hot] - loads[cold];
    int best_region = -1;
    double best_load = 0.0;
    double best_distance = gap;
    for (int r : scratch.RegionsOf(hot)) {
      double l = static_cast<size_t>(r) < region_load.size()
                     ? region_load[static_cast<size_t>(r)]
                     : 0.0;
      if (l <= 0 || l >= gap) continue;
      double distance = std::abs(gap / 2.0 - l);
      if (distance < best_distance) {
        best_distance = distance;
        best_load = l;
        best_region = r;
      }
    }
    if (best_region < 0 || best_load < config_.min_improvement * mean) break;

    moves.push_back(RegionMove{best_region, hot, cold});
    (void)scratch.MoveRegion(best_region, cold);
    loads[hot] -= best_load;
    loads[cold] += best_load;
  }
  return moves;
}

std::vector<RegionMove> RegionBalancer::Rebalance(
    RegionMap& regions, const std::vector<double>& region_load) const {
  std::vector<RegionMove> moves = PlanMoves(regions, region_load);
  for (const RegionMove& move : moves) {
    (void)regions.MoveRegion(move.region, move.to);
  }
  return moves;
}

}  // namespace joinopt
