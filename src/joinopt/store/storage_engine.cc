#include "joinopt/store/storage_engine.h"

#include <algorithm>
#include <utility>

namespace joinopt {

void StorageEngine::Put(Key key, StoredItem item) {
  ++puts_;
  auto it = items_.find(key);
  if (it != items_.end()) {
    total_bytes_ -= it->second.size_bytes;
    item.version = std::max(item.version, it->second.version + 1);
    it->second = std::move(item);
    total_bytes_ += it->second.size_bytes;
  } else {
    total_bytes_ += item.size_bytes;
    items_.emplace(key, std::move(item));
  }
}

StatusOr<StoredItem> StorageEngine::Get(Key key) const {
  ++gets_;
  auto it = items_.find(key);
  if (it == items_.end()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  return it->second;
}

const StoredItem* StorageEngine::Find(Key key) const {
  ++gets_;
  auto it = items_.find(key);
  return it == items_.end() ? nullptr : &it->second;
}

StatusOr<uint64_t> StorageEngine::Update(
    Key key, std::function<void(StoredItem&)> mutator) {
  auto it = items_.find(key);
  if (it == items_.end()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  total_bytes_ -= it->second.size_bytes;
  mutator(it->second);
  ++it->second.version;
  total_bytes_ += it->second.size_bytes;
  ++puts_;
  return it->second.version;
}

Status StorageEngine::Delete(Key key) {
  auto it = items_.find(key);
  if (it == items_.end()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  total_bytes_ -= it->second.size_bytes;
  items_.erase(it);
  return Status::OK();
}

void StorageEngine::ForEach(
    const std::function<void(Key, const StoredItem&)>& fn) const {
  for (const auto& [key, item] : items_) fn(key, item);
}

}  // namespace joinopt
