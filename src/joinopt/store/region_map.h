// Region-based partitioning, HBase style: the key space is divided into
// regions by hashing, and regions are assigned to data nodes. The indirection
// (key -> region -> node) is what makes data-node rebalancing and elasticity
// possible without touching clients: moving a region re-homes all its keys.
#ifndef JOINOPT_STORE_REGION_MAP_H_
#define JOINOPT_STORE_REGION_MAP_H_

#include <cstdint>
#include <vector>

#include "joinopt/common/hash.h"
#include "joinopt/common/status.h"

namespace joinopt {

class RegionMap {
 public:
  /// Creates `num_regions` regions round-robin assigned over
  /// `data_node_ids`. More regions than nodes (the HBase norm) smooths load
  /// when regions move. With `replication_factor` > 1 every region gets
  /// that many distinct replica hosts (primary first); requests fail over
  /// to the followers when the primary is down. The factor is clamped to
  /// the node count.
  RegionMap(int num_regions, std::vector<NodeId> data_node_ids,
            int replication_factor = 1);

  /// Region owning `key` (stable hash: same key always lands in the same
  /// region across runs).
  int RegionOf(Key key) const {
    return static_cast<int>(Mix64(key) % static_cast<uint64_t>(num_regions_));
  }

  /// Primary data node currently hosting `key`.
  NodeId OwnerOf(Key key) const { return replicas_[RegionOf(key)][0]; }

  /// All replica hosts of `key`'s region, primary first.
  const std::vector<NodeId>& ReplicasOf(Key key) const {
    return replicas_[static_cast<size_t>(RegionOf(key))];
  }

  NodeId RegionOwner(int region) const { return replicas_[region][0]; }
  const std::vector<NodeId>& RegionReplicas(int region) const {
    return replicas_[static_cast<size_t>(region)];
  }

  /// Moves a region's primary to another data node (the data store's
  /// long-term balancer, Section 5's "HBase has a balancer"). If the node
  /// already hosts a follower replica, the two swap roles; otherwise the
  /// new node replaces the old primary.
  Status MoveRegion(int region, NodeId new_owner);

  /// Regions currently hosted by `node` (as primary).
  std::vector<int> RegionsOf(NodeId node) const;

  int num_regions() const { return num_regions_; }
  int replication_factor() const { return replication_factor_; }
  const std::vector<NodeId>& data_nodes() const { return data_nodes_; }

 private:
  int num_regions_;
  int replication_factor_;
  std::vector<NodeId> data_nodes_;
  /// replicas_[region] = replica hosts, primary first.
  std::vector<std::vector<NodeId>> replicas_;
};

}  // namespace joinopt

#endif  // JOINOPT_STORE_REGION_MAP_H_
