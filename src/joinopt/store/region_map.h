// Region-based partitioning, HBase style: the key space is divided into
// regions by hashing, and regions are assigned to data nodes. The indirection
// (key -> region -> node) is what makes data-node rebalancing and elasticity
// possible without touching clients: moving a region re-homes all its keys.
#ifndef JOINOPT_STORE_REGION_MAP_H_
#define JOINOPT_STORE_REGION_MAP_H_

#include <cstdint>
#include <vector>

#include "joinopt/common/hash.h"
#include "joinopt/common/status.h"

namespace joinopt {

class RegionMap {
 public:
  /// Creates `num_regions` regions round-robin assigned over
  /// `data_node_ids`. More regions than nodes (the HBase norm) smooths load
  /// when regions move.
  RegionMap(int num_regions, std::vector<NodeId> data_node_ids);

  /// Region owning `key` (stable hash: same key always lands in the same
  /// region across runs).
  int RegionOf(Key key) const {
    return static_cast<int>(Mix64(key) % static_cast<uint64_t>(num_regions_));
  }

  /// Data node currently hosting `key`.
  NodeId OwnerOf(Key key) const { return region_owner_[RegionOf(key)]; }

  NodeId RegionOwner(int region) const { return region_owner_[region]; }

  /// Moves a region to another data node (the data store's long-term
  /// balancer, Section 5's "HBase has a balancer").
  Status MoveRegion(int region, NodeId new_owner);

  /// Regions currently hosted by `node`.
  std::vector<int> RegionsOf(NodeId node) const;

  int num_regions() const { return num_regions_; }
  const std::vector<NodeId>& data_nodes() const { return data_nodes_; }

 private:
  int num_regions_;
  std::vector<NodeId> data_nodes_;
  std::vector<NodeId> region_owner_;
};

}  // namespace joinopt

#endif  // JOINOPT_STORE_REGION_MAP_H_
