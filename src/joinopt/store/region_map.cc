#include "joinopt/store/region_map.h"

#include <algorithm>
#include <cassert>

namespace joinopt {

RegionMap::RegionMap(int num_regions, std::vector<NodeId> data_node_ids)
    : num_regions_(num_regions), data_nodes_(std::move(data_node_ids)) {
  assert(num_regions > 0);
  assert(!data_nodes_.empty());
  region_owner_.resize(static_cast<size_t>(num_regions));
  for (int r = 0; r < num_regions; ++r) {
    region_owner_[r] = data_nodes_[static_cast<size_t>(r) % data_nodes_.size()];
  }
}

Status RegionMap::MoveRegion(int region, NodeId new_owner) {
  if (region < 0 || region >= num_regions_) {
    return Status::OutOfRange("region " + std::to_string(region));
  }
  if (std::find(data_nodes_.begin(), data_nodes_.end(), new_owner) ==
      data_nodes_.end()) {
    return Status::InvalidArgument("node " + std::to_string(new_owner) +
                                   " is not a data node");
  }
  region_owner_[static_cast<size_t>(region)] = new_owner;
  return Status::OK();
}

std::vector<int> RegionMap::RegionsOf(NodeId node) const {
  std::vector<int> out;
  for (int r = 0; r < num_regions_; ++r) {
    if (region_owner_[static_cast<size_t>(r)] == node) out.push_back(r);
  }
  return out;
}

}  // namespace joinopt
