#include "joinopt/store/region_map.h"

#include <algorithm>
#include <cassert>

namespace joinopt {

RegionMap::RegionMap(int num_regions, std::vector<NodeId> data_node_ids,
                     int replication_factor)
    : num_regions_(num_regions), data_nodes_(std::move(data_node_ids)) {
  assert(num_regions > 0);
  assert(!data_nodes_.empty());
  assert(replication_factor >= 1);
  replication_factor_ = std::min(replication_factor,
                                 static_cast<int>(data_nodes_.size()));
  replicas_.resize(static_cast<size_t>(num_regions));
  for (int r = 0; r < num_regions; ++r) {
    auto& hosts = replicas_[static_cast<size_t>(r)];
    hosts.reserve(static_cast<size_t>(replication_factor_));
    // Chained placement: replica k of region r lives on the node after the
    // primary, so neighbouring regions spread their replica load evenly.
    for (int k = 0; k < replication_factor_; ++k) {
      hosts.push_back(
          data_nodes_[(static_cast<size_t>(r) + static_cast<size_t>(k)) %
                      data_nodes_.size()]);
    }
  }
}

Status RegionMap::MoveRegion(int region, NodeId new_owner) {
  if (region < 0 || region >= num_regions_) {
    return Status::OutOfRange("region " + std::to_string(region));
  }
  if (std::find(data_nodes_.begin(), data_nodes_.end(), new_owner) ==
      data_nodes_.end()) {
    return Status::InvalidArgument("node " + std::to_string(new_owner) +
                                   " is not a data node");
  }
  auto& hosts = replicas_[static_cast<size_t>(region)];
  auto it = std::find(hosts.begin(), hosts.end(), new_owner);
  if (it != hosts.end()) {
    std::swap(hosts[0], *it);  // promote the existing follower
  } else {
    hosts[0] = new_owner;
  }
  return Status::OK();
}

std::vector<int> RegionMap::RegionsOf(NodeId node) const {
  std::vector<int> out;
  for (int r = 0; r < num_regions_; ++r) {
    if (replicas_[static_cast<size_t>(r)][0] == node) out.push_back(r);
  }
  return out;
}

}  // namespace joinopt
