// Local indexed key-value storage engine — the per-data-node store behind
// the ParallelStore facade. Point lookups on the primary key, versioned
// updates, and iteration for bulk operations. Disk *cost* accounting is the
// caller's job (the data node runtime charges its SimNode disk for
// item.size_bytes); the engine itself is an ordinary in-process index.
#ifndef JOINOPT_STORE_STORAGE_ENGINE_H_
#define JOINOPT_STORE_STORAGE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "joinopt/common/status.h"
#include "joinopt/store/stored_item.h"

namespace joinopt {

class StorageEngine {
 public:
  /// Inserts or replaces `key`. Replacement bumps the version past the old
  /// one (an update, in the Section 4.2.3 sense).
  void Put(Key key, StoredItem item);

  /// Point lookup.
  StatusOr<StoredItem> Get(Key key) const;
  /// Lookup without copying the payload (simulation hot path).
  const StoredItem* Find(Key key) const;

  /// Applies an in-place update (size and/or payload change), bumping the
  /// version. Returns the new version.
  StatusOr<uint64_t> Update(Key key, std::function<void(StoredItem&)> mutator);

  Status Delete(Key key);

  bool Contains(Key key) const { return items_.count(key) > 0; }
  size_t size() const { return items_.size(); }
  double total_bytes() const { return total_bytes_; }

  /// Iterates all items (bulk load verification, statistics).
  void ForEach(const std::function<void(Key, const StoredItem&)>& fn) const;

  int64_t gets() const { return gets_; }
  int64_t puts() const { return puts_; }

 private:
  std::unordered_map<Key, StoredItem> items_;
  double total_bytes_ = 0.0;
  /// Atomic so concurrent readers (the ParallelInvoker's workers) can
  /// count lookups without a data race; the item map itself is only safe
  /// for concurrent *reads* (writers need external synchronization).
  mutable std::atomic<int64_t> gets_{0};
  int64_t puts_ = 0;
};

}  // namespace joinopt

#endif  // JOINOPT_STORE_STORAGE_ENGINE_H_
