#include "joinopt/store/parallel_store.h"

#include <cassert>

namespace joinopt {

ParallelStore::ParallelStore(const ParallelStoreConfig& config,
                             std::vector<NodeId> data_node_ids,
                             std::vector<NodeId> compute_node_ids)
    : config_(config),
      data_node_ids_(data_node_ids),
      regions_(static_cast<int>(data_node_ids.size()) *
                   config.regions_per_node,
               data_node_ids, config.replication_factor),
      notifier_(config.notify_mode, std::move(compute_node_ids)) {
  for (NodeId id : data_node_ids_) {
    engines_.emplace(id, std::make_unique<StorageEngine>());
  }
}

void ParallelStore::Put(Key key, StoredItem item) {
  const std::vector<NodeId>& replicas = ReplicasOf(key);
  for (size_t i = 1; i < replicas.size(); ++i) {
    engine(replicas[i]).Put(key, item);
  }
  engine(replicas[0]).Put(key, std::move(item));
}

StatusOr<StoredItem> ParallelStore::Get(Key key) const {
  return engine(OwnerOf(key)).Get(key);
}

const StoredItem* ParallelStore::Find(Key key) const {
  return engine(OwnerOf(key)).Find(key);
}

StatusOr<ParallelStore::UpdateResult> ParallelStore::Update(
    Key key, std::function<void(StoredItem&)> mutator) {
  // All replicas apply the same mutation; since they saw identical Put /
  // Update sequences their versions stay in lockstep, so a failover read
  // observes the same version the primary would have returned.
  const std::vector<NodeId>& replicas = ReplicasOf(key);
  auto version = engine(replicas[0]).Update(key, mutator);
  if (!version.ok()) return version.status();
  for (size_t i = 1; i < replicas.size(); ++i) {
    auto follower = engine(replicas[i]).Update(key, mutator);
    if (!follower.ok()) return follower.status();
  }
  return UpdateResult{*version, notifier_.OnUpdate(key)};
}

StorageEngine& ParallelStore::engine(NodeId data_node) {
  auto it = engines_.find(data_node);
  assert(it != engines_.end() && "not a data node");
  return *it->second;
}

const StorageEngine& ParallelStore::engine(NodeId data_node) const {
  auto it = engines_.find(data_node);
  assert(it != engines_.end() && "not a data node");
  return *it->second;
}

size_t ParallelStore::total_items() const {
  size_t n = 0;
  for (const auto& [id, e] : engines_) n += e->size();
  return n;
}

double ParallelStore::total_bytes() const {
  double n = 0;
  for (const auto& [id, e] : engines_) n += e->total_bytes();
  return n;
}

}  // namespace joinopt
