#include "joinopt/store/log_store.h"

#include <algorithm>
#include <cassert>

namespace joinopt {

LogStructuredStore::LogStructuredStore(const LogStoreConfig& config)
    : config_(config) {
  segments_.push_back(std::make_unique<Segment>());
  segments_.back()->seq = ++next_seq_;
}

LogStructuredStore::Segment& LogStructuredStore::ActiveSegment() {
  Segment& active = *segments_[active_];
  if (active.bytes >= config_.segment_bytes) {
    active.sealed = true;
    active_ = AllocateSegment();
  }
  return *segments_[active_];
}

size_t LogStructuredStore::AllocateSegment() {
  if (!free_slots_.empty()) {
    size_t slot = free_slots_.back();
    free_slots_.pop_back();
    segments_[slot]->sealed = false;
    segments_[slot]->seq = ++next_seq_;
    return slot;
  }
  segments_.push_back(std::make_unique<Segment>());
  segments_.back()->seq = ++next_seq_;
  return segments_.size() - 1;
}

void LogStructuredStore::Append(Record record) {
  Key key = record.key;
  uint64_t version = record.version;
  bool tombstone = record.tombstone;
  Segment& seg = ActiveSegment();
  seg.bytes += record.bytes();
  seg.records.push_back(std::move(record));
  size_t seg_index = active_;
  size_t offset = seg.records.size() - 1;

  auto it = index_.find(key);
  if (it != index_.end()) {
    MarkGarbage(it->second);
    if (tombstone) {
      index_.erase(it);
    } else {
      it->second = IndexEntry{seg_index, offset, version};
    }
  } else if (!tombstone) {
    index_.emplace(key, IndexEntry{seg_index, offset, version});
  } else {
    // Tombstone for an absent key: immediately garbage.
    seg.garbage_bytes += seg.records.back().bytes();
  }
}

void LogStructuredStore::MarkGarbage(const IndexEntry& entry) {
  Segment& seg = *segments_[entry.segment];
  seg.garbage_bytes += seg.records[entry.offset].bytes();
}

uint64_t LogStructuredStore::Put(Key key, std::string value) {
  return PutWithFloor(key, std::move(value), 1);
}

uint64_t LogStructuredStore::PutWithFloor(Key key, std::string value,
                                          uint64_t min_version) {
  ++stats_.puts;
  auto it = index_.find(key);
  uint64_t version = it != index_.end() ? it->second.version + 1 : 1;
  if (version < min_version) version = min_version;
  Append(Record{key, version, false, std::move(value)});
  if (config_.auto_compact) MaybeCompact();
  return version;
}

StatusOr<std::string> LogStructuredStore::Get(Key key) const {
  ++gets_;
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  const Segment& seg = *segments_[it->second.segment];
  return seg.records[it->second.offset].value;
}

uint64_t LogStructuredStore::VersionOf(Key key) const {
  auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.version;
}

bool LogStructuredStore::Contains(Key key) const {
  return index_.count(key) > 0;
}

Status LogStructuredStore::Delete(Key key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  ++stats_.deletes;
  uint64_t version = it->second.version + 1;
  Append(Record{key, version, true, ""});
  if (config_.auto_compact) MaybeCompact();
  return Status::OK();
}

void LogStructuredStore::MaybeCompact() {
  for (size_t s = 0; s < segments_.size(); ++s) {  // sealed only
    if (s == active_) continue;
    const Segment& seg = *segments_[s];
    if (seg.bytes > 0 &&
        static_cast<double>(seg.garbage_bytes) /
                static_cast<double>(seg.bytes) >=
            config_.compaction_garbage_ratio) {
      CompactSegment(s);
    }
  }
}

int LogStructuredStore::CompactNow() {
  int compacted = 0;
  for (size_t s = 0; s < segments_.size(); ++s) {
    if (s == active_) continue;
    const Segment& seg = *segments_[s];
    if (seg.bytes > 0 && seg.garbage_bytes > 0 &&
        static_cast<double>(seg.garbage_bytes) /
                static_cast<double>(seg.bytes) >=
            config_.compaction_garbage_ratio) {
      CompactSegment(s);
      ++compacted;
    }
  }
  return compacted;
}

void LogStructuredStore::CompactSegment(size_t seg_index) {
  ++stats_.compactions;
  Segment& seg = *segments_[seg_index];
  // Re-append live records (those the index still points at) to the active
  // segment, then drop this one's contents.
  std::vector<Record> live;
  for (size_t off = 0; off < seg.records.size(); ++off) {
    auto it = index_.find(seg.records[off].key);
    if (it != index_.end() && it->second.segment == seg_index &&
        it->second.offset == off) {
      live.push_back(seg.records[off]);
    }
  }
  seg.records.clear();
  seg.bytes = 0;
  seg.garbage_bytes = 0;
  for (Record& record : live) {
    ++stats_.records_rewritten;
    Key key = record.key;
    uint64_t version = record.version;
    // Append without bumping the version: compaction is invisible.
    Segment& dst = ActiveSegment();
    dst.bytes += record.bytes();
    dst.records.push_back(std::move(record));
    index_[key] = IndexEntry{active_, dst.records.size() - 1, version};
  }
  // The drained segment goes back in the pool (capacity kept warm) for the
  // next roll-over instead of lingering as a dead husk.
  free_slots_.push_back(seg_index);
}

void LogStructuredStore::RecoverIndex() {
  // Replay the log in WRITE order — segments sorted by allocation seq, not
  // physical slot (slot reuse recycles early positions for late data).
  std::vector<size_t> order(segments_.size());
  for (size_t s = 0; s < order.size(); ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return segments_[a]->seq < segments_[b]->seq;
  });
  std::unordered_map<Key, IndexEntry> rebuilt;
  std::unordered_map<Key, bool> dead;
  for (size_t s : order) {
    const Segment& seg = *segments_[s];
    for (size_t off = 0; off < seg.records.size(); ++off) {
      const Record& record = seg.records[off];
      auto it = rebuilt.find(record.key);
      if (it != rebuilt.end() && it->second.version >= record.version) {
        continue;
      }
      if (record.tombstone) {
        rebuilt.erase(record.key);
        dead[record.key] = true;
        continue;
      }
      dead.erase(record.key);
      rebuilt[record.key] = IndexEntry{s, off, record.version};
    }
  }
  index_ = std::move(rebuilt);
}

LogStoreStats LogStructuredStore::stats() const {
  LogStoreStats out = stats_;
  out.gets = gets_.load(std::memory_order_relaxed);
  out.live_keys = index_.size();
  out.segments = segments_.size();
  for (const auto& [key, entry] : index_) {
    out.live_bytes += segments_[entry.segment]->records[entry.offset].bytes();
  }
  for (const auto& seg : segments_) out.total_bytes += seg->bytes;
  return out;
}

void LogStructuredStore::ForEach(
    const std::function<void(Key, const std::string&)>& fn) const {
  for (const auto& [key, entry] : index_) {
    fn(key, segments_[entry.segment]->records[entry.offset].value);
  }
}

}  // namespace joinopt
