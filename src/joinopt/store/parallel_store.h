// The parallel data store facade (HBase analogue): region-partitioned
// StorageEngines across data nodes, point access by primary key, server-side
// UDF execution (the coprocessor path the framework's compute requests use),
// and versioned updates feeding the UpdateNotifier.
//
// The facade is substrate-agnostic: it stores items and answers ownership
// questions; *cost* (disk time, network time) is charged by whichever runtime
// drives it — the simulator's DataNodeRuntime in the experiments.
#ifndef JOINOPT_STORE_PARALLEL_STORE_H_
#define JOINOPT_STORE_PARALLEL_STORE_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "joinopt/common/status.h"
#include "joinopt/store/region_map.h"
#include "joinopt/store/storage_engine.h"
#include "joinopt/store/update_notifier.h"

namespace joinopt {

struct ParallelStoreConfig {
  /// Regions per data node (HBase-style: several regions per server).
  int regions_per_node = 4;
  NotifyMode notify_mode = NotifyMode::kTargeted;
  /// Replica hosts per region (primary + followers). With a factor >= 2 a
  /// request can fail over to a follower when the primary is down — the
  /// store-side half of the fault-recovery subsystem. Writes (Put/Update)
  /// apply to every replica so failover reads stay consistent.
  int replication_factor = 1;
};

class ParallelStore {
 public:
  ParallelStore(const ParallelStoreConfig& config,
                std::vector<NodeId> data_node_ids,
                std::vector<NodeId> compute_node_ids);

  /// Primary data node owning `key`.
  NodeId OwnerOf(Key key) const { return regions_.OwnerOf(key); }

  /// All replica hosts of `key`, primary first (failover lookup order).
  const std::vector<NodeId>& ReplicasOf(Key key) const {
    return regions_.ReplicasOf(key);
  }
  int replication_factor() const { return regions_.replication_factor(); }

  /// Loads an item (bulk load path; lands on the owner's engine).
  void Put(Key key, StoredItem item);

  /// Point lookup routed to the owner's engine.
  StatusOr<StoredItem> Get(Key key) const;
  const StoredItem* Find(Key key) const;

  /// Versioned update; returns the new version and the compute nodes the
  /// notifier says must be told (Section 4.2.3).
  struct UpdateResult {
    uint64_t new_version;
    std::vector<NodeId> notify;
  };
  StatusOr<UpdateResult> Update(Key key,
                                std::function<void(StoredItem&)> mutator);

  /// Records that a compute node fetched `key` (so targeted notification
  /// knows where copies live).
  void RegisterFetch(Key key, NodeId compute_node) {
    notifier_.RegisterFetch(key, compute_node);
  }

  StorageEngine& engine(NodeId data_node);
  const StorageEngine& engine(NodeId data_node) const;
  RegionMap& regions() { return regions_; }
  const RegionMap& regions() const { return regions_; }
  UpdateNotifier& notifier() { return notifier_; }

  size_t total_items() const;
  double total_bytes() const;
  const std::vector<NodeId>& data_node_ids() const { return data_node_ids_; }

 private:
  ParallelStoreConfig config_;
  std::vector<NodeId> data_node_ids_;
  RegionMap regions_;
  UpdateNotifier notifier_;
  std::unordered_map<NodeId, std::unique_ptr<StorageEngine>> engines_;
};

}  // namespace joinopt

#endif  // JOINOPT_STORE_PARALLEL_STORE_H_
