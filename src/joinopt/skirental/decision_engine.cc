#include "joinopt/skirental/decision_engine.h"

#include <algorithm>
#include <cassert>

#include "joinopt/common/hash.h"
#include "joinopt/freq/exact_counter.h"
#include "joinopt/freq/lossy_counting.h"
#include "joinopt/freq/space_saving.h"

namespace joinopt {

const char* RouteToString(Route route) {
  switch (route) {
    case Route::kLocalMemoryHit:
      return "LocalMemoryHit";
    case Route::kLocalDiskHit:
      return "LocalDiskHit";
    case Route::kFetchCacheMemory:
      return "FetchCacheMemory";
    case Route::kFetchCacheDisk:
      return "FetchCacheDisk";
    case Route::kComputeAtData:
      return "ComputeAtData";
  }
  return "?";
}

namespace {

std::unique_ptr<BenefitPolicy> MakePolicy(EvictionKind kind) {
  switch (kind) {
    case EvictionKind::kLfuDa:
      return std::make_unique<LfuDaPolicy>();
    case EvictionKind::kLru:
      return std::make_unique<LruPolicy>();
    case EvictionKind::kLfu:
      return std::make_unique<LfuPolicy>();
  }
  return std::make_unique<LfuDaPolicy>();
}

std::unique_ptr<FrequencyCounter> MakeCounter(
    const DecisionEngineConfig& config, Arena* arena) {
  // Lossy Counting tracks at most O((1/eps) log(eps N)) keys, far fewer
  // than the key universe under the skewed streams it is built for, so its
  // reserve hint is capped at a small multiple of the bucket width instead
  // of the full expected_keys.
  size_t lossy_hint = config.expected_keys;
  if (config.counter_epsilon > 0) {
    size_t width_cap =
        static_cast<size_t>(16.0 / config.counter_epsilon) + 16;
    lossy_hint = std::min(lossy_hint, width_cap);
  }
  switch (config.counter) {
    case CounterKind::kLossyCounting:
      return std::make_unique<LossyCounting>(config.counter_epsilon,
                                             lossy_hint, arena);
    case CounterKind::kSpaceSaving:
      return std::make_unique<SpaceSaving>(config.space_saving_capacity,
                                           arena);
    case CounterKind::kExact:
      return std::make_unique<ExactCounter>(config.expected_keys, arena);
  }
  return std::make_unique<LossyCounting>(config.counter_epsilon, lossy_hint,
                                         arena);
}

}  // namespace

DecisionEngine::DecisionEngine(const DecisionEngineConfig& config)
    : config_(config),
      cost_model_(config.cost),
      policy_(MakePolicy(config.eviction)),
      cache_(std::make_unique<TieredCache>(config.cache, policy_.get())),
      counter_(MakeCounter(config, &arena_)),
      meta_(&arena_, /*seed=*/0xd6e8feb8u) {
  if (config.expected_keys > 0) {
    meta_.Reserve(std::min(config.expected_keys, config.max_key_meta));
  }
}

double DecisionEngine::BenefitWeight(Key /*key*/, NodeId data_node,
                                     double sv) const {
  double saved =
      std::max(cost_model_.TCompute(data_node) - cost_model_.TRecMem(), 1e-9);
  double size = sv > 0 ? sv : cost_model_.avg_stored_value_bytes();
  return saved / std::max(size, 1.0);
}

DecisionEngine::KeyMeta* DecisionEngine::FindMeta(Key key) {
  return meta_.Find(key);
}

DecisionEngine::KeyMeta* DecisionEngine::TouchMeta(Key key) {
  KeyMeta* meta = meta_.Find(key);
  if (meta != nullptr) return meta;
  if (meta_.size() >= config_.max_key_meta) return nullptr;
  return meta_.TryEmplace(key).first;
}

void DecisionEngine::RecordMeta(Key key, double sv, uint64_t version) {
  KeyMeta* meta = meta_.Find(key);
  if (meta != nullptr) {
    if (sv >= 0) meta->stored_value_bytes = static_cast<float>(sv);
    if (version > meta->version) meta->version = version;
    return;
  }
  if (meta_.size() >= config_.max_key_meta) return;  // fall back to averages
  meta = meta_.TryEmplace(key).first;
  meta->stored_value_bytes = static_cast<float>(sv);
  meta->version = version;
}

Decision DecisionEngine::Decide(Key key, NodeId data_node) {
  ++decide_calls_;
  if (frozen()) {
    // Non-adaptive mode: serve what the warm-up cached, rent everything
    // else; no counter/benefit/cache churn.
    CacheTier tier = cache_->Lookup(key);
    if (tier == CacheTier::kMemory) {
      ++stats_.local_memory_hits;
      return Decision{Route::kLocalMemoryHit, 0,
                      std::numeric_limits<double>::infinity()};
    }
    if (tier == CacheTier::kDisk) {
      ++stats_.local_disk_hits;
      return Decision{Route::kLocalDiskHit, 0,
                      std::numeric_limits<double>::infinity()};
    }
    ++stats_.compute_requests;
    return Decision{Route::kComputeAtData, 0,
                    std::numeric_limits<double>::infinity()};
  }

  // Algorithm 1 lines 1-2: updateBenefit(k), updateCounter(k).
  int64_t count = counter_->Observe(key);
  KeyMeta* meta = TouchMeta(key);
  double sv = meta != nullptr ? meta->stored_value_bytes : -1.0;
  double benefit = policy_->Benefit(count, BenefitWeight(key, data_node, sv));
  if (meta != nullptr) meta->last_benefit = static_cast<float>(benefit);
  cache_->UpdateBenefit(key, benefit);

  // Lines 3-9: cache hits compute locally; a disk hit may be promoted.
  CacheTier tier = cache_->Lookup(key);
  if (tier == CacheTier::kMemory) {
    ++stats_.local_memory_hits;
    return Decision{Route::kLocalMemoryHit, count,
                    std::numeric_limits<double>::infinity()};
  }
  if (tier == CacheTier::kDisk) {
    ++stats_.local_disk_hits;
    cache_->CondCacheInMemory(key, cache_->ItemSize(key), benefit,
                              /*insert=*/true);
    return Decision{Route::kLocalDiskHit, count,
                    std::numeric_limits<double>::infinity()};
  }

  // Baseline override: the miss routes by decree, not by ski-rental. The
  // counter/benefit bookkeeping above still ran, so stats stay comparable.
  if (config_.forced_route != ForcedRoute::kNone) {
    bool fetch =
        config_.forced_route == ForcedRoute::kFetch ||
        (config_.forced_route == ForcedRoute::kRandom &&
         (Mix64(key ^ (static_cast<uint64_t>(decide_calls_) *
                       0x9E3779B97F4A7C15ULL)) &
          1) != 0);
    if (fetch) {
      ++stats_.fetch_memory;
      return Decision{Route::kFetchCacheMemory, count, 0.0};
    }
    ++stats_.compute_requests;
    return Decision{Route::kComputeAtData, count, 0.0};
  }

  // Cache miss. The very first request for a key is always a compute
  // request: the compute node has no cost parameters for it yet
  // (Section 4.3).
  if (meta == nullptr || sv < 0) {
    ++stats_.first_requests;
    ++stats_.compute_requests;
    return Decision{Route::kComputeAtData, count,
                    std::numeric_limits<double>::infinity(),
                    /*first_request=*/true};
  }

  if (!config_.caching_enabled) {
    ++stats_.compute_requests;
    return Decision{Route::kComputeAtData, count,
                    std::numeric_limits<double>::infinity()};
  }

  ResolvedCosts costs = cost_model_.Resolve(data_node, sv);
  // Section 4.3's assumption check: when fetching is outright cheaper than a
  // compute request, always issue data requests (threshold 0).
  double threshold_mem =
      costs.t_fetch <= costs.t_compute
          ? 0.0
          : SkiRentalBuyThreshold(costs.t_compute, costs.t_fetch,
                                  costs.t_rec_mem);

  // Lines 11-12: not frequent enough for the memory tier -> rent.
  if (static_cast<double>(count) <= threshold_mem) {
    ++stats_.compute_requests;
    return Decision{Route::kComputeAtData, count, threshold_mem};
  }

  // Line 14: frequent enough — can the memory tier take it?
  if (cache_->CondCacheInMemory(key, sv, benefit, /*insert=*/false)) {
    ++stats_.fetch_memory;
    return Decision{Route::kFetchCacheMemory, count, threshold_mem};
  }

  // Lines 16-19: memory is contended; re-check with the disk-tier recurring
  // cost (brD >= brM, so this threshold is at least as large).
  double threshold_disk =
      costs.t_fetch <= costs.t_compute
          ? 0.0
          : SkiRentalBuyThreshold(costs.t_compute, costs.t_fetch,
                                  costs.t_rec_disk);
  if (static_cast<double>(count) <= threshold_disk) {
    ++stats_.compute_requests;
    return Decision{Route::kComputeAtData, count, threshold_disk};
  }
  ++stats_.fetch_disk;
  return Decision{Route::kFetchCacheDisk, count, threshold_disk};
}

Decision DecisionEngine::ReDecide(Key key, NodeId data_node) const {
  const double inf = std::numeric_limits<double>::infinity();
  CacheTier tier = cache_->Peek(key);
  if (tier == CacheTier::kMemory) {
    return Decision{Route::kLocalMemoryHit, counter_->EstimatedCount(key),
                    inf};
  }
  if (tier == CacheTier::kDisk) {
    return Decision{Route::kLocalDiskHit, counter_->EstimatedCount(key), inf};
  }
  if (frozen()) {
    return Decision{Route::kComputeAtData, 0, inf};
  }

  int64_t count = counter_->EstimatedCount(key);
  if (config_.forced_route != ForcedRoute::kNone) {
    // Retries of a forced-random key re-flip on the key hash alone
    // (ReDecide mutates nothing, so no call counter to mix in).
    bool fetch = config_.forced_route == ForcedRoute::kFetch ||
                 (config_.forced_route == ForcedRoute::kRandom &&
                  (Mix64(key) & 1) != 0);
    return Decision{fetch ? Route::kFetchCacheMemory : Route::kComputeAtData,
                    count, 0.0};
  }
  const KeyMeta* meta = meta_.Find(key);
  double sv = meta != nullptr
                  ? static_cast<double>(meta->stored_value_bytes)
                  : -1.0;
  if (sv < 0) {
    return Decision{Route::kComputeAtData, count, inf,
                    /*first_request=*/true};
  }
  if (!config_.caching_enabled) {
    return Decision{Route::kComputeAtData, count, inf};
  }

  ResolvedCosts costs = cost_model_.Resolve(data_node, sv);
  double threshold_mem =
      costs.t_fetch <= costs.t_compute
          ? 0.0
          : SkiRentalBuyThreshold(costs.t_compute, costs.t_fetch,
                                  costs.t_rec_mem);
  if (static_cast<double>(count) <= threshold_mem) {
    return Decision{Route::kComputeAtData, count, threshold_mem};
  }
  // Tier admission is settled when the value lands (OnValueFetched re-runs
  // the admission check and falls back to disk), so route to the memory
  // tier here without mutating admission state.
  return Decision{Route::kFetchCacheMemory, count, threshold_mem};
}

void DecisionEngine::OnValueFetched(Key key, Route route,
                                    double stored_value_bytes,
                                    uint64_t version) {
  assert(route == Route::kFetchCacheMemory ||
         route == Route::kFetchCacheDisk);
  RecordMeta(key, stored_value_bytes, version);
  cost_model_.ObserveSizes(-1, -1, -1, stored_value_bytes);
  const KeyMeta* meta = FindMeta(key);
  // Admission uses the benefit scored at decision time (the most recent
  // Decide for this key); falls back to a fresh score if the meta slot was
  // capped out.
  double benefit =
      meta != nullptr
          ? meta->last_benefit
          : policy_->Benefit(counter_->EstimatedCount(key), 1.0);
  if (route == Route::kFetchCacheMemory) {
    // Conditions may have changed between the decision and the value's
    // arrival; re-run the admission check, falling back to the disk tier.
    if (!cache_->CondCacheInMemory(key, stored_value_bytes, benefit,
                                   /*insert=*/true)) {
      cache_->InsertDisk(key, stored_value_bytes, benefit);
    }
  } else {
    cache_->InsertDisk(key, stored_value_bytes, benefit);
  }
}

void DecisionEngine::OnComputeResponse(Key key, NodeId j,
                                       double stored_value_bytes,
                                       uint64_t version,
                                       const DataNodeCostReport& report) {
  cost_model_.ObserveDataNode(j, report);
  cost_model_.ObserveSizes(-1, -1, -1, stored_value_bytes);
  KeyMeta* meta = FindMeta(key);
  // version 0 in the meta slot means "never seen a version yet" — only a
  // change between two *known* versions is an update (Section 4.2.3).
  if (meta != nullptr && meta->version > 0 && version > meta->version) {
    // The item changed between two compute requests: treat it as new so
    // frequently-updated items are not bought.
    counter_->ResetKey(key);
    cache_->Invalidate(key);
    ++stats_.update_resets;
  }
  RecordMeta(key, stored_value_bytes, version);
}

void DecisionEngine::OnUpdateNotification(Key key, uint64_t new_version) {
  KeyMeta* meta = FindMeta(key);
  if (meta != nullptr && new_version <= meta->version) return;  // stale
  if (cache_->Peek(key) != CacheTier::kNone) {
    cache_->Invalidate(key);
    ++stats_.update_invalidations;
  }
  counter_->ResetKey(key);
  ++stats_.update_resets;
  RecordMeta(key, -1.0, new_version);
}

std::vector<Key> DecisionEngine::ResyncInvalidate(
    const std::function<bool(Key)>& pred) {
  std::vector<Key> dropped = cache_->InvalidateMatching(pred);
  for (Key key : dropped) {
    // The counter reset mirrors OnUpdateNotification: a key whose update
    // history is unknown must re-earn its cache slot. The meta version is
    // left alone — we do not know the new version, only that ours may be
    // stale; the next response's piggybacked version advances it.
    counter_->ResetKey(key);
    ++stats_.update_resets;
    ++stats_.resync_invalidations;
  }
  return dropped;
}

double DecisionEngine::KnownValueSize(Key key) const {
  const KeyMeta* meta = meta_.Find(key);
  return meta == nullptr ? -1.0
                         : static_cast<double>(meta->stored_value_bytes);
}

size_t DecisionEngine::AccountedBytes() const {
  return meta_.MemoryBytes() + counter_->MemoryBytes();
}

DecisionEngineStats& operator+=(DecisionEngineStats& lhs,
                                const DecisionEngineStats& rhs) {
  lhs.local_memory_hits += rhs.local_memory_hits;
  lhs.local_disk_hits += rhs.local_disk_hits;
  lhs.fetch_memory += rhs.fetch_memory;
  lhs.fetch_disk += rhs.fetch_disk;
  lhs.compute_requests += rhs.compute_requests;
  lhs.first_requests += rhs.first_requests;
  lhs.update_resets += rhs.update_resets;
  lhs.update_invalidations += rhs.update_invalidations;
  lhs.resync_invalidations += rhs.resync_invalidations;
  return lhs;
}

}  // namespace joinopt
