// The per-compute-node decision engine: Algorithm 1 (skiRentalCaching) wired
// to the frequency counter (Section 4.3), the two-tier cache (Section 4.2.2)
// and the cost model (Section 3.2/4.3). Given an incoming key it routes the
// request to one of:
//   * local computation against a memory- or disk-cached value,
//   * a data request (fetch the stored value, cache it at the decided tier,
//     compute locally), or
//   * a compute request (ship (k, p) to the data node).
// It also implements the update-handling rules of Section 4.2.3 (version
// piggybacking, counter reset, cache invalidation).
#ifndef JOINOPT_SKIRENTAL_DECISION_ENGINE_H_
#define JOINOPT_SKIRENTAL_DECISION_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "joinopt/cache/policy.h"
#include "joinopt/cache/tiered_cache.h"
#include "joinopt/common/arena.h"
#include "joinopt/common/flat_map.h"
#include "joinopt/freq/counter.h"
#include "joinopt/skirental/cost_model.h"
#include "joinopt/skirental/ski_rental.h"

namespace joinopt {

/// Where a request should be executed / how its value should be obtained.
enum class Route {
  kLocalMemoryHit,    ///< value in mCache: compute the UDF locally
  kLocalDiskHit,      ///< value in dCache: compute locally (maybe promote)
  kFetchCacheMemory,  ///< data request; cache in memory when the value lands
  kFetchCacheDisk,    ///< data request; cache on disk when the value lands
  kComputeAtData,     ///< compute request (rent)
};

const char* RouteToString(Route route);

struct Decision {
  Route route;
  /// Estimated access count of the key after this request.
  int64_t access_count;
  /// Ski-rental buy threshold that applied (+inf when renting forever).
  double buy_threshold;
  /// True when this was forced to kComputeAtData because the key's cost
  /// parameters are still unknown (Section 4.3's first-request rule).
  /// Callers may hold same-key work until the parameters arrive instead of
  /// flooding the data node with more blind requests.
  bool first_request = false;
};

/// Which frequency counter backs the engine (ablation knob).
enum class CounterKind { kLossyCounting, kSpaceSaving, kExact };

/// Which eviction/benefit policy the caches use (ablation knob).
enum class EvictionKind { kLfuDa, kLru, kLfu };

/// Static routing override for the baseline strategies (StrategyTraits'
/// always_fetch / always_compute / random_choice, networked): the engine
/// still counts accesses and serves cache hits, but misses route by the
/// override instead of the ski-rental threshold. kRandom is the FR
/// baseline's deterministic coin flip (hashed from the key + call count).
enum class ForcedRoute { kNone, kFetch, kCompute, kRandom };

struct DecisionEngineConfig {
  CostModelConfig cost;
  TieredCacheConfig cache;
  CounterKind counter = CounterKind::kLossyCounting;
  double counter_epsilon = 1e-4;
  size_t space_saving_capacity = 1 << 16;
  EvictionKind eviction = EvictionKind::kLfuDa;
  /// Upper bound on the per-key metadata map (sv, version). Beyond this the
  /// engine falls back to global size averages for new keys.
  size_t max_key_meta = 1 << 20;
  /// Expected distinct-key count this engine will see. Pre-reserves the
  /// metadata table, the frequency counter and the cache index so warmup
  /// sees no rehash storm; 0 = grow on demand. ParallelInvoker divides its
  /// configured hint across shards before constructing engines.
  size_t expected_keys = 0;
  /// When false, the engine never buys: every miss becomes a compute
  /// request. (The LO strategy and the FD baseline run with caching off.)
  bool caching_enabled = true;
  /// Non-adaptive mode (Section 9.3.2's comparison): after this many
  /// Decide calls, ski-rental/caching decisions freeze — cache hits are
  /// still served but no new values are bought and cache contents stop
  /// changing. 0 = always adaptive.
  int64_t freeze_after_decisions = 0;
  /// Baseline-strategy override (see ForcedRoute). With kFetch the fetched
  /// value is still offered to the cache, so an FC-style run pairs this
  /// with zero cache capacity.
  ForcedRoute forced_route = ForcedRoute::kNone;
};

struct DecisionEngineStats {
  int64_t local_memory_hits = 0;
  int64_t local_disk_hits = 0;
  int64_t fetch_memory = 0;
  int64_t fetch_disk = 0;
  int64_t compute_requests = 0;
  int64_t first_requests = 0;      // forced compute: costs unknown
  int64_t update_resets = 0;       // Section 4.2.3 counter resets
  int64_t update_invalidations = 0;
  /// Keys dropped by an epoch-gap re-sync (missed-notification recovery).
  int64_t resync_invalidations = 0;
};

/// Accumulates shard-local stats into a merged view (the ParallelInvoker
/// shards the engine and merges measurements on read).
DecisionEngineStats& operator+=(DecisionEngineStats& lhs,
                                const DecisionEngineStats& rhs);

class DecisionEngine {
 public:
  explicit DecisionEngine(const DecisionEngineConfig& config = {});

  /// Routes one incoming request for `key`, owned by data node
  /// `data_node`. Updates benefit and counter state (Algorithm 1 lines 1-2)
  /// and returns the routing decision.
  Decision Decide(Key key, NodeId data_node);

  /// Re-evaluates the routing for a request whose access `Decide` already
  /// counted — used by concurrent executors that held a request while
  /// another in-flight fetch / first compute request for the same key
  /// completed. Reads counter, cache and cost state without updating any
  /// of it (no Observe, no benefit churn, no stats), so a retry does not
  /// double-count the key's frequency.
  Decision ReDecide(Key key, NodeId data_node) const;

  /// The value bought by a data request has arrived: insert it into the
  /// tier the decision chose (`route` must be one of the kFetch* routes).
  /// `stored_value_bytes` is the actual size; `version` the item's version
  /// at fetch time.
  void OnValueFetched(Key key, Route route, double stored_value_bytes,
                      uint64_t version);

  /// A compute-request response arrived from data node `j` carrying
  /// piggybacked cost parameters and the item's current version
  /// (Section 4.3 and 4.2.3).
  void OnComputeResponse(Key key, NodeId j, double stored_value_bytes,
                         uint64_t version, const DataNodeCostReport& report);

  /// Push-style update notification from the data store for `key`
  /// (Section 4.2.3's targeted notification path).
  void OnUpdateNotification(Key key, uint64_t new_version);

  /// Epoch-gap re-sync: after a disconnect, notifications for some keys
  /// may have been lost, so the version check OnUpdateNotification relies
  /// on cannot be trusted for them. Drops every cached key matching `pred`
  /// (typically "key belongs to a region whose epoch/seq advanced while
  /// offline") and resets its frequency counter. Returns the dropped keys
  /// so the caller can purge payload copies too.
  std::vector<Key> ResyncInvalidate(const std::function<bool(Key)>& pred);

  /// After a local UDF execution finished, feed its wall time back.
  void ObserveLocalCompute(double seconds) {
    cost_model_.ObserveLocalCompute(seconds);
  }
  void ObserveLocalDisk(double seconds) {
    cost_model_.ObserveLocalDisk(seconds);
  }

  CostModel& cost_model() { return cost_model_; }
  const CostModel& cost_model() const { return cost_model_; }
  TieredCache& cache() { return *cache_; }
  const TieredCache& cache() const { return *cache_; }
  FrequencyCounter& counter() { return *counter_; }
  const DecisionEngineStats& stats() const { return stats_; }
  const DecisionEngineConfig& config() const { return config_; }

  /// Known stored-value size for a key (< 0 when unknown).
  double KnownValueSize(Key key) const;

  /// Whether the non-adaptive freeze is in effect.
  bool frozen() const {
    return config_.freeze_after_decisions > 0 &&
           decide_calls_ >= config_.freeze_after_decisions;
  }

  /// Accounted bytes of per-key state (metadata table arena + counter).
  size_t AccountedBytes() const;

 private:
  /// Per-key metadata, packed to 16 bytes (24 with the key): sizes and
  /// benefit scores carry float precision — sizes are byte counts and
  /// benefit is a heuristic score, so 24 bits of mantissa is plenty —
  /// while the version, compared for exact equality against piggybacked
  /// versions, stays a full uint64 (DESIGN.md §14).
  struct KeyMeta {
    float stored_value_bytes = -1.0f;
    /// Benefit computed at the most recent Decide (reused when the fetched
    /// value lands, so admission sees the score current at decision time).
    float last_benefit = 0.0f;
    uint64_t version = 0;
  };

  /// Benefit weight: cost saved per access divided by item size, which is
  /// what the weighted LFU-DA of [Arlitt et al.] keys on.
  double BenefitWeight(Key key, NodeId data_node, double sv) const;
  KeyMeta* FindMeta(Key key);
  /// Creates the meta slot if the cap allows; may return nullptr.
  KeyMeta* TouchMeta(Key key);
  void RecordMeta(Key key, double sv, uint64_t version);

  DecisionEngineConfig config_;
  CostModel cost_model_;
  std::unique_ptr<BenefitPolicy> policy_;
  std::unique_ptr<TieredCache> cache_;
  // arena_ backs meta_ and the counter's tables; declared before them so
  // it is destroyed after them.
  Arena arena_;
  std::unique_ptr<FrequencyCounter> counter_;
  FlatMap<KeyMeta> meta_;
  DecisionEngineStats stats_;
  int64_t decide_calls_ = 0;
};

}  // namespace joinopt

#endif  // JOINOPT_SKIRENTAL_DECISION_ENGINE_H_
