// Ski-rental formulations (Section 4). Pure math, no state:
//
//  * Classic [Karlin et al. 1988]: rent at cost r per use or buy once at
//    cost b; renting for the first b/r uses and then buying is
//    2-competitive.
//  * Extended with a recurring cost br charged on every use *after* buying
//    (Section 4.2.1): keep renting while r*m <= b + br*m, i.e. buy at
//    m = b/(r - br) accesses when r > br; never buy when r <= br. The
//    competitive ratio becomes 2 - br/r.
//
// In the join-location setting: renting = a compute request (ship (k,p) to
// the data node), buying = a data request (fetch the stored value and cache
// it), and the recurring cost = executing the UDF locally on the cached
// value.
#ifndef JOINOPT_SKIRENTAL_SKI_RENTAL_H_
#define JOINOPT_SKIRENTAL_SKI_RENTAL_H_

#include <cstdint>
#include <limits>

namespace joinopt {

/// Number of accesses after which buying becomes worthwhile: b / (r - br),
/// or +infinity when renting is never beaten (r <= br) or inputs are
/// degenerate. The classic problem is the br = 0 special case.
inline double SkiRentalBuyThreshold(double rent_cost, double buy_cost,
                                    double recurring_cost = 0.0) {
  if (rent_cost <= recurring_cost || buy_cost < 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return buy_cost / (rent_cost - recurring_cost);
}

/// The online decision: buy once the observed access count reaches the
/// threshold. `accesses` is the number of accesses seen so far *including*
/// the current one.
inline bool SkiRentalShouldBuy(int64_t accesses, double rent_cost,
                               double buy_cost, double recurring_cost = 0.0) {
  double m = SkiRentalBuyThreshold(rent_cost, buy_cost, recurring_cost);
  return static_cast<double>(accesses) > m;
}

/// Worst-case competitive ratio of the extended policy: 2 - br/r
/// (Section 4.2.1); 2 for the classic problem. Returns 1 when buying never
/// happens (always renting is then optimal among the considered policies).
inline double SkiRentalCompetitiveRatio(double rent_cost,
                                        double recurring_cost = 0.0) {
  if (rent_cost <= 0.0 || recurring_cost >= rent_cost) return 1.0;
  return 2.0 - recurring_cost / rent_cost;
}

/// Total cost of the online policy if the item ends up accessed `accesses`
/// times: rent until the threshold, then buy, then pay recurring. Used by
/// the property tests to verify the competitive-ratio guarantee against the
/// offline optimum.
double SkiRentalOnlineCost(int64_t accesses, double rent_cost,
                           double buy_cost, double recurring_cost = 0.0);

/// Offline optimal cost with hindsight: min(rent always, buy at first use).
double SkiRentalOfflineCost(int64_t accesses, double rent_cost,
                            double buy_cost, double recurring_cost = 0.0);

}  // namespace joinopt

#endif  // JOINOPT_SKIRENTAL_SKI_RENTAL_H_
