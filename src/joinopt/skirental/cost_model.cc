#include "joinopt/skirental/cost_model.h"

#include <algorithm>

namespace joinopt {

CostModel::CostModel(const CostModelConfig& config)
    : config_(config),
      sk_(config.alpha),
      sp_(config.alpha),
      scv_(config.alpha),
      sv_(config.alpha),
      local_tc_(config.alpha),
      local_tdisk_(config.alpha),
      reported_tc_service_(config.alpha),
      reported_tdisk_service_(config.alpha) {}

void CostModel::ObserveSizes(double key_bytes, double param_bytes,
                             double computed_value_bytes,
                             double stored_value_bytes) {
  if (key_bytes >= 0) sk_.Observe(key_bytes);
  if (param_bytes >= 0) sp_.Observe(param_bytes);
  if (computed_value_bytes >= 0) scv_.Observe(computed_value_bytes);
  if (stored_value_bytes >= 0) sv_.Observe(stored_value_bytes);
}

void CostModel::ObserveDataNode(NodeId j, const DataNodeCostReport& report) {
  PerDataNode& pd = FindOrCreate(j);
  if (report.t_disk > 0) pd.t_disk.Observe(report.t_disk);
  if (report.t_cpu > 0) pd.t_cpu.Observe(report.t_cpu);
  if (report.t_cpu_service > 0) {
    reported_tc_service_.Observe(report.t_cpu_service);
  }
  if (report.t_disk_service > 0) {
    reported_tdisk_service_.Observe(report.t_disk_service);
  }
}

void CostModel::ObserveLocalCompute(double seconds) {
  local_tc_.Observe(seconds);
}

void CostModel::ObserveLocalDisk(double seconds) {
  local_tdisk_.Observe(seconds);
}

void CostModel::SetBandwidth(NodeId j, double bytes_per_sec) {
  FindOrCreate(j).bandwidth = bytes_per_sec;
}

const CostModel::PerDataNode* CostModel::Find(NodeId j) const {
  auto it = per_data_node_.find(j);
  return it == per_data_node_.end() ? nullptr : &it->second;
}

CostModel::PerDataNode& CostModel::FindOrCreate(NodeId j) {
  auto it = per_data_node_.find(j);
  if (it == per_data_node_.end()) {
    it = per_data_node_.emplace(j, PerDataNode(config_.alpha)).first;
  }
  return it->second;
}

double CostModel::avg_key_bytes() const {
  return sk_.ValueOr(config_.prior_key_bytes);
}
double CostModel::avg_param_bytes() const {
  return sp_.ValueOr(config_.prior_param_bytes);
}
double CostModel::avg_computed_value_bytes() const {
  return scv_.ValueOr(config_.prior_computed_value_bytes);
}
double CostModel::avg_stored_value_bytes() const {
  return sv_.ValueOr(config_.prior_stored_value_bytes);
}
double CostModel::local_compute_time() const {
  // Before any local execution, estimate from the service times the data
  // nodes report (the cluster is homogeneous), then the prior.
  return local_tc_.ValueOr(
      reported_tc_service_.ValueOr(config_.prior_compute_time));
}
double CostModel::local_disk_time() const {
  return local_tdisk_.ValueOr(
      reported_tdisk_service_.ValueOr(config_.prior_disk_time));
}
double CostModel::bandwidth(NodeId j) const {
  const PerDataNode* pd = Find(j);
  return (pd != nullptr && pd->bandwidth > 0) ? pd->bandwidth
                                              : config_.prior_bandwidth;
}
double CostModel::data_node_disk_time(NodeId j) const {
  const PerDataNode* pd = Find(j);
  return pd != nullptr ? pd->t_disk.ValueOr(config_.prior_disk_time)
                       : config_.prior_disk_time;
}
double CostModel::data_node_compute_time(NodeId j) const {
  const PerDataNode* pd = Find(j);
  return pd != nullptr ? pd->t_cpu.ValueOr(config_.prior_compute_time)
                       : config_.prior_compute_time;
}

double CostModel::TCompute(NodeId j) const {
  double net = (avg_key_bytes() + avg_param_bytes() +
                avg_computed_value_bytes()) /
               bandwidth(j);
  return std::max({data_node_disk_time(j), net, data_node_compute_time(j)});
}

double CostModel::TFetch(NodeId j, double stored_value_bytes) const {
  double sv = stored_value_bytes >= 0 ? stored_value_bytes
                                      : avg_stored_value_bytes();
  double net = (avg_key_bytes() + sv) / bandwidth(j);
  return std::max(data_node_disk_time(j), net);
}

double CostModel::TRecMem() const { return local_compute_time(); }

double CostModel::TRecDisk() const {
  return std::max(local_compute_time(), local_disk_time());
}

ResolvedCosts CostModel::Resolve(NodeId j, double stored_value_bytes) const {
  return ResolvedCosts{TCompute(j), TFetch(j, stored_value_bytes), TRecMem(),
                       TRecDisk()};
}

}  // namespace joinopt
