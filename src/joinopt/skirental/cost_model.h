// Runtime cost model (Section 3.2, Table 1 and Section 4.3). One instance
// lives at each compute node. All parameters are measured at runtime and
// exponentially smoothed; network bandwidth is measured once at setup (the
// paper's Appendix D.4) and injected via SetBandwidth.
//
// Derived request costs from compute node i to data node j:
//   tCompute = max(tDisk_j, (sk + sp + scv) / netBw_ij, tc_j)   [rent]
//   tFetch   = max(tDisk_j, (sk + sv) / netBw_ij)               [buy]
//   tRecMem  = tc_i                                             [recurring]
//   tRecDisk = max(tc_i, tDisk_i)
//
// tc_j / tDisk_j are learned from statistics the data node piggybacks on
// every response (Section 4.3: "it sends the parameters for cost computation
// back to the compute node"). A data node under load reports a higher
// effective tc_j — its per-UDF wall time includes queueing — which is what
// lets the ski-rental react to data-node saturation.
#ifndef JOINOPT_SKIRENTAL_COST_MODEL_H_
#define JOINOPT_SKIRENTAL_COST_MODEL_H_

#include <unordered_map>
#include <vector>

#include "joinopt/common/ewma.h"
#include "joinopt/common/hash.h"

namespace joinopt {

/// The Table 1 parameter vector for one (compute node, data node) pair,
/// fully resolved. Produced by CostModel::Resolve for decision making and
/// consumed by the ski-rental threshold helpers.
struct ResolvedCosts {
  double t_compute;  // rent: one compute request round
  double t_fetch;    // buy: one data request round
  double t_rec_mem;  // recurring, value cached in memory
  double t_rec_disk; // recurring, value cached in the disk tier
};

struct CostModelConfig {
  /// Smoothing factor for all EWMAs (Section 3.2's alpha).
  double alpha = 0.2;
  /// Priors used before the first measurement arrives.
  double prior_key_bytes = 16.0;
  double prior_param_bytes = 256.0;
  double prior_computed_value_bytes = 256.0;
  double prior_stored_value_bytes = 4096.0;
  double prior_disk_time = 1e-3;
  double prior_compute_time = 1e-3;
  double prior_bandwidth = 125e6;  // 1 Gbps
};

/// Per-data-node statistics piggybacked on responses. Wall times include
/// queueing (they measure *response* behaviour and make the ski-rental react
/// to data-node load); service times exclude it (they estimate what the
/// same work would cost on an idle, homogeneous machine — the compute
/// node's bootstrap estimate for its own recurring cost before it has run
/// any UDF locally).
struct DataNodeCostReport {
  double t_disk = 0.0;          // per-fetch wall time at the data node
  double t_cpu = 0.0;           // per-UDF wall time at the data node
  double t_disk_service = 0.0;  // pure disk service time
  double t_cpu_service = 0.0;   // pure UDF CPU time
};

class CostModel {
 public:
  explicit CostModel(const CostModelConfig& config = {});

  // ---- Measurements --------------------------------------------------
  /// Records the sizes observed on one request/response exchange. Any
  /// negative field is skipped (not every exchange observes every size).
  void ObserveSizes(double key_bytes, double param_bytes,
                    double computed_value_bytes, double stored_value_bytes);
  /// Records a piggybacked report from data node `j`.
  void ObserveDataNode(NodeId j, const DataNodeCostReport& report);
  /// Records a locally executed UDF's wall time.
  void ObserveLocalCompute(double seconds);
  /// Records a local disk-cache fetch time.
  void ObserveLocalDisk(double seconds);
  /// Injects the setup-time bandwidth measurement for data node `j`
  /// (bytes/second).
  void SetBandwidth(NodeId j, double bytes_per_sec);

  // ---- Derived costs (Section 4.3) -------------------------------------
  /// Resolves all four costs toward data node `j` for an item whose stored
  /// value size is `sv` bytes (pass a negative value to use the global
  /// average).
  ResolvedCosts Resolve(NodeId j, double stored_value_bytes = -1.0) const;

  double TCompute(NodeId j) const;
  double TFetch(NodeId j, double stored_value_bytes = -1.0) const;
  double TRecMem() const;
  double TRecDisk() const;

  // ---- Accessors for the smoothed parameters --------------------------
  double avg_key_bytes() const;
  double avg_param_bytes() const;
  double avg_computed_value_bytes() const;
  double avg_stored_value_bytes() const;
  double local_compute_time() const;
  double local_disk_time() const;
  double bandwidth(NodeId j) const;
  double data_node_disk_time(NodeId j) const;
  double data_node_compute_time(NodeId j) const;
  const CostModelConfig& config() const { return config_; }

 private:
  struct PerDataNode {
    Ewma t_disk;
    Ewma t_cpu;
    double bandwidth = -1.0;
    PerDataNode(double alpha) : t_disk(alpha), t_cpu(alpha) {}
  };
  const PerDataNode* Find(NodeId j) const;
  PerDataNode& FindOrCreate(NodeId j);

  CostModelConfig config_;
  Ewma sk_, sp_, scv_, sv_;
  Ewma local_tc_, local_tdisk_;
  /// Cluster-wide service-time estimates from reports: the fallback for
  /// local recurring costs before any local execution happened.
  Ewma reported_tc_service_, reported_tdisk_service_;
  std::unordered_map<NodeId, PerDataNode> per_data_node_;
};

}  // namespace joinopt

#endif  // JOINOPT_SKIRENTAL_COST_MODEL_H_
