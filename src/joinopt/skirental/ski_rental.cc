#include "joinopt/skirental/ski_rental.h"

#include <algorithm>
#include <cmath>

namespace joinopt {

double SkiRentalOnlineCost(int64_t accesses, double rent_cost,
                           double buy_cost, double recurring_cost) {
  double m = SkiRentalBuyThreshold(rent_cost, buy_cost, recurring_cost);
  double a = static_cast<double>(accesses);
  if (a <= m) return a * rent_cost;  // never bought
  // Rent for floor(m) accesses, buy, then pay recurring for the rest.
  double rented = std::floor(m);
  return rented * rent_cost + buy_cost + (a - rented) * recurring_cost;
}

double SkiRentalOfflineCost(int64_t accesses, double rent_cost,
                            double buy_cost, double recurring_cost) {
  double a = static_cast<double>(accesses);
  double rent_always = a * rent_cost;
  double buy_first = buy_cost + a * recurring_cost;
  return std::min(rent_always, buy_first);
}

}  // namespace joinopt
