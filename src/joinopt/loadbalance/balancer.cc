#include "joinopt/loadbalance/balancer.h"

#include <algorithm>
#include <cmath>

namespace joinopt {

int64_t Balancer::ChooseComputedAtData(const ComputeNodeStats& cn,
                                       const DataNodeLocalStats& dn,
                                       const SizeParams& sizes, int64_t b) {
  ++stats_.batches;
  stats_.requests_seen += b;
  int64_t d = 0;
  switch (config_.minimizer) {
    case MinimizerKind::kAllAtData:
      d = b;
      break;
    case MinimizerKind::kAllAtCompute:
      d = 0;
      break;
    case MinimizerKind::kGradientDescent: {
      BatchLoadModel model =
          BuildLoadModel(cn, dn, sizes, static_cast<double>(b));
      d = static_cast<int64_t>(
          std::llround(GradientDescentMinimize(model, config_.gd)));
      break;
    }
    case MinimizerKind::kExact: {
      BatchLoadModel model =
          BuildLoadModel(cn, dn, sizes, static_cast<double>(b));
      d = static_cast<int64_t>(std::llround(ExactMinimize(model)));
      break;
    }
  }
  d = std::clamp<int64_t>(d, 0, b);
  stats_.computed_at_data += d;
  stats_.returned_to_compute += b - d;
  return d;
}

}  // namespace joinopt
