// The four load estimates of Appendix C, each affine in d (the number of
// requests from the current batch the data node computes locally):
//
//   compCPU(d)  : CPU time to drain the compute node's work if b-d come back
//   compNet(d)  : network time at the compute node
//   dataCPU(d)  : CPU time to drain the data node's UDF queue plus d
//   dataNet(d)  : network time at the data node
//
// The batch completes when the slowest of the four finishes, so the balancer
// minimizes max of the four affine functions over d in [0, b].
//
// One deliberate deviation from the paper's formula text: Appendix C
// multiplies the compute-node terms (2)-(4) by tcd; those computations run
// at the *compute* node, so we charge tcc (the compute node's measured
// per-UDF time). With a homogeneous cluster tcc ~= tcd and the two readings
// coincide. We also divide CPU work by the node's core count — the paper's
// single-scalar CPU load is the cores=1 special case.
#ifndef JOINOPT_LOADBALANCE_LOAD_MODEL_H_
#define JOINOPT_LOADBALANCE_LOAD_MODEL_H_

#include "joinopt/loadbalance/stats.h"

namespace joinopt {

/// An affine function a + c * d with evaluation helpers.
struct AffineLoad {
  double intercept = 0;
  double slope = 0;
  double At(double d) const { return intercept + slope * d; }
};

/// The four affine load components for one batch.
struct BatchLoadModel {
  AffineLoad comp_cpu;
  AffineLoad comp_net;
  AffineLoad data_cpu;
  AffineLoad data_net;
  double batch_size = 0;

  /// Estimated completion time if the data node computes d of the batch.
  double CompletionTime(double d) const;
  /// Subgradient of CompletionTime at d (slope of the active component;
  /// ties pick the steepest, which is the correct ascent direction).
  double Subgradient(double d) const;
};

/// Builds the Appendix C load model for a batch of `b` compute requests from
/// the compute node described by `cn` arriving at the data node described by
/// `dn`.
BatchLoadModel BuildLoadModel(const ComputeNodeStats& cn,
                              const DataNodeLocalStats& dn,
                              const SizeParams& sizes, double b);

}  // namespace joinopt

#endif  // JOINOPT_LOADBALANCE_LOAD_MODEL_H_
