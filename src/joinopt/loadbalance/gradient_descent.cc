#include "joinopt/loadbalance/gradient_descent.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace joinopt {

double GradientDescentMinimize(const BatchLoadModel& model,
                               const GradientDescentOptions& options) {
  const double b = model.batch_size;
  if (b <= 0) return 0.0;
  double d = std::clamp(options.start_fraction * b, 0.0, b);
  double step = options.initial_step_fraction * b;
  double best_d = d;
  double best_val = model.CompletionTime(d);
  for (int it = 0; it < options.max_iterations && step > options.tolerance * b;
       ++it) {
    double g = model.Subgradient(d);
    if (g == 0.0) break;  // flat active piece: already at a minimum plateau
    double candidate = std::clamp(d - step * (g > 0 ? 1.0 : -1.0), 0.0, b);
    double val = model.CompletionTime(candidate);
    if (val < best_val - options.tolerance) {
      best_val = val;
      best_d = candidate;
      d = candidate;
    } else {
      step *= 0.5;  // overshot the kink; shrink
    }
  }
  return best_d;
}

double ExactMinimize(const BatchLoadModel& model) {
  const double b = model.batch_size;
  if (b <= 0) return 0.0;
  std::array<const AffineLoad*, 4> fs = {&model.comp_cpu, &model.comp_net,
                                         &model.data_cpu, &model.data_net};
  double best_d = 0.0;
  double best_val = model.CompletionTime(0.0);
  auto consider = [&](double d) {
    d = std::clamp(d, 0.0, b);
    double v = model.CompletionTime(d);
    if (v < best_val) {
      best_val = v;
      best_d = d;
    }
  };
  consider(b);
  for (size_t i = 0; i < fs.size(); ++i) {
    for (size_t j = i + 1; j < fs.size(); ++j) {
      double ds = fs[i]->slope - fs[j]->slope;
      if (std::abs(ds) < 1e-15) continue;  // parallel
      consider((fs[j]->intercept - fs[i]->intercept) / ds);
    }
  }
  return best_d;
}

}  // namespace joinopt
