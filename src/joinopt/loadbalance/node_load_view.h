// NodeLoadView: one live, shared view of per-node load (DESIGN.md §15).
//
// Before this existed the system had two disjoint load signals: the
// cluster client's read balancing counted outstanding requests per node
// (instantaneous, but blind to *how slow* a node is), while the engine's
// cost model tracked smoothed per-node tCompute/tFetch estimates
// (latency-aware, but invisible to the recovery/balancing path). This
// class merges both — plus directly observed request latencies — into one
// scalar per node:
//
//     LoadScore(j) = (outstanding_j + 1) * expected_seconds_j
//
// where expected_seconds_j is the EWMA of observed request latencies
// against j, falling back to the cost model's (tCompute + tFetch)/2
// estimate before any latency has been observed, and to a uniform prior
// before either exists. The score is the expected time for a new request
// to drain node j's queue — the quantity power-of-two-choices should
// minimize.
//
// PickTwoChoices implements exactly that: sample two distinct candidates
// (deterministically seeded, lock-free draw), send the request to the one
// with the lower score. Two choices is the classical sweet spot — it turns
// the max-load gap from Θ(log n / log log n) to Θ(log log n) while probing
// only two nodes, and unlike "least loaded of all" it does not herd every
// client onto the same momentarily-idle node between updates.
//
// Failure feedback: a transport error against a node should repel traffic
// immediately; callers report it via NoteFailure(node, penalty_seconds),
// which observes the penalty (typically the request timeout) as if it were
// a latency — the EWMA then decays it away as real successes return.
//
// Threading: all methods are thread-safe. Outstanding counts are plain
// atomics; the EWMAs sit behind one Mutex (rank lock_rank::kNodeLoadView)
// which ranks above the invoker shards because the engine pushes
// cost-model estimates while holding a shard lock.
#ifndef JOINOPT_LOADBALANCE_NODE_LOAD_VIEW_H_
#define JOINOPT_LOADBALANCE_NODE_LOAD_VIEW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "joinopt/common/ewma.h"
#include "joinopt/common/hash.h"
#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/sync.h"

namespace joinopt {

struct NodeLoadViewStats {
  int64_t picks = 0;             ///< PickTwoChoices calls
  int64_t two_choice_picks = 0;  ///< ...that actually compared two nodes
  int64_t latency_observations = 0;
  int64_t failure_penalties = 0;
};

class NodeLoadView {
 public:
  /// `num_nodes` fixes the id space [0, num_nodes); `seed` makes the
  /// two-choice sampling deterministic for tests.
  explicit NodeLoadView(int num_nodes, uint64_t seed = 0x10adb10e);

  NodeLoadView(const NodeLoadView&) = delete;
  NodeLoadView& operator=(const NodeLoadView&) = delete;

  /// Bracket every request: StartRequest before the send, FinishRequest
  /// after the response. `latency_seconds` < 0 means "no observation"
  /// (failed exchange — report that through NoteFailure instead).
  void StartRequest(NodeId node);
  void FinishRequest(NodeId node, double latency_seconds);

  /// Repels traffic from a node that just failed: the penalty (typically
  /// the request timeout) is fed to the latency EWMA.
  void NoteFailure(NodeId node, double penalty_seconds);

  /// Cost-model feed: the engine's smoothed per-node estimates (Table 1's
  /// tCompute/tFetch), used as the latency prior until real observations
  /// arrive and as a second opinion afterwards.
  void ObserveCostEstimates(NodeId node, double t_compute, double t_fetch);

  int Outstanding(NodeId node) const;
  /// Smoothed expected seconds for one request against `node` (latency
  /// EWMA, else cost-model fallback, else `prior_seconds`).
  double ExpectedSeconds(NodeId node) const;
  /// (outstanding + 1) * ExpectedSeconds — expected drain time.
  double LoadScore(NodeId node) const;

  /// Power-of-two-choices over `candidates` (node ids, non-empty): samples
  /// two distinct entries, returns the lower LoadScore (ties: fewer
  /// outstanding, then the first sampled). One candidate returns it
  /// directly.
  NodeId PickTwoChoices(const std::vector<NodeId>& candidates);

  NodeLoadViewStats stats() const;
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    std::atomic<int> outstanding{0};
    mutable Mutex mu{lock_rank::kNodeLoadView, "NodeLoadView::Node::mu"};
    Ewma latency JOINOPT_GUARDED_BY(mu){0.2};
    Ewma t_compute JOINOPT_GUARDED_BY(mu){0.2};
    Ewma t_fetch JOINOPT_GUARDED_BY(mu){0.2};
  };

  /// Uniform prior before any signal exists (1 ms — a LAN round trip plus
  /// service time; only the ordering matters and unknown nodes tie).
  static constexpr double kPriorSeconds = 1e-3;

  Node& node(NodeId id) { return *nodes_[static_cast<size_t>(id)]; }
  const Node& node(NodeId id) const {
    return *nodes_[static_cast<size_t>(id)];
  }

  std::vector<std::unique_ptr<Node>> nodes_;
  const uint64_t seed_;
  std::atomic<uint64_t> draw_{0};

  struct AtomicStats {
    std::atomic<int64_t> picks{0};
    std::atomic<int64_t> two_choice_picks{0};
    std::atomic<int64_t> latency_observations{0};
    std::atomic<int64_t> failure_penalties{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace joinopt

#endif  // JOINOPT_LOADBALANCE_NODE_LOAD_VIEW_H_
