// Statistics exchanged for compute/data-node load balancing (Section 5 and
// Appendix C). A compute node snapshots ComputeNodeStats and piggybacks it on
// every batch of compute requests it sends; the receiving data node combines
// it with its own DataNodeLocalStats to estimate both sides' CPU and network
// load as functions of d — the number of requests from the batch it chooses
// to execute locally.
//
// Naming follows the paper's Appendix C symbols (superscript c = reported by
// the compute node, d = local to the data node).
#ifndef JOINOPT_LOADBALANCE_STATS_H_
#define JOINOPT_LOADBALANCE_STATS_H_

#include "joinopt/common/hash.h"

namespace joinopt {

/// Snapshot taken at compute node i when dispatching a batch to data node j.
struct ComputeNodeStats {
  double lcc = 0;        ///< pending local computations at i
  double ndc = 0;        ///< pending data requests still to be sent from i
  double ncc = 0;        ///< pending compute requests still to be sent from i
  double ndrc = 0;       ///< pending responses to data requests sent from i
  double nrc_other = 0;  ///< pending compute requests at data nodes != j
  double rc_other = 0;   ///< ...of which expected computed there (history)
  double nrd_ij = 0;     ///< pending compute requests from i at j (previous)
  double rd_ij = 0;      ///< ...of which expected computed at j
  double tcc = 1e-3;     ///< avg per-UDF wall time at the compute node
  double net_bw = 125e6; ///< compute node effective bandwidth (bytes/s)
  int cores = 1;         ///< CPU cores at the compute node
};

/// Local state at data node j when the batch arrives.
struct DataNodeLocalStats {
  double ndc_all = 0;   ///< pending data requests at j (all compute nodes)
  double ndrd = 0;      ///< pending data-request responses to be sent from j
  double nrd_all = 0;   ///< pending compute requests at j (all compute nodes)
  double rd_all = 0;    ///< ...of which to be computed at j
  double tcd = 1e-3;    ///< avg per-UDF wall time at the data node
  double net_bw = 125e6;///< data node effective bandwidth (bytes/s)
  int cores = 1;        ///< CPU cores at the data node
};

/// Average message-component sizes (Table 1) used to convert request counts
/// into bytes on the wire.
struct SizeParams {
  double sk = 16;    ///< key bytes
  double sp = 256;   ///< parameter bytes
  double sv = 4096;  ///< stored value bytes
  double scv = 256;  ///< computed value bytes
};

}  // namespace joinopt

#endif  // JOINOPT_LOADBALANCE_STATS_H_
