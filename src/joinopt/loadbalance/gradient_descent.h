// Minimizers for the batch completion time max(compCPU, compNet, dataCPU,
// dataNet) over d in [0, b].
//
//  * GradientDescentMinimize — the paper's choice (Section 5 / Appendix C):
//    start from a point in [0, b], follow the decreasing subgradient with a
//    shrinking step, project onto the box. Cheap (a handful of evaluations
//    per batch) and, because the objective is a max of affine functions and
//    hence convex, it converges to the global minimum despite the paper's
//    caution about local minima.
//  * ExactMinimize — oracle: the minimum of a convex piecewise-linear
//    function lies at a boundary or at an intersection of two component
//    lines; enumerate all O(1) candidates. Used to validate gradient descent
//    (tests) and to measure its gap (bench/ablation_design_choices).
#ifndef JOINOPT_LOADBALANCE_GRADIENT_DESCENT_H_
#define JOINOPT_LOADBALANCE_GRADIENT_DESCENT_H_

#include "joinopt/loadbalance/load_model.h"

namespace joinopt {

struct GradientDescentOptions {
  /// Initial point as a fraction of b (the paper starts at a random point;
  /// a deterministic midpoint keeps simulations reproducible).
  double start_fraction = 0.5;
  int max_iterations = 64;
  /// Initial step as a fraction of b; halved whenever a step fails to
  /// improve the objective.
  double initial_step_fraction = 0.5;
  double tolerance = 1e-9;
};

/// Minimizes model.CompletionTime over d in [0, model.batch_size]; returns
/// the minimizing d (continuous — the balancer rounds it).
double GradientDescentMinimize(const BatchLoadModel& model,
                               const GradientDescentOptions& options = {});

/// Exact minimizer by candidate enumeration (boundaries + pairwise line
/// intersections).
double ExactMinimize(const BatchLoadModel& model);

}  // namespace joinopt

#endif  // JOINOPT_LOADBALANCE_GRADIENT_DESCENT_H_
