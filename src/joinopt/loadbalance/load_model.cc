#include "joinopt/loadbalance/load_model.h"

#include <algorithm>
#include <cassert>

namespace joinopt {

double BatchLoadModel::CompletionTime(double d) const {
  return std::max({comp_cpu.At(d), comp_net.At(d), data_cpu.At(d),
                   data_net.At(d)});
}

double BatchLoadModel::Subgradient(double d) const {
  double value = CompletionTime(d);
  double slope = 0.0;
  bool first = true;
  for (const AffineLoad* f : {&comp_cpu, &comp_net, &data_cpu, &data_net}) {
    if (f->At(d) >= value - 1e-12) {
      if (first) {
        slope = f->slope;
        first = false;
      } else {
        // Among active components take the steepest magnitude so descent
        // never stalls on a flat co-active piece.
        if (std::abs(f->slope) > std::abs(slope)) slope = f->slope;
      }
    }
  }
  return slope;
}

BatchLoadModel BuildLoadModel(const ComputeNodeStats& cn,
                              const DataNodeLocalStats& dn,
                              const SizeParams& sizes, double b) {
  assert(b >= 0);
  BatchLoadModel m;
  m.batch_size = b;
  double comp_cores = std::max(cn.cores, 1);
  double data_cores = std::max(dn.cores, 1);

  // compCPU(d) = [tcc*lcc + tcc*(nrc-rc) + tcc*(nrd_ij - rd_ij)
  //               + tcc*(b - d)] / cores_i
  {
    double fixed = cn.tcc * cn.lcc + cn.tcc * (cn.nrc_other - cn.rc_other) +
                   cn.tcc * (cn.nrd_ij - cn.rd_ij) + cn.tcc * b;
    m.comp_cpu.intercept = fixed / comp_cores;
    m.comp_cpu.slope = -cn.tcc / comp_cores;
  }

  // compNet(d) = [ndc*(sk+sv) + ncc*(sk+sp) + ndrc*sv
  //               + (nrc-rc)*sv + rc*scv + (nrd_ij-rd_ij)*sv + rd_ij*scv
  //               + d*scv + (b-d)*sv] / netBw_i
  {
    double fixed = cn.ndc * (sizes.sk + sizes.sv) +
                   cn.ncc * (sizes.sk + sizes.sp) + cn.ndrc * sizes.sv +
                   (cn.nrc_other - cn.rc_other) * sizes.sv +
                   cn.rc_other * sizes.scv +
                   (cn.nrd_ij - cn.rd_ij) * sizes.sv + cn.rd_ij * sizes.scv +
                   b * sizes.sv;
    m.comp_net.intercept = fixed / cn.net_bw;
    m.comp_net.slope = (sizes.scv - sizes.sv) / cn.net_bw;
  }

  // dataCPU(d) = [tcd*rd_all + tcd*d] / cores_j
  {
    m.data_cpu.intercept = dn.tcd * dn.rd_all / data_cores;
    m.data_cpu.slope = dn.tcd / data_cores;
  }

  // dataNet(d) = [ndc_all*(sk+sv) + ndrd*sv + nrd_all*(sk+sp)
  //               + (nrd_all - rd_all)*sv + rd_all*scv
  //               + d*scv + (b-d)*sv] / netBw_j
  {
    double fixed = dn.ndc_all * (sizes.sk + sizes.sv) + dn.ndrd * sizes.sv +
                   dn.nrd_all * (sizes.sk + sizes.sp) +
                   (dn.nrd_all - dn.rd_all) * sizes.sv +
                   dn.rd_all * sizes.scv + b * sizes.sv;
    m.data_net.intercept = fixed / dn.net_bw;
    m.data_net.slope = (sizes.scv - sizes.sv) / dn.net_bw;
  }

  return m;
}

}  // namespace joinopt
