// The data-node-side balancer (Section 5): for each arriving batch of b
// compute requests it picks d — how many the data node executes itself — and
// sends the remaining b - d back as raw values for the compute node to
// process. The decision is local to the (compute node, data node) pair, which
// is what lets the scheme scale; global balance emerges because loaded data
// nodes return more work and loaded compute nodes receive less (Section 5's
// closing observation).
#ifndef JOINOPT_LOADBALANCE_BALANCER_H_
#define JOINOPT_LOADBALANCE_BALANCER_H_

#include <cstdint>

#include "joinopt/loadbalance/gradient_descent.h"
#include "joinopt/loadbalance/load_model.h"

namespace joinopt {

enum class MinimizerKind {
  kGradientDescent,  ///< the paper's heuristic
  kExact,            ///< candidate-enumeration oracle (ablation)
  kAllAtData,        ///< d = b: no balancing (FD / CO behaviour)
  kAllAtCompute,     ///< d = 0: degenerate, for tests
};

struct BalancerConfig {
  MinimizerKind minimizer = MinimizerKind::kGradientDescent;
  GradientDescentOptions gd;
};

struct BalancerStats {
  int64_t batches = 0;
  int64_t requests_seen = 0;
  int64_t computed_at_data = 0;
  int64_t returned_to_compute = 0;
};

class Balancer {
 public:
  explicit Balancer(const BalancerConfig& config = {}) : config_(config) {}

  /// Chooses d in [0, b] for a batch of `b` compute requests.
  int64_t ChooseComputedAtData(const ComputeNodeStats& cn,
                               const DataNodeLocalStats& dn,
                               const SizeParams& sizes, int64_t b);

  const BalancerStats& stats() const { return stats_; }
  const BalancerConfig& config() const { return config_; }

 private:
  BalancerConfig config_;
  BalancerStats stats_;
};

}  // namespace joinopt

#endif  // JOINOPT_LOADBALANCE_BALANCER_H_
