#include "joinopt/loadbalance/node_load_view.h"

#include <algorithm>

namespace joinopt {

NodeLoadView::NodeLoadView(int num_nodes, uint64_t seed) : seed_(seed) {
  nodes_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>());
  }
}

void NodeLoadView::StartRequest(NodeId id) {
  node(id).outstanding.fetch_add(1, std::memory_order_relaxed);
}

void NodeLoadView::FinishRequest(NodeId id, double latency_seconds) {
  Node& n = node(id);
  n.outstanding.fetch_sub(1, std::memory_order_relaxed);
  if (latency_seconds >= 0) {
    stats_.latency_observations.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(n.mu);
    n.latency.Observe(latency_seconds);
  }
}

void NodeLoadView::NoteFailure(NodeId id, double penalty_seconds) {
  if (penalty_seconds <= 0) return;
  stats_.failure_penalties.fetch_add(1, std::memory_order_relaxed);
  Node& n = node(id);
  MutexLock lock(n.mu);
  n.latency.Observe(penalty_seconds);
}

void NodeLoadView::ObserveCostEstimates(NodeId id, double t_compute,
                                        double t_fetch) {
  Node& n = node(id);
  MutexLock lock(n.mu);
  if (t_compute >= 0) n.t_compute.Observe(t_compute);
  if (t_fetch >= 0) n.t_fetch.Observe(t_fetch);
}

int NodeLoadView::Outstanding(NodeId id) const {
  return node(id).outstanding.load(std::memory_order_relaxed);
}

double NodeLoadView::ExpectedSeconds(NodeId id) const {
  const Node& n = node(id);
  MutexLock lock(n.mu);
  if (n.latency.initialized()) return n.latency.value();
  // Cost-model fallback: the mean of the rent/buy request costs is a fair
  // proxy for "one request against this node" before any direct sample.
  if (n.t_compute.initialized() || n.t_fetch.initialized()) {
    double tc = n.t_compute.ValueOr(n.t_fetch.ValueOr(kPriorSeconds));
    double tf = n.t_fetch.ValueOr(tc);
    return 0.5 * (tc + tf);
  }
  return kPriorSeconds;
}

double NodeLoadView::LoadScore(NodeId id) const {
  return static_cast<double>(Outstanding(id) + 1) * ExpectedSeconds(id);
}

NodeId NodeLoadView::PickTwoChoices(const std::vector<NodeId>& candidates) {
  stats_.picks.fetch_add(1, std::memory_order_relaxed);
  if (candidates.size() == 1) return candidates[0];
  // Lock-free deterministic draw: each pick consumes one counter value,
  // mixed with the seed. Two distinct indices i != j.
  uint64_t r =
      Mix64(seed_ ^ Mix64(draw_.fetch_add(1, std::memory_order_relaxed)));
  size_t n = candidates.size();
  size_t i = static_cast<size_t>(r % n);
  size_t j = (i + 1 + static_cast<size_t>((r >> 32) % (n - 1))) % n;
  stats_.two_choice_picks.fetch_add(1, std::memory_order_relaxed);
  NodeId a = candidates[i];
  NodeId b = candidates[j];
  double sa = LoadScore(a);
  double sb = LoadScore(b);
  if (sa < sb) return a;
  if (sb < sa) return b;
  int oa = Outstanding(a);
  int ob = Outstanding(b);
  if (ob < oa) return b;
  return a;
}

NodeLoadViewStats NodeLoadView::stats() const {
  NodeLoadViewStats out;
  out.picks = stats_.picks.load(std::memory_order_relaxed);
  out.two_choice_picks =
      stats_.two_choice_picks.load(std::memory_order_relaxed);
  out.latency_observations =
      stats_.latency_observations.load(std::memory_order_relaxed);
  out.failure_penalties =
      stats_.failure_penalties.load(std::memory_order_relaxed);
  return out;
}

}  // namespace joinopt
