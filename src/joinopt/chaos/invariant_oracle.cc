#include "joinopt/chaos/invariant_oracle.h"

namespace joinopt {

InvariantOracle::InvariantOracle(ReadConsistency mode,
                                 size_t max_violation_samples)
    : mode_(mode), max_samples_(max_violation_samples) {}

void InvariantOracle::RecordPut(Key key, uint64_t version, uint64_t value_hash,
                                bool durable) {
  MutexLock lock(mu_);
  ++stats_.puts_recorded;
  KeyState& state = keys_[key];
  if (version > state.acked_version) {
    state.acked_version = version;
    state.acked_hash = value_hash;
  }
  if (durable) {
    ++stats_.durable_puts;
    if (version > state.durable_version) {
      state.durable_version = version;
      state.durable_hash = value_hash;
    }
  }
}

uint64_t InvariantOracle::ReadFloor(Key key) const {
  MutexLock lock(mu_);
  auto it = keys_.find(key);
  return it == keys_.end() ? 0 : it->second.durable_version;
}

void InvariantOracle::CheckRead(Key key, uint64_t floor, bool found,
                                uint64_t version, uint64_t value_hash,
                                bool value_matches_key) {
  const bool strict = mode_ != ReadConsistency::kAny;
  MutexLock lock(mu_);
  ++stats_.reads_checked;
  if (!found) {
    // kAny may land on a follower that missed the key entirely (repair
    // owed); the stricter modes promised every durable write is visible.
    if (strict && floor > 0) {
      AddViolationLocked("durable write invisible: key " +
                         std::to_string(key) + " floor v" +
                         std::to_string(floor) + " read NotFound");
    }
    return;
  }
  if (!value_matches_key) {
    AddViolationLocked("cross-key corruption: key " + std::to_string(key) +
                       " v" + std::to_string(version) +
                       " returned bytes written for another key");
    return;
  }
  if (strict && version < floor) {
    AddViolationLocked("stale read: key " + std::to_string(key) + " v" +
                       std::to_string(version) + " below durable floor v" +
                       std::to_string(floor));
    return;
  }
  auto it = keys_.find(key);
  if (it == keys_.end()) return;
  const KeyState& state = it->second;
  // Hash checks only where the oracle knows the version's bytes exactly;
  // versions it never acked (in-flight writers, repair bumps) pass.
  if (version == state.acked_version && value_hash != state.acked_hash) {
    AddViolationLocked("torn value: key " + std::to_string(key) + " v" +
                       std::to_string(version) +
                       " bytes differ from the acked write");
  } else if (version == state.durable_version &&
             version != state.acked_version &&
             value_hash != state.durable_hash) {
    AddViolationLocked("torn value: key " + std::to_string(key) + " v" +
                       std::to_string(version) +
                       " bytes differ from the durable write");
  }
}

void InvariantOracle::AddViolation(const std::string& what) {
  MutexLock lock(mu_);
  AddViolationLocked(what);
}

void InvariantOracle::AddViolationLocked(const std::string& what) {
  ++stats_.violations;
  if (samples_.size() < max_samples_) samples_.push_back(what);
}

std::vector<std::pair<Key, KeyExpectation>> InvariantOracle::DurableSnapshot()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<Key, KeyExpectation>> out;
  out.reserve(keys_.size());
  for (const auto& [key, state] : keys_) {
    if (state.durable_version == 0) continue;
    out.emplace_back(key,
                     KeyExpectation{state.durable_version, state.durable_hash});
  }
  return out;
}

OracleStats InvariantOracle::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::vector<std::string> InvariantOracle::violations() const {
  MutexLock lock(mu_);
  return samples_;
}

}  // namespace joinopt
