// InvariantOracle: the chaos soak's ground truth. Workload threads report
// every acknowledged Put and every completed read; the oracle keeps a
// bounded per-key expectation (latest acked write + latest *durable* write,
// i.e. one the cluster acked from every replica in the chain) and flags
// violations of the contracts the deployment claims to hold under faults:
//
//   * no lost acknowledged write — a fully-replicated Put's version is a
//     floor no later read (per the mode's contract) and no end-state
//     snapshot may dip below;
//   * no stale read beyond the configured ReadConsistency — kOwnerOnly and
//     kQuorumVersion reads must return version >= the key's durable floor
//     captured when the read started; kAny promises validity only;
//   * no corruption — a read returning a version the oracle has a hash for
//     must return the matching bytes, and every value must belong to the
//     key it was read from (the workload embeds the key in the value).
//
// Transport errors are availability, not correctness: callers count them
// as op errors and never report them here. The oracle deliberately stores
// O(keys) state, not O(writes) — the soak's RSS gate covers the harness
// itself, so the oracle must not grow with run length.
//
// Threading: all methods thread-safe behind one mutex at rank
// kChaosOracle=60 — below every subsystem lock, because workload threads
// call in while holding nothing and the oracle calls out to nothing.
#ifndef JOINOPT_CHAOS_INVARIANT_ORACLE_H_
#define JOINOPT_CHAOS_INVARIANT_ORACLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "joinopt/cluster/cluster_client.h"
#include "joinopt/common/hash.h"
#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/sync.h"

namespace joinopt {

struct OracleStats {
  int64_t puts_recorded = 0;
  int64_t durable_puts = 0;   ///< fully-replicated acks (the hard floor)
  int64_t reads_checked = 0;
  int64_t violations = 0;
};

/// What the oracle expects of one key at end state.
struct KeyExpectation {
  uint64_t durable_version = 0;  ///< floor: no snapshot may be older
  uint64_t durable_hash = 0;     ///< Fnv1a of the durable write's value
};

class InvariantOracle {
 public:
  explicit InvariantOracle(ReadConsistency mode,
                           size_t max_violation_samples = 16);

  /// Reports one acknowledged Put. `version` is the primary's version from
  /// the PutOutcome; `durable` is outcome.fully_replicated().
  void RecordPut(Key key, uint64_t version, uint64_t value_hash,
                 bool durable);

  /// Durable version floor to capture *before* issuing a read: the floor
  /// only grows, so it is a valid lower bound however the read interleaves
  /// with concurrent writes.
  uint64_t ReadFloor(Key key) const;

  /// Reports one completed read. `found` is false for an in-band NotFound;
  /// `value_matches_key` is the workload's key-prefix check on the bytes.
  void CheckRead(Key key, uint64_t floor, bool found, uint64_t version,
                 uint64_t value_hash, bool value_matches_key);

  /// Out-of-band violation from the runner (epoch regression, checksum
  /// divergence after settle, RSS breach...).
  void AddViolation(const std::string& what);

  /// Per-key durable expectations for the end-state sweep.
  std::vector<std::pair<Key, KeyExpectation>> DurableSnapshot() const;

  OracleStats stats() const;
  /// First max_violation_samples violation descriptions (total count in
  /// stats().violations).
  std::vector<std::string> violations() const;

 private:
  struct KeyState {
    uint64_t acked_version = 0;
    uint64_t acked_hash = 0;
    uint64_t durable_version = 0;
    uint64_t durable_hash = 0;
  };

  void AddViolationLocked(const std::string& what) JOINOPT_REQUIRES(mu_);

  const ReadConsistency mode_;
  const size_t max_samples_;

  mutable Mutex mu_{lock_rank::kChaosOracle, "InvariantOracle::mu_"};
  std::unordered_map<Key, KeyState> keys_ JOINOPT_GUARDED_BY(mu_);
  OracleStats stats_ JOINOPT_GUARDED_BY(mu_);
  std::vector<std::string> samples_ JOINOPT_GUARDED_BY(mu_);
};

}  // namespace joinopt

#endif  // JOINOPT_CHAOS_INVARIANT_ORACLE_H_
