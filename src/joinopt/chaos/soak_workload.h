// SoakWorkload: sustained zipf-skewed traffic against a live
// ClusterDeployment's client — the load the chaos schedule fires faults
// into. N closed-loop threads mix replicated Puts, consistency-checked
// Fetches and owner-split ExecuteBatches; every acked Put and every
// completed read is reported to the InvariantOracle.
//
// Write sharding: thread t writes only keys congruent to t (mod threads),
// so each key has exactly one in-flight writer. That keeps the oracle's
// byte-hash checks sound — with concurrent writers, two replicas can
// legitimately assign the same version to different values, and a read
// could not be labeled "torn" — while reads still sample the full domain,
// so read/write contention across threads is untouched.
//
// Values embed the key ("k<key>:..."), which is what lets any read — even
// of a version the oracle never acked — be checked for cross-key
// corruption.
//
// Threading: Start on construction, Stop() joins. Stats are atomics;
// ops_completed() is cheap enough for the runner's phase-rate sampling.
#ifndef JOINOPT_CHAOS_SOAK_WORKLOAD_H_
#define JOINOPT_CHAOS_SOAK_WORKLOAD_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "joinopt/chaos/invariant_oracle.h"
#include "joinopt/cluster/cluster_client.h"
#include "joinopt/common/random.h"

namespace joinopt {

struct SoakWorkloadOptions {
  int threads = 4;
  uint64_t seed = 1;
  uint64_t num_keys = 512;
  double zipf_z = 0.9;
  /// Op mix: put_fraction Puts, batch_fraction ExecuteBatches, the rest
  /// Fetches.
  double put_fraction = 0.30;
  double batch_fraction = 0.10;
  int batch_size = 4;
  size_t value_bytes = 48;
};

struct SoakWorkloadStats {
  int64_t ops = 0;          ///< completed op loop iterations
  int64_t puts = 0;         ///< acked Puts
  int64_t puts_durable = 0; ///< acked with every chain replica applied
  int64_t fetches = 0;      ///< in-band-answered Fetches (NotFound included)
  int64_t batches = 0;      ///< ExecuteBatch calls with all items answered
  int64_t op_errors = 0;    ///< transport-failed ops (availability, checked
                            ///< by the throughput gate, not the oracle)
};

class SoakWorkload {
 public:
  /// Threads start immediately. `fn` is the batch UDF, which must match
  /// the deployment's server-side registered one.
  SoakWorkload(ClusterClientService* client, InvariantOracle* oracle,
               UserFn fn, SoakWorkloadOptions options = {});
  ~SoakWorkload();

  SoakWorkload(const SoakWorkload&) = delete;
  SoakWorkload& operator=(const SoakWorkload&) = delete;

  void Stop();

  int64_t ops_completed() const {
    return stats_.ops.load(std::memory_order_relaxed);
  }
  SoakWorkloadStats stats() const;

  /// Deterministic value for (key, nonce): "k<key>:<nonce>:" padded to
  /// `bytes`. The key prefix is what CheckRead's corruption test keys on.
  static std::string MakeValue(Key key, uint64_t nonce, size_t bytes);
  /// True iff `value` carries `key`'s prefix.
  static bool ValueMatchesKey(Key key, const std::string& value);

 private:
  void WorkerLoop(int index);
  void DoPut(Key key, Rng& rng);
  void DoFetch(Key key);
  void DoBatch(Rng& rng);

  ClusterClientService* client_;
  InvariantOracle* oracle_;
  UserFn fn_;
  SoakWorkloadOptions options_;
  ZipfDistribution zipf_;

  struct AtomicStats {
    std::atomic<int64_t> ops{0};
    std::atomic<int64_t> puts{0};
    std::atomic<int64_t> puts_durable{0};
    std::atomic<int64_t> fetches{0};
    std::atomic<int64_t> batches{0};
    std::atomic<int64_t> op_errors{0};
  };
  AtomicStats stats_;

  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace joinopt

#endif  // JOINOPT_CHAOS_SOAK_WORKLOAD_H_
