// ChaosRunner: the soak harness (DESIGN.md §16). RunChaosSoak stands up a
// real multi-node ClusterDeployment on loopback — live anti-entropy on,
// controller on, Subscribe streams attached — drives it with a SoakWorkload
// for `seconds`, and replays a seeded FaultSchedule against it from a chaos
// thread: node kills paired with same-port restarts, half-open socket
// partitions (NetFaultInjector), and a controller crash window. Throughout,
// a checkpoint loop samples per-node region epochs (must never regress) and
// process RSS (must stay bounded), and the InvariantOracle checks every
// read the workload completes.
//
// Phase structure: [calibration | faults | settle]. Calibration measures
// the fault-free throughput floor before anything breaks; the fault window
// replays the schedule; settle heals every partition, restarts anything
// still dark, forces anti-entropy sweeps and then audits end state — every
// region's content checksum equal across its replica chain, and every
// durable (fully-replicated) write still present at or above its acked
// version.
//
// Determinism: the schedule is a pure function of (seed, options). Faults
// land at wall-clock offsets, so interleavings vary run to run — what is
// reproducible is the scenario, and the invariants must hold under every
// interleaving. The report carries the seed so a failing scenario can be
// replayed.
#ifndef JOINOPT_CHAOS_CHAOS_RUNNER_H_
#define JOINOPT_CHAOS_CHAOS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "joinopt/chaos/soak_workload.h"
#include "joinopt/cluster/cluster_client.h"
#include "joinopt/fault/fault_schedule.h"
#include "joinopt/net/rpc_server.h"

namespace joinopt {

struct ChaosSoakOptions {
  /// Total wall-clock run length, split into calibration / faults / settle.
  double seconds = 10.0;
  uint64_t seed = 1;

  // Cluster shape.
  int num_nodes = 4;
  int regions_per_node = 4;
  int replication_factor = 3;
  RpcBackend backend = RpcBackend::kThreadPerConnection;

  // Workload shape (see SoakWorkloadOptions).
  int workload_threads = 4;
  uint64_t num_keys = 512;
  double zipf_z = 0.9;
  double put_fraction = 0.30;
  double batch_fraction = 0.10;
  size_t value_bytes = 48;
  ReadConsistency read_consistency = ReadConsistency::kOwnerOnly;

  // Fault pacing.
  double calibration_fraction = 0.15;  ///< of `seconds`, min 1s
  double settle_fraction = 0.20;       ///< of `seconds`, min 1.5s
  double checkpoint_interval = 0.25;   ///< epoch/RSS sampling cadence
  double anti_entropy_period = 0.10;   ///< live repair sweep pause

  // Gates.
  double min_throughput_fraction = 0.5;  ///< faulted rate vs calibration
  double max_rss_growth = 0.10;          ///< fractional, calib end → run end
  /// Absolute growth under this never fails the RSS gate (small baselines
  /// make the fraction meaningless).
  int64_t rss_slack_kb = 8 * 1024;
};

struct ChaosSoakReport {
  uint64_t seed = 0;
  double seconds = 0;
  bool passed = false;
  std::vector<std::string> failures;  ///< gate-level failure descriptions

  // Faults actually injected.
  int kills = 0;
  int restarts = 0;
  int partitions = 0;
  int heals = 0;
  int controller_crashes = 0;

  // Workload + oracle.
  SoakWorkloadStats workload;
  OracleStats oracle;
  std::vector<std::string> violation_samples;

  // Throughput gate inputs.
  double calibration_ops_per_sec = 0;
  double faulted_ops_per_sec = 0;
  double throughput_ratio = 0;

  // RSS gate inputs (kilobytes, from /proc/self/status VmRSS).
  int64_t rss_baseline_kb = 0;
  int64_t rss_end_kb = 0;
  double rss_growth = 0;
  // Store accounting across all nodes at run end — the first place to
  // look when the RSS gate trips (log-structured stores grow with write
  // traffic until compaction reclaims overwritten records).
  int64_t store_live_kb = 0;
  int64_t store_total_kb = 0;
  int64_t store_compactions = 0;

  // Repair + hedging observability.
  int64_t repair_mismatches = 0;
  int64_t repair_syncs = 0;
  int64_t repair_records_shipped = 0;
  int64_t batch_hedges_sent = 0;
  int64_t batch_hedges_absorbed = 0;
  int64_t subscriber_notifications = 0;
  int64_t subscriber_resyncs = 0;
};

/// Current process RSS in kB (VmRSS from /proc/self/status), -1 when the
/// proc file is unavailable (non-Linux).
int64_t ReadVmRssKb();

/// The seeded scenario generator. Rails: only one node dark at a time,
/// every kill paired with a restart, the controller crash gets its own
/// kill-free segment, and with the default fractions the schedule always
/// contains >= 2 kills, >= 2 restarts, >= 1 half-open partition and exactly
/// 1 controller crash. `fault_window` is the schedule's time span; event
/// times are relative to the fault phase start.
FaultSchedule BuildSoakSchedule(const ChaosSoakOptions& options,
                                double fault_window, Rng& rng);

/// Runs the whole soak. Blocking; returns the filled report (passed ==
/// false lists which gates failed). Prints nothing — callers own output.
ChaosSoakReport RunChaosSoak(const ChaosSoakOptions& options);

}  // namespace joinopt

#endif  // JOINOPT_CHAOS_CHAOS_RUNNER_H_
