#include "joinopt/chaos/soak_workload.h"

#include <utility>

namespace joinopt {

SoakWorkload::SoakWorkload(ClusterClientService* client,
                           InvariantOracle* oracle, UserFn fn,
                           SoakWorkloadOptions options)
    : client_(client),
      oracle_(oracle),
      fn_(std::move(fn)),
      options_(options),
      zipf_(options_.num_keys, options_.zipf_z) {
  workers_.reserve(static_cast<size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

SoakWorkload::~SoakWorkload() { Stop(); }

void SoakWorkload::Stop() {
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::string SoakWorkload::MakeValue(Key key, uint64_t nonce, size_t bytes) {
  std::string value =
      "k" + std::to_string(key) + ":" + std::to_string(nonce) + ":";
  if (value.size() < bytes) value.resize(bytes, 'x');
  return value;
}

bool SoakWorkload::ValueMatchesKey(Key key, const std::string& value) {
  std::string prefix = "k" + std::to_string(key) + ":";
  return value.compare(0, prefix.size(), prefix) == 0;
}

void SoakWorkload::DoPut(Key key, Rng& rng) {
  std::string value = MakeValue(key, rng.Next(), options_.value_bytes);
  PutOutcome outcome;
  auto version = client_->Put(key, value, &outcome);
  if (!version.ok()) {
    stats_.op_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  if (outcome.fully_replicated()) {
    stats_.puts_durable.fetch_add(1, std::memory_order_relaxed);
  }
  oracle_->RecordPut(key, *version, Fnv1a(value),
                     outcome.fully_replicated());
}

void SoakWorkload::DoFetch(Key key) {
  uint64_t floor = oracle_->ReadFloor(key);  // before the read, not after
  auto fetched = client_->Fetch(key);
  if (fetched.ok()) {
    stats_.fetches.fetch_add(1, std::memory_order_relaxed);
    oracle_->CheckRead(key, floor, /*found=*/true, fetched->version,
                       Fnv1a(fetched->value),
                       ValueMatchesKey(key, fetched->value));
  } else if (fetched.status().IsNotFound()) {
    stats_.fetches.fetch_add(1, std::memory_order_relaxed);
    oracle_->CheckRead(key, floor, /*found=*/false, 0, 0, true);
  } else {
    stats_.op_errors.fetch_add(1, std::memory_order_relaxed);
  }
}

void SoakWorkload::DoBatch(Rng& rng) {
  std::vector<std::pair<Key, std::string>> items;
  items.reserve(static_cast<size_t>(options_.batch_size));
  for (int b = 0; b < options_.batch_size; ++b) {
    items.emplace_back(static_cast<Key>(zipf_.Sample(rng)), "soak");
  }
  auto results = client_->ExecuteBatch(items, fn_);
  int64_t failed = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) {
      // The echo UDF returns the stored value: corruption checkable, but
      // no version travels with it, so staleness is the Fetch path's job.
      if (!ValueMatchesKey(items[i].first, *results[i])) {
        oracle_->AddViolation("cross-key corruption in batch: key " +
                              std::to_string(items[i].first));
      }
    } else if (!results[i].status().IsNotFound()) {
      ++failed;
    }
  }
  if (failed == 0) {
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.op_errors.fetch_add(1, std::memory_order_relaxed);
  }
}

void SoakWorkload::WorkerLoop(int index) {
  Rng rng(options_.seed + 0x9e37 * static_cast<uint64_t>(index + 1));
  const uint64_t threads = static_cast<uint64_t>(options_.threads);
  // Write keys are sharded per thread (see file comment); the shard is
  // sampled zipf over its own rank space so skew survives the sharding.
  const uint64_t shard_keys = options_.num_keys / threads;
  while (!stop_.load(std::memory_order_acquire)) {
    double roll = rng.NextDouble();
    if (roll < options_.put_fraction && shard_keys > 0) {
      uint64_t rank = zipf_.Sample(rng) % shard_keys;
      Key key = rank * threads + static_cast<uint64_t>(index);
      DoPut(key, rng);
    } else if (roll < options_.put_fraction + options_.batch_fraction) {
      DoBatch(rng);
    } else {
      DoFetch(static_cast<Key>(zipf_.Sample(rng)));
    }
    stats_.ops.fetch_add(1, std::memory_order_relaxed);
  }
}

SoakWorkloadStats SoakWorkload::stats() const {
  SoakWorkloadStats out;
  out.ops = stats_.ops.load(std::memory_order_relaxed);
  out.puts = stats_.puts.load(std::memory_order_relaxed);
  out.puts_durable = stats_.puts_durable.load(std::memory_order_relaxed);
  out.fetches = stats_.fetches.load(std::memory_order_relaxed);
  out.batches = stats_.batches.load(std::memory_order_relaxed);
  out.op_errors = stats_.op_errors.load(std::memory_order_relaxed);
  return out;
}

}  // namespace joinopt
