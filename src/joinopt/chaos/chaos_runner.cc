#include "joinopt/chaos/chaos_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <thread>
#include <utility>

#include "joinopt/cluster/deployment.h"
#include "joinopt/cluster/subscriber.h"
#include "joinopt/engine/hedging_manager.h"
#include "joinopt/net/net_fault.h"

namespace joinopt {

namespace {

using Clock = std::chrono::steady_clock;

void SleepSeconds(double s) {
  if (s > 0) std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

}  // namespace

int64_t ReadVmRssKb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtoll(line.c_str() + 6, nullptr, 10);
    }
  }
  return -1;
}

FaultSchedule BuildSoakSchedule(const ChaosSoakOptions& options,
                                double fault_window, Rng& rng) {
  FaultSchedule schedule;
  if (fault_window <= 0.5 || options.num_nodes < 2) return schedule;

  // One kill (paired with a same-port restart) per segment, except the
  // middle segment, which hosts the controller crash — so kills never
  // overlap the detector outage, and at most one node is dark at a time
  // (a majority of every replica chain stays live throughout).
  int segments = std::max(3, static_cast<int>(fault_window / 8.0) + 1);
  double seg = fault_window / segments;
  int controller_seg = segments / 2;
  NodeId prev_victim = kInvalidNode;
  for (int s = 0; s < segments; ++s) {
    double at = s * seg + rng.Uniform(0.05, 0.25) * seg;
    double dur = std::min(0.35 * seg, 1.5);
    if (s == controller_seg) {
      schedule.CrashController(at);
      schedule.RestartController(at + dur);
    } else {
      NodeId victim =
          static_cast<NodeId>(rng.NextBounded(
              static_cast<uint64_t>(options.num_nodes)));
      if (victim == prev_victim) {
        victim = static_cast<NodeId>((victim + 1) % options.num_nodes);
      }
      schedule.CrashNode(at, victim);
      schedule.RestartNode(at + dur, victim);
      prev_victim = victim;
    }
  }

  // Half-open partitions between any two identities, the compute side
  // (id num_nodes) included: node→compute drops answers to requests that
  // still arrive — the classic half-open failure.
  int n_partitions = std::max(1, static_cast<int>(fault_window / 15.0));
  const uint64_t ids = static_cast<uint64_t>(options.num_nodes) + 1;
  for (int p = 0; p < n_partitions; ++p) {
    double hi = std::max(0.7, std::min(1.5, fault_window * 0.25));
    double dur = rng.Uniform(0.5, hi);
    double at = rng.Uniform(0.0, std::max(0.05, fault_window - dur - 0.05));
    int32_t from = static_cast<int32_t>(rng.NextBounded(ids));
    int32_t to = static_cast<int32_t>(rng.NextBounded(ids - 1));
    if (to >= from) ++to;  // distinct endpoints
    schedule.PartitionLinkOneWay(at, static_cast<NodeId>(from),
                                 static_cast<NodeId>(to));
    schedule.HealLinkOneWay(at + dur, static_cast<NodeId>(from),
                            static_cast<NodeId>(to));
  }
  return schedule;
}

ChaosSoakReport RunChaosSoak(const ChaosSoakOptions& options) {
  ChaosSoakReport report;
  report.seed = options.seed;
  report.seconds = options.seconds;
  Rng rng(options.seed);

  const double calib =
      std::max(1.0, options.seconds * options.calibration_fraction);
  const double settle =
      std::max({1.5, options.seconds * options.settle_fraction,
                4.0 * options.anti_entropy_period + 0.5});
  const double fault_window =
      std::max(1.0, options.seconds - calib - settle);

  ClusterDeploymentOptions dopts;
  dopts.topology.num_data_nodes = options.num_nodes;
  dopts.topology.regions_per_node = options.regions_per_node;
  dopts.topology.replication_factor = options.replication_factor;
  dopts.server.backend = options.backend;
  dopts.client.read_consistency = options.read_consistency;
  dopts.client.recovery.request_timeout = 0.25;
  dopts.client.recovery.max_attempts = 5;
  dopts.client.recovery.backoff_base = 5e-3;
  dopts.client.recovery.backoff_max = 60e-3;
  dopts.client.connect_deadline = 0.25;
  dopts.client.hedging = std::make_shared<HedgingManager>();
  dopts.client.hedge_idempotent_batches = true;
  dopts.start_anti_entropy = true;
  dopts.anti_entropy.period = options.anti_entropy_period;
  // Soak stores hold ~100 kB live per node; the default 4 MB segments never
  // seal at that volume, so overwrite garbage piles up in the active segment
  // all soak long and the RSS gate reads it as a leak. Small segments keep
  // the compactor cycling and the footprint tracking live data.
  dopts.store.segment_bytes = 256 * 1024;

  UserFn fn = [](Key, const std::string&, const std::string& value) {
    return value;  // echo: batch results stay corruption-checkable
  };
  ClusterDeployment dep(fn, dopts);
  Status started = dep.Start();
  if (!started.ok()) {
    report.failures.push_back("deployment failed to start: " +
                              started.message());
    return report;
  }

  InvariantOracle oracle(options.read_consistency);

  // Pre-populate every key: reads rarely miss and every key carries a
  // durable floor into the fault window.
  for (uint64_t k = 0; k < options.num_keys; ++k) {
    std::string value = SoakWorkload::MakeValue(k, 0, options.value_bytes);
    PutOutcome outcome;
    auto version = dep.client().Put(k, value, &outcome);
    if (version.ok()) {
      oracle.RecordPut(k, *version, Fnv1a(value), outcome.fully_replicated());
    }
  }

  // Live Subscribe streams: counting sinks, but the reconnect + epoch-bump
  // re-sync machinery runs for real under every restart below.
  UpdateSubscriberOptions sub_opts;
  sub_opts.net_identity = dep.compute_identity();
  std::vector<NodeId> all_nodes;
  for (int i = 0; i < options.num_nodes; ++i) {
    all_nodes.push_back(static_cast<NodeId>(i));
  }
  auto subscriber = std::make_unique<UpdateSubscriber>(
      &dep.topology(), all_nodes, [](Key, uint64_t) {},
      [](NodeId, int) -> int64_t { return 0; }, sub_opts);

  SoakWorkloadOptions wopts;
  wopts.threads = options.workload_threads;
  wopts.seed = options.seed * 0x9E3779B97F4A7C15ULL + 1;
  wopts.num_keys = options.num_keys;
  wopts.zipf_z = options.zipf_z;
  wopts.put_fraction = options.put_fraction;
  wopts.batch_fraction = options.batch_fraction;
  wopts.value_bytes = options.value_bytes;
  SoakWorkload workload(&dep.client(), &oracle, fn, wopts);

  // Checkpoint: per-node region epochs must never regress; RSS sampled for
  // the growth gate.
  std::vector<std::vector<RegionEpoch>> prev_epochs(
      static_cast<size_t>(options.num_nodes));
  auto checkpoint = [&] {
    for (int i = 0; i < options.num_nodes; ++i) {
      auto epochs = dep.data_node(i).service().EpochSnapshot();
      auto& prev = prev_epochs[static_cast<size_t>(i)];
      for (size_t r = 0; r < epochs.size() && r < prev.size(); ++r) {
        if (epochs[r].epoch < prev[r].epoch) {
          oracle.AddViolation(
              "epoch regression: node " + std::to_string(i) + " region " +
              std::to_string(r) + " " + std::to_string(prev[r].epoch) +
              " -> " + std::to_string(epochs[r].epoch));
        }
      }
      prev = std::move(epochs);
    }
  };
  auto run_phase = [&](double duration) {
    double remaining = duration;
    while (remaining > 1e-9) {
      double step = std::min(options.checkpoint_interval, remaining);
      SleepSeconds(step);
      remaining -= step;
      checkpoint();
    }
  };

  // ---- calibration: the fault-free floor ----
  int64_t ops0 = workload.ops_completed();
  run_phase(calib);
  int64_t ops1 = workload.ops_completed();
  report.calibration_ops_per_sec =
      static_cast<double>(ops1 - ops0) / calib;
  report.rss_baseline_kb = ReadVmRssKb();

  // ---- fault window: replay the seeded schedule ----
  FaultSchedule schedule = BuildSoakSchedule(options, fault_window, rng);
  std::vector<FaultEvent> events = schedule.Sorted();
  std::vector<bool> dead(static_cast<size_t>(options.num_nodes), false);
  bool controller_down = false;
  auto fault_start = Clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - fault_start).count();
  };
  size_t idx = 0;
  while (true) {
    double next = idx < events.size() ? events[idx].time : fault_window;
    double wait = next - elapsed();
    while (wait > 1e-9) {
      SleepSeconds(std::min(wait, options.checkpoint_interval));
      checkpoint();
      wait = next - elapsed();
    }
    if (idx >= events.size()) break;
    const FaultEvent& e = events[idx++];
    switch (e.kind) {
      case FaultKind::kNodeCrash:
        dep.KillDataNode(e.node);
        dead[static_cast<size_t>(e.node)] = true;
        ++report.kills;
        break;
      case FaultKind::kNodeRestart: {
        Status s = dep.RestartDataNode(e.node);
        if (s.ok()) {
          dead[static_cast<size_t>(e.node)] = false;
          ++report.restarts;
        } else {
          oracle.AddViolation("restart failed: node " +
                              std::to_string(e.node) + ": " + s.message());
        }
        break;
      }
      case FaultKind::kLinkPartitionOneWay:
        NetFaultInjector::Instance().BlockOneWay(e.node, e.peer);
        ++report.partitions;
        break;
      case FaultKind::kLinkHealOneWay:
        NetFaultInjector::Instance().HealOneWay(e.node, e.peer);
        ++report.heals;
        break;
      case FaultKind::kControllerCrash:
        dep.KillController();
        controller_down = true;
        ++report.controller_crashes;
        break;
      case FaultKind::kControllerRestart:
        dep.RestartController();
        controller_down = false;
        break;
      default:
        break;  // disk/degrade kinds have no wire equivalent
    }
  }
  int64_t ops2 = workload.ops_completed();
  report.faulted_ops_per_sec =
      static_cast<double>(ops2 - ops1) / fault_window;
  report.throughput_ratio =
      report.calibration_ops_per_sec > 0
          ? report.faulted_ops_per_sec / report.calibration_ops_per_sec
          : 0.0;

  // ---- settle: heal everything, let repair converge ----
  NetFaultInjector::Instance().HealAll();
  if (controller_down) dep.RestartController();
  for (int i = 0; i < options.num_nodes; ++i) {
    if (!dead[static_cast<size_t>(i)]) continue;
    if (dep.RestartDataNode(i).ok()) ++report.restarts;
    dead[static_cast<size_t>(i)] = false;
  }
  run_phase(settle);
  workload.Stop();
  // Quiescent now: force final sweeps so convergence doesn't hinge on
  // timer alignment (two passes — the second propagates tie-break bumps).
  if (dep.anti_entropy() != nullptr) {
    dep.anti_entropy()->SweepOnce();
    dep.anti_entropy()->SweepOnce();
  }
  report.rss_end_kb = ReadVmRssKb();
  subscriber->Stop();

  // ---- end-state audit ----
  for (int r = 0; r < dep.topology().num_regions(); ++r) {
    bool have_first = false;
    RegionSummary first;
    for (NodeId n : dep.topology().RegionReplicas(r)) {
      auto summary = dep.data_node(n).service().SummarizeRegion(r);
      if (!summary.ok()) continue;
      if (!have_first) {
        first = *summary;
        have_first = true;
        continue;
      }
      if (summary->checksum != first.checksum ||
          summary->count != first.count) {
        oracle.AddViolation("replicas diverged after settle: region " +
                            std::to_string(r) + " node " +
                            std::to_string(n));
        break;
      }
    }
  }
  for (const auto& [key, expected] : oracle.DurableSnapshot()) {
    uint64_t best_version = 0;
    uint64_t best_hash = 0;
    for (NodeId n : dep.topology().ReplicasOf(key)) {
      auto fetched = dep.data_node(n).service().Fetch(key);
      if (!fetched.ok()) continue;
      if (fetched->version >= best_version) {
        best_version = fetched->version;
        best_hash = Fnv1a(fetched->value);
      }
    }
    if (best_version < expected.durable_version) {
      oracle.AddViolation("lost acked write: key " + std::to_string(key) +
                          " durable v" +
                          std::to_string(expected.durable_version) +
                          " best surviving v" + std::to_string(best_version));
    } else if (best_version == expected.durable_version &&
               best_hash != expected.durable_hash) {
      oracle.AddViolation("durable write bytes mutated: key " +
                          std::to_string(key) + " v" +
                          std::to_string(best_version));
    }
  }

  // ---- gather ----
  report.workload = workload.stats();
  report.oracle = oracle.stats();
  report.violation_samples = oracle.violations();
  if (dep.anti_entropy() != nullptr) {
    AntiEntropyStats repair = dep.anti_entropy()->stats();
    report.repair_mismatches = repair.mismatches;
    report.repair_syncs = repair.syncs;
    report.repair_records_shipped = repair.records_shipped;
  }
  for (int i = 0; i < options.num_nodes; ++i) {
    RecoveryCounters counters =
        dep.client().node_client(static_cast<NodeId>(i)).recovery_counters();
    report.batch_hedges_sent += counters.batch_hedges_sent;
    report.batch_hedges_absorbed += counters.batch_hedges_absorbed;
  }
  for (int i = 0; i < options.num_nodes; ++i) {
    LogStoreStats ss = dep.data_node(i).service().StoreStats();
    report.store_live_kb += static_cast<int64_t>(ss.live_bytes) / 1024;
    report.store_total_kb += static_cast<int64_t>(ss.total_bytes) / 1024;
    report.store_compactions += ss.compactions;
  }
  UpdateSubscriberStats sub_stats = subscriber->stats();
  report.subscriber_notifications = sub_stats.notifications;
  report.subscriber_resyncs = sub_stats.resyncs;

  // ---- gates ----
  if (report.oracle.violations > 0) {
    report.failures.push_back(
        std::to_string(report.oracle.violations) +
        " invariant violation(s); first: " +
        (report.violation_samples.empty() ? std::string("<none>")
                                          : report.violation_samples[0]));
  }
  if (report.throughput_ratio < options.min_throughput_fraction) {
    report.failures.push_back(
        "throughput under faults fell below the floor: ratio " +
        std::to_string(report.throughput_ratio) + " < " +
        std::to_string(options.min_throughput_fraction));
  }
  // Under TSan the allocator's shadow state grows with thread/heap churn,
  // so VmRSS measures the sanitizer, not the system: report the numbers
  // but gate only in uninstrumented builds (the Release CI job gates).
  bool rss_meaningful = true;
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  rss_meaningful = false;  // gcc spelling
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  rss_meaningful = false;  // clang spelling
#endif
#endif
  if (report.rss_baseline_kb > 0 && report.rss_end_kb > 0) {
    int64_t grown = report.rss_end_kb - report.rss_baseline_kb;
    report.rss_growth =
        static_cast<double>(grown) /
        static_cast<double>(report.rss_baseline_kb);
    if (rss_meaningful && report.rss_growth > options.max_rss_growth &&
        grown > options.rss_slack_kb) {
      report.failures.push_back(
          "RSS grew " + std::to_string(grown) + " kB (" +
          std::to_string(report.rss_growth * 100.0) + "%) over the soak");
    }
  }
  if (report.kills < 2 || report.restarts < 2 || report.partitions < 1 ||
      report.controller_crashes != 1) {
    report.failures.push_back("schedule under-delivered: kills=" +
                              std::to_string(report.kills) + " restarts=" +
                              std::to_string(report.restarts) +
                              " partitions=" +
                              std::to_string(report.partitions) +
                              " controller_crashes=" +
                              std::to_string(report.controller_crashes));
  }
  report.passed = report.failures.empty();

  subscriber.reset();
  dep.Stop();
  NetFaultInjector::Instance().HealAll();
  return report;
}

}  // namespace joinopt
