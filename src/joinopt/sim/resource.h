// Queueing-server models of physical resources. A resource reserves service
// time on a FIFO timeline: callers ask "if I submit a job of length s now,
// when does it finish?" and then schedule their continuation at that time on
// the Simulation. This reservation style keeps resources decoupled from the
// event queue while still modeling contention (an overloaded node's timeline
// runs far ahead of the clock, which is exactly the straggler effect the
// paper's skew experiments measure).
#ifndef JOINOPT_SIM_RESOURCE_H_
#define JOINOPT_SIM_RESOURCE_H_

#include <queue>
#include <string>
#include <vector>

#include "joinopt/common/histogram.h"

namespace joinopt {

/// Single FIFO server (disk, NIC link). Jobs are served one at a time in
/// submission order.
class FifoServer {
 public:
  FifoServer() = default;
  explicit FifoServer(std::string name) : name_(std::move(name)) {}

  /// Reserves `service` seconds of server time for a job arriving at `now`.
  /// Returns the completion time.
  double Reserve(double now, double service) {
    double start = free_at_ > now ? free_at_ : now;
    queue_delay_.Observe(start - now);
    free_at_ = start + service;
    busy_ += service;
    ++jobs_;
    return free_at_;
  }

  /// Earliest time a newly submitted job would start.
  double free_at() const { return free_at_; }
  /// Outstanding backlog relative to `now` (0 if idle).
  double Backlog(double now) const {
    return free_at_ > now ? free_at_ - now : 0.0;
  }

  double busy_time() const { return busy_; }
  long jobs() const { return jobs_; }
  const SummaryStats& queue_delay() const { return queue_delay_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  double free_at_ = 0.0;
  double busy_ = 0.0;
  long jobs_ = 0;
  SummaryStats queue_delay_;
};

/// k identical servers with a shared FIFO queue (a multi-core CPU). Each job
/// runs on the earliest-free core.
class MultiServer {
 public:
  explicit MultiServer(int cores, std::string name = "")
      : name_(std::move(name)), free_(static_cast<size_t>(cores), 0.0) {}

  /// Reserves `service` seconds on the earliest-free core for a job arriving
  /// at `now`. Returns the completion time.
  double Reserve(double now, double service);

  int cores() const { return static_cast<int>(free_.size()); }
  /// Earliest time a newly submitted job would start.
  double EarliestStart(double now) const;
  /// Total queued-but-unstarted work relative to `now`, summed over cores.
  double Backlog(double now) const;

  double busy_time() const { return busy_; }
  long jobs() const { return jobs_; }
  const SummaryStats& queue_delay() const { return queue_delay_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  // Min-heap by free time, stored as a vector heap.
  std::vector<double> free_;
  double busy_ = 0.0;
  long jobs_ = 0;
  SummaryStats queue_delay_;
};

}  // namespace joinopt

#endif  // JOINOPT_SIM_RESOURCE_H_
