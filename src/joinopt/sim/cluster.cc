#include "joinopt/sim/cluster.h"

namespace joinopt {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      network_(config.num_compute_nodes + config.num_data_nodes,
               config.network) {
  int total = config.num_compute_nodes + config.num_data_nodes;
  assert(total > 0);
  nodes_.reserve(static_cast<size_t>(total));
  for (NodeId id = 0; id < total; ++id) {
    nodes_.push_back(std::make_unique<SimNode>(id, config.machine));
  }
}

double Cluster::TotalCpuBusy() const {
  double busy = 0.0;
  for (const auto& n : nodes_) busy += n->cpu().busy_time();
  return busy;
}

}  // namespace joinopt
