#include "joinopt/sim/resource.h"

#include <algorithm>
#include <cassert>

namespace joinopt {

double MultiServer::Reserve(double now, double service) {
  assert(!free_.empty());
  std::pop_heap(free_.begin(), free_.end(), std::greater<>());
  double core_free = free_.back();
  double start = core_free > now ? core_free : now;
  queue_delay_.Observe(start - now);
  double done = start + service;
  free_.back() = done;
  std::push_heap(free_.begin(), free_.end(), std::greater<>());
  busy_ += service;
  ++jobs_;
  return done;
}

double MultiServer::EarliestStart(double now) const {
  double earliest = free_.front();  // heap root = min free time
  for (double f : free_) earliest = std::min(earliest, f);
  return earliest > now ? earliest : now;
}

double MultiServer::Backlog(double now) const {
  double backlog = 0.0;
  for (double f : free_) {
    if (f > now) backlog += f - now;
  }
  return backlog;
}

}  // namespace joinopt
