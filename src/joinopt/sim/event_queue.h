// Discrete-event simulation core: a virtual clock plus a priority queue of
// scheduled closures. Deterministic: ties in time break by insertion order.
//
// The cluster substrate (nodes, disks, NICs) and the runtimes built on top of
// it (compute/data node engines, MapReduce, the stream engine) all advance
// through one Simulation instance, so every experiment is reproducible from
// its seed.
#ifndef JOINOPT_SIM_EVENT_QUEUE_H_
#define JOINOPT_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace joinopt {

/// The simulation event loop and virtual clock.
class Simulation {
 public:
  using EventFn = std::function<void()>;

  /// Current virtual time in seconds.
  double now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now. Negative delays clamp
  /// to zero (run "immediately", after currently pending same-time events).
  void Schedule(double delay, EventFn fn) {
    At(now_ + (delay > 0 ? delay : 0.0), std::move(fn));
  }

  /// Schedules `fn` at absolute time `when` (clamped to now).
  void At(double when, EventFn fn) {
    if (when < now_) when = now_;
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  /// Runs events until the queue drains or virtual time exceeds `until`.
  /// Returns the number of events executed.
  uint64_t Run(double until = kForever);

  /// Runs a single event if one is pending within `until`. Returns false if
  /// the queue is empty or the next event lies beyond `until`.
  bool Step(double until = kForever);

  /// Requests that Run() return after the current event.
  void Stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }
  uint64_t events_executed() const { return executed_; }

  static constexpr double kForever = 1e300;

 private:
  struct Event {
    double time;
    uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace joinopt

#endif  // JOINOPT_SIM_EVENT_QUEUE_H_
