// Network model: each node has a full-duplex NIC (independent egress and
// ingress FIFO links) with a configurable per-node bandwidth, plus a flat
// propagation latency. A transfer serializes on the sender's egress link and
// then on the receiver's ingress link, which captures both sender fan-out
// contention and receiver incast — the two effects behind the paper's
// network-bound crossovers (data-heavy workload, Fig. 8a).
#ifndef JOINOPT_SIM_NETWORK_H_
#define JOINOPT_SIM_NETWORK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "joinopt/common/hash.h"
#include "joinopt/sim/resource.h"

namespace joinopt {

struct NetworkConfig {
  /// Per-node NIC bandwidth in bytes/second (both directions).
  double bandwidth_bytes_per_sec = 125e6;  // 1 Gbps
  /// One-way propagation latency in seconds.
  double latency = 100e-6;
  /// Fixed per-message overhead in bytes (headers, RPC framing).
  double per_message_overhead_bytes = 256.0;
};

/// The cluster interconnect.
class Network {
 public:
  Network(int num_nodes, const NetworkConfig& config);

  /// Reserves link time for a `bytes`-sized message from `src` to `dst`
  /// submitted at `now`; returns its arrival time at `dst`.
  double Transfer(NodeId src, NodeId dst, double bytes, double now);

  /// Effective bandwidth between two nodes in bytes/second — what the
  /// paper's setup phase measures and the cost model consumes (netBw_ij).
  double EffectiveBandwidth(NodeId src, NodeId dst) const;

  /// Sets an individual node's NIC bandwidth (heterogeneous clusters).
  void SetNodeBandwidth(NodeId node, double bytes_per_sec);

  /// Fault injection: transfers between `a` and `b` (both directions) run
  /// `factor`x slower until restored with factor 1.0. Factors apply to
  /// future transfers only.
  void SetLinkFactor(NodeId a, NodeId b, double factor);
  /// Current slowdown factor for the {a, b} link (1.0 = healthy).
  double LinkFactor(NodeId a, NodeId b) const;

  const NetworkConfig& config() const { return config_; }
  int num_nodes() const { return static_cast<int>(egress_.size()); }

  const FifoServer& egress(NodeId n) const { return egress_[n]; }
  const FifoServer& ingress(NodeId n) const { return ingress_[n]; }

  double total_bytes_transferred() const { return total_bytes_; }
  long total_messages() const { return total_messages_; }

 private:
  static uint64_t LinkKey(NodeId a, NodeId b) {
    NodeId lo = a < b ? a : b;
    NodeId hi = a < b ? b : a;
    return (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
           static_cast<uint32_t>(hi);
  }

  NetworkConfig config_;
  std::vector<FifoServer> egress_;
  std::vector<FifoServer> ingress_;
  std::vector<double> bandwidth_;
  /// Degraded links only (absent = factor 1.0); keyed by unordered pair.
  std::unordered_map<uint64_t, double> link_factor_;
  double total_bytes_ = 0.0;
  long total_messages_ = 0;
};

}  // namespace joinopt

#endif  // JOINOPT_SIM_NETWORK_H_
