#include "joinopt/sim/network.h"

#include <algorithm>
#include <cassert>

namespace joinopt {

Network::Network(int num_nodes, const NetworkConfig& config)
    : config_(config),
      egress_(static_cast<size_t>(num_nodes)),
      ingress_(static_cast<size_t>(num_nodes)),
      bandwidth_(static_cast<size_t>(num_nodes),
                 config.bandwidth_bytes_per_sec) {
  assert(num_nodes > 0);
}

double Network::Transfer(NodeId src, NodeId dst, double bytes, double now) {
  assert(src >= 0 && src < num_nodes());
  assert(dst >= 0 && dst < num_nodes());
  double payload = bytes + config_.per_message_overhead_bytes;
  total_bytes_ += payload;
  ++total_messages_;
  if (src == dst) {
    // Loopback: no NIC time, only a small fixed cost.
    return now + config_.latency * 0.1;
  }
  double out_time = payload / bandwidth_[src];
  double departed = egress_[src].Reserve(now, out_time);
  double in_time = payload / bandwidth_[dst];
  double arrived = ingress_[dst].Reserve(departed, in_time);
  return arrived + config_.latency;
}

double Network::EffectiveBandwidth(NodeId src, NodeId dst) const {
  if (src == dst) return 1e12;  // effectively infinite for loopback
  return std::min(bandwidth_[src], bandwidth_[dst]);
}

void Network::SetNodeBandwidth(NodeId node, double bytes_per_sec) {
  assert(node >= 0 && node < num_nodes());
  assert(bytes_per_sec > 0);
  bandwidth_[node] = bytes_per_sec;
}

}  // namespace joinopt
