#include "joinopt/sim/network.h"

#include <algorithm>
#include <cassert>

namespace joinopt {

Network::Network(int num_nodes, const NetworkConfig& config)
    : config_(config),
      egress_(static_cast<size_t>(num_nodes)),
      ingress_(static_cast<size_t>(num_nodes)),
      bandwidth_(static_cast<size_t>(num_nodes),
                 config.bandwidth_bytes_per_sec) {
  assert(num_nodes > 0);
}

double Network::Transfer(NodeId src, NodeId dst, double bytes, double now) {
  assert(src >= 0 && src < num_nodes());
  assert(dst >= 0 && dst < num_nodes());
  double payload = bytes + config_.per_message_overhead_bytes;
  total_bytes_ += payload;
  ++total_messages_;
  if (src == dst) {
    // Loopback: no NIC time, only a small fixed cost.
    return now + config_.latency * 0.1;
  }
  double out_bw = bandwidth_[src];
  double in_bw = bandwidth_[dst];
  // Degraded-link lookup only when faults are active, so fault-free runs
  // execute the exact same arithmetic as before.
  if (!link_factor_.empty()) {
    double factor = LinkFactor(src, dst);
    if (factor != 1.0) {
      out_bw /= factor;
      in_bw /= factor;
    }
  }
  double out_time = payload / out_bw;
  double departed = egress_[src].Reserve(now, out_time);
  double in_time = payload / in_bw;
  double arrived = ingress_[dst].Reserve(departed, in_time);
  return arrived + config_.latency;
}

void Network::SetLinkFactor(NodeId a, NodeId b, double factor) {
  assert(a >= 0 && a < num_nodes());
  assert(b >= 0 && b < num_nodes());
  assert(factor > 0);
  if (factor == 1.0) {
    link_factor_.erase(LinkKey(a, b));
  } else {
    link_factor_[LinkKey(a, b)] = factor;
  }
}

double Network::LinkFactor(NodeId a, NodeId b) const {
  auto it = link_factor_.find(LinkKey(a, b));
  return it == link_factor_.end() ? 1.0 : it->second;
}

double Network::EffectiveBandwidth(NodeId src, NodeId dst) const {
  if (src == dst) return 1e12;  // effectively infinite for loopback
  double bw = std::min(bandwidth_[src], bandwidth_[dst]);
  if (!link_factor_.empty()) bw /= LinkFactor(src, dst);
  return bw;
}

void Network::SetNodeBandwidth(NodeId node, double bytes_per_sec) {
  assert(node >= 0 && node < num_nodes());
  assert(bytes_per_sec > 0);
  bandwidth_[node] = bytes_per_sec;
}

}  // namespace joinopt
