// Cluster substrate: a set of simulated machines (multi-core CPU + disk)
// connected by a Network. Mirrors the paper's testbed — by default 20 nodes,
// 8 cores each, 16 GB-class disks, 1 Gbps NICs — split into compute nodes
// and data nodes (10 + 10 in the paper's framework runs; all 20 in the
// MapReduce baseline runs).
#ifndef JOINOPT_SIM_CLUSTER_H_
#define JOINOPT_SIM_CLUSTER_H_

#include <cassert>
#include <memory>
#include <vector>

#include "joinopt/common/hash.h"
#include "joinopt/sim/network.h"
#include "joinopt/sim/resource.h"

namespace joinopt {

struct DiskConfig {
  /// Fixed per-request overhead (seek + request dispatch). The paper notes
  /// its disk cache behaves like an SSD because of the file-system buffer,
  /// so the default is SSD-like.
  double seek_time = 100e-6;
  /// Sequential transfer bandwidth in bytes/second.
  double bandwidth_bytes_per_sec = 200e6;
};

struct MachineConfig {
  int cores = 8;
  DiskConfig disk;
};

struct ClusterConfig {
  int num_compute_nodes = 10;
  int num_data_nodes = 10;
  MachineConfig machine;
  NetworkConfig network;
};

/// One simulated machine.
class SimNode {
 public:
  SimNode(NodeId id, const MachineConfig& config)
      : id_(id), config_(config), cpu_(config.cores) {}

  NodeId id() const { return id_; }
  MultiServer& cpu() { return cpu_; }
  const MultiServer& cpu() const { return cpu_; }
  FifoServer& disk() { return disk_; }
  const FifoServer& disk() const { return disk_; }

  /// Service time for fetching `bytes` from this node's disk. Scaled by the
  /// current slowdown factor (fault injection: a straggling disk).
  double DiskServiceTime(double bytes) const {
    return (config_.disk.seek_time +
            bytes / config_.disk.bandwidth_bytes_per_sec) *
           disk_slow_factor_;
  }

  /// Fault injection: future disk operations take `factor`x as long
  /// (1.0 = healthy). Already-reserved timeline entries are unaffected.
  void set_disk_slow_factor(double factor) { disk_slow_factor_ = factor; }
  double disk_slow_factor() const { return disk_slow_factor_; }

  const MachineConfig& config() const { return config_; }

 private:
  NodeId id_;
  MachineConfig config_;
  MultiServer cpu_;
  FifoServer disk_;
  double disk_slow_factor_ = 1.0;
};

/// A full cluster: nodes 0..num_compute-1 are compute nodes, the rest are
/// data nodes. (Roles matter only to the runtimes; the substrate is uniform,
/// matching the paper's homogeneous testbed.)
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_compute_nodes() const { return config_.num_compute_nodes; }
  int num_data_nodes() const { return config_.num_data_nodes; }

  SimNode& node(NodeId id) { return *nodes_[static_cast<size_t>(id)]; }
  const SimNode& node(NodeId id) const {
    return *nodes_[static_cast<size_t>(id)];
  }

  /// i-th compute node (0-based).
  SimNode& compute_node(int i) {
    assert(i >= 0 && i < config_.num_compute_nodes);
    return node(i);
  }
  /// j-th data node (0-based).
  SimNode& data_node(int j) {
    assert(j >= 0 && j < config_.num_data_nodes);
    return node(config_.num_compute_nodes + j);
  }
  NodeId compute_node_id(int i) const { return i; }
  NodeId data_node_id(int j) const { return config_.num_compute_nodes + j; }
  bool is_data_node(NodeId id) const {
    return id >= config_.num_compute_nodes;
  }

  Network& network() { return network_; }
  const Network& network() const { return network_; }
  const ClusterConfig& config() const { return config_; }

  /// Total CPU-busy seconds across all nodes (for utilization reports).
  double TotalCpuBusy() const;

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  Network network_;
};

}  // namespace joinopt

#endif  // JOINOPT_SIM_CLUSTER_H_
