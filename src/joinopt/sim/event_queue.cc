#include "joinopt/sim/event_queue.h"

#include <utility>

namespace joinopt {

uint64_t Simulation::Run(double until) {
  stopped_ = false;
  uint64_t ran = 0;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.time > until) break;
    // Move the closure out before popping: the closure may schedule new
    // events, which could reallocate the heap.
    EventFn fn = std::move(const_cast<Event&>(top).fn);
    now_ = top.time;
    queue_.pop();
    fn();
    ++ran;
    ++executed_;
  }
  if (queue_.empty() && now_ < until && until < kForever) now_ = until;
  return ran;
}

bool Simulation::Step(double until) {
  if (queue_.empty()) return false;
  const Event& top = queue_.top();
  if (top.time > until) return false;
  EventFn fn = std::move(const_cast<Event&>(top).fn);
  now_ = top.time;
  queue_.pop();
  fn();
  ++executed_;
  return true;
}

}  // namespace joinopt
