// Frequency-counter interface. Section 4.3 of the paper: "Since the number of
// keys may be very large it may not be possible [to] keep exact count for all
// keys... We maintain the count of most frequent keys in buckets of hashmap
// using the Lossy Counting algorithm." We provide Lossy Counting (the paper's
// choice), Space-Saving (an ablation alternative) and an exact counter (the
// oracle, for tests and ablations).
#ifndef JOINOPT_FREQ_COUNTER_H_
#define JOINOPT_FREQ_COUNTER_H_

#include <cstdint>
#include <vector>

#include "joinopt/common/hash.h"

namespace joinopt {

/// Approximate per-key occurrence counter over a stream.
class FrequencyCounter {
 public:
  virtual ~FrequencyCounter() = default;

  /// Records one occurrence of `key`; returns the key's estimated count
  /// after the update.
  virtual int64_t Observe(Key key) = 0;

  /// Estimated count of `key` (0 if not tracked).
  virtual int64_t EstimatedCount(Key key) const = 0;

  /// Resets the count of `key` to zero (used when the stored item behind the
  /// key is updated — Section 4.2.3).
  virtual void ResetKey(Key key) = 0;

  /// Number of keys currently tracked (memory footprint proxy).
  virtual size_t TrackedKeys() const = 0;

  /// Total observations so far.
  virtual int64_t TotalObservations() const = 0;

  /// Accounted bytes of per-key storage (0 when the implementation does
  /// not track it). Used by the keyspace-scale bench's bytes/key report.
  virtual size_t MemoryBytes() const { return 0; }
};

}  // namespace joinopt

#endif  // JOINOPT_FREQ_COUNTER_H_
