// Exact per-key counter: the oracle against which the approximate counters
// are tested, and an ablation option for small key domains.
#ifndef JOINOPT_FREQ_EXACT_COUNTER_H_
#define JOINOPT_FREQ_EXACT_COUNTER_H_

#include <unordered_map>

#include "joinopt/freq/counter.h"

namespace joinopt {

class ExactCounter : public FrequencyCounter {
 public:
  int64_t Observe(Key key) override {
    ++n_;
    return ++counts_[key];
  }
  int64_t EstimatedCount(Key key) const override {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }
  void ResetKey(Key key) override { counts_[key] = 0; }
  size_t TrackedKeys() const override { return counts_.size(); }
  int64_t TotalObservations() const override { return n_; }

 private:
  int64_t n_ = 0;
  std::unordered_map<Key, int64_t> counts_;
};

}  // namespace joinopt

#endif  // JOINOPT_FREQ_EXACT_COUNTER_H_
