// Exact per-key counter: the oracle against which the approximate counters
// are tested, and an ablation option for small key domains. Stored in a
// FlatMap (DESIGN.md §14): 6-byte probe slots + 16-byte {key, count}
// entries instead of one unordered_map node per key.
#ifndef JOINOPT_FREQ_EXACT_COUNTER_H_
#define JOINOPT_FREQ_EXACT_COUNTER_H_

#include <cstdint>

#include "joinopt/common/arena.h"
#include "joinopt/common/flat_map.h"
#include "joinopt/freq/counter.h"

namespace joinopt {

class ExactCounter : public FrequencyCounter {
 public:
  /// `expected_keys` pre-reserves the table (0 = grow on demand); `arena`
  /// (optional, must outlive the counter) backs the table's storage.
  explicit ExactCounter(size_t expected_keys = 0, Arena* arena = nullptr)
      : counts_(arena, /*seed=*/0x3ad9c06fu) {
    if (expected_keys > 0) counts_.Reserve(expected_keys);
  }

  int64_t Observe(Key key) override {
    ++n_;
    return ++*counts_.TryEmplace(key).first;
  }
  int64_t EstimatedCount(Key key) const override {
    const int64_t* c = counts_.Find(key);
    return c == nullptr ? 0 : *c;
  }
  void ResetKey(Key key) override { *counts_.TryEmplace(key).first = 0; }
  size_t TrackedKeys() const override { return counts_.size(); }
  int64_t TotalObservations() const override { return n_; }

  /// Accounted bytes of per-key storage (probe table + entry slabs).
  size_t MemoryBytes() const override { return counts_.MemoryBytes(); }

 private:
  int64_t n_ = 0;
  FlatMap<int64_t> counts_;
};

}  // namespace joinopt

#endif  // JOINOPT_FREQ_EXACT_COUNTER_H_
