#include "joinopt/freq/lossy_counting.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace joinopt {

namespace {
constexpr uint32_t kSaturated = std::numeric_limits<uint32_t>::max();
}  // namespace

LossyCounting::LossyCounting(double epsilon, size_t expected_keys,
                             Arena* arena)
    : epsilon_(epsilon), entries_(arena, /*seed=*/0x1c5f4a9bu) {
  assert(epsilon > 0.0 && epsilon < 1.0);
  width_ = static_cast<int64_t>(std::ceil(1.0 / epsilon));
  if (expected_keys > 0) entries_.Reserve(expected_keys);
}

int64_t LossyCounting::Observe(Key key) {
  ++n_;
  auto [e, inserted] = entries_.TryEmplace(key);
  if (inserted) {
    e->count = 1;
    e->delta = static_cast<uint32_t>(bucket_ - 1);
  } else if (e->count != kSaturated) {
    ++e->count;
  }
  int64_t count = e->count;
  MaybePrune();
  return count;
}

void LossyCounting::MaybePrune() {
  if (n_ % width_ != 0) return;
  // Bucket boundary: advance and prune low-count entries in one in-place
  // backward-shift sweep — survivors keep their slots (no re-bucketing).
  uint64_t bucket = static_cast<uint64_t>(bucket_);
  entries_.EraseIf([bucket](Key, const Entry& e) {
    return uint64_t{e.count} + uint64_t{e.delta} <= bucket;
  });
  ++bucket_;
}

int64_t LossyCounting::EstimatedCount(Key key) const {
  const Entry* e = entries_.Find(key);
  return e == nullptr ? 0 : e->count;
}

void LossyCounting::ResetKey(Key key) {
  Entry* e = entries_.Find(key);
  if (e != nullptr) {
    // Re-inserting as a fresh item of the current bucket: the next prune can
    // evict it unless it becomes frequent again.
    e->count = 0;
    e->delta = static_cast<uint32_t>(bucket_ - 1);
  }
}

std::vector<Key> LossyCounting::FrequentKeys(int64_t threshold) const {
  std::vector<Key> out;
  out.reserve(entries_.size());
  entries_.ForEach([&](Key key, const Entry& e) {
    if (int64_t{e.count} >= threshold) out.push_back(key);
  });
  return out;
}

}  // namespace joinopt
