#include "joinopt/freq/lossy_counting.h"

#include <cassert>
#include <cmath>

namespace joinopt {

LossyCounting::LossyCounting(double epsilon) : epsilon_(epsilon) {
  assert(epsilon > 0.0 && epsilon < 1.0);
  width_ = static_cast<int64_t>(std::ceil(1.0 / epsilon));
}

int64_t LossyCounting::Observe(Key key) {
  ++n_;
  int64_t count;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    count = ++it->second.count;
  } else {
    entries_.emplace(key, Entry{1, bucket_ - 1});
    count = 1;
  }
  MaybePrune();
  return count;
}

void LossyCounting::MaybePrune() {
  if (n_ % width_ != 0) return;
  // Bucket boundary: advance and prune low-count entries.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.count + it->second.delta <= bucket_) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  ++bucket_;
}

int64_t LossyCounting::EstimatedCount(Key key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.count;
}

void LossyCounting::ResetKey(Key key) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Re-inserting as a fresh item of the current bucket: the next prune can
    // evict it unless it becomes frequent again.
    it->second.count = 0;
    it->second.delta = bucket_ - 1;
  }
}

std::vector<Key> LossyCounting::FrequentKeys(int64_t threshold) const {
  std::vector<Key> out;
  for (const auto& [key, e] : entries_) {
    if (e.count >= threshold) out.push_back(key);
  }
  return out;
}

}  // namespace joinopt
