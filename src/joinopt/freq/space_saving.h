// Space-Saving (Metwally, Agrawal & El Abbadi, 2005): fixed-capacity top-k
// counter. When a new key arrives at a full table, the minimum-count entry is
// replaced and its count inherited (so estimates overestimate by at most the
// evicted minimum). Provided as an ablation alternative to Lossy Counting;
// see bench/ablation_design_choices.
//
// Storage (DESIGN.md §14): entries live in a FlatMap, and the min-count
// order is an IntrusiveMinHeap over entry handles instead of a
// std::multimap — each count bump is one O(log n) sift with zero
// allocations rather than an rb-tree erase + insert. Ordering is
// (count, seq) where seq is refreshed on every count change, reproducing
// the multimap's FIFO-among-equal-counts victim choice exactly. Counts
// are uint32 and saturate at ~4.29e9 observations of one key.
#ifndef JOINOPT_FREQ_SPACE_SAVING_H_
#define JOINOPT_FREQ_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>

#include "joinopt/common/arena.h"
#include "joinopt/common/flat_map.h"
#include "joinopt/common/intrusive_heap.h"
#include "joinopt/freq/counter.h"

namespace joinopt {

class SpaceSaving : public FrequencyCounter {
 public:
  /// capacity: maximum number of keys tracked simultaneously. `arena`
  /// (optional, must outlive the counter) backs the entry table.
  explicit SpaceSaving(size_t capacity, Arena* arena = nullptr);

  int64_t Observe(Key key) override;
  int64_t EstimatedCount(Key key) const override;
  void ResetKey(Key key) override;
  size_t TrackedKeys() const override { return counts_.size(); }
  int64_t TotalObservations() const override { return n_; }

  size_t capacity() const { return capacity_; }
  /// Maximum overestimation of EstimatedCount for `key` (its inherited
  /// error term; 0 for keys tracked since count zero).
  int64_t ErrorBound(Key key) const;

  /// Accounted bytes of per-key storage (probe table + entries + heap).
  size_t MemoryBytes() const override {
    return counts_.MemoryBytes() + by_count_.MemoryBytes();
  }

 private:
  struct Entry {
    uint32_t count;
    uint32_t error;
    uint32_t heap_pos;  // maintained by OrderAdapter::SetPos
    uint32_t seq;       // FIFO tie-break among equal counts
  };

  /// Binds the min-count heap to the entry table: order by (count, seq),
  /// store heap positions inline in entries.
  struct OrderAdapter {
    const FlatMap<Entry>* table;
    bool Less(uint32_t a, uint32_t b) const {
      const Entry& x = table->EntryAt(a).value;
      const Entry& y = table->EntryAt(b).value;
      if (x.count != y.count) return x.count < y.count;
      return x.seq < y.seq;
    }
    void SetPos(uint32_t handle, uint32_t pos) const {
      const_cast<FlatMap<Entry>*>(table)->EntryAt(handle).value.heap_pos =
          pos;
    }
  };

  void Bump(uint32_t handle, uint32_t new_count);

  size_t capacity_;
  int64_t n_ = 0;
  uint32_t next_seq_ = 0;
  FlatMap<Entry> counts_;
  IntrusiveMinHeap<OrderAdapter> by_count_;  // min = eviction victim
};

}  // namespace joinopt

#endif  // JOINOPT_FREQ_SPACE_SAVING_H_
