// Space-Saving (Metwally, Agrawal & El Abbadi, 2005): fixed-capacity top-k
// counter. When a new key arrives at a full table, the minimum-count entry is
// replaced and its count inherited (so estimates overestimate by at most the
// evicted minimum). Provided as an ablation alternative to Lossy Counting;
// see bench/ablation_design_choices.
#ifndef JOINOPT_FREQ_SPACE_SAVING_H_
#define JOINOPT_FREQ_SPACE_SAVING_H_

#include <cstddef>
#include <map>
#include <unordered_map>

#include "joinopt/freq/counter.h"

namespace joinopt {

class SpaceSaving : public FrequencyCounter {
 public:
  /// capacity: maximum number of keys tracked simultaneously.
  explicit SpaceSaving(size_t capacity);

  int64_t Observe(Key key) override;
  int64_t EstimatedCount(Key key) const override;
  void ResetKey(Key key) override;
  size_t TrackedKeys() const override { return counts_.size(); }
  int64_t TotalObservations() const override { return n_; }

  size_t capacity() const { return capacity_; }
  /// Maximum overestimation of EstimatedCount for `key` (its inherited
  /// error term; 0 for keys tracked since count zero).
  int64_t ErrorBound(Key key) const;

 private:
  struct Entry {
    int64_t count;
    int64_t error;
    // Iterator into the ordered multimap used to find the min-count victim.
    std::multimap<int64_t, Key>::iterator order_it;
  };

  void Bump(std::unordered_map<Key, Entry>::iterator it, int64_t new_count);

  size_t capacity_;
  int64_t n_ = 0;
  std::unordered_map<Key, Entry> counts_;
  std::multimap<int64_t, Key> by_count_;  // ascending count order
};

}  // namespace joinopt

#endif  // JOINOPT_FREQ_SPACE_SAVING_H_
