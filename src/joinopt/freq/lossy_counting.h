// Lossy Counting (Manku & Motwani, VLDB 2002). The stream is divided into
// buckets of width w = ceil(1/epsilon). Each tracked key holds (count,
// delta); at each bucket boundary, keys with count + delta <= current bucket
// id are pruned. Guarantees: estimated count underestimates the true count by
// at most epsilon * N, and at most O((1/epsilon) log(epsilon N)) keys are
// tracked.
//
// Storage (DESIGN.md §14): entries live in a FlatMap — 6-byte probe slots
// plus an 8-byte packed {count, delta} payload per tracked key — and
// MaybePrune is an in-place backward-shift sweep (FlatMap::EraseIf), so a
// bucket boundary never re-buckets survivors or allocates. Counts and
// deltas are uint32 and saturate at ~4.29e9; at that magnitude the epsilon
// bound on a single key is long since moot (delta only ever holds bucket
// ids, which reach 2^32 only after width * 2^32 observations).
#ifndef JOINOPT_FREQ_LOSSY_COUNTING_H_
#define JOINOPT_FREQ_LOSSY_COUNTING_H_

#include <cstdint>
#include <vector>

#include "joinopt/common/arena.h"
#include "joinopt/common/flat_map.h"
#include "joinopt/freq/counter.h"

namespace joinopt {

class LossyCounting : public FrequencyCounter {
 public:
  /// epsilon in (0, 1): maximum relative undercount. Smaller epsilon tracks
  /// more keys. The paper's heavy-hitter use cares about keys whose
  /// frequency crosses the ski-rental threshold, so epsilon should be below
  /// threshold / expected stream length; 1e-4 is a safe default for the
  /// workloads here.
  ///
  /// `expected_keys` pre-reserves the table (0 = grow on demand); `arena`
  /// (optional, must outlive the counter) backs the table's storage.
  explicit LossyCounting(double epsilon = 1e-4, size_t expected_keys = 0,
                         Arena* arena = nullptr);

  int64_t Observe(Key key) override;
  int64_t EstimatedCount(Key key) const override;
  void ResetKey(Key key) override;
  size_t TrackedKeys() const override { return entries_.size(); }
  int64_t TotalObservations() const override { return n_; }

  /// Keys whose estimated frequency is at least `threshold` occurrences.
  std::vector<Key> FrequentKeys(int64_t threshold) const;

  double epsilon() const { return epsilon_; }
  int64_t bucket_width() const { return width_; }
  int64_t current_bucket() const { return bucket_; }

  /// Accounted bytes of per-key storage (probe table + entry slabs).
  size_t MemoryBytes() const override { return entries_.MemoryBytes(); }

 private:
  struct Entry {
    uint32_t count;
    uint32_t delta;  // max undercount at insertion time (a bucket id)
  };

  void MaybePrune();

  double epsilon_;
  int64_t width_;
  int64_t n_ = 0;
  int64_t bucket_ = 1;
  FlatMap<Entry> entries_;
};

}  // namespace joinopt

#endif  // JOINOPT_FREQ_LOSSY_COUNTING_H_
