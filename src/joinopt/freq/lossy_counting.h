// Lossy Counting (Manku & Motwani, VLDB 2002). The stream is divided into
// buckets of width w = ceil(1/epsilon). Each tracked key holds (count,
// delta); at each bucket boundary, keys with count + delta <= current bucket
// id are pruned. Guarantees: estimated count underestimates the true count by
// at most epsilon * N, and at most O((1/epsilon) log(epsilon N)) keys are
// tracked.
#ifndef JOINOPT_FREQ_LOSSY_COUNTING_H_
#define JOINOPT_FREQ_LOSSY_COUNTING_H_

#include <unordered_map>
#include <vector>

#include "joinopt/freq/counter.h"

namespace joinopt {

class LossyCounting : public FrequencyCounter {
 public:
  /// epsilon in (0, 1): maximum relative undercount. Smaller epsilon tracks
  /// more keys. The paper's heavy-hitter use cares about keys whose
  /// frequency crosses the ski-rental threshold, so epsilon should be below
  /// threshold / expected stream length; 1e-4 is a safe default for the
  /// workloads here.
  explicit LossyCounting(double epsilon = 1e-4);

  int64_t Observe(Key key) override;
  int64_t EstimatedCount(Key key) const override;
  void ResetKey(Key key) override;
  size_t TrackedKeys() const override { return entries_.size(); }
  int64_t TotalObservations() const override { return n_; }

  /// Keys whose estimated frequency is at least `threshold` occurrences.
  std::vector<Key> FrequentKeys(int64_t threshold) const;

  double epsilon() const { return epsilon_; }
  int64_t bucket_width() const { return width_; }
  int64_t current_bucket() const { return bucket_; }

 private:
  struct Entry {
    int64_t count;
    int64_t delta;  // max undercount at insertion time
  };

  void MaybePrune();

  double epsilon_;
  int64_t width_;
  int64_t n_ = 0;
  int64_t bucket_ = 1;
  std::unordered_map<Key, Entry> entries_;
};

}  // namespace joinopt

#endif  // JOINOPT_FREQ_LOSSY_COUNTING_H_
