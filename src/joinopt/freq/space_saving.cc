#include "joinopt/freq/space_saving.h"

#include <cassert>
#include <limits>

namespace joinopt {

namespace {
constexpr uint32_t kSaturated = std::numeric_limits<uint32_t>::max();
}  // namespace

SpaceSaving::SpaceSaving(size_t capacity, Arena* arena)
    : capacity_(capacity),
      counts_(arena, /*seed=*/0x7b2d8e31u),
      by_count_(OrderAdapter{&counts_}) {
  assert(capacity > 0);
  counts_.Reserve(capacity);
  by_count_.Reserve(capacity);
}

void SpaceSaving::Bump(uint32_t handle, uint32_t new_count) {
  Entry& e = counts_.EntryAt(handle).value;
  e.count = new_count;
  // Fresh seq mirrors the old multimap erase + emplace-at-upper-bound:
  // among equal counts the earliest re-inserted entry is the victim.
  e.seq = next_seq_++;
  by_count_.Update(e.heap_pos);
}

int64_t SpaceSaving::Observe(Key key) {
  ++n_;
  uint32_t h = counts_.FindHandle(key);
  if (h != FlatMap<Entry>::kNoHandle) {
    Entry& e = counts_.EntryAt(h).value;
    Bump(h, e.count == kSaturated ? kSaturated : e.count + 1);
    return e.count;
  }
  if (counts_.size() < capacity_) {
    auto [nh, inserted] = counts_.TryEmplaceHandle(key);
    assert(inserted);
    Entry& e = counts_.EntryAt(nh).value;
    e.count = 1;
    e.error = 0;
    e.seq = next_seq_++;
    by_count_.Push(nh);
    return 1;
  }
  // Replace the minimum-count entry; inherit its count as error.
  uint32_t victim = by_count_.MinHandle();
  Key victim_key = counts_.EntryAt(victim).key;
  uint32_t min_count = counts_.EntryAt(victim).value.count;
  by_count_.Pop();
  counts_.Erase(victim_key);
  auto [nh, inserted] = counts_.TryEmplaceHandle(key);
  assert(inserted);
  Entry& e = counts_.EntryAt(nh).value;
  e.count = min_count + 1;
  e.error = min_count;
  e.seq = next_seq_++;
  by_count_.Push(nh);
  return e.count;
}

int64_t SpaceSaving::EstimatedCount(Key key) const {
  const Entry* e = counts_.Find(key);
  return e == nullptr ? 0 : e->count;
}

void SpaceSaving::ResetKey(Key key) {
  uint32_t h = counts_.FindHandle(key);
  if (h != FlatMap<Entry>::kNoHandle) {
    counts_.EntryAt(h).value.error = 0;
    Bump(h, 0);
  }
}

int64_t SpaceSaving::ErrorBound(Key key) const {
  const Entry* e = counts_.Find(key);
  return e == nullptr ? 0 : e->error;
}

}  // namespace joinopt
