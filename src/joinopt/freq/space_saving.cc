#include "joinopt/freq/space_saving.h"

#include <cassert>

namespace joinopt {

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  assert(capacity > 0);
}

void SpaceSaving::Bump(std::unordered_map<Key, Entry>::iterator it,
                       int64_t new_count) {
  by_count_.erase(it->second.order_it);
  it->second.count = new_count;
  it->second.order_it = by_count_.emplace(new_count, it->first);
}

int64_t SpaceSaving::Observe(Key key) {
  ++n_;
  auto it = counts_.find(key);
  if (it != counts_.end()) {
    Bump(it, it->second.count + 1);
    return it->second.count;
  }
  if (counts_.size() < capacity_) {
    Entry e{1, 0, {}};
    auto [ins, ok] = counts_.emplace(key, e);
    assert(ok);
    ins->second.order_it = by_count_.emplace(1, key);
    return 1;
  }
  // Replace the minimum-count entry; inherit its count as error.
  auto min_it = by_count_.begin();
  Key victim = min_it->second;
  int64_t min_count = min_it->first;
  by_count_.erase(min_it);
  counts_.erase(victim);
  Entry e{min_count + 1, min_count, {}};
  auto [ins, ok] = counts_.emplace(key, e);
  assert(ok);
  ins->second.order_it = by_count_.emplace(min_count + 1, key);
  return min_count + 1;
}

int64_t SpaceSaving::EstimatedCount(Key key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second.count;
}

void SpaceSaving::ResetKey(Key key) {
  auto it = counts_.find(key);
  if (it != counts_.end()) {
    it->second.error = 0;
    Bump(it, 0);
  }
}

int64_t SpaceSaving::ErrorBound(Key key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second.error;
}

}  // namespace joinopt
