#include "joinopt/net/socket.h"

#include "joinopt/net/net_fault.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

namespace joinopt {

namespace {

constexpr char kDeadlinePrefix[] = "deadline exceeded";

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status DeadlineError(const char* op) {
  return Status::Aborted(std::string(kDeadlinePrefix) + " in " + op);
}

/// Remaining poll budget in ms, or -1 (infinite) when no deadline was set.
/// Returns 0 when the deadline already passed.
int RemainingMs(double deadline_abs) {
  if (deadline_abs <= 0) return -1;
  double left = deadline_abs - MonotonicSeconds();
  if (left <= 0) return 0;
  double ms = left * 1e3;
  return ms > 2147483000.0 ? 2147483000 : static_cast<int>(ms) + 1;
}

double AbsDeadline(double deadline_sec) {
  return deadline_sec > 0 ? MonotonicSeconds() + deadline_sec : 0.0;
}

Status SetNonBlocking(int fd, bool enable) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoToStatus(errno, "fcntl");
  flags = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, flags) < 0) return ErrnoToStatus(errno, "fcntl");
  return Status::OK();
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    NetFaultInjector& nf = NetFaultInjector::Instance();
    if (nf.tracking()) nf.OnClose(fd_);
    ::close(fd_);
  }
  fd_ = -1;
}

Status ErrnoToStatus(int err, const char* op) {
  // All transport-level failures are kAborted: the retriable class the
  // backoff + failover loop consumes. The message keeps the errno name so
  // operators can tell ECONNREFUSED (server down) from EPIPE (died
  // mid-write) in logs, while the recovery machinery treats them the same.
  return Status::Aborted(std::string(op) + ": " + ::strerror(err));
}

bool IsDeadlineExceeded(const Status& status) {
  return status.code() == StatusCode::kAborted &&
         status.message().rfind(kDeadlinePrefix, 0) == 0;
}

bool IsTransportError(const Status& status) {
  return status.code() == StatusCode::kAborted;
}

namespace {

/// Resolves `host` to IPv4 addresses. Numeric addresses never touch the
/// resolver; names go through getaddrinfo, retrying EAI_AGAIN (transient
/// resolver overload / DNS timeout) with a short backoff while the
/// deadline budget lasts. All failures are kAborted: an unresolvable name
/// is a transport-class failure the replica-failover loop should rotate
/// past, not a programming error.
StatusOr<std::vector<in_addr>> ResolveIPv4(const std::string& host,
                                           double deadline_abs) {
  in_addr numeric{};
  if (::inet_pton(AF_INET, host.c_str(), &numeric) == 1) {
    return std::vector<in_addr>{numeric};
  }

  constexpr double kResolveRetryBackoff = 20e-3;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  int rc;
  for (;;) {
    addrinfo* res = nullptr;
    rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
    if (rc == 0) {
      std::vector<in_addr> addrs;
      for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        if (ai->ai_family != AF_INET) continue;
        addrs.push_back(
            reinterpret_cast<sockaddr_in*>(ai->ai_addr)->sin_addr);
      }
      ::freeaddrinfo(res);
      if (addrs.empty()) {
        return Status::Aborted("resolve: no IPv4 address for " + host);
      }
      return addrs;
    }
    if (res != nullptr) ::freeaddrinfo(res);
    bool transient = rc == EAI_AGAIN;
    if (!transient) break;
    // Retry only while enough budget remains to also attempt the connect.
    int left_ms = RemainingMs(deadline_abs);
    if (left_ms >= 0 && left_ms < static_cast<int>(kResolveRetryBackoff * 2e3)) {
      break;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kResolveRetryBackoff));
  }
  return Status::Aborted(std::string("resolve: ") + ::gai_strerror(rc) +
                         " for " + host);
}

/// Deadline-bounded non-blocking connect to one resolved address.
StatusOr<UniqueFd> ConnectOne(const in_addr& ip, uint16_t port,
                              double deadline_abs) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoToStatus(errno, "socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = ip;

  // Non-blocking connect so the deadline applies to the handshake too
  // (a SYN black hole otherwise blocks for the kernel's ~2 min default).
  JOINOPT_RETURN_NOT_OK(SetNonBlocking(fd.get(), true));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) return ErrnoToStatus(errno, "connect");
    pollfd pfd{fd.get(), POLLOUT, 0};
    int rc = ::poll(&pfd, 1, RemainingMs(deadline_abs));
    if (rc < 0) return ErrnoToStatus(errno, "poll(connect)");
    if (rc == 0) return DeadlineError("connect");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return ErrnoToStatus(errno, "getsockopt");
    }
    if (err != 0) return ErrnoToStatus(err, "connect");
  }
  JOINOPT_RETURN_NOT_OK(SetNonBlocking(fd.get(), false));

  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

StatusOr<UniqueFd> TcpConnect(const std::string& host, uint16_t port,
                              double deadline_sec) {
  // Injected-partition seam: a dial between two declared endpoints with a
  // blocked direction fails before touching the kernel (a dropped SYN
  // would otherwise burn the whole deadline for real).
  NetFaultInjector& nf = NetFaultInjector::Instance();
  if (nf.faults_active()) {
    JOINOPT_RETURN_NOT_OK(nf.CheckConnect(port));
  }
  double deadline_abs = AbsDeadline(deadline_sec);
  JOINOPT_ASSIGN_OR_RETURN(std::vector<in_addr> addrs,
                           ResolveIPv4(host, deadline_abs));
  Status last = Status::Aborted("connect: no addresses tried");
  for (const in_addr& ip : addrs) {
    auto fd = ConnectOne(ip, port, deadline_abs);
    if (fd.ok()) {
      if (nf.tracking()) nf.OnConnected(fd->get(), port);
      return fd;
    }
    last = fd.status();
    // Names can map to several addresses; fall through to the next one
    // while budget remains, but a spent deadline ends the whole dial.
    if (IsDeadlineExceeded(last)) break;
  }
  return last;
}

StatusOr<UniqueFd> TcpListen(const std::string& host, uint16_t port,
                             int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoToStatus(errno, "socket");

  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoToStatus(errno, "bind");
  }
  if (::listen(fd.get(), backlog) < 0) {
    return ErrnoToStatus(errno, "listen");
  }
  return fd;
}

StatusOr<uint16_t> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoToStatus(errno, "getsockname");
  }
  return ntohs(addr.sin_port);
}

StatusOr<bool> WaitReadable(int fd, double deadline_sec) {
  pollfd pfd{fd, POLLIN, 0};
  int timeout_ms =
      deadline_sec <= 0 ? -1
                        : static_cast<int>(deadline_sec * 1e3) + 1;
  int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return false;
    return ErrnoToStatus(errno, "poll");
  }
  return rc > 0;
}

Status SendAll(int fd, const void* data, size_t len, double deadline_sec) {
  {
    // Established-connection half of the injected partition: bytes leaving
    // on a blocked direction would vanish, so surface the timeout now.
    NetFaultInjector& nf = NetFaultInjector::Instance();
    if (nf.faults_active()) JOINOPT_RETURN_NOT_OK(nf.CheckSend(fd));
  }
  const char* p = static_cast<const char*>(data);
  double deadline_abs = AbsDeadline(deadline_sec);
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that died mid-batch must surface as EPIPE (→
    // kAborted → failover), not kill the process with SIGPIPE.
    ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      return ErrnoToStatus(errno, "send");
    }
    pollfd pfd{fd, POLLOUT, 0};
    int rc = ::poll(&pfd, 1, RemainingMs(deadline_abs));
    if (rc < 0 && errno != EINTR) return ErrnoToStatus(errno, "poll(send)");
    if (rc == 0) return DeadlineError("send");
  }
  return Status::OK();
}

Status RecvAll(int fd, void* data, size_t len, double deadline_sec) {
  char* p = static_cast<char*>(data);
  double deadline_abs = AbsDeadline(deadline_sec);
  size_t got = 0;
  while (got < len) {
    pollfd pfd{fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, RemainingMs(deadline_abs));
    if (rc < 0 && errno != EINTR) return ErrnoToStatus(errno, "poll(recv)");
    if (rc == 0) return DeadlineError("recv");
    if (rc < 0) continue;  // EINTR: retry with the remaining budget
    ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n == 0) {
      // Peer closed mid-message: a half frame is a connection failure.
      return Status::Aborted("recv: connection closed by peer");
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;
      }
      return ErrnoToStatus(errno, "recv");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SendFrame(int fd, MsgType type, uint32_t seq, std::string_view body,
                 double deadline_sec, size_t max_frame_bytes,
                 uint8_t version) {
  JOINOPT_ASSIGN_OR_RETURN(
      std::string frame, BuildFrame(type, seq, body, max_frame_bytes,
                                    version));
  return SendAll(fd, frame.data(), frame.size(), deadline_sec);
}

StatusOr<RecvdFrame> RecvFrame(int fd, double deadline_sec,
                               size_t max_frame_bytes) {
  // The deadline covers header + body together: one budget per message.
  double deadline_abs = AbsDeadline(deadline_sec);
  double budget = deadline_abs > 0 ? deadline_abs - MonotonicSeconds() : 0.0;
  if (deadline_abs > 0 && budget <= 0) return DeadlineError("recv");

  char header_buf[kFrameHeaderBytes];
  JOINOPT_RETURN_NOT_OK(
      RecvAll(fd, header_buf, sizeof(header_buf), budget));
  JOINOPT_ASSIGN_OR_RETURN(
      FrameHeader header,
      ParseFrameHeader(std::string_view(header_buf, sizeof(header_buf)),
                       max_frame_bytes));
  RecvdFrame out;
  out.header = header;
  out.body.resize(header.body_len);
  if (header.body_len > 0) {
    budget = deadline_abs > 0 ? deadline_abs - MonotonicSeconds() : 0.0;
    if (deadline_abs > 0 && budget <= 0) return DeadlineError("recv");
    JOINOPT_RETURN_NOT_OK(
        RecvAll(fd, out.body.data(), out.body.size(), budget));
  }
  return out;
}

}  // namespace joinopt
