#include "joinopt/net/frame.h"

#include <cstring>

namespace joinopt {

namespace {

// A string length must fit in the frame it arrived in; anything larger is
// a corrupt or hostile length field.
Status BadFrame(const char* what) {
  return Status::InvalidArgument(std::string("wire: ") + what);
}

}  // namespace

const char* MsgTypeToString(MsgType t) {
  switch (t) {
    case MsgType::kFetchReq: return "FetchReq";
    case MsgType::kFetchResp: return "FetchResp";
    case MsgType::kExecuteReq: return "ExecuteReq";
    case MsgType::kExecuteResp: return "ExecuteResp";
    case MsgType::kBatchReq: return "BatchReq";
    case MsgType::kBatchResp: return "BatchResp";
    case MsgType::kStatReq: return "StatReq";
    case MsgType::kStatResp: return "StatResp";
    case MsgType::kOwnerReq: return "OwnerReq";
    case MsgType::kOwnerResp: return "OwnerResp";
    case MsgType::kPutReq: return "PutReq";
    case MsgType::kPutResp: return "PutResp";
    case MsgType::kSubscribeReq: return "SubscribeReq";
    case MsgType::kSubscribeResp: return "SubscribeResp";
    case MsgType::kNotifyEvt: return "NotifyEvt";
    case MsgType::kRegionSummaryReq: return "RegionSummaryReq";
    case MsgType::kRegionSummaryResp: return "RegionSummaryResp";
    case MsgType::kRegionSyncReq: return "RegionSyncReq";
    case MsgType::kRegionSyncResp: return "RegionSyncResp";
  }
  return "Unknown";
}

MsgType ResponseTypeFor(MsgType req) {
  switch (req) {
    case MsgType::kFetchReq:
    case MsgType::kExecuteReq:
    case MsgType::kBatchReq:
    case MsgType::kStatReq:
    case MsgType::kOwnerReq:
    case MsgType::kPutReq:
    case MsgType::kSubscribeReq:
    case MsgType::kRegionSummaryReq:
    case MsgType::kRegionSyncReq:
      return static_cast<MsgType>(static_cast<uint8_t>(req) + 1);
    default:
      // kNotifyEvt is one-way; everything else is not a request.
      return static_cast<MsgType>(0);
  }
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v & 0xff));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

StatusOr<uint8_t> WireReader::GetU8() {
  if (remaining() < 1) return BadFrame("truncated u8");
  return static_cast<uint8_t>(buf_[pos_++]);
}

StatusOr<uint16_t> WireReader::GetU16() {
  if (remaining() < 2) return BadFrame("truncated u16");
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<uint16_t>(
        v | static_cast<uint16_t>(static_cast<uint8_t>(buf_[pos_ + i]))
                << (8 * i));
  }
  pos_ += 2;
  return v;
}

StatusOr<uint32_t> WireReader::GetU32() {
  if (remaining() < 4) return BadFrame("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> WireReader::GetU64() {
  if (remaining() < 8) return BadFrame("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(buf_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

StatusOr<double> WireReader::GetF64() {
  JOINOPT_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

StatusOr<std::string> WireReader::GetString() {
  JOINOPT_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (remaining() < len) return BadFrame("string length exceeds frame");
  std::string s(buf_.substr(pos_, len));
  pos_ += len;
  return s;
}

void AppendFrameHeader(std::string* out, MsgType type, uint32_t seq,
                       uint32_t body_len, uint8_t version) {
  PutU32(out, kFrameMagic);
  PutU8(out, version);
  PutU8(out, static_cast<uint8_t>(type));
  PutU16(out, 0);  // flags
  PutU32(out, seq);
  PutU32(out, body_len);
}

StatusOr<FrameHeader> ParseFrameHeader(std::string_view buf,
                                       size_t max_frame_bytes) {
  if (buf.size() != kFrameHeaderBytes) {
    return BadFrame("header must be exactly 16 bytes");
  }
  WireReader r(buf);
  JOINOPT_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kFrameMagic) return BadFrame("bad magic");
  FrameHeader h;
  JOINOPT_ASSIGN_OR_RETURN(h.version, r.GetU8());
  JOINOPT_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  h.type = static_cast<MsgType>(type);
  JOINOPT_ASSIGN_OR_RETURN(h.flags, r.GetU16());
  if (h.flags != 0) return BadFrame("reserved flags set");
  JOINOPT_ASSIGN_OR_RETURN(h.seq, r.GetU32());
  JOINOPT_ASSIGN_OR_RETURN(h.body_len, r.GetU32());
  if (h.body_len > max_frame_bytes) {
    return Status::ResourceExhausted("wire: frame body exceeds limit");
  }
  return h;
}

StatusOr<std::string> BuildFrame(MsgType type, uint32_t seq,
                                 std::string_view body,
                                 size_t max_frame_bytes, uint8_t version) {
  if (body.size() > max_frame_bytes) {
    return Status::ResourceExhausted("wire: frame body exceeds limit");
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + body.size());
  AppendFrameHeader(&out, type, seq, static_cast<uint32_t>(body.size()),
                    version);
  out.append(body.data(), body.size());
  return out;
}

std::string EncodeKeyRequest(Key key) {
  std::string out;
  PutU64(&out, key);
  return out;
}

StatusOr<Key> DecodeKeyRequest(std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(Key key, r.GetU64());
  if (!r.Done()) return BadFrame("trailing bytes in key request");
  return key;
}

std::string EncodeExecuteRequest(Key key, std::string_view params) {
  std::string out;
  PutU64(&out, key);
  PutString(&out, params);
  return out;
}

StatusOr<ExecuteRequest> DecodeExecuteRequest(std::string_view body) {
  WireReader r(body);
  ExecuteRequest req;
  JOINOPT_ASSIGN_OR_RETURN(req.key, r.GetU64());
  JOINOPT_ASSIGN_OR_RETURN(req.params, r.GetString());
  if (!r.Done()) return BadFrame("trailing bytes in execute request");
  return req;
}

std::string EncodeBatchRequest(
    const std::vector<std::pair<Key, std::string>>& items) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(items.size()));
  for (const auto& [key, params] : items) {
    PutU64(&out, key);
    PutString(&out, params);
  }
  return out;
}

StatusOr<std::vector<std::pair<Key, std::string>>> DecodeBatchRequest(
    std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  // Each item is at least 12 bytes (key + empty string); a count implying
  // more items than bytes is a corrupt frame, not an allocation request.
  if (static_cast<size_t>(count) * 12 > r.remaining()) {
    return BadFrame("batch count exceeds frame");
  }
  std::vector<std::pair<Key, std::string>> items;
  items.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    JOINOPT_ASSIGN_OR_RETURN(Key key, r.GetU64());
    JOINOPT_ASSIGN_OR_RETURN(std::string params, r.GetString());
    items.emplace_back(key, std::move(params));
  }
  if (!r.Done()) return BadFrame("trailing bytes in batch request");
  return items;
}

std::string EncodeTaggedBatchRequest(
    uint64_t client_id, uint64_t batch_seq,
    const std::vector<std::pair<Key, std::string>>& items) {
  std::string out;
  PutU64(&out, client_id);
  PutU64(&out, batch_seq);
  out += EncodeBatchRequest(items);
  return out;
}

StatusOr<TaggedBatchRequest> DecodeTaggedBatchRequest(std::string_view body) {
  WireReader r(body);
  TaggedBatchRequest req;
  JOINOPT_ASSIGN_OR_RETURN(req.client_id, r.GetU64());
  JOINOPT_ASSIGN_OR_RETURN(req.batch_seq, r.GetU64());
  JOINOPT_ASSIGN_OR_RETURN(req.items, DecodeBatchRequest(body.substr(16)));
  return req;
}

std::string EncodePutRequest(Key key, std::string_view value,
                             uint64_t version_floor) {
  std::string out;
  PutU64(&out, key);
  PutString(&out, value);
  PutU64(&out, version_floor);
  return out;
}

StatusOr<PutRequest> DecodePutRequest(std::string_view body) {
  WireReader r(body);
  PutRequest req;
  JOINOPT_ASSIGN_OR_RETURN(req.key, r.GetU64());
  JOINOPT_ASSIGN_OR_RETURN(req.value, r.GetString());
  JOINOPT_ASSIGN_OR_RETURN(req.version_floor, r.GetU64());
  if (!r.Done()) return BadFrame("trailing bytes in put request");
  return req;
}

std::string EncodeSubscribeRequest(NodeId subscriber) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(subscriber));
  return out;
}

StatusOr<NodeId> DecodeSubscribeRequest(std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(uint32_t node, r.GetU32());
  if (!r.Done()) return BadFrame("trailing bytes in subscribe request");
  return static_cast<NodeId>(node);
}

std::string EncodeSubscribeResponse(const std::vector<RegionEpoch>& regions) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(regions.size()));
  for (const RegionEpoch& re : regions) {
    PutU32(&out, static_cast<uint32_t>(re.region));
    PutU64(&out, re.epoch);
    PutU64(&out, re.seq);
  }
  return out;
}

StatusOr<std::vector<RegionEpoch>> DecodeSubscribeResponse(
    std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  // Each entry is exactly 20 bytes; a lying count is a corrupt frame.
  if (static_cast<size_t>(count) * 20 > r.remaining()) {
    return BadFrame("region count exceeds frame");
  }
  std::vector<RegionEpoch> regions;
  regions.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RegionEpoch re;
    JOINOPT_ASSIGN_OR_RETURN(uint32_t region, r.GetU32());
    re.region = static_cast<int32_t>(region);
    JOINOPT_ASSIGN_OR_RETURN(re.epoch, r.GetU64());
    JOINOPT_ASSIGN_OR_RETURN(re.seq, r.GetU64());
    regions.push_back(re);
  }
  if (!r.Done()) return BadFrame("trailing bytes in subscribe response");
  return regions;
}

std::string EncodeNotifyEvent(const UpdateEvent& event) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(event.region));
  PutU64(&out, event.epoch);
  PutU64(&out, event.seq);
  PutU64(&out, event.key);
  PutU64(&out, event.version);
  return out;
}

StatusOr<UpdateEvent> DecodeNotifyEvent(std::string_view body) {
  WireReader r(body);
  UpdateEvent event;
  JOINOPT_ASSIGN_OR_RETURN(uint32_t region, r.GetU32());
  event.region = static_cast<int32_t>(region);
  JOINOPT_ASSIGN_OR_RETURN(event.epoch, r.GetU64());
  JOINOPT_ASSIGN_OR_RETURN(event.seq, r.GetU64());
  JOINOPT_ASSIGN_OR_RETURN(event.key, r.GetU64());
  JOINOPT_ASSIGN_OR_RETURN(event.version, r.GetU64());
  if (!r.Done()) return BadFrame("trailing bytes in notify event");
  return event;
}

void PutStatus(std::string* out, const Status& status) {
  PutU8(out, static_cast<uint8_t>(status.code()));
  PutString(out, status.message());
}

Status GetStatus(WireReader& r, Status* out) {
  JOINOPT_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  JOINOPT_ASSIGN_OR_RETURN(std::string message, r.GetString());
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kAborted)) {
    // An OK code in an error slot, or a code from a newer peer: surface as
    // internal rather than minting a bogus success.
    *out = Status::Internal("wire: unrepresentable status code (" +
                            std::move(message) + ")");
  } else {
    *out = Status(static_cast<StatusCode>(code), std::move(message));
  }
  return Status::OK();
}

namespace {

constexpr uint8_t kTagError = 0;
constexpr uint8_t kTagOk = 1;

StatusOr<bool> GetResultTag(WireReader& r) {
  JOINOPT_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  if (tag != kTagOk && tag != kTagError) return BadFrame("bad result tag");
  return tag == kTagOk;
}

}  // namespace

std::string EncodeFetchResponse(const StatusOr<DataService::Fetched>& result) {
  std::string out;
  if (result.ok()) {
    PutU8(&out, kTagOk);
    PutU64(&out, result->version);
    PutString(&out, result->value);
  } else {
    PutU8(&out, kTagError);
    PutStatus(&out, result.status());
  }
  return out;
}

StatusOr<StatusOr<DataService::Fetched>> DecodeFetchResponse(
    std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(bool ok, GetResultTag(r));
  StatusOr<DataService::Fetched> result = Status::Internal("uninitialized");
  if (ok) {
    DataService::Fetched fetched;
    JOINOPT_ASSIGN_OR_RETURN(fetched.version, r.GetU64());
    JOINOPT_ASSIGN_OR_RETURN(fetched.value, r.GetString());
    result = std::move(fetched);
  } else {
    Status status;
    JOINOPT_RETURN_NOT_OK(GetStatus(r, &status));
    result = std::move(status);
  }
  if (!r.Done()) return BadFrame("trailing bytes in fetch response");
  return result;
}

std::string EncodeExecuteResponse(const StatusOr<std::string>& result) {
  std::string out;
  if (result.ok()) {
    PutU8(&out, kTagOk);
    PutString(&out, *result);
  } else {
    PutU8(&out, kTagError);
    PutStatus(&out, result.status());
  }
  return out;
}

namespace {

/// Decodes one Execute-style result without the trailing-bytes check (the
/// batch decoder reads many in sequence).
StatusOr<StatusOr<std::string>> GetExecuteResult(WireReader& r) {
  JOINOPT_ASSIGN_OR_RETURN(bool ok, GetResultTag(r));
  if (ok) {
    JOINOPT_ASSIGN_OR_RETURN(std::string value, r.GetString());
    return StatusOr<std::string>(std::move(value));
  }
  Status status;
  JOINOPT_RETURN_NOT_OK(GetStatus(r, &status));
  return StatusOr<std::string>(std::move(status));
}

}  // namespace

StatusOr<StatusOr<std::string>> DecodeExecuteResponse(std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(StatusOr<std::string> result, GetExecuteResult(r));
  if (!r.Done()) return BadFrame("trailing bytes in execute response");
  return result;
}

std::string EncodeBatchResponse(
    const std::vector<StatusOr<std::string>>& results) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(results.size()));
  for (const auto& result : results) {
    if (result.ok()) {
      PutU8(&out, kTagOk);
      PutString(&out, *result);
    } else {
      PutU8(&out, kTagError);
      PutStatus(&out, result.status());
    }
  }
  return out;
}

StatusOr<std::vector<StatusOr<std::string>>> DecodeBatchResponse(
    std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  // At least 5 bytes per result (tag + empty string length).
  if (static_cast<size_t>(count) * 5 > r.remaining()) {
    return BadFrame("batch result count exceeds frame");
  }
  std::vector<StatusOr<std::string>> results;
  results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    JOINOPT_ASSIGN_OR_RETURN(StatusOr<std::string> result,
                             GetExecuteResult(r));
    results.push_back(std::move(result));
  }
  if (!r.Done()) return BadFrame("trailing bytes in batch response");
  return results;
}

std::string EncodeStatResponse(const StatusOr<DataService::ItemStat>& result) {
  std::string out;
  if (result.ok()) {
    PutU8(&out, kTagOk);
    PutF64(&out, result->size_bytes);
    PutU64(&out, result->version);
  } else {
    PutU8(&out, kTagError);
    PutStatus(&out, result.status());
  }
  return out;
}

StatusOr<StatusOr<DataService::ItemStat>> DecodeStatResponse(
    std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(bool ok, GetResultTag(r));
  StatusOr<DataService::ItemStat> result = Status::Internal("uninitialized");
  if (ok) {
    DataService::ItemStat stat;
    JOINOPT_ASSIGN_OR_RETURN(stat.size_bytes, r.GetF64());
    JOINOPT_ASSIGN_OR_RETURN(stat.version, r.GetU64());
    result = stat;
  } else {
    Status status;
    JOINOPT_RETURN_NOT_OK(GetStatus(r, &status));
    result = std::move(status);
  }
  if (!r.Done()) return BadFrame("trailing bytes in stat response");
  return result;
}

std::string EncodeOwnerResponse(NodeId node) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(node));
  return out;
}

StatusOr<NodeId> DecodeOwnerResponse(std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(uint32_t node, r.GetU32());
  if (!r.Done()) return BadFrame("trailing bytes in owner response");
  return static_cast<NodeId>(node);
}

std::string EncodePutResponse(const StatusOr<uint64_t>& new_version) {
  std::string out;
  if (new_version.ok()) {
    PutU8(&out, kTagOk);
    PutU64(&out, *new_version);
  } else {
    PutU8(&out, kTagError);
    PutStatus(&out, new_version.status());
  }
  return out;
}

StatusOr<StatusOr<uint64_t>> DecodePutResponse(std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(bool ok, GetResultTag(r));
  StatusOr<uint64_t> result = Status::Internal("uninitialized");
  if (ok) {
    JOINOPT_ASSIGN_OR_RETURN(uint64_t version, r.GetU64());
    result = version;
  } else {
    Status status;
    JOINOPT_RETURN_NOT_OK(GetStatus(r, &status));
    result = std::move(status);
  }
  if (!r.Done()) return BadFrame("trailing bytes in put response");
  return result;
}

namespace {

void PutRegionRecords(std::string* out,
                      const std::vector<RegionRecord>& records) {
  PutU32(out, static_cast<uint32_t>(records.size()));
  for (const RegionRecord& rec : records) {
    PutU64(out, rec.key);
    PutU64(out, rec.version);
    PutString(out, rec.value);
  }
}

StatusOr<std::vector<RegionRecord>> GetRegionRecords(WireReader& r) {
  JOINOPT_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  // Each record is at least 20 bytes (key + version + empty string).
  if (static_cast<size_t>(count) * 20 > r.remaining()) {
    return BadFrame("record count exceeds frame");
  }
  std::vector<RegionRecord> records;
  records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RegionRecord rec;
    JOINOPT_ASSIGN_OR_RETURN(rec.key, r.GetU64());
    JOINOPT_ASSIGN_OR_RETURN(rec.version, r.GetU64());
    JOINOPT_ASSIGN_OR_RETURN(rec.value, r.GetString());
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace

std::string EncodeRegionSummaryRequest(int32_t region) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(region));
  return out;
}

StatusOr<int32_t> DecodeRegionSummaryRequest(std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(uint32_t region, r.GetU32());
  if (!r.Done()) return BadFrame("trailing bytes in summary request");
  return static_cast<int32_t>(region);
}

std::string EncodeRegionSummaryResponse(
    const StatusOr<RegionSummary>& result) {
  std::string out;
  if (result.ok()) {
    PutU8(&out, kTagOk);
    PutU32(&out, static_cast<uint32_t>(result->region));
    PutU64(&out, result->epoch);
    PutU64(&out, result->seq);
    PutU64(&out, result->count);
    PutU64(&out, result->checksum);
  } else {
    PutU8(&out, kTagError);
    PutStatus(&out, result.status());
  }
  return out;
}

StatusOr<StatusOr<RegionSummary>> DecodeRegionSummaryResponse(
    std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(bool ok, GetResultTag(r));
  StatusOr<RegionSummary> result = Status::Internal("uninitialized");
  if (ok) {
    RegionSummary s;
    JOINOPT_ASSIGN_OR_RETURN(uint32_t region, r.GetU32());
    s.region = static_cast<int32_t>(region);
    JOINOPT_ASSIGN_OR_RETURN(s.epoch, r.GetU64());
    JOINOPT_ASSIGN_OR_RETURN(s.seq, r.GetU64());
    JOINOPT_ASSIGN_OR_RETURN(s.count, r.GetU64());
    JOINOPT_ASSIGN_OR_RETURN(s.checksum, r.GetU64());
    result = s;
  } else {
    Status status;
    JOINOPT_RETURN_NOT_OK(GetStatus(r, &status));
    result = std::move(status);
  }
  if (!r.Done()) return BadFrame("trailing bytes in summary response");
  return result;
}

std::string EncodeRegionSyncRequest(
    int32_t region, const std::vector<RegionRecord>& records) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(region));
  PutRegionRecords(&out, records);
  return out;
}

StatusOr<RegionSyncRequest> DecodeRegionSyncRequest(std::string_view body) {
  WireReader r(body);
  RegionSyncRequest req;
  JOINOPT_ASSIGN_OR_RETURN(uint32_t region, r.GetU32());
  req.region = static_cast<int32_t>(region);
  JOINOPT_ASSIGN_OR_RETURN(req.records, GetRegionRecords(r));
  if (!r.Done()) return BadFrame("trailing bytes in sync request");
  return req;
}

std::string EncodeRegionSyncResponse(
    const StatusOr<std::vector<RegionRecord>>& result) {
  std::string out;
  if (result.ok()) {
    PutU8(&out, kTagOk);
    PutRegionRecords(&out, *result);
  } else {
    PutU8(&out, kTagError);
    PutStatus(&out, result.status());
  }
  return out;
}

StatusOr<StatusOr<std::vector<RegionRecord>>> DecodeRegionSyncResponse(
    std::string_view body) {
  WireReader r(body);
  JOINOPT_ASSIGN_OR_RETURN(bool ok, GetResultTag(r));
  StatusOr<std::vector<RegionRecord>> result =
      Status::Internal("uninitialized");
  if (ok) {
    JOINOPT_ASSIGN_OR_RETURN(result, GetRegionRecords(r));
  } else {
    Status status;
    JOINOPT_RETURN_NOT_OK(GetStatus(r, &status));
    result = std::move(status);
  }
  if (!r.Done()) return BadFrame("trailing bytes in sync response");
  return result;
}

}  // namespace joinopt
