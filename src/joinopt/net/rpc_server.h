// RpcServer: the data-node side of the RPC transport. Wraps any in-process
// DataService (LocalDataService, LogStoreDataService, a LatencyPaddedService
// stack, ...) behind a TCP listener speaking the net/frame.h protocol.
//
// Two serving backends share one frontend (and one VerbDispatcher, so verb
// semantics cannot drift):
//
//  * kThreadPerConnection (the original, still the default): one acceptor
//    thread polls the listen socket; each accepted connection gets a
//    dedicated thread running a synchronous read-dispatch-write loop (one
//    request in flight per connection — concurrency comes from the client
//    opening pooled connections). Simple, but threads scale with
//    connections, and a slow Notify subscriber is dropped on queue
//    overflow for a full reconnect-and-re-sync.
//
//  * kReactor (net/reactor/, DESIGN.md §13): a fixed set of epoll IO
//    threads with non-blocking sockets, incremental frame parsing, a
//    bounded worker pool for verb execution, and per-connection bounded
//    write queues. Thread count is flat in connection count; clients may
//    pipeline requests (responses correlate by frame seq); slow Notify
//    subscribers are throttled with per-key event coalescing instead of
//    dropped.
//
// The wire protocol is identical on both: callers (ClusterDataNode,
// ClusterDeployment, the loopback harness, every test) run unmodified on
// either backend. Select per-server with RpcServerOptions::backend or
// process-wide with JOINOPT_RPC_BACKEND=reactor|threaded (options win).
//
// Stop() tears everything down and joins all threads; it is safe to call
// concurrently with in-flight requests and from the destructor.
//
// The UDF cannot travel over the wire: like HBase coprocessors, the
// function is *registered* server-side at construction, and Execute /
// ExecuteBatch requests name only (key, params). The client's fn argument
// is ignored (see DataService::Execute's contract in engine/async_api.h).
//
// Wire v2 (see frame.h): the server additionally speaks Put, the
// Subscribe/Notify invalidation stream, and tagged ExecuteBatch with
// server-side replay dedup — but only when the wrapped service implements
// WritableDataService (discovered by dynamic_cast at construction). v1
// clients are still served for the five original verbs, with responses
// stamped v1 so old readers parse them.
#ifndef JOINOPT_NET_RPC_SERVER_H_
#define JOINOPT_NET_RPC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/status.h"
#include "joinopt/common/sync.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/net/socket.h"
#include "joinopt/net/update_hub.h"
#include "joinopt/net/verb_dispatcher.h"

namespace joinopt {

class ReactorCore;

enum class RpcBackend {
  /// Resolve from the JOINOPT_RPC_BACKEND environment variable
  /// ("reactor" or "threaded"); falls back to thread-per-connection.
  kDefault,
  kThreadPerConnection,
  kReactor,
};

struct RpcServerOptions {
  /// Bind address. Tests and benches stay on loopback; never expose the
  /// protocol off-host without an authenticating proxy in front.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the chosen port back with port()).
  uint16_t port = 0;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Deadline for writing one response (thread-per-connection backend);
  /// a client that stops draining its socket loses the connection instead
  /// of parking the worker forever. The reactor never blocks on writes —
  /// its equivalent is the write-queue watermark below.
  double send_deadline = 5.0;
  int accept_backlog = 64;
  /// Tagged-batch responses remembered for replay dedup (exactly-once
  /// ExecuteBatch). FIFO-evicted; 0 disables dedup.
  size_t dedup_capacity = 1024;
  /// Pending invalidation events per subscription. Thread-per-connection:
  /// overflow drops the connection (the subscriber must reconnect and
  /// re-sync). Reactor: bound on the per-key-coalesced pending queue; only
  /// a distinct-key flood beyond it drops the stream.
  size_t subscription_queue_capacity = 4096;

  /// Which serving backend runs this server.
  RpcBackend backend = RpcBackend::kDefault;
  // ---- reactor tuning (ignored by the legacy backend) ----
  int reactor_io_threads = 1;
  int reactor_worker_threads = 2;
  size_t reactor_worker_queue = 256;
  /// Per-connection write-queue byte watermarks: reads pause above high,
  /// resume below low (the pipelining / slow-reader backpressure bound).
  size_t reactor_write_high_watermark = 1u << 20;
  size_t reactor_write_low_watermark = 256u << 10;
  /// Outstanding pipelined requests per connection.
  int reactor_max_pipelined_requests = 64;

  /// Logical endpoint id for NetFaultInjector partitions (net/net_fault.h).
  /// -1 (the default) opts out: the server is invisible to injected
  /// faults. The cluster layer sets this to the data node's id.
  int32_t net_identity = -1;
};

struct RpcServerStats {
  int64_t connections_accepted = 0;
  int64_t requests = 0;       ///< well-formed requests dispatched
  int64_t batch_items = 0;    ///< items carried by ExecuteBatch requests
  int64_t protocol_errors = 0;  ///< malformed frames / version mismatches
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t puts = 0;             ///< Put requests served
  int64_t subscriptions = 0;    ///< Subscribe streams established
  int64_t notify_events = 0;    ///< kNotifyEvt frames pushed
  int64_t batch_dedup_hits = 0;  ///< tagged batches answered from cache
  /// Gauge: threads currently dedicated to serving (acceptor + connection
  /// threads, or IO + worker threads). The reactor's headline property is
  /// that this stays flat as connections scale.
  int64_t server_threads = 0;
  int64_t live_connections = 0;  ///< gauge: open connections
  int64_t notify_coalesced = 0;  ///< events superseded in pending queues
  int64_t backpressure_pauses = 0;  ///< reads paused by flow control
};

class RpcServer {
 public:
  /// `inner` and `fn` must outlive the server and be thread-safe: each
  /// connection/worker thread calls them concurrently.
  RpcServer(DataService* inner, UserFn fn, RpcServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens and starts the chosen backend. Fails (address in use,
  /// ...) without leaving threads behind. Serialized against Stop() and
  /// other Start() calls: concurrent double-Start is a FailedPrecondition
  /// for exactly one caller, never two listeners.
  Status Start() JOINOPT_EXCLUDES(lifecycle_mu_);

  /// Stops accepting, severs open connections and joins all threads.
  /// Idempotent.
  void Stop() JOINOPT_EXCLUDES(lifecycle_mu_);

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after a successful Start()).
  uint16_t port() const {
    MutexLock lock(lifecycle_mu_);
    return port_;
  }
  const std::string& host() const { return options_.host; }

  /// The backend actually serving (env var resolved); kDefault before the
  /// first successful Start().
  RpcBackend active_backend() const {
    MutexLock lock(lifecycle_mu_);
    return active_backend_;
  }

  RpcServerStats stats() const;

 private:
  /// Bounded per-subscription event queue (legacy backend); OnUpdateEvent
  /// is called on the writer's thread, Drain on the connection thread.
  class ConnSink;

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Takes over a connection after a kSubscribeReq: registers a sink,
  /// answers with the epoch snapshot, then pushes kNotifyEvt frames until
  /// stop/close/overflow.
  void ServeSubscription(int fd, const FrameHeader& header,
                         const std::string& body);

  DataService* inner_;
  UserFn fn_;
  RpcServerOptions options_;
  mutable RpcAtomicStats stats_;
  VerbDispatcher dispatcher_;

  /// Serializes Start/Stop (held across the whole transition, including
  /// the thread joins in Stop — worker threads never take it).
  mutable Mutex lifecycle_mu_{lock_rank::kServerLifecycle,
                              "RpcServer::lifecycle_mu_"};
  uint16_t port_ JOINOPT_GUARDED_BY(lifecycle_mu_) = 0;
  RpcBackend active_backend_ JOINOPT_GUARDED_BY(lifecycle_mu_) =
      RpcBackend::kDefault;
  /// Fresh instance per reactor Start (a stopped core is not restartable;
  /// ClusterDataNode::Restart reuses this RpcServer object).
  std::unique_ptr<ReactorCore> reactor_;

  // ---- thread-per-connection backend state ----
  /// Written by Start before the acceptor exists and Reset by Stop after
  /// joining it (thread-confined by that protocol, not lock-guarded: the
  /// acceptor reads it without — and must not take — lifecycle_mu_).
  UniqueFd listen_fd_;
  std::thread acceptor_;
  std::atomic<bool> stop_{true};
  std::atomic<bool> running_{false};

  mutable Mutex conns_mu_{lock_rank::kServerConns, "RpcServer::conns_mu_"};
  /// Open connection fds (owned by their threads; registered here so
  /// Stop() can shutdown() them to unblock reads).
  std::vector<int> conn_fds_ JOINOPT_GUARDED_BY(conns_mu_);
  std::vector<std::thread> conn_threads_ JOINOPT_GUARDED_BY(conns_mu_);
};

}  // namespace joinopt

#endif  // JOINOPT_NET_RPC_SERVER_H_
