// RpcServer: the data-node side of the RPC transport. Wraps any in-process
// DataService (LocalDataService, LogStoreDataService, a LatencyPaddedService
// stack, ...) behind a TCP listener speaking the net/frame.h protocol.
//
// Threading model (documented in DESIGN.md §10): one acceptor thread polls
// the listen socket; each accepted connection gets a dedicated worker
// thread running a synchronous read-dispatch-write loop (one request in
// flight per connection — concurrency comes from the client opening pooled
// connections, which keeps the protocol trivially ordered). Stop() closes
// the listener, shuts down every open connection and joins all threads; it
// is safe to call concurrently with in-flight requests and from the
// destructor.
//
// The UDF cannot travel over the wire: like HBase coprocessors, the
// function is *registered* server-side at construction, and Execute /
// ExecuteBatch requests name only (key, params). The client's fn argument
// is ignored (see DataService::Execute's contract in engine/async_api.h).
//
// Wire v2 (see frame.h): the server additionally speaks Put, the
// Subscribe/Notify invalidation stream, and tagged ExecuteBatch with
// server-side replay dedup — but only when the wrapped service implements
// WritableDataService (discovered by dynamic_cast at construction). v1
// clients are still served for the five original verbs, with responses
// stamped v1 so old readers parse them; a subscription takes over its
// connection, which switches from request/response to a one-way kNotifyEvt
// push stream drained by the same connection thread. A subscriber that
// stops draining (its event queue overflows) loses the connection — by
// construction it has missed invalidations, and the reconnect-and-re-sync
// path is the correct recovery, not unbounded buffering.
#ifndef JOINOPT_NET_RPC_SERVER_H_
#define JOINOPT_NET_RPC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/status.h"
#include "joinopt/common/sync.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/net/socket.h"
#include "joinopt/net/update_hub.h"

namespace joinopt {

struct RpcServerOptions {
  /// Bind address. Tests and benches stay on loopback; never expose the
  /// protocol off-host without an authenticating proxy in front.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the chosen port back with port()).
  uint16_t port = 0;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Deadline for writing one response; a client that stops draining its
  /// socket loses the connection instead of parking the worker forever.
  double send_deadline = 5.0;
  int accept_backlog = 64;
  /// Tagged-batch responses remembered for replay dedup (exactly-once
  /// ExecuteBatch). FIFO-evicted; 0 disables dedup.
  size_t dedup_capacity = 1024;
  /// Pending invalidation events per subscription before the connection is
  /// dropped (the subscriber must reconnect and re-sync).
  size_t subscription_queue_capacity = 4096;
};

struct RpcServerStats {
  int64_t connections_accepted = 0;
  int64_t requests = 0;       ///< well-formed requests dispatched
  int64_t batch_items = 0;    ///< items carried by ExecuteBatch requests
  int64_t protocol_errors = 0;  ///< malformed frames / version mismatches
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t puts = 0;             ///< Put requests served
  int64_t subscriptions = 0;    ///< Subscribe streams established
  int64_t notify_events = 0;    ///< kNotifyEvt frames pushed
  int64_t batch_dedup_hits = 0;  ///< tagged batches answered from cache
};

class RpcServer {
 public:
  /// `inner` and `fn` must outlive the server and be thread-safe: each
  /// connection thread calls them concurrently.
  RpcServer(DataService* inner, UserFn fn, RpcServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens and starts the acceptor. Fails (address in use, ...)
  /// without leaving threads behind. Serialized against Stop() and other
  /// Start() calls: concurrent double-Start is a FailedPrecondition for
  /// exactly one caller, never two listeners.
  Status Start() JOINOPT_EXCLUDES(lifecycle_mu_);

  /// Stops accepting, severs open connections and joins all threads.
  /// Idempotent.
  void Stop() JOINOPT_EXCLUDES(lifecycle_mu_);

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after a successful Start()).
  uint16_t port() const {
    MutexLock lock(lifecycle_mu_);
    return port_;
  }
  const std::string& host() const { return options_.host; }

  RpcServerStats stats() const;

 private:
  /// Bounded per-subscription event queue; OnUpdateEvent is called on the
  /// writer's thread, Drain on the subscription's connection thread.
  class ConnSink;
  /// Remembered tagged-batch responses keyed by (client_id, batch_seq).
  struct DedupEntry {
    bool done = false;
    std::string response;
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Handles one decoded request; returns the response (type, body).
  std::pair<MsgType, std::string> Dispatch(const FrameHeader& header,
                                           const std::string& body);
  /// Takes over a connection after a kSubscribeReq: registers a sink,
  /// answers with the epoch snapshot, then pushes kNotifyEvt frames until
  /// stop/close/overflow.
  void ServeSubscription(int fd, const FrameHeader& header,
                         const std::string& body);
  /// ExecuteBatch with replay dedup; returns the encoded response body.
  std::string DispatchTaggedBatch(const TaggedBatchRequest& req);

  DataService* inner_;
  WritableDataService* writable_ = nullptr;  ///< non-null iff inner is one
  UserFn fn_;
  RpcServerOptions options_;

  /// Serializes Start/Stop (held across the whole transition, including
  /// the thread joins in Stop — worker threads never take it).
  mutable Mutex lifecycle_mu_{lock_rank::kServerLifecycle,
                              "RpcServer::lifecycle_mu_"};
  uint16_t port_ JOINOPT_GUARDED_BY(lifecycle_mu_) = 0;
  /// Written by Start before the acceptor exists and Reset by Stop after
  /// joining it (thread-confined by that protocol, not lock-guarded: the
  /// acceptor reads it without — and must not take — lifecycle_mu_).
  UniqueFd listen_fd_;
  std::thread acceptor_;
  std::atomic<bool> stop_{true};
  std::atomic<bool> running_{false};

  mutable Mutex conns_mu_{lock_rank::kServerConns, "RpcServer::conns_mu_"};
  /// Open connection fds (owned by their threads; registered here so
  /// Stop() can shutdown() them to unblock reads).
  std::vector<int> conn_fds_ JOINOPT_GUARDED_BY(conns_mu_);
  std::vector<std::thread> conn_threads_ JOINOPT_GUARDED_BY(conns_mu_);

  Mutex dedup_mu_{lock_rank::kServerDedup, "RpcServer::dedup_mu_"};
  CondVar dedup_cv_;
  /// DedupEntry contents (done, response) are guarded by dedup_mu_ too;
  /// the nested struct cannot name the enclosing member in an annotation.
  std::map<std::pair<uint64_t, uint64_t>, std::shared_ptr<DedupEntry>>
      dedup_entries_ JOINOPT_GUARDED_BY(dedup_mu_);
  std::deque<std::pair<uint64_t, uint64_t>> dedup_order_
      JOINOPT_GUARDED_BY(dedup_mu_);  // FIFO eviction

  struct AtomicStats {
    std::atomic<int64_t> connections_accepted{0};
    std::atomic<int64_t> requests{0};
    std::atomic<int64_t> batch_items{0};
    std::atomic<int64_t> protocol_errors{0};
    std::atomic<int64_t> bytes_in{0};
    std::atomic<int64_t> bytes_out{0};
    std::atomic<int64_t> puts{0};
    std::atomic<int64_t> subscriptions{0};
    std::atomic<int64_t> notify_events{0};
    std::atomic<int64_t> batch_dedup_hits{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace joinopt

#endif  // JOINOPT_NET_RPC_SERVER_H_
