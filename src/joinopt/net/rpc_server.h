// RpcServer: the data-node side of the RPC transport. Wraps any in-process
// DataService (LocalDataService, LogStoreDataService, a LatencyPaddedService
// stack, ...) behind a TCP listener speaking the net/frame.h protocol.
//
// Threading model (documented in DESIGN.md §10): one acceptor thread polls
// the listen socket; each accepted connection gets a dedicated worker
// thread running a synchronous read-dispatch-write loop (one request in
// flight per connection — concurrency comes from the client opening pooled
// connections, which keeps the protocol trivially ordered). Stop() closes
// the listener, shuts down every open connection and joins all threads; it
// is safe to call concurrently with in-flight requests and from the
// destructor.
//
// The UDF cannot travel over the wire: like HBase coprocessors, the
// function is *registered* server-side at construction, and Execute /
// ExecuteBatch requests name only (key, params). The client's fn argument
// is ignored (see DataService::Execute's contract in engine/async_api.h).
#ifndef JOINOPT_NET_RPC_SERVER_H_
#define JOINOPT_NET_RPC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "joinopt/common/status.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/net/socket.h"

namespace joinopt {

struct RpcServerOptions {
  /// Bind address. Tests and benches stay on loopback; never expose the
  /// protocol off-host without an authenticating proxy in front.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the chosen port back with port()).
  uint16_t port = 0;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Deadline for writing one response; a client that stops draining its
  /// socket loses the connection instead of parking the worker forever.
  double send_deadline = 5.0;
  int accept_backlog = 64;
};

struct RpcServerStats {
  int64_t connections_accepted = 0;
  int64_t requests = 0;       ///< well-formed requests dispatched
  int64_t batch_items = 0;    ///< items carried by ExecuteBatch requests
  int64_t protocol_errors = 0;  ///< malformed frames / version mismatches
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
};

class RpcServer {
 public:
  /// `inner` and `fn` must outlive the server and be thread-safe: each
  /// connection thread calls them concurrently.
  RpcServer(DataService* inner, UserFn fn, RpcServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens and starts the acceptor. Fails (address in use, ...)
  /// without leaving threads behind.
  Status Start();

  /// Stops accepting, severs open connections and joins all threads.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  RpcServerStats stats() const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Handles one decoded request; returns the response (type, body).
  std::pair<MsgType, std::string> Dispatch(const FrameHeader& header,
                                           const std::string& body);

  DataService* inner_;
  UserFn fn_;
  RpcServerOptions options_;
  uint16_t port_ = 0;

  UniqueFd listen_fd_;
  std::thread acceptor_;
  std::atomic<bool> stop_{true};
  std::atomic<bool> running_{false};

  std::mutex conns_mu_;
  /// Open connection fds (owned by their threads; registered here so
  /// Stop() can shutdown() them to unblock reads).
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  struct AtomicStats {
    std::atomic<int64_t> connections_accepted{0};
    std::atomic<int64_t> requests{0};
    std::atomic<int64_t> batch_items{0};
    std::atomic<int64_t> protocol_errors{0};
    std::atomic<int64_t> bytes_in{0};
    std::atomic<int64_t> bytes_out{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace joinopt

#endif  // JOINOPT_NET_RPC_SERVER_H_
