// NetFaultInjector: the socket-level fault hook that makes FaultSchedule's
// link partitions real for the networked cluster. The simulator consults
// FaultSchedule::LinkUpAt inside its event queue; sockets have no such
// seam, so before this existed a "partitioned" node could still complete
// TCP handshakes and exchange frames — one-way partitions in particular
// were pure fiction over the wire. This process-wide singleton gives every
// socket operation a place to ask "may these two endpoints talk right
// now?".
//
// Identity model: every participating endpoint carries a small logical id
// (data node i uses i; clients/subscribers take ids above the node range).
// Servers register their listen port → id at Start; clients declare their
// id via a thread-local scope around the dial, and the injector records
// the connection's local ephemeral port so the *accepting* side can
// resolve who is calling (getpeername → port → id). Both fds of a known
// pair are remembered with their transmit direction, so established
// connections can be black-holed per direction later.
//
// Fault semantics (matching real one-way packet loss):
//   * connect: a TCP handshake needs both directions (SYN one way,
//     SYN-ACK the other), so a dial fails when EITHER direction of the
//     pair is blocked. The client side fails fast with a deadline-class
//     kAborted (a dropped SYN is a timeout, not a refusal); the server
//     side additionally drops at accept — the fix for the reactor backend,
//     whose accept4 path used to complete handshakes for partitioned
//     peers.
//   * established connections: SendAll fails only when the fd's own
//     transmit direction is blocked — the half-open case where A's
//     requests vanish while B's answers (to older requests) still flow.
//
// Unknown identities are never touched: a connection where either side
// did not declare itself passes every check, so ordinary tests and
// benches see zero behavior change. Overhead when no endpoint was ever
// registered is one relaxed atomic load per hook.
//
// Threading: all methods are thread-safe. One leaf mutex (rank
// kNetFault=900, above every other lock in the system) guards the
// registries, so the hooks are callable from any socket path regardless
// of what the caller holds. Rank table: DESIGN.md §12.
#ifndef JOINOPT_NET_NET_FAULT_H_
#define JOINOPT_NET_NET_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/status.h"
#include "joinopt/common/sync.h"

namespace joinopt {

/// "No declared identity": every check passes for this id.
inline constexpr int32_t kNetIdentityNone = -1;

class NetFaultInjector {
 public:
  static NetFaultInjector& Instance();

  NetFaultInjector(const NetFaultInjector&) = delete;
  NetFaultInjector& operator=(const NetFaultInjector&) = delete;

  // ---- identity registry (always live; cheap, lifecycle-rate calls) ----

  /// Declares that the server listening on `port` is logical endpoint
  /// `id`. Called by RpcServer::Start when options name an identity.
  void RegisterServerPort(uint16_t port, int32_t id);
  void UnregisterServerPort(uint16_t port);

  // ---- fault control (the chaos runner's levers) ----

  /// Drops everything `from` transmits toward `to` (half-open partition).
  void BlockOneWay(int32_t from, int32_t to);
  void HealOneWay(int32_t from, int32_t to);
  /// Symmetric partition: both directions.
  void Block(int32_t a, int32_t b);
  void Heal(int32_t a, int32_t b);
  /// Heals every partition (the chaos settle phase; also test teardown).
  void HealAll();
  bool Blocked(int32_t from, int32_t to) const;
  /// Active one-way block rules (a symmetric Block counts as two).
  int active_rules() const;

  // ---- socket hooks (no-ops unless identities and rules exist) ----

  /// Pre-dial check. OK unless both endpoints are known and either
  /// direction is blocked; the error is deadline-class kAborted (a dropped
  /// SYN looks like a timeout to the dialer, and must count as one).
  Status CheckConnect(uint16_t server_port) const;
  /// Post-dial bookkeeping: remembers the connection's local ephemeral
  /// port → caller identity (so the acceptor can resolve the peer) and the
  /// fd's transmit direction for CheckSend.
  void OnConnected(int fd, uint16_t server_port);
  /// Accept-side check + bookkeeping. False means the pair is partitioned
  /// and the caller must close the freshly accepted fd — dropping the
  /// connection at accept time is what keeps a half-open peer from
  /// completing the handshake on either serving backend.
  bool OnAccept(uint16_t listen_port, int conn_fd);
  /// Established-connection check: fails iff this fd's transmit direction
  /// is currently blocked. Called by SendAll before touching the socket.
  Status CheckSend(int fd) const;
  /// Forgets a closing fd (hooked into UniqueFd::Reset).
  void OnClose(int fd);

  /// True once any endpoint identity was registered (gates the per-fd
  /// bookkeeping hooks).
  bool tracking() const {
    return tracking_.load(std::memory_order_acquire);
  }
  /// True while any block rule is active (gates the per-IO checks).
  bool faults_active() const {
    return faults_active_.load(std::memory_order_acquire);
  }

  /// RAII declaration of the calling thread's endpoint identity, applied
  /// to every TcpConnect it performs while in scope.
  class ScopedIdentity {
   public:
    explicit ScopedIdentity(int32_t id);
    ~ScopedIdentity();

    ScopedIdentity(const ScopedIdentity&) = delete;
    ScopedIdentity& operator=(const ScopedIdentity&) = delete;

   private:
    int32_t saved_;
  };
  static int32_t CurrentIdentity();

 private:
  NetFaultInjector() = default;

  struct FdDirection {
    int32_t from = kNetIdentityNone;
    int32_t to = kNetIdentityNone;
    /// Local ephemeral port this (client-side) fd registered, 0 for
    /// server-side fds — so OnClose can retire the port mapping with it.
    uint16_t local_port = 0;
    /// Server-side fds accepted before the dialer registered its ephemeral
    /// port (accept races connect-return on loopback): the peer's port,
    /// kept so CheckSend can resolve `to` lazily; 0 once resolved.
    uint16_t peer_port = 0;
  };

  bool BlockedLocked(int32_t from, int32_t to) const
      JOINOPT_REQUIRES(mu_);

  mutable Mutex mu_{lock_rank::kNetFault, "NetFaultInjector::mu_"};
  std::map<uint16_t, int32_t> server_ports_ JOINOPT_GUARDED_BY(mu_);
  /// Client-side local ephemeral port → declared identity (what OnAccept
  /// resolves the peer with).
  std::map<uint16_t, int32_t> client_ports_ JOINOPT_GUARDED_BY(mu_);
  /// mutable: CheckSend (const, hot path) completes raced-accept peer
  /// resolution in place.
  mutable std::map<int, FdDirection> fds_ JOINOPT_GUARDED_BY(mu_);
  std::set<std::pair<int32_t, int32_t>> blocked_ JOINOPT_GUARDED_BY(mu_);
  std::atomic<bool> tracking_{false};
  std::atomic<bool> faults_active_{false};
};

}  // namespace joinopt

#endif  // JOINOPT_NET_NET_FAULT_H_
