#include "joinopt/net/rpc_server.h"

#include <errno.h>
#include <sys/socket.h>

#include <chrono>
#include <utility>

namespace joinopt {

namespace {

/// Acceptor/reader poll tick: how often blocked threads re-check stop_.
/// Shutdown latency is bounded by this even if shutdown() is missed.
constexpr double kPollTick = 0.05;

bool SupportedVersion(uint8_t v) {
  return v >= kMinWireVersion && v <= kWireVersion;
}

/// The version responses to this request are stamped with: the client's
/// own version when we speak it (so v1 readers parse v2-server answers),
/// ours when the client's is alien (best effort on an error path).
uint8_t EchoVersion(uint8_t v) {
  return SupportedVersion(v) ? v : kWireVersion;
}

}  // namespace

/// Bounded event queue bridging the writer's thread (OnUpdateEvent) to the
/// subscription's connection thread (Drain). Overflow latches a flag that
/// makes the connection thread drop the stream.
class RpcServer::ConnSink : public UpdateSink {
 public:
  explicit ConnSink(size_t capacity) : capacity_(capacity) {}

  void OnUpdateEvent(const UpdateEvent& event) override {
    MutexLock lock(mu_);
    if (queue_.size() >= capacity_) {
      overflow_ = true;
      return;
    }
    queue_.push_back(event);
    cv_.NotifyOne();
  }

  /// Waits up to `wait_sec` for events; returns what is queued (possibly
  /// empty on timeout — or on a spurious wake, which the polling caller
  /// absorbs like a timeout).
  std::vector<UpdateEvent> Drain(double wait_sec) {
    MutexLock lock(mu_);
    if (queue_.empty() && !overflow_) cv_.WaitFor(mu_, wait_sec);
    std::vector<UpdateEvent> out(queue_.begin(), queue_.end());
    queue_.clear();
    return out;
  }

  bool overflowed() const {
    MutexLock lock(mu_);
    return overflow_;
  }

 private:
  const size_t capacity_;
  /// Innermost lock of the update fan-out: the writer calls OnUpdateEvent
  /// while holding the service's update lock (kNodeUpdateFanout).
  mutable Mutex mu_{lock_rank::kUpdateSink, "RpcServer::ConnSink::mu_"};
  CondVar cv_;
  std::deque<UpdateEvent> queue_ JOINOPT_GUARDED_BY(mu_);
  bool overflow_ JOINOPT_GUARDED_BY(mu_) = false;
};

RpcServer::RpcServer(DataService* inner, UserFn fn, RpcServerOptions options)
    : inner_(inner),
      writable_(dynamic_cast<WritableDataService*>(inner)),
      fn_(std::move(fn)),
      options_(std::move(options)) {}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() {
  // The lifecycle lock makes check-and-transition atomic: two concurrent
  // Start() calls used to both pass the running_ check and race the bind.
  MutexLock lock(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  JOINOPT_ASSIGN_OR_RETURN(
      listen_fd_,
      TcpListen(options_.host, options_.port, options_.accept_backlog));
  JOINOPT_ASSIGN_OR_RETURN(port_, BoundPort(listen_fd_.get()));
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RpcServer::Stop() {
  MutexLock lock(lifecycle_mu_);
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // Severing the sockets converts blocked reads/writes into immediate
  // failures; the poll tick catches any thread not currently blocked on
  // the fd.
  {
    MutexLock conns(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listen_fd_.valid()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    MutexLock conns(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  listen_fd_.Reset();
}

void RpcServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    auto readable = WaitReadable(listen_fd_.get(), kPollTick);
    if (!readable.ok()) break;
    if (!*readable) continue;
    int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) continue;  // racing Stop() or a transient accept error
    ++stats_.connections_accepted;
    MutexLock lock(conns_mu_);
    if (stop_.load(std::memory_order_acquire)) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void RpcServer::ServeConnection(int fd) {
  UniqueFd owned(fd);
  while (!stop_.load(std::memory_order_acquire)) {
    // Idle poll keeps the thread responsive to Stop() while the client
    // holds the pooled connection open between requests.
    auto readable = WaitReadable(fd, kPollTick);
    if (!readable.ok()) break;
    if (!*readable) continue;

    // Once bytes arrive, the whole message must land within the send
    // deadline — a peer that stalls mid-frame is desynced anyway.
    auto frame = RecvFrame(fd, options_.send_deadline,
                           options_.max_frame_bytes);
    if (!frame.ok()) {
      // Clean idle close (peer drained the pool) is not a protocol error.
      if (frame.status().message() !=
          "recv: connection closed by peer") {
        ++stats_.protocol_errors;
      }
      break;
    }
    stats_.bytes_in += static_cast<int64_t>(kFrameHeaderBytes +
                                            frame->body.size());

    if (frame->header.type == MsgType::kSubscribeReq) {
      // A subscription consumes the connection: it flips from
      // request/response to a one-way push stream.
      ServeSubscription(fd, frame->header, frame->body);
      break;
    }

    auto [resp_type, resp_body] = Dispatch(frame->header, frame->body);
    if (resp_type == static_cast<MsgType>(0)) {
      ++stats_.protocol_errors;
      break;  // unknown request type: the stream cannot be trusted
    }
    Status sent = SendFrame(fd, resp_type, frame->header.seq, resp_body,
                            options_.send_deadline,
                            options_.max_frame_bytes,
                            EchoVersion(frame->header.version));
    if (!sent.ok()) break;
    stats_.bytes_out += static_cast<int64_t>(kFrameHeaderBytes +
                                             resp_body.size());
  }
  MutexLock lock(conns_mu_);
  for (size_t i = 0; i < conn_fds_.size(); ++i) {
    if (conn_fds_[i] == fd) {
      conn_fds_[i] = conn_fds_.back();
      conn_fds_.pop_back();
      break;
    }
  }
}

std::pair<MsgType, std::string> RpcServer::Dispatch(
    const FrameHeader& header, const std::string& body) {
  MsgType resp_type = ResponseTypeFor(header.type);
  if (resp_type == static_cast<MsgType>(0)) return {resp_type, ""};

  // Version mismatch: answer in-band so an old/new client reads an error
  // instead of hanging, then the connection is still usable (the *frame*
  // layout is frozen across versions; only body encodings move). A v2-only
  // verb arriving on a v1 frame is the same kind of mismatch.
  bool verb_needs_v2 = header.type == MsgType::kPutReq;
  if (!SupportedVersion(header.version) ||
      (verb_needs_v2 && header.version < 2)) {
    ++stats_.protocol_errors;
    Status mismatch = Status::FailedPrecondition(
        "wire version mismatch: server=" + std::to_string(kWireVersion) +
        " client=" + std::to_string(header.version));
    switch (header.type) {
      case MsgType::kFetchReq:
        return {resp_type, EncodeFetchResponse(mismatch)};
      case MsgType::kExecuteReq:
        return {resp_type, EncodeExecuteResponse(mismatch)};
      case MsgType::kBatchReq:
        return {resp_type, EncodeBatchResponse({mismatch})};
      case MsgType::kStatReq:
        return {resp_type, EncodeStatResponse(mismatch)};
      case MsgType::kPutReq:
        return {resp_type, EncodePutResponse(mismatch)};
      case MsgType::kOwnerReq:
      default:
        return {resp_type, EncodeOwnerResponse(kInvalidNode)};
    }
  }

  ++stats_.requests;
  switch (header.type) {
    case MsgType::kFetchReq: {
      auto key = DecodeKeyRequest(body);
      if (!key.ok()) return {resp_type, EncodeFetchResponse(key.status())};
      return {resp_type, EncodeFetchResponse(inner_->Fetch(*key))};
    }
    case MsgType::kExecuteReq: {
      auto req = DecodeExecuteRequest(body);
      if (!req.ok()) {
        return {resp_type, EncodeExecuteResponse(req.status())};
      }
      return {resp_type, EncodeExecuteResponse(
                             inner_->Execute(req->key, req->params, fn_))};
    }
    case MsgType::kBatchReq: {
      // v1 frames carry the untagged body; v2 frames are tagged with
      // (client_id, batch_seq) and go through the replay-dedup path.
      if (header.version >= 2) {
        auto req = DecodeTaggedBatchRequest(body);
        if (!req.ok()) {
          return {resp_type, EncodeBatchResponse({req.status()})};
        }
        stats_.batch_items += static_cast<int64_t>(req->items.size());
        return {resp_type, DispatchTaggedBatch(*req)};
      }
      auto items = DecodeBatchRequest(body);
      if (!items.ok()) {
        return {resp_type, EncodeBatchResponse({items.status()})};
      }
      stats_.batch_items += static_cast<int64_t>(items->size());
      return {resp_type,
              EncodeBatchResponse(inner_->ExecuteBatch(*items, fn_))};
    }
    case MsgType::kStatReq: {
      auto key = DecodeKeyRequest(body);
      if (!key.ok()) return {resp_type, EncodeStatResponse(key.status())};
      return {resp_type, EncodeStatResponse(inner_->Stat(*key))};
    }
    case MsgType::kOwnerReq: {
      auto key = DecodeKeyRequest(body);
      if (!key.ok()) return {resp_type, EncodeOwnerResponse(kInvalidNode)};
      return {resp_type, EncodeOwnerResponse(inner_->OwnerOf(*key))};
    }
    case MsgType::kPutReq: {
      if (writable_ == nullptr) {
        return {resp_type,
                EncodePutResponse(Status::Unimplemented(
                    "rpc: service does not accept writes"))};
      }
      auto req = DecodePutRequest(body);
      if (!req.ok()) return {resp_type, EncodePutResponse(req.status())};
      ++stats_.puts;
      return {resp_type,
              EncodePutResponse(writable_->Put(req->key, req->value))};
    }
    default:
      return {static_cast<MsgType>(0), ""};
  }
}

std::string RpcServer::DispatchTaggedBatch(const TaggedBatchRequest& req) {
  // client_id 0 opts out of dedup (one-shot clients that never retry).
  if (req.client_id == 0 || options_.dedup_capacity == 0) {
    return EncodeBatchResponse(inner_->ExecuteBatch(req.items, fn_));
  }
  const std::pair<uint64_t, uint64_t> tag{req.client_id, req.batch_seq};
  std::shared_ptr<DedupEntry> entry;
  {
    MutexLock lock(dedup_mu_);
    auto it = dedup_entries_.find(tag);
    if (it != dedup_entries_.end()) {
      // Replay. If the original is still executing (a retry raced it on
      // another connection), wait for its result rather than executing the
      // side effects twice — that wait is what makes the batch
      // exactly-once even under concurrent duplicates.
      entry = it->second;
      while (!entry->done) dedup_cv_.Wait(dedup_mu_);
      ++stats_.batch_dedup_hits;
      return entry->response;
    }
    entry = std::make_shared<DedupEntry>();
    dedup_entries_.emplace(tag, entry);
    dedup_order_.push_back(tag);
  }

  std::string response = EncodeBatchResponse(inner_->ExecuteBatch(req.items,
                                                                  fn_));
  {
    MutexLock lock(dedup_mu_);
    entry->done = true;
    entry->response = response;
    // Evict oldest *completed* entries beyond capacity; an in-flight entry
    // must survive so its racing duplicate can still find it.
    while (dedup_order_.size() > options_.dedup_capacity) {
      auto oldest = dedup_entries_.find(dedup_order_.front());
      if (oldest != dedup_entries_.end() && !oldest->second->done) break;
      if (oldest != dedup_entries_.end()) dedup_entries_.erase(oldest);
      dedup_order_.pop_front();
    }
  }
  dedup_cv_.NotifyAll();
  return response;
}

void RpcServer::ServeSubscription(int fd, const FrameHeader& header,
                                  const std::string& body) {
  // Subscriptions are v2-only and require a writable service; neither
  // failure mode has an in-band error slot (the response body is a bare
  // snapshot), so the stream is refused by closing the connection — the
  // same signal a subscriber handles for crashes.
  if (writable_ == nullptr || header.version < 2 ||
      !SupportedVersion(header.version)) {
    ++stats_.protocol_errors;
    return;
  }
  auto subscriber = DecodeSubscribeRequest(body);
  if (!subscriber.ok()) {
    ++stats_.protocol_errors;
    return;
  }
  ++stats_.requests;

  ConnSink sink(options_.subscription_queue_capacity);
  // Register the sink *before* taking the snapshot: events in the gap are
  // delivered twice (snapshot position + queued event) and deduplicated by
  // the subscriber's seq tracking, whereas the other order would lose them.
  writable_->AddUpdateSink(&sink);
  Status sent = SendFrame(fd, MsgType::kSubscribeResp, header.seq,
                          EncodeSubscribeResponse(writable_->EpochSnapshot()),
                          options_.send_deadline, options_.max_frame_bytes,
                          header.version);
  if (sent.ok()) {
    ++stats_.subscriptions;
    uint32_t push_seq = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      std::vector<UpdateEvent> events = sink.Drain(kPollTick);
      if (sink.overflowed()) break;
      bool failed = false;
      for (const UpdateEvent& event : events) {
        Status pushed = SendFrame(fd, MsgType::kNotifyEvt, push_seq++,
                                  EncodeNotifyEvent(event),
                                  options_.send_deadline,
                                  options_.max_frame_bytes, header.version);
        if (!pushed.ok()) {
          failed = true;
          break;
        }
        ++stats_.notify_events;
        stats_.bytes_out += static_cast<int64_t>(
            kFrameHeaderBytes + 36);  // fixed-size notify body
      }
      if (failed) break;
      // The client never sends on a subscription stream: readability
      // means close (or a protocol violation) — either way, stop pushing.
      auto readable = WaitReadable(fd, 0);
      if (readable.ok() && *readable) {
        char probe[64];
        ssize_t n = ::recv(fd, probe, sizeof(probe), MSG_DONTWAIT);
        if (n > 0) ++stats_.protocol_errors;
        if (n >= 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR)) {
          break;
        }
      }
    }
  }
  // After RemoveUpdateSink returns no OnUpdateEvent call can be in flight
  // (the service holds its update lock across fanout), so the stack-
  // allocated sink is safe to destroy.
  writable_->RemoveUpdateSink(&sink);
}

RpcServerStats RpcServer::stats() const {
  RpcServerStats out;
  out.connections_accepted =
      stats_.connections_accepted.load(std::memory_order_relaxed);
  out.requests = stats_.requests.load(std::memory_order_relaxed);
  out.batch_items = stats_.batch_items.load(std::memory_order_relaxed);
  out.protocol_errors =
      stats_.protocol_errors.load(std::memory_order_relaxed);
  out.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  out.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  out.puts = stats_.puts.load(std::memory_order_relaxed);
  out.subscriptions = stats_.subscriptions.load(std::memory_order_relaxed);
  out.notify_events = stats_.notify_events.load(std::memory_order_relaxed);
  out.batch_dedup_hits =
      stats_.batch_dedup_hits.load(std::memory_order_relaxed);
  return out;
}

}  // namespace joinopt
