#include "joinopt/net/rpc_server.h"

#include <errno.h>
#include <stdlib.h>
#include <sys/socket.h>

#include <chrono>
#include <deque>
#include <string_view>
#include <utility>

#include "joinopt/net/net_fault.h"
#include "joinopt/net/reactor/reactor_core.h"

namespace joinopt {

namespace {

/// Acceptor/reader poll tick: how often blocked threads re-check stop_.
/// Shutdown latency is bounded by this even if shutdown() is missed.
constexpr double kPollTick = 0.05;

RpcBackend ResolveBackend(RpcBackend requested) {
  if (requested != RpcBackend::kDefault) return requested;
  const char* env = ::getenv("JOINOPT_RPC_BACKEND");
  if (env != nullptr && std::string_view(env) == "reactor") {
    return RpcBackend::kReactor;
  }
  return RpcBackend::kThreadPerConnection;
}

ReactorOptions ReactorOptionsFrom(const RpcServerOptions& o) {
  ReactorOptions r;
  r.host = o.host;
  r.port = o.port;
  r.accept_backlog = o.accept_backlog;
  r.max_frame_bytes = o.max_frame_bytes;
  r.io_threads = o.reactor_io_threads;
  r.worker_threads = o.reactor_worker_threads;
  r.worker_queue_capacity = o.reactor_worker_queue;
  r.write_high_watermark = o.reactor_write_high_watermark;
  r.write_low_watermark = o.reactor_write_low_watermark;
  r.max_pipelined_requests = o.reactor_max_pipelined_requests;
  r.notify_queue_capacity = o.subscription_queue_capacity;
  r.poll_tick = kPollTick;
  return r;
}

}  // namespace

/// Bounded event queue bridging the writer's thread (OnUpdateEvent) to the
/// subscription's connection thread (Drain). Overflow latches a flag that
/// makes the connection thread drop the stream.
class RpcServer::ConnSink : public UpdateSink {
 public:
  explicit ConnSink(size_t capacity) : capacity_(capacity) {}

  void OnUpdateEvent(const UpdateEvent& event) override {
    MutexLock lock(mu_);
    if (queue_.size() >= capacity_) {
      overflow_ = true;
      return;
    }
    queue_.push_back(event);
    cv_.NotifyOne();
  }

  /// Waits up to `wait_sec` for events; returns what is queued (possibly
  /// empty on timeout — or on a spurious wake, which the polling caller
  /// absorbs like a timeout).
  std::vector<UpdateEvent> Drain(double wait_sec) {
    MutexLock lock(mu_);
    if (queue_.empty() && !overflow_) cv_.WaitFor(mu_, wait_sec);
    std::vector<UpdateEvent> out(queue_.begin(), queue_.end());
    queue_.clear();
    return out;
  }

  bool overflowed() const {
    MutexLock lock(mu_);
    return overflow_;
  }

 private:
  const size_t capacity_;
  /// Innermost lock of the update fan-out: the writer calls OnUpdateEvent
  /// while holding the service's update lock (kNodeUpdateFanout).
  mutable Mutex mu_{lock_rank::kUpdateSink, "RpcServer::ConnSink::mu_"};
  CondVar cv_;
  std::deque<UpdateEvent> queue_ JOINOPT_GUARDED_BY(mu_);
  bool overflow_ JOINOPT_GUARDED_BY(mu_) = false;
};

RpcServer::RpcServer(DataService* inner, UserFn fn, RpcServerOptions options)
    : inner_(inner),
      fn_(std::move(fn)),
      options_(std::move(options)),
      dispatcher_(inner_, fn_, options_.dedup_capacity, &stats_) {}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() {
  // The lifecycle lock makes check-and-transition atomic: two concurrent
  // Start() calls used to both pass the running_ check and race the bind.
  MutexLock lock(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  RpcBackend backend = ResolveBackend(options_.backend);
  if (backend == RpcBackend::kReactor) {
    ReactorOptions ropts = ReactorOptionsFrom(options_);
    ropts.net_identity = options_.net_identity;
    auto core =
        std::make_unique<ReactorCore>(&dispatcher_, &stats_, ropts);
    JOINOPT_RETURN_NOT_OK(core->Start());
    reactor_ = std::move(core);
    port_ = reactor_->port();
    if (options_.net_identity >= 0) {
      NetFaultInjector::Instance().RegisterServerPort(port_,
                                                      options_.net_identity);
    }
    active_backend_ = backend;
    running_.store(true, std::memory_order_release);
    return Status::OK();
  }
  JOINOPT_ASSIGN_OR_RETURN(
      listen_fd_,
      TcpListen(options_.host, options_.port, options_.accept_backlog));
  JOINOPT_ASSIGN_OR_RETURN(port_, BoundPort(listen_fd_.get()));
  if (options_.net_identity >= 0) {
    NetFaultInjector::Instance().RegisterServerPort(port_,
                                                    options_.net_identity);
  }
  stop_.store(false, std::memory_order_release);
  active_backend_ = backend;
  running_.store(true, std::memory_order_release);
  ++stats_.server_threads;  // the acceptor
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RpcServer::Stop() {
  MutexLock lock(lifecycle_mu_);
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (options_.net_identity >= 0) {
    NetFaultInjector::Instance().UnregisterServerPort(port_);
  }
  if (reactor_ != nullptr) {
    reactor_->Stop();
    reactor_.reset();
    return;
  }
  stop_.store(true, std::memory_order_release);
  // Severing the sockets converts blocked reads/writes into immediate
  // failures; the poll tick catches any thread not currently blocked on
  // the fd.
  {
    MutexLock conns(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listen_fd_.valid()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  --stats_.server_threads;
  std::vector<std::thread> threads;
  {
    MutexLock conns(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  listen_fd_.Reset();
}

void RpcServer::AcceptLoop() {
  // Read the bound port off the socket: the acceptor must not take
  // lifecycle_mu_ (Stop holds it while joining this thread).
  auto listen_port = BoundPort(listen_fd_.get());
  while (!stop_.load(std::memory_order_acquire)) {
    auto readable = WaitReadable(listen_fd_.get(), kPollTick);
    if (!readable.ok()) break;
    if (!*readable) continue;
    int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) continue;  // racing Stop() or a transient accept error
    if (listen_port.ok() &&
        !NetFaultInjector::Instance().OnAccept(*listen_port, fd)) {
      // Injected partition: the kernel completed the handshake, but the
      // application drops the peer — the closest a userspace harness gets
      // to a SYN black hole.
      ::close(fd);
      continue;
    }
    ++stats_.connections_accepted;
    MutexLock lock(conns_mu_);
    if (stop_.load(std::memory_order_acquire)) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    ++stats_.live_connections;
    ++stats_.server_threads;
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void RpcServer::ServeConnection(int fd) {
  UniqueFd owned(fd);
  while (!stop_.load(std::memory_order_acquire)) {
    // Idle poll keeps the thread responsive to Stop() while the client
    // holds the pooled connection open between requests.
    auto readable = WaitReadable(fd, kPollTick);
    if (!readable.ok()) break;
    if (!*readable) continue;

    // Once bytes arrive, the whole message must land within the send
    // deadline — a peer that stalls mid-frame is desynced anyway.
    auto frame = RecvFrame(fd, options_.send_deadline,
                           options_.max_frame_bytes);
    if (!frame.ok()) {
      // Clean idle close (peer drained the pool) is not a protocol error.
      if (frame.status().message() !=
          "recv: connection closed by peer") {
        ++stats_.protocol_errors;
      }
      break;
    }
    stats_.bytes_in += static_cast<int64_t>(kFrameHeaderBytes +
                                            frame->body.size());

    if (frame->header.type == MsgType::kSubscribeReq) {
      // A subscription consumes the connection: it flips from
      // request/response to a one-way push stream.
      ServeSubscription(fd, frame->header, frame->body);
      break;
    }

    auto [resp_type, resp_body] = dispatcher_.Dispatch(frame->header,
                                                       frame->body);
    if (resp_type == static_cast<MsgType>(0)) {
      ++stats_.protocol_errors;
      break;  // unknown request type: the stream cannot be trusted
    }
    Status sent = SendFrame(fd, resp_type, frame->header.seq, resp_body,
                            options_.send_deadline,
                            options_.max_frame_bytes,
                            EchoWireVersion(frame->header.version));
    if (!sent.ok()) break;
    stats_.bytes_out += static_cast<int64_t>(kFrameHeaderBytes +
                                             resp_body.size());
  }
  MutexLock lock(conns_mu_);
  --stats_.live_connections;
  --stats_.server_threads;
  for (size_t i = 0; i < conn_fds_.size(); ++i) {
    if (conn_fds_[i] == fd) {
      conn_fds_[i] = conn_fds_.back();
      conn_fds_.pop_back();
      break;
    }
  }
}

void RpcServer::ServeSubscription(int fd, const FrameHeader& header,
                                  const std::string& body) {
  // Subscriptions are v2-only and require a writable service; neither
  // failure mode has an in-band error slot (the response body is a bare
  // snapshot), so the stream is refused by closing the connection — the
  // same signal a subscriber handles for crashes.
  WritableDataService* writable = dispatcher_.writable();
  if (writable == nullptr || header.version < 2 ||
      !SupportedWireVersion(header.version)) {
    ++stats_.protocol_errors;
    return;
  }
  auto subscriber = DecodeSubscribeRequest(body);
  if (!subscriber.ok()) {
    ++stats_.protocol_errors;
    return;
  }
  ++stats_.requests;

  ConnSink sink(options_.subscription_queue_capacity);
  // Register the sink *before* taking the snapshot: events in the gap are
  // delivered twice (snapshot position + queued event) and deduplicated by
  // the subscriber's seq tracking, whereas the other order would lose them.
  writable->AddUpdateSink(&sink);
  Status sent = SendFrame(fd, MsgType::kSubscribeResp, header.seq,
                          EncodeSubscribeResponse(writable->EpochSnapshot()),
                          options_.send_deadline, options_.max_frame_bytes,
                          header.version);
  if (sent.ok()) {
    ++stats_.subscriptions;
    uint32_t push_seq = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      std::vector<UpdateEvent> events = sink.Drain(kPollTick);
      if (sink.overflowed()) break;
      bool failed = false;
      for (const UpdateEvent& event : events) {
        Status pushed = SendFrame(fd, MsgType::kNotifyEvt, push_seq++,
                                  EncodeNotifyEvent(event),
                                  options_.send_deadline,
                                  options_.max_frame_bytes, header.version);
        if (!pushed.ok()) {
          failed = true;
          break;
        }
        ++stats_.notify_events;
        stats_.bytes_out += static_cast<int64_t>(
            kFrameHeaderBytes + 36);  // fixed-size notify body
      }
      if (failed) break;
      // The client never sends on a subscription stream: readability
      // means close (or a protocol violation) — either way, stop pushing.
      auto readable = WaitReadable(fd, 0);
      if (readable.ok() && *readable) {
        char probe[64];
        ssize_t n = ::recv(fd, probe, sizeof(probe), MSG_DONTWAIT);
        if (n > 0) ++stats_.protocol_errors;
        if (n >= 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR)) {
          break;
        }
      }
    }
  }
  // After RemoveUpdateSink returns no OnUpdateEvent call can be in flight
  // (the service holds its update lock across fanout), so the stack-
  // allocated sink is safe to destroy.
  writable->RemoveUpdateSink(&sink);
}

RpcServerStats RpcServer::stats() const {
  RpcServerStats out;
  out.connections_accepted =
      stats_.connections_accepted.load(std::memory_order_relaxed);
  out.requests = stats_.requests.load(std::memory_order_relaxed);
  out.batch_items = stats_.batch_items.load(std::memory_order_relaxed);
  out.protocol_errors =
      stats_.protocol_errors.load(std::memory_order_relaxed);
  out.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  out.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  out.puts = stats_.puts.load(std::memory_order_relaxed);
  out.subscriptions = stats_.subscriptions.load(std::memory_order_relaxed);
  out.notify_events = stats_.notify_events.load(std::memory_order_relaxed);
  out.batch_dedup_hits =
      stats_.batch_dedup_hits.load(std::memory_order_relaxed);
  out.server_threads =
      stats_.server_threads.load(std::memory_order_relaxed);
  out.live_connections =
      stats_.live_connections.load(std::memory_order_relaxed);
  out.notify_coalesced =
      stats_.notify_coalesced.load(std::memory_order_relaxed);
  out.backpressure_pauses =
      stats_.backpressure_pauses.load(std::memory_order_relaxed);
  return out;
}

}  // namespace joinopt
