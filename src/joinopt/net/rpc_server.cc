#include "joinopt/net/rpc_server.h"

#include <sys/socket.h>

#include <utility>

namespace joinopt {

namespace {

/// Acceptor/reader poll tick: how often blocked threads re-check stop_.
/// Shutdown latency is bounded by this even if shutdown() is missed.
constexpr double kPollTick = 0.05;

}  // namespace

RpcServer::RpcServer(DataService* inner, UserFn fn, RpcServerOptions options)
    : inner_(inner), fn_(std::move(fn)), options_(std::move(options)) {}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  JOINOPT_ASSIGN_OR_RETURN(
      listen_fd_,
      TcpListen(options_.host, options_.port, options_.accept_backlog));
  JOINOPT_ASSIGN_OR_RETURN(port_, BoundPort(listen_fd_.get()));
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RpcServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // Severing the sockets converts blocked reads/writes into immediate
  // failures; the poll tick catches any thread not currently blocked on
  // the fd.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listen_fd_.valid()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  listen_fd_.Reset();
}

void RpcServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    auto readable = WaitReadable(listen_fd_.get(), kPollTick);
    if (!readable.ok()) break;
    if (!*readable) continue;
    int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) continue;  // racing Stop() or a transient accept error
    ++stats_.connections_accepted;
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stop_.load(std::memory_order_acquire)) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void RpcServer::ServeConnection(int fd) {
  UniqueFd owned(fd);
  while (!stop_.load(std::memory_order_acquire)) {
    // Idle poll keeps the thread responsive to Stop() while the client
    // holds the pooled connection open between requests.
    auto readable = WaitReadable(fd, kPollTick);
    if (!readable.ok()) break;
    if (!*readable) continue;

    // Once bytes arrive, the whole message must land within the send
    // deadline — a peer that stalls mid-frame is desynced anyway.
    auto frame = RecvFrame(fd, options_.send_deadline,
                           options_.max_frame_bytes);
    if (!frame.ok()) {
      // Clean idle close (peer drained the pool) is not a protocol error.
      if (frame.status().message() !=
          "recv: connection closed by peer") {
        ++stats_.protocol_errors;
      }
      break;
    }
    stats_.bytes_in += static_cast<int64_t>(kFrameHeaderBytes +
                                            frame->body.size());

    auto [resp_type, resp_body] = Dispatch(frame->header, frame->body);
    if (resp_type == static_cast<MsgType>(0)) {
      ++stats_.protocol_errors;
      break;  // unknown request type: the stream cannot be trusted
    }
    Status sent = SendFrame(fd, resp_type, frame->header.seq, resp_body,
                            options_.send_deadline,
                            options_.max_frame_bytes);
    if (!sent.ok()) break;
    stats_.bytes_out += static_cast<int64_t>(kFrameHeaderBytes +
                                             resp_body.size());
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (size_t i = 0; i < conn_fds_.size(); ++i) {
    if (conn_fds_[i] == fd) {
      conn_fds_[i] = conn_fds_.back();
      conn_fds_.pop_back();
      break;
    }
  }
}

std::pair<MsgType, std::string> RpcServer::Dispatch(
    const FrameHeader& header, const std::string& body) {
  MsgType resp_type = ResponseTypeFor(header.type);
  if (resp_type == static_cast<MsgType>(0)) return {resp_type, ""};

  // Version mismatch: answer in-band so an old/new client reads an error
  // instead of hanging, then the connection is still usable (the *frame*
  // layout is frozen across versions; only body encodings move).
  if (header.version != kWireVersion) {
    ++stats_.protocol_errors;
    Status mismatch = Status::FailedPrecondition(
        "wire version mismatch: server=" + std::to_string(kWireVersion) +
        " client=" + std::to_string(header.version));
    switch (header.type) {
      case MsgType::kFetchReq:
        return {resp_type, EncodeFetchResponse(mismatch)};
      case MsgType::kExecuteReq:
        return {resp_type, EncodeExecuteResponse(mismatch)};
      case MsgType::kBatchReq:
        return {resp_type, EncodeBatchResponse({mismatch})};
      case MsgType::kStatReq:
        return {resp_type, EncodeStatResponse(mismatch)};
      case MsgType::kOwnerReq:
      default:
        return {resp_type, EncodeOwnerResponse(kInvalidNode)};
    }
  }

  ++stats_.requests;
  switch (header.type) {
    case MsgType::kFetchReq: {
      auto key = DecodeKeyRequest(body);
      if (!key.ok()) return {resp_type, EncodeFetchResponse(key.status())};
      return {resp_type, EncodeFetchResponse(inner_->Fetch(*key))};
    }
    case MsgType::kExecuteReq: {
      auto req = DecodeExecuteRequest(body);
      if (!req.ok()) {
        return {resp_type, EncodeExecuteResponse(req.status())};
      }
      return {resp_type, EncodeExecuteResponse(
                             inner_->Execute(req->key, req->params, fn_))};
    }
    case MsgType::kBatchReq: {
      auto items = DecodeBatchRequest(body);
      if (!items.ok()) {
        return {resp_type, EncodeBatchResponse({items.status()})};
      }
      stats_.batch_items += static_cast<int64_t>(items->size());
      return {resp_type,
              EncodeBatchResponse(inner_->ExecuteBatch(*items, fn_))};
    }
    case MsgType::kStatReq: {
      auto key = DecodeKeyRequest(body);
      if (!key.ok()) return {resp_type, EncodeStatResponse(key.status())};
      return {resp_type, EncodeStatResponse(inner_->Stat(*key))};
    }
    case MsgType::kOwnerReq: {
      auto key = DecodeKeyRequest(body);
      if (!key.ok()) return {resp_type, EncodeOwnerResponse(kInvalidNode)};
      return {resp_type, EncodeOwnerResponse(inner_->OwnerOf(*key))};
    }
    default:
      return {static_cast<MsgType>(0), ""};
  }
}

RpcServerStats RpcServer::stats() const {
  RpcServerStats out;
  out.connections_accepted =
      stats_.connections_accepted.load(std::memory_order_relaxed);
  out.requests = stats_.requests.load(std::memory_order_relaxed);
  out.batch_items = stats_.batch_items.load(std::memory_order_relaxed);
  out.protocol_errors =
      stats_.protocol_errors.load(std::memory_order_relaxed);
  out.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  out.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  return out;
}

}  // namespace joinopt
