// VerbDispatcher: the backend-independent request/response core of the
// RPC server. Both serving backends — the thread-per-connection loop in
// rpc_server.cc and the epoll reactor in net/reactor/ — feed decoded
// frames through one shared dispatcher, so verb semantics (version
// negotiation, the v1/v2 compat table, tagged-batch replay dedup) are
// defined exactly once and cannot drift between backends.
//
// Thread safety: Dispatch is called concurrently from connection threads
// (legacy backend) or worker-pool threads (reactor). The only internal
// state is the tagged-batch dedup cache, guarded by its own ranked mutex;
// everything else delegates to the wrapped DataService, which is
// thread-safe by the RpcServer contract.
#ifndef JOINOPT_NET_VERB_DISPATCHER_H_
#define JOINOPT_NET_VERB_DISPATCHER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/sync.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/net/frame.h"
#include "joinopt/net/update_hub.h"

namespace joinopt {

/// Lock-free counters shared by the server frontend, the dispatcher and
/// whichever backend is serving. One instance per RpcServer; snapshotted
/// into RpcServerStats by RpcServer::stats().
struct RpcAtomicStats {
  std::atomic<int64_t> connections_accepted{0};
  std::atomic<int64_t> requests{0};
  std::atomic<int64_t> batch_items{0};
  std::atomic<int64_t> protocol_errors{0};
  std::atomic<int64_t> bytes_in{0};
  std::atomic<int64_t> bytes_out{0};
  std::atomic<int64_t> puts{0};
  std::atomic<int64_t> subscriptions{0};
  std::atomic<int64_t> notify_events{0};
  std::atomic<int64_t> batch_dedup_hits{0};
  // ---- gauges + reactor-era counters ----
  /// Threads currently serving (acceptor + per-connection threads for the
  /// legacy backend; IO threads + workers for the reactor). The reactor's
  /// headline property is that this stays flat as connections scale.
  std::atomic<int64_t> server_threads{0};
  std::atomic<int64_t> live_connections{0};
  /// Notify events superseded in a connection's pending queue by a newer
  /// same-key event (reactor flow control; see reactor/reactor_conn.h).
  std::atomic<int64_t> notify_coalesced{0};
  /// Times a connection's reads were paused by backpressure (write-queue
  /// high watermark or the pipeline limit).
  std::atomic<int64_t> backpressure_pauses{0};
};

/// True when the server can parse frames stamped with this version.
inline bool SupportedWireVersion(uint8_t v) {
  return v >= kMinWireVersion && v <= kWireVersion;
}

/// The version responses to a request are stamped with: the client's own
/// version when we speak it (so v1 readers parse v2-server answers), ours
/// when the client's is alien (best effort on an error path).
inline uint8_t EchoWireVersion(uint8_t v) {
  return SupportedWireVersion(v) ? v : kWireVersion;
}

class VerbDispatcher {
 public:
  /// `inner` and `fn` must outlive the dispatcher and be thread-safe.
  /// `stats` is the server's shared counter block (borrowed).
  /// `dedup_capacity` bounds the tagged-batch replay cache; 0 disables it.
  VerbDispatcher(DataService* inner, UserFn fn, size_t dedup_capacity,
                 RpcAtomicStats* stats);

  VerbDispatcher(const VerbDispatcher&) = delete;
  VerbDispatcher& operator=(const VerbDispatcher&) = delete;

  /// Handles one decoded request frame; returns the response (type, body).
  /// A zero response type means the request type itself was invalid and
  /// the connection can no longer be trusted (the caller drops it).
  /// Subscribe is NOT handled here — it changes the connection's mode, so
  /// each backend owns it (see writable()).
  std::pair<MsgType, std::string> Dispatch(const FrameHeader& header,
                                           const std::string& body);

  /// Non-null iff the wrapped service accepts writes (Put/Subscribe).
  WritableDataService* writable() const { return writable_; }
  DataService* inner() const { return inner_; }
  const UserFn& fn() const { return fn_; }

 private:
  /// Remembered tagged-batch responses keyed by (client_id, batch_seq).
  struct DedupEntry {
    bool done = false;
    std::string response;
  };

  /// ExecuteBatch with replay dedup; returns the encoded response body.
  std::string DispatchTaggedBatch(const TaggedBatchRequest& req);

  DataService* inner_;
  WritableDataService* writable_;  ///< non-null iff inner is one
  UserFn fn_;
  const size_t dedup_capacity_;
  RpcAtomicStats* stats_;

  Mutex dedup_mu_{lock_rank::kServerDedup, "VerbDispatcher::dedup_mu_"};
  CondVar dedup_cv_;
  /// DedupEntry contents (done, response) are guarded by dedup_mu_ too;
  /// the nested struct cannot name the enclosing member in an annotation.
  std::map<std::pair<uint64_t, uint64_t>, std::shared_ptr<DedupEntry>>
      dedup_entries_ JOINOPT_GUARDED_BY(dedup_mu_);
  std::deque<std::pair<uint64_t, uint64_t>> dedup_order_
      JOINOPT_GUARDED_BY(dedup_mu_);  // FIFO eviction
};

}  // namespace joinopt

#endif  // JOINOPT_NET_VERB_DISPATCHER_H_
