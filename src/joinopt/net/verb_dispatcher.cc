#include "joinopt/net/verb_dispatcher.h"

#include <utility>

namespace joinopt {

VerbDispatcher::VerbDispatcher(DataService* inner, UserFn fn,
                               size_t dedup_capacity, RpcAtomicStats* stats)
    : inner_(inner),
      writable_(dynamic_cast<WritableDataService*>(inner)),
      fn_(std::move(fn)),
      dedup_capacity_(dedup_capacity),
      stats_(stats) {}

std::pair<MsgType, std::string> VerbDispatcher::Dispatch(
    const FrameHeader& header, const std::string& body) {
  MsgType resp_type = ResponseTypeFor(header.type);
  if (resp_type == static_cast<MsgType>(0)) return {resp_type, ""};

  // Version mismatch: answer in-band so an old/new client reads an error
  // instead of hanging, then the connection is still usable (the *frame*
  // layout is frozen across versions; only body encodings move). A v2-only
  // verb arriving on a v1 frame is the same kind of mismatch.
  bool verb_needs_v2 = header.type == MsgType::kPutReq ||
                       header.type == MsgType::kRegionSummaryReq ||
                       header.type == MsgType::kRegionSyncReq;
  if (!SupportedWireVersion(header.version) ||
      (verb_needs_v2 && header.version < 2)) {
    ++stats_->protocol_errors;
    Status mismatch = Status::FailedPrecondition(
        "wire version mismatch: server=" + std::to_string(kWireVersion) +
        " client=" + std::to_string(header.version));
    switch (header.type) {
      case MsgType::kFetchReq:
        return {resp_type, EncodeFetchResponse(mismatch)};
      case MsgType::kExecuteReq:
        return {resp_type, EncodeExecuteResponse(mismatch)};
      case MsgType::kBatchReq:
        return {resp_type, EncodeBatchResponse({mismatch})};
      case MsgType::kStatReq:
        return {resp_type, EncodeStatResponse(mismatch)};
      case MsgType::kPutReq:
        return {resp_type, EncodePutResponse(mismatch)};
      case MsgType::kRegionSummaryReq:
        return {resp_type, EncodeRegionSummaryResponse(mismatch)};
      case MsgType::kRegionSyncReq:
        return {resp_type, EncodeRegionSyncResponse(mismatch)};
      case MsgType::kOwnerReq:
      default:
        return {resp_type, EncodeOwnerResponse(kInvalidNode)};
    }
  }

  ++stats_->requests;
  switch (header.type) {
    case MsgType::kFetchReq: {
      auto key = DecodeKeyRequest(body);
      if (!key.ok()) return {resp_type, EncodeFetchResponse(key.status())};
      return {resp_type, EncodeFetchResponse(inner_->Fetch(*key))};
    }
    case MsgType::kExecuteReq: {
      auto req = DecodeExecuteRequest(body);
      if (!req.ok()) {
        return {resp_type, EncodeExecuteResponse(req.status())};
      }
      return {resp_type, EncodeExecuteResponse(
                             inner_->Execute(req->key, req->params, fn_))};
    }
    case MsgType::kBatchReq: {
      // v1 frames carry the untagged body; v2 frames are tagged with
      // (client_id, batch_seq) and go through the replay-dedup path.
      if (header.version >= 2) {
        auto req = DecodeTaggedBatchRequest(body);
        if (!req.ok()) {
          return {resp_type, EncodeBatchResponse({req.status()})};
        }
        stats_->batch_items += static_cast<int64_t>(req->items.size());
        return {resp_type, DispatchTaggedBatch(*req)};
      }
      auto items = DecodeBatchRequest(body);
      if (!items.ok()) {
        return {resp_type, EncodeBatchResponse({items.status()})};
      }
      stats_->batch_items += static_cast<int64_t>(items->size());
      return {resp_type,
              EncodeBatchResponse(inner_->ExecuteBatch(*items, fn_))};
    }
    case MsgType::kStatReq: {
      auto key = DecodeKeyRequest(body);
      if (!key.ok()) return {resp_type, EncodeStatResponse(key.status())};
      return {resp_type, EncodeStatResponse(inner_->Stat(*key))};
    }
    case MsgType::kOwnerReq: {
      auto key = DecodeKeyRequest(body);
      if (!key.ok()) return {resp_type, EncodeOwnerResponse(kInvalidNode)};
      return {resp_type, EncodeOwnerResponse(inner_->OwnerOf(*key))};
    }
    case MsgType::kPutReq: {
      if (writable_ == nullptr) {
        return {resp_type,
                EncodePutResponse(Status::Unimplemented(
                    "rpc: service does not accept writes"))};
      }
      auto req = DecodePutRequest(body);
      if (!req.ok()) return {resp_type, EncodePutResponse(req.status())};
      ++stats_->puts;
      // A non-zero floor marks a replica write: apply at the primary's
      // version instead of assigning a fresh one, so all replicas of one
      // logical write agree on its number.
      if (req->version_floor != 0) {
        return {resp_type, EncodePutResponse(writable_->PutReplica(
                               req->key, req->value, req->version_floor))};
      }
      return {resp_type,
              EncodePutResponse(writable_->Put(req->key, req->value))};
    }
    case MsgType::kRegionSummaryReq: {
      if (writable_ == nullptr) {
        return {resp_type, EncodeRegionSummaryResponse(Status::Unimplemented(
                               "rpc: service has no region state"))};
      }
      auto region = DecodeRegionSummaryRequest(body);
      if (!region.ok()) {
        return {resp_type, EncodeRegionSummaryResponse(region.status())};
      }
      return {resp_type, EncodeRegionSummaryResponse(
                             writable_->SummarizeRegion(*region))};
    }
    case MsgType::kRegionSyncReq: {
      if (writable_ == nullptr) {
        return {resp_type, EncodeRegionSyncResponse(Status::Unimplemented(
                               "rpc: service has no region state"))};
      }
      auto req = DecodeRegionSyncRequest(body);
      if (!req.ok()) {
        return {resp_type, EncodeRegionSyncResponse(req.status())};
      }
      return {resp_type, EncodeRegionSyncResponse(
                             writable_->SyncRegion(req->region,
                                                   req->records))};
    }
    default:
      return {static_cast<MsgType>(0), ""};
  }
}

std::string VerbDispatcher::DispatchTaggedBatch(const TaggedBatchRequest& req) {
  // client_id 0 opts out of dedup (one-shot clients that never retry).
  if (req.client_id == 0 || dedup_capacity_ == 0) {
    return EncodeBatchResponse(inner_->ExecuteBatch(req.items, fn_));
  }
  const std::pair<uint64_t, uint64_t> tag{req.client_id, req.batch_seq};
  std::shared_ptr<DedupEntry> entry;
  {
    MutexLock lock(dedup_mu_);
    auto it = dedup_entries_.find(tag);
    if (it != dedup_entries_.end()) {
      // Replay. If the original is still executing (a retry raced it on
      // another connection), wait for its result rather than executing the
      // side effects twice — that wait is what makes the batch
      // exactly-once even under concurrent duplicates.
      entry = it->second;
      while (!entry->done) dedup_cv_.Wait(dedup_mu_);
      ++stats_->batch_dedup_hits;
      return entry->response;
    }
    entry = std::make_shared<DedupEntry>();
    dedup_entries_.emplace(tag, entry);
    dedup_order_.push_back(tag);
  }

  std::string response = EncodeBatchResponse(inner_->ExecuteBatch(req.items,
                                                                  fn_));
  {
    MutexLock lock(dedup_mu_);
    entry->done = true;
    entry->response = response;
    // Evict oldest *completed* entries beyond capacity; an in-flight entry
    // must survive so its racing duplicate can still find it.
    while (dedup_order_.size() > dedup_capacity_) {
      auto oldest = dedup_entries_.find(dedup_order_.front());
      if (oldest != dedup_entries_.end() && !oldest->second->done) break;
      if (oldest != dedup_entries_.end()) dedup_entries_.erase(oldest);
      dedup_order_.pop_front();
    }
  }
  dedup_cv_.NotifyAll();
  return response;
}

}  // namespace joinopt
