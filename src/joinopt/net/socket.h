// Thin POSIX TCP layer for the RPC transport: RAII fds, connect / send /
// recv with absolute deadlines (poll-based, so a stuck peer surfaces as a
// Status instead of a hung thread), and the errno → Status mapping the
// failure-recovery machinery consumes.
//
// Error mapping (see DESIGN.md §10 for the full table):
//   * every *transport* failure — refused/reset connections, unreachable
//     hosts, broken pipes, peer close mid-message — maps to kAborted, the
//     retriable class the client's timeout → backoff → replica-failover
//     loop acts on;
//   * a deadline expiry also maps to kAborted but with a message starting
//     with "deadline exceeded", so IsDeadlineExceeded() can count timeouts
//     separately from connection failures (RecoveryCounters::timeouts);
//   * malformed frames (bad magic, reserved flags, oversized body) map to
//     kInvalidArgument / kResourceExhausted in the codec layer and are
//     *not* retried against the same connection — the stream is desynced
//     and the connection must be dropped.
// Application-level errors (e.g. NotFound from the store) never appear
// here: they travel in-band as serialized Status payloads.
#ifndef JOINOPT_NET_SOCKET_H_
#define JOINOPT_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "joinopt/common/status.h"
#include "joinopt/net/frame.h"

namespace joinopt {

/// RAII file descriptor (closes on destruction; movable, not copyable).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& o) noexcept {
    if (this != &o) {
      Reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();

 private:
  int fd_ = -1;
};

/// Maps an errno from `op` to the transport Status class described above.
Status ErrnoToStatus(int err, const char* op);

/// True for the deadline-expiry flavour of kAborted (counted as a timeout
/// by the recovery machinery; other kAborted are connection failures).
bool IsDeadlineExceeded(const Status& status);

/// True for the retriable transport class (kAborted): the caller may back
/// off and fail over to a replica endpoint. In-band application statuses
/// (NotFound, InvalidArgument, ...) return false and must not be retried.
bool IsTransportError(const Status& status);

/// Deadline arguments are relative seconds for the whole operation;
/// <= 0 means no deadline (block until progress or peer close).

/// Connects to host:port with TCP_NODELAY set — RPC frames are
/// latency-bound, not throughput-bound. `host` may be a numeric IPv4
/// address ("127.0.0.1", fast path, no resolver) or a hostname
/// ("localhost", "db-3.rack2"): names go through getaddrinfo with the
/// connect deadline applied across resolution *and* the handshake, and
/// transient resolver failures (EAI_AGAIN) are retried with a short
/// backoff while budget remains. Resolution failures map to kAborted —
/// the retriable transport class — because in a cluster a name that does
/// not resolve right now (DNS blip, node rejoining) is indistinguishable
/// from a node being down.
StatusOr<UniqueFd> TcpConnect(const std::string& host, uint16_t port,
                              double deadline_sec);

/// Binds + listens on host:port; port 0 picks an ephemeral port (read it
/// back with BoundPort). SO_REUSEADDR is set so tests can restart servers.
StatusOr<UniqueFd> TcpListen(const std::string& host, uint16_t port,
                             int backlog);

StatusOr<uint16_t> BoundPort(int fd);

/// Waits up to deadline_sec for `fd` to become readable. Returns true if
/// readable, false on timeout.
StatusOr<bool> WaitReadable(int fd, double deadline_sec);

Status SendAll(int fd, const void* data, size_t len, double deadline_sec);
Status RecvAll(int fd, void* data, size_t len, double deadline_sec);

/// Sends one framed message (header + body) within the deadline.
/// `version` stamps the frame header (a v2 server answering a v1 client
/// echoes the client's version so v1 readers parse the response).
Status SendFrame(int fd, MsgType type, uint32_t seq, std::string_view body,
                 double deadline_sec, size_t max_frame_bytes,
                 uint8_t version = kWireVersion);

/// Receives one framed message within the deadline; validates the header
/// (magic, flags, size bound) but *not* the version — the caller decides
/// whether to answer a mismatched peer or drop it.
struct RecvdFrame {
  FrameHeader header;
  std::string body;
};
StatusOr<RecvdFrame> RecvFrame(int fd, double deadline_sec,
                               size_t max_frame_bytes);

}  // namespace joinopt

#endif  // JOINOPT_NET_SOCKET_H_
