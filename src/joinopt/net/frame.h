// Wire protocol for the remote DataService: a length-prefixed, versioned
// binary framing layer plus request/response codecs for all five service
// verbs (Fetch, Execute, ExecuteBatch, Stat, OwnerOf).
//
// Every message is one frame:
//
//     offset  size  field      notes
//     0       4     magic      0x4A4F5054 ("JOPT", little-endian u32)
//     4       1     version    kWireVersion; receivers reject others
//     5       1     type       MsgType (request/response discriminator)
//     6       2     flags      reserved, must be 0; non-zero is rejected
//     8       4     seq        echoed verbatim in the response frame
//     12      4     body_len   bytes following the 16-byte header
//
// All integers are little-endian fixed-width; strings are u32
// length-prefixed byte sequences (arbitrary bytes, no terminator); doubles
// travel as their IEEE-754 bit pattern in a u64. Fallible responses carry a
// Result: a u8 tag (1 = ok, 0 = error), then either the payload or a
// serialized Status (u8 code + string message). `ExecuteBatch` is one
// request frame holding all items and one response frame holding all
// results — the single round trip that makes delegation batching a real win
// over TCP.
//
// Compatibility rule: the header layout (magic..body_len) is frozen; any
// change to a body encoding bumps kWireVersion. A server receiving a
// version it cannot speak answers with an in-band FailedPrecondition error
// (so old clients get a readable error, not a hang) and closes the
// connection.
//
// Version 2 (this header) adds the write path — Put, a Subscribe/Notify
// invalidation stream carrying per-region epoch/sequence numbers, and a
// tagged ExecuteBatch body prefixed with (client_id, batch_seq) so servers
// can deduplicate replayed batches for exactly-once delegation. The five
// v1 verb bodies are byte-identical in v2: a v2 server still accepts v1
// frames for them and answers with v1-stamped frames (see DESIGN.md §11
// for the compat table), so v1 readers keep working.
//
// The codec layer is pure (no I/O); sockets live in net/socket.h. See
// DESIGN.md §10 for the protocol rationale and the errno → Status table.
#ifndef JOINOPT_NET_FRAME_H_
#define JOINOPT_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "joinopt/common/status.h"
#include "joinopt/engine/async_api.h"

namespace joinopt {

inline constexpr uint32_t kFrameMagic = 0x4A4F5054;  // "JOPT"
inline constexpr uint8_t kWireVersion = 2;
/// Oldest version a v2 server still serves (the five v1 verbs only).
inline constexpr uint8_t kMinWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
/// Default bound on body_len; a peer announcing more is protocol-violating
/// and the connection is dropped (never trust a length field with memory).
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

/// Frame discriminator. Requests are odd, their responses follow at +1.
enum class MsgType : uint8_t {
  kFetchReq = 1,
  kFetchResp = 2,
  kExecuteReq = 3,
  kExecuteResp = 4,
  kBatchReq = 5,
  kBatchResp = 6,
  kStatReq = 7,
  kStatResp = 8,
  kOwnerReq = 9,
  kOwnerResp = 10,
  // ---- v2 verbs (write path + invalidation stream) ----
  kPutReq = 11,
  kPutResp = 12,
  kSubscribeReq = 13,
  kSubscribeResp = 14,
  /// One-way server→client push after a Subscribe; never answered.
  kNotifyEvt = 15,
  // ---- v2 anti-entropy verbs (live replica repair, DESIGN.md §16) ----
  /// "What does your copy of region R look like?" — answered with an
  /// (epoch, seq, count, checksum) summary cheap enough to poll on a timer.
  kRegionSummaryReq = 17,
  kRegionSummaryResp = 18,
  /// Bidirectional region repair in one round trip: the requester pushes
  /// its live (key, version, value) records for the region, the responder
  /// merges them version-aware and answers with its own post-merge
  /// snapshot for the requester to merge back.
  kRegionSyncReq = 19,
  kRegionSyncResp = 20,
};

const char* MsgTypeToString(MsgType t);

/// Response type for a request type; 0 (invalid) for non-request input.
MsgType ResponseTypeFor(MsgType req);

/// Decoded frame header (magic already validated and stripped).
struct FrameHeader {
  uint8_t version = 0;
  MsgType type = static_cast<MsgType>(0);
  uint16_t flags = 0;
  uint32_t seq = 0;
  uint32_t body_len = 0;
};

/// Appends the 16-byte header for a `body_len`-byte body. `version` lets a
/// v2 server stamp responses to v1 clients with the version they speak.
void AppendFrameHeader(std::string* out, MsgType type, uint32_t seq,
                       uint32_t body_len, uint8_t version = kWireVersion);

/// Parses and validates a 16-byte header (magic, version, flags, size
/// bound). `buf` must hold exactly kFrameHeaderBytes.
StatusOr<FrameHeader> ParseFrameHeader(std::string_view buf,
                                       size_t max_frame_bytes);

/// Builds header + body in one buffer, enforcing the frame size bound on
/// the *sender* too (an oversized batch fails fast instead of being
/// rejected by the peer).
StatusOr<std::string> BuildFrame(MsgType type, uint32_t seq,
                                 std::string_view body,
                                 size_t max_frame_bytes,
                                 uint8_t version = kWireVersion);

// ---- primitive append/read helpers (exposed for tests) -------------------

void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutF64(std::string* out, double v);
void PutString(std::string* out, std::string_view s);

/// Bounds-checked sequential reader over one frame body. Every Get* fails
/// with InvalidArgument on truncation; Done() must be checked by decoders
/// so trailing garbage is rejected rather than ignored.
class WireReader {
 public:
  explicit WireReader(std::string_view buf) : buf_(buf) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint16_t> GetU16();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<double> GetF64();
  StatusOr<std::string> GetString();

  bool Done() const { return pos_ == buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::string_view buf_;
  size_t pos_ = 0;
};

// ---- request bodies ------------------------------------------------------

/// Fetch/Stat/Owner requests are a bare key.
std::string EncodeKeyRequest(Key key);
StatusOr<Key> DecodeKeyRequest(std::string_view body);

struct ExecuteRequest {
  Key key = 0;
  std::string params;
};
std::string EncodeExecuteRequest(Key key, std::string_view params);
StatusOr<ExecuteRequest> DecodeExecuteRequest(std::string_view body);

std::string EncodeBatchRequest(
    const std::vector<std::pair<Key, std::string>>& items);
StatusOr<std::vector<std::pair<Key, std::string>>> DecodeBatchRequest(
    std::string_view body);

/// v2 ExecuteBatch body: (client_id, batch_seq) prefix + the v1 item list.
/// A server remembers recently-served (client_id, batch_seq) pairs and
/// answers a replay from its response cache instead of re-executing — the
/// dedup half of exactly-once batch delegation (the client half is reusing
/// the same tag across retry attempts).
struct TaggedBatchRequest {
  uint64_t client_id = 0;
  uint64_t batch_seq = 0;
  std::vector<std::pair<Key, std::string>> items;
};
std::string EncodeTaggedBatchRequest(
    uint64_t client_id, uint64_t batch_seq,
    const std::vector<std::pair<Key, std::string>>& items);
StatusOr<TaggedBatchRequest> DecodeTaggedBatchRequest(std::string_view body);

/// Put request: key + value bytes + version floor. A floor of 0 is a
/// primary write (the store assigns the next version); a non-zero floor is
/// a replica write carrying the primary's assigned version, applied with
/// ApplyIfNewer semantics so every replica of one logical write converges
/// on the SAME version number. Without the floor each replica's store
/// counts independently and the numbering drifts after any skipped or
/// failed fan-out — after which version-aware merges compare apples to
/// oranges and "read at least the acked version" is unenforceable.
struct PutRequest {
  Key key = 0;
  std::string value;
  uint64_t version_floor = 0;
};
std::string EncodePutRequest(Key key, std::string_view value,
                             uint64_t version_floor = 0);
StatusOr<PutRequest> DecodePutRequest(std::string_view body);

/// Subscribe request: the subscriber's node id (u32, informational).
std::string EncodeSubscribeRequest(NodeId subscriber);
StatusOr<NodeId> DecodeSubscribeRequest(std::string_view body);

// ---- invalidation stream -------------------------------------------------

/// Per-region update-stream position. `epoch` bumps when the serving node
/// restarts (its volatile subscriber registrations died, so any sequence
/// comparison across the bump is meaningless); `seq` counts updates within
/// an epoch, starting at 0. A subscriber that sees seq jump by more than
/// one — or epoch change at all — knows invalidations were missed and must
/// re-sync that region.
struct RegionEpoch {
  int32_t region = 0;
  uint64_t epoch = 1;
  uint64_t seq = 0;
};

/// One invalidation event: "key is now at `version`; this is update `seq`
/// of `epoch` for `region`".
struct UpdateEvent {
  int32_t region = 0;
  uint64_t epoch = 1;
  uint64_t seq = 0;
  Key key = 0;
  uint64_t version = 0;
};

/// Subscribe response: the full per-region epoch/seq snapshot at the time
/// the subscription was registered (events from then on are streamed).
std::string EncodeSubscribeResponse(const std::vector<RegionEpoch>& regions);
StatusOr<std::vector<RegionEpoch>> DecodeSubscribeResponse(
    std::string_view body);

std::string EncodeNotifyEvent(const UpdateEvent& event);
StatusOr<UpdateEvent> DecodeNotifyEvent(std::string_view body);

// ---- response bodies -----------------------------------------------------

/// Serialized Status: u8 code + message string. Codes outside the enum
/// decode as kInternal (a newer peer's code must not crash an older one).
/// GetStatus returns the *parse* outcome; the decoded error lands in
/// `out` (StatusOr<Status> would be ill-formed).
void PutStatus(std::string* out, const Status& status);
Status GetStatus(WireReader& r, Status* out);

std::string EncodeFetchResponse(const StatusOr<DataService::Fetched>& result);
StatusOr<StatusOr<DataService::Fetched>> DecodeFetchResponse(
    std::string_view body);

std::string EncodeExecuteResponse(const StatusOr<std::string>& result);
StatusOr<StatusOr<std::string>> DecodeExecuteResponse(std::string_view body);

std::string EncodeBatchResponse(
    const std::vector<StatusOr<std::string>>& results);
StatusOr<std::vector<StatusOr<std::string>>> DecodeBatchResponse(
    std::string_view body);

std::string EncodeStatResponse(const StatusOr<DataService::ItemStat>& result);
StatusOr<StatusOr<DataService::ItemStat>> DecodeStatResponse(
    std::string_view body);

std::string EncodeOwnerResponse(NodeId node);
StatusOr<NodeId> DecodeOwnerResponse(std::string_view body);

/// Put response: the new store version on success.
std::string EncodePutResponse(const StatusOr<uint64_t>& new_version);
StatusOr<StatusOr<uint64_t>> DecodePutResponse(std::string_view body);

// ---- anti-entropy (live replica repair) ----------------------------------

/// Content summary of one node's copy of one region. `checksum` is an
/// order-independent digest over the live (key, value) pairs — equal
/// checksums mean equal contents (up to hash collision), regardless of
/// write order, so two replicas can compare copies in O(1) wire bytes.
/// Versions are deliberately excluded: replicas converge on *contents*;
/// per-key version counters may differ by history even when data agrees.
struct RegionSummary {
  int32_t region = 0;
  uint64_t epoch = 0;  ///< the region's current update-stream epoch
  uint64_t seq = 0;    ///< updates within that epoch
  uint64_t count = 0;  ///< live keys
  uint64_t checksum = 0;
};

/// One live record in a region sync exchange.
struct RegionRecord {
  Key key = 0;
  uint64_t version = 0;
  std::string value;
};

std::string EncodeRegionSummaryRequest(int32_t region);
StatusOr<int32_t> DecodeRegionSummaryRequest(std::string_view body);

std::string EncodeRegionSummaryResponse(const StatusOr<RegionSummary>& result);
StatusOr<StatusOr<RegionSummary>> DecodeRegionSummaryResponse(
    std::string_view body);

struct RegionSyncRequest {
  int32_t region = 0;
  std::vector<RegionRecord> records;
};
std::string EncodeRegionSyncRequest(int32_t region,
                                    const std::vector<RegionRecord>& records);
StatusOr<RegionSyncRequest> DecodeRegionSyncRequest(std::string_view body);

std::string EncodeRegionSyncResponse(
    const StatusOr<std::vector<RegionRecord>>& result);
StatusOr<StatusOr<std::vector<RegionRecord>>> DecodeRegionSyncResponse(
    std::string_view body);

}  // namespace joinopt

#endif  // JOINOPT_NET_FRAME_H_
