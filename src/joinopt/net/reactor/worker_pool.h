// ReactorWorkerPool: the bounded execution stage between the reactor's IO
// threads and the VerbDispatcher. IO threads TryPost decoded requests
// (never blocking — a full queue is backpressure, reported to the caller
// so it can stop parsing that connection and leave the bytes in its read
// buffer); a fixed set of worker threads pop and run them. Verbs can be
// arbitrarily slow (a UDF sleeping in Execute), so keeping them off the
// IO threads is what keeps thousands of idle connections serviceable by
// one poller.
#ifndef JOINOPT_NET_REACTOR_WORKER_POOL_H_
#define JOINOPT_NET_REACTOR_WORKER_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "joinopt/common/lock_ranks.h"
#include "joinopt/engine/bounded_queue.h"

namespace joinopt {

class ReactorWorkerPool {
 public:
  using Task = std::function<void()>;

  ReactorWorkerPool(int num_threads, size_t queue_capacity)
      : num_threads_(num_threads > 0 ? num_threads : 1),
        queue_(queue_capacity, lock_rank::kReactorQueue) {}
  ~ReactorWorkerPool() { Stop(); }

  ReactorWorkerPool(const ReactorWorkerPool&) = delete;
  ReactorWorkerPool& operator=(const ReactorWorkerPool&) = delete;

  void Start() {
    threads_.reserve(num_threads_);
    for (int i = 0; i < num_threads_; ++i) {
      threads_.emplace_back([this] {
        while (auto task = queue_.Pop()) (*task)();
      });
    }
  }

  /// Drains pending tasks, then joins. Idempotent.
  void Stop() {
    queue_.Close();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  /// Non-blocking submit; false when the queue is full (or the pool is
  /// stopped) — the caller retries later, it must never block an IO
  /// thread here.
  bool TryPost(Task task) { return queue_.TryPush(std::move(task)); }

  int thread_count() const { return num_threads_; }

 private:
  const int num_threads_;
  BoundedQueue<Task> queue_;
  std::vector<std::thread> threads_;
};

}  // namespace joinopt

#endif  // JOINOPT_NET_REACTOR_WORKER_POOL_H_
