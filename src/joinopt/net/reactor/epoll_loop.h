// EpollLoop: a thin RAII wrapper over one epoll instance plus an eventfd
// wake channel — the per-IO-thread readiness core of the reactor backend
// (DESIGN.md §13).
//
// Level-triggered on purpose: edge-triggered epoll demands drain-to-EAGAIN
// discipline on every path or events are lost forever; level-triggered
// re-arms for free, and the reactor bounds per-wakeup work explicitly (read
// chunk caps, the pipeline limit) instead of relying on ET to batch. The
// throughput difference is noise at this system's frame sizes; the
// correctness difference is not.
//
// Thread model: Add/Mod/Del and Wait belong to the loop's IO thread (epoll
// itself allows cross-thread ctl, but the reactor routes all interest
// changes through the owning thread so interest state needs no lock).
// Wake() is the one cross-thread entry point: any thread may call it to
// pop the IO thread out of Wait early (worker finished a response, Stop
// requested, a connection was handed to this loop).
#ifndef JOINOPT_NET_REACTOR_EPOLL_LOOP_H_
#define JOINOPT_NET_REACTOR_EPOLL_LOOP_H_

#include <sys/epoll.h>

#include <cstdint>

#include "joinopt/common/status.h"

namespace joinopt {

/// epoll_event.data.u64 value reserved for the wake eventfd; Wait drains
/// and filters these, so callers never see the tag.
inline constexpr uint64_t kEpollWakeTag = ~0ull;

class EpollLoop {
 public:
  EpollLoop() = default;
  ~EpollLoop();

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Creates the epoll instance and wake eventfd. Must be called (once)
  /// before anything else; separate from the constructor so fd exhaustion
  /// is a Status, not a half-built object.
  Status Init();

  /// Registers `fd` with the given EPOLL* interest mask; `tag` comes back
  /// in epoll_event.data.u64 (the reactor uses connection ids, never
  /// pointers, so a stale event after a close resolves to nothing).
  Status Add(int fd, uint32_t events, uint64_t tag);
  Status Mod(int fd, uint32_t events, uint64_t tag);
  /// Best-effort deregistration (the fd may already be closed).
  void Del(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) for readiness; fills `out`
  /// with up to `max_events` events, wake-tag entries already filtered and
  /// the eventfd drained. Returns the event count (0 on timeout or when
  /// the only event was a wake). EINTR retries internally.
  StatusOr<int> Wait(struct epoll_event* out, int max_events,
                     int timeout_ms);

  /// Makes the current or next Wait return promptly. Callable from any
  /// thread; async-signal-safe-free path (one 8-byte write).
  void Wake();

  bool valid() const { return epoll_fd_ >= 0; }

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
};

}  // namespace joinopt

#endif  // JOINOPT_NET_REACTOR_EPOLL_LOOP_H_
