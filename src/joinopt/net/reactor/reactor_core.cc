#include "joinopt/net/reactor/reactor_core.h"

#include "joinopt/net/net_fault.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <string_view>
#include <utility>

namespace joinopt {

namespace {

/// epoll tag of the listen socket (loop 0 only; conn ids start at 1).
constexpr uint64_t kListenerTag = 0;

/// Read-chunk size and per-wakeup chunk cap: level-triggered epoll re-arms
/// a still-readable fd, so bounding work here trades a little syscall
/// overhead for fairness across connections on one loop.
constexpr size_t kReadChunk = 64 * 1024;
constexpr int kMaxReadChunksPerWakeup = 4;

/// iovec fan-in per writev call.
constexpr int kMaxIov = 16;

ReactorConnLimits LimitsFrom(const ReactorOptions& o) {
  ReactorConnLimits l;
  l.max_frame_bytes = o.max_frame_bytes;
  l.write_high_watermark = o.write_high_watermark;
  l.write_low_watermark = std::min(o.write_low_watermark,
                                   o.write_high_watermark);
  l.max_pipeline = o.max_pipelined_requests > 0 ? o.max_pipelined_requests
                                                : 1;
  l.notify_queue_capacity = o.notify_queue_capacity ? o.notify_queue_capacity
                                                    : 1;
  return l;
}

}  // namespace

ReactorCore::ReactorCore(VerbDispatcher* dispatcher, RpcAtomicStats* stats,
                         ReactorOptions options)
    : dispatcher_(dispatcher),
      stats_(stats),
      options_(std::move(options)),
      limits_(LimitsFrom(options_)),
      worker_pool_(options_.worker_threads, options_.worker_queue_capacity) {}

ReactorCore::~ReactorCore() { Stop(); }

Status ReactorCore::Start() {
  JOINOPT_ASSIGN_OR_RETURN(
      listen_fd_,
      TcpListen(options_.host, options_.port, options_.accept_backlog));
  JOINOPT_ASSIGN_OR_RETURN(port_, BoundPort(listen_fd_.get()));
  // TcpListen hands back a *blocking* socket (the legacy backend polls
  // before each accept). The reactor drains accepts to completion, so the
  // listener must be non-blocking or the last accept4 parks the IO thread.
  int lflags = ::fcntl(listen_fd_.get(), F_GETFL, 0);
  if (lflags < 0 ||
      ::fcntl(listen_fd_.get(), F_SETFL, lflags | O_NONBLOCK) < 0) {
    Status s = ErrnoToStatus(errno, "fcntl(listen O_NONBLOCK)");
    listen_fd_.Reset();
    return s;
  }

  int num_loops = options_.io_threads > 0 ? options_.io_threads : 1;
  loops_.clear();
  for (int i = 0; i < num_loops; ++i) {
    loops_.push_back(std::make_unique<Loop>());
    Status s = loops_.back()->epoll.Init();
    if (!s.ok()) {
      loops_.clear();
      listen_fd_.Reset();
      return s;
    }
  }
  // The accept path is level-triggered readability on loop 0.
  Status s = loops_[0]->epoll.Add(listen_fd_.get(), EPOLLIN, kListenerTag);
  if (!s.ok()) {
    loops_.clear();
    listen_fd_.Reset();
    return s;
  }

  stop_.store(false, std::memory_order_release);
  worker_pool_.Start();
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread([this, i] { IoLoop(i); });
  }
  stats_->server_threads += serving_threads();
  return Status::OK();
}

void ReactorCore::Stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& loop : loops_) loop->epoll.Wake();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Workers after loops: in-flight tasks append to closed connections
  // (no-ops) and their RequestFlush wakes nobody — both harmless.
  worker_pool_.Stop();
  listen_fd_.Reset();
  stats_->server_threads -= serving_threads();
}

void ReactorCore::RequestFlush(size_t loop_index, uint64_t conn_id) {
  Loop& loop = *loops_[loop_index];
  {
    MutexLock lock(loop.mu);
    loop.dirty.push_back(conn_id);
  }
  loop.epoll.Wake();
}

void ReactorCore::IoLoop(size_t index) {
  Loop& loop = *loops_[index];
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  const int idle_ms =
      std::max(1, static_cast<int>(options_.poll_tick * 1000));

  while (!stop_.load(std::memory_order_acquire)) {
    // A stalled connection (frames waiting for worker-queue space) has no
    // readiness event to retry on — poll fast until it drains.
    int timeout_ms = loop.stalled.empty() ? idle_ms : 2;
    auto n = loop.epoll.Wait(events, kMaxEvents, timeout_ms);
    if (!n.ok()) break;  // EBADF etc. — only plausible during teardown

    // Adopt connections handed over by loop 0's acceptor.
    std::vector<std::shared_ptr<ReactorConn>> fresh;
    {
      MutexLock lock(loop.mu);
      fresh.swap(loop.incoming);
    }
    for (auto& conn : fresh) {
      conn->interest_ = EPOLLIN;
      if (!loop.epoll.Add(conn->fd_.get(), EPOLLIN, conn->id()).ok()) {
        --stats_->live_connections;
        continue;  // conn drops here; the fd closes with it
      }
      loop.conns.emplace(conn->id(), std::move(conn));
    }

    for (int i = 0; i < *n; ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        if (index == 0) HandleAccept(loop);
        continue;
      }
      auto it = loop.conns.find(tag);
      if (it == loop.conns.end()) continue;  // torn down this iteration
      std::shared_ptr<ReactorConn> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        Teardown(loop, conn);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(loop, conn);
      if (!conn->fd_.valid()) continue;  // HandleReadable tore it down
      if (events[i].events & EPOLLOUT) TryFlush(loop, conn);
    }

    // Flush requests from workers / update fanout.
    std::vector<uint64_t> dirty;
    {
      MutexLock lock(loop.mu);
      dirty.swap(loop.dirty);
    }
    for (uint64_t id : dirty) {
      auto it = loop.conns.find(id);
      if (it != loop.conns.end()) TryFlush(loop, it->second);
    }

    // Retry stalled connections against the worker queue.
    if (!loop.stalled.empty()) {
      std::vector<uint64_t> retry(loop.stalled.begin(), loop.stalled.end());
      loop.stalled.clear();
      for (uint64_t id : retry) {
        auto it = loop.conns.find(id);
        if (it == loop.conns.end()) continue;
        std::shared_ptr<ReactorConn> conn = it->second;
        ParseAndDispatch(loop, conn);
        if (conn->fd_.valid()) TryFlush(loop, conn);
      }
    }
  }

  // Teardown everything this loop owns (deregistering subscription sinks);
  // must run on this thread like every other epoll/conn-state touch.
  std::vector<std::shared_ptr<ReactorConn>> remaining;
  remaining.reserve(loop.conns.size());
  for (auto& [id, conn] : loop.conns) remaining.push_back(conn);
  for (auto& conn : remaining) Teardown(loop, conn);
  {
    MutexLock lock(loop.mu);
    loop.incoming.clear();
    loop.dirty.clear();
  }
}

void ReactorCore::HandleAccept(Loop& loop0) {
  for (;;) {
    int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, racing Stop(), or transient error
    if (!NetFaultInjector::Instance().OnAccept(port_, fd)) {
      // Injected partition: drop the handshake the kernel already
      // completed — the peer sees a connect that never answers.
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ++stats_->connections_accepted;
    ++stats_->live_connections;
    uint64_t id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    size_t target = id % loops_.size();
    auto conn = std::make_shared<ReactorConn>(id, UniqueFd(fd), this,
                                              target, limits_, stats_);
    if (target == 0) {
      conn->interest_ = EPOLLIN;
      if (!loop0.epoll.Add(conn->fd_.get(), EPOLLIN, id).ok()) {
        --stats_->live_connections;
        continue;
      }
      loop0.conns.emplace(id, std::move(conn));
    } else {
      Loop& dest = *loops_[target];
      {
        MutexLock lock(dest.mu);
        dest.incoming.push_back(std::move(conn));
      }
      dest.epoll.Wake();
    }
  }
}

void ReactorCore::HandleReadable(Loop& loop,
                                 const std::shared_ptr<ReactorConn>& conn) {
  char buf[kReadChunk];
  for (int chunk = 0; chunk < kMaxReadChunksPerWakeup; ++chunk) {
    ssize_t n = ::read(conn->fd_.get(), buf, sizeof(buf));
    if (n > 0) {
      conn->read_buf_.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {  // peer closed; undelivered responses are moot
      Teardown(loop, conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    Teardown(loop, conn);
    return;
  }
  ParseAndDispatch(loop, conn);
  if (conn->fd_.valid()) TryFlush(loop, conn);
}

void ReactorCore::ParseAndDispatch(Loop& loop,
                                   const std::shared_ptr<ReactorConn>& conn) {
  size_t consumed = 0;
  bool kill = false;
  bool throttled = false;  // pipeline depth or write watermark
  bool stalled = false;    // worker queue full

  while (true) {
    std::string_view avail(conn->read_buf_);
    avail.remove_prefix(consumed);
    if (avail.size() < kFrameHeaderBytes) break;
    auto header = ParseFrameHeader(avail.substr(0, kFrameHeaderBytes),
                                   limits_.max_frame_bytes);
    if (!header.ok()) {
      ++stats_->protocol_errors;
      kill = true;
      break;
    }
    const size_t frame_size = kFrameHeaderBytes + header->body_len;
    if (avail.size() < frame_size) break;  // incomplete; wait for bytes

    if (header->type == MsgType::kSubscribeReq) {
      std::string body(avail.substr(kFrameHeaderBytes, header->body_len));
      consumed += frame_size;
      stats_->bytes_in += static_cast<int64_t>(frame_size);
      if (!HandleSubscribe(loop, conn, *header, body)) {
        kill = true;
        break;
      }
      continue;
    }

    // Backpressure gates, checked before consuming the frame so a paused
    // connection simply keeps the bytes buffered.
    {
      MutexLock lock(conn->mu_);
      if (conn->close_requested_) break;
      if (conn->inflight_ >= limits_.max_pipeline ||
          conn->write_bytes_ >= limits_.write_high_watermark) {
        throttled = true;
        break;
      }
      ++conn->inflight_;  // before TryPost: the worker may finish first
    }
    FrameHeader h = *header;
    std::string body(avail.substr(kFrameHeaderBytes, header->body_len));
    bool posted = worker_pool_.TryPost(
        [this, conn, h, body = std::move(body)]() mutable {
          auto [type, resp_body] = dispatcher_->Dispatch(h, body);
          if (type == static_cast<MsgType>(0)) {
            ++stats_->protocol_errors;
            conn->CompleteRequest("", /*kill=*/true);
            return;
          }
          auto frame = BuildFrame(type, h.seq, resp_body,
                                  limits_.max_frame_bytes,
                                  EchoWireVersion(h.version));
          if (!frame.ok()) {  // response exceeds the frame bound
            ++stats_->protocol_errors;
            conn->CompleteRequest("", /*kill=*/true);
            return;
          }
          conn->CompleteRequest(*std::move(frame), /*kill=*/false);
        });
    if (!posted) {
      MutexLock lock(conn->mu_);
      --conn->inflight_;
      stalled = true;
      break;
    }
    consumed += frame_size;
    stats_->bytes_in += static_cast<int64_t>(frame_size);
  }

  conn->read_buf_.erase(0, consumed);
  if (kill) {
    Teardown(loop, conn);
    return;
  }
  bool should_pause = throttled || stalled;
  if (should_pause != conn->reads_paused_) {
    conn->reads_paused_ = should_pause;
    if (should_pause) ++stats_->backpressure_pauses;
  }
  if (stalled) loop.stalled.insert(conn->id());
  UpdateInterest(loop, *conn);
}

bool ReactorCore::HandleSubscribe(Loop& loop,
                                  const std::shared_ptr<ReactorConn>& conn,
                                  const FrameHeader& header,
                                  const std::string& body) {
  (void)loop;
  // Same refusal modes as the legacy backend: no in-band error slot, so a
  // subscription we cannot serve is refused by dropping the connection.
  WritableDataService* writable = dispatcher_->writable();
  if (writable == nullptr || header.version < 2 ||
      !SupportedWireVersion(header.version)) {
    ++stats_->protocol_errors;
    return false;
  }
  auto subscriber = DecodeSubscribeRequest(body);
  if (!subscriber.ok()) {
    ++stats_->protocol_errors;
    return false;
  }
  if (conn->subscribed_io_) {
    ++stats_->protocol_errors;  // double-subscribe on one connection
    return false;
  }
  ++stats_->requests;
  conn->wire_version_ = header.version;
  conn->subscribed_io_ = true;
  {
    MutexLock lock(conn->mu_);
    conn->subscribed_ = true;
  }
  // Register the sink *before* taking the snapshot (mu_ released: the
  // fanout lock the service holds while calling sinks ranks below
  // kReactorConn). Events in the gap arrive twice — snapshot position +
  // queued event — and the subscriber's seq tracking dedups the overlap.
  writable->AddUpdateSink(conn.get());
  conn->sink_registered_ = true;
  auto frame = BuildFrame(MsgType::kSubscribeResp, header.seq,
                          EncodeSubscribeResponse(writable->EpochSnapshot()),
                          limits_.max_frame_bytes, header.version);
  if (!frame.ok()) return false;
  {
    MutexLock lock(conn->mu_);
    conn->write_bytes_ += frame->size();
    conn->write_queue_.push_back(*std::move(frame));
  }
  ++stats_->subscriptions;
  return true;
}

void ReactorCore::TryFlush(Loop& loop,
                           const std::shared_ptr<ReactorConn>& conn) {
  if (!conn->fd_.valid()) return;
  bool close_now = false;
  bool resume_reads = false;
  {
    MutexLock lock(conn->mu_);
    if (conn->closed_) return;

    // Injected half-open partition: this fd's transmit direction is
    // black-holed, so frames must not reach the kernel. Tear the
    // connection down instead — parity with the threaded backend, whose
    // SendAll performs the same check before every write.
    NetFaultInjector& nf = NetFaultInjector::Instance();
    if (nf.faults_active() && !nf.CheckSend(conn->fd_.get()).ok()) {
      close_now = true;
    }

    // Stage-then-write until no more progress: if one writev drains the
    // whole queue, pending notifies must be staged NOW — with the queue
    // empty there is no EPOLLOUT edge left to bring us back here.
    bool again = !close_now;
    while (again) {
    again = false;
    // Stage pending notifies into the write queue while it has headroom —
    // this is the throttle: a slow subscriber's events wait (coalescing)
    // in pending_notifies_ instead of ballooning the write queue.
    if (conn->subscribed_) {
      while (!conn->pending_notifies_.empty() &&
             conn->write_bytes_ < limits_.write_high_watermark) {
        UpdateEvent event = conn->pending_notifies_.front();
        conn->pending_notifies_.pop_front();
        conn->notify_index_.erase(event.key);
        auto frame = BuildFrame(MsgType::kNotifyEvt, conn->notify_seq_++,
                                EncodeNotifyEvent(event),
                                limits_.max_frame_bytes,
                                conn->wire_version_);
        if (!frame.ok()) continue;  // fixed-size body; cannot happen
        conn->write_bytes_ += frame->size();
        conn->write_queue_.push_back(*std::move(frame));
        ++stats_->notify_events;
      }
    }

    // writev as much as the kernel will take.
    while (!conn->write_queue_.empty()) {
      struct iovec iov[kMaxIov];
      int iov_count = 0;
      size_t offset = conn->front_offset_;
      for (const std::string& chunk : conn->write_queue_) {
        if (iov_count == kMaxIov) break;
        iov[iov_count].iov_base =
            const_cast<char*>(chunk.data()) + offset;
        iov[iov_count].iov_len = chunk.size() - offset;
        offset = 0;
        ++iov_count;
      }
      ssize_t w = ::writev(conn->fd_.get(), iov, iov_count);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_now = true;  // peer reset / torn socket
        break;
      }
      stats_->bytes_out += static_cast<int64_t>(w);
      size_t remaining = static_cast<size_t>(w);
      while (remaining > 0) {
        std::string& front = conn->write_queue_.front();
        size_t front_left = front.size() - conn->front_offset_;
        if (remaining >= front_left) {
          remaining -= front_left;
          conn->write_bytes_ -= front.size() - conn->front_offset_;
          conn->front_offset_ = 0;
          conn->write_queue_.pop_front();
        } else {
          conn->front_offset_ += remaining;
          conn->write_bytes_ -= remaining;
          remaining = 0;
        }
      }
    }
    if (!close_now && conn->write_queue_.empty() && conn->subscribed_ &&
        !conn->pending_notifies_.empty()) {
      again = true;  // the drain opened headroom; stage the next batch
    }
    }  // while (again)

    if (conn->close_requested_ &&
        (close_now ||
         (conn->write_queue_.empty() && conn->pending_notifies_.empty()))) {
      close_now = true;  // graceful: queued frames were delivered first
    }
    if (!close_now && conn->reads_paused_ &&
        conn->write_bytes_ <= limits_.write_low_watermark &&
        conn->inflight_ < limits_.max_pipeline &&
        !conn->close_requested_) {
      resume_reads = true;
    }
  }

  if (close_now) {
    Teardown(loop, conn);  // no locks held, as Teardown requires
    return;
  }
  if (resume_reads) {
    conn->reads_paused_ = false;
    // Frames may already be buffered; parse them now (re-pauses and
    // re-requests a flush itself if it must).
    ParseAndDispatch(loop, conn);
    if (!conn->fd_.valid()) return;
  }
  UpdateInterest(loop, *conn);
}

void ReactorCore::UpdateInterest(Loop& loop, ReactorConn& conn) {
  if (!conn.fd_.valid()) return;
  uint32_t want = conn.reads_paused_ ? 0u : EPOLLIN;
  {
    MutexLock lock(conn.mu_);
    if (conn.write_bytes_ > 0) want |= EPOLLOUT;
  }
  if (want == conn.interest_) return;
  conn.interest_ = want;
  loop.epoll.Mod(conn.fd_.get(), want, conn.id());
}

void ReactorCore::Teardown(Loop& loop,
                           const std::shared_ptr<ReactorConn>& conn) {
  if (!conn->fd_.valid()) return;  // already torn down
  {
    MutexLock lock(conn->mu_);
    conn->closed_ = true;  // workers/fanout writers become no-ops
  }
  if (conn->sink_registered_) {
    // After RemoveUpdateSink returns no OnUpdateEvent call is in flight
    // (the service holds its update lock across fanout). No locks held
    // here: kNodeUpdateFanout ranks below both reactor locks.
    dispatcher_->writable()->RemoveUpdateSink(conn.get());
    conn->sink_registered_ = false;
  }
  loop.epoll.Del(conn->fd_.get());
  conn->fd_.Reset();
  loop.stalled.erase(conn->id());
  loop.conns.erase(conn->id());
  --stats_->live_connections;
}

}  // namespace joinopt
