#include "joinopt/net/reactor/epoll_loop.h"

#include <errno.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "joinopt/net/socket.h"

namespace joinopt {

EpollLoop::~EpollLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EpollLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return ErrnoToStatus(errno, "epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    Status s = ErrnoToStatus(errno, "eventfd");
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return s;
  }
  return Add(wake_fd_, EPOLLIN, kEpollWakeTag);
}

Status EpollLoop::Add(int fd, uint32_t events, uint64_t tag) {
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return ErrnoToStatus(errno, "epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status EpollLoop::Mod(int fd, uint32_t events, uint64_t tag) {
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return ErrnoToStatus(errno, "epoll_ctl(MOD)");
  }
  return Status::OK();
}

void EpollLoop::Del(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

StatusOr<int> EpollLoop::Wait(struct epoll_event* out, int max_events,
                              int timeout_ms) {
  for (;;) {
    int n = ::epoll_wait(epoll_fd_, out, max_events, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoToStatus(errno, "epoll_wait");
    }
    // Drain and filter the wake channel in place. The counter value is
    // irrelevant — any number of Wake() calls collapse into one wakeup.
    int kept = 0;
    for (int i = 0; i < n; ++i) {
      if (out[i].data.u64 == kEpollWakeTag) {
        uint64_t junk;
        while (::read(wake_fd_, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      out[kept++] = out[i];
    }
    return kept;
  }
}

void EpollLoop::Wake() {
  uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

}  // namespace joinopt
