// ReactorConn: one non-blocking connection served by the reactor backend
// (DESIGN.md §13). The state is split by owner, not by class:
//
//  * IO-thread-confined — the read buffer, incremental frame parsing
//    cursor, epoll interest cache and subscription bookkeeping are touched
//    only by the owning EpollLoop's thread, so they need no lock at all.
//  * mu_-guarded (rank kReactorConn, the reactor's innermost lock) — the
//    bounded write queue, pipeline depth and pending-Notify coalescing
//    state, because three thread families reach them: worker threads
//    appending responses, update-fanout writers appending invalidation
//    events (holding kNodeUpdateFanout), and the IO thread flushing.
//
// Flow control lives here:
//  * The write queue is bounded by byte watermarks: past the high mark the
//    IO thread stops parsing new requests from this connection (the bytes
//    wait in the kernel socket buffer and then in the peer's send path —
//    end-to-end backpressure), resuming below the low mark.
//  * Pipelining is bounded by max_pipeline outstanding requests.
//  * Notify events pending for a slow subscriber coalesce per key: a newer
//    event for the same key replaces the older one and moves to the tail
//    (delivered seqs stay monotonic). The skipped sequence numbers are
//    provably superseded same-key updates, which is why the subscriber
//    treats live-stream gaps as benign (cluster/subscriber.h) instead of
//    re-syncing the region. Only a flood of *distinct* keys beyond the
//    bound still drops the stream — the legacy backend's behaviour, now
//    the last resort instead of the only answer.
#ifndef JOINOPT_NET_REACTOR_REACTOR_CONN_H_
#define JOINOPT_NET_REACTOR_REACTOR_CONN_H_

#include <cstdint>
#include <deque>
#include <list>
#include <string>
#include <unordered_map>

#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/sync.h"
#include "joinopt/net/frame.h"
#include "joinopt/net/socket.h"
#include "joinopt/net/update_hub.h"

namespace joinopt {

class ReactorCore;
struct RpcAtomicStats;

/// Per-connection bounds, copied from ReactorOptions at accept time.
struct ReactorConnLimits {
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  size_t write_high_watermark = 1u << 20;
  size_t write_low_watermark = 256u << 10;
  int max_pipeline = 64;
  size_t notify_queue_capacity = 4096;
};

class ReactorConn : public UpdateSink {
 public:
  ReactorConn(uint64_t id, UniqueFd fd, ReactorCore* core,
              size_t loop_index, const ReactorConnLimits& limits,
              RpcAtomicStats* stats);
  ~ReactorConn() override;

  uint64_t id() const { return id_; }

  /// UpdateSink: called on the writer's thread with the service's update
  /// lock (kNodeUpdateFanout) held — must only touch mu_-guarded state
  /// and request a flush. Coalesces per key as described above.
  void OnUpdateEvent(const UpdateEvent& event) override;

  /// Worker-thread completion: decrements the pipeline depth and, unless
  /// `kill` (undispatchable request — the stream can no longer be
  /// trusted), appends the encoded response frame. Wakes the IO thread.
  void CompleteRequest(std::string frame_bytes, bool kill);

 private:
  friend class ReactorCore;  // the IO thread's half lives in reactor_core.cc

  const uint64_t id_;
  ReactorCore* const core_;
  const size_t loop_index_;
  const ReactorConnLimits limits_;
  RpcAtomicStats* const stats_;

  // ---- IO-thread-confined (owning loop only; no lock) ----
  UniqueFd fd_;
  std::string read_buf_;          ///< unparsed inbound bytes
  bool reads_paused_ = false;     ///< EPOLLIN removed by backpressure
  uint32_t interest_ = 0;         ///< current epoll mask (Mod cache)
  bool subscribed_io_ = false;    ///< IO-side view of the subscription
  bool sink_registered_ = false;  ///< AddUpdateSink done, Remove pending
  uint8_t wire_version_ = kWireVersion;  ///< stamped on pushed notifies
  uint32_t notify_seq_ = 0;       ///< frame seq for kNotifyEvt pushes

  // ---- shared (workers, update fanout, IO thread) ----
  mutable Mutex mu_{lock_rank::kReactorConn, "ReactorConn::mu_"};
  std::deque<std::string> write_queue_ JOINOPT_GUARDED_BY(mu_);
  size_t write_bytes_ JOINOPT_GUARDED_BY(mu_) = 0;
  /// Bytes of write_queue_.front() already handed to the kernel.
  size_t front_offset_ JOINOPT_GUARDED_BY(mu_) = 0;
  int inflight_ JOINOPT_GUARDED_BY(mu_) = 0;  ///< pipelined requests
  bool closed_ JOINOPT_GUARDED_BY(mu_) = false;
  bool close_requested_ JOINOPT_GUARDED_BY(mu_) = false;
  /// Subscription pending-event queue with per-key coalescing index.
  bool subscribed_ JOINOPT_GUARDED_BY(mu_) = false;
  std::list<UpdateEvent> pending_notifies_ JOINOPT_GUARDED_BY(mu_);
  std::unordered_map<Key, std::list<UpdateEvent>::iterator> notify_index_
      JOINOPT_GUARDED_BY(mu_);
  bool notify_overflow_ JOINOPT_GUARDED_BY(mu_) = false;
};

}  // namespace joinopt

#endif  // JOINOPT_NET_REACTOR_REACTOR_CONN_H_
