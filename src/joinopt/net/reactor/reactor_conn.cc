#include "joinopt/net/reactor/reactor_conn.h"

#include <utility>

#include "joinopt/net/reactor/reactor_core.h"
#include "joinopt/net/verb_dispatcher.h"

namespace joinopt {

ReactorConn::ReactorConn(uint64_t id, UniqueFd fd, ReactorCore* core,
                         size_t loop_index, const ReactorConnLimits& limits,
                         RpcAtomicStats* stats)
    : id_(id),
      core_(core),
      loop_index_(loop_index),
      limits_(limits),
      stats_(stats),
      fd_(std::move(fd)) {}

ReactorConn::~ReactorConn() = default;

void ReactorConn::OnUpdateEvent(const UpdateEvent& event) {
  // Writer's thread, kNodeUpdateFanout held. kReactorConn ranks above it,
  // so taking mu_ here is legal nesting; calling back into the service is
  // not (and we don't).
  bool wake = false;
  {
    MutexLock lock(mu_);
    if (closed_ || close_requested_ || !subscribed_) return;
    auto it = notify_index_.find(event.key);
    if (it != notify_index_.end()) {
      // Same-key supersession: the newer event carries the key's final
      // version, so the older pending one is dead weight. Re-queue at the
      // tail so the seqs we eventually push stay monotonic.
      pending_notifies_.erase(it->second);
      pending_notifies_.push_back(event);
      it->second = std::prev(pending_notifies_.end());
      ++stats_->notify_coalesced;
      wake = true;
    } else if (pending_notifies_.size() >= limits_.notify_queue_capacity) {
      // Distinct-key flood: coalescing cannot compress this, and unbounded
      // buffering is worse than a re-sync. Latch overflow; the IO thread
      // finishes the queued frames and drops the stream.
      notify_overflow_ = true;
      close_requested_ = true;
      wake = true;
    } else {
      pending_notifies_.push_back(event);
      notify_index_.emplace(event.key, std::prev(pending_notifies_.end()));
      wake = true;
    }
  }
  // Outside mu_: RequestFlush takes the loop's handoff lock (rank
  // kReactorLoop, *below* kReactorConn).
  if (wake) core_->RequestFlush(loop_index_, id_);
}

void ReactorConn::CompleteRequest(std::string frame_bytes, bool kill) {
  {
    MutexLock lock(mu_);
    --inflight_;
    if (kill) {
      close_requested_ = true;
    } else if (!closed_ && !close_requested_) {
      write_bytes_ += frame_bytes.size();
      write_queue_.push_back(std::move(frame_bytes));
    }
  }
  core_->RequestFlush(loop_index_, id_);
}

}  // namespace joinopt
