// ReactorCore: the event-driven serving backend behind RpcServer
// (DESIGN.md §13). A fixed set of IO threads — each running one EpollLoop
// over non-blocking sockets — accepts connections, parses frames
// incrementally out of per-connection read buffers, and hands complete
// requests to a bounded worker pool that runs the shared VerbDispatcher.
// Responses come back through per-connection bounded write queues flushed
// with writev. Thread count is a function of configuration, never of
// connection count: 10k idle subscribers cost file descriptors and read
// buffers, not stacks.
//
// Wire behaviour is identical to the thread-per-connection backend (same
// frozen v1/v2 frames, same VerbDispatcher), with two deliberate
// extensions the old backend cannot express:
//  * request pipelining — a client may stream several requests before
//    reading responses (answers may complete out of order; the frame seq
//    is the correlation id, as the protocol always specified);
//  * Notify flow control — a slow subscriber is throttled through its
//    bounded write queue with per-key event coalescing instead of being
//    dropped for a full region re-sync (see reactor_conn.h).
#ifndef JOINOPT_NET_REACTOR_REACTOR_CORE_H_
#define JOINOPT_NET_REACTOR_REACTOR_CORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/status.h"
#include "joinopt/common/sync.h"
#include "joinopt/net/reactor/epoll_loop.h"
#include "joinopt/net/reactor/reactor_conn.h"
#include "joinopt/net/reactor/worker_pool.h"
#include "joinopt/net/socket.h"
#include "joinopt/net/verb_dispatcher.h"

namespace joinopt {

struct ReactorOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral
  int accept_backlog = 64;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Event-loop threads. One saturates loopback at this system's frame
  /// sizes; the knob exists for multi-NIC deployments and for testing the
  /// cross-loop handoff path.
  int io_threads = 1;
  /// Verb-execution threads (a UDF may block; IO threads never do).
  int worker_threads = 2;
  /// Requests queued toward the workers before IO threads stop parsing
  /// the affected connections (bytes stay in their read buffers).
  size_t worker_queue_capacity = 256;
  /// Per-connection write-queue byte watermarks: reads pause above high,
  /// resume below low.
  size_t write_high_watermark = 1u << 20;
  size_t write_low_watermark = 256u << 10;
  /// Outstanding pipelined requests per connection.
  int max_pipelined_requests = 64;
  /// Pending (coalesced) Notify events per subscription; a distinct-key
  /// flood beyond this drops the stream (subscriber re-syncs on redial).
  size_t notify_queue_capacity = 4096;
  /// Idle epoll timeout — bounds Stop() latency, like the legacy
  /// backend's poll tick.
  double poll_tick = 0.05;
  /// Logical endpoint id for NetFaultInjector partitions; -1 opts out.
  int32_t net_identity = -1;
};

class ReactorCore {
 public:
  /// `dispatcher` and `stats` are borrowed from the owning RpcServer and
  /// must outlive the core.
  ReactorCore(VerbDispatcher* dispatcher, RpcAtomicStats* stats,
              ReactorOptions options);
  ~ReactorCore();

  ReactorCore(const ReactorCore&) = delete;
  ReactorCore& operator=(const ReactorCore&) = delete;

  /// Binds, listens, spawns IO threads and workers. Not idempotent; the
  /// owning RpcServer serializes lifecycle under its own lock.
  Status Start();
  /// Tears down every connection (deregistering subscription sinks) and
  /// joins all threads. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  /// IO + worker threads — the constant the connection-scaling bench
  /// asserts stays flat.
  int serving_threads() const {
    return options_.io_threads + worker_pool_.thread_count();
  }

  /// Cross-thread flush request: marks `conn_id` dirty on its loop and
  /// wakes it. Called by workers (no locks held) and by update-fanout
  /// writers (kNodeUpdateFanout held; kReactorLoop ranks above it).
  void RequestFlush(size_t loop_index, uint64_t conn_id);

 private:
  /// One IO thread's world. Fields split like ReactorConn's: `conns` and
  /// `stalled` are touched only by the owning thread; the handoff lists
  /// under `mu` are the only cross-thread surface.
  struct Loop {
    EpollLoop epoll;
    std::thread thread;
    // IO-thread-confined:
    std::unordered_map<uint64_t, std::shared_ptr<ReactorConn>> conns;
    /// Connections with parsed-but-undispatched frames waiting for
    /// worker-queue space; retried on a short tick.
    std::unordered_set<uint64_t> stalled;
    // Cross-thread handoff:
    Mutex mu{lock_rank::kReactorLoop, "ReactorCore::Loop::mu"};
    std::vector<uint64_t> dirty JOINOPT_GUARDED_BY(mu);
    std::vector<std::shared_ptr<ReactorConn>> incoming
        JOINOPT_GUARDED_BY(mu);
  };

  void IoLoop(size_t index);
  void HandleAccept(Loop& loop);
  /// Drains the socket into the read buffer; may tear the connection down.
  void HandleReadable(Loop& loop, const std::shared_ptr<ReactorConn>& conn);
  /// Consumes complete frames from the read buffer: dispatches to the
  /// worker pool, handles Subscribe inline, applies the pipeline /
  /// write-watermark / worker-queue backpressure rules.
  void ParseAndDispatch(Loop& loop,
                        const std::shared_ptr<ReactorConn>& conn);
  /// Establishes a subscription on the IO thread (registers the conn as
  /// an UpdateSink, queues the epoch-snapshot response). False = refuse
  /// by dropping the connection, the signal subscribers already handle.
  bool HandleSubscribe(Loop& loop, const std::shared_ptr<ReactorConn>& conn,
                       const FrameHeader& header, const std::string& body);
  /// Stages pending notifies into the write queue (below the high
  /// watermark), writev-flushes, re-arms EPOLLOUT, resumes paused reads
  /// below the low watermark. May tear the connection down.
  void TryFlush(Loop& loop, const std::shared_ptr<ReactorConn>& conn);
  /// Recomputes and applies the epoll interest mask.
  void UpdateInterest(Loop& loop, ReactorConn& conn);
  /// Deregisters the sink, closes the fd, drops the loop's reference.
  /// Caller must hold no locks (RemoveUpdateSink takes kNodeUpdateFanout).
  void Teardown(Loop& loop, const std::shared_ptr<ReactorConn>& conn);

  VerbDispatcher* const dispatcher_;
  RpcAtomicStats* const stats_;
  const ReactorOptions options_;
  const ReactorConnLimits limits_;

  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{true};
  std::atomic<uint64_t> next_conn_id_{1};  // 0 is the listener's tag
  std::vector<std::unique_ptr<Loop>> loops_;
  ReactorWorkerPool worker_pool_;
};

}  // namespace joinopt

#endif  // JOINOPT_NET_REACTOR_REACTOR_CORE_H_
