// Loopback harness: N RpcServer replicas over one in-process DataService,
// plus an RpcClientService whose endpoint chain spans them — the
// deterministic fixture the socket tests and bench/rpc_transport use.
// Everything binds 127.0.0.1 on ephemeral ports, so parallel test runs
// never collide.
//
// Sharing one inner service across the replica servers mirrors the store's
// write-to-every-replica discipline (ParallelStoreConfig::replication_factor):
// whichever endpoint the client fails over to sees the same data.
#ifndef JOINOPT_NET_LOOPBACK_H_
#define JOINOPT_NET_LOOPBACK_H_

#include <memory>
#include <utility>
#include <vector>

#include "joinopt/net/rpc_client.h"
#include "joinopt/net/rpc_server.h"

namespace joinopt {

class LoopbackRpc {
 public:
  /// Starts `num_replicas` servers wrapping `inner` (with `fn` registered
  /// server-side) and a client across all of them. Check status() before
  /// use; a failed bind leaves no threads running.
  LoopbackRpc(DataService* inner, UserFn fn, int num_replicas = 1,
              RpcClientOptions client_options = {},
              RpcServerOptions server_options = {}) {
    for (int i = 0; i < num_replicas; ++i) {
      auto server = std::make_unique<RpcServer>(inner, fn, server_options);
      status_ = server->Start();
      if (!status_.ok()) return;
      client_options.endpoints.push_back(
          RpcEndpoint{server->host(), server->port()});
      servers_.push_back(std::move(server));
    }
    client_ = std::make_unique<RpcClientService>(std::move(client_options));
  }

  const Status& status() const { return status_; }

  RpcClientService& client() { return *client_; }
  RpcServer& server(int i = 0) { return *servers_[static_cast<size_t>(i)]; }
  int num_servers() const { return static_cast<int>(servers_.size()); }

  /// Kills one replica (joins its threads); the client's next transport
  /// error on it triggers backoff + failover to the survivors.
  void StopServer(int i) { servers_[static_cast<size_t>(i)]->Stop(); }

 private:
  Status status_;
  std::vector<std::unique_ptr<RpcServer>> servers_;
  std::unique_ptr<RpcClientService> client_;
};

}  // namespace joinopt

#endif  // JOINOPT_NET_LOOPBACK_H_
