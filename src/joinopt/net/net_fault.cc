#include "joinopt/net/net_fault.h"

#include <netinet/in.h>
#include <sys/socket.h>

namespace joinopt {

namespace {

thread_local int32_t g_net_identity = kNetIdentityNone;

/// Local or peer port of a connected IPv4 socket; 0 on any failure (the
/// hooks treat 0 / unknown as "not participating").
uint16_t SocketPort(int fd, bool peer) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  int rc = peer
               ? ::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len)
               : ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  if (rc < 0 || addr.sin_family != AF_INET) return 0;
  return ntohs(addr.sin_port);
}

}  // namespace

NetFaultInjector& NetFaultInjector::Instance() {
  static NetFaultInjector* instance = new NetFaultInjector();
  return *instance;
}

NetFaultInjector::ScopedIdentity::ScopedIdentity(int32_t id)
    : saved_(g_net_identity) {
  g_net_identity = id;
}

NetFaultInjector::ScopedIdentity::~ScopedIdentity() {
  g_net_identity = saved_;
}

int32_t NetFaultInjector::CurrentIdentity() { return g_net_identity; }

void NetFaultInjector::RegisterServerPort(uint16_t port, int32_t id) {
  if (port == 0 || id == kNetIdentityNone) return;
  MutexLock lock(mu_);
  server_ports_[port] = id;
  tracking_.store(true, std::memory_order_release);
}

void NetFaultInjector::UnregisterServerPort(uint16_t port) {
  MutexLock lock(mu_);
  server_ports_.erase(port);
}

void NetFaultInjector::BlockOneWay(int32_t from, int32_t to) {
  MutexLock lock(mu_);
  blocked_.insert({from, to});
  faults_active_.store(true, std::memory_order_release);
}

void NetFaultInjector::HealOneWay(int32_t from, int32_t to) {
  MutexLock lock(mu_);
  blocked_.erase({from, to});
  if (blocked_.empty()) {
    faults_active_.store(false, std::memory_order_release);
  }
}

void NetFaultInjector::Block(int32_t a, int32_t b) {
  MutexLock lock(mu_);
  blocked_.insert({a, b});
  blocked_.insert({b, a});
  faults_active_.store(true, std::memory_order_release);
}

void NetFaultInjector::Heal(int32_t a, int32_t b) {
  MutexLock lock(mu_);
  blocked_.erase({a, b});
  blocked_.erase({b, a});
  if (blocked_.empty()) {
    faults_active_.store(false, std::memory_order_release);
  }
}

void NetFaultInjector::HealAll() {
  MutexLock lock(mu_);
  blocked_.clear();
  faults_active_.store(false, std::memory_order_release);
}

bool NetFaultInjector::Blocked(int32_t from, int32_t to) const {
  MutexLock lock(mu_);
  return BlockedLocked(from, to);
}

int NetFaultInjector::active_rules() const {
  MutexLock lock(mu_);
  return static_cast<int>(blocked_.size());
}

bool NetFaultInjector::BlockedLocked(int32_t from, int32_t to) const {
  if (from == kNetIdentityNone || to == kNetIdentityNone) return false;
  return blocked_.count({from, to}) > 0;
}

Status NetFaultInjector::CheckConnect(uint16_t server_port) const {
  int32_t from = g_net_identity;
  if (from == kNetIdentityNone) return Status::OK();
  MutexLock lock(mu_);
  auto it = server_ports_.find(server_port);
  if (it == server_ports_.end()) return Status::OK();
  // A handshake needs both directions: the SYN travels from→to, the
  // SYN-ACK back. Either direction blocked means the dial times out.
  if (BlockedLocked(from, it->second) || BlockedLocked(it->second, from)) {
    return Status::Aborted("deadline exceeded in connect: injected partition");
  }
  return Status::OK();
}

void NetFaultInjector::OnConnected(int fd, uint16_t server_port) {
  int32_t from = g_net_identity;
  if (from == kNetIdentityNone) return;
  MutexLock lock(mu_);
  auto it = server_ports_.find(server_port);
  if (it == server_ports_.end()) return;
  uint16_t local_port = SocketPort(fd, /*peer=*/false);
  if (local_port != 0) client_ports_[local_port] = from;
  fds_[fd] = FdDirection{from, it->second, local_port};
}

bool NetFaultInjector::OnAccept(uint16_t listen_port, int conn_fd) {
  if (!tracking_.load(std::memory_order_acquire)) return true;
  MutexLock lock(mu_);
  auto self = server_ports_.find(listen_port);
  if (self == server_ports_.end()) return true;
  uint16_t peer_port = SocketPort(conn_fd, /*peer=*/true);
  auto peer = client_ports_.find(peer_port);
  if (peer == client_ports_.end()) {
    // The dialer's OnConnected may not have registered its ephemeral port
    // yet (accept and connect-return race on loopback). Remember the port
    // so CheckSend can resolve the peer lazily — otherwise a connection
    // that loses this race is untracked for its whole lifetime and
    // server→client half-open blocks silently miss it.
    if (peer_port != 0) {
      fds_[conn_fd] = FdDirection{self->second, kNetIdentityNone, 0,
                                  peer_port};
    }
    return true;
  }
  if (BlockedLocked(peer->second, self->second) ||
      BlockedLocked(self->second, peer->second)) {
    return false;
  }
  // Remember this fd's transmit direction (server → client) so responses
  // can be black-holed independently of the request direction.
  fds_[conn_fd] = FdDirection{self->second, peer->second, 0, 0};
  return true;
}

Status NetFaultInjector::CheckSend(int fd) const {
  MutexLock lock(mu_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::OK();
  if (it->second.to == kNetIdentityNone && it->second.peer_port != 0) {
    // Late resolution of a raced accept: by the first guarded send the
    // dialer has long since registered. Cache the hit — ephemeral ports
    // can be reused after the peer closes, so re-resolving every send
    // could bind this fd to a different, newer client.
    auto peer = client_ports_.find(it->second.peer_port);
    if (peer != client_ports_.end()) {
      it->second.to = peer->second;
      it->second.peer_port = 0;
    }
  }
  if (BlockedLocked(it->second.from, it->second.to)) {
    // The bytes would vanish on the wire; the sender's next observable
    // event is its own deadline, so fail with the timeout flavour now
    // instead of burning the real budget.
    return Status::Aborted("deadline exceeded in send: injected partition");
  }
  return Status::OK();
}

void NetFaultInjector::OnClose(int fd) {
  MutexLock lock(mu_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  if (it->second.local_port != 0) client_ports_.erase(it->second.local_port);
  fds_.erase(it);
}

}  // namespace joinopt
