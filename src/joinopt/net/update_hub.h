// Write-path extension of the DataService contract, used by the RPC layer
// to expose Put and the Subscribe/Notify invalidation stream (frame.h v2).
//
// A data node that owns mutable state implements WritableDataService; the
// RpcServer discovers the capability with a dynamic_cast at construction,
// so read-only services (LocalDataService, a bench echo service, ...) keep
// working unchanged — they simply answer Put/Subscribe with Unimplemented.
//
// Epoch/sequence discipline (the §4.2 invalidation path over real
// sockets): every region carries an (epoch, seq) pair. `seq` increments
// once per update in that region; `epoch` bumps when the node restarts,
// because its in-memory subscriber registrations died with it and a bare
// sequence comparison across the restart would silently miss updates. A
// subscriber re-syncs a region whenever it observes an epoch change or a
// sequence gap — see cluster/subscriber.h for the compute-side half.
#ifndef JOINOPT_NET_UPDATE_HUB_H_
#define JOINOPT_NET_UPDATE_HUB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "joinopt/common/status.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/net/frame.h"

namespace joinopt {

/// Receiver of update events. Registered sinks are invoked synchronously
/// on the writer's thread with the service's update lock held: an
/// implementation must be fast and must never call back into the service.
/// (The RpcServer's per-subscription sink just appends to a bounded queue
/// drained by the connection thread.)
class UpdateSink {
 public:
  virtual ~UpdateSink() = default;
  virtual void OnUpdateEvent(const UpdateEvent& event) = 0;
};

/// A DataService that also accepts writes and publishes an invalidation
/// stream. All methods are thread-safe.
class WritableDataService : public DataService {
 public:
  /// Stores `value` under `key`; returns the new (monotonic per-key)
  /// version. Bumps the owning region's sequence number and fans the
  /// resulting UpdateEvent out to every registered sink before returning.
  virtual StatusOr<uint64_t> Put(Key key, const std::string& value) = 0;

  /// Replica write: applies `value` under ApplyIfNewer semantics with the
  /// primary's assigned `version` as floor, so every replica of one
  /// logical write converges on the same version number (the invariant
  /// version-aware merges and "never read below the acked version" both
  /// depend on). Returns the key's resulting local version — `version`
  /// when applied, the existing newer version when the local copy already
  /// superseded it (still an ack: the replica holds data at least as new).
  /// Default Unimplemented: only replicated node services take part in
  /// write fan-out.
  virtual StatusOr<uint64_t> PutReplica(Key key, const std::string& value,
                                        uint64_t version) {
    (void)key;
    (void)value;
    (void)version;
    return Status::Unimplemented("replica writes not supported");
  }

  /// Current (epoch, seq) for every region this node can serve. Taken
  /// *after* AddUpdateSink to hand a new subscriber a position no event
  /// can slip behind (at-least-once: the subscriber dedups overlap).
  virtual std::vector<RegionEpoch> EpochSnapshot() const = 0;

  virtual void AddUpdateSink(UpdateSink* sink) = 0;
  virtual void RemoveUpdateSink(UpdateSink* sink) = 0;

  // ---- anti-entropy hooks (live replica repair, DESIGN.md §16) ----
  // Defaults answer Unimplemented so existing writable services (the
  // loopback test hub, wrappers) need no changes; ClusterNodeService
  // overrides both.

  /// Cheap content summary of one region (see RegionSummary in frame.h).
  virtual StatusOr<RegionSummary> SummarizeRegion(int32_t region) const {
    (void)region;
    return Status::Unimplemented("region summaries not supported");
  }

  /// Bidirectional repair: merge `records` (a peer's live copy of
  /// `region`) into local state, newest version per key winning, then
  /// return the local post-merge snapshot of the region for the peer to
  /// merge back. Neither side deletes: anti-entropy restores lost writes,
  /// it never propagates loss.
  virtual StatusOr<std::vector<RegionRecord>> SyncRegion(
      int32_t region, const std::vector<RegionRecord>& records) {
    (void)region;
    (void)records;
    return Status::Unimplemented("region sync not supported");
  }
};

}  // namespace joinopt

#endif  // JOINOPT_NET_UPDATE_HUB_H_
