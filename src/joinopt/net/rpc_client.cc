#include "joinopt/net/rpc_client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace joinopt {

RpcClientService::RpcClientService(RpcClientOptions options)
    : options_(std::move(options)), jitter_rng_(options_.seed) {
  pools_.reserve(options_.endpoints.size());
  for (size_t i = 0; i < options_.endpoints.size(); ++i) {
    pools_.push_back(std::make_unique<Pool>());
  }
}

RpcClientService::~RpcClientService() = default;

StatusOr<UniqueFd> RpcClientService::Acquire(size_t endpoint_idx) const {
  Pool& pool = *pools_[endpoint_idx];
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    if (!pool.idle.empty()) {
      UniqueFd fd = std::move(pool.idle.back());
      pool.idle.pop_back();
      return fd;
    }
  }
  const RpcEndpoint& ep = options_.endpoints[endpoint_idx];
  auto fd = TcpConnect(ep.host, ep.port, options_.connect_deadline);
  if (fd.ok()) ++stats_.connections_opened;
  return fd;
}

void RpcClientService::Release(size_t endpoint_idx, UniqueFd fd) const {
  Pool& pool = *pools_[endpoint_idx];
  std::lock_guard<std::mutex> lock(pool.mu);
  if (static_cast<int>(pool.idle.size()) < options_.max_pooled_per_endpoint) {
    pool.idle.push_back(std::move(fd));
  }
  // else: fd closes on scope exit
}

void RpcClientService::NoteTransportError(const Status& status) const {
  std::lock_guard<std::mutex> lock(rec_mu_);
  if (IsDeadlineExceeded(status)) ++rec_.timeouts;
}

double RpcClientService::BackoffSeconds(int attempt) const {
  const RecoveryConfig& rec = options_.recovery;
  double backoff = std::min(
      rec.backoff_max, rec.backoff_base * std::pow(2.0, attempt - 1));
  std::lock_guard<std::mutex> lock(rec_mu_);
  return backoff * (1.0 + rec.jitter_fraction * jitter_rng_.NextDouble());
}

StatusOr<std::string> RpcClientService::CallOnce(
    size_t endpoint_idx, MsgType req_type, const std::string& body) const {
  JOINOPT_ASSIGN_OR_RETURN(UniqueFd fd, Acquire(endpoint_idx));
  double io_deadline = options_.recovery.request_timeout;
  uint32_t seq = seq_.fetch_add(1, std::memory_order_relaxed);

  JOINOPT_RETURN_NOT_OK(SendFrame(fd.get(), req_type, seq, body, io_deadline,
                                  options_.max_frame_bytes));
  stats_.bytes_out +=
      static_cast<int64_t>(kFrameHeaderBytes + body.size());

  JOINOPT_ASSIGN_OR_RETURN(
      RecvdFrame resp,
      RecvFrame(fd.get(), io_deadline, options_.max_frame_bytes));
  stats_.bytes_in +=
      static_cast<int64_t>(kFrameHeaderBytes + resp.body.size());

  // A mismatched echo means the stream is desynced (e.g. a previous caller
  // abandoned a response); drop the connection, let the retry loop redial.
  if (resp.header.seq != seq ||
      resp.header.type != ResponseTypeFor(req_type)) {
    return Status::Aborted("rpc: response does not match request");
  }
  Release(endpoint_idx, std::move(fd));
  return std::move(resp.body);
}

StatusOr<std::string> RpcClientService::Call(MsgType req_type,
                                             const std::string& body) const {
  ++stats_.calls;
  if (options_.endpoints.empty()) {
    return Status::FailedPrecondition("rpc client has no endpoints");
  }
  const RecoveryConfig& rec = options_.recovery;
  const int attempts = rec.enabled ? std::max(rec.max_attempts, 1) : 1;
  Status last = Status::Internal("unreachable");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    size_t ep = static_cast<size_t>(attempt) % options_.endpoints.size();
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(BackoffSeconds(attempt)));
      std::lock_guard<std::mutex> lock(rec_mu_);
      ++rec_.retries;
      if (ep != 0) ++rec_.failovers;
    }
    auto result = CallOnce(ep, req_type, body);
    if (result.ok()) return result;
    if (!IsTransportError(result.status())) return result;  // not retriable
    NoteTransportError(result.status());
    last = result.status();
  }
  {
    std::lock_guard<std::mutex> lock(rec_mu_);
    ++rec_.tuples_failed;
  }
  return last;
}

StatusOr<DataService::Fetched> RpcClientService::Fetch(Key key) {
  JOINOPT_ASSIGN_OR_RETURN(std::string body,
                           Call(MsgType::kFetchReq, EncodeKeyRequest(key)));
  JOINOPT_ASSIGN_OR_RETURN(StatusOr<Fetched> result,
                           DecodeFetchResponse(body));
  return result;
}

StatusOr<std::string> RpcClientService::Execute(Key key,
                                                const std::string& params,
                                                const UserFn& /*fn*/) {
  JOINOPT_ASSIGN_OR_RETURN(
      std::string body,
      Call(MsgType::kExecuteReq, EncodeExecuteRequest(key, params)));
  JOINOPT_ASSIGN_OR_RETURN(StatusOr<std::string> result,
                           DecodeExecuteResponse(body));
  return result;
}

std::vector<StatusOr<std::string>> RpcClientService::ExecuteBatch(
    const std::vector<std::pair<Key, std::string>>& items,
    const UserFn& /*fn*/) {
  // One request frame, one response frame: the single round trip that
  // makes delegation batching worth it over a real network.
  auto fail_all = [&](const Status& status) {
    return std::vector<StatusOr<std::string>>(items.size(), status);
  };
  if (items.empty()) return {};
  auto body = Call(MsgType::kBatchReq, EncodeBatchRequest(items));
  if (!body.ok()) return fail_all(body.status());
  auto results = DecodeBatchResponse(*body);
  if (!results.ok()) return fail_all(results.status());
  if (results->size() != items.size()) {
    // A server answering a version-mismatch (or a decode failure on its
    // side) sends a single error result; fan it out index-aligned.
    Status status = results->empty()
                        ? Status::Internal("rpc: empty batch response")
                        : (results->front().ok()
                               ? Status::Internal(
                                     "rpc: batch response size mismatch")
                               : results->front().status());
    return fail_all(status);
  }
  return std::move(*results);
}

StatusOr<DataService::ItemStat> RpcClientService::Stat(Key key) const {
  JOINOPT_ASSIGN_OR_RETURN(std::string body,
                           Call(MsgType::kStatReq, EncodeKeyRequest(key)));
  JOINOPT_ASSIGN_OR_RETURN(StatusOr<ItemStat> result,
                           DecodeStatResponse(body));
  return result;
}

NodeId RpcClientService::OwnerOf(Key key) const {
  auto body = Call(MsgType::kOwnerReq, EncodeKeyRequest(key));
  if (!body.ok()) return kInvalidNode;
  auto node = DecodeOwnerResponse(*body);
  return node.ok() ? *node : kInvalidNode;
}

RecoveryCounters RpcClientService::recovery_counters() const {
  std::lock_guard<std::mutex> lock(rec_mu_);
  return rec_;
}

RpcClientStats RpcClientService::stats() const {
  RpcClientStats out;
  out.calls = stats_.calls.load(std::memory_order_relaxed);
  out.connections_opened =
      stats_.connections_opened.load(std::memory_order_relaxed);
  out.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  out.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  return out;
}

}  // namespace joinopt
