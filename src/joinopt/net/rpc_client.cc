#include "joinopt/net/rpc_client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "joinopt/common/hash.h"
#include "joinopt/net/net_fault.h"

namespace joinopt {

namespace {

/// Process-wide counter so every client instance gets a distinct dedup id
/// even when all of them use the default seed.
std::atomic<uint64_t> g_client_instance{0};

}  // namespace

RpcClientService::RpcClientService(RpcClientOptions options)
    : options_(std::move(options)), jitter_rng_(options_.seed) {
  pools_.reserve(options_.endpoints.size());
  outstanding_.reserve(options_.endpoints.size());
  for (size_t i = 0; i < options_.endpoints.size(); ++i) {
    pools_.push_back(std::make_unique<Pool>());
    outstanding_.push_back(std::make_unique<std::atomic<int>>(0));
  }
  client_id_ =
      Mix64(options_.seed ^
            Mix64(g_client_instance.fetch_add(1, std::memory_order_relaxed) +
                  1)) |
      1;  // nonzero: 0 means "no dedup" on the wire
  if (options_.hedging) {
    hedging_ = options_.hedging;
  } else if (options_.recovery.enabled && options_.recovery.hedging) {
    HedgingConfig hc;
    hc.percentile = options_.recovery.hedge_percentile;
    hc.budget = options_.recovery.hedge_budget;
    hc.burst = options_.recovery.hedge_burst;
    hc.fallback_delay = options_.recovery.hedge_delay;
    if (!options_.recovery.adaptive_hedging) {
      // Static mode: never leave warmup, so HedgeDelay always returns the
      // configured hedge_delay — but the budget still applies.
      hc.warmup = std::numeric_limits<int>::max();
    }
    hedging_ = std::make_shared<HedgingManager>(HedgingConfig::FromEnv(hc));
  }
}

RpcClientService::~RpcClientService() {
  // Hedged-exchange losers may still be mid-CallOnce when their waiter
  // returned; every attempt is deadline-bounded, so this drains quickly.
  while (inflight_attempts_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

StatusOr<UniqueFd> RpcClientService::Acquire(size_t endpoint_idx) const {
  Pool& pool = *pools_[endpoint_idx];
  {
    MutexLock lock(pool.mu);
    if (!pool.idle.empty()) {
      UniqueFd fd = std::move(pool.idle.back());
      pool.idle.pop_back();
      return fd;
    }
  }
  const RpcEndpoint& ep = options_.endpoints[endpoint_idx];
  // The injector identifies dialers by thread-local identity; attempt
  // threads (hedges) inherit it here rather than from their spawner.
  NetFaultInjector::ScopedIdentity fault_id(options_.net_identity);
  auto fd = TcpConnect(ep.host, ep.port, options_.connect_deadline);
  if (fd.ok()) ++stats_.connections_opened;
  return fd;
}

void RpcClientService::Release(size_t endpoint_idx, UniqueFd fd) const {
  Pool& pool = *pools_[endpoint_idx];
  MutexLock lock(pool.mu);
  if (static_cast<int>(pool.idle.size()) < options_.max_pooled_per_endpoint) {
    pool.idle.push_back(std::move(fd));
  }
  // else: fd closes on scope exit
}

void RpcClientService::NoteTransportError(const Status& status) const {
  MutexLock lock(rec_mu_);
  if (IsDeadlineExceeded(status)) ++rec_.timeouts;
}

double RpcClientService::BackoffSeconds(int attempt) const {
  const RecoveryConfig& rec = options_.recovery;
  double backoff = std::min(
      rec.backoff_max, rec.backoff_base * std::pow(2.0, attempt - 1));
  MutexLock lock(rec_mu_);
  return backoff * (1.0 + rec.jitter_fraction * jitter_rng_.NextDouble());
}

StatusOr<std::string> RpcClientService::CallOnce(
    size_t endpoint_idx, MsgType req_type, const std::string& body) const {
  JOINOPT_ASSIGN_OR_RETURN(UniqueFd fd, Acquire(endpoint_idx));
  double io_deadline = options_.recovery.request_timeout;
  uint32_t seq = seq_.fetch_add(1, std::memory_order_relaxed);

  JOINOPT_RETURN_NOT_OK(SendFrame(fd.get(), req_type, seq, body, io_deadline,
                                  options_.max_frame_bytes));
  stats_.bytes_out +=
      static_cast<int64_t>(kFrameHeaderBytes + body.size());

  JOINOPT_ASSIGN_OR_RETURN(
      RecvdFrame resp,
      RecvFrame(fd.get(), io_deadline, options_.max_frame_bytes));
  stats_.bytes_in +=
      static_cast<int64_t>(kFrameHeaderBytes + resp.body.size());

  // A mismatched echo means the stream is desynced (e.g. a previous caller
  // abandoned a response); drop the connection, let the retry loop redial.
  if (resp.header.seq != seq ||
      resp.header.type != ResponseTypeFor(req_type)) {
    return Status::Aborted("rpc: response does not match request");
  }
  Release(endpoint_idx, std::move(fd));
  return std::move(resp.body);
}

StatusOr<std::string> RpcClientService::TimedCallOnce(
    size_t endpoint_idx, MsgType req_type, const std::string& body,
    bool is_hedge) const {
  if (hedging_ && !is_hedge) hedging_->OnRequestIssued();
  outstanding_[endpoint_idx]->fetch_add(1, std::memory_order_relaxed);
  auto t0 = std::chrono::steady_clock::now();
  auto result = CallOnce(endpoint_idx, req_type, body);
  outstanding_[endpoint_idx]->fetch_sub(1, std::memory_order_relaxed);
  if (hedging_ && result.ok()) {
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    hedging_->ObserveLatency(static_cast<uint64_t>(endpoint_idx), seconds);
  }
  return result;
}

void RpcClientService::LaunchAttempt(std::shared_ptr<HedgeState> state,
                                     size_t endpoint_idx, MsgType req_type,
                                     std::string body, bool is_hedge) const {
  {
    MutexLock lock(state->mu);
    ++state->pending;
  }
  inflight_attempts_.fetch_add(1, std::memory_order_acq_rel);
  std::thread([this, state = std::move(state), endpoint_idx, req_type,
               body = std::move(body), is_hedge] {
    auto result = TimedCallOnce(endpoint_idx, req_type, body, is_hedge);
    bool duplicate = false;
    {
      MutexLock lock(state->mu);
      --state->pending;
      if (result.ok()) {
        if (state->has_winner) {
          duplicate = true;  // both attempts succeeded; first one won
        } else {
          state->has_winner = true;
          state->winner_is_hedge = is_hedge;
          state->winner_body = std::move(*result);
        }
      } else if (!state->has_error) {
        state->has_error = true;
        state->first_error = result.status();
      }
      state->cv.NotifyAll();
    }
    if (!result.ok()) NoteTransportError(result.status());
    if (duplicate) {
      MutexLock lock(rec_mu_);
      ++rec_.duplicates_ignored;
      if (state->is_batch) ++rec_.batch_hedges_absorbed;
    }
    inflight_attempts_.fetch_sub(1, std::memory_order_acq_rel);
  }).detach();
}

StatusOr<std::string> RpcClientService::HedgedCall(
    size_t primary, size_t secondary, MsgType req_type,
    const std::string& body) const {
  auto state = std::make_shared<HedgeState>();
  state->is_batch = req_type == MsgType::kBatchReq;
  LaunchAttempt(state, primary, req_type, body, /*is_hedge=*/false);
  const double delay = hedging_->HedgeDelay(static_cast<uint64_t>(primary));
  const auto hedge_at =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(delay);

  bool hedge_sent = false;
  bool winner_is_hedge = false;
  bool primary_still_out = false;
  StatusOr<std::string> out = Status::Internal("hedge: no result");
  {
    MutexLock lock(state->mu);
    // Phase 1: give the primary `delay` seconds to answer on its own.
    while (!state->has_winner && state->pending > 0) {
      double remain = std::chrono::duration<double>(
                          hedge_at - std::chrono::steady_clock::now())
                          .count();
      if (remain <= 0) break;
      state->cv.WaitFor(state->mu, remain);
    }
    primary_still_out = !state->has_winner && state->pending > 0;
  }
  // Phase 2: the primary is officially a straggler. Duplicate it if the
  // token bucket agrees. (The primary may answer between the unlock and
  // the launch — the hedge is then redundant but still raced correctly.)
  if (primary_still_out && hedging_->TryAcquireHedge()) {
    hedge_sent = true;
    LaunchAttempt(state, secondary, req_type, body, /*is_hedge=*/true);
  }
  {
    MutexLock lock(state->mu);
    while (!state->has_winner && state->pending > 0) {
      state->cv.Wait(state->mu);
    }
    if (state->has_winner) {
      winner_is_hedge = state->winner_is_hedge;
      out = std::move(state->winner_body);
    } else {
      out = state->has_error ? state->first_error
                             : Status::Internal("hedge: no result");
    }
  }
  if (hedge_sent || winner_is_hedge) {
    MutexLock lock(rec_mu_);
    if (hedge_sent) {
      ++rec_.hedges_sent;
      if (req_type == MsgType::kBatchReq) ++rec_.batch_hedges_sent;
    }
    if (winner_is_hedge) ++rec_.hedges_won;
  }
  return out;
}

size_t RpcClientService::StartEndpoint(bool read) const {
  const size_t n = options_.endpoints.size();
  if (!read || !options_.balance_reads || n < 2) return 0;
  // Least outstanding wins; ties (the common idle case) rotate round-robin
  // so a healthy cluster still sees reads spread across the chain.
  int best = outstanding_[0]->load(std::memory_order_relaxed);
  std::vector<size_t> tied{0};
  for (size_t i = 1; i < n; ++i) {
    int v = outstanding_[i]->load(std::memory_order_relaxed);
    if (v < best) {
      best = v;
      tied.assign(1, i);
    } else if (v == best) {
      tied.push_back(i);
    }
  }
  return tied[balance_rr_.fetch_add(1, std::memory_order_relaxed) %
              tied.size()];
}

StatusOr<std::string> RpcClientService::Call(MsgType req_type,
                                             const std::string& body,
                                             bool read,
                                             bool idempotent) const {
  ++stats_.calls;
  if (options_.endpoints.empty()) {
    return Status::FailedPrecondition("rpc client has no endpoints");
  }
  const RecoveryConfig& rec = options_.recovery;
  const int attempts = rec.enabled ? std::max(rec.max_attempts, 1) : 1;
  const size_t n = options_.endpoints.size();
  const size_t start = StartEndpoint(read);
  // Hedge read verbs (needs a sibling replica) and idempotent tagged
  // batches (safe even against a single endpoint: the server's dedup cache
  // absorbs the duplicate). Writes and untagged compute stay primary-first
  // and unhedged — the engine's cost model placed them.
  const bool hedge_reads = read && hedging_ != nullptr && n >= 2;
  const bool hedge_idem = idempotent && hedging_ != nullptr && n >= 1 &&
                          options_.hedge_idempotent_batches;
  Status last = Status::Internal("unreachable");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    size_t ep = (start + static_cast<size_t>(attempt)) % n;
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(BackoffSeconds(attempt)));
      MutexLock lock(rec_mu_);
      ++rec_.retries;
      if (ep != start) ++rec_.failovers;
    }
    // The hedged exchange covers the first attempt only; backoff retries
    // are already failure handling, doubling them would amplify an outage.
    const bool hedged = (hedge_reads || hedge_idem) && attempt == 0;
    // With a single-endpoint chain the hedge targets the same endpoint
    // over a fresh connection: it races a stuck exchange, not a slow node.
    const size_t secondary = n >= 2 ? (ep + 1) % n : ep;
    auto result = hedged ? HedgedCall(ep, secondary, req_type, body)
                         : TimedCallOnce(ep, req_type, body,
                                         /*is_hedge=*/false);
    if (result.ok()) return result;
    if (!IsTransportError(result.status())) return result;  // not retriable
    // Hedged attempts count their transport errors in LaunchAttempt (both
    // racers, not just the returned one).
    if (!hedged) NoteTransportError(result.status());
    last = result.status();
  }
  {
    MutexLock lock(rec_mu_);
    ++rec_.tuples_failed;
  }
  return last;
}

StatusOr<DataService::Fetched> RpcClientService::Fetch(Key key) {
  JOINOPT_ASSIGN_OR_RETURN(std::string body,
                           Call(MsgType::kFetchReq, EncodeKeyRequest(key),
                                /*read=*/true));
  JOINOPT_ASSIGN_OR_RETURN(StatusOr<Fetched> result,
                           DecodeFetchResponse(body));
  return result;
}

StatusOr<std::string> RpcClientService::Execute(Key key,
                                                const std::string& params,
                                                const UserFn& /*fn*/) {
  JOINOPT_ASSIGN_OR_RETURN(
      std::string body,
      Call(MsgType::kExecuteReq, EncodeExecuteRequest(key, params)));
  JOINOPT_ASSIGN_OR_RETURN(StatusOr<std::string> result,
                           DecodeExecuteResponse(body));
  return result;
}

std::vector<StatusOr<std::string>> RpcClientService::ExecuteBatch(
    const std::vector<std::pair<Key, std::string>>& items,
    const UserFn& /*fn*/) {
  return ExecuteBatchTagged(
      items, client_id_,
      batch_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
}

std::vector<StatusOr<std::string>> RpcClientService::ExecuteBatchTagged(
    const std::vector<std::pair<Key, std::string>>& items,
    uint64_t client_id, uint64_t batch_seq) {
  // One request frame, one response frame: the single round trip that
  // makes delegation batching worth it over a real network. The tag rides
  // in the (byte-identical across retries) body, so a retry whose original
  // response was lost hits the server's dedup cache.
  auto fail_all = [&](const Status& status) {
    return std::vector<StatusOr<std::string>>(items.size(), status);
  };
  if (items.empty()) return {};
  // A nonzero client id means the server dedups replays of this exact
  // request, which is what makes duplicating it (hedging) safe.
  auto body = Call(MsgType::kBatchReq,
                   EncodeTaggedBatchRequest(client_id, batch_seq, items),
                   /*read=*/false, /*idempotent=*/client_id != 0);
  if (!body.ok()) return fail_all(body.status());
  auto results = DecodeBatchResponse(*body);
  if (!results.ok()) return fail_all(results.status());
  if (results->size() != items.size()) {
    // A server answering a version-mismatch (or a decode failure on its
    // side) sends a single error result; fan it out index-aligned.
    Status status = results->empty()
                        ? Status::Internal("rpc: empty batch response")
                        : (results->front().ok()
                               ? Status::Internal(
                                     "rpc: batch response size mismatch")
                               : results->front().status());
    return fail_all(status);
  }
  return std::move(*results);
}

StatusOr<DataService::ItemStat> RpcClientService::Stat(Key key) const {
  JOINOPT_ASSIGN_OR_RETURN(std::string body,
                           Call(MsgType::kStatReq, EncodeKeyRequest(key),
                                /*read=*/true));
  JOINOPT_ASSIGN_OR_RETURN(StatusOr<ItemStat> result,
                           DecodeStatResponse(body));
  return result;
}

NodeId RpcClientService::OwnerOf(Key key) const {
  auto body =
      Call(MsgType::kOwnerReq, EncodeKeyRequest(key), /*read=*/true);
  if (!body.ok()) return kInvalidNode;
  auto node = DecodeOwnerResponse(*body);
  return node.ok() ? *node : kInvalidNode;
}

StatusOr<RegionSummary> RpcClientService::SummarizeRegion(int32_t region) {
  JOINOPT_ASSIGN_OR_RETURN(std::string body,
                           Call(MsgType::kRegionSummaryReq,
                                EncodeRegionSummaryRequest(region),
                                /*read=*/true));
  JOINOPT_ASSIGN_OR_RETURN(StatusOr<RegionSummary> result,
                           DecodeRegionSummaryResponse(body));
  return result;
}

StatusOr<std::vector<RegionRecord>> RpcClientService::SyncRegion(
    int32_t region, const std::vector<RegionRecord>& records) {
  JOINOPT_ASSIGN_OR_RETURN(std::string body,
                           Call(MsgType::kRegionSyncReq,
                                EncodeRegionSyncRequest(region, records)));
  JOINOPT_ASSIGN_OR_RETURN(StatusOr<std::vector<RegionRecord>> result,
                           DecodeRegionSyncResponse(body));
  return result;
}

StatusOr<uint64_t> RpcClientService::Put(Key key, const std::string& value,
                                         uint64_t version_floor) {
  JOINOPT_ASSIGN_OR_RETURN(
      std::string body,
      Call(MsgType::kPutReq, EncodePutRequest(key, value, version_floor)));
  JOINOPT_ASSIGN_OR_RETURN(StatusOr<uint64_t> result,
                           DecodePutResponse(body));
  return result;
}

RecoveryCounters RpcClientService::recovery_counters() const {
  MutexLock lock(rec_mu_);
  return rec_;
}

RpcClientStats RpcClientService::stats() const {
  RpcClientStats out;
  out.calls = stats_.calls.load(std::memory_order_relaxed);
  out.connections_opened =
      stats_.connections_opened.load(std::memory_order_relaxed);
  out.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  out.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  return out;
}

}  // namespace joinopt
