// RpcClientService: a DataService whose five verbs travel over TCP to one
// or more RpcServers. This is the client half of the transport — what a
// compute node holds instead of an in-process service pointer.
//
// Recovery: the options embed the engine's RecoveryConfig (engine/types.h),
// and failures drive the same timeout → backoff → replica-failover
// discipline the PR 1 fault machinery uses in the simulator, with activity
// reported through the same RecoveryCounters struct. Attempt k (0-based)
// targets endpoint k mod |endpoints| — the replica rotation of
// ComputeNodeRuntime::ReplicaForAttempt, applied to real sockets. Only
// *transport* errors (kAborted: refused/reset/closed connections and
// deadline expiries — see net/socket.h) are retried; in-band application
// statuses (NotFound, ...) are returned verbatim on the first attempt.
//
// Threading model: every verb is safe to call from any number of threads.
// Each endpoint has a bounded pool of idle connections; a call checks one
// out (dialing if the pool is empty), runs one synchronous request/response
// exchange, and returns the connection iff the exchange was clean. A
// connection that saw a transport error is closed, never reused — after a
// failed exchange the stream may hold a stale response that would desync
// the next caller.
#ifndef JOINOPT_NET_RPC_CLIENT_H_
#define JOINOPT_NET_RPC_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/random.h"
#include "joinopt/common/status.h"
#include "joinopt/common/sync.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/engine/hedging_manager.h"
#include "joinopt/engine/types.h"
#include "joinopt/net/socket.h"

namespace joinopt {

struct RpcEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RpcClientOptions {
  /// Replica chain, primary first — the same ordering ParallelStore's
  /// ReplicasOf() exposes. Attempt k targets endpoints[k % size].
  std::vector<RpcEndpoint> endpoints;
  /// Deadline for dialing a new connection (covers the TCP handshake).
  double connect_deadline = 1.0;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Idle connections kept per endpoint; excess connections are closed on
  /// release rather than pooled.
  int max_pooled_per_endpoint = 8;
  /// The engine's recovery knobs, reused verbatim: request_timeout is the
  /// per-attempt IO deadline, backoff_base/max + jitter_fraction pace the
  /// retries, max_attempts bounds the failover rotation. enabled=false
  /// degrades to exactly one attempt with io deadline = request_timeout.
  RecoveryConfig recovery;
  /// Spread read verbs (Fetch/Stat/OwnerOf) across the whole replica chain
  /// by least-outstanding-requests (round-robin among ties) instead of
  /// always dialing the primary. Writes and Execute/ExecuteBatch stay
  /// primary-first: delegated compute must run where the engine's cost
  /// model placed it. Failover rotation still applies on top, starting
  /// from the balanced choice.
  bool balance_reads = true;
  /// Shared hedging manager (DESIGN.md §15). When null and
  /// recovery.hedging is set, the client builds a private one from the
  /// recovery knobs (hedge_percentile/budget/burst, with hedge_delay as
  /// the pre-warmup fallback; recovery.adaptive_hedging=false pins the
  /// delay to hedge_delay forever while keeping the budget). Supplying one
  /// here pools the quantiles and the hedge budget across clients — the
  /// cluster layer does this so the whole process shares one budget.
  std::shared_ptr<HedgingManager> hedging;
  /// Seed for the deterministic backoff jitter.
  uint64_t seed = 0x5ca1ab1e;
  /// Logical endpoint id for NetFaultInjector partitions (net/net_fault.h).
  /// -1 (the default) opts out. The chaos harness tags cluster-internal
  /// clients with their owning node's id so half-open partitions hit the
  /// node-to-node paths, not just the external workload.
  int32_t net_identity = -1;
  /// Hedge idempotent tagged batches (ExecuteBatchTagged with a nonzero
  /// client id) like reads: a straggling batch is duplicated after the
  /// hedge delay, and — unlike reads — the duplicate may target the *same*
  /// endpoint, where the server's replay-dedup cache absorbs it (the
  /// in-flight-wait path makes racing duplicates exactly-once). This is
  /// what makes hedging useful to the cluster layer, whose per-node
  /// clients have single-endpoint chains.
  bool hedge_idempotent_batches = false;

  RpcClientOptions() {
    // Unlike the simulator (recovery off by default so event streams stay
    // byte-identical), a socket client always wants deadlines: a real
    // network can silently eat a request, and blocking forever is never
    // the right contract for DataService implementations.
    recovery.enabled = true;
    recovery.request_timeout = 2.0;
    recovery.backoff_base = 10e-3;
    recovery.backoff_max = 200e-3;
    recovery.max_attempts = 4;
  }
};

struct RpcClientStats {
  int64_t calls = 0;             ///< verb invocations (a batch counts once)
  int64_t connections_opened = 0;
  int64_t bytes_out = 0;
  int64_t bytes_in = 0;
};

class RpcClientService : public DataService {
 public:
  explicit RpcClientService(RpcClientOptions options);
  ~RpcClientService() override;

  RpcClientService(const RpcClientService&) = delete;
  RpcClientService& operator=(const RpcClientService&) = delete;

  // DataService verbs. `fn` is ignored by Execute/ExecuteBatch: the UDF is
  // registered server-side (RpcServer's constructor), coprocessor-style.
  StatusOr<Fetched> Fetch(Key key) override;
  StatusOr<std::string> Execute(Key key, const std::string& params,
                                const UserFn& fn) override;
  std::vector<StatusOr<std::string>> ExecuteBatch(
      const std::vector<std::pair<Key, std::string>>& items,
      const UserFn& fn) override;
  StatusOr<ItemStat> Stat(Key key) const override;
  /// One round trip; kInvalidNode when every replica is unreachable.
  NodeId OwnerOf(Key key) const override;

  /// Writes over the wire (frame v2); returns the new store version.
  /// Unimplemented when the server's service is not writable. A non-zero
  /// `version_floor` marks a replica write: the server applies with
  /// ApplyIfNewer semantics at the primary's version instead of assigning
  /// its own, so all replicas of one logical write share one number.
  StatusOr<uint64_t> Put(Key key, const std::string& value,
                         uint64_t version_floor = 0);

  /// ExecuteBatch with a caller-chosen dedup tag. The encoded request —
  /// tag included — is reused byte-identical across retry attempts, so a
  /// replay whose original response was lost is answered from the server's
  /// dedup cache instead of re-executing (exactly-once). The cluster layer
  /// uses this to keep the tag stable even when the retry lands on a
  /// different node's client. client_id 0 disables dedup.
  std::vector<StatusOr<std::string>> ExecuteBatchTagged(
      const std::vector<std::pair<Key, std::string>>& items,
      uint64_t client_id, uint64_t batch_seq);

  /// Anti-entropy verbs (frame v2, DESIGN.md §16). Unimplemented when the
  /// server's service carries no region state.
  StatusOr<RegionSummary> SummarizeRegion(int32_t region);
  StatusOr<std::vector<RegionRecord>> SyncRegion(
      int32_t region, const std::vector<RegionRecord>& records);

  /// What the recovery machinery did (same struct the simulator reports);
  /// tuples_failed counts calls abandoned after max_attempts.
  RecoveryCounters recovery_counters() const;
  RpcClientStats stats() const;
  size_t num_endpoints() const { return options_.endpoints.size(); }
  /// This client's auto-assigned batch-dedup id (nonzero, per-instance).
  uint64_t client_id() const { return client_id_; }

 private:
  struct Pool {
    /// Innermost lock (all pools share the rank; never nested).
    Mutex mu{lock_rank::kClientPool, "RpcClientService::Pool::mu"};
    std::vector<UniqueFd> idle JOINOPT_GUARDED_BY(mu);
  };

  /// Completion latch for one hedged read: the waiter blocks on `cv`
  /// while up to two attempt threads race; the first success wins.
  /// Heap-allocated and shared with the attempt threads, so a late loser
  /// finishing after the waiter returned still has somewhere to land.
  struct HedgeState {
    Mutex mu{lock_rank::kHedgeState, "RpcClientService::HedgeState::mu"};
    CondVar cv;
    /// Set once before any attempt launches: a duplicated tagged batch
    /// whose loser also succeeded was absorbed by the server's dedup
    /// cache, and is counted separately from ordinary read duplicates.
    bool is_batch = false;
    int pending JOINOPT_GUARDED_BY(mu) = 0;  ///< attempts still running
    bool has_winner JOINOPT_GUARDED_BY(mu) = false;
    bool winner_is_hedge JOINOPT_GUARDED_BY(mu) = false;
    std::string winner_body JOINOPT_GUARDED_BY(mu);
    bool has_error JOINOPT_GUARDED_BY(mu) = false;
    Status first_error JOINOPT_GUARDED_BY(mu) = Status::OK();
  };

  /// One request/response exchange with retry + failover. Returns the
  /// response body after verifying type and seq echo. `read` routes the
  /// first attempt through the load balancer (see balance_reads) and, when
  /// hedging is on, through the hedged exchange. `idempotent` marks a
  /// request safe to duplicate even against a single endpoint (tagged
  /// batches, whose dedup tag makes the replay exactly-once).
  StatusOr<std::string> Call(MsgType req_type, const std::string& body,
                             bool read = false,
                             bool idempotent = false) const;
  /// One attempt against one endpoint (no retries).
  StatusOr<std::string> CallOnce(size_t endpoint_idx, MsgType req_type,
                                 const std::string& body) const;
  /// CallOnce plus the bookkeeping an attempt needs: outstanding counts,
  /// latency measurement, and (when hedging) quantile/budget feeds.
  StatusOr<std::string> TimedCallOnce(size_t endpoint_idx, MsgType req_type,
                                      const std::string& body,
                                      bool is_hedge) const;
  /// The hedged read exchange (DESIGN.md §15): fire the primary, wait
  /// HedgeDelay(primary); if still unanswered and the budget grants a
  /// token, duplicate to `secondary`; first success wins, both-fail
  /// returns the first error into Call's retry loop.
  StatusOr<std::string> HedgedCall(size_t primary, size_t secondary,
                                   MsgType req_type,
                                   const std::string& body) const;
  /// Spawns one detached attempt thread reporting into `state`.
  void LaunchAttempt(std::shared_ptr<HedgeState> state, size_t endpoint_idx,
                     MsgType req_type, std::string body, bool is_hedge) const;
  /// First endpoint for a call: 0 (primary) for writes, the
  /// least-outstanding endpoint (round-robin among ties) for balanced
  /// reads.
  size_t StartEndpoint(bool read) const;
  StatusOr<UniqueFd> Acquire(size_t endpoint_idx) const;
  void Release(size_t endpoint_idx, UniqueFd fd) const;
  void NoteTransportError(const Status& status) const;
  double BackoffSeconds(int attempt) const;

  RpcClientOptions options_;
  /// Null unless hedging is configured (options_.hedging or built from the
  /// recovery knobs). Shared with attempt threads and possibly siblings.
  std::shared_ptr<HedgingManager> hedging_;
  /// Attempt threads in flight (hedged exchanges outlive their waiter);
  /// the destructor spins until this drains — bounded by the IO deadline.
  mutable std::atomic<int> inflight_attempts_{0};
  mutable std::vector<std::unique_ptr<Pool>> pools_;
  /// In-flight request count per endpoint (the load-balancing signal).
  mutable std::vector<std::unique_ptr<std::atomic<int>>> outstanding_;
  mutable std::atomic<uint32_t> balance_rr_{0};
  mutable std::atomic<uint32_t> seq_{1};
  mutable std::atomic<uint64_t> batch_seq_{0};
  uint64_t client_id_ = 0;

  mutable Mutex rec_mu_{lock_rank::kClientRecovery,
                        "RpcClientService::rec_mu_"};
  mutable RecoveryCounters rec_ JOINOPT_GUARDED_BY(rec_mu_);
  mutable Rng jitter_rng_ JOINOPT_GUARDED_BY(rec_mu_);

  struct AtomicStats {
    std::atomic<int64_t> calls{0};
    std::atomic<int64_t> connections_opened{0};
    std::atomic<int64_t> bytes_out{0};
    std::atomic<int64_t> bytes_in{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace joinopt

#endif  // JOINOPT_NET_RPC_CLIENT_H_
