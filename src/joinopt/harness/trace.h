// Time-series tracing for simulator runs: register named gauges, sample
// them periodically on the virtual clock, export as CSV. Used to inspect
// how queue depths, cache contents and node loads evolve during a run —
// the dynamics behind the end-to-end numbers the benches report.
#ifndef JOINOPT_HARNESS_TRACE_H_
#define JOINOPT_HARNESS_TRACE_H_

#include <functional>
#include <string>
#include <vector>

#include "joinopt/sim/event_queue.h"

namespace joinopt {

class Tracer {
 public:
  using Gauge = std::function<double()>;

  /// Samples every `interval` virtual seconds once Start() is called.
  Tracer(Simulation* sim, double interval)
      : sim_(sim), interval_(interval) {}

  /// Registers a gauge column (call before Start).
  void AddGauge(std::string name, Gauge gauge) {
    names_.push_back(std::move(name));
    gauges_.push_back(std::move(gauge));
  }

  /// Begins sampling; continues until Stop() or the simulation drains.
  /// Calling Start() while a sampling chain is already live is a no-op —
  /// a second chain would double every sample from that point on.
  void Start() {
    if (running_) return;
    running_ = true;
    stopped_ = false;
    Sample();
  }
  void Stop() { stopped_ = true; }

  size_t num_samples() const { return rows_.size(); }
  size_t num_gauges() const { return gauges_.size(); }
  double value_at(size_t sample, size_t gauge) const {
    return rows_[sample][gauge + 1];  // column 0 is time
  }
  double time_at(size_t sample) const { return rows_[sample][0]; }

  /// "time,<g1>,<g2>,...\n<t>,<v1>,<v2>..." — ready for plotting.
  std::string ToCsv() const;

 private:
  void Sample() {
    if (stopped_) {
      running_ = false;
      return;
    }
    std::vector<double> row;
    row.reserve(gauges_.size() + 1);
    row.push_back(sim_->now());
    for (const Gauge& g : gauges_) row.push_back(g());
    rows_.push_back(std::move(row));
    // Re-arm only while other work is pending, so the tracer never keeps
    // an otherwise-drained simulation alive.
    if (!sim_->empty()) {
      sim_->Schedule(interval_, [this] { Sample(); });
    } else {
      running_ = false;
    }
  }

  Simulation* sim_;
  double interval_;
  bool stopped_ = false;
  bool running_ = false;
  std::vector<std::string> names_;
  std::vector<Gauge> gauges_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace joinopt

#endif  // JOINOPT_HARNESS_TRACE_H_
