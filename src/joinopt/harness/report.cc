#include "joinopt/harness/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace joinopt {

ReportTable::ReportTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void ReportTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void ReportTable::AddNumericRow(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> row{label};
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string ReportTable::ToString() const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < cols; ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      os << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    os << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t c = 0; c < cols; ++c) total += width[c] + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void ReportTable::Print(const std::string& title) const {
  if (!title.empty()) {
    std::printf("\n=== %s ===\n", title.c_str());
  }
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

std::vector<double> NormalizeBy(const std::vector<double>& values,
                                double baseline) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(baseline != 0 ? v / baseline : 0.0);
  return out;
}

std::vector<double> InverseNormalizeBy(const std::vector<double>& values,
                                       double baseline) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(v != 0 ? baseline / v : 0.0);
  return out;
}

}  // namespace joinopt
