#include "joinopt/harness/runner.h"

namespace joinopt {

JobResult RunFrameworkJob(const GeneratedWorkload& workload,
                          Strategy strategy,
                          const FrameworkRunConfig& config) {
  Simulation sim;
  Cluster cluster(config.cluster);
  EngineConfig engine = config.engine;
  engine.computed_value_bytes = workload.computed_value_bytes;
  if (!workload.stage_selectivity.empty()) {
    engine.stage_selectivity = workload.stage_selectivity;
  }
  // Faults without recovery would strand every dropped request forever, so
  // a non-empty schedule switches the timeout/retry machinery on.
  if (!config.faults.empty()) engine.recovery.enabled = true;
  JoinJob job(&sim, &cluster, workload.store_ptrs(), strategy, engine);
  std::unique_ptr<FaultInjector> injector;
  if (!config.faults.empty()) {
    injector = std::make_unique<FaultInjector>(&sim, &cluster, config.faults);
    job.AttachFaultInjector(injector.get());
    injector->Arm();
  }
  for (size_t i = 0; i < workload.inputs.size(); ++i) {
    job.SetInput(static_cast<int>(i), workload.inputs[i],
                 config.arrival_rate_per_node);
  }
  return job.Run();
}

void AddFaultRecoveryGauges(Tracer* tracer, const JoinJob* job,
                            const FaultInjector* injector) {
  auto add = [tracer](const char* name, Tracer::Gauge g) {
    tracer->AddGauge(name, std::move(g));
  };
  add("tuples_done",
      [job] { return static_cast<double>(job->tuples_done()); });
  add("timeouts", [job] {
    return static_cast<double>(job->recovery_counters().timeouts);
  });
  add("retries", [job] {
    return static_cast<double>(job->recovery_counters().retries);
  });
  add("failovers", [job] {
    return static_cast<double>(job->recovery_counters().failovers);
  });
  add("hedges_won", [job] {
    return static_cast<double>(job->recovery_counters().hedges_won);
  });
  add("tuples_failed", [job] {
    return static_cast<double>(job->recovery_counters().tuples_failed);
  });
  add("messages_dropped", [injector] {
    if (injector == nullptr) return 0.0;
    const FaultStats& s = injector->stats();
    return static_cast<double>(s.requests_dropped + s.responses_dropped +
                               s.notifications_dropped);
  });
  add("nodes_down", [injector] {
    return injector == nullptr ? 0.0
                               : static_cast<double>(injector->nodes_down());
  });
}

ClusterConfig BaselineClusterConfig(const ClusterConfig& framework_config) {
  ClusterConfig c = framework_config;
  // Same total machine count, but every node is a worker (the paper gives
  // the MapReduce/Spark baselines all 20 nodes for a fair comparison).
  c.num_compute_nodes =
      framework_config.num_compute_nodes + framework_config.num_data_nodes;
  c.num_data_nodes = 0;
  return c;
}

AnnotationBaselineResult RunAnnotationBaselineJob(
    const AnnotationSpots& spots, MrBaselineKind kind,
    const ClusterConfig& framework_cluster, const MapReduceConfig& mr) {
  Simulation sim;
  Cluster cluster(BaselineClusterConfig(framework_cluster));
  return RunAnnotationBaseline(&sim, &cluster, spots, kind, mr);
}

JobResult RunSparkBaselineJob(const TpcdsQuerySpec& spec,
                              int64_t fact_rows_total,
                              const ClusterConfig& framework_cluster,
                              const SparkJoinConfig& spark) {
  Simulation sim;
  Cluster cluster(BaselineClusterConfig(framework_cluster));
  return RunSparkShuffleJoin(&sim, &cluster, spec, fact_rows_total, spark);
}

}  // namespace joinopt
