#include "joinopt/harness/runner.h"

namespace joinopt {

JobResult RunFrameworkJob(const GeneratedWorkload& workload,
                          Strategy strategy,
                          const FrameworkRunConfig& config) {
  Simulation sim;
  Cluster cluster(config.cluster);
  EngineConfig engine = config.engine;
  engine.computed_value_bytes = workload.computed_value_bytes;
  if (!workload.stage_selectivity.empty()) {
    engine.stage_selectivity = workload.stage_selectivity;
  }
  JoinJob job(&sim, &cluster, workload.store_ptrs(), strategy, engine);
  for (size_t i = 0; i < workload.inputs.size(); ++i) {
    job.SetInput(static_cast<int>(i), workload.inputs[i],
                 config.arrival_rate_per_node);
  }
  return job.Run();
}

ClusterConfig BaselineClusterConfig(const ClusterConfig& framework_config) {
  ClusterConfig c = framework_config;
  // Same total machine count, but every node is a worker (the paper gives
  // the MapReduce/Spark baselines all 20 nodes for a fair comparison).
  c.num_compute_nodes =
      framework_config.num_compute_nodes + framework_config.num_data_nodes;
  c.num_data_nodes = 0;
  return c;
}

AnnotationBaselineResult RunAnnotationBaselineJob(
    const AnnotationSpots& spots, MrBaselineKind kind,
    const ClusterConfig& framework_cluster, const MapReduceConfig& mr) {
  Simulation sim;
  Cluster cluster(BaselineClusterConfig(framework_cluster));
  return RunAnnotationBaseline(&sim, &cluster, spots, kind, mr);
}

JobResult RunSparkBaselineJob(const TpcdsQuerySpec& spec,
                              int64_t fact_rows_total,
                              const ClusterConfig& framework_cluster,
                              const SparkJoinConfig& spark) {
  Simulation sim;
  Cluster cluster(BaselineClusterConfig(framework_cluster));
  return RunSparkShuffleJoin(&sim, &cluster, spec, fact_rows_total, spark);
}

}  // namespace joinopt
