#include "joinopt/harness/trace.h"

#include <sstream>

namespace joinopt {

std::string Tracer::ToCsv() const {
  std::ostringstream os;
  os << "time";
  for (const std::string& name : names_) os << "," << name;
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace joinopt
