// ASCII reporting for the figure-reproduction benches: aligned tables and
// simple normalization helpers matching the paper's presentation (Fig. 8 and
// 11 normalize against NO at skew 0).
#ifndef JOINOPT_HARNESS_REPORT_H_
#define JOINOPT_HARNESS_REPORT_H_

#include <string>
#include <vector>

namespace joinopt {

/// A printable table with a header row and aligned columns.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Convenience: label + numeric cells with the given precision.
  void AddNumericRow(const std::string& label,
                     const std::vector<double>& values, int precision = 3);

  std::string ToString() const;
  /// Prints to stdout with an optional title banner.
  void Print(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// values[i] / baseline — the paper's "normalized time" (Fig. 8).
std::vector<double> NormalizeBy(const std::vector<double>& values,
                                double baseline);

/// baseline / values[i] — the paper's "normalized throughput" (Fig. 11),
/// where higher is better.
std::vector<double> InverseNormalizeBy(const std::vector<double>& values,
                                       double baseline);

std::string FormatDouble(double v, int precision = 3);

}  // namespace joinopt

#endif  // JOINOPT_HARNESS_REPORT_H_
