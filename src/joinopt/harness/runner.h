// Experiment harness: one call = one fresh simulator + cluster + job. The
// figure benches sweep (workload x strategy x skew) through this.
#ifndef JOINOPT_HARNESS_RUNNER_H_
#define JOINOPT_HARNESS_RUNNER_H_

#include "joinopt/baselines/annotation_baselines.h"
#include "joinopt/baselines/spark_shuffle_join.h"
#include "joinopt/engine/join_job.h"
#include "joinopt/fault/fault_injector.h"
#include "joinopt/fault/fault_schedule.h"
#include "joinopt/harness/trace.h"
#include "joinopt/workload/workload.h"

namespace joinopt {

struct FrameworkRunConfig {
  /// Cluster for framework runs: the paper's 10 compute + 10 data split.
  ClusterConfig cluster;
  EngineConfig engine;
  /// Tuples/second fed to each compute node; <= 0 = batch (all at t=0).
  double arrival_rate_per_node = 0.0;
  /// Faults to inject during the run (empty = none). A non-empty schedule
  /// auto-enables `engine.recovery` so dropped messages are retried rather
  /// than hanging the job.
  FaultSchedule faults;
};

/// Runs `workload` under `strategy` on a fresh simulator + cluster.
/// The workload's stores are shared read-only; inputs are copied.
JobResult RunFrameworkJob(const GeneratedWorkload& workload,
                          Strategy strategy,
                          const FrameworkRunConfig& config);

/// Registers the standard fault/recovery gauge columns on a tracer:
/// tuples_done, timeouts, retries, failovers, hedges_won, tuples_failed,
/// messages_dropped and nodes_down. `injector` may be null (the last two
/// columns then read 0). The job and injector must outlive the tracer's
/// sampling.
void AddFaultRecoveryGauges(Tracer* tracer, const JoinJob* job,
                            const FaultInjector* injector);

/// Cluster used by the all-20-nodes baselines (MapReduce, Spark).
ClusterConfig BaselineClusterConfig(const ClusterConfig& framework_config);

/// Runs one of the MapReduce annotation baselines on a fresh cluster where
/// every node is a worker.
AnnotationBaselineResult RunAnnotationBaselineJob(
    const AnnotationSpots& spots, MrBaselineKind kind,
    const ClusterConfig& framework_cluster, const MapReduceConfig& mr = {});

/// Runs the Spark-style shuffle multi-join on a fresh all-workers cluster.
JobResult RunSparkBaselineJob(const TpcdsQuerySpec& spec,
                              int64_t fact_rows_total,
                              const ClusterConfig& framework_cluster,
                              const SparkJoinConfig& spark = {});

}  // namespace joinopt

#endif  // JOINOPT_HARNESS_RUNNER_H_
