// Mini-MapReduce engine on the cluster simulator — the substrate for the
// reduce-side-join baselines of Figure 5 (basic Hadoop, CSAW [12],
// FlowJoinLB [23]).
//
// Execution model:
//  * Map: input records are split round-robin across all workers; map tasks
//    parse records and emit (key, record) pairs. Map CPU is charged in
//    per-core blocks; map output is materialized (spill write + read).
//  * Shuffle: each (source worker, reduce partition) cell becomes one
//    network transfer once the source's map phase finishes — the phase
//    barrier MapReduce pays and the paper's pipelined framework avoids.
//  * Reduce: partitions are single-threaded tasks (reduce_tasks_per_node per
//    worker). A partition sorts its records, reads each needed stored model
//    from local disk once, and runs the UDF per record. A partition stacked
//    with a heavy-hitter key runs long — the straggler effect.
//
// The partitioner is pluggable: records of "replicated" keys are sprayed
// round-robin over all partitions and their models are read at every
// partition that received records (the broadcast/replicate skew mitigation
// of DeWitt et al. [10] that CSAW and Flow-Join build on).
#ifndef JOINOPT_MAPREDUCE_MAPREDUCE_H_
#define JOINOPT_MAPREDUCE_MAPREDUCE_H_

#include <functional>
#include <vector>

#include "joinopt/engine/types.h"
#include "joinopt/sim/cluster.h"
#include "joinopt/sim/event_queue.h"

namespace joinopt {

struct MapReduceConfig {
  int reduce_tasks_per_node = 8;
  /// Concurrent reduce containers per node. Reduce tasks that join against
  /// multi-MB stored models are memory-bound (model + sort buffers inside a
  /// JVM heap), so a 16 GB node runs fewer containers than cores — the
  /// standard MRv1/YARN sizing the paper's baselines inherit.
  int reduce_slots_per_node = 4;
  double map_parse_cost = 2e-6;     ///< CPU per record in the map
  double sort_cost_per_record = 1.5e-6;
  /// Map output is spilled and re-read: bytes written+read per record
  /// relative to its wire size.
  double materialize_factor = 2.0;
  double record_key_bytes = 16.0;
};

/// A reduce-side join job description over keyed records.
struct MapReduceJoinSpec {
  /// The record stream: key per record (record payload size is uniform).
  const std::vector<Key>* records = nullptr;
  double record_payload_bytes = 200.0;
  /// Per-key stored-value size and UDF cost (indexed by key; keys must be
  /// dense 0..n-1).
  const std::vector<double>* value_bytes = nullptr;
  const std::vector<double>* udf_cost = nullptr;
  /// partition(key, record_index) -> reduce partition. record_index lets
  /// replicating partitioners spray a key across partitions.
  std::function<int(Key, int64_t)> partitioner;
  int num_partitions = 0;
};

/// Runs the job on `cluster` (all nodes act as both map and reduce workers)
/// and returns the usual metrics (makespan, throughput over records, skew).
JobResult RunMapReduceJoin(Simulation* sim, Cluster* cluster,
                           const MapReduceJoinSpec& spec,
                           const MapReduceConfig& config);

}  // namespace joinopt

#endif  // JOINOPT_MAPREDUCE_MAPREDUCE_H_
