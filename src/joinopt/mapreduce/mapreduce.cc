#include "joinopt/mapreduce/mapreduce.h"

#include <algorithm>
#include <unordered_map>

#include "joinopt/common/histogram.h"
#include "joinopt/common/logging.h"

namespace joinopt {

JobResult RunMapReduceJoin(Simulation* sim, Cluster* cluster,
                           const MapReduceJoinSpec& spec,
                           const MapReduceConfig& config) {
  (void)sim;  // the phases reserve directly on the resource timelines
  JO_CHECK(spec.records != nullptr && spec.value_bytes != nullptr &&
           spec.udf_cost != nullptr && spec.partitioner != nullptr);
  const int W = cluster->num_nodes();
  const int P = spec.num_partitions;
  JO_CHECK(W > 0 && P > 0);
  const std::vector<Key>& records = *spec.records;
  const int64_t n = static_cast<int64_t>(records.size());
  const double record_bytes =
      config.record_key_bytes + spec.record_payload_bytes;

  // ---- Map phase ---------------------------------------------------------
  // Round-robin input splits; per-source-per-partition shuffle aggregates;
  // per-partition per-key counts for the reduce phase.
  std::vector<int64_t> map_records(static_cast<size_t>(W), 0);
  std::vector<std::vector<double>> shuffle_bytes(
      static_cast<size_t>(W), std::vector<double>(static_cast<size_t>(P), 0));
  std::vector<std::unordered_map<Key, int64_t>> partition_keys(
      static_cast<size_t>(P));
  std::vector<int64_t> partition_records(static_cast<size_t>(P), 0);

  for (int64_t i = 0; i < n; ++i) {
    int w = static_cast<int>(i % W);
    ++map_records[static_cast<size_t>(w)];
    Key key = records[static_cast<size_t>(i)];
    int p = spec.partitioner(key, i);
    JO_CHECK(p >= 0 && p < P);
    shuffle_bytes[static_cast<size_t>(w)][static_cast<size_t>(p)] +=
        record_bytes;
    ++partition_keys[static_cast<size_t>(p)][key];
    ++partition_records[static_cast<size_t>(p)];
  }

  std::vector<double> map_finish(static_cast<size_t>(W), 0.0);
  for (int w = 0; w < W; ++w) {
    SimNode& node = cluster->node(w);
    int64_t cnt = map_records[static_cast<size_t>(w)];
    if (cnt == 0) continue;
    double cpu_work = static_cast<double>(cnt) * config.map_parse_cost;
    // Spread map tasks over the cores.
    int cores = node.cpu().cores();
    double finish = 0.0;
    for (int c = 0; c < cores; ++c) {
      finish = std::max(finish,
                        node.cpu().Reserve(0.0, cpu_work / cores));
    }
    // Spill materialization: map output written and re-read locally.
    double spill_bytes =
        static_cast<double>(cnt) * record_bytes * config.materialize_factor;
    finish = std::max(
        finish, node.disk().Reserve(0.0, node.DiskServiceTime(spill_bytes)));
    map_finish[static_cast<size_t>(w)] = finish;
  }

  // ---- Shuffle -----------------------------------------------------------
  std::vector<double> partition_ready(static_cast<size_t>(P), 0.0);
  for (int w = 0; w < W; ++w) {
    for (int p = 0; p < P; ++p) {
      double bytes = shuffle_bytes[static_cast<size_t>(w)][static_cast<size_t>(p)];
      if (bytes <= 0) continue;
      int dst = p % W;
      double arrival = cluster->network().Transfer(
          w, dst, bytes, map_finish[static_cast<size_t>(w)]);
      partition_ready[static_cast<size_t>(p)] =
          std::max(partition_ready[static_cast<size_t>(p)], arrival);
    }
  }

  // ---- Reduce ------------------------------------------------------------
  // Reduce tasks are single-threaded and run in memory-bound containers:
  // at most reduce_slots_per_node execute concurrently per node.
  double makespan = *std::max_element(map_finish.begin(), map_finish.end());
  int64_t udf_invocations = 0;
  std::vector<MultiServer> reduce_slots;
  reduce_slots.reserve(static_cast<size_t>(W));
  for (int w = 0; w < W; ++w) {
    reduce_slots.emplace_back(std::max(config.reduce_slots_per_node, 1));
  }
  for (int p = 0; p < P; ++p) {
    const auto& keys = partition_keys[static_cast<size_t>(p)];
    if (keys.empty()) continue;
    int w = p % W;
    SimNode& node = cluster->node(w);
    double start = partition_ready[static_cast<size_t>(p)];
    double disk_work = 0.0;
    double cpu_work = static_cast<double>(
                          partition_records[static_cast<size_t>(p)]) *
                      config.sort_cost_per_record;
    for (const auto& [key, count] : keys) {
      disk_work +=
          node.DiskServiceTime((*spec.value_bytes)[static_cast<size_t>(key)]);
      cpu_work += static_cast<double>(count) *
                  (*spec.udf_cost)[static_cast<size_t>(key)];
      udf_invocations += count;
    }
    // Model reads overlap with computation via readahead; the slot server
    // enforces container concurrency while the node CPU accounts the work
    // (slots <= cores, so the CPU reservation never under-counts time).
    double disk_done = node.disk().Reserve(start, disk_work);
    double slot_done =
        reduce_slots[static_cast<size_t>(w)].Reserve(start, cpu_work);
    node.cpu().Reserve(start, cpu_work);
    makespan = std::max(makespan, std::max(disk_done, slot_done));
  }

  JobResult r;
  r.makespan = makespan;
  r.tuples_processed = n;
  r.udf_invocations = udf_invocations;
  r.throughput = makespan > 0 ? static_cast<double>(n) / makespan : 0.0;
  r.network_bytes = cluster->network().total_bytes_transferred();
  r.network_messages = cluster->network().total_messages();
  r.total_cpu_busy = cluster->TotalCpuBusy();
  SummaryStats busy;
  for (int w = 0; w < W; ++w) {
    busy.Observe(cluster->node(w).cpu().busy_time());
  }
  r.compute_cpu_skew = busy.mean() > 0 ? busy.max() / busy.mean() : 1.0;
  r.data_cpu_skew = r.compute_cpu_skew;
  return r;
}

}  // namespace joinopt
