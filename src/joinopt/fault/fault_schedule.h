// Deterministic fault schedules: a declarative list of (time, fault) events
// — crash/restart a node, partition or degrade a link, slow a disk — that a
// FaultInjector replays through the Simulation's event queue. Because the
// schedule is data, the same seed + schedule reproduces the exact same
// failure scenario run after run, which is what makes recovery behaviour
// testable (the paper's runtime parameters tCompute/tFetch/netBw_ij are all
// perturbed by these faults, and the EWMA smoothing has to ride them out).
#ifndef JOINOPT_FAULT_FAULT_SCHEDULE_H_
#define JOINOPT_FAULT_FAULT_SCHEDULE_H_

#include <vector>

#include "joinopt/common/hash.h"

namespace joinopt {

enum class FaultKind {
  kNodeCrash,    ///< node stops serving; messages to/from it are lost
  kNodeRestart,  ///< node rejoins (volatile state such as block caches lost)
  kLinkDegrade,  ///< link between two nodes runs `factor`x slower
  kLinkRestore,  ///< degraded link back to full speed
  kLinkPartition,///< messages between two nodes are dropped
  kLinkHeal,     ///< partition healed
  kDiskSlow,     ///< node's disk serves `factor`x slower (straggler)
  kDiskRestore,  ///< disk back to full speed
  /// Half-open partition: messages from `node` to `peer` are dropped while
  /// the reverse direction keeps flowing — the asymmetric failure mode
  /// (dying NIC TX queue, one-way firewall rule) that makes A think B is
  /// dead while B still hears A's requests and burns work answering them.
  kLinkPartitionOneWay,
  kLinkHealOneWay,  ///< heals only the `node`→`peer` direction
  /// The failure detector itself dies: probes stop, ReportFailure strikes
  /// are dropped on the floor. Data nodes keep serving — the cluster just
  /// loses its ability to *declare* anything dead until the controller
  /// comes back. `node`/`peer` are unused.
  kControllerCrash,
  kControllerRestart,  ///< controller resumes probing with strikes cleared
};

const char* FaultKindToString(FaultKind kind);

/// One scheduled fault. `node` is the subject (or one link endpoint); `peer`
/// is the other link endpoint for link faults; `factor` is the slowdown
/// multiplier for kLinkDegrade / kDiskSlow.
struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::kNodeCrash;
  NodeId node = kInvalidNode;
  NodeId peer = kInvalidNode;
  double factor = 1.0;
};

/// A reproducible fault scenario: an ordered list of FaultEvents plus pure
/// schedule-derived liveness queries. The queries let delivery events ask
/// "was the sender alive when this message left?" without the injector
/// having to keep historical state.
class FaultSchedule {
 public:
  FaultSchedule& CrashNode(double time, NodeId node);
  FaultSchedule& RestartNode(double time, NodeId node);
  FaultSchedule& DegradeLink(double time, NodeId a, NodeId b, double factor);
  FaultSchedule& RestoreLink(double time, NodeId a, NodeId b);
  FaultSchedule& PartitionLink(double time, NodeId a, NodeId b);
  FaultSchedule& HealLink(double time, NodeId a, NodeId b);
  /// Drops only the `from`→`to` direction (see kLinkPartitionOneWay).
  FaultSchedule& PartitionLinkOneWay(double time, NodeId from, NodeId to);
  FaultSchedule& HealLinkOneWay(double time, NodeId from, NodeId to);
  FaultSchedule& SlowDisk(double time, NodeId node, double factor);
  FaultSchedule& RestoreDisk(double time, NodeId node);
  FaultSchedule& CrashController(double time);
  FaultSchedule& RestartController(double time);
  FaultSchedule& Add(FaultEvent event);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  /// Events ordered by time (stable: ties keep insertion order).
  std::vector<FaultEvent> Sorted() const;

  /// True if `node` is up at time `t` per this schedule (a crash at exactly
  /// `t` counts as already applied).
  bool NodeUpAt(NodeId node, double t) const;

  /// True if messages from `a` can reach `b` at time `t`. Symmetric
  /// partition events block both directions; one-way events block only
  /// their stated `node`→`peer` direction, so a half-open link answers
  /// LinkUpAt(a, b, t) != LinkUpAt(b, a, t). The most recent event
  /// affecting a given direction wins.
  bool LinkUpAt(NodeId a, NodeId b, double t) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace joinopt

#endif  // JOINOPT_FAULT_FAULT_SCHEDULE_H_
