#include "joinopt/fault/fault_schedule.h"

#include <algorithm>

namespace joinopt {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "node_crash";
    case FaultKind::kNodeRestart:
      return "node_restart";
    case FaultKind::kLinkDegrade:
      return "link_degrade";
    case FaultKind::kLinkRestore:
      return "link_restore";
    case FaultKind::kLinkPartition:
      return "link_partition";
    case FaultKind::kLinkHeal:
      return "link_heal";
    case FaultKind::kDiskSlow:
      return "disk_slow";
    case FaultKind::kDiskRestore:
      return "disk_restore";
    case FaultKind::kLinkPartitionOneWay:
      return "link_partition_one_way";
    case FaultKind::kLinkHealOneWay:
      return "link_heal_one_way";
    case FaultKind::kControllerCrash:
      return "controller_crash";
    case FaultKind::kControllerRestart:
      return "controller_restart";
  }
  return "?";
}

FaultSchedule& FaultSchedule::CrashNode(double time, NodeId node) {
  return Add({time, FaultKind::kNodeCrash, node, kInvalidNode, 1.0});
}

FaultSchedule& FaultSchedule::RestartNode(double time, NodeId node) {
  return Add({time, FaultKind::kNodeRestart, node, kInvalidNode, 1.0});
}

FaultSchedule& FaultSchedule::DegradeLink(double time, NodeId a, NodeId b,
                                          double factor) {
  return Add({time, FaultKind::kLinkDegrade, a, b, factor});
}

FaultSchedule& FaultSchedule::RestoreLink(double time, NodeId a, NodeId b) {
  return Add({time, FaultKind::kLinkRestore, a, b, 1.0});
}

FaultSchedule& FaultSchedule::PartitionLink(double time, NodeId a, NodeId b) {
  return Add({time, FaultKind::kLinkPartition, a, b, 1.0});
}

FaultSchedule& FaultSchedule::HealLink(double time, NodeId a, NodeId b) {
  return Add({time, FaultKind::kLinkHeal, a, b, 1.0});
}

FaultSchedule& FaultSchedule::PartitionLinkOneWay(double time, NodeId from,
                                                  NodeId to) {
  return Add({time, FaultKind::kLinkPartitionOneWay, from, to, 1.0});
}

FaultSchedule& FaultSchedule::HealLinkOneWay(double time, NodeId from,
                                             NodeId to) {
  return Add({time, FaultKind::kLinkHealOneWay, from, to, 1.0});
}

FaultSchedule& FaultSchedule::SlowDisk(double time, NodeId node,
                                       double factor) {
  return Add({time, FaultKind::kDiskSlow, node, kInvalidNode, factor});
}

FaultSchedule& FaultSchedule::RestoreDisk(double time, NodeId node) {
  return Add({time, FaultKind::kDiskRestore, node, kInvalidNode, 1.0});
}

FaultSchedule& FaultSchedule::CrashController(double time) {
  return Add({time, FaultKind::kControllerCrash, kInvalidNode, kInvalidNode,
              1.0});
}

FaultSchedule& FaultSchedule::RestartController(double time) {
  return Add({time, FaultKind::kControllerRestart, kInvalidNode, kInvalidNode,
              1.0});
}

FaultSchedule& FaultSchedule::Add(FaultEvent event) {
  events_.push_back(event);
  return *this;
}

std::vector<FaultEvent> FaultSchedule::Sorted() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return out;
}

bool FaultSchedule::NodeUpAt(NodeId node, double t) const {
  // Replay crash/restart events up to and including t, in time order.
  bool up = true;
  double best = -1.0;
  for (const FaultEvent& e : events_) {
    if (e.time > t || e.node != node) continue;
    if (e.kind != FaultKind::kNodeCrash && e.kind != FaultKind::kNodeRestart) {
      continue;
    }
    // Later events win; ties keep list order (stable scan).
    if (e.time >= best) {
      best = e.time;
      up = e.kind == FaultKind::kNodeRestart;
    }
  }
  return up;
}

bool FaultSchedule::LinkUpAt(NodeId a, NodeId b, double t) const {
  // Replays events affecting the a→b direction in time order. Symmetric
  // partition/heal events match either orientation; one-way events match
  // only when their stated direction is exactly a→b — so a one-way drop of
  // b→a leaves a→b untouched, which is the whole point of modeling
  // half-open links.
  bool up = true;
  double best = -1.0;
  for (const FaultEvent& e : events_) {
    if (e.time > t) continue;
    bool matches;
    bool heals;
    switch (e.kind) {
      case FaultKind::kLinkPartition:
      case FaultKind::kLinkHeal:
        matches =
            (e.node == a && e.peer == b) || (e.node == b && e.peer == a);
        heals = e.kind == FaultKind::kLinkHeal;
        break;
      case FaultKind::kLinkPartitionOneWay:
      case FaultKind::kLinkHealOneWay:
        matches = e.node == a && e.peer == b;
        heals = e.kind == FaultKind::kLinkHealOneWay;
        break;
      default:
        continue;
    }
    if (!matches) continue;
    if (e.time >= best) {
      best = e.time;
      up = heals;
    }
  }
  return up;
}

}  // namespace joinopt
