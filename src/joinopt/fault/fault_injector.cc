#include "joinopt/fault/fault_injector.h"

#include "joinopt/common/logging.h"

namespace joinopt {

FaultInjector::FaultInjector(Simulation* sim, Cluster* cluster,
                             FaultSchedule schedule)
    : sim_(sim),
      cluster_(cluster),
      schedule_(std::move(schedule)),
      up_(static_cast<size_t>(cluster->num_nodes()), 1) {}

void FaultInjector::Arm() {
  JO_CHECK(!armed_) << "FaultInjector armed twice";
  armed_ = true;
  for (const FaultEvent& event : schedule_.Sorted()) {
    if (event.kind != FaultKind::kControllerCrash &&
        event.kind != FaultKind::kControllerRestart) {
      JO_CHECK(event.node >= 0 && event.node < cluster_->num_nodes())
          << "fault event targets unknown node " << event.node;
    }
    sim_->At(event.time, [this, event] { Apply(event); });
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kNodeCrash:
      up_[static_cast<size_t>(event.node)] = 0;
      ++stats_.crashes;
      break;
    case FaultKind::kNodeRestart:
      up_[static_cast<size_t>(event.node)] = 1;
      ++stats_.restarts;
      break;
    case FaultKind::kLinkDegrade:
      cluster_->network().SetLinkFactor(event.node, event.peer, event.factor);
      ++stats_.link_events;
      break;
    case FaultKind::kLinkRestore:
      cluster_->network().SetLinkFactor(event.node, event.peer, 1.0);
      ++stats_.link_events;
      break;
    case FaultKind::kLinkPartition:
    case FaultKind::kLinkHeal:
    case FaultKind::kLinkPartitionOneWay:
    case FaultKind::kLinkHealOneWay:
      // Partitions (symmetric or half-open) drop messages rather than
      // slowing them; liveness is answered by the schedule-derived,
      // direction-aware LinkUpAt.
      ++stats_.link_events;
      break;
    case FaultKind::kDiskSlow:
      cluster_->node(event.node).set_disk_slow_factor(event.factor);
      ++stats_.disk_events;
      break;
    case FaultKind::kDiskRestore:
      cluster_->node(event.node).set_disk_slow_factor(1.0);
      ++stats_.disk_events;
      break;
    case FaultKind::kControllerCrash:
    case FaultKind::kControllerRestart:
      // The simulator has no failure-detector process to kill; these kinds
      // exist for the networked chaos harness (ClusterController).
      break;
  }
  JO_LOG(Info) << "fault @" << sim_->now() << "s: "
               << FaultKindToString(event.kind) << " node=" << event.node
               << (event.peer != kInvalidNode
                       ? " peer=" + std::to_string(event.peer)
                       : "")
               << (event.factor != 1.0
                       ? " factor=" + std::to_string(event.factor)
                       : "");
  for (const Listener& listener : listeners_) listener(event);
}

int FaultInjector::nodes_down() const {
  int n = 0;
  for (char u : up_) n += u == 0 ? 1 : 0;
  return n;
}

}  // namespace joinopt
