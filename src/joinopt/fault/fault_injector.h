// Replays a FaultSchedule through a Simulation against a Cluster: crash
// flags per node, disk slowdown factors on SimNodes, bandwidth degradation
// on Network links. Runtimes built on the simulator (the join engine, the
// benches) consult the injector at message-delivery time to decide whether
// a message survives, and register listeners to react to fault transitions
// (e.g. a data node losing its block cache on restart).
//
// The injector changes nothing until Arm() is called, and an empty schedule
// arms to nothing — a job with no faults executes the exact same event
// stream as one with no injector attached at all.
#ifndef JOINOPT_FAULT_FAULT_INJECTOR_H_
#define JOINOPT_FAULT_FAULT_INJECTOR_H_

#include <functional>
#include <vector>

#include "joinopt/fault/fault_schedule.h"
#include "joinopt/sim/cluster.h"
#include "joinopt/sim/event_queue.h"

namespace joinopt {

/// Counters describing how much damage the schedule actually did.
struct FaultStats {
  int64_t crashes = 0;
  int64_t restarts = 0;
  int64_t link_events = 0;   ///< degrade/restore/partition/heal applied
  int64_t disk_events = 0;   ///< slow/restore applied
  int64_t requests_dropped = 0;   ///< request items lost to a fault
  int64_t responses_dropped = 0;  ///< response items lost to a fault
  int64_t notifications_dropped = 0;  ///< update notifications lost
};

class FaultInjector {
 public:
  using Listener = std::function<void(const FaultEvent&)>;

  FaultInjector(Simulation* sim, Cluster* cluster, FaultSchedule schedule);

  /// Schedules every fault event onto the simulation. Call once, before
  /// Simulation::Run.
  void Arm();

  /// Dynamic liveness (reflects events applied so far).
  bool NodeUp(NodeId node) const {
    return up_[static_cast<size_t>(node)] != 0;
  }
  int nodes_down() const;

  /// Schedule-derived liveness: usable from delivery events to ask about
  /// *send* time without the injector keeping history.
  bool NodeUpAt(NodeId node, double t) const {
    return schedule_.NodeUpAt(node, t);
  }
  bool LinkUpAt(NodeId a, NodeId b, double t) const {
    return schedule_.LinkUpAt(a, b, t);
  }

  /// Called by the injector when each fault event fires (after it has been
  /// applied to the substrate). Register before Arm().
  void AddListener(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  void CountDroppedRequests(int64_t n) { stats_.requests_dropped += n; }
  void CountDroppedResponses(int64_t n) { stats_.responses_dropped += n; }
  void CountDroppedNotification() { ++stats_.notifications_dropped; }

  const FaultSchedule& schedule() const { return schedule_; }
  const FaultStats& stats() const { return stats_; }
  bool armed() const { return armed_; }

 private:
  void Apply(const FaultEvent& event);

  Simulation* sim_;
  Cluster* cluster_;
  FaultSchedule schedule_;
  std::vector<char> up_;
  std::vector<Listener> listeners_;
  FaultStats stats_;
  bool armed_ = false;
};

}  // namespace joinopt

#endif  // JOINOPT_FAULT_FAULT_INJECTOR_H_
