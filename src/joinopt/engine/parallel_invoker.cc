#include "joinopt/engine/parallel_invoker.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "joinopt/loadbalance/node_load_view.h"

namespace joinopt {

namespace {

int NextPow2(int v) {
  int p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ParallelInvoker::ParallelInvoker(DataService* service, UserFn fn,
                                 const Options& options)
    : service_(service),
      fn_(std::move(fn)),
      options_(options),
      queue_(options.queue_capacity, lock_rank::kInvokerQueue) {
  int threads = std::max(options_.num_threads, 1);
  int shards = options_.num_shards > 0
                   ? NextPow2(options_.num_shards)
                   : std::clamp(NextPow2(4 * threads), 8, 64);
  shard_mask_ = static_cast<uint64_t>(shards - 1);

  // Each shard gets an even slice of the configured cache budget so the
  // aggregate capacity matches the single-threaded executor's.
  DecisionEngineConfig per_shard = options_.decision;
  per_shard.cache.memory_capacity_bytes /= shards;
  if (std::isfinite(per_shard.cache.disk_capacity_bytes)) {
    per_shard.cache.disk_capacity_bytes /= shards;
  }
  // Keys hash-distribute evenly across shards, so each shard's per-key
  // tables pre-reserve an even slice of the expected key universe (rounded
  // up so the slices still cover it).
  auto shard_slice = [shards](size_t n) {
    return (n + static_cast<size_t>(shards) - 1) / static_cast<size_t>(shards);
  };
  if (per_shard.expected_keys > 0) {
    per_shard.expected_keys = shard_slice(per_shard.expected_keys);
  }
  if (per_shard.cache.expected_items > 0) {
    per_shard.cache.expected_items =
        shard_slice(per_shard.cache.expected_items);
  }
  size_t per_shard_results =
      options_.max_unclaimed_results == 0
          ? 0
          : std::max<size_t>(options_.max_unclaimed_results /
                                 static_cast<size_t>(shards),
                             16);

  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    {
      // Workers don't exist yet, but the members are lock-guarded and the
      // analysis (rightly) has no "still single-threaded" concept.
      MutexLock lock(shard->mu);
      shard->engine = std::make_unique<DecisionEngine>(per_shard);
      shard->results = BoundedResultMap(per_shard_results);
    }
    shards_.push_back(std::move(shard));
  }

  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelInvoker::~ParallelInvoker() {
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
  FlushDelegations(/*force=*/true);
}

void ParallelInvoker::SubmitComp(Key key, std::string params) {
  ++stats_.submitted;
  uint64_t request_id = PlanRequestId(key, params);
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(shard.mu);
    ++shard.pending[request_id];
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (!queue_.Push(WorkItem{key, std::move(params)})) {
    // Shutting down: withdraw the registration so fetchers don't wait.
    FinishQueued(shard, request_id,
                 Status::Aborted("invoker shutting down"));
  }
}

StatusOr<std::string> ParallelInvoker::FetchComp(Key key,
                                                 const std::string& params) {
  Shard& shard = ShardFor(key);
  uint64_t request_id = PlanRequestId(key, params);
  {
    MutexLock lock(shard.mu);
    for (;;) {
      if (auto claimed = shard.results.Claim(request_id)) {
        return std::move(*claimed);
      }
      auto it = shard.pending.find(request_id);
      if (it == shard.pending.end() || it->second <= 0) break;
      // A submission is in flight — possibly parked in a delegation
      // batch. Poll with a short timeout, nudging stale batches out.
      if (shard.cv.WaitFor(shard.mu, 1e-3) == std::cv_status::timeout) {
        lock.Unlock();
        FlushDelegations(/*force=*/false);
        lock.Relock();
      }
    }
  }
  // Never submitted (or its prefetch failed / was dropped): run the plan
  // in the caller, like AsyncInvoker's blocking fallback.
  ++stats_.on_demand_runs;
  auto result = ExecutePlan(key, params, /*allow_defer=*/false);
  return std::move(*result);
}

void ParallelInvoker::OnUpdate(Key key, uint64_t new_version) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  shard.engine->OnUpdateNotification(key, new_version);
  shard.values.erase(key);
  uint64_t& floor = shard.min_version[key];
  if (new_version > floor) floor = new_version;
}

int64_t ParallelInvoker::ResyncWhere(const std::function<bool(Key)>& pred) {
  int64_t dropped_payloads = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    // The engine drops its cache-tier entries and counters for matching
    // keys; payloads are a superset (a payload can outlive its tier slot),
    // so they get their own sweep.
    shard.engine->ResyncInvalidate(pred);
    for (auto it = shard.values.begin(); it != shard.values.end();) {
      if (pred(it->first)) {
        // Raise the version floor past the dropped copy so a fetch racing
        // this re-sync cannot re-install the possibly-stale payload.
        uint64_t& floor = shard.min_version[it->first];
        if (it->second.version + 1 > floor) floor = it->second.version + 1;
        it = shard.values.erase(it);
        ++dropped_payloads;
      } else {
        ++it;
      }
    }
  }
  stats_.resync_dropped += dropped_payloads;
  return dropped_payloads;
}

void ParallelInvoker::Barrier() {
  MutexLock lock(barrier_mu_);
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    lock.Unlock();
    FlushDelegations(/*force=*/true);
    lock.Relock();
    barrier_cv_.WaitFor(barrier_mu_, 1e-3);
  }
}

void ParallelInvoker::WorkerLoop() {
  for (;;) {
    std::optional<WorkItem> item = queue_.TryPop();
    if (!item) {
      // Queue lull: nothing to overlap the buffered delegations with, so
      // ship them now instead of adding idle latency.
      FlushDelegations(/*force=*/true);
      item = queue_.Pop();
      if (!item) break;  // closed and drained
    }
    ProcessQueued(*item);
  }
  FlushDelegations(/*force=*/true);
}

void ParallelInvoker::ProcessQueued(const WorkItem& item) {
  uint64_t request_id = PlanRequestId(item.key, item.params);
  auto result = ExecutePlan(item.key, item.params, /*allow_defer=*/true);
  if (!result) return;  // parked in a delegation batch; it will finish it
  FinishQueued(ShardFor(item.key), request_id, std::move(*result));
}

std::optional<StatusOr<std::string>> ParallelInvoker::ExecutePlan(
    Key key, const std::string& params, bool allow_defer) {
  Shard& shard = ShardFor(key);
  NodeId owner = service_->OwnerOf(key);
  MutexLock lock(shard.mu);
  MaybeTrim(shard);
  shard.engine->cost_model().SetBandwidth(owner,
                                          options_.bandwidth_bytes_per_sec);
  // The access is counted exactly once, here. Every re-route below (after
  // a coalesced wait, or when a plan leg falls through) goes through the
  // const ReDecide or a manual route override so the frequency counter and
  // benefit state see this request a single time — keeping ski-rental
  // thresholds aligned with the single-threaded executor's.
  Decision decision = shard.engine->Decide(key, owner);
  if (options_.load_view != nullptr &&
      (load_view_push_.fetch_add(1, std::memory_order_relaxed) & 63) == 0) {
    // Shared load view feed (throttled): shard lock (kInvokerShard) ranks
    // below kNodeLoadView, so observing under it is legal.
    options_.load_view->ObserveCostEstimates(
        owner, shard.engine->cost_model().TCompute(owner),
        shard.engine->cost_model().TFetch(owner));
  }
  bool held_first = false;
  for (;;) {
    switch (decision.route) {
      case Route::kLocalMemoryHit:
      case Route::kLocalDiskHit: {
        auto it = shard.values.find(key);
        if (it == shard.values.end()) {
          // Engine says hit but the payload is gone (evicted between
          // Peek and now, or invalidated): fall back to a compute request.
          decision.route = Route::kComputeAtData;
          decision.first_request = false;
          continue;
        }
        std::shared_ptr<const std::string> payload = it->second.value;
        lock.Unlock();
        ++stats_.served_from_cache;
        TimedResult timed = TimedCompute(fn_, key, params, *payload);
        lock.Relock();
        shard.engine->ObserveLocalCompute(timed.elapsed);
        return StatusOr<std::string>(std::move(timed.value));
      }
      case Route::kFetchCacheMemory:
      case Route::kFetchCacheDisk: {
        if (shard.fetching.count(key) > 0) {
          // Single flight: another request is already fetching this key.
          ++stats_.coalesced_fetches;
          while (shard.fetching.count(key) > 0) shard.cv.Wait(shard.mu);
          decision = shard.engine->ReDecide(key, owner);
          continue;  // usually a hit against the now-warm cache
        }
        shard.fetching.insert(key);
        lock.Unlock();
        auto fetched = service_->Fetch(key);
        lock.Relock();
        shard.fetching.erase(key);
        shard.cv.NotifyAll();
        if (!fetched.ok()) {
          return StatusOr<std::string>(fetched.status());
        }
        uint64_t version = fetched->version;
        auto floor = shard.min_version.find(key);
        if (floor != shard.min_version.end() && version < floor->second) {
          // The fetch raced an update notification and carried the old
          // payload: never cache or serve it; compute next to the fresh
          // data instead.
          decision.route = Route::kComputeAtData;
          decision.first_request = false;
          continue;
        }
        double size = static_cast<double>(fetched->value.size());
        shard.engine->OnValueFetched(key, decision.route, size, version);
        auto payload = std::make_shared<const std::string>(
            std::move(fetched)->value);
        shard.values[key] = CachedValue{payload, version};
        lock.Unlock();
        ++stats_.fetched_then_computed;
        TimedResult timed = TimedCompute(fn_, key, params, *payload);
        lock.Relock();
        shard.engine->ObserveLocalCompute(timed.elapsed);
        return StatusOr<std::string>(std::move(timed.value));
      }
      case Route::kComputeAtData: {
        if (decision.first_request && !held_first &&
            shard.delegating.count(key) > 0) {
          // The key's blind first delegation is already in flight: hold
          // until its piggybacked cost parameters land rather than issuing
          // another blind compute request. Timed waits nudge parked
          // delegation batches out so the wait is bounded.
          held_first = true;
          ++stats_.held_first_requests;
          while (shard.delegating.count(key) > 0) {
            if (shard.cv.WaitFor(shard.mu, 200e-6) ==
                std::cv_status::timeout) {
              lock.Unlock();
              FlushDelegations(/*force=*/false);
              lock.Relock();
            }
          }
          decision = shard.engine->ReDecide(key, owner);
          continue;  // typically buys (fetch) now that costs are known
        }
        ++shard.delegating[key];
        lock.Unlock();
        return Delegate(shard, key, params, owner, allow_defer);
      }
    }
  }
}

std::optional<StatusOr<std::string>> ParallelInvoker::Delegate(
    Shard& shard, Key key, const std::string& params, NodeId owner,
    bool allow_defer) {
  if (allow_defer) {
    AddDelegation(owner, Delegation{key, params, PlanRequestId(key, params)});
    return std::nullopt;
  }
  ++stats_.delegated;
  double t0 = PlanNowSeconds();
  auto result = service_->Execute(key, params, fn_);
  double elapsed = PlanNowSeconds() - t0;
  StatusOr<DataService::ItemStat> stat =
      result.ok() ? service_->Stat(key)
                  : StatusOr<DataService::ItemStat>(result.status());
  {
    MutexLock lock(shard.mu);
    if (stat.ok()) {
      ApplyDelegationLearning(*shard.engine, key, owner, elapsed,
                              stat->size_bytes, stat->version);
    }
    FinishDelegating(shard, key);
  }
  return result;
}

void ParallelInvoker::AddDelegation(NodeId dest, Delegation d) {
  std::vector<Delegation> ready;
  {
    MutexLock lock(deleg_mu_);
    auto it = deleg_.find(dest);
    if (it == deleg_.end()) {
      it = deleg_
               .emplace(dest, DestBatch(options_.delegation_batch_size,
                                        options_.delegation_sizing))
               .first;
    }
    DestBatch& batch = it->second;
    double now = PlanNowSeconds();
    batch.sizer.ObserveAdd(now);
    if (batch.items.empty()) batch.oldest_add = now;
    batch.items.push_back(std::move(d));
    if (static_cast<int>(batch.items.size()) >=
        batch.sizer.EffectiveSize()) {
      ready.swap(batch.items);
      batch.oldest_add = -1.0;
    }
  }
  if (!ready.empty()) ExecuteDelegationBatch(dest, std::move(ready));
}

void ParallelInvoker::ExecuteDelegationBatch(NodeId dest,
                                             std::vector<Delegation> items) {
  ++stats_.delegation_batches;
  std::vector<std::pair<Key, std::string>> batch;
  batch.reserve(items.size());
  for (const Delegation& d : items) batch.emplace_back(d.key, d.params);
  double t0 = PlanNowSeconds();
  std::vector<StatusOr<std::string>> results =
      service_->ExecuteBatch(batch, fn_);
  double per_item = (PlanNowSeconds() - t0) /
                    static_cast<double>(std::max<size_t>(items.size(), 1));
  for (size_t i = 0; i < items.size(); ++i) {
    Delegation& d = items[i];
    Shard& shard = ShardFor(d.key);
    ++stats_.delegated;
    StatusOr<std::string> result =
        i < results.size()
            ? std::move(results[i])
            : StatusOr<std::string>(Status::Internal("missing batch result"));
    StatusOr<DataService::ItemStat> stat =
        result.ok() ? service_->Stat(d.key)
                    : StatusOr<DataService::ItemStat>(result.status());
    {
      MutexLock lock(shard.mu);
      if (stat.ok()) {
        ApplyDelegationLearning(*shard.engine, d.key, dest, per_item,
                                stat->size_bytes, stat->version);
      }
      FinishDelegating(shard, d.key);
    }
    FinishQueued(shard, d.request_id, std::move(result));
  }
}

void ParallelInvoker::FlushDelegations(bool force) {
  std::vector<std::pair<NodeId, std::vector<Delegation>>> ready;
  {
    MutexLock lock(deleg_mu_);
    double now = PlanNowSeconds();
    for (auto& [dest, batch] : deleg_) {
      if (batch.items.empty()) continue;
      if (force ||
          now - batch.oldest_add >= options_.delegation_max_wait) {
        ready.emplace_back(dest, std::move(batch.items));
        batch.items.clear();
        batch.oldest_add = -1.0;
      }
    }
  }
  for (auto& [dest, items] : ready) {
    ExecuteDelegationBatch(dest, std::move(items));
  }
}

void ParallelInvoker::FinishDelegating(Shard& shard, Key key) {
  auto it = shard.delegating.find(key);
  if (it != shard.delegating.end() && --it->second <= 0) {
    shard.delegating.erase(it);
  }
  shard.cv.NotifyAll();
}

void ParallelInvoker::FinishQueued(Shard& shard, uint64_t request_id,
                                   StatusOr<std::string> result) {
  if (!result.ok() && result.status().code() == StatusCode::kAborted) {
    ++stats_.transport_errors;
  }
  {
    MutexLock lock(shard.mu);
    if (result.ok()) {
      shard.results.Push(request_id, std::move(result).value());
    }
    // Failures leave no result: FetchComp's on-demand retry re-surfaces
    // the error, like AsyncInvoker.
    auto it = shard.pending.find(request_id);
    if (it != shard.pending.end() && --it->second <= 0) {
      shard.pending.erase(it);
    }
    shard.cv.NotifyAll();
  }
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(barrier_mu_);
    barrier_cv_.NotifyAll();
  }
}

void ParallelInvoker::MaybeTrim(Shard& shard) {
  if (++shard.runs_since_trim < 256) return;
  shard.runs_since_trim = 0;
  for (auto it = shard.values.begin(); it != shard.values.end();) {
    if (shard.engine->cache().Peek(it->first) == CacheTier::kNone) {
      it = shard.values.erase(it);
    } else {
      ++it;
    }
  }
  // The version floors are only a freshness hint for in-flight fetches;
  // cap their footprint.
  if (shard.min_version.size() > (1u << 16)) shard.min_version.clear();
}

ParallelInvokerStats ParallelInvoker::stats() const {
  ParallelInvokerStats out;
  out.submitted = stats_.submitted.load(std::memory_order_relaxed);
  out.served_from_cache =
      stats_.served_from_cache.load(std::memory_order_relaxed);
  out.fetched_then_computed =
      stats_.fetched_then_computed.load(std::memory_order_relaxed);
  out.delegated = stats_.delegated.load(std::memory_order_relaxed);
  out.coalesced_fetches =
      stats_.coalesced_fetches.load(std::memory_order_relaxed);
  out.held_first_requests =
      stats_.held_first_requests.load(std::memory_order_relaxed);
  out.on_demand_runs = stats_.on_demand_runs.load(std::memory_order_relaxed);
  out.delegation_batches =
      stats_.delegation_batches.load(std::memory_order_relaxed);
  out.transport_errors =
      stats_.transport_errors.load(std::memory_order_relaxed);
  out.resync_dropped = stats_.resync_dropped.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    out.dropped_results += shard->results.dropped();
  }
  return out;
}

DecisionEngineStats ParallelInvoker::MergedEngineStats() const {
  DecisionEngineStats out;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    out += shard->engine->stats();
  }
  return out;
}

TieredCacheStats ParallelInvoker::MergedCacheStats() const {
  TieredCacheStats out;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    out += shard->engine->cache().stats();
  }
  return out;
}

double ParallelInvoker::MergedLocalComputeSeconds() const {
  double sum = 0.0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    sum += shard->engine->cost_model().local_compute_time();
  }
  return shards_.empty() ? 0.0 : sum / static_cast<double>(shards_.size());
}

size_t ParallelInvoker::pending_results() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->results.size();
  }
  return total;
}

}  // namespace joinopt
