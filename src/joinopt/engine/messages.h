// Wire-level message items exchanged between compute and data node runtimes.
// Payloads never materialize — items carry the sizes the cost model needs.
#ifndef JOINOPT_ENGINE_MESSAGES_H_
#define JOINOPT_ENGINE_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "joinopt/common/hash.h"
#include "joinopt/loadbalance/stats.h"
#include "joinopt/skirental/decision_engine.h"

namespace joinopt {

/// How the compute node wants a fetched value handled when it lands.
enum class FetchDisposition {
  kNoCache,      ///< compute locally, do not cache (NO / FC / FR fetches)
  kCacheMemory,  ///< insert into the memory tier (ski-rental buy)
  kCacheDisk,    ///< insert into the disk tier
};

/// One item inside a request batch.
struct RequestItem {
  Key key = 0;
  int stage = 0;
  uint64_t tuple_id = 0;
  double param_bytes = 0.0;        ///< sp (compute requests ship p)
  bool is_compute_request = false;
  FetchDisposition disposition = FetchDisposition::kNoCache;
  /// Unique id of this physical send (0 when recovery is disabled). Retries
  /// and hedges of the same logical request carry distinct send ids so the
  /// requester can discard late duplicates.
  uint64_t send_id = 0;
};

/// One item inside a response batch.
struct ResponseItem {
  Key key = 0;
  int stage = 0;
  uint64_t tuple_id = 0;
  bool computed = false;            ///< UDF ran at the data node
  double stored_value_bytes = 0.0;  ///< sv (meaningful when !computed too)
  double udf_cost = 0.0;            ///< per-invocation UDF CPU cost
  uint64_t version = 0;             ///< item version (update detection)
  FetchDisposition disposition = FetchDisposition::kNoCache;
  /// True when this answers a data request (fetch); false for a compute
  /// request's response (computed or bounced back by the balancer).
  bool was_data_request = false;
  /// Echo of the request's send_id (duplicate suppression under retries).
  uint64_t send_id = 0;
};

/// A batch of requests on the wire, with the piggybacked load statistics
/// (Section 5) and kind tag.
struct RequestBatch {
  NodeId from = kInvalidNode;
  bool compute_batch = false;  ///< true: compute requests; false: data
  std::vector<RequestItem> items;
  ComputeNodeStats sender_stats;
};

/// A batch of responses plus the data node's piggybacked cost report
/// (Section 4.3).
struct ResponseBatch {
  NodeId from = kInvalidNode;
  std::vector<ResponseItem> items;
  DataNodeCostReport report;
};

}  // namespace joinopt

#endif  // JOINOPT_ENGINE_MESSAGES_H_
