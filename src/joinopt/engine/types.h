// Shared types for the join-execution engine: input tuples, execution
// strategies, and the job configuration tying workload, cluster and strategy
// together.
#ifndef JOINOPT_ENGINE_TYPES_H_
#define JOINOPT_ENGINE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "joinopt/common/hash.h"
#include "joinopt/loadbalance/balancer.h"
#include "joinopt/skirental/decision_engine.h"

namespace joinopt {

/// One input tuple flowing through a (possibly multi-stage) join pipeline.
/// keys[s] is the join key for stage s (Section 6's left-deep pipelining:
/// each stage joins the running tuple with one stored relation).
struct InputTuple {
  std::vector<Key> keys;
  /// Size of the non-key parameters p shipped with a compute request.
  double param_bytes = 256.0;
};

/// The execution strategies compared throughout the paper's evaluation
/// (Section 9.1.1's naming).
enum class Strategy {
  kNO,  ///< map-side join, blocking per-tuple fetches, no optimizations
  kFC,  ///< function at compute nodes; batching/prefetching; no caching
  kFD,  ///< function at data nodes; batching/prefetching
  kFR,  ///< random 50/50 choice per tuple; batching/prefetching
  kCO,  ///< ski-rental caching only (no load balancing)
  kLO,  ///< load balancing only (no caching)
  kFO,  ///< everything: ski-rental caching + load balancing
};

const char* StrategyToString(Strategy s);

/// Per-strategy execution toggles, derived from the Strategy tag.
struct StrategyTraits {
  bool prefetch = true;       ///< async submission (max_outstanding >> 1)
  bool batching = true;       ///< batch requests per data node
  bool caching = false;       ///< ski-rental decision engine drives routing
  bool load_balancing = false;///< data nodes may bounce compute requests back
  bool always_fetch = false;  ///< route everything as data requests
  bool always_compute = false;///< route everything as compute requests
  bool random_choice = false; ///< FR: coin-flip fetch vs compute

  static StrategyTraits For(Strategy s);
};

/// Engine-side failure recovery (the fault subsystem's client half):
/// per-request timeouts with exponential backoff + deterministic jitter,
/// replica failover rotation, and optional hedged requests. Disabled by
/// default — a job without recovery executes the exact event stream the
/// engine always produced.
struct RecoveryConfig {
  bool enabled = false;
  /// A request send unanswered for this long is presumed lost.
  double request_timeout = 100e-3;
  /// Retry backoff: min(backoff_max, backoff_base * 2^(attempt-1)), then
  /// stretched by up to `jitter_fraction` (deterministic per-node RNG).
  double backoff_base = 20e-3;
  double backoff_max = 500e-3;
  double jitter_fraction = 0.2;
  /// Total sends per request before the tuple is abandoned (counted in
  /// RecoveryCounters::tuples_failed, never silently dropped).
  int max_attempts = 8;
  /// Hedging: if the first send of an attempt is unanswered after
  /// `hedge_delay`, duplicate it to the next replica and take whichever
  /// response arrives first (tail-latency insurance against stragglers).
  bool hedging = false;
  double hedge_delay = 50e-3;
  /// Adaptive hedging (DESIGN.md §15): replace the static `hedge_delay`
  /// with a HedgingManager — hedge once a request exceeds the
  /// `hedge_percentile` of its destination's *observed* latency
  /// distribution, under a token-bucket budget of `hedge_budget` hedges
  /// per primary request (burst-capped at `hedge_burst`). `hedge_delay`
  /// remains the pre-warmup fallback. Only meaningful with hedging=true.
  bool adaptive_hedging = false;
  double hedge_percentile = 0.95;
  double hedge_budget = 0.05;
  double hedge_burst = 8.0;
};

/// What the recovery machinery actually did during a run.
struct RecoveryCounters {
  int64_t timeouts = 0;         ///< sends that expired unanswered
  int64_t retries = 0;          ///< items replayed after a timeout
  int64_t hedges_sent = 0;
  int64_t hedges_won = 0;       ///< hedge responses that beat the primary
  int64_t failovers = 0;        ///< sends routed to a non-primary replica
  int64_t duplicates_ignored = 0;  ///< late/duplicate responses discarded
  int64_t tuples_failed = 0;    ///< tuples abandoned after max_attempts
  int64_t batch_hedges_sent = 0;  ///< idempotent tagged batches duplicated
  /// Duplicated batches whose loser also completed — answered from the
  /// server's replay-dedup cache rather than re-executed.
  int64_t batch_hedges_absorbed = 0;

  void Add(const RecoveryCounters& o) {
    timeouts += o.timeouts;
    retries += o.retries;
    hedges_sent += o.hedges_sent;
    hedges_won += o.hedges_won;
    failovers += o.failovers;
    duplicates_ignored += o.duplicates_ignored;
    tuples_failed += o.tuples_failed;
    batch_hedges_sent += o.batch_hedges_sent;
    batch_hedges_absorbed += o.batch_hedges_absorbed;
  }
};

/// Knobs for the engine that are not strategy-dependent.
struct EngineConfig {
  /// Batch size for data/compute request batches (Section 7.2: static).
  int batch_size = 64;
  /// Max wait before a partial batch is flushed (latency bound).
  double batch_max_wait = 5e-3;
  /// Prefetch window: max requests in flight per compute node. NO runs
  /// with 1 (synchronous); everything else uses this. Deep enough to hide
  /// batch round trips, shallow enough that the runtime decisions see
  /// feedback (response statistics) while the input is still flowing.
  int max_outstanding = 256;
  /// CPU cost of parsing one input tuple at the compute node (the preMap
  /// spot-extraction work).
  double parse_cost = 2e-6;
  /// Extra per-tuple CPU overhead of the ski-rental bookkeeping (counter,
  /// benefit, cost resolution) — the "some overheads" FO pays in Fig. 8a.
  double decision_overhead = 3e-6;
  /// Size of the computed value the UDF emits (scv).
  double computed_value_bytes = 256.0;
  /// Key size on the wire (sk).
  double key_bytes = 16.0;
  /// Decision-engine configuration (cache sizes, counter, eviction).
  DecisionEngineConfig decision;
  /// Balancer configuration for load-balancing strategies.
  BalancerConfig balancer;
  /// Data-node block cache (the HBase block cache / OS page cache): bytes
  /// of recently read stored values served without disk access.
  double data_node_block_cache_bytes = 1024.0 * 1024 * 1024;
  /// CPU cost of receiving and dispatching one RPC message (per batch, not
  /// per item — this is exactly the cost batching amortizes, Section 7.2).
  double rpc_cpu_cost = 100e-6;

  // ---- Extensions beyond the paper (its "future work" items) ----------

  /// Footnote 4 / Section 10 extension: when the compute node's local UDF
  /// backlog exceeds `offload_threshold` times the estimated remote compute
  /// time, route even *cached* keys as compute requests — fixing the
  /// very-high-skew regime where all cached work piles onto the compute
  /// nodes while data nodes idle.
  bool offload_cached_under_overload = false;
  double offload_threshold = 2.0;

  /// Section 10 extension: size batches dynamically from the observed
  /// request inter-arrival time so that batching adds at most
  /// `batch_target_delay` of queueing latency (large batches under load,
  /// small batches when traffic is light).
  bool dynamic_batch_size = false;
  double batch_target_delay = 2e-3;
  /// Per-stage join selectivity: probability a joined tuple survives to the
  /// next stage (1.0 = no filtering). Sized to the number of stages or
  /// empty (treated as all-1).
  std::vector<double> stage_selectivity;
  /// Seed for the engine's internal randomness (FR coin flips, selectivity).
  uint64_t seed = 12345;
  /// Failure recovery: timeouts, retries, failover, hedging.
  RecoveryConfig recovery;
};

/// Outcome of one job run (one workload under one strategy).
struct JobResult {
  double makespan = 0.0;        ///< virtual seconds until the last tuple done
  int64_t tuples_processed = 0; ///< tuples fully through the pipeline
  int64_t udf_invocations = 0;  ///< total UDF executions (all stages)
  double throughput = 0.0;      ///< tuples_processed / makespan
  double network_bytes = 0.0;
  int64_t network_messages = 0;
  int64_t data_requests = 0;    ///< items fetched via data requests
  int64_t compute_requests = 0; ///< items shipped as compute requests
  int64_t computed_at_data = 0; ///< compute-request items executed at data
  int64_t bounced_to_compute = 0; ///< compute-request items bounced back
  int64_t cache_memory_hits = 0;
  int64_t cache_disk_hits = 0;
  /// Straggler factor: max over nodes of CPU busy divided by the mean
  /// (1.0 = perfectly even).
  double compute_cpu_skew = 1.0;
  double data_cpu_skew = 1.0;
  double total_cpu_busy = 0.0;
  uint64_t sim_events = 0;
  /// Failure-recovery activity (all zero when RecoveryConfig is disabled).
  RecoveryCounters recovery;
  /// Messages lost to injected faults (requests + responses + updates).
  int64_t messages_dropped = 0;
};

}  // namespace joinopt

#endif  // JOINOPT_ENGINE_TYPES_H_
