// Adaptive hedging manager (DESIGN.md §15): decides *when* a straggling
// request deserves a duplicate ("hedge") and *whether* the system can
// afford one right now.
//
// The two halves:
//
//  * Quantile tracking. Every completed request's latency is observed into
//    a per-endpoint pair of log-bucketed histograms (common/histogram.h,
//    the same 1 us..10 s ~12%-wide buckets LatencyRecorder uses) rotated
//    every `window` observations, so the tracked distribution follows the
//    live one with at most two windows of memory. HedgeDelay(endpoint)
//    returns the configured percentile (default p95) of that endpoint's
//    observed latency, clamped to [min_delay, max_delay] — the moment a
//    request has outlived 95% of its peers, it is statistically a
//    straggler and duplicating it is cheap insurance. Before `warmup`
//    observations the static `fallback_delay` (the old RecoveryConfig
//    hedge_delay) is returned unchanged.
//
//  * Budget accounting. Hedges are extra load; under stress, unbounded
//    hedging is an outage amplifier. A token bucket accrues `budget`
//    tokens per primary request issued (OnRequestIssued), capped at
//    `burst`; a hedge costs one token (TryAcquireHedge). Starting from an
//    empty bucket this enforces the hard invariant
//        hedges_granted <= budget * primaries
//    at every instant (the property test pins it), so the realized hedge
//    rate can never exceed the configured budget.
//
// The manager is clock-free: it never reads a wall clock, only observes
// the latencies callers hand it and counts requests. That is what lets
// the discrete-event simulator (engine/join_job) and the socket client
// (net/rpc_client) share one implementation — and what makes the unit
// tests deterministic.
//
// Threading: all methods are thread-safe; one Mutex (rank
// lock_rank::kHedging, a leaf) guards the histograms and the bucket.
// HedgeDelay memoizes its percentile and recomputes it lazily every
// `refresh_every` observations, so steady-state calls are O(1).
#ifndef JOINOPT_ENGINE_HEDGING_MANAGER_H_
#define JOINOPT_ENGINE_HEDGING_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "joinopt/common/histogram.h"
#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/sync.h"

namespace joinopt {

struct HedgingConfig {
  /// Hedge a primary request once it has outlived this fraction of the
  /// endpoint's observed latency distribution.
  double percentile = 0.95;
  /// Token-bucket accrual: hedges permitted per primary request issued.
  /// The realized hedge rate never exceeds this.
  double budget = 0.05;
  /// Token-bucket cap: bounds how many hedges can fire back-to-back after
  /// a long hedge-free stretch.
  double burst = 8.0;
  /// Clamp on the computed hedge delay (seconds). The floor keeps a very
  /// fast endpoint from hedging inside scheduling noise; the ceiling keeps
  /// a distribution poisoned by timeouts from disabling hedging entirely.
  double min_delay = 200e-6;
  double max_delay = 5.0;
  /// Returned by HedgeDelay before `warmup` observations have arrived for
  /// the endpoint — the static delay the adaptive path replaces.
  double fallback_delay = 50e-3;
  /// Observations per endpoint before the adaptive delay switches on.
  int warmup = 64;
  /// Histogram rotation period (per endpoint): quantiles are computed over
  /// the current + previous window, so memory spans [window, 2*window)
  /// observations.
  int window = 4096;
  /// Memoized percentile refresh period (observations per endpoint).
  int refresh_every = 32;

  /// Applies JOINOPT_HEDGE_PERCENTILE / JOINOPT_HEDGE_BUDGET environment
  /// overrides (README "Operations guide") on top of `base`. Unset or
  /// unparsable variables leave the base value.
  static HedgingConfig FromEnv(HedgingConfig base);
  static HedgingConfig FromEnv() { return FromEnv(HedgingConfig()); }
};

struct HedgingStats {
  int64_t primaries = 0;       ///< primary requests registered
  int64_t hedges_granted = 0;  ///< TryAcquireHedge calls that passed
  int64_t hedges_denied = 0;   ///< ...that failed (budget exhausted)
  int64_t observations = 0;    ///< latencies observed (all endpoints)

  /// hedges_granted / primaries (0 before any primary). By construction
  /// this never exceeds HedgingConfig::budget.
  double realized_rate() const {
    return primaries > 0
               ? static_cast<double>(hedges_granted) /
                     static_cast<double>(primaries)
               : 0.0;
  }
};

class HedgingManager {
 public:
  explicit HedgingManager(HedgingConfig config = {});

  HedgingManager(const HedgingManager&) = delete;
  HedgingManager& operator=(const HedgingManager&) = delete;

  /// Records a completed request's latency against `endpoint` (an opaque
  /// id: a NodeId, a replica-chain index — whatever the caller routes by).
  void ObserveLatency(uint64_t endpoint, double seconds);

  /// Registers one primary (non-hedge) request: accrues hedge budget.
  void OnRequestIssued();

  /// How long a primary towards `endpoint` may remain unanswered before it
  /// deserves a hedge: the configured percentile of the endpoint's
  /// observed latency, clamped; `fallback_delay` before warmup.
  double HedgeDelay(uint64_t endpoint) const;

  /// Spends one hedge token if available. Callers send the duplicate only
  /// on true; false means the budget is exhausted and the primary must be
  /// waited out (the timeout/retry path still applies).
  bool TryAcquireHedge();

  HedgingStats stats() const;
  const HedgingConfig& config() const { return config_; }

  /// The current quantile estimate for `endpoint` (no clamp, no fallback;
  /// 0 before any observation). Test/introspection hook.
  double EndpointQuantile(uint64_t endpoint, double q) const;

 private:
  struct Endpoint {
    Histogram current;
    Histogram previous;
    int64_t count = 0;          ///< total observations ever
    int in_window = 0;          ///< observations in `current`
    double cached_delay = 0.0;  ///< memoized HedgeDelay percentile
    int since_refresh = 0;
    Endpoint();
  };

  Endpoint& FindOrCreate(uint64_t endpoint) JOINOPT_REQUIRES(mu_);
  /// Percentile over current+previous windows.
  static double WindowQuantile(const Endpoint& ep, double q);

  HedgingConfig config_;
  mutable Mutex mu_{lock_rank::kHedging, "HedgingManager::mu_"};
  std::unordered_map<uint64_t, Endpoint> endpoints_ JOINOPT_GUARDED_BY(mu_);
  double tokens_ JOINOPT_GUARDED_BY(mu_) = 0.0;
  HedgingStats stats_ JOINOPT_GUARDED_BY(mu_);
};

}  // namespace joinopt

#endif  // JOINOPT_ENGINE_HEDGING_MANAGER_H_
