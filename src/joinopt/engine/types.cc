#include "joinopt/engine/types.h"

namespace joinopt {

const char* StrategyToString(Strategy s) {
  switch (s) {
    case Strategy::kNO:
      return "NO";
    case Strategy::kFC:
      return "FC";
    case Strategy::kFD:
      return "FD";
    case Strategy::kFR:
      return "FR";
    case Strategy::kCO:
      return "CO";
    case Strategy::kLO:
      return "LO";
    case Strategy::kFO:
      return "FO";
  }
  return "?";
}

StrategyTraits StrategyTraits::For(Strategy s) {
  StrategyTraits t;
  switch (s) {
    case Strategy::kNO:
      t.prefetch = false;
      t.batching = false;
      t.always_fetch = true;
      break;
    case Strategy::kFC:
      t.always_fetch = true;
      break;
    case Strategy::kFD:
      t.always_compute = true;
      break;
    case Strategy::kFR:
      t.random_choice = true;
      break;
    case Strategy::kCO:
      t.caching = true;
      break;
    case Strategy::kLO:
      t.always_compute = true;
      t.load_balancing = true;
      break;
    case Strategy::kFO:
      t.caching = true;
      t.load_balancing = true;
      break;
  }
  return t;
}

}  // namespace joinopt
