// Request batcher (Section 7.2): per-destination buffers flushed when full
// or when the oldest buffered item has waited `max_wait` (the latency bound
// the paper's streaming deployments need). With batching disabled every item
// flushes immediately — the NO baseline's behaviour.
#ifndef JOINOPT_ENGINE_BATCHER_H_
#define JOINOPT_ENGINE_BATCHER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "joinopt/common/ewma.h"
#include "joinopt/engine/messages.h"
#include "joinopt/sim/event_queue.h"

namespace joinopt {

/// Dynamic sizing (a paper "future work" item): pick the batch size from
/// the observed inter-arrival time so batching adds at most target_delay
/// of queueing latency.
struct BatcherDynamicSizing {
  bool enabled = false;
  double target_delay = 2e-3;
  int min_size = 1;
  int max_size = 1024;
};

/// The batch-size policy by itself, decoupled from the simulator clock so
/// both the simulated Batcher and the real-time ParallelInvoker delegation
/// batches share one sizing rule: a static size, or (when dynamic sizing
/// is on) target_delay divided by the smoothed inter-arrival time.
class BatchSizer {
 public:
  BatchSizer(int static_size, const BatcherDynamicSizing& dynamic)
      : static_size_(static_size), dynamic_(dynamic) {}

  /// Records an arrival at time `now` (any monotonic clock, in seconds).
  void ObserveAdd(double now) {
    if (!dynamic_.enabled) return;
    if (last_add_ >= 0.0) inter_arrival_.Observe(now - last_add_);
    last_add_ = now;
  }

  int EffectiveSize() const {
    if (!dynamic_.enabled || !inter_arrival_.initialized()) {
      return static_size_;
    }
    double rate_based =
        dynamic_.target_delay / std::max(inter_arrival_.value(), 1e-9);
    int size = static_cast<int>(rate_based);
    if (size < dynamic_.min_size) size = dynamic_.min_size;
    if (size > dynamic_.max_size) size = dynamic_.max_size;
    return size;
  }

 private:
  int static_size_;
  BatcherDynamicSizing dynamic_;
  double last_add_ = -1.0;
  Ewma inter_arrival_{0.1};
};

class Batcher {
 public:
  using FlushFn = std::function<void(std::vector<RequestItem>)>;
  using DynamicSizing = BatcherDynamicSizing;

  /// `enabled == false` degrades to flush-per-item.
  Batcher(Simulation* sim, int batch_size, double max_wait, bool enabled,
          FlushFn flush, DynamicSizing dynamic = DynamicSizing())
      : sim_(sim),
        max_wait_(max_wait),
        enabled_(enabled),
        sizer_(batch_size, dynamic),
        flush_(std::move(flush)) {}

  void Add(RequestItem item) {
    sizer_.ObserveAdd(sim_->now());
    buf_.push_back(std::move(item));
    if (!enabled_ || static_cast<int>(buf_.size()) >= EffectiveBatchSize()) {
      Flush();
      return;
    }
    if (buf_.size() == 1) {
      // First item of a fresh batch: arm the timeout.
      uint64_t epoch = epoch_;
      sim_->Schedule(max_wait_, [this, epoch] {
        if (epoch == epoch_ && !buf_.empty()) Flush();
      });
    }
  }

  /// Current batch-size target (== the static size unless dynamic).
  int EffectiveBatchSize() const { return sizer_.EffectiveSize(); }

  /// Flushes whatever is buffered (end-of-input drain).
  void Flush() {
    if (buf_.empty()) return;
    ++epoch_;
    std::vector<RequestItem> out;
    out.swap(buf_);
    ++flushes_;
    flush_(std::move(out));
  }

  size_t pending() const { return buf_.size(); }
  int64_t flushes() const { return flushes_; }

 private:
  Simulation* sim_;
  double max_wait_;
  bool enabled_;
  BatchSizer sizer_;
  FlushFn flush_;
  std::vector<RequestItem> buf_;
  uint64_t epoch_ = 0;  // invalidates stale timeout events
  int64_t flushes_ = 0;
};

}  // namespace joinopt

#endif  // JOINOPT_ENGINE_BATCHER_H_
