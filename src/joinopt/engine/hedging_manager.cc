#include "joinopt/engine/hedging_manager.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace joinopt {

namespace {

/// Same log-spaced boundaries as bench_common.h's LatencyRecorder: 1 us to
/// 10 s, ~12% wide — fine enough that an interpolated p95 lands within a
/// bucket of the true value, coarse enough to stay ~140 buckets.
const std::vector<double>& LogBounds() {
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>();
    for (double v = 1e-6; v < 10.0; v *= 1.12) b->push_back(v);
    return b;
  }();
  return *bounds;
}

double EnvDouble(const char* name, double fallback, double lo, double hi) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  double v = std::strtod(env, &end);
  if (end == env) return fallback;
  return std::clamp(v, lo, hi);
}

}  // namespace

HedgingConfig HedgingConfig::FromEnv(HedgingConfig base) {
  base.percentile =
      EnvDouble("JOINOPT_HEDGE_PERCENTILE", base.percentile, 0.5, 0.9999);
  base.budget = EnvDouble("JOINOPT_HEDGE_BUDGET", base.budget, 0.0, 1.0);
  return base;
}

HedgingManager::Endpoint::Endpoint()
    : current(LogBounds()), previous(LogBounds()) {}

HedgingManager::HedgingManager(HedgingConfig config)
    : config_(config) {}

HedgingManager::Endpoint& HedgingManager::FindOrCreate(uint64_t endpoint) {
  return endpoints_[endpoint];
}

double HedgingManager::WindowQuantile(const Endpoint& ep, double q) {
  if (ep.previous.stats().count() == 0) return ep.current.Quantile(q);
  Histogram merged = ep.current;
  merged.Merge(ep.previous);
  return merged.Quantile(q);
}

void HedgingManager::ObserveLatency(uint64_t endpoint, double seconds) {
  if (seconds < 0) return;
  MutexLock lock(mu_);
  ++stats_.observations;
  Endpoint& ep = FindOrCreate(endpoint);
  ep.current.Observe(seconds);
  ++ep.count;
  ++ep.in_window;
  ++ep.since_refresh;
  if (ep.in_window >= config_.window) {
    // Rotate: the just-filled window becomes history, quantiles keep
    // covering [window, 2*window) observations.
    std::swap(ep.current, ep.previous);
    ep.current.Clear();
    ep.in_window = 0;
    ep.since_refresh = config_.refresh_every;  // force recompute
  }
  if (ep.since_refresh >= config_.refresh_every ||
      ep.count == config_.warmup) {
    ep.cached_delay = WindowQuantile(ep, config_.percentile);
    ep.since_refresh = 0;
  }
}

void HedgingManager::OnRequestIssued() {
  MutexLock lock(mu_);
  ++stats_.primaries;
  tokens_ = std::min(config_.burst, tokens_ + config_.budget);
}

double HedgingManager::HedgeDelay(uint64_t endpoint) const {
  MutexLock lock(mu_);
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end() || it->second.count < config_.warmup) {
    return config_.fallback_delay;
  }
  const Endpoint& ep = it->second;
  double delay = ep.since_refresh < config_.refresh_every
                     ? ep.cached_delay
                     : WindowQuantile(ep, config_.percentile);
  return std::clamp(delay, config_.min_delay, config_.max_delay);
}

bool HedgingManager::TryAcquireHedge() {
  MutexLock lock(mu_);
  // Epsilon absorbs accrual rounding (10 primaries x budget 0.1 sums to
  // 0.999...); the budget invariant still holds to within 1e-9 tokens.
  if (tokens_ < 1.0 - 1e-9) {
    ++stats_.hedges_denied;
    return false;
  }
  tokens_ -= 1.0;
  ++stats_.hedges_granted;
  return true;
}

HedgingStats HedgingManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

double HedgingManager::EndpointQuantile(uint64_t endpoint, double q) const {
  MutexLock lock(mu_);
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) return 0.0;
  return WindowQuantile(it->second, q);
}

}  // namespace joinopt
