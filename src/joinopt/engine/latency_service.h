// A DataService decorator that injects real wall-clock latency in front of
// an in-process service: the shape a networked deployment (HBase + 1 Gbps
// Ethernet, Section 9's testbed) presents to a compute node. Each data
// request pays a round trip plus payload transfer time; each compute
// request pays a round trip plus per-UDF service time; a *batched* compute
// request pays the round trip once — which is exactly the delegation
// batching win the ParallelInvoker exploits.
//
// The decorator is what makes the multi-threaded executor measurable on
// real clocks: workers overlap these waits the way a real deployment
// overlaps network I/O with computation.
#ifndef JOINOPT_ENGINE_LATENCY_SERVICE_H_
#define JOINOPT_ENGINE_LATENCY_SERVICE_H_

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/engine/async_api.h"

namespace joinopt {

struct ServiceLatencyModel {
  /// Round-trip floor for a data request (network RTT + request handling).
  double fetch_rtt = 400e-6;
  /// Payload transfer rate for data requests (1 Gbps default).
  double bandwidth_bytes_per_sec = 125e6;
  /// Round-trip floor for a compute request; paid once per batch.
  double execute_rtt = 400e-6;
  /// Per-UDF service time at the data node (queuing/CPU), paid per item.
  double execute_per_item = 20e-6;
  /// Stat responses piggyback on compute responses (Section 4.3), so they
  /// are free by default.
  double stat_latency = 0.0;
};

class LatencyPaddedService : public DataService {
 public:
  LatencyPaddedService(DataService* inner, const ServiceLatencyModel& model)
      : inner_(inner), model_(model) {}

  StatusOr<Fetched> Fetch(Key key) override {
    auto fetched = inner_->Fetch(key);
    double transfer =
        fetched.ok() ? static_cast<double>(fetched->value.size()) /
                           model_.bandwidth_bytes_per_sec
                     : 0.0;
    Sleep(model_.fetch_rtt + transfer);
    return fetched;
  }

  StatusOr<std::string> Execute(Key key, const std::string& params,
                                const UserFn& fn) override {
    Sleep(model_.execute_rtt + model_.execute_per_item);
    return inner_->Execute(key, params, fn);
  }

  std::vector<StatusOr<std::string>> ExecuteBatch(
      const std::vector<std::pair<Key, std::string>>& items,
      const UserFn& fn) override {
    // One round trip for the whole batch; service time still per item.
    Sleep(model_.execute_rtt +
          model_.execute_per_item * static_cast<double>(items.size()));
    return inner_->ExecuteBatch(items, fn);
  }

  StatusOr<ItemStat> Stat(Key key) const override {
    if (model_.stat_latency > 0) Sleep(model_.stat_latency);
    return inner_->Stat(key);
  }

  NodeId OwnerOf(Key key) const override { return inner_->OwnerOf(key); }

  const ServiceLatencyModel& model() const { return model_; }

 private:
  static void Sleep(double seconds) {
    if (seconds <= 0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }

  DataService* inner_;
  ServiceLatencyModel model_;
};

}  // namespace joinopt

#endif  // JOINOPT_ENGINE_LATENCY_SERVICE_H_
