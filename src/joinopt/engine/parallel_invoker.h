// Multi-threaded preMap/map executor: the Section 7 API running on a real
// worker pool, overlapping prefetches with computation — the step from the
// deterministic AsyncInvoker toward a live networked deployment.
//
// Design (lock-minimal):
//  * The DecisionEngine + payload cache are *sharded* by key hash: one
//    striped mutex per shard, each shard owning its own engine (frequency
//    counter, tiered cache with 1/num_shards of the capacity, EWMA cost
//    model). Per-shard measurements are merged on read by the Merged*()
//    accessors. No lock is ever held across a service call or a UDF
//    execution.
//  * SubmitComp enqueues into a bounded MPMC queue drained by a fixed
//    worker pool; a full queue blocks the producer (backpressure instead
//    of unbounded growth).
//  * Duplicate in-flight *fetches* of the same key coalesce (single
//    flight): the second requester waits for the first fetch to land and
//    then re-routes via the engine's const ReDecide (the access was
//    already counted), now against a warm cache. First compute requests
//    coalesce the same way: while a key's blind first delegation is in
//    flight, same-key work holds until its piggybacked cost parameters
//    arrive instead of flooding the data node (Decision::first_request).
//  * Compute-request delegations batch per destination data node, sized by
//    the same BatchSizer the simulator's Batcher uses, and go out through
//    DataService::ExecuteBatch (one round trip per batch).
//
// Semantics vs AsyncInvoker: results are identical per request, but
// completion *order* across keys is scheduling-dependent, so cross-key
// decision sequences (and therefore exact cache contents) are not
// deterministic. The simulator keeps the deterministic executor for
// reproducible figures; this one exists to be fast.
#ifndef JOINOPT_ENGINE_PARALLEL_INVOKER_H_
#define JOINOPT_ENGINE_PARALLEL_INVOKER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "joinopt/common/lock_ranks.h"
#include "joinopt/common/status.h"
#include "joinopt/common/sync.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/engine/batcher.h"
#include "joinopt/engine/bounded_queue.h"
#include "joinopt/engine/plan_exec.h"
#include "joinopt/skirental/decision_engine.h"

namespace joinopt {

struct ParallelInvokerOptions {
  DecisionEngineConfig decision;
  /// Modeled bandwidth for the cost model's network terms.
  double bandwidth_bytes_per_sec = 125e6;
  /// Worker threads draining the prefetch queue.
  int num_threads = 4;
  /// Lock stripes; 0 = derived from num_threads (next power of two of
  /// 4 * num_threads, clamped to [8, 64]). The configured cache capacity
  /// is split evenly across shards.
  int num_shards = 0;
  /// Bounded prefetch queue capacity (backpressure bound).
  size_t queue_capacity = 1024;
  /// Bound on unclaimed prefetched results, applied per shard after
  /// dividing by the shard count (same policy as AsyncInvoker's).
  size_t max_unclaimed_results = 1 << 16;
  /// Delegation batching: static batch size per destination data node...
  int delegation_batch_size = 8;
  /// ...flushed early once the oldest buffered delegation has waited this
  /// long (checked whenever a worker goes idle or a fetcher polls).
  double delegation_max_wait = 500e-6;
  /// Optional dynamic sizing, shared with the simulator's Batcher.
  BatcherDynamicSizing delegation_sizing;
  /// Optional shared load view (DESIGN.md §15): workers periodically push
  /// the cost model's smoothed per-node tCompute/tFetch estimates into it
  /// (throttled; shard lock rank kInvokerShard < kNodeLoadView, so the
  /// nesting is legal), giving replica selection a latency prior before
  /// any direct observation exists. Null disables the feed.
  NodeLoadView* load_view = nullptr;
};

struct ParallelInvokerStats {
  int64_t submitted = 0;
  int64_t served_from_cache = 0;
  int64_t fetched_then_computed = 0;
  int64_t delegated = 0;
  /// Fetches that coalesced onto another in-flight fetch of the same key.
  int64_t coalesced_fetches = 0;
  /// First-requests held while the key's blind first delegation was in
  /// flight (Section 4.3's first-request rule under concurrency).
  int64_t held_first_requests = 0;
  /// FetchComp calls that ran the plan in the caller (never prefetched,
  /// or the prefetch failed / was dropped).
  int64_t on_demand_runs = 0;
  /// Unclaimed prefetched results dropped by the per-shard result bound.
  int64_t dropped_results = 0;
  /// Delegation batches shipped via ExecuteBatch.
  int64_t delegation_batches = 0;
  /// Submissions that failed with a transport-class error (kAborted — what
  /// the RPC client surfaces once its own backoff + replica failover is
  /// exhausted; see net/socket.h). FetchComp re-runs these on demand, so a
  /// transient outage costs latency, not correctness.
  int64_t transport_errors = 0;
  /// Cached payloads dropped by ResyncWhere (epoch-gap recovery).
  int64_t resync_dropped = 0;
};

class ParallelInvoker {
 public:
  using Options = ParallelInvokerOptions;

  /// `fn` runs concurrently on several workers; it must be thread-safe.
  ParallelInvoker(DataService* service, UserFn fn,
                  const Options& options = Options());
  /// Drains the queue, flushes delegation batches and joins the workers.
  ~ParallelInvoker();

  ParallelInvoker(const ParallelInvoker&) = delete;
  ParallelInvoker& operator=(const ParallelInvoker&) = delete;

  /// preMap (Figure 10's submitComp). Thread-safe; blocks only when the
  /// prefetch queue is full.
  void SubmitComp(Key key, std::string params);

  /// map (Figure 10's fetchComp). Thread-safe. Waits for an in-flight
  /// submission of the same request; computes on demand when there is
  /// none.
  StatusOr<std::string> FetchComp(Key key, const std::string& params);

  /// Invalidate a cached value after a store update (Section 4.2.3).
  /// Thread-safe; a fetch racing the update is detected by version and
  /// never installs the stale payload.
  void OnUpdate(Key key, uint64_t new_version);

  /// Epoch-gap re-sync: drops every cached payload (and the matching
  /// engine cache/counter state) whose key satisfies `pred`. Used when an
  /// update-notification stream detects a gap — the dropped keys may or
  /// may not have changed, but their invalidations can no longer be
  /// trusted, so the stale-read window is closed by re-fetching on next
  /// use. Thread-safe; returns the number of payloads dropped (the
  /// "targeted re-sync" metric — it must stay proportional to the gapped
  /// regions, not the whole cache).
  int64_t ResyncWhere(const std::function<bool(Key)>& pred);

  /// Blocks until every submitted request has produced (or dropped) its
  /// result and all delegation batches have flushed.
  void Barrier();

  ParallelInvokerStats stats() const;
  /// Per-shard decision-engine stats summed on read.
  DecisionEngineStats MergedEngineStats() const;
  /// Per-shard cache stats summed on read.
  TieredCacheStats MergedCacheStats() const;
  /// Per-shard EWMA of local UDF wall time averaged across shards
  /// (shards without observations contribute their prior, matching what
  /// their next decision would use).
  double MergedLocalComputeSeconds() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_threads() const { return static_cast<int>(workers_.size()); }
  size_t pending_results() const;

 private:
  struct CachedValue {
    std::shared_ptr<const std::string> value;
    uint64_t version = 0;
  };

  struct Shard {
    /// All shards share rank kInvokerShard: two shard locks never nest
    /// (Merged*() and ResyncWhere lock one stripe at a time) and the
    /// checker enforces exactly that.
    mutable Mutex mu{lock_rank::kInvokerShard, "ParallelInvoker::Shard::mu"};
    /// Signals result arrivals, pending-count drops and fetch completions.
    CondVar cv;
    std::unique_ptr<DecisionEngine> engine JOINOPT_GUARDED_BY(mu)
        JOINOPT_PT_GUARDED_BY(mu);
    std::unordered_map<Key, CachedValue> values JOINOPT_GUARDED_BY(mu);
    BoundedResultMap results JOINOPT_GUARDED_BY(mu){0};
    /// (key, params) request ids with submissions still in flight.
    std::unordered_map<uint64_t, int> pending JOINOPT_GUARDED_BY(mu);
    /// Keys with a fetch in flight (single-flight coalescing).
    std::unordered_set<Key> fetching JOINOPT_GUARDED_BY(mu);
    /// Keys with delegations in flight (count: duplicates each delegate
    /// once bought-in, but first-requests hold while this is non-zero).
    std::unordered_map<Key, int> delegating JOINOPT_GUARDED_BY(mu);
    /// Floor on acceptable fetched versions, set by OnUpdate: a fetch
    /// that raced an update and returned an older version is not cached.
    std::unordered_map<Key, uint64_t> min_version JOINOPT_GUARDED_BY(mu);
    int64_t runs_since_trim JOINOPT_GUARDED_BY(mu) = 0;
  };

  struct WorkItem {
    Key key;
    std::string params;
  };

  struct Delegation {
    Key key;
    std::string params;
    uint64_t request_id;
  };

  struct DestBatch {
    std::vector<Delegation> items;
    BatchSizer sizer;
    double oldest_add = -1.0;
    DestBatch(int size, const BatcherDynamicSizing& dynamic)
        : sizer(size, dynamic) {}
  };

  /// Key -> stripe. Salted so the stripe choice decorrelates from owner
  /// placements that also hash the key (e.g. LogStoreDataService).
  static size_t ShardIndex(Key key, uint64_t mask) {
    return static_cast<size_t>(Mix64(key + 0x9E3779B97F4A7C15ULL) & mask);
  }
  Shard& ShardFor(Key key) { return *shards_[ShardIndex(key, shard_mask_)]; }

  void WorkerLoop();
  /// Runs one queued submission end to end (result recorded in the shard).
  void ProcessQueued(const WorkItem& item);
  /// Executes the optimizer's plan. When `allow_defer` and the plan is a
  /// compute request, the delegation is buffered for batching and nullopt
  /// is returned (the batch flush will record the result).
  std::optional<StatusOr<std::string>> ExecutePlan(Key key,
                                                   const std::string& params,
                                                   bool allow_defer);
  /// The compute-request leg of the plan: batched when deferral is
  /// allowed, otherwise executed inline with cost learning.
  std::optional<StatusOr<std::string>> Delegate(Shard& shard, Key key,
                                                const std::string& params,
                                                NodeId owner,
                                                bool allow_defer);
  /// Buffers a delegation; executes the destination's batch when full.
  void AddDelegation(NodeId dest, Delegation d) JOINOPT_EXCLUDES(deleg_mu_);
  /// Ships one destination's batch through ExecuteBatch and records the
  /// results.
  void ExecuteDelegationBatch(NodeId dest, std::vector<Delegation> items);
  /// Drops one in-flight-delegation mark for `key` and wakes held
  /// first-requests.
  static void FinishDelegating(Shard& shard, Key key)
      JOINOPT_REQUIRES(shard.mu);
  /// Flushes destination batches: all of them when `force`, otherwise only
  /// those whose oldest item exceeded delegation_max_wait. Takes shard
  /// locks while shipping, so callers waiting on a shard drop its lock
  /// first.
  void FlushDelegations(bool force) JOINOPT_EXCLUDES(deleg_mu_);
  /// Records a finished queued submission (result or failure) and wakes
  /// fetchers / the barrier.
  void FinishQueued(Shard& shard, uint64_t request_id,
                    StatusOr<std::string> result) JOINOPT_EXCLUDES(shard.mu);
  void MaybeTrim(Shard& shard) JOINOPT_REQUIRES(shard.mu);

  DataService* service_;
  UserFn fn_;
  Options options_;
  uint64_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  BoundedQueue<WorkItem> queue_;
  std::vector<std::thread> workers_;

  Mutex deleg_mu_{lock_rank::kInvokerDelegation,
                  "ParallelInvoker::deleg_mu_"};
  std::unordered_map<NodeId, DestBatch> deleg_ JOINOPT_GUARDED_BY(deleg_mu_);

  /// Submissions not yet finished (for Barrier).
  std::atomic<int64_t> outstanding_{0};
  Mutex barrier_mu_{lock_rank::kInvokerBarrier,
                    "ParallelInvoker::barrier_mu_"};
  CondVar barrier_cv_;

  struct AtomicStats {
    std::atomic<int64_t> submitted{0};
    std::atomic<int64_t> served_from_cache{0};
    std::atomic<int64_t> fetched_then_computed{0};
    std::atomic<int64_t> delegated{0};
    std::atomic<int64_t> coalesced_fetches{0};
    std::atomic<int64_t> held_first_requests{0};
    std::atomic<int64_t> on_demand_runs{0};
    std::atomic<int64_t> delegation_batches{0};
    std::atomic<int64_t> transport_errors{0};
    std::atomic<int64_t> resync_dropped{0};
  };
  mutable AtomicStats stats_;
  /// Throttle for the load-view cost-estimate feed (1 push per 64 plans).
  std::atomic<uint64_t> load_view_push_{0};
};

}  // namespace joinopt

#endif  // JOINOPT_ENGINE_PARALLEL_INVOKER_H_
