// The Section 7 programming API as a real, in-process executor (not the
// simulator): the <preMap, map> pair of Figure 10 with submitComp /
// fetchComp calls, a prefetch queue, and a result hash-map (Figure 4).
//
// A user registers f'(k, p, v); submitComp(k, p) enqueues a prefetch
// request; fetchComp(k, p) returns the computed value, executing whatever
// the optimizer decided: local computation on a cached value, a "data
// request" (fetch the value from the service, cache it per Algorithm 1,
// compute locally), or a "compute request" (delegate to the service — the
// coprocessor path). Costs are measured with real clocks and fed to the
// same DecisionEngine the simulator uses, so the ski-rental caching policy
// is live on real payloads.
//
// The provided LocalDataService backs the API with an in-process
// ParallelStore; a deployment would implement DataService over HBase or any
// store with server-side function shipping.
#ifndef JOINOPT_ENGINE_ASYNC_API_H_
#define JOINOPT_ENGINE_ASYNC_API_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "joinopt/common/status.h"
#include "joinopt/engine/async_api_fwd.h"
#include "joinopt/engine/plan_exec.h"
#include "joinopt/skirental/decision_engine.h"
#include "joinopt/store/log_store.h"
#include "joinopt/store/parallel_store.h"

namespace joinopt {

class NodeLoadView;

/// Remote side of the API: point fetches and server-side execution.
///
/// Contract (load-bearing — two implementations cross threads: the
/// in-process services below, and the socket-backed RpcClientService /
/// RpcServer pair in net/, whose wire protocol is DESIGN.md §10):
///
///  * Thread safety: every verb must be safe to call from any number of
///    threads concurrently, with no external locking. The ParallelInvoker's
///    workers overlap calls freely, and the RpcServer dispatches each
///    connection from its own thread into the wrapped service. In-process
///    implementations satisfy this with atomic counters over an immutable
///    (or externally synchronized) store; RpcClientService with
///    per-endpoint connection pools.
///  * Blocking: every verb is synchronous and may block the calling thread
///    — for in-process services microseconds, for networked ones a full
///    round trip (or several, under retry/failover). No verb may block
///    forever: socket-backed implementations enforce connect/IO deadlines
///    and surface expiry as Status kAborted (the retriable transport
///    class; see net/socket.h's error-mapping notes). Callers must not
///    hold locks across any DataService call.
///  * Errors: application-level failures (missing key, bad params) use the
///    specific codes (kNotFound, kInvalidArgument, ...); kAborted is
///    reserved for transport failures, which callers may retry and the
///    ParallelInvoker counts as ParallelInvokerStats::transport_errors.
class DataService {
 public:
  virtual ~DataService() = default;

  struct Fetched {
    std::string value;
    uint64_t version = 0;
  };
  /// Data request: returns the stored value for caching + local execution.
  /// Blocking (one round trip remote); thread-safe; the returned payload
  /// is an independent copy the caller may cache without aliasing worries.
  virtual StatusOr<Fetched> Fetch(Key key) = 0;
  /// Compute request: executes `fn` next to the data ("coprocessor").
  /// Blocking (round trip + UDF service time); thread-safe — `fn` itself
  /// must be thread-safe, since data-side execution may run it on any
  /// thread. Networked services do NOT ship `fn`: the UDF is registered at
  /// the server (RpcServer's constructor) and the argument here is ignored
  /// — callers must pass the same function they deployed, or results will
  /// differ between local and delegated execution (DESIGN.md §10).
  virtual StatusOr<std::string> Execute(Key key, const std::string& params,
                                        const UserFn& fn) = 0;
  /// Batched compute request: one round trip carrying many (k, p) pairs to
  /// the same data node (Section 7.2's batching applied to delegations).
  /// The default loops over Execute; networked services override it to
  /// amortize the round trip — the wire format (§10) carries the whole
  /// batch in a single request/response frame pair. Results are
  /// index-aligned with `items`; a transport failure fails every item with
  /// the same kAborted status. Blocking for the whole batch; thread-safe.
  virtual std::vector<StatusOr<std::string>> ExecuteBatch(
      const std::vector<std::pair<Key, std::string>>& items,
      const UserFn& fn) {
    std::vector<StatusOr<std::string>> out;
    out.reserve(items.size());
    for (const auto& [key, params] : items) {
      out.push_back(Execute(key, params, fn));
    }
    return out;
  }
  /// Metadata only (size + version) — what a compute-request response
  /// piggybacks (Section 4.3) without shipping the payload.
  struct ItemStat {
    double size_bytes = 0;
    uint64_t version = 0;
  };
  /// Blocking (round trip remote, but payload-free — cheap even over a
  /// network); thread-safe; const so decision-engine probes can run
  /// against a const service reference.
  virtual StatusOr<ItemStat> Stat(Key key) const = 0;
  /// Placement: which (logical) data node owns the key. Blocking (one
  /// round trip for socket-backed services, which return kInvalidNode when
  /// every replica is unreachable — callers treat that as "placement
  /// unknown", not an error); thread-safe; const.
  virtual NodeId OwnerOf(Key key) const = 0;
};

/// In-process DataService over a ParallelStore holding real payloads.
class LocalDataService : public DataService {
 public:
  explicit LocalDataService(ParallelStore* store) : store_(store) {}

  StatusOr<Fetched> Fetch(Key key) override;
  StatusOr<std::string> Execute(Key key, const std::string& params,
                                const UserFn& fn) override;
  StatusOr<ItemStat> Stat(Key key) const override;
  NodeId OwnerOf(Key key) const override { return store_->OwnerOf(key); }

  int64_t fetches() const { return fetches_; }
  int64_t executes() const { return executes_; }
  /// Number of Stat probes served (cost-model observability).
  int64_t stats() const { return stats_; }

 private:
  ParallelStore* store_;
  std::atomic<int64_t> fetches_{0};
  std::atomic<int64_t> executes_{0};
  mutable std::atomic<int64_t> stats_{0};
};

/// DataService over a LogStructuredStore — the fully real storage path:
/// payloads live in the segmented log, versions come from the log's
/// per-key version chain. `num_shards` only affects OwnerOf (placement
/// metadata for the cost model); the store itself is one process.
class LogStoreDataService : public DataService {
 public:
  LogStoreDataService(LogStructuredStore* store, int num_shards = 4)
      : store_(store), num_shards_(num_shards) {}

  StatusOr<Fetched> Fetch(Key key) override {
    ++fetches_;
    auto value = store_->Get(key);
    if (!value.ok()) return value.status();
    return Fetched{std::move(value).value(), store_->VersionOf(key)};
  }

  StatusOr<std::string> Execute(Key key, const std::string& params,
                                const UserFn& fn) override {
    ++executes_;
    auto value = store_->Get(key);
    if (!value.ok()) return value.status();
    return fn(key, params, *value);
  }

  StatusOr<ItemStat> Stat(Key key) const override {
    ++stats_;
    auto value = store_->Get(key);
    if (!value.ok()) return value.status();
    return ItemStat{static_cast<double>(value->size()),
                    store_->VersionOf(key)};
  }

  NodeId OwnerOf(Key key) const override {
    return static_cast<NodeId>(Mix64(key) %
                               static_cast<uint64_t>(num_shards_));
  }

  int64_t fetches() const { return fetches_; }
  int64_t executes() const { return executes_; }
  /// Number of Stat probes served: Stat performs a store Get too, so
  /// cost-model probes are observable separately from data requests.
  int64_t stats() const { return stats_; }

 private:
  LogStructuredStore* store_;
  int num_shards_;
  std::atomic<int64_t> fetches_{0};
  std::atomic<int64_t> executes_{0};
  mutable std::atomic<int64_t> stats_{0};
};

struct AsyncInvokerStats {
  int64_t submitted = 0;
  int64_t served_from_cache = 0;
  int64_t fetched_then_computed = 0;
  int64_t delegated = 0;  // compute requests
  /// Unclaimed prefetched results dropped by the result-map bound.
  int64_t dropped_results = 0;
};

struct AsyncInvokerOptions {
  DecisionEngineConfig decision;
  /// Used for the cost model's network terms; a logical constant here
  /// since the local service has no real network.
  double bandwidth_bytes_per_sec = 125e6;
  /// Bound on unclaimed prefetched results (SubmitComp entries never
  /// claimed by FetchComp). When exceeded, the oldest half (by submission
  /// order) is dropped. 0 = unbounded (the pre-bound behaviour).
  size_t max_unclaimed_results = 1 << 16;
  /// Optional shared load view (DESIGN.md §15): the invoker periodically
  /// pushes the cost model's smoothed per-node tCompute/tFetch estimates
  /// into it, giving replica selection a latency prior before any direct
  /// observation exists. Null disables the feed.
  NodeLoadView* load_view = nullptr;
};

/// The preMap/map executor. Deterministic single-threaded implementation:
/// SubmitComp records the request and runs the optimizer's plan eagerly;
/// FetchComp returns the memoized result (or computes on demand for
/// requests that were never submitted — the blocking fallback).
class AsyncInvoker {
 public:
  using Options = AsyncInvokerOptions;

  AsyncInvoker(DataService* service, UserFn fn,
               const Options& options = Options());
  ~AsyncInvoker();

  /// preMap: announce that (key, params) will be needed (Figure 10's
  /// submitComp). Triggers routing, prefetching and caching.
  void SubmitComp(Key key, std::string params);

  /// map: obtain the computed value (Figure 10's fetchComp).
  StatusOr<std::string> FetchComp(Key key, const std::string& params);

  /// Invalidate a cached value after a store update (Section 4.2.3).
  void OnUpdate(Key key, uint64_t new_version);

  const AsyncInvokerStats& stats() const { return stats_; }
  const DecisionEngine& engine() const { return *engine_; }
  /// Unclaimed prefetched results currently held.
  size_t pending_results() const { return results_.size(); }

 private:
  struct CachedValue {
    std::string value;
    uint64_t version = 0;
  };

  /// Executes the optimizer's plan for one request and returns the result.
  StatusOr<std::string> Run(Key key, const std::string& params);
  /// Drops payloads whose cache residency the engine has revoked.
  void TrimEvicted();

  DataService* service_;
  UserFn fn_;
  Options options_;
  std::unique_ptr<DecisionEngine> engine_;
  /// Real payloads for keys the engine's cache holds (the engine tracks
  /// sizes/benefits; the bytes live here).
  std::unordered_map<Key, CachedValue> values_;
  /// Result hash-map: (key, params) -> FIFO of computed results, bounded
  /// per options_.max_unclaimed_results.
  BoundedResultMap results_;
  AsyncInvokerStats stats_;
  int64_t runs_since_trim_ = 0;
  int64_t runs_since_load_push_ = 0;
};

}  // namespace joinopt

#endif  // JOINOPT_ENGINE_ASYNC_API_H_
