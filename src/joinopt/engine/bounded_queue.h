// Bounded multi-producer/multi-consumer queue: the work conduit between
// submitComp callers and the ParallelInvoker's worker pool. Producers block
// when the queue is full (backpressure instead of unbounded growth);
// consumers block when it is empty. Close() releases everyone: pending
// items are still drained, then Pop returns nullopt.
#ifndef JOINOPT_ENGINE_BOUNDED_QUEUE_H_
#define JOINOPT_ENGINE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace joinopt {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocks while full. Returns false (drops the item) after Close().
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    return PopLocked();
  }

  /// Blocks while empty. Returns nullopt once closed *and* drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    return PopLocked();
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  std::optional<T> PopLocked() {
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return out;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace joinopt

#endif  // JOINOPT_ENGINE_BOUNDED_QUEUE_H_
