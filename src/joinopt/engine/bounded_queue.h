// Bounded multi-producer/multi-consumer queue: the work conduit between
// submitComp callers and the ParallelInvoker's worker pool. Producers block
// when the queue is full (backpressure instead of unbounded growth);
// consumers block when it is empty. Close() releases everyone: pending
// items are still drained, then Pop returns nullopt.
#ifndef JOINOPT_ENGINE_BOUNDED_QUEUE_H_
#define JOINOPT_ENGINE_BOUNDED_QUEUE_H_

#include <deque>
#include <optional>
#include <utility>

#include "joinopt/common/sync.h"

namespace joinopt {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : BoundedQueue(capacity, kNoRank) {}

  /// Ranked form: the owner places the queue's internal mutex in the
  /// lock-order hierarchy (the ParallelInvoker passes kInvokerQueue).
  BoundedQueue(size_t capacity, int lock_rank)
      : capacity_(capacity ? capacity : 1),
        mu_(lock_rank, "BoundedQueue::mu_") {}

  /// Blocks while full. Returns false (drops the item) after Close().
  bool Push(T item) {
    MutexLock lock(mu_);
    while (items_.size() >= capacity_ && !closed_) not_full_.Wait(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push; false when full or closed (the item is dropped —
  /// callers that must not lose work keep it and retry; the reactor's IO
  /// threads leave the bytes in the connection's read buffer instead).
  bool TryPush(T item) {
    MutexLock lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> TryPop() {
    MutexLock lock(mu_);
    return PopLocked();
  }

  /// Blocks while empty. Returns nullopt once closed *and* drained.
  std::optional<T> Pop() {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) not_empty_.Wait(mu_);
    return PopLocked();
  }

  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  std::optional<T> PopLocked() JOINOPT_REQUIRES(mu_) {
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return out;
  }

  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ JOINOPT_GUARDED_BY(mu_);
  bool closed_ JOINOPT_GUARDED_BY(mu_) = false;
};

}  // namespace joinopt

#endif  // JOINOPT_ENGINE_BOUNDED_QUEUE_H_
