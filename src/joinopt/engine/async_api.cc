#include "joinopt/engine/async_api.h"

#include "joinopt/common/hash.h"
#include "joinopt/engine/plan_exec.h"
#include "joinopt/loadbalance/node_load_view.h"

namespace joinopt {

StatusOr<DataService::Fetched> LocalDataService::Fetch(Key key) {
  ++fetches_;
  auto item = store_->Get(key);
  if (!item.ok()) return item.status();
  return Fetched{item->payload, item->version};
}

StatusOr<std::string> LocalDataService::Execute(Key key,
                                                const std::string& params,
                                                const UserFn& fn) {
  ++executes_;
  const StoredItem* item = store_->Find(key);
  if (item == nullptr) {
    return Status::NotFound("key " + std::to_string(key));
  }
  return fn(key, params, item->payload);
}

StatusOr<DataService::ItemStat> LocalDataService::Stat(Key key) const {
  ++stats_;
  const StoredItem* item = store_->Find(key);
  if (item == nullptr) {
    return Status::NotFound("key " + std::to_string(key));
  }
  return ItemStat{item->size_bytes, item->version};
}

AsyncInvoker::AsyncInvoker(DataService* service, UserFn fn,
                           const Options& options)
    : service_(service),
      fn_(std::move(fn)),
      options_(options),
      engine_(std::make_unique<DecisionEngine>(options.decision)),
      results_(options.max_unclaimed_results) {}

AsyncInvoker::~AsyncInvoker() = default;

void AsyncInvoker::SubmitComp(Key key, std::string params) {
  ++stats_.submitted;
  auto result = Run(key, params);
  if (result.ok()) {
    results_.Push(PlanRequestId(key, params), std::move(result).value());
    stats_.dropped_results = results_.dropped();
  }
  // Errors are re-surfaced by FetchComp's on-demand retry.
}

StatusOr<std::string> AsyncInvoker::FetchComp(Key key,
                                              const std::string& params) {
  if (auto claimed = results_.Claim(PlanRequestId(key, params))) {
    return std::move(*claimed);
  }
  // Not prefetched (or it failed, or the bound dropped it): blocking path.
  return Run(key, params);
}

StatusOr<std::string> AsyncInvoker::Run(Key key, const std::string& params) {
  if (++runs_since_trim_ >= 256) {
    runs_since_trim_ = 0;
    TrimEvicted();
  }
  NodeId owner = service_->OwnerOf(key);
  engine_->cost_model().SetBandwidth(owner, options_.bandwidth_bytes_per_sec);
  Decision decision = engine_->Decide(key, owner);
  if (options_.load_view != nullptr && ++runs_since_load_push_ >= 64) {
    runs_since_load_push_ = 0;
    options_.load_view->ObserveCostEstimates(
        owner, engine_->cost_model().TCompute(owner),
        engine_->cost_model().TFetch(owner));
  }

  switch (decision.route) {
    case Route::kLocalMemoryHit:
    case Route::kLocalDiskHit: {
      auto vit = values_.find(key);
      if (vit == values_.end()) {
        // The engine believes the key is cached but the payload is gone
        // (external invalidation race): fall back to delegation.
        break;
      }
      ++stats_.served_from_cache;
      TimedResult timed = TimedCompute(fn_, key, params, vit->second.value);
      engine_->ObserveLocalCompute(timed.elapsed);
      return std::move(timed.value);
    }
    case Route::kFetchCacheMemory:
    case Route::kFetchCacheDisk: {
      auto fetched = service_->Fetch(key);
      if (!fetched.ok()) return fetched.status();
      engine_->OnValueFetched(key, decision.route,
                              static_cast<double>(fetched->value.size()),
                              fetched->version);
      ++stats_.fetched_then_computed;
      TimedResult timed = TimedCompute(fn_, key, params, fetched->value);
      engine_->ObserveLocalCompute(timed.elapsed);
      values_[key] = CachedValue{std::move(fetched)->value, 0};
      return std::move(timed.value);
    }
    case Route::kComputeAtData:
      break;
  }

  // Compute request: delegate to the service and learn the cost
  // parameters from the exchange (Section 4.3's piggybacking, here
  // measured directly).
  ++stats_.delegated;
  double t0 = PlanNowSeconds();
  auto result = service_->Execute(key, params, fn_);
  double elapsed = PlanNowSeconds() - t0;
  if (!result.ok()) return result.status();
  // Learn sv/version for future ski-rental decisions (piggybacked stats).
  auto stat = service_->Stat(key);
  if (stat.ok()) {
    ApplyDelegationLearning(*engine_, key, owner, elapsed, stat->size_bytes,
                            stat->version);
  }
  return result;
}

void AsyncInvoker::TrimEvicted() {
  for (auto it = values_.begin(); it != values_.end();) {
    if (engine_->cache().Peek(it->first) == CacheTier::kNone) {
      it = values_.erase(it);
    } else {
      ++it;
    }
  }
}

void AsyncInvoker::OnUpdate(Key key, uint64_t new_version) {
  engine_->OnUpdateNotification(key, new_version);
  values_.erase(key);
}

}  // namespace joinopt
