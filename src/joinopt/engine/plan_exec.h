// Plan-execution building blocks shared by the Section 7 executors
// (the deterministic AsyncInvoker and the multi-threaded ParallelInvoker).
// Both run the same optimizer plan per request — local compute on a cached
// payload, data request (fetch + cache + compute), or compute request
// (delegate) — but interleave locking differently, so the shared pieces are
// factored as small lock-free helpers: request identity, timed UDF
// execution, delegation + piggybacked cost learning, and the bounded
// result map that backs submitComp/fetchComp.
#ifndef JOINOPT_ENGINE_PLAN_EXEC_H_
#define JOINOPT_ENGINE_PLAN_EXEC_H_

#include <chrono>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "joinopt/common/hash.h"
#include "joinopt/engine/async_api_fwd.h"
#include "joinopt/skirental/decision_engine.h"

namespace joinopt {

/// Real wall-clock seconds (monotonic) for cost measurements.
inline double PlanNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Identity of one (key, params) request in the result hash-map.
inline uint64_t PlanRequestId(Key key, const std::string& params) {
  return Mix64(key) ^ Fnv1a(params);
}

/// A UDF execution together with its measured wall time (the tCompute
/// sample fed back to the cost model).
struct TimedResult {
  std::string value;
  double elapsed = 0.0;
};

inline TimedResult TimedCompute(const UserFn& fn, Key key,
                                const std::string& params,
                                const std::string& value) {
  double t0 = PlanNowSeconds();
  std::string out = fn(key, params, value);
  return TimedResult{std::move(out), PlanNowSeconds() - t0};
}

/// The cost report a delegation "piggybacks" (Section 4.3): here the
/// end-to-end wall time stands in for the data node's reported CPU time;
/// disk time is negligible for the in-process services.
inline DataNodeCostReport DelegationCostReport(double elapsed) {
  DataNodeCostReport report;
  report.t_cpu = elapsed;
  report.t_cpu_service = elapsed;
  report.t_disk = 1e-6;
  report.t_disk_service = 1e-6;
  return report;
}

/// Feeds one delegation's piggybacked statistics into the engine. Callers
/// run the service call unlocked and apply the learning under whatever
/// lock guards `engine`.
inline void ApplyDelegationLearning(DecisionEngine& engine, Key key,
                                    NodeId owner, double elapsed,
                                    double stored_value_bytes,
                                    uint64_t version) {
  engine.OnComputeResponse(key, owner, stored_value_bytes, version,
                           DelegationCostReport(elapsed));
}

/// Result hash-map of Figure 4 with an unclaimed-entry bound: a submitComp
/// whose result is never claimed by fetchComp must not leak its FIFO slot
/// forever. Entries carry the submit sequence number; when the map exceeds
/// `max_unclaimed` entries, everything older than the most recent
/// max_unclaimed/2 submissions is dropped (an age sweep, amortized O(1)
/// per push). 0 = unbounded. Not thread-safe; callers lock.
class BoundedResultMap {
 public:
  explicit BoundedResultMap(size_t max_unclaimed)
      : max_(max_unclaimed) {}

  void Push(uint64_t request_id, std::string value) {
    entries_[request_id].push_back(Entry{std::move(value), seq_++});
    ++size_;
    if (max_ > 0 && size_ > max_) Sweep();
  }

  /// Claims the oldest unclaimed result for `request_id` (FIFO per id).
  std::optional<std::string> Claim(uint64_t request_id) {
    auto it = entries_.find(request_id);
    if (it == entries_.end() || it->second.empty()) return std::nullopt;
    std::string out = std::move(it->second.front().value);
    it->second.pop_front();
    if (it->second.empty()) entries_.erase(it);
    --size_;
    return out;
  }

  size_t size() const { return size_; }
  int64_t dropped() const { return dropped_; }

 private:
  struct Entry {
    std::string value;
    int64_t seq;
  };

  void Sweep() {
    int64_t cutoff = seq_ - static_cast<int64_t>(max_ / 2 + 1);
    for (auto it = entries_.begin(); it != entries_.end();) {
      std::deque<Entry>& fifo = it->second;
      while (!fifo.empty() && fifo.front().seq < cutoff) {
        fifo.pop_front();
        --size_;
        ++dropped_;
      }
      it = fifo.empty() ? entries_.erase(it) : std::next(it);
    }
  }

  std::unordered_map<uint64_t, std::deque<Entry>> entries_;
  size_t max_;
  size_t size_ = 0;
  int64_t seq_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace joinopt

#endif  // JOINOPT_ENGINE_PLAN_EXEC_H_
