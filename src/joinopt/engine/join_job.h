// The join-execution engine: compute node and data node runtimes driven by
// the discrete-event simulator, plus the JoinJob orchestrator that wires a
// workload, a cluster and a strategy together and runs to completion.
//
// Data flow for one tuple (Figure 4 of the paper):
//   input -> preMap (parse, prefetch decision) -> per-stage routing:
//     * cache hit            -> local UDF on the compute node
//     * data request (buy)   -> batched fetch; value cached; local UDF
//     * compute request(rent)-> batched ship of (k, p); the data node's
//                               balancer executes d of the batch locally and
//                               bounces b-d raw values back for local UDFs
//   ... next stage (Section 6 pipelining) until the tuple completes.
#ifndef JOINOPT_ENGINE_JOIN_JOB_H_
#define JOINOPT_ENGINE_JOIN_JOB_H_

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "joinopt/common/ewma.h"
#include "joinopt/common/random.h"
#include "joinopt/engine/batcher.h"
#include "joinopt/engine/hedging_manager.h"
#include "joinopt/engine/messages.h"
#include "joinopt/engine/types.h"
#include "joinopt/fault/fault_injector.h"
#include "joinopt/loadbalance/balancer.h"
#include "joinopt/sim/cluster.h"
#include "joinopt/sim/event_queue.h"
#include "joinopt/store/parallel_store.h"

namespace joinopt {

class JoinJob;

/// Runtime living at each data node: serves data batches (multi-gets) and
/// compute batches (coprocessor executions with load balancing).
class DataNodeRuntime {
 public:
  DataNodeRuntime(JoinJob* job, NodeId id);

  void HandleBatch(RequestBatch batch);

  DataNodeLocalStats SnapshotStats() const;
  const Balancer& balancer() const { return balancer_; }
  int64_t items_served() const { return items_served_; }
  int64_t computed_here() const { return computed_here_; }
  int64_t bounced() const { return bounced_; }

  /// Fault recovery: a restart wipes volatile state (the block cache).
  void ClearBlockCache();

 private:
  JoinJob* job_;
  NodeId id_;
  Balancer balancer_;
  Ewma udf_wall_{0.2};
  Ewma disk_wall_{0.2};
  Ewma udf_service_{0.2};
  Ewma disk_service_{0.2};
  double pending_compute_items_ = 0;  // nrd_all
  double pending_local_compute_ = 0;  // rd_all
  double pending_data_items_ = 0;     // ndc_all
  int64_t items_served_ = 0;
  int64_t computed_here_ = 0;
  int64_t bounced_ = 0;

  /// Block cache (HBase block cache / page cache): LRU over stored values;
  /// hits skip the disk. Returns the read's completion time and charges
  /// the disk only on a miss.
  double ReadStoredValue(SimNode& node, Key key, double bytes, double now);
  struct BlockEntry {
    double bytes;
    std::list<Key>::iterator lru_it;
  };
  std::unordered_map<Key, BlockEntry> block_cache_;
  std::list<Key> block_lru_;  // front = most recent
  double block_cache_used_ = 0;
  int64_t block_cache_hits_ = 0;
  int64_t block_cache_misses_ = 0;
};

/// Runtime living at each compute node: the preMap/map driver, per-stage
/// decision engines, batchers, response handling and local UDF execution.
class ComputeNodeRuntime {
 public:
  ComputeNodeRuntime(JoinJob* job, NodeId id, std::vector<InputTuple> input,
                     double arrival_rate);

  /// Begins consuming input (call once before Simulation::Run).
  void Start();
  void HandleResponseBatch(ResponseBatch batch);
  /// Push update notification from the data store (Section 4.2.3).
  void HandleUpdateNotification(int stage, Key key, uint64_t version);

  ComputeNodeStats SnapshotStats(NodeId target_data_node) const;
  int64_t tuples_done() const { return tuples_done_; }
  const RecoveryCounters& recovery_counters() const { return recovery_; }
  bool finished() const { return finished_; }
  double finish_time() const { return finish_time_; }
  const DecisionEngine* engine(int stage) const {
    return engines_.empty() ? nullptr : engines_[static_cast<size_t>(stage)].get();
  }

 private:
  friend class JoinJob;
  struct PendingTuple {
    InputTuple tuple;
    int stage = 0;
  };
  struct KeyInfo {
    double stored_value_bytes = 0;
    double udf_cost = 0;
  };

  void ProcessNext();
  void RouteStage(uint64_t tuple_id);
  void RouteStageDecided(uint64_t tuple_id);
  void EnqueueRequest(uint64_t tuple_id, int stage, Key key, bool compute,
                      FetchDisposition disposition);
  // --- failure recovery (active only when RecoveryConfig.enabled) --------
  /// Registers one physical send for `item` towards `dest` and arms its
  /// timeout (and, for an attempt's first send, its hedge timer).
  void RegisterSend(RequestItem& item, NodeId dest, bool compute, bool hedge);
  void OnSendTimeout(uint64_t tuple_id, uint64_t send_id);
  void MaybeHedge(uint64_t tuple_id, uint64_t send_id);
  /// Re-sends the current attempt's request after backoff (next replica).
  void ResendRequest(uint64_t tuple_id);
  /// Abandons a tuple (and any tuples coalesced behind its request) after
  /// max_attempts exhausted.
  void FailTuple(uint64_t tuple_id);
  void AbandonTuple(uint64_t tuple_id);
  NodeId ReplicaForAttempt(int stage, Key key, int attempt) const;
  void SubmitLocalUdf(uint64_t tuple_id, double udf_cost);
  void SubmitLocalDiskThenUdf(uint64_t tuple_id, double bytes,
                              double udf_cost);
  void OnStageComplete(uint64_t tuple_id);
  void FlushAllBatchers();
  void MaybeResumeDriver();
  /// Removes up to `count` tuples from the unconsumed input tail.
  std::vector<InputTuple> DonateInput(size_t count);
  /// Appends tuples to the input and (re)starts the driver if needed.
  void ReceiveInput(std::vector<InputTuple> tuples);

  JoinJob* job_;
  NodeId id_;
  std::vector<InputTuple> input_;
  double arrival_rate_;  // tuples/s; <= 0 means all available at t=0
  size_t next_input_ = 0;
  uint64_t next_tuple_id_;
  std::unordered_map<uint64_t, PendingTuple> pending_;
  int outstanding_ = 0;
  bool driver_waiting_ = false;
  bool input_drained_ = false;
  bool finished_ = false;
  double finish_time_ = 0.0;
  int64_t tuples_done_ = 0;
  Rng rng_;

  std::vector<std::unique_ptr<DecisionEngine>> engines_;  // per stage
  std::vector<std::unordered_map<Key, KeyInfo>> key_info_;  // per stage
  /// Fetch coalescing (the Figure 4 result hash-map): while a data request
  /// for (stage, key) is in flight, later tuples for the same key wait for
  /// that one value instead of duplicating the fetch.
  std::vector<std::unordered_map<Key, std::vector<uint64_t>>> fetch_waiters_;
  /// First-request coalescing: while a key's first (cost-parameter-less)
  /// compute request is in flight, later tuples for the same key wait and
  /// are re-routed once the parameters arrive — a heavy hitter must not
  /// flood its data node with blind requests before the ski-rental can act.
  std::vector<std::unordered_map<Key, std::vector<uint64_t>>> meta_waiters_;

  // Batchers per data node: [data requests, compute requests].
  std::unordered_map<NodeId, std::unique_ptr<Batcher>> data_batchers_;
  std::unordered_map<NodeId, std::unique_ptr<Batcher>> compute_batchers_;

  // Request accounting (JobResult).
  int64_t data_requests_issued_ = 0;
  int64_t compute_requests_issued_ = 0;

  // --- failure-recovery state (empty when recovery is disabled) --------
  /// One entry per logical request awaiting a response, keyed by tuple id
  /// (a tuple has at most one outstanding request at a time).
  struct InflightRequest {
    RequestItem item;            ///< template for resends (send_id re-drawn)
    bool compute = false;
    int attempt = 0;             ///< attempts begun (1 after the first send)
    int live_sends = 0;          ///< sends not yet expired or answered
    bool resend_pending = false; ///< a backoff resend event is scheduled
  };
  struct OutstandingSend {
    NodeId dest = kInvalidNode;
    bool compute = false;
    bool hedge = false;
    double sent_at = 0.0;  ///< sim time of the send (hedging latency feed)
  };
  std::unordered_map<uint64_t, InflightRequest> inflight_requests_;
  std::unordered_map<uint64_t, OutstandingSend> outstanding_sends_;
  uint64_t next_send_id_ = 1;
  RecoveryCounters recovery_;
  /// Adaptive hedging (RecoveryConfig::adaptive_hedging): per-destination
  /// latency quantiles drive the hedge timer instead of the static delay,
  /// and the token bucket caps the realized hedge rate. Null when the
  /// static path is in use.
  std::unique_ptr<HedgingManager> hedging_;

  // Load-statistics trackers.
  double local_queue_len_ = 0;  // lcc
  Ewma local_udf_wall_{0.2};
  Ewma local_udf_service_{0.2};     // pure UDF cost of locally-run items
  Ewma reported_udf_service_{0.2};  // bootstrap for tcc before local UDFs
  std::unordered_map<NodeId, double> inflight_data_;          // ndrc per j
  std::unordered_map<NodeId, double> inflight_compute_;       // nrc/nrd per j
  std::unordered_map<NodeId, Ewma> computed_fraction_;        // history per j
};

/// One join job: a workload (per-compute-node inputs + loaded stores), a
/// strategy, a cluster, and the runtimes gluing them together.
class JoinJob {
 public:
  /// `stores` holds one ParallelStore per pipeline stage (Section 6);
  /// single-join jobs pass one. Stores must outlive the job and be loaded.
  JoinJob(Simulation* sim, Cluster* cluster,
          std::vector<ParallelStore*> stores, Strategy strategy,
          const EngineConfig& config);

  /// Assigns the input partition of compute node index `i`.
  /// `arrival_rate` <= 0 means batch mode (everything available at t = 0).
  void SetInput(int compute_index, std::vector<InputTuple> input,
                double arrival_rate = 0.0);

  /// Runs the job to completion and returns the collected metrics.
  JobResult Run();

  /// Applies an update to `key` of stage `stage` mid-run (call from a
  /// scheduled simulation event): bumps the version and sends update
  /// notifications to registered compute nodes.
  Status ApplyUpdate(int stage, Key key);

  /// Elasticity (Section 1's contribution 3: compute nodes are stateless,
  /// so input can move freely): transfers `fraction` of compute node
  /// `from`'s *unconsumed* input to compute node `to`, mid-run. Use to
  /// model scale-out (a node joining takes load) or work stealing. Returns
  /// the number of tuples moved.
  int64_t RebalanceInput(int from, int to, double fraction);

  /// Wires a fault injector into the job: message deliveries consult it
  /// (messages to/from dead nodes or across partitions are dropped and
  /// counted) and data-node restarts wipe volatile state (block caches).
  /// Call before Run(); the injector must outlive the job. Pair with
  /// EngineConfig::recovery so dropped messages are retried.
  void AttachFaultInjector(FaultInjector* injector);
  FaultInjector* fault() { return fault_; }

  /// False if the fault injector says a message sent at `send_time` from
  /// `src` towards `dst` dies en route (sender crashed before sending,
  /// link partitioned at send, or receiver down now). Always true without
  /// an injector.
  bool FaultDeliverable(NodeId src, NodeId dst, double send_time) const;

  /// Recovery activity summed over all compute runtimes (live; also
  /// reported in JobResult). Useful as Tracer gauges.
  RecoveryCounters recovery_counters() const;
  int64_t tuples_done() const { return tuples_done_; }

  // --- accessors used by the runtimes -------------------------------
  Simulation& sim() { return *sim_; }
  Cluster& cluster() { return *cluster_; }
  ParallelStore& store(int stage) { return *stores_[static_cast<size_t>(stage)]; }
  int num_stages() const { return static_cast<int>(stores_.size()); }
  Strategy strategy() const { return strategy_; }
  const StrategyTraits& traits() const { return traits_; }
  const EngineConfig& config() const { return config_; }
  ComputeNodeRuntime& compute_runtime(int i) { return *compute_runtimes_[static_cast<size_t>(i)]; }
  DataNodeRuntime& data_runtime_for(NodeId id);
  /// Average stored-value size across all stages (for SizeParams).
  double avg_stored_value_bytes() const { return avg_sv_; }
  double stage_selectivity(int stage) const;

  void NotifyTupleDone(double now);
  void NotifyTupleFailed() { ++tuples_failed_; }
  void NotifyUdfInvocation() { ++udf_invocations_; }

 private:
  Simulation* sim_;
  Cluster* cluster_;
  std::vector<ParallelStore*> stores_;
  Strategy strategy_;
  StrategyTraits traits_;
  EngineConfig config_;
  FaultInjector* fault_ = nullptr;
  std::vector<std::unique_ptr<ComputeNodeRuntime>> compute_runtimes_;
  std::unordered_map<NodeId, std::unique_ptr<DataNodeRuntime>> data_runtimes_;
  int64_t total_tuples_ = 0;
  int64_t tuples_done_ = 0;
  int64_t tuples_failed_ = 0;
  int64_t udf_invocations_ = 0;
  double last_done_time_ = 0.0;
  double avg_sv_ = 0.0;
};

}  // namespace joinopt

#endif  // JOINOPT_ENGINE_JOIN_JOB_H_
