#include "joinopt/engine/join_job.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>

#include "joinopt/common/logging.h"

namespace joinopt {

// ---------------------------------------------------------------------------
// DataNodeRuntime
// ---------------------------------------------------------------------------

DataNodeRuntime::DataNodeRuntime(JoinJob* job, NodeId id)
    : job_(job),
      id_(id),
      balancer_(job->traits().load_balancing
                    ? job->config().balancer
                    : BalancerConfig{MinimizerKind::kAllAtData, {}}) {}

double DataNodeRuntime::ReadStoredValue(SimNode& node, Key key, double bytes,
                                        double now) {
  auto it = block_cache_.find(key);
  if (it != block_cache_.end()) {
    ++block_cache_hits_;
    block_lru_.erase(it->second.lru_it);
    block_lru_.push_front(key);
    it->second.lru_it = block_lru_.begin();
    // Memory read: negligible next to disk/network (Section 3.2 neglects
    // memory access cost).
    return now;
  }
  ++block_cache_misses_;
  double disk_service = node.DiskServiceTime(bytes);
  double done = node.disk().Reserve(now, disk_service);
  disk_wall_.Observe(done - now);
  disk_service_.Observe(disk_service);
  double capacity = job_->config().data_node_block_cache_bytes;
  if (bytes <= capacity) {
    while (block_cache_used_ + bytes > capacity && !block_lru_.empty()) {
      Key victim = block_lru_.back();
      block_lru_.pop_back();
      auto vit = block_cache_.find(victim);
      block_cache_used_ -= vit->second.bytes;
      block_cache_.erase(vit);
    }
    block_lru_.push_front(key);
    block_cache_.emplace(key, BlockEntry{bytes, block_lru_.begin()});
    block_cache_used_ += bytes;
  }
  return done;
}

DataNodeLocalStats DataNodeRuntime::SnapshotStats() const {
  DataNodeLocalStats s;
  s.ndc_all = pending_data_items_;
  s.ndrd = 0;  // folded into ndc_all (responses leave with the batch)
  s.nrd_all = pending_compute_items_;
  s.rd_all = pending_local_compute_;
  // The load model multiplies *queue lengths* by per-item cost, so the cost
  // must be pure service time — wall time would double-count the queueing.
  s.tcd = udf_service_.ValueOr(1e-3);
  s.net_bw = job_->cluster().network().EffectiveBandwidth(
      id_, id_ == 0 ? 1 : 0);  // own NIC speed (min with any peer)
  s.cores = job_->cluster().node(id_).cpu().cores();
  return s;
}

void DataNodeRuntime::HandleBatch(RequestBatch batch) {
  Simulation& sim = job_->sim();
  SimNode& node = job_->cluster().node(id_);
  const EngineConfig& cfg = job_->config();
  const int64_t b = static_cast<int64_t>(batch.items.size());
  if (b == 0) return;
  // RPC receive/dispatch cost: paid once per message — what batching
  // amortizes over the items.
  const double now = node.cpu().Reserve(sim.now(), cfg.rpc_cpu_cost);

  // Resolve all items up front: the balancer needs this batch's actual
  // average value size (a batch destined to the node owning the heavy
  // hitters carries much larger values than the store-wide average).
  std::vector<const StoredItem*> resolved(static_cast<size_t>(b));
  double sv_sum = 0.0;
  for (int64_t i = 0; i < b; ++i) {
    const RequestItem& req = batch.items[static_cast<size_t>(i)];
    const StoredItem* stored =
        job_->store(req.stage).engine(id_).Find(req.key);
    JO_CHECK(stored != nullptr)
        << "data node " << id_ << " missing key " << req.key << " stage "
        << req.stage;
    resolved[static_cast<size_t>(i)] = stored;
    sv_sum += stored->size_bytes;
  }

  int64_t d = b;
  if (batch.compute_batch) {
    pending_compute_items_ += static_cast<double>(b);
    SizeParams sizes;
    sizes.sk = cfg.key_bytes;
    sizes.sp = batch.items.front().param_bytes;
    sizes.sv = sv_sum / static_cast<double>(b);
    sizes.scv = cfg.computed_value_bytes;
    d = balancer_.ChooseComputedAtData(batch.sender_stats, SnapshotStats(),
                                       sizes, b);
    pending_local_compute_ += static_cast<double>(d);
  } else {
    pending_data_items_ += static_cast<double>(b);
  }

  // Responses do not wait for batch-mates: bounced (uncomputed) values
  // leave together as soon as their disk reads finish, and each computed
  // result leaves when its own UDF completes — holding results back until
  // the slowest UDF of the batch would stall the requesters' pipelines.
  ResponseBatch response;       // the whole data batch (fetches)
  ResponseBatch early_response; // bounced part of a compute batch
  response.from = id_;
  early_response.from = id_;
  response.items.reserve(batch.items.size());
  double response_bytes = 0.0;
  double early_bytes = 0.0;
  double batch_done = now;
  double early_done = now;
  std::vector<std::pair<double, ResponseItem>> computed_items;

  // Which d of the batch run here: prefer the items whose stored values are
  // most expensive to ship back (the balancer picks how many; shipping the
  // smallest values minimizes the bounce traffic for the same d).
  std::vector<bool> run_here(static_cast<size_t>(b), false);
  if (batch.compute_batch && d > 0) {
    std::vector<int64_t> order(static_cast<size_t>(b));
    for (int64_t i = 0; i < b; ++i) order[static_cast<size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t c) {
      return resolved[static_cast<size_t>(a)]->size_bytes >
             resolved[static_cast<size_t>(c)]->size_bytes;
    });
    for (int64_t i = 0; i < d && i < b; ++i) {
      run_here[static_cast<size_t>(order[static_cast<size_t>(i)])] = true;
    }
  }

  for (int64_t i = 0; i < b; ++i) {
    const RequestItem& req = batch.items[static_cast<size_t>(i)];
    const StoredItem* stored = resolved[static_cast<size_t>(i)];
    ++items_served_;

    double disk_done = ReadStoredValue(node, req.key, stored->size_bytes, now);

    ResponseItem resp;
    resp.key = req.key;
    resp.stage = req.stage;
    resp.tuple_id = req.tuple_id;
    resp.stored_value_bytes = stored->size_bytes;
    resp.udf_cost = stored->udf_cost;
    resp.version = stored->version;
    resp.disposition = req.disposition;
    resp.was_data_request = !batch.compute_batch;
    resp.send_id = req.send_id;

    if (batch.compute_batch && run_here[static_cast<size_t>(i)]) {
      double cpu_done = node.cpu().Reserve(disk_done, stored->udf_cost);
      udf_wall_.Observe(cpu_done - disk_done);
      udf_service_.Observe(stored->udf_cost);
      resp.computed = true;
      job_->NotifyUdfInvocation();
      ++computed_here_;
      batch_done = std::max(batch_done, cpu_done);
      computed_items.emplace_back(cpu_done, resp);
    } else if (batch.compute_batch) {
      resp.computed = false;
      early_bytes += stored->size_bytes;
      ++bounced_;
      early_done = std::max(early_done, disk_done);
      early_response.items.push_back(resp);
    } else {
      resp.computed = false;
      response_bytes += stored->size_bytes;
      batch_done = std::max(batch_done, disk_done);
      response.items.push_back(resp);
    }
  }

  // Even when the balancer sent every item back (d = 0), the data node
  // knows the items' UDF costs and can report the service estimate.
  if (!udf_service_.initialized() && batch.compute_batch) {
    for (const RequestItem& req : batch.items) {
      const StoredItem* stored =
          job_->store(req.stage).engine(id_).Find(req.key);
      if (stored != nullptr) udf_service_.Observe(stored->udf_cost);
    }
  }
  DataNodeCostReport report;
  report.t_disk = disk_wall_.ValueOr(1e-3);
  report.t_cpu = udf_wall_.ValueOr(1e-3);
  report.t_disk_service = disk_service_.ValueOr(0.0);
  report.t_cpu_service = udf_service_.ValueOr(0.0);
  response.report = report;
  early_response.report = report;

  // Pending counters drop once the batch has been fully served.
  bool compute_batch = batch.compute_batch;
  double db = static_cast<double>(b);
  double dd = static_cast<double>(d);
  sim.At(batch_done, [this, compute_batch, db, dd] {
    if (compute_batch) {
      pending_compute_items_ -= db;
      pending_local_compute_ -= dd;
    } else {
      pending_data_items_ -= db;
    }
  });

  // Deliveries run through a fault guard: a response whose sender died
  // before the send time, or whose link is partitioned, is dropped (and the
  // requester's timeout machinery replays the items against a replica).
  NodeId dest = batch.from;
  NodeId from = id_;
  JoinJob* job = job_;
  auto deliver = [&sim, job, dest, from](ResponseBatch&& rb,
                                         double send_time, double arrival) {
    sim.At(arrival, [job, dest, from, send_time, rb = std::move(rb)]() mutable {
      if (!job->FaultDeliverable(from, dest, send_time)) {
        job->fault()->CountDroppedResponses(
            static_cast<int64_t>(rb.items.size()));
        return;
      }
      job->compute_runtime(dest).HandleResponseBatch(std::move(rb));
    });
  };
  if (!early_response.items.empty()) {
    double arrival = job_->cluster().network().Transfer(
        id_, dest, early_bytes, early_done);
    deliver(std::move(early_response), early_done, arrival);
  }
  if (!response.items.empty()) {
    double arrival = job_->cluster().network().Transfer(
        id_, dest, response_bytes, batch_done);
    deliver(std::move(response), batch_done, arrival);
  }
  for (auto& [cpu_done, item] : computed_items) {
    double arrival = job_->cluster().network().Transfer(
        id_, dest, cfg.computed_value_bytes, cpu_done);
    ResponseBatch single;
    single.from = id_;
    single.report = report;
    single.items.push_back(item);
    deliver(std::move(single), cpu_done, arrival);
  }
}

void DataNodeRuntime::ClearBlockCache() {
  block_cache_.clear();
  block_lru_.clear();
  block_cache_used_ = 0;
}

// ---------------------------------------------------------------------------
// ComputeNodeRuntime
// ---------------------------------------------------------------------------

ComputeNodeRuntime::ComputeNodeRuntime(JoinJob* job, NodeId id,
                                       std::vector<InputTuple> input,
                                       double arrival_rate)
    : job_(job),
      id_(id),
      input_(std::move(input)),
      arrival_rate_(arrival_rate),
      next_tuple_id_(1),
      rng_(job->config().seed ^ (0x9E3779B97F4A7C15ULL * (id + 1))) {
  const EngineConfig& cfg = job_->config();
  const StrategyTraits& traits = job_->traits();
  int stages = job_->num_stages();

  if (cfg.recovery.enabled && cfg.recovery.hedging &&
      cfg.recovery.adaptive_hedging) {
    HedgingConfig hc;
    hc.percentile = cfg.recovery.hedge_percentile;
    hc.budget = cfg.recovery.hedge_budget;
    hc.burst = cfg.recovery.hedge_burst;
    hc.fallback_delay = cfg.recovery.hedge_delay;
    hedging_ = std::make_unique<HedgingManager>(hc);
  }

  key_info_.resize(static_cast<size_t>(stages));
  fetch_waiters_.resize(static_cast<size_t>(stages));
  meta_waiters_.resize(static_cast<size_t>(stages));
  if (traits.caching) {
    for (int s = 0; s < stages; ++s) {
      DecisionEngineConfig dec = cfg.decision;
      // Pipelined joins split the node's cache budget across stages.
      dec.cache.memory_capacity_bytes /= stages;
      auto engine = std::make_unique<DecisionEngine>(dec);
      for (int j = 0; j < job_->cluster().num_data_nodes(); ++j) {
        NodeId dj = job_->cluster().data_node_id(j);
        engine->cost_model().SetBandwidth(
            dj, job_->cluster().network().EffectiveBandwidth(id_, dj));
      }
      engines_.push_back(std::move(engine));
    }
  }

  for (int j = 0; j < job_->cluster().num_data_nodes(); ++j) {
    NodeId dj = job_->cluster().data_node_id(j);
    auto make_flush = [this, dj](bool compute_batch) {
      return [this, dj, compute_batch](std::vector<RequestItem> items) {
        RequestBatch batch;
        batch.from = id_;
        batch.compute_batch = compute_batch;
        batch.sender_stats = SnapshotStats(dj);
        double bytes = 0;
        for (const RequestItem& it : items) {
          bytes += job_->config().key_bytes +
                   (compute_batch ? it.param_bytes : 0.0);
        }
        if (compute_batch) {
          inflight_compute_[dj] += static_cast<double>(items.size());
        } else {
          inflight_data_[dj] += static_cast<double>(items.size());
        }
        batch.items = std::move(items);
        double send_time = job_->sim().now();
        double arrival =
            job_->cluster().network().Transfer(id_, dj, bytes, send_time);
        JoinJob* job = job_;
        NodeId src = id_;
        job_->sim().At(
            arrival, [job, dj, src, send_time, batch = std::move(batch)]() mutable {
              // Fault guard: a request aimed at a dead node or across a
              // partition is lost; the sender's timeout replays it.
              if (!job->FaultDeliverable(src, dj, send_time)) {
                job->fault()->CountDroppedRequests(
                    static_cast<int64_t>(batch.items.size()));
                return;
              }
              job->data_runtime_for(dj).HandleBatch(std::move(batch));
            });
      };
    };
    Batcher::DynamicSizing dynamic;
    dynamic.enabled = cfg.dynamic_batch_size;
    dynamic.target_delay = cfg.batch_target_delay;
    data_batchers_[dj] = std::make_unique<Batcher>(
        &job_->sim(), cfg.batch_size, cfg.batch_max_wait, traits.batching,
        make_flush(false), dynamic);
    compute_batchers_[dj] = std::make_unique<Batcher>(
        &job_->sim(), cfg.batch_size, cfg.batch_max_wait, traits.batching,
        make_flush(true), dynamic);
  }
}

void ComputeNodeRuntime::Start() {
  if (input_.empty()) {
    input_drained_ = true;
    return;
  }
  job_->sim().Schedule(0.0, [this] { ProcessNext(); });
}

void ComputeNodeRuntime::ProcessNext() {
  if (next_input_ >= input_.size()) {
    if (!input_drained_) {
      input_drained_ = true;
      FlushAllBatchers();
    }
    return;
  }
  // Without prefetching each blocking worker has one request in flight;
  // the node still runs one such worker per core (Hadoop map slots).
  int max_out = job_->traits().prefetch
                    ? job_->config().max_outstanding
                    : job_->cluster().node(id_).cpu().cores();
  if (outstanding_ >= max_out) {
    driver_waiting_ = true;
    return;
  }
  double now = job_->sim().now();
  if (arrival_rate_ > 0) {
    double arrival = static_cast<double>(next_input_) / arrival_rate_;
    if (now < arrival) {
      job_->sim().At(arrival, [this] { ProcessNext(); });
      return;
    }
  }

  uint64_t id = next_tuple_id_++;
  pending_.emplace(id, PendingTuple{std::move(input_[next_input_]), 0});
  ++next_input_;
  ++outstanding_;

  // The preMap drivers are their own threads (Figure 4), one per core —
  // Hadoop/Spark run one input task per core. Their per-tuple parse cost
  // paces admission but does not queue behind the UDF executor pool.
  double pace = job_->config().parse_cost /
                std::max(job_->cluster().node(id_).cpu().cores(), 1);
  job_->sim().Schedule(pace, [this, id] {
    RouteStage(id);
    ProcessNext();
  });
}

void ComputeNodeRuntime::RouteStage(uint64_t tuple_id) {
  if (!job_->traits().caching) {
    RouteStageDecided(tuple_id);
    return;
  }
  // Ski-rental strategies pay a small bookkeeping cost per routing
  // decision; like the parse cost it runs on the driver thread.
  job_->sim().Schedule(job_->config().decision_overhead,
                       [this, tuple_id] { RouteStageDecided(tuple_id); });
}

void ComputeNodeRuntime::RouteStageDecided(uint64_t tuple_id) {
  auto it = pending_.find(tuple_id);
  JO_CHECK(it != pending_.end());
  int stage = it->second.stage;
  Key key = it->second.tuple.keys[static_cast<size_t>(stage)];
  NodeId owner = job_->store(stage).OwnerOf(key);
  const StrategyTraits& traits = job_->traits();

  if (traits.always_fetch) {
    EnqueueRequest(tuple_id, stage, key, /*compute=*/false,
                   FetchDisposition::kNoCache);
    return;
  }
  if (traits.always_compute) {
    EnqueueRequest(tuple_id, stage, key, /*compute=*/true,
                   FetchDisposition::kNoCache);
    return;
  }
  if (traits.random_choice) {
    bool fetch = rng_.Bernoulli(0.5);
    EnqueueRequest(tuple_id, stage, key, /*compute=*/!fetch,
                   FetchDisposition::kNoCache);
    return;
  }

  JO_CHECK(traits.caching);
  Decision decision =
      engines_[static_cast<size_t>(stage)]->Decide(key, owner);

  // Extension (the paper's footnote 4 future work): under very high skew
  // all cached-key UDFs concentrate at the compute nodes; when the local
  // backlog dwarfs the remote option, offload even cached keys.
  if (job_->config().offload_cached_under_overload &&
      (decision.route == Route::kLocalMemoryHit ||
       decision.route == Route::kLocalDiskHit)) {
    SimNode& node = job_->cluster().node(id_);
    double local_wait =
        node.cpu().Backlog(job_->sim().now()) / node.cpu().cores();
    double remote =
        engines_[static_cast<size_t>(stage)]->cost_model().TCompute(owner);
    if (local_wait > job_->config().offload_threshold * remote) {
      EnqueueRequest(tuple_id, stage, key, /*compute=*/true,
                     FetchDisposition::kNoCache);
      return;
    }
  }

  switch (decision.route) {
    case Route::kLocalMemoryHit: {
      auto info = key_info_[static_cast<size_t>(stage)].find(key);
      double cost = info != key_info_[static_cast<size_t>(stage)].end()
                        ? info->second.udf_cost
                        : 1e-3;
      SubmitLocalUdf(tuple_id, cost);
      break;
    }
    case Route::kLocalDiskHit: {
      auto& infos = key_info_[static_cast<size_t>(stage)];
      auto info = infos.find(key);
      double cost = info != infos.end() ? info->second.udf_cost : 1e-3;
      double bytes =
          engines_[static_cast<size_t>(stage)]->cache().ItemSize(key);
      SubmitLocalDiskThenUdf(tuple_id, bytes, cost);
      break;
    }
    case Route::kFetchCacheMemory:
    case Route::kFetchCacheDisk: {
      // Coalesce: if this key's value is already on its way, wait for it.
      auto& waiters = fetch_waiters_[static_cast<size_t>(stage)];
      auto wit = waiters.find(key);
      if (wit != waiters.end()) {
        wit->second.push_back(tuple_id);
        break;
      }
      waiters.emplace(key, std::vector<uint64_t>{});
      EnqueueRequest(tuple_id, stage, key, false,
                     decision.route == Route::kFetchCacheMemory
                         ? FetchDisposition::kCacheMemory
                         : FetchDisposition::kCacheDisk);
      break;
    }
    case Route::kComputeAtData: {
      if (decision.first_request) {
        auto& waiters = meta_waiters_[static_cast<size_t>(stage)];
        auto wit = waiters.find(key);
        if (wit != waiters.end()) {
          // A first request for this key is already in flight: hold this
          // tuple until the cost parameters arrive.
          wit->second.push_back(tuple_id);
          break;
        }
        waiters.emplace(key, std::vector<uint64_t>{});
      }
      EnqueueRequest(tuple_id, stage, key, true, FetchDisposition::kNoCache);
      break;
    }
  }
}

void ComputeNodeRuntime::EnqueueRequest(uint64_t tuple_id, int stage, Key key,
                                        bool compute,
                                        FetchDisposition disposition) {
  auto it = pending_.find(tuple_id);
  RequestItem item;
  item.key = key;
  item.stage = stage;
  item.tuple_id = tuple_id;
  item.param_bytes = it->second.tuple.param_bytes;
  item.is_compute_request = compute;
  item.disposition = disposition;
  if (compute) {
    ++compute_requests_issued_;
  } else {
    ++data_requests_issued_;
  }
  NodeId owner = job_->store(stage).OwnerOf(key);
  if (job_->config().recovery.enabled) {
    RegisterSend(item, owner, compute, /*hedge=*/false);
  }
  (compute ? compute_batchers_ : data_batchers_)[owner]->Add(std::move(item));
}

// ---------------------------------------------------------------------------
// Failure recovery (timeouts, retries, failover, hedging)
// ---------------------------------------------------------------------------

NodeId ComputeNodeRuntime::ReplicaForAttempt(int stage, Key key,
                                             int attempt) const {
  const std::vector<NodeId>& replicas = job_->store(stage).ReplicasOf(key);
  return replicas[static_cast<size_t>(attempt) % replicas.size()];
}

void ComputeNodeRuntime::RegisterSend(RequestItem& item, NodeId dest,
                                      bool compute, bool hedge) {
  const RecoveryConfig& rec = job_->config().recovery;
  uint64_t sid = next_send_id_++;
  item.send_id = sid;
  InflightRequest& entry = inflight_requests_[item.tuple_id];
  if (!hedge) {
    // A fresh attempt: remember the item as the resend template.
    entry.item = item;
    entry.compute = compute;
    ++entry.attempt;
  }
  ++entry.live_sends;
  outstanding_sends_.emplace(
      sid, OutstandingSend{dest, compute, hedge, job_->sim().now()});
  if (dest != job_->store(entry.item.stage).OwnerOf(entry.item.key)) {
    ++recovery_.failovers;
  }
  if (hedge) ++recovery_.hedges_sent;
  if (hedging_ && !hedge) hedging_->OnRequestIssued();

  uint64_t tuple_id = item.tuple_id;
  job_->sim().Schedule(rec.request_timeout, [this, tuple_id, sid] {
    OnSendTimeout(tuple_id, sid);
  });
  if (rec.hedging && !hedge) {
    // Adaptive: hedge once the send outlives the destination's observed
    // latency percentile; static: the configured fixed delay.
    double delay = hedging_ ? hedging_->HedgeDelay(static_cast<uint64_t>(dest))
                            : rec.hedge_delay;
    job_->sim().Schedule(delay, [this, tuple_id, sid] {
      MaybeHedge(tuple_id, sid);
    });
  }
}

void ComputeNodeRuntime::OnSendTimeout(uint64_t tuple_id, uint64_t send_id) {
  auto sit = outstanding_sends_.find(send_id);
  if (sit == outstanding_sends_.end()) return;  // answered in time
  (sit->second.compute ? inflight_compute_
                       : inflight_data_)[sit->second.dest] -= 1;
  outstanding_sends_.erase(sit);
  ++recovery_.timeouts;

  auto it = inflight_requests_.find(tuple_id);
  if (it == inflight_requests_.end()) return;  // a sibling send answered
  InflightRequest& entry = it->second;
  --entry.live_sends;
  if (entry.live_sends > 0 || entry.resend_pending) return;

  const RecoveryConfig& rec = job_->config().recovery;
  if (entry.attempt >= rec.max_attempts) {
    FailTuple(tuple_id);
    return;
  }
  entry.resend_pending = true;
  ++recovery_.retries;
  double backoff =
      std::min(rec.backoff_max,
               rec.backoff_base *
                   std::pow(2.0, static_cast<double>(entry.attempt - 1)));
  backoff *= 1.0 + rec.jitter_fraction * rng_.NextDouble();
  job_->sim().Schedule(backoff, [this, tuple_id] { ResendRequest(tuple_id); });
}

void ComputeNodeRuntime::ResendRequest(uint64_t tuple_id) {
  auto it = inflight_requests_.find(tuple_id);
  if (it == inflight_requests_.end()) return;  // a late response landed
  InflightRequest& entry = it->second;
  entry.resend_pending = false;
  // Rotate through the replica set: attempt k (0-based) targets replica
  // k mod R, so repeated failures walk away from a dead primary.
  NodeId dest = ReplicaForAttempt(entry.item.stage, entry.item.key,
                                  entry.attempt);
  RequestItem item = entry.item;
  bool compute = entry.compute;
  RegisterSend(item, dest, compute, /*hedge=*/false);
  (compute ? compute_batchers_ : data_batchers_)[dest]->Add(std::move(item));
}

void ComputeNodeRuntime::MaybeHedge(uint64_t tuple_id, uint64_t send_id) {
  if (outstanding_sends_.find(send_id) == outstanding_sends_.end()) {
    return;  // the primary send already resolved
  }
  auto it = inflight_requests_.find(tuple_id);
  if (it == inflight_requests_.end()) return;
  // Budget gate: without a token the primary is simply waited out (the
  // timeout/retry machinery still applies).
  if (hedging_ && !hedging_->TryAcquireHedge()) return;
  InflightRequest& entry = it->second;
  NodeId dest = ReplicaForAttempt(entry.item.stage, entry.item.key,
                                  entry.attempt);
  RequestItem item = entry.item;
  bool compute = entry.compute;
  RegisterSend(item, dest, compute, /*hedge=*/true);
  (compute ? compute_batchers_ : data_batchers_)[dest]->Add(std::move(item));
}

void ComputeNodeRuntime::FailTuple(uint64_t tuple_id) {
  auto it = inflight_requests_.find(tuple_id);
  if (it == inflight_requests_.end()) return;
  int stage = it->second.item.stage;
  Key key = it->second.item.key;
  inflight_requests_.erase(it);
  AbandonTuple(tuple_id);
  // Tuples coalesced behind this request would otherwise wait forever.
  size_t s = static_cast<size_t>(stage);
  auto wit = fetch_waiters_[s].find(key);
  if (wit != fetch_waiters_[s].end()) {
    std::vector<uint64_t> held = std::move(wit->second);
    fetch_waiters_[s].erase(wit);
    for (uint64_t waiter : held) AbandonTuple(waiter);
  }
  auto mit = meta_waiters_[s].find(key);
  if (mit != meta_waiters_[s].end()) {
    std::vector<uint64_t> held = std::move(mit->second);
    meta_waiters_[s].erase(mit);
    for (uint64_t waiter : held) AbandonTuple(waiter);
  }
}

void ComputeNodeRuntime::AbandonTuple(uint64_t tuple_id) {
  auto it = pending_.find(tuple_id);
  if (it == pending_.end()) return;
  pending_.erase(it);
  --outstanding_;
  ++recovery_.tuples_failed;
  job_->NotifyTupleFailed();
  JO_LOG(Warn) << "compute node " << id_ << " abandons tuple " << tuple_id
               << " after exhausting retries";
  if (!finished_ && next_input_ >= input_.size() && outstanding_ == 0) {
    finished_ = true;
    finish_time_ = job_->sim().now();
  }
  MaybeResumeDriver();
}

void ComputeNodeRuntime::SubmitLocalUdf(uint64_t tuple_id, double udf_cost) {
  local_queue_len_ += 1;
  local_udf_service_.Observe(udf_cost);
  double submit = job_->sim().now();
  SimNode& node = job_->cluster().node(id_);
  double done = node.cpu().Reserve(submit, udf_cost);
  job_->NotifyUdfInvocation();
  auto stage_it = pending_.find(tuple_id);
  int stage = stage_it != pending_.end() ? stage_it->second.stage : 0;
  job_->sim().At(done, [this, tuple_id, submit, stage] {
    local_queue_len_ -= 1;
    double wall = job_->sim().now() - submit;
    local_udf_wall_.Observe(wall);
    if (!engines_.empty()) {
      engines_[static_cast<size_t>(stage)]->ObserveLocalCompute(wall);
    }
    OnStageComplete(tuple_id);
  });
}

void ComputeNodeRuntime::SubmitLocalDiskThenUdf(uint64_t tuple_id,
                                                double bytes,
                                                double udf_cost) {
  SimNode& node = job_->cluster().node(id_);
  double submit = job_->sim().now();
  double disk_done = node.disk().Reserve(submit, node.DiskServiceTime(bytes));
  auto stage_it = pending_.find(tuple_id);
  int stage = stage_it != pending_.end() ? stage_it->second.stage : 0;
  job_->sim().At(disk_done, [this, tuple_id, udf_cost, submit, stage] {
    if (!engines_.empty()) {
      engines_[static_cast<size_t>(stage)]->ObserveLocalDisk(
          job_->sim().now() - submit);
    }
    SubmitLocalUdf(tuple_id, udf_cost);
  });
}

void ComputeNodeRuntime::HandleResponseBatch(ResponseBatch batch) {
  // Response-side RPC handling cost (accounting only; the handler thread is
  // not on the tuples' critical path).
  job_->cluster().node(id_).cpu().Reserve(job_->sim().now(),
                                          job_->config().rpc_cpu_cost);
  // Feed the piggybacked cost report to every stage's cost model.
  for (auto& engine : engines_) {
    engine->cost_model().ObserveDataNode(batch.from, batch.report);
  }
  if (batch.report.t_cpu_service > 0) {
    reported_udf_service_.Observe(batch.report.t_cpu_service);
  }
  const bool recovery = job_->config().recovery.enabled;
  for (ResponseItem& item : batch.items) {
    if (recovery) {
      // Resolve the physical send (inflight accounting, hedge detection).
      bool hedge = false;
      auto sit = outstanding_sends_.find(item.send_id);
      if (sit != outstanding_sends_.end()) {
        (sit->second.compute ? inflight_compute_
                             : inflight_data_)[sit->second.dest] -= 1;
        hedge = sit->second.hedge;
        if (hedging_) {
          hedging_->ObserveLatency(static_cast<uint64_t>(sit->second.dest),
                                   job_->sim().now() - sit->second.sent_at);
        }
        outstanding_sends_.erase(sit);
        auto rit = inflight_requests_.find(item.tuple_id);
        if (rit != inflight_requests_.end()) {
          --rit->second.live_sends;
        }
      }
      // Freshness: the logical request must still be waiting for this
      // (tuple, stage). Anything else — a hedge losing the race, a retry's
      // original answer arriving after the retry already won, a response
      // from a stage the tuple has moved past — is discarded here, which
      // is what keeps retries and hedges exactly-once at the tuple level.
      auto rit = inflight_requests_.find(item.tuple_id);
      if (rit == inflight_requests_.end() ||
          rit->second.item.stage != item.stage) {
        ++recovery_.duplicates_ignored;
        continue;
      }
      if (hedge) ++recovery_.hedges_won;
      inflight_requests_.erase(rit);
    }
    size_t stage = static_cast<size_t>(item.stage);
    key_info_[stage][item.key] =
        KeyInfo{item.stored_value_bytes, item.udf_cost};
    if (!engines_.empty()) {
      engines_[stage]->cost_model().ObserveSizes(
          job_->config().key_bytes, -1, job_->config().computed_value_bytes,
          item.stored_value_bytes);
    }
    if (item.was_data_request) {
      if (!recovery) inflight_data_[batch.from] -= 1;
      if (!engines_.empty() &&
          item.disposition != FetchDisposition::kNoCache) {
        Route route = item.disposition == FetchDisposition::kCacheMemory
                          ? Route::kFetchCacheMemory
                          : Route::kFetchCacheDisk;
        engines_[stage]->OnValueFetched(item.key, route,
                                        item.stored_value_bytes,
                                        item.version);
        job_->store(item.stage).RegisterFetch(item.key, id_);
        // Release the tuples that coalesced onto this fetch.
        auto wit = fetch_waiters_[stage].find(item.key);
        if (wit != fetch_waiters_[stage].end()) {
          for (uint64_t waiter : wit->second) {
            SubmitLocalUdf(waiter, item.udf_cost);
          }
          fetch_waiters_[stage].erase(wit);
        }
      }
      SubmitLocalUdf(item.tuple_id, item.udf_cost);
    } else {
      if (!recovery) inflight_compute_[batch.from] -= 1;
      auto frac_it = computed_fraction_.find(batch.from);
      if (frac_it == computed_fraction_.end()) {
        frac_it = computed_fraction_.emplace(batch.from, Ewma(0.2)).first;
      }
      frac_it->second.Observe(item.computed ? 1.0 : 0.0);
      if (!engines_.empty()) {
        engines_[stage]->OnComputeResponse(item.key, batch.from,
                                           item.stored_value_bytes,
                                           item.version, batch.report);
        // Cost parameters are in: release and re-route any tuples that
        // were waiting on this key's first request.
        auto wit = meta_waiters_[stage].find(item.key);
        if (wit != meta_waiters_[stage].end()) {
          std::vector<uint64_t> held = std::move(wit->second);
          meta_waiters_[stage].erase(wit);
          for (uint64_t waiter : held) RouteStage(waiter);
        }
      }
      if (item.computed) {
        OnStageComplete(item.tuple_id);
      } else {
        SubmitLocalUdf(item.tuple_id, item.udf_cost);
      }
    }
  }
}

void ComputeNodeRuntime::HandleUpdateNotification(int stage, Key key,
                                                  uint64_t version) {
  if (engines_.empty()) return;
  engines_[static_cast<size_t>(stage)]->OnUpdateNotification(key, version);
}

void ComputeNodeRuntime::OnStageComplete(uint64_t tuple_id) {
  auto it = pending_.find(tuple_id);
  JO_CHECK(it != pending_.end());
  int stage = it->second.stage;
  bool last = stage + 1 >= job_->num_stages();
  bool survives = false;
  if (!last) {
    double sel = job_->stage_selectivity(stage);
    survives = sel >= 1.0 || rng_.NextDouble() < sel;
  }
  if (survives) {
    it->second.stage = stage + 1;
    RouteStage(tuple_id);
    return;
  }
  pending_.erase(it);
  ++tuples_done_;
  --outstanding_;
  job_->NotifyTupleDone(job_->sim().now());
  if (!finished_ && next_input_ >= input_.size() && outstanding_ == 0) {
    finished_ = true;
    finish_time_ = job_->sim().now();
  }
  MaybeResumeDriver();
}

void ComputeNodeRuntime::MaybeResumeDriver() {
  int max_out = job_->traits().prefetch
                    ? job_->config().max_outstanding
                    : job_->cluster().node(id_).cpu().cores();
  if (driver_waiting_ && outstanding_ < max_out) {
    driver_waiting_ = false;
    job_->sim().Schedule(0.0, [this] { ProcessNext(); });
  }
}

std::vector<InputTuple> ComputeNodeRuntime::DonateInput(size_t count) {
  std::vector<InputTuple> out;
  size_t remaining = input_.size() - next_input_;
  count = std::min(count, remaining);
  if (count == 0) return out;
  out.assign(std::make_move_iterator(input_.end() - count),
             std::make_move_iterator(input_.end()));
  input_.resize(input_.size() - count);
  return out;
}

void ComputeNodeRuntime::ReceiveInput(std::vector<InputTuple> tuples) {
  if (tuples.empty()) return;
  bool was_exhausted = next_input_ >= input_.size();
  for (auto& t : tuples) input_.push_back(std::move(t));
  finished_ = false;
  if (was_exhausted) {
    // The driver had stopped; restart it. Streaming arrival schedules do
    // not apply to stolen work — it is available immediately.
    input_drained_ = false;
    arrival_rate_ = 0.0;
    job_->sim().Schedule(0.0, [this] { ProcessNext(); });
  }
}

int64_t JoinJob::RebalanceInput(int from, int to, double fraction) {
  JO_CHECK(from >= 0 && from < cluster_->num_compute_nodes());
  JO_CHECK(to >= 0 && to < cluster_->num_compute_nodes());
  ComputeNodeRuntime& src = compute_runtime(from);
  size_t remaining = src.input_.size() - src.next_input_;
  size_t count = static_cast<size_t>(fraction * static_cast<double>(remaining));
  std::vector<InputTuple> moved = src.DonateInput(count);
  int64_t n = static_cast<int64_t>(moved.size());
  compute_runtime(to).ReceiveInput(std::move(moved));
  return n;
}

void ComputeNodeRuntime::FlushAllBatchers() {
  for (auto& [j, b] : data_batchers_) b->Flush();
  for (auto& [j, b] : compute_batchers_) b->Flush();
}

ComputeNodeStats ComputeNodeRuntime::SnapshotStats(
    NodeId target_data_node) const {
  ComputeNodeStats s;
  s.lcc = local_queue_len_;
  for (const auto& [j, b] : data_batchers_) {
    s.ndc += static_cast<double>(b->pending());
  }
  for (const auto& [j, b] : compute_batchers_) {
    s.ncc += static_cast<double>(b->pending());
  }
  for (const auto& [j, n] : inflight_data_) s.ndrc += n;
  for (const auto& [j, n] : inflight_compute_) {
    auto frac_it = computed_fraction_.find(j);
    double frac = frac_it != computed_fraction_.end()
                      ? frac_it->second.ValueOr(1.0)
                      : 1.0;
    if (j == target_data_node) {
      s.nrd_ij = n;
      s.rd_ij = n * frac;
    } else {
      s.nrc_other += n;
      s.rc_other += n * frac;
    }
  }
  // Service time, not wall time: the model multiplies it by queue lengths.
  s.tcc = local_udf_service_.ValueOr(reported_udf_service_.ValueOr(1e-3));
  s.net_bw = job_->cluster().network().EffectiveBandwidth(
      id_, target_data_node);
  s.cores = job_->cluster().node(id_).cpu().cores();
  return s;
}

// ---------------------------------------------------------------------------
// JoinJob
// ---------------------------------------------------------------------------

JoinJob::JoinJob(Simulation* sim, Cluster* cluster,
                 std::vector<ParallelStore*> stores, Strategy strategy,
                 const EngineConfig& config)
    : sim_(sim),
      cluster_(cluster),
      stores_(std::move(stores)),
      strategy_(strategy),
      traits_(StrategyTraits::For(strategy)),
      config_(config) {
  JO_CHECK(!stores_.empty());
  double bytes = 0;
  size_t items = 0;
  for (ParallelStore* st : stores_) {
    bytes += st->total_bytes();
    items += st->total_items();
  }
  avg_sv_ = items > 0 ? bytes / static_cast<double>(items) : 4096.0;

  compute_runtimes_.resize(
      static_cast<size_t>(cluster_->num_compute_nodes()));
  for (int i = 0; i < cluster_->num_compute_nodes(); ++i) {
    compute_runtimes_[static_cast<size_t>(i)] =
        std::make_unique<ComputeNodeRuntime>(this, cluster_->compute_node_id(i),
                                             std::vector<InputTuple>{}, 0.0);
  }
  for (int j = 0; j < cluster_->num_data_nodes(); ++j) {
    NodeId id = cluster_->data_node_id(j);
    data_runtimes_[id] = std::make_unique<DataNodeRuntime>(this, id);
  }
}

void JoinJob::SetInput(int compute_index, std::vector<InputTuple> input,
                       double arrival_rate) {
  total_tuples_ -= static_cast<int64_t>(
      compute_runtimes_[static_cast<size_t>(compute_index)]->input_.size());
  total_tuples_ += static_cast<int64_t>(input.size());
  compute_runtimes_[static_cast<size_t>(compute_index)] =
      std::make_unique<ComputeNodeRuntime>(
          this, cluster_->compute_node_id(compute_index), std::move(input),
          arrival_rate);
}

DataNodeRuntime& JoinJob::data_runtime_for(NodeId id) {
  auto it = data_runtimes_.find(id);
  JO_CHECK(it != data_runtimes_.end());
  return *it->second;
}

double JoinJob::stage_selectivity(int stage) const {
  if (static_cast<size_t>(stage) < config_.stage_selectivity.size()) {
    return config_.stage_selectivity[static_cast<size_t>(stage)];
  }
  return 1.0;
}

void JoinJob::NotifyTupleDone(double now) {
  ++tuples_done_;
  last_done_time_ = std::max(last_done_time_, now);
}

void JoinJob::AttachFaultInjector(FaultInjector* injector) {
  JO_CHECK(injector != nullptr);
  JO_CHECK(fault_ == nullptr) << "fault injector already attached";
  fault_ = injector;
  // A data node restart loses its volatile state: the block cache must be
  // re-warmed (stored values and versions survive — they are replicated
  // durable state).
  injector->AddListener([this](const FaultEvent& event) {
    if (event.kind != FaultKind::kNodeRestart) return;
    auto it = data_runtimes_.find(event.node);
    if (it != data_runtimes_.end()) it->second->ClearBlockCache();
  });
}

bool JoinJob::FaultDeliverable(NodeId src, NodeId dst,
                               double send_time) const {
  if (fault_ == nullptr) return true;
  // The sender must have been alive at send time, the link un-partitioned
  // when the message entered it, and the receiver alive at delivery.
  return fault_->NodeUpAt(src, send_time) &&
         fault_->LinkUpAt(src, dst, send_time) &&
         fault_->NodeUpAt(dst, sim_->now());
}

RecoveryCounters JoinJob::recovery_counters() const {
  RecoveryCounters total;
  for (const auto& rt : compute_runtimes_) total.Add(rt->recovery_);
  return total;
}

Status JoinJob::ApplyUpdate(int stage, Key key) {
  auto result = store(stage).Update(key, [](StoredItem&) {});
  if (!result.ok()) return result.status();
  NodeId owner = store(stage).OwnerOf(key);
  double send_time = sim_->now();
  for (NodeId c : result->notify) {
    double arrival = cluster_->network().Transfer(owner, c, 64.0, send_time);
    uint64_t version = result->new_version;
    sim_->At(arrival, [this, owner, c, stage, key, version, send_time] {
      // A lost notification leaves the compute node's cached copy stale —
      // the documented risk of notify-based invalidation under faults.
      if (!FaultDeliverable(owner, c, send_time)) {
        fault_->CountDroppedNotification();
        return;
      }
      compute_runtime(c).HandleUpdateNotification(stage, key, version);
    });
  }
  return Status::OK();
}

JobResult JoinJob::Run() {
  for (auto& rt : compute_runtimes_) rt->Start();
  uint64_t events = sim_->Run();

  JobResult r;
  r.makespan = last_done_time_;
  r.tuples_processed = tuples_done_;
  r.udf_invocations = udf_invocations_;
  r.throughput = r.makespan > 0
                     ? static_cast<double>(r.tuples_processed) / r.makespan
                     : 0.0;
  r.network_bytes = cluster_->network().total_bytes_transferred();
  r.network_messages = cluster_->network().total_messages();
  r.sim_events = events;
  r.total_cpu_busy = cluster_->TotalCpuBusy();

  SummaryStats comp_busy, data_busy;
  for (int i = 0; i < cluster_->num_compute_nodes(); ++i) {
    comp_busy.Observe(cluster_->compute_node(i).cpu().busy_time());
  }
  for (int j = 0; j < cluster_->num_data_nodes(); ++j) {
    data_busy.Observe(cluster_->data_node(j).cpu().busy_time());
  }
  r.compute_cpu_skew =
      comp_busy.mean() > 0 ? comp_busy.max() / comp_busy.mean() : 1.0;
  r.data_cpu_skew =
      data_busy.mean() > 0 ? data_busy.max() / data_busy.mean() : 1.0;

  for (const auto& [id, rt] : data_runtimes_) {
    r.computed_at_data += rt->computed_here();
    r.bounced_to_compute += rt->bounced();
  }
  for (const auto& rt : compute_runtimes_) {
    r.data_requests += rt->data_requests_issued_;
    r.compute_requests += rt->compute_requests_issued_;
    for (const auto& engine : rt->engines_) {
      r.cache_memory_hits += engine->cache().stats().memory_hits;
      r.cache_disk_hits += engine->cache().stats().disk_hits;
    }
    r.recovery.Add(rt->recovery_);
  }
  if (fault_ != nullptr) {
    const FaultStats& fs = fault_->stats();
    r.messages_dropped = fs.requests_dropped + fs.responses_dropped +
                         fs.notifications_dropped;
  }
  if (tuples_done_ + tuples_failed_ != total_tuples_) {
    JO_LOG(Warn) << "job finished with " << tuples_done_ << "/"
                 << total_tuples_ << " tuples processed ("
                 << tuples_failed_ << " abandoned)";
  }
  return r;
}

}  // namespace joinopt
