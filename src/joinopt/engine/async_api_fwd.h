// Shared declarations for the Section 7 API executors, split out so the
// plan-execution helpers (plan_exec.h) don't need the full service
// definitions.
#ifndef JOINOPT_ENGINE_ASYNC_API_FWD_H_
#define JOINOPT_ENGINE_ASYNC_API_FWD_H_

#include <functional>
#include <string>

#include "joinopt/common/hash.h"

namespace joinopt {

/// The user-defined function f'(k, p, v) (Section 3.1). Executors may call
/// it from several threads at once; implementations must be thread-safe
/// (pure functions trivially are).
using UserFn = std::function<std::string(Key key, const std::string& params,
                                         const std::string& value)>;

}  // namespace joinopt

#endif  // JOINOPT_ENGINE_ASYNC_API_FWD_H_
