#include "joinopt/freq/space_saving.h"

#include <gtest/gtest.h>

#include <map>

#include "joinopt/common/random.h"

namespace joinopt {
namespace {

TEST(SpaceSavingTest, ExactWhileUnderCapacity) {
  SpaceSaving ss(10);
  for (int i = 0; i < 5; ++i) ss.Observe(1);
  ss.Observe(2);
  EXPECT_EQ(ss.EstimatedCount(1), 5);
  EXPECT_EQ(ss.EstimatedCount(2), 1);
  EXPECT_EQ(ss.ErrorBound(1), 0);
}

TEST(SpaceSavingTest, CapacityNeverExceeded) {
  SpaceSaving ss(8);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) ss.Observe(rng.Next());
  EXPECT_LE(ss.TrackedKeys(), 8u);
}

TEST(SpaceSavingTest, ReplacementInheritsMinCount) {
  SpaceSaving ss(2);
  ss.Observe(1);
  ss.Observe(1);
  ss.Observe(2);
  // Table full {1:2, 2:1}; new key 3 evicts key 2 (min count 1).
  ss.Observe(3);
  EXPECT_EQ(ss.EstimatedCount(2), 0);
  EXPECT_EQ(ss.EstimatedCount(3), 2);  // 1 (inherited) + 1
  EXPECT_EQ(ss.ErrorBound(3), 1);
}

TEST(SpaceSavingTest, NeverUndercounts) {
  // Space-Saving guarantee: estimate >= true count for tracked keys.
  SpaceSaving ss(20);
  Rng rng(17);
  ZipfDistribution zipf(100, 1.2);
  std::map<Key, int64_t> exact;
  for (int i = 0; i < 50000; ++i) {
    Key k = zipf.Sample(rng);
    ++exact[k];
    ss.Observe(k);
  }
  for (const auto& [k, true_count] : exact) {
    int64_t est = ss.EstimatedCount(k);
    if (est > 0) {
      EXPECT_GE(est, true_count) << "undercount for key " << k;
    }
  }
}

TEST(SpaceSavingTest, HeavyHittersSurvive) {
  SpaceSaving ss(10);
  Rng rng(23);
  for (int i = 0; i < 20000; ++i) {
    ss.Observe(777);  // heavy
    ss.Observe(rng.Next());
  }
  EXPECT_GE(ss.EstimatedCount(777), 20000);
}

TEST(SpaceSavingTest, OverestimateBoundedByErrorTerm) {
  SpaceSaving ss(4);
  Rng rng(31);
  std::map<Key, int64_t> exact;
  for (int i = 0; i < 5000; ++i) {
    Key k = rng.NextBounded(50);
    ++exact[k];
    ss.Observe(k);
  }
  for (Key k = 0; k < 50; ++k) {
    int64_t est = ss.EstimatedCount(k);
    if (est > 0) {
      EXPECT_LE(est - ss.ErrorBound(k), exact[k]);
    }
  }
}

TEST(SpaceSavingTest, ResetKeyZeroes) {
  SpaceSaving ss(4);
  for (int i = 0; i < 10; ++i) ss.Observe(1);
  ss.ResetKey(1);
  EXPECT_EQ(ss.EstimatedCount(1), 0);
  // The reset entry is now the eviction victim.
  ss.Observe(2);
  ss.Observe(3);
  ss.Observe(4);
  ss.Observe(5);  // evicts key 1 (count 0)
  EXPECT_EQ(ss.EstimatedCount(5), 1);
  EXPECT_EQ(ss.EstimatedCount(1), 0);
}

TEST(SpaceSavingTest, TotalObservations) {
  SpaceSaving ss(2);
  for (int i = 0; i < 9; ++i) ss.Observe(static_cast<Key>(i));
  EXPECT_EQ(ss.TotalObservations(), 9);
}

}  // namespace
}  // namespace joinopt
