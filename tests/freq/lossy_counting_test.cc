#include "joinopt/freq/lossy_counting.h"

#include <gtest/gtest.h>

#include <map>

#include "joinopt/common/random.h"

namespace joinopt {
namespace {

TEST(LossyCountingTest, CountsExactlyWithinFirstBucket) {
  LossyCounting lc(0.01);  // bucket width 100
  for (int i = 0; i < 5; ++i) lc.Observe(7);
  EXPECT_EQ(lc.EstimatedCount(7), 5);
  EXPECT_EQ(lc.EstimatedCount(8), 0);
}

TEST(LossyCountingTest, ObserveReturnsRunningCount) {
  LossyCounting lc(0.1);
  EXPECT_EQ(lc.Observe(1), 1);
  EXPECT_EQ(lc.Observe(1), 2);
  EXPECT_EQ(lc.Observe(2), 1);
}

TEST(LossyCountingTest, PrunesInfrequentKeysAtBucketBoundary) {
  LossyCounting lc(0.1);  // bucket width 10
  // Keys 0..9 once each fills exactly one bucket; all are pruned.
  for (Key k = 0; k < 10; ++k) lc.Observe(k);
  EXPECT_EQ(lc.TrackedKeys(), 0u);
}

TEST(LossyCountingTest, KeepsHeavyHitterAcrossBuckets) {
  LossyCounting lc(0.1);
  for (int i = 0; i < 100; ++i) {
    lc.Observe(42);                          // heavy
    lc.Observe(static_cast<Key>(1000 + i)); // one-off noise
  }
  EXPECT_GE(lc.EstimatedCount(42), 90);  // undercount bounded by eps*N = 20
  EXPECT_LE(lc.EstimatedCount(42), 100);
}

TEST(LossyCountingTest, UndercountBoundedByEpsilonN) {
  const double eps = 0.02;
  LossyCounting lc(eps);
  Rng rng(5);
  ZipfDistribution zipf(200, 1.0);
  std::map<Key, int64_t> exact;
  const int64_t n = 20000;
  for (int64_t i = 0; i < n; ++i) {
    Key k = zipf.Sample(rng);
    ++exact[k];
    lc.Observe(k);
  }
  for (const auto& [k, true_count] : exact) {
    int64_t est = lc.EstimatedCount(k);
    EXPECT_LE(est, true_count) << "overestimate for key " << k;
    EXPECT_GE(est, true_count - static_cast<int64_t>(eps * n))
        << "undercount too large for key " << k;
  }
}

TEST(LossyCountingTest, MemoryStaysBounded) {
  LossyCounting lc(0.001);
  Rng rng(9);
  // A million distinct keys, uniformly: tracked keys must stay near 1/eps.
  for (int i = 0; i < 1000000; ++i) {
    lc.Observe(rng.Next());
  }
  EXPECT_LT(lc.TrackedKeys(), 20000u);  // well below the 1M distinct keys
}

TEST(LossyCountingTest, FrequentKeysFindsHeavyHitters) {
  LossyCounting lc(0.01);
  for (int i = 0; i < 1000; ++i) {
    lc.Observe(1);
    if (i % 2 == 0) lc.Observe(2);
    lc.Observe(static_cast<Key>(10000 + i));
  }
  auto frequent = lc.FrequentKeys(400);
  bool has1 = false, has2 = false;
  for (Key k : frequent) {
    if (k == 1) has1 = true;
    if (k == 2) has2 = true;
    EXPECT_TRUE(k == 1 || k == 2) << "false heavy hitter " << k;
  }
  EXPECT_TRUE(has1);
  EXPECT_TRUE(has2);
}

TEST(LossyCountingTest, ResetKeyZeroesAndAllowsPruning) {
  LossyCounting lc(0.1);  // width 10
  for (int i = 0; i < 50; ++i) lc.Observe(5);
  EXPECT_GE(lc.EstimatedCount(5), 40);
  lc.ResetKey(5);
  EXPECT_EQ(lc.EstimatedCount(5), 0);
  // Without further hits, the next boundary prunes it.
  for (Key k = 100; k < 110; ++k) lc.Observe(k);
  EXPECT_EQ(lc.EstimatedCount(5), 0);
  EXPECT_EQ(lc.TrackedKeys(), 0u);
}

TEST(LossyCountingTest, TotalObservationsCounts) {
  LossyCounting lc(0.5);
  for (int i = 0; i < 17; ++i) lc.Observe(static_cast<Key>(i % 3));
  EXPECT_EQ(lc.TotalObservations(), 17);
}

TEST(LossyCountingTest, BucketWidthFromEpsilon) {
  LossyCounting lc(0.001);
  EXPECT_EQ(lc.bucket_width(), 1000);
}

}  // namespace
}  // namespace joinopt
