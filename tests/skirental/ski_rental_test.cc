#include "joinopt/skirental/ski_rental.h"

#include <gtest/gtest.h>

#include <cmath>

namespace joinopt {
namespace {

TEST(SkiRentalTest, ClassicThreshold) {
  // b/r with no recurring cost.
  EXPECT_DOUBLE_EQ(SkiRentalBuyThreshold(1.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(SkiRentalBuyThreshold(2.0, 10.0), 5.0);
}

TEST(SkiRentalTest, RecurringCostRaisesThreshold) {
  // m = b / (r - br) (Section 4.2.1).
  EXPECT_DOUBLE_EQ(SkiRentalBuyThreshold(2.0, 10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(SkiRentalBuyThreshold(2.0, 10.0, 1.5), 20.0);
}

TEST(SkiRentalTest, NeverBuyWhenRentingIsCheaperForever) {
  EXPECT_TRUE(std::isinf(SkiRentalBuyThreshold(1.0, 10.0, 1.0)));
  EXPECT_TRUE(std::isinf(SkiRentalBuyThreshold(1.0, 10.0, 2.0)));
}

TEST(SkiRentalTest, ShouldBuyCrossesThreshold) {
  // r=1, b=5: rent for the first 5 accesses, buy on the 6th.
  EXPECT_FALSE(SkiRentalShouldBuy(5, 1.0, 5.0));
  EXPECT_TRUE(SkiRentalShouldBuy(6, 1.0, 5.0));
}

TEST(SkiRentalTest, CompetitiveRatioFormula) {
  // 2 - br/r (Section 4.2.1); classic case gives 2.
  EXPECT_DOUBLE_EQ(SkiRentalCompetitiveRatio(1.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(SkiRentalCompetitiveRatio(2.0, 1.0), 1.5);
  EXPECT_DOUBLE_EQ(SkiRentalCompetitiveRatio(1.0, 1.0), 1.0);  // never buys
}

TEST(SkiRentalTest, OnlineCostRentOnlyBelowThreshold) {
  EXPECT_DOUBLE_EQ(SkiRentalOnlineCost(3, 1.0, 10.0), 3.0);
}

TEST(SkiRentalTest, OfflineCostPicksCheaperOption) {
  EXPECT_DOUBLE_EQ(SkiRentalOfflineCost(3, 1.0, 10.0), 3.0);     // rent
  EXPECT_DOUBLE_EQ(SkiRentalOfflineCost(100, 1.0, 10.0), 10.0);  // buy
  EXPECT_DOUBLE_EQ(SkiRentalOfflineCost(100, 2.0, 10.0, 1.0),
                   10.0 + 100.0);  // buy with recurring
}

// Property: for every (r, b, br) with r > br and every access count, the
// online policy pays at most (2 - br/r) times the offline optimum — the
// paper's worst-case guarantee.
class CompetitiveRatioProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(CompetitiveRatioProperty, GuaranteeHolds) {
  auto [r, b, br] = GetParam();
  double guarantee = SkiRentalCompetitiveRatio(r, br);
  for (int64_t accesses = 1; accesses <= 1000; accesses += 7) {
    double online = SkiRentalOnlineCost(accesses, r, b, br);
    double offline = SkiRentalOfflineCost(accesses, r, b, br);
    ASSERT_GT(offline, 0.0);
    EXPECT_LE(online / offline, guarantee + 1e-9)
        << "r=" << r << " b=" << b << " br=" << br
        << " accesses=" << accesses;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CostGrid, CompetitiveRatioProperty,
    ::testing::Values(std::make_tuple(1.0, 10.0, 0.0),
                      std::make_tuple(1.0, 10.0, 0.5),
                      std::make_tuple(2.0, 5.0, 1.0),
                      std::make_tuple(10.0, 100.0, 9.0),
                      std::make_tuple(0.5, 3.0, 0.25),
                      std::make_tuple(1.0, 1.0, 0.0),
                      std::make_tuple(1.0, 0.5, 0.9)));

TEST(SkiRentalTest, WorstCaseIsTightAtThreshold) {
  // Adversary stops exactly when we buy: ratio approaches 2 - br/r.
  double r = 2.0, b = 10.0, br = 1.0;
  int64_t m = static_cast<int64_t>(SkiRentalBuyThreshold(r, b, br));  // 10
  int64_t accesses = m + 1;
  double online = SkiRentalOnlineCost(accesses, r, b, br);
  double offline = SkiRentalOfflineCost(accesses, r, b, br);
  EXPECT_NEAR(online / offline, SkiRentalCompetitiveRatio(r, br), 0.15);
}

TEST(SkiRentalTest, DegenerateInputs) {
  EXPECT_TRUE(std::isinf(SkiRentalBuyThreshold(0.0, 1.0)));   // free rent
  EXPECT_TRUE(std::isinf(SkiRentalBuyThreshold(1.0, -1.0)));  // bad buy cost
  EXPECT_DOUBLE_EQ(SkiRentalBuyThreshold(1.0, 0.0), 0.0);     // free buy
  EXPECT_TRUE(SkiRentalShouldBuy(1, 1.0, 0.0));
}

}  // namespace
}  // namespace joinopt
