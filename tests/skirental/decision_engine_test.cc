#include "joinopt/skirental/decision_engine.h"

#include <gtest/gtest.h>

#include "joinopt/common/units.h"

namespace joinopt {
namespace {

constexpr NodeId kDataNode = 10;

DecisionEngineConfig TestConfig() {
  DecisionEngineConfig cfg;
  cfg.cost.alpha = 1.0;  // exact tracking keeps the arithmetic transparent
  cfg.cache.memory_capacity_bytes = 1e6;
  cfg.counter = CounterKind::kExact;
  return cfg;
}

// Primes the engine so that costs for `key` are known: one compute request
// plus its response carrying the data node's cost report.
void Prime(DecisionEngine& engine, Key key, double sv, double t_disk,
           double t_cpu_data, double t_cpu_local, double bw) {
  engine.cost_model().SetBandwidth(kDataNode, bw);
  engine.ObserveLocalCompute(t_cpu_local);
  Decision first = engine.Decide(key, kDataNode);
  EXPECT_EQ(first.route, Route::kComputeAtData);
  engine.OnComputeResponse(key, kDataNode, sv, /*version=*/1,
                           {t_disk, t_cpu_data});
  engine.cost_model().ObserveSizes(16.0, 100.0, 100.0, -1);
}

TEST(DecisionEngineTest, FirstRequestIsComputeRequest) {
  DecisionEngine engine(TestConfig());
  Decision d = engine.Decide(1, kDataNode);
  EXPECT_EQ(d.route, Route::kComputeAtData);
  EXPECT_EQ(engine.stats().first_requests, 1);
}

TEST(DecisionEngineTest, RentsBelowThresholdThenBuys) {
  DecisionEngine engine(TestConfig());
  // r = tCompute = max(1ms disk, small net, 1ms cpu) = 1ms... make fetch
  // expensive: sv = 1 MB over 1 MB/s => tFetch ~ 1s; r = 0.1s; brM = 1ms.
  // Threshold ~ 1 / (0.1 - 0.001) ~ 10.1 accesses.
  Prime(engine, 1, /*sv=*/1e6, /*t_disk=*/1e-3, /*t_cpu_data=*/0.1,
        /*t_cpu_local=*/1e-3, /*bw=*/1e6);
  int64_t rents = 0;
  Decision d{Route::kComputeAtData, 0, 0};
  for (int i = 0; i < 40; ++i) {
    d = engine.Decide(1, kDataNode);
    if (d.route != Route::kComputeAtData) break;
    ++rents;
  }
  EXPECT_EQ(d.route, Route::kFetchCacheMemory);
  // Threshold ~10.1, first request already consumed one access.
  EXPECT_NEAR(static_cast<double>(rents), 10.0, 2.0);
}

TEST(DecisionEngineTest, CacheHitAfterFetch) {
  DecisionEngine engine(TestConfig());
  Prime(engine, 1, 1e6, 1e-3, 0.5, 1e-3, 1e6);
  Decision d{Route::kComputeAtData, 0, 0};
  for (int i = 0; i < 100; ++i) {
    d = engine.Decide(1, kDataNode);
    if (d.route == Route::kFetchCacheMemory) break;
  }
  ASSERT_EQ(d.route, Route::kFetchCacheMemory);
  engine.OnValueFetched(1, d.route, 1e6, 1);
  EXPECT_EQ(engine.Decide(1, kDataNode).route, Route::kLocalMemoryHit);
  EXPECT_GT(engine.stats().local_memory_hits, 0);
}

TEST(DecisionEngineTest, ExpectedKeysHintDoesNotChangeDecisions) {
  // The expected_keys sizing hint only pre-reserves storage; the decision
  // stream must be bit-identical with and without it.
  DecisionEngineConfig plain = TestConfig();
  DecisionEngineConfig hinted = TestConfig();
  hinted.expected_keys = 50000;
  hinted.cache.expected_items = 50000;
  DecisionEngine a(plain);
  DecisionEngine b(hinted);
  for (DecisionEngine* e : {&a, &b}) {
    e->cost_model().SetBandwidth(kDataNode, 1e6);
    e->ObserveLocalCompute(1e-3);
  }
  for (Key k = 1; k <= 8; ++k) {
    for (int i = 0; i < 40; ++i) {
      Decision da = a.Decide(k, kDataNode);
      Decision db = b.Decide(k, kDataNode);
      ASSERT_EQ(da.route, db.route) << "key " << k << " iter " << i;
      if (da.route == Route::kComputeAtData) {
        a.OnComputeResponse(k, kDataNode, 1e5 * static_cast<double>(k), 1,
                            {1e-3, 0.1});
        b.OnComputeResponse(k, kDataNode, 1e5 * static_cast<double>(k), 1,
                            {1e-3, 0.1});
      } else if (da.route == Route::kFetchCacheMemory ||
                 da.route == Route::kFetchCacheDisk) {
        a.OnValueFetched(k, da.route, 1e5 * static_cast<double>(k), 1);
        b.OnValueFetched(k, db.route, 1e5 * static_cast<double>(k), 1);
      }
    }
  }
  EXPECT_EQ(a.stats().local_memory_hits, b.stats().local_memory_hits);
  EXPECT_EQ(a.stats().first_requests, b.stats().first_requests);
  EXPECT_EQ(a.cache().memory_items(), b.cache().memory_items());
  EXPECT_EQ(a.cache().disk_items(), b.cache().disk_items());
  EXPECT_DOUBLE_EQ(a.cache().memory_used(), b.cache().memory_used());
}

TEST(DecisionEngineTest, NeverBuysWhenRecurringExceedsRent) {
  DecisionEngine engine(TestConfig());
  // Fetching is expensive (1 MB over 1 MB/s) and the local UDF costs as
  // much as the remote one (100 ms): r <= br, so renting forever wins.
  Prime(engine, 1, /*sv=*/1e6, /*t_disk=*/1e-4, /*t_cpu_data=*/0.1,
        /*t_cpu_local=*/0.1, /*bw=*/1e6);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(engine.Decide(1, kDataNode).route, Route::kComputeAtData);
  }
}

TEST(DecisionEngineTest, BuysImmediatelyWhenFetchIsCheaper) {
  DecisionEngine engine(TestConfig());
  // tFetch < tCompute (tiny value, expensive remote CPU): per Section 4.3,
  // always issue data requests once costs are known.
  Prime(engine, 1, /*sv=*/50.0, /*t_disk=*/1e-4, /*t_cpu_data=*/0.2,
        /*t_cpu_local=*/1e-3, /*bw=*/1e9);
  Decision d = engine.Decide(1, kDataNode);
  EXPECT_EQ(d.route, Route::kFetchCacheMemory);
}

TEST(DecisionEngineTest, CachingDisabledAlwaysRents) {
  DecisionEngineConfig cfg = TestConfig();
  cfg.caching_enabled = false;
  DecisionEngine engine(cfg);
  Prime(engine, 1, 1e6, 1e-3, 0.5, 1e-3, 1e6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(engine.Decide(1, kDataNode).route, Route::kComputeAtData);
  }
  EXPECT_EQ(engine.cache().memory_items(), 0u);
}

TEST(DecisionEngineTest, OverflowsToDiskTierWhenMemoryContended) {
  DecisionEngineConfig cfg = TestConfig();
  cfg.cache.memory_capacity_bytes = 1e6;  // fits exactly one 1 MB value
  DecisionEngine engine(cfg);
  engine.cost_model().SetBandwidth(kDataNode, 1e6);
  engine.ObserveLocalCompute(1e-3);
  engine.ObserveLocalDisk(2e-3);

  auto drive_until_fetch = [&](Key k) -> Route {
    Decision d{Route::kComputeAtData, 0, 0};
    for (int i = 0; i < 200; ++i) {
      d = engine.Decide(k, kDataNode);
      if (d.route != Route::kComputeAtData) return d.route;
      engine.OnComputeResponse(k, kDataNode, 1e6, 1, {1e-3, 0.1});
    }
    return d.route;
  };

  Route r1 = drive_until_fetch(1);
  ASSERT_EQ(r1, Route::kFetchCacheMemory);
  engine.OnValueFetched(1, r1, 1e6, 1);
  // Key 1 now occupies the whole memory tier with a high (frequent) benefit.
  // Key 2, equally hot, can't displace it (same benefit) — expect the disk
  // tier route once the disk ski-rental condition is met.
  Route r2 = drive_until_fetch(2);
  EXPECT_EQ(r2, Route::kFetchCacheDisk);
  engine.OnValueFetched(2, r2, 1e6, 1);
  EXPECT_EQ(engine.Decide(2, kDataNode).route, Route::kLocalDiskHit);
}

TEST(DecisionEngineTest, UpdateResetsCounterAndInvalidates) {
  DecisionEngine engine(TestConfig());
  Prime(engine, 1, 1e6, 1e-3, 0.5, 1e-3, 1e6);
  Decision d{Route::kComputeAtData, 0, 0};
  for (int i = 0; i < 100; ++i) {
    d = engine.Decide(1, kDataNode);
    if (d.route == Route::kFetchCacheMemory) break;
  }
  ASSERT_EQ(d.route, Route::kFetchCacheMemory);
  engine.OnValueFetched(1, d.route, 1e6, 1);
  ASSERT_EQ(engine.Decide(1, kDataNode).route, Route::kLocalMemoryHit);

  engine.OnUpdateNotification(1, /*new_version=*/2);
  EXPECT_EQ(engine.cache().Peek(1), CacheTier::kNone);
  EXPECT_EQ(engine.counter().EstimatedCount(1), 0);
  EXPECT_GE(engine.stats().update_invalidations, 1);
  // Fresh access counts restart: immediately renting again.
  EXPECT_EQ(engine.Decide(1, kDataNode).route, Route::kComputeAtData);
}

TEST(DecisionEngineTest, ResyncInvalidateDropsMatchingCachedKeys) {
  DecisionEngine engine(TestConfig());
  // Cache two keys, then re-sync only one of them.
  for (Key k : {Key{1}, Key{2}}) {
    Prime(engine, k, 1e6, 1e-3, 0.5, 1e-3, 1e6);
    Decision d{Route::kComputeAtData, 0, 0};
    for (int i = 0; i < 100; ++i) {
      d = engine.Decide(k, kDataNode);
      if (d.route == Route::kFetchCacheMemory) break;
    }
    ASSERT_EQ(d.route, Route::kFetchCacheMemory);
    engine.OnValueFetched(k, d.route, 1e6, 1);
    ASSERT_EQ(engine.Decide(k, kDataNode).route, Route::kLocalMemoryHit);
  }

  std::vector<Key> dropped =
      engine.ResyncInvalidate([](Key k) { return k == 1; });
  EXPECT_EQ(dropped, std::vector<Key>{1});
  EXPECT_EQ(engine.stats().resync_invalidations, 1);
  EXPECT_EQ(engine.stats().update_invalidations, 0)
      << "re-sync drops must not masquerade as ordinary invalidations";

  // Key 1: cache emptied and its access history reset (renting again);
  // key 2 untouched (still a memory hit).
  EXPECT_EQ(engine.cache().Peek(1), CacheTier::kNone);
  EXPECT_EQ(engine.counter().EstimatedCount(1), 0);
  EXPECT_EQ(engine.Decide(1, kDataNode).route, Route::kComputeAtData);
  EXPECT_EQ(engine.Decide(2, kDataNode).route, Route::kLocalMemoryHit);

  // No matches → nothing dropped, counters unchanged.
  EXPECT_TRUE(engine.ResyncInvalidate([](Key k) { return k > 50; }).empty());
  EXPECT_EQ(engine.stats().resync_invalidations, 1);
}

TEST(DecisionEngineTest, VersionBumpViaComputeResponseResets) {
  DecisionEngine engine(TestConfig());
  Prime(engine, 1, 1e6, 1e-3, 0.5, 1e-3, 1e6);
  for (int i = 0; i < 5; ++i) {
    engine.Decide(1, kDataNode);
    engine.OnComputeResponse(1, kDataNode, 1e6, 1, {1e-3, 0.5});
  }
  int64_t before = engine.counter().EstimatedCount(1);
  ASSERT_GT(before, 3);
  // The item was updated between two compute requests (version 1 -> 3).
  engine.Decide(1, kDataNode);
  engine.OnComputeResponse(1, kDataNode, 1e6, 3, {1e-3, 0.5});
  EXPECT_EQ(engine.counter().EstimatedCount(1), 0);
  EXPECT_GE(engine.stats().update_resets, 1);
}

TEST(DecisionEngineTest, StaleNotificationIgnored) {
  DecisionEngine engine(TestConfig());
  Prime(engine, 1, 1e6, 1e-3, 0.5, 1e-3, 1e6);
  engine.OnComputeResponse(1, kDataNode, 1e6, 5, {1e-3, 0.5});
  int64_t count = engine.counter().EstimatedCount(1);
  engine.OnUpdateNotification(1, /*new_version=*/4);  // older than known
  EXPECT_EQ(engine.counter().EstimatedCount(1), count);
}

TEST(DecisionEngineTest, StatsAccumulateByRoute) {
  DecisionEngine engine(TestConfig());
  Prime(engine, 1, 1e6, 1e-3, 0.5, 1e-3, 1e6);
  for (int i = 0; i < 50; ++i) {
    Decision d = engine.Decide(1, kDataNode);
    if (d.route == Route::kFetchCacheMemory) {
      engine.OnValueFetched(1, d.route, 1e6, 1);
    }
  }
  const auto& s = engine.stats();
  EXPECT_GT(s.compute_requests, 0);
  EXPECT_EQ(s.fetch_memory, 1);
  EXPECT_GT(s.local_memory_hits, 0);
  EXPECT_EQ(s.local_memory_hits + s.compute_requests + s.fetch_memory +
                s.fetch_disk + s.local_disk_hits,
            51);  // Prime's first Decide + 50 here
}

TEST(DecisionEngineTest, FreezeStopsAdaptation) {
  DecisionEngineConfig cfg = TestConfig();
  cfg.freeze_after_decisions = 40;
  DecisionEngine engine(cfg);
  Prime(engine, 1, 1e6, 1e-3, 0.5, 1e-3, 1e6);
  // Warm-up: key 1 gets bought and cached.
  Decision d{Route::kComputeAtData, 0, 0};
  for (int i = 0; i < 30; ++i) {
    d = engine.Decide(1, kDataNode);
    if (d.route == Route::kFetchCacheMemory) {
      engine.OnValueFetched(1, d.route, 1e6, 1);
      break;
    }
  }
  ASSERT_EQ(engine.Decide(1, kDataNode).route, Route::kLocalMemoryHit);
  // Burn through the freeze threshold.
  while (!engine.frozen()) engine.Decide(1, kDataNode);
  // Cached key still served from memory.
  EXPECT_EQ(engine.Decide(1, kDataNode).route, Route::kLocalMemoryHit);
  // A new hot key can no longer be bought, no matter how often it appears.
  for (int i = 0; i < 100; ++i) {
    Decision d2 = engine.Decide(2, kDataNode);
    EXPECT_EQ(d2.route, Route::kComputeAtData);
    engine.OnComputeResponse(2, kDataNode, 1e6, 1, {1e-3, 0.5});
  }
  EXPECT_EQ(engine.cache().memory_items(), 1u);
}

TEST(DecisionEngineTest, ReDecideRoutesWithoutCountingOrStats) {
  DecisionEngine engine(TestConfig());
  // Unknown key: mirrors the first-request rule without recording one.
  Decision blind = engine.ReDecide(1, kDataNode);
  EXPECT_EQ(blind.route, Route::kComputeAtData);
  EXPECT_TRUE(blind.first_request);
  EXPECT_EQ(engine.counter().EstimatedCount(1), 0);
  EXPECT_EQ(engine.stats().first_requests, 0);

  // Below the buy threshold (~10 accesses): ReDecide rents, and no number
  // of re-evaluations nudges the count toward the threshold.
  Prime(engine, 1, /*sv=*/1e6, /*t_disk=*/1e-3, /*t_cpu_data=*/0.1,
        /*t_cpu_local=*/1e-3, /*bw=*/1e6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(engine.ReDecide(1, kDataNode).route, Route::kComputeAtData);
  }
  EXPECT_EQ(engine.counter().EstimatedCount(1), 1);  // only Prime's Decide

  // Past the threshold, ReDecide agrees with Decide's buy...
  Decision d{Route::kComputeAtData, 0, 0};
  for (int i = 0; i < 40; ++i) {
    d = engine.Decide(1, kDataNode);
    if (d.route == Route::kFetchCacheMemory) break;
  }
  ASSERT_EQ(d.route, Route::kFetchCacheMemory);
  EXPECT_EQ(engine.ReDecide(1, kDataNode).route, Route::kFetchCacheMemory);

  // ...and once the value lands it sees the hit without touching the
  // cache's hit accounting.
  engine.OnValueFetched(1, d.route, 1e6, 1);
  int64_t hits_before = engine.cache().stats().memory_hits;
  EXPECT_EQ(engine.ReDecide(1, kDataNode).route, Route::kLocalMemoryHit);
  EXPECT_EQ(engine.cache().stats().memory_hits, hits_before);
}

TEST(DecisionEngineTest, DistinctKeysTrackedIndependently) {
  DecisionEngine engine(TestConfig());
  Prime(engine, 1, 1e6, 1e-3, 0.5, 1e-3, 1e6);
  engine.Decide(2, kDataNode);  // first request for key 2
  engine.OnComputeResponse(2, kDataNode, 2e6, 1, {1e-3, 0.5});
  EXPECT_DOUBLE_EQ(engine.KnownValueSize(1), 1e6);
  EXPECT_DOUBLE_EQ(engine.KnownValueSize(2), 2e6);
  EXPECT_LT(engine.KnownValueSize(3), 0.0);
}

}  // namespace
}  // namespace joinopt
