#include "joinopt/skirental/cost_model.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(CostModelTest, PriorsBeforeMeasurements) {
  CostModelConfig cfg;
  CostModel m(cfg);
  EXPECT_DOUBLE_EQ(m.avg_key_bytes(), cfg.prior_key_bytes);
  EXPECT_DOUBLE_EQ(m.local_compute_time(), cfg.prior_compute_time);
  EXPECT_DOUBLE_EQ(m.bandwidth(3), cfg.prior_bandwidth);
}

TEST(CostModelTest, ObserveSizesSkipsNegatives) {
  CostModel m;
  m.ObserveSizes(8.0, -1, -1, 1000.0);
  EXPECT_DOUBLE_EQ(m.avg_key_bytes(), 8.0);
  EXPECT_DOUBLE_EQ(m.avg_stored_value_bytes(), 1000.0);
  EXPECT_DOUBLE_EQ(m.avg_param_bytes(), CostModelConfig{}.prior_param_bytes);
}

TEST(CostModelTest, TComputeIsMaxOfThreeComponents) {
  CostModelConfig cfg;
  cfg.alpha = 1.0;  // track exactly for the test
  CostModel m(cfg);
  m.SetBandwidth(1, 100.0);  // bytes/s
  m.ObserveSizes(10.0, 20.0, 30.0, 0.0);
  m.ObserveDataNode(1, {0.001, 0.002});
  // Network: (10+20+30)/100 = 0.6s dominates disk (1ms) and CPU (2ms).
  EXPECT_DOUBLE_EQ(m.TCompute(1), 0.6);
  // Make CPU dominate.
  m.ObserveDataNode(1, {0.001, 5.0});
  EXPECT_DOUBLE_EQ(m.TCompute(1), 5.0);
}

TEST(CostModelTest, TFetchUsesStoredValueSize) {
  CostModelConfig cfg;
  cfg.alpha = 1.0;
  CostModel m(cfg);
  m.SetBandwidth(1, 100.0);
  m.ObserveSizes(10.0, -1, -1, -1);
  m.ObserveDataNode(1, {0.001, 0.0});
  // Per-key sv overrides the global average.
  EXPECT_DOUBLE_EQ(m.TFetch(1, 990.0), (10.0 + 990.0) / 100.0);
}

TEST(CostModelTest, TFetchFallsBackToAverageSv) {
  CostModelConfig cfg;
  cfg.alpha = 1.0;
  CostModel m(cfg);
  m.SetBandwidth(1, 100.0);
  m.ObserveSizes(10.0, -1, -1, 490.0);
  m.ObserveDataNode(1, {0.001, 0.0});
  EXPECT_DOUBLE_EQ(m.TFetch(1), (10.0 + 490.0) / 100.0);
}

TEST(CostModelTest, TRecDiskIsMaxOfCpuAndDisk) {
  CostModelConfig cfg;
  cfg.alpha = 1.0;
  CostModel m(cfg);
  m.ObserveLocalCompute(0.010);
  m.ObserveLocalDisk(0.002);
  EXPECT_DOUBLE_EQ(m.TRecMem(), 0.010);
  EXPECT_DOUBLE_EQ(m.TRecDisk(), 0.010);
  m.ObserveLocalDisk(0.100);
  EXPECT_DOUBLE_EQ(m.TRecDisk(), 0.100);
}

TEST(CostModelTest, SmoothingFollowsAlpha) {
  CostModelConfig cfg;
  cfg.alpha = 0.5;
  CostModel m(cfg);
  m.ObserveLocalCompute(10.0);
  m.ObserveLocalCompute(20.0);
  EXPECT_DOUBLE_EQ(m.local_compute_time(), 15.0);
}

TEST(CostModelTest, PerDataNodeIsolation) {
  CostModelConfig cfg;
  cfg.alpha = 1.0;
  CostModel m(cfg);
  m.ObserveDataNode(1, {0.5, 0.6});
  m.ObserveDataNode(2, {0.1, 0.2});
  EXPECT_DOUBLE_EQ(m.data_node_disk_time(1), 0.5);
  EXPECT_DOUBLE_EQ(m.data_node_disk_time(2), 0.1);
  EXPECT_DOUBLE_EQ(m.data_node_compute_time(1), 0.6);
  EXPECT_DOUBLE_EQ(m.data_node_compute_time(2), 0.2);
}

TEST(CostModelTest, ResolveBundlesAllFour) {
  CostModelConfig cfg;
  cfg.alpha = 1.0;
  CostModel m(cfg);
  m.SetBandwidth(1, 1000.0);
  m.ObserveSizes(10.0, 10.0, 10.0, 100.0);
  m.ObserveDataNode(1, {0.004, 0.005});
  m.ObserveLocalCompute(0.003);
  m.ObserveLocalDisk(0.001);
  ResolvedCosts c = m.Resolve(1);
  EXPECT_DOUBLE_EQ(c.t_compute, std::max(0.005, 30.0 / 1000.0));
  EXPECT_DOUBLE_EQ(c.t_fetch, std::max(0.004, 110.0 / 1000.0));
  EXPECT_DOUBLE_EQ(c.t_rec_mem, 0.003);
  EXPECT_DOUBLE_EQ(c.t_rec_disk, 0.003);
}

TEST(CostModelTest, LocalCostBootstrapsFromReportedServiceTimes) {
  // Before the compute node has run any UDF locally, its recurring-cost
  // estimate comes from the service times data nodes report (homogeneous
  // cluster assumption) — not from the static prior.
  CostModelConfig cfg;
  cfg.alpha = 1.0;
  CostModel m(cfg);
  DataNodeCostReport report;
  report.t_cpu = 0.500;          // wall (includes queueing)
  report.t_cpu_service = 0.050;  // pure service
  report.t_disk = 0.020;
  report.t_disk_service = 0.002;
  m.ObserveDataNode(1, report);
  EXPECT_DOUBLE_EQ(m.local_compute_time(), 0.050);  // service, not wall
  EXPECT_DOUBLE_EQ(m.local_disk_time(), 0.002);
  // A real local measurement overrides the bootstrap.
  m.ObserveLocalCompute(0.080);
  EXPECT_DOUBLE_EQ(m.local_compute_time(), 0.080);
}

TEST(CostModelTest, WallAndServiceTimesKeptSeparate) {
  // tCompute (rent) must see the wall time; tRecMem must not.
  CostModelConfig cfg;
  cfg.alpha = 1.0;
  CostModel m(cfg);
  m.SetBandwidth(1, 1e9);
  DataNodeCostReport report;
  report.t_cpu = 0.400;
  report.t_cpu_service = 0.010;
  report.t_disk = 0.001;
  report.t_disk_service = 0.001;
  m.ObserveDataNode(1, report);
  EXPECT_DOUBLE_EQ(m.TCompute(1), 0.400);  // queue-inflated rent cost
  EXPECT_DOUBLE_EQ(m.TRecMem(), 0.010);    // pure recurring cost
  // This is what makes the ski-rental buy from overloaded data nodes:
  // r - br = 0.39 > 0 even though the UDF itself is identical either way.
  EXPECT_GT(m.TCompute(1) - m.TRecMem(), 0.3);
}

TEST(CostModelTest, LoadedDataNodeRaisesRentCost) {
  // The adaptivity hook: a data node reporting inflated per-UDF wall time
  // (queueing) must raise tCompute, lowering the ski-rental threshold.
  CostModelConfig cfg;
  cfg.alpha = 1.0;
  CostModel m(cfg);
  m.SetBandwidth(1, 1e9);
  m.ObserveDataNode(1, {0.001, 0.010});
  double relaxed = m.TCompute(1);
  m.ObserveDataNode(1, {0.001, 0.500});
  EXPECT_GT(m.TCompute(1), relaxed);
}

}  // namespace
}  // namespace joinopt
