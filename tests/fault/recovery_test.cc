// End-to-end recovery tests: crash/restart/straggler scenarios driven
// through a full JoinJob, checking the acceptance invariants — no tuple is
// lost or duplicated when a replica exists, runs are deterministic for a
// fixed seed + schedule, and the fault-free path is byte-identical to a run
// with no fault machinery attached.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "joinopt/common/random.h"
#include "joinopt/common/units.h"
#include "joinopt/engine/join_job.h"
#include "joinopt/fault/fault_injector.h"

namespace joinopt {
namespace {

std::vector<InputTuple> ZipfInput(int n, int num_keys, double z,
                                  uint64_t seed) {
  Rng rng(seed);
  ZipfDistribution zipf(static_cast<uint64_t>(num_keys), z);
  std::vector<InputTuple> input;
  input.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    InputTuple t;
    t.keys = {zipf.Sample(rng)};
    t.param_bytes = 128;
    input.push_back(std::move(t));
  }
  return input;
}

struct RunSpec {
  Strategy strategy = Strategy::kFC;
  int replication = 2;
  int tuples_per_node = 200;
  int num_keys = 100;
  double zipf_z = 0.5;
  EngineConfig engine;
  FaultSchedule faults;
  bool attach_injector = true;  ///< attach even when the schedule is empty
};

/// One fresh simulator + cluster + store + job, run to completion.
JobResult RunOnce(const RunSpec& spec) {
  Simulation sim;
  ClusterConfig cc;
  cc.num_compute_nodes = 2;
  cc.num_data_nodes = 2;
  cc.machine.cores = 4;
  Cluster cluster(cc);
  std::vector<NodeId> data_ids, compute_ids;
  for (int j = 0; j < cc.num_data_nodes; ++j) {
    data_ids.push_back(cluster.data_node_id(j));
  }
  for (int i = 0; i < cc.num_compute_nodes; ++i) compute_ids.push_back(i);
  ParallelStoreConfig sc;
  sc.replication_factor = spec.replication;
  ParallelStore store(sc, data_ids, compute_ids);
  for (Key k = 0; k < static_cast<Key>(spec.num_keys); ++k) {
    StoredItem item;
    item.size_bytes = KiB(4);
    item.udf_cost = Milliseconds(1);
    store.Put(k, item);
  }

  JoinJob job(&sim, &cluster, {&store}, spec.strategy, spec.engine);
  std::unique_ptr<FaultInjector> injector;
  if (spec.attach_injector) {
    injector =
        std::make_unique<FaultInjector>(&sim, &cluster, spec.faults);
    job.AttachFaultInjector(injector.get());
    injector->Arm();
  }
  for (int i = 0; i < cc.num_compute_nodes; ++i) {
    job.SetInput(i, ZipfInput(spec.tuples_per_node, spec.num_keys,
                              spec.zipf_z, 1000 + static_cast<uint64_t>(i)));
  }
  return job.Run();
}

/// Makespan of the fault-free baseline, used to place faults mid-join.
double BaselineMakespan(const RunSpec& spec) {
  RunSpec clean = spec;
  clean.faults = FaultSchedule{};
  clean.attach_injector = false;
  clean.engine.recovery.enabled = false;
  return RunOnce(clean).makespan;
}

TEST(RecoveryTest, DataNodeCrashWithReplicationLosesNothing) {
  RunSpec spec;
  spec.replication = 2;
  spec.engine.recovery.enabled = true;
  double baseline = BaselineMakespan(spec);
  ASSERT_GT(baseline, 0.0);

  // Data node 0 (cluster node id 2) dies early in the fetch phase, forever.
  // (The fetch fan-out resolves within the first ~30% of the makespan; the
  // tail is local UDF work, so a later crash would never be felt.)
  spec.faults.CrashNode(0.05 * baseline, 2);
  JobResult r = RunOnce(spec);

  // Zero lost, zero duplicated: every tuple completes exactly once, and in
  // FC (pure fetch) each completion runs exactly one local UDF.
  EXPECT_EQ(r.tuples_processed, 2 * spec.tuples_per_node);
  EXPECT_EQ(r.udf_invocations, 2 * spec.tuples_per_node);
  EXPECT_EQ(r.recovery.tuples_failed, 0);
  // The crash must actually have been felt and recovered from.
  EXPECT_GT(r.messages_dropped, 0);
  EXPECT_GT(r.recovery.timeouts, 0);
  EXPECT_GT(r.recovery.retries, 0);
  EXPECT_GT(r.recovery.failovers, 0);
  EXPECT_GT(r.makespan, baseline);
}

TEST(RecoveryTest, CrashThenRestartCompletes) {
  RunSpec spec;
  spec.replication = 2;
  spec.engine.recovery.enabled = true;
  double baseline = BaselineMakespan(spec);
  spec.faults.CrashNode(0.05 * baseline, 2).RestartNode(0.6 * baseline, 2);
  JobResult r = RunOnce(spec);
  EXPECT_EQ(r.tuples_processed, 2 * spec.tuples_per_node);
  EXPECT_EQ(r.recovery.tuples_failed, 0);
  EXPECT_GT(r.recovery.retries, 0);
}

TEST(RecoveryTest, SameSeedAndScheduleIsDeterministic) {
  RunSpec spec;
  spec.strategy = Strategy::kFO;
  spec.replication = 2;
  spec.engine.recovery.enabled = true;
  double baseline = BaselineMakespan(spec);
  spec.faults.CrashNode(0.05 * baseline, 2)
      .RestartNode(0.7 * baseline, 2)
      .SlowDisk(0.1 * baseline, 3, 4.0)
      .RestoreDisk(0.5 * baseline, 3);

  JobResult a = RunOnce(spec);
  JobResult b = RunOnce(spec);
  EXPECT_EQ(a.makespan, b.makespan);  // bitwise: no hidden nondeterminism
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.udf_invocations, b.udf_invocations);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.recovery.timeouts, b.recovery.timeouts);
  EXPECT_EQ(a.recovery.retries, b.recovery.retries);
  EXPECT_EQ(a.recovery.failovers, b.recovery.failovers);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
}

TEST(RecoveryTest, EmptyScheduleIsByteIdenticalToNoInjector) {
  // The no-fault regression: attaching an armed injector with an empty
  // schedule (recovery off) must not perturb a single metric.
  for (Strategy s : {Strategy::kNO, Strategy::kFC, Strategy::kFD,
                     Strategy::kCO, Strategy::kFO}) {
    RunSpec with, without;
    with.strategy = without.strategy = s;
    with.replication = without.replication = 1;
    with.attach_injector = true;
    without.attach_injector = false;
    JobResult a = RunOnce(with);
    JobResult b = RunOnce(without);
    EXPECT_EQ(a.makespan, b.makespan) << StrategyToString(s);
    EXPECT_EQ(a.tuples_processed, b.tuples_processed) << StrategyToString(s);
    EXPECT_EQ(a.udf_invocations, b.udf_invocations) << StrategyToString(s);
    EXPECT_EQ(a.network_bytes, b.network_bytes) << StrategyToString(s);
    EXPECT_EQ(a.network_messages, b.network_messages) << StrategyToString(s);
    EXPECT_EQ(a.sim_events, b.sim_events) << StrategyToString(s);
    EXPECT_EQ(a.messages_dropped, 0) << StrategyToString(s);
  }
}

TEST(RecoveryTest, RecoveryEnabledWithoutFaultsChangesNothingObservable) {
  // Arming the timeout machinery on a healthy run adds timer events but no
  // timeouts fire and no result metric moves.
  RunSpec with;
  with.attach_injector = false;
  with.engine.recovery.enabled = true;
  with.engine.recovery.request_timeout = 10.0;  // far beyond any response
  RunSpec without = with;
  without.engine.recovery.enabled = false;
  JobResult a = RunOnce(with);
  JobResult b = RunOnce(without);
  EXPECT_EQ(a.recovery.timeouts, 0);
  EXPECT_EQ(a.recovery.retries, 0);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
}

TEST(RecoveryTest, UnreplicatedCrashGivesUpButTerminates) {
  RunSpec spec;
  spec.replication = 1;
  spec.tuples_per_node = 50;  // keep the abandon-warning noise small
  spec.engine.recovery.enabled = true;
  spec.engine.recovery.max_attempts = 3;
  spec.engine.recovery.request_timeout = 20e-3;
  double baseline = BaselineMakespan(spec);
  spec.faults.CrashNode(0.05 * baseline, 2);
  JobResult r = RunOnce(spec);
  // With no replica to fail over to, tuples keyed at the dead node are
  // abandoned after max_attempts — but the job must still terminate and
  // account for every input tuple.
  EXPECT_GT(r.recovery.tuples_failed, 0);
  EXPECT_EQ(r.tuples_processed + r.recovery.tuples_failed,
            2 * spec.tuples_per_node);
}

TEST(RecoveryTest, HedgedRequestsCoverCrashedPrimary) {
  // The primary for half the keys is dead from the start; with the request
  // timeout pushed out of the picture, only the hedge path can save those
  // tuples — every one it saves is a hedge win.
  RunSpec spec;
  spec.replication = 2;
  spec.engine.recovery.enabled = true;
  spec.engine.recovery.hedging = true;
  spec.engine.recovery.hedge_delay = 2e-3;
  spec.engine.recovery.request_timeout = 10.0;  // isolate hedging
  spec.faults.CrashNode(0.0, 2);
  JobResult r = RunOnce(spec);
  EXPECT_EQ(r.tuples_processed, 2 * spec.tuples_per_node);
  EXPECT_EQ(r.udf_invocations, 2 * spec.tuples_per_node);
  EXPECT_EQ(r.recovery.tuples_failed, 0);
  EXPECT_GT(r.messages_dropped, 0);
  EXPECT_GT(r.recovery.hedges_sent, 0);
  EXPECT_GT(r.recovery.hedges_won, 0);
}

TEST(RecoveryTest, HedgeDuplicateResponsesAreSuppressed) {
  // On a healthy cluster an aggressive hedge makes both replicas answer;
  // the second copy of every answer must be discarded, and each tuple must
  // still run exactly one UDF. (Under the NIC reservation model the primary's
  // response always serializes first, so the hedge copy is the one dropped.)
  RunSpec spec;
  spec.replication = 2;
  spec.attach_injector = false;
  spec.engine.recovery.enabled = true;
  spec.engine.recovery.hedging = true;
  spec.engine.recovery.hedge_delay = 1e-4;  // hedge long before any response
  spec.engine.recovery.request_timeout = 10.0;
  JobResult r = RunOnce(spec);
  EXPECT_EQ(r.tuples_processed, 2 * spec.tuples_per_node);
  EXPECT_EQ(r.udf_invocations, 2 * spec.tuples_per_node);
  EXPECT_EQ(r.recovery.tuples_failed, 0);
  EXPECT_GT(r.recovery.hedges_sent, 0);
  EXPECT_GT(r.recovery.duplicates_ignored, 0);  // the losing copies
}

}  // namespace
}  // namespace joinopt
