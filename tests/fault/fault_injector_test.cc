#include "joinopt/fault/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace joinopt {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig c;
  c.num_compute_nodes = 2;
  c.num_data_nodes = 2;
  return c;
}

TEST(FaultInjectorTest, AppliesCrashAndRestartAtScheduledTimes) {
  Simulation sim;
  Cluster cluster(SmallCluster());
  FaultSchedule schedule;
  schedule.CrashNode(1.0, 2).RestartNode(2.0, 2);
  FaultInjector injector(&sim, &cluster, schedule);
  injector.Arm();

  std::vector<int> down_at;  // nodes_down sampled at t=0.5, 1.5, 2.5
  for (double t : {0.5, 1.5, 2.5}) {
    sim.At(t, [&] { down_at.push_back(injector.nodes_down()); });
  }
  sim.Run();
  EXPECT_EQ(down_at, (std::vector<int>{0, 1, 0}));
  EXPECT_TRUE(injector.NodeUp(2));
  EXPECT_EQ(injector.stats().crashes, 1);
  EXPECT_EQ(injector.stats().restarts, 1);
}

TEST(FaultInjectorTest, DiskSlowdownHitsServiceTime) {
  Simulation sim;
  Cluster cluster(SmallCluster());
  NodeId dn = cluster.data_node_id(0);
  double healthy = cluster.node(dn).DiskServiceTime(1e6);
  FaultSchedule schedule;
  schedule.SlowDisk(1.0, dn, 8.0).RestoreDisk(2.0, dn);
  FaultInjector injector(&sim, &cluster, schedule);
  injector.Arm();

  double slowed = 0.0, restored = 0.0;
  sim.At(1.5, [&] { slowed = cluster.node(dn).DiskServiceTime(1e6); });
  sim.At(2.5, [&] { restored = cluster.node(dn).DiskServiceTime(1e6); });
  sim.Run();
  EXPECT_DOUBLE_EQ(slowed, 8.0 * healthy);
  EXPECT_DOUBLE_EQ(restored, healthy);
  EXPECT_EQ(injector.stats().disk_events, 2);
}

TEST(FaultInjectorTest, LinkDegradeCutsEffectiveBandwidth) {
  Simulation sim;
  Cluster cluster(SmallCluster());
  double full = cluster.network().EffectiveBandwidth(0, 2);
  FaultSchedule schedule;
  schedule.DegradeLink(1.0, 0, 2, 4.0).RestoreLink(2.0, 0, 2);
  FaultInjector injector(&sim, &cluster, schedule);
  injector.Arm();

  double degraded = 0.0, healed = 0.0;
  sim.At(1.5, [&] { degraded = cluster.network().EffectiveBandwidth(0, 2); });
  sim.At(2.5, [&] { healed = cluster.network().EffectiveBandwidth(0, 2); });
  sim.Run();
  EXPECT_DOUBLE_EQ(degraded, full / 4.0);
  EXPECT_DOUBLE_EQ(healed, full);
}

TEST(FaultInjectorTest, ListenersSeeEventsInOrder) {
  Simulation sim;
  Cluster cluster(SmallCluster());
  FaultSchedule schedule;
  schedule.CrashNode(2.0, 3).SlowDisk(1.0, 2, 2.0);
  FaultInjector injector(&sim, &cluster, schedule);
  std::vector<FaultKind> seen;
  injector.AddListener(
      [&seen](const FaultEvent& e) { seen.push_back(e.kind); });
  injector.Arm();
  sim.Run();
  EXPECT_EQ(seen,
            (std::vector<FaultKind>{FaultKind::kDiskSlow,
                                    FaultKind::kNodeCrash}));
}

TEST(FaultInjectorTest, EmptyScheduleSchedulesNothing) {
  Simulation sim;
  Cluster cluster(SmallCluster());
  FaultInjector injector(&sim, &cluster, FaultSchedule{});
  injector.Arm();
  EXPECT_EQ(sim.Run(), 0u);
  EXPECT_EQ(injector.nodes_down(), 0);
}

TEST(FaultInjectorTest, ScheduleDerivedQueriesMatchDynamicState) {
  Simulation sim;
  Cluster cluster(SmallCluster());
  FaultSchedule schedule;
  schedule.CrashNode(1.0, 1).RestartNode(3.0, 1).PartitionLink(2.0, 0, 2);
  FaultInjector injector(&sim, &cluster, schedule);
  injector.Arm();
  sim.At(1.5, [&] {
    EXPECT_FALSE(injector.NodeUp(1));
    EXPECT_FALSE(injector.NodeUpAt(1, sim.now()));
    EXPECT_TRUE(injector.LinkUpAt(0, 2, sim.now()));
  });
  sim.At(2.5, [&] { EXPECT_FALSE(injector.LinkUpAt(2, 0, sim.now())); });
  sim.Run();
  EXPECT_TRUE(injector.NodeUpAt(1, 100.0));
}

}  // namespace
}  // namespace joinopt
