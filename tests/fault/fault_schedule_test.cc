#include "joinopt/fault/fault_schedule.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(FaultScheduleTest, EmptyScheduleEverythingUp) {
  FaultSchedule s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.NodeUpAt(0, 0.0));
  EXPECT_TRUE(s.NodeUpAt(7, 1e9));
  EXPECT_TRUE(s.LinkUpAt(0, 1, 50.0));
}

TEST(FaultScheduleTest, CrashAndRestartWindow) {
  FaultSchedule s;
  s.CrashNode(1.0, 3).RestartNode(2.0, 3);
  EXPECT_TRUE(s.NodeUpAt(3, 0.5));
  EXPECT_FALSE(s.NodeUpAt(3, 1.0));  // crash at exactly t applies
  EXPECT_FALSE(s.NodeUpAt(3, 1.5));
  EXPECT_TRUE(s.NodeUpAt(3, 2.0));
  EXPECT_TRUE(s.NodeUpAt(3, 10.0));
  // Other nodes are unaffected.
  EXPECT_TRUE(s.NodeUpAt(2, 1.5));
}

TEST(FaultScheduleTest, RepeatedCrashesLatestWins) {
  FaultSchedule s;
  s.CrashNode(1.0, 0).RestartNode(2.0, 0).CrashNode(3.0, 0);
  EXPECT_FALSE(s.NodeUpAt(0, 1.5));
  EXPECT_TRUE(s.NodeUpAt(0, 2.5));
  EXPECT_FALSE(s.NodeUpAt(0, 3.5));
}

TEST(FaultScheduleTest, PartitionIsUndirected) {
  FaultSchedule s;
  s.PartitionLink(1.0, 2, 5).HealLink(4.0, 5, 2);  // heal names ends swapped
  EXPECT_TRUE(s.LinkUpAt(2, 5, 0.5));
  EXPECT_FALSE(s.LinkUpAt(2, 5, 2.0));
  EXPECT_FALSE(s.LinkUpAt(5, 2, 2.0));
  EXPECT_TRUE(s.LinkUpAt(2, 5, 4.0));
  // Unrelated links unaffected.
  EXPECT_TRUE(s.LinkUpAt(2, 6, 2.0));
}

TEST(FaultScheduleTest, OneWayPartitionIsHalfOpen) {
  FaultSchedule s;
  s.PartitionLinkOneWay(1.0, 2, 5).HealLinkOneWay(4.0, 2, 5);
  // Only the stated 2→5 direction drops; 5→2 keeps flowing throughout.
  EXPECT_TRUE(s.LinkUpAt(2, 5, 0.5));
  EXPECT_FALSE(s.LinkUpAt(2, 5, 2.0));
  EXPECT_TRUE(s.LinkUpAt(5, 2, 2.0));
  EXPECT_TRUE(s.LinkUpAt(2, 5, 4.0));
  EXPECT_TRUE(s.LinkUpAt(5, 2, 4.0));
}

TEST(FaultScheduleTest, OneWayAndSymmetricEventsCompose) {
  FaultSchedule s;
  // Symmetric partition, then a one-way heal of just 3→4: the link comes
  // back half-open (3 can reach 4, 4 still cannot reach 3) until the
  // symmetric heal restores the remaining direction.
  s.PartitionLink(1.0, 3, 4);
  s.HealLinkOneWay(2.0, 3, 4);
  s.HealLink(5.0, 3, 4);
  EXPECT_FALSE(s.LinkUpAt(3, 4, 1.5));
  EXPECT_FALSE(s.LinkUpAt(4, 3, 1.5));
  EXPECT_TRUE(s.LinkUpAt(3, 4, 3.0));
  EXPECT_FALSE(s.LinkUpAt(4, 3, 3.0));
  EXPECT_TRUE(s.LinkUpAt(3, 4, 6.0));
  EXPECT_TRUE(s.LinkUpAt(4, 3, 6.0));
  // A later one-way drop overrides the symmetric heal for its direction.
  s.PartitionLinkOneWay(7.0, 4, 3);
  EXPECT_TRUE(s.LinkUpAt(3, 4, 8.0));
  EXPECT_FALSE(s.LinkUpAt(4, 3, 8.0));
}

TEST(FaultScheduleTest, SortedIsStableByTime) {
  FaultSchedule s;
  s.CrashNode(5.0, 1);
  s.SlowDisk(1.0, 2, 4.0);
  s.CrashNode(1.0, 3);  // same time as SlowDisk: must stay after it
  auto sorted = s.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].kind, FaultKind::kDiskSlow);
  EXPECT_EQ(sorted[1].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(sorted[1].node, 3);
  EXPECT_EQ(sorted[2].node, 1);
}

TEST(FaultScheduleTest, BuilderRecordsFactors) {
  FaultSchedule s;
  s.DegradeLink(1.0, 0, 1, 4.0).SlowDisk(2.0, 3, 10.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.events()[0].factor, 4.0);
  EXPECT_DOUBLE_EQ(s.events()[1].factor, 10.0);
  // Degrade (unlike partition) does not take the link down.
  EXPECT_TRUE(s.LinkUpAt(0, 1, 1.5));
}

}  // namespace
}  // namespace joinopt
