#include "joinopt/baselines/spark_shuffle_join.h"

#include <gtest/gtest.h>

#include "joinopt/harness/runner.h"

namespace joinopt {
namespace {

ClusterConfig Workers(int n) {
  ClusterConfig c;
  c.num_compute_nodes = n;
  c.num_data_nodes = 0;
  c.machine.cores = 4;
  return c;
}

TEST(SparkShuffleJoinTest, RunsAllFourQueries) {
  for (TpcdsQuery q : AllTpcdsQueries()) {
    Simulation sim;
    Cluster cluster(Workers(8));
    auto spec = GetTpcdsQuerySpec(q, 0.2);
    JobResult r = RunSparkShuffleJoin(&sim, &cluster, spec, 100000);
    EXPECT_GT(r.makespan, 0.0) << spec.name;
    EXPECT_GT(r.network_bytes, 0.0) << spec.name;
  }
}

TEST(SparkShuffleJoinTest, MoreJoinsCostMore) {
  Simulation s1, s2;
  Cluster c1(Workers(8)), c2(Workers(8));
  JobResult q3 = RunSparkShuffleJoin(
      &s1, &c1, GetTpcdsQuerySpec(TpcdsQuery::kQ3, 0.2), 100000);
  JobResult q7 = RunSparkShuffleJoin(
      &s2, &c2, GetTpcdsQuerySpec(TpcdsQuery::kQ7, 0.2), 100000);
  EXPECT_GT(q7.makespan, q3.makespan);
}

TEST(SparkShuffleJoinTest, ShuffleVolumeScalesWithFactRows) {
  Simulation s1, s2;
  Cluster c1(Workers(8)), c2(Workers(8));
  auto spec = GetTpcdsQuerySpec(TpcdsQuery::kQ42, 0.2);
  JobResult small = RunSparkShuffleJoin(&s1, &c1, spec, 50000);
  JobResult large = RunSparkShuffleJoin(&s2, &c2, spec, 200000);
  EXPECT_GT(large.network_bytes, small.network_bytes * 2.5);
  EXPECT_GT(large.makespan, small.makespan);
}

TEST(SparkShuffleJoinTest, MoreWorkersGoFaster) {
  Simulation s1, s2;
  Cluster c1(Workers(4)), c2(Workers(16));
  auto spec = GetTpcdsQuerySpec(TpcdsQuery::kQ27, 0.2);
  JobResult few = RunSparkShuffleJoin(&s1, &c1, spec, 200000);
  JobResult many = RunSparkShuffleJoin(&s2, &c2, spec, 200000);
  EXPECT_LT(many.makespan, few.makespan);
}

TEST(SparkShuffleJoinTest, SelectivityShrinksLaterStages) {
  // With total selectivity << 1, doubling only the *later* dims' sizes must
  // matter less than doubling the fact rows.
  Simulation s1, s2;
  Cluster c1(Workers(8)), c2(Workers(8));
  auto spec = GetTpcdsQuerySpec(TpcdsQuery::kQ3, 0.2);
  JobResult base = RunSparkShuffleJoin(&s1, &c1, spec, 100000);
  JobResult doubled = RunSparkShuffleJoin(&s2, &c2, spec, 200000);
  EXPECT_GT(doubled.makespan, base.makespan * 1.3);
}

}  // namespace
}  // namespace joinopt
