#include "joinopt/baselines/annotation_baselines.h"

#include <gtest/gtest.h>

#include "joinopt/harness/runner.h"

namespace joinopt {
namespace {

AnnotationSpots SmallCorpus() {
  AnnotationConfig cfg;
  cfg.num_tokens = 2000;
  cfg.documents = 800;
  cfg.spots_per_doc_mean = 8.0;
  cfg.token_zipf = 1.1;
  cfg.max_model_bytes = 2.0 * 1024 * 1024;
  return GenerateAnnotationSpots(cfg);
}

ClusterConfig SmallCluster() {
  ClusterConfig c;
  c.num_compute_nodes = 4;
  c.num_data_nodes = 4;
  c.machine.cores = 4;
  return c;
}

TEST(AnnotationBaselinesTest, AllBaselinesProcessEverySpot) {
  AnnotationSpots spots = SmallCorpus();
  for (MrBaselineKind kind :
       {MrBaselineKind::kHadoop, MrBaselineKind::kCsaw,
        MrBaselineKind::kFlowJoinLb}) {
    auto result = RunAnnotationBaselineJob(spots, kind, SmallCluster());
    EXPECT_EQ(result.job.tuples_processed, spots.num_spots())
        << MrBaselineKindToString(kind);
    EXPECT_GT(result.job.makespan, 0.0);
  }
}

TEST(AnnotationBaselinesTest, HadoopReplicatesNothing) {
  auto result = RunAnnotationBaselineJob(SmallCorpus(),
                                         MrBaselineKind::kHadoop,
                                         SmallCluster());
  EXPECT_EQ(result.replicated_keys, 0);
}

TEST(AnnotationBaselinesTest, SkewMitigatorsReplicateHeavyKeys) {
  AnnotationSpots spots = SmallCorpus();
  auto csaw = RunAnnotationBaselineJob(spots, MrBaselineKind::kCsaw,
                                       SmallCluster());
  auto flow = RunAnnotationBaselineJob(spots, MrBaselineKind::kFlowJoinLb,
                                       SmallCluster());
  EXPECT_GT(csaw.replicated_keys, 0);
  EXPECT_GT(flow.replicated_keys, 0);
}

TEST(AnnotationBaselinesTest, SkewMitigatorsBeatPlainHadoop) {
  AnnotationSpots spots = SmallCorpus();
  ClusterConfig cluster = SmallCluster();
  auto hadoop =
      RunAnnotationBaselineJob(spots, MrBaselineKind::kHadoop, cluster);
  auto csaw = RunAnnotationBaselineJob(spots, MrBaselineKind::kCsaw, cluster);
  auto flow =
      RunAnnotationBaselineJob(spots, MrBaselineKind::kFlowJoinLb, cluster);
  EXPECT_LT(csaw.job.makespan, hadoop.job.makespan);
  EXPECT_LT(flow.job.makespan, hadoop.job.makespan);
}

TEST(AnnotationBaselinesTest, CostAwareCsawAtLeastMatchesFrequencyOnly) {
  // CSAW accounts for per-key UDF cost; FlowJoinLB only for frequency. On a
  // corpus where cost and frequency are correlated they are close, but CSAW
  // should never be much worse.
  AnnotationSpots spots = SmallCorpus();
  ClusterConfig cluster = SmallCluster();
  auto csaw = RunAnnotationBaselineJob(spots, MrBaselineKind::kCsaw, cluster);
  auto flow =
      RunAnnotationBaselineJob(spots, MrBaselineKind::kFlowJoinLb, cluster);
  EXPECT_LT(csaw.job.makespan, flow.job.makespan * 1.25);
}

TEST(AnnotationBaselinesTest, BaselineClusterUsesAllNodes) {
  ClusterConfig framework = SmallCluster();
  ClusterConfig baseline = BaselineClusterConfig(framework);
  EXPECT_EQ(baseline.num_compute_nodes, 8);
  EXPECT_EQ(baseline.num_data_nodes, 0);
}

}  // namespace
}  // namespace joinopt
