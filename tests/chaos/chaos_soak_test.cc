// Chaos soak harness tests (DESIGN.md §16): the seeded schedule generator
// is deterministic and railed (paired kill/restart, one node dark at a
// time, a kill-free controller-crash segment), the invariant oracle flags
// exactly the contract breaches it claims to, and a short end-to-end soak
// over a real networked deployment passes every gate with zero invariant
// violations.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "joinopt/chaos/chaos_runner.h"
#include "joinopt/chaos/invariant_oracle.h"
#include "joinopt/common/hash.h"
#include "joinopt/common/random.h"

namespace joinopt {
namespace {

TEST(ChaosScheduleTest, SameSeedSameSchedule) {
  ChaosSoakOptions opts;
  Rng a(42), b(42);
  FaultSchedule sa = BuildSoakSchedule(opts, /*fault_window=*/40.0, a);
  FaultSchedule sb = BuildSoakSchedule(opts, /*fault_window=*/40.0, b);
  ASSERT_EQ(sa.size(), sb.size());
  std::vector<FaultEvent> ea = sa.Sorted(), eb = sb.Sorted();
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].kind, eb[i].kind) << "event " << i;
    EXPECT_EQ(ea[i].node, eb[i].node) << "event " << i;
    EXPECT_EQ(ea[i].peer, eb[i].peer) << "event " << i;
    EXPECT_DOUBLE_EQ(ea[i].time, eb[i].time) << "event " << i;
  }
  Rng c(43);
  FaultSchedule sc = BuildSoakSchedule(opts, /*fault_window=*/40.0, c);
  bool differs = sc.size() != sa.size();
  if (!differs) {
    std::vector<FaultEvent> ec = sc.Sorted();
    for (size_t i = 0; i < ec.size(); ++i) {
      if (ec[i].kind != ea[i].kind || ec[i].node != ea[i].node ||
          ec[i].time != ea[i].time) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs) << "different seeds produced the identical scenario";
}

TEST(ChaosScheduleTest, RailsHoldAcrossSeedsAndWindows) {
  ChaosSoakOptions opts;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (double window : {10.0, 25.0, 60.0}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " window=" + std::to_string(window));
      Rng rng(seed);
      std::vector<FaultEvent> events =
          BuildSoakSchedule(opts, window, rng).Sorted();

      int kills = 0, restarts = 0, partitions = 0, controller_crashes = 0;
      std::set<NodeId> dark;
      bool controller_dark = false;
      for (const FaultEvent& e : events) {
        EXPECT_GE(e.time, 0.0);
        EXPECT_LE(e.time, window + 1e-9);
        switch (e.kind) {
          case FaultKind::kNodeCrash:
            ++kills;
            EXPECT_TRUE(dark.empty())
                << "two nodes dark at once at t=" << e.time;
            EXPECT_FALSE(controller_dark)
                << "node killed inside the controller-crash segment";
            dark.insert(e.node);
            break;
          case FaultKind::kNodeRestart:
            ++restarts;
            EXPECT_EQ(dark.count(e.node), 1u)
                << "restart of a node that was never killed";
            dark.erase(e.node);
            break;
          case FaultKind::kControllerCrash:
            ++controller_crashes;
            EXPECT_TRUE(dark.empty())
                << "controller crashed while a data node was dark";
            controller_dark = true;
            break;
          case FaultKind::kControllerRestart:
            controller_dark = false;
            break;
          case FaultKind::kLinkPartitionOneWay:
          case FaultKind::kLinkHealOneWay:
            if (e.kind == FaultKind::kLinkPartitionOneWay) ++partitions;
            EXPECT_NE(e.node, e.peer);
            // Identities span the data nodes plus the compute side.
            EXPECT_GE(e.node, 0);
            EXPECT_LE(e.node, opts.num_nodes);
            EXPECT_GE(e.peer, 0);
            EXPECT_LE(e.peer, opts.num_nodes);
            break;
          default:
            ADD_FAILURE() << "unexpected fault kind in a soak schedule: "
                          << FaultKindToString(e.kind);
        }
      }
      EXPECT_TRUE(dark.empty()) << "a killed node was never restarted";
      EXPECT_GE(kills, 2);
      EXPECT_EQ(restarts, kills);
      EXPECT_GE(partitions, 1);
      EXPECT_EQ(controller_crashes, 1);
    }
  }
}

TEST(ChaosOracleTest, FlagsLostDurableWriteAndCorruption) {
  InvariantOracle oracle(ReadConsistency::kOwnerOnly);
  const Key key = 1;
  const uint64_t hash = Fnv1a("value-b");
  oracle.RecordPut(key, /*version=*/5, hash, /*durable=*/true);
  EXPECT_EQ(oracle.ReadFloor(key), 5u);

  // A read below the durable floor in a strict mode is a lost write.
  uint64_t floor = oracle.ReadFloor(key);
  oracle.CheckRead(key, floor, /*found=*/true, /*version=*/3, Fnv1a("old"),
                   /*value_matches_key=*/true);
  EXPECT_EQ(oracle.stats().violations, 1);

  // At-floor with matching bytes: clean.
  oracle.CheckRead(key, floor, true, 5, hash, true);
  EXPECT_EQ(oracle.stats().violations, 1);

  // Same version, different bytes: corruption.
  oracle.CheckRead(key, floor, true, 5, Fnv1a("tampered"), true);
  EXPECT_EQ(oracle.stats().violations, 2);

  // A durable write must not be NotFound.
  oracle.CheckRead(key, floor, /*found=*/false, 0, 0, true);
  EXPECT_EQ(oracle.stats().violations, 3);
  EXPECT_EQ(oracle.stats().reads_checked, 4);
  EXPECT_FALSE(oracle.violations().empty());
}

TEST(ChaosOracleTest, AnyModePromisesValidityNotFreshness) {
  InvariantOracle oracle(ReadConsistency::kAny);
  const Key key = 2;
  oracle.RecordPut(key, 9, Fnv1a("fresh"), /*durable=*/true);
  uint64_t floor = oracle.ReadFloor(key);
  // Stale is allowed under kAny...
  oracle.CheckRead(key, floor, true, /*version=*/4, Fnv1a("stale-bytes"),
                   /*value_matches_key=*/true);
  EXPECT_EQ(oracle.stats().violations, 0);
  // ...but cross-key bytes never are.
  oracle.CheckRead(key, floor, true, 4, Fnv1a("stale-bytes"),
                   /*value_matches_key=*/false);
  EXPECT_EQ(oracle.stats().violations, 1);
}

TEST(ChaosRunnerTest, ReadVmRssKbReportsTheProcess) {
  int64_t rss = ReadVmRssKb();
  // Linux CI always has /proc; tolerate -1 only elsewhere.
  EXPECT_GT(rss, 0) << "VmRSS unavailable";
}

// End-to-end: a short but complete soak — real sockets, live anti-entropy,
// >=2 kills/restarts, a half-open partition and a controller crash — must
// pass every gate. This is the same path CI's 60 s job gates on, kept
// short enough for the tier-1 suite.
TEST(ChaosRunnerTest, ShortSoakPassesAllGates) {
  ChaosSoakOptions opts;
  opts.seconds = 8.0;
  opts.seed = 1;
  opts.num_nodes = 3;
  opts.replication_factor = 3;
  opts.workload_threads = 3;
  opts.num_keys = 128;
  opts.value_bytes = 32;

  ChaosSoakReport report = RunChaosSoak(opts);

  for (const std::string& f : report.failures) {
    ADD_FAILURE() << "gate failed: " << f;
  }
  for (const std::string& v : report.violation_samples) {
    ADD_FAILURE() << "invariant violation: " << v;
  }
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.oracle.violations, 0);
  EXPECT_GE(report.kills, 2);
  EXPECT_GE(report.restarts, 2);
  EXPECT_GE(report.partitions, 1);
  EXPECT_EQ(report.controller_crashes, 1);
  EXPECT_GT(report.workload.ops, 0);
  EXPECT_GT(report.oracle.reads_checked, 0);
  EXPECT_GT(report.oracle.durable_puts, 0);
}

}  // namespace
}  // namespace joinopt
