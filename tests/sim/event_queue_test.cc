#include "joinopt/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace joinopt {
namespace {

TEST(SimulationTest, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulationTest, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.Schedule(1.0, chain);
  };
  sim.Schedule(1.0, chain);
  sim.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulationTest, RunUntilStopsBeforeLaterEvents) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(10.0, [&] { ++fired; });
  sim.Run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  double when = -1;
  sim.Schedule(2.0, [&] {
    sim.Schedule(-5.0, [&] { when = sim.now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(when, 2.0);
}

TEST(SimulationTest, AtClampsPastTimes) {
  Simulation sim;
  double when = -1;
  sim.Schedule(3.0, [&] {
    sim.At(1.0, [&] { when = sim.now(); });  // in the past: runs "now"
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(when, 3.0);
}

TEST(SimulationTest, StopHaltsRun) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1.0, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2.0, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, StepExecutesOneEvent) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulationTest, StepRespectsUntil) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(5.0, [&] { ++fired; });
  EXPECT_FALSE(sim.Step(4.0));
  EXPECT_EQ(fired, 0);
}

TEST(SimulationTest, CountsExecutedEvents) {
  Simulation sim;
  for (int i = 0; i < 17; ++i) sim.Schedule(static_cast<double>(i), [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 17u);
}

TEST(SimulationTest, RunToUntilAdvancesClockWhenIdle) {
  Simulation sim;
  sim.Run(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

}  // namespace
}  // namespace joinopt
