#include "joinopt/sim/resource.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(FifoServerTest, IdleServerStartsImmediately) {
  FifoServer s;
  EXPECT_DOUBLE_EQ(s.Reserve(10.0, 2.0), 12.0);
  EXPECT_DOUBLE_EQ(s.busy_time(), 2.0);
}

TEST(FifoServerTest, BusyServerQueues) {
  FifoServer s;
  s.Reserve(0.0, 5.0);
  // Second job at t=1 must wait until t=5.
  EXPECT_DOUBLE_EQ(s.Reserve(1.0, 2.0), 7.0);
  EXPECT_DOUBLE_EQ(s.queue_delay().max(), 4.0);
}

TEST(FifoServerTest, GapsLeaveServerIdle) {
  FifoServer s;
  s.Reserve(0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.Reserve(10.0, 1.0), 11.0);
  EXPECT_DOUBLE_EQ(s.busy_time(), 2.0);
}

TEST(FifoServerTest, BacklogReflectsQueuedWork) {
  FifoServer s;
  EXPECT_DOUBLE_EQ(s.Backlog(0.0), 0.0);
  s.Reserve(0.0, 5.0);
  EXPECT_DOUBLE_EQ(s.Backlog(2.0), 3.0);
  EXPECT_DOUBLE_EQ(s.Backlog(6.0), 0.0);
}

TEST(MultiServerTest, ParallelJobsUseAllCores) {
  MultiServer s(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(s.Reserve(0.0, 3.0), 3.0);
  }
  // Fifth job queues behind the earliest core.
  EXPECT_DOUBLE_EQ(s.Reserve(0.0, 3.0), 6.0);
}

TEST(MultiServerTest, SingleCoreBehavesLikeFifo) {
  MultiServer s(1);
  EXPECT_DOUBLE_EQ(s.Reserve(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(s.Reserve(0.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(s.Reserve(5.0, 2.0), 7.0);
}

TEST(MultiServerTest, JobsGoToEarliestFreeCore) {
  MultiServer s(2);
  s.Reserve(0.0, 10.0);  // core A busy till 10
  s.Reserve(0.0, 1.0);   // core B busy till 1
  EXPECT_DOUBLE_EQ(s.Reserve(2.0, 1.0), 3.0);  // core B, idle since 1
}

TEST(MultiServerTest, MakespanOfUniformJobs) {
  // 100 jobs of 1s on 8 cores: ceil(100/8) waves -> last completes at 13.
  MultiServer s(8);
  double last = 0;
  for (int i = 0; i < 100; ++i) last = std::max(last, s.Reserve(0.0, 1.0));
  EXPECT_DOUBLE_EQ(last, 13.0);
  EXPECT_DOUBLE_EQ(s.busy_time(), 100.0);
}

TEST(MultiServerTest, BacklogSumsOverCores) {
  MultiServer s(2);
  s.Reserve(0.0, 4.0);
  s.Reserve(0.0, 2.0);
  EXPECT_DOUBLE_EQ(s.Backlog(1.0), 3.0 + 1.0);
  EXPECT_DOUBLE_EQ(s.Backlog(5.0), 0.0);
}

TEST(MultiServerTest, EarliestStartTracksFreeCore) {
  MultiServer s(2);
  EXPECT_DOUBLE_EQ(s.EarliestStart(3.0), 3.0);
  s.Reserve(0.0, 10.0);
  s.Reserve(0.0, 6.0);
  EXPECT_DOUBLE_EQ(s.EarliestStart(0.0), 6.0);
}

TEST(MultiServerTest, CountsJobs) {
  MultiServer s(3);
  for (int i = 0; i < 7; ++i) s.Reserve(0.0, 0.5);
  EXPECT_EQ(s.jobs(), 7);
}

}  // namespace
}  // namespace joinopt
