#include "joinopt/sim/network.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

NetworkConfig TestConfig() {
  NetworkConfig c;
  c.bandwidth_bytes_per_sec = 1000.0;  // 1000 B/s for easy math
  c.latency = 0.5;
  c.per_message_overhead_bytes = 0.0;
  return c;
}

TEST(NetworkTest, SingleTransferTime) {
  Network net(2, TestConfig());
  // 1000 bytes at 1000 B/s on egress, then ingress, then latency.
  double arrival = net.Transfer(0, 1, 1000.0, 0.0);
  EXPECT_DOUBLE_EQ(arrival, 1.0 + 1.0 + 0.5);
}

TEST(NetworkTest, SenderSerializesConcurrentTransfers) {
  Network net(3, TestConfig());
  double a1 = net.Transfer(0, 1, 1000.0, 0.0);
  double a2 = net.Transfer(0, 2, 1000.0, 0.0);
  // Second message waits for the first on node 0's egress link.
  EXPECT_GT(a2, a1);
  EXPECT_DOUBLE_EQ(a2, 2.0 + 1.0 + 0.5);
}

TEST(NetworkTest, ReceiverIncastSerializes) {
  Network net(3, TestConfig());
  double a1 = net.Transfer(0, 2, 1000.0, 0.0);
  double a2 = net.Transfer(1, 2, 1000.0, 0.0);
  EXPECT_DOUBLE_EQ(a1, 2.5);
  // Node 1's egress is free, but node 2's ingress is busy until t=2.
  EXPECT_DOUBLE_EQ(a2, 3.5);
}

TEST(NetworkTest, LoopbackSkipsNic) {
  Network net(2, TestConfig());
  double arrival = net.Transfer(0, 0, 1e9, 0.0);
  EXPECT_LT(arrival, 0.1);
  EXPECT_DOUBLE_EQ(net.egress(0).busy_time(), 0.0);
}

TEST(NetworkTest, OverheadAddsBytes) {
  NetworkConfig c = TestConfig();
  c.per_message_overhead_bytes = 500.0;
  Network net(2, c);
  double arrival = net.Transfer(0, 1, 500.0, 0.0);
  EXPECT_DOUBLE_EQ(arrival, 1.0 + 1.0 + 0.5);
}

TEST(NetworkTest, EffectiveBandwidthIsMinOfEndpoints) {
  Network net(3, TestConfig());
  net.SetNodeBandwidth(1, 100.0);
  EXPECT_DOUBLE_EQ(net.EffectiveBandwidth(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(net.EffectiveBandwidth(0, 2), 1000.0);
}

TEST(NetworkTest, HeterogeneousBandwidthSlowsTransfer) {
  Network net(2, TestConfig());
  net.SetNodeBandwidth(1, 100.0);
  double arrival = net.Transfer(0, 1, 1000.0, 0.0);
  // Egress at 1000 B/s (1s), ingress at 100 B/s (10s), latency.
  EXPECT_DOUBLE_EQ(arrival, 1.0 + 10.0 + 0.5);
}

TEST(NetworkTest, AccountsTraffic) {
  Network net(2, TestConfig());
  net.Transfer(0, 1, 100.0, 0.0);
  net.Transfer(1, 0, 200.0, 0.0);
  EXPECT_DOUBLE_EQ(net.total_bytes_transferred(), 300.0);
  EXPECT_EQ(net.total_messages(), 2);
}

}  // namespace
}  // namespace joinopt
