#include "joinopt/sim/cluster.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig c;
  c.num_compute_nodes = 3;
  c.num_data_nodes = 2;
  c.machine.cores = 4;
  return c;
}

TEST(ClusterTest, CreatesAllNodes) {
  Cluster cluster(SmallConfig());
  EXPECT_EQ(cluster.num_nodes(), 5);
  EXPECT_EQ(cluster.num_compute_nodes(), 3);
  EXPECT_EQ(cluster.num_data_nodes(), 2);
}

TEST(ClusterTest, RoleMappingIsConsistent) {
  Cluster cluster(SmallConfig());
  EXPECT_EQ(cluster.compute_node(0).id(), 0);
  EXPECT_EQ(cluster.compute_node(2).id(), 2);
  EXPECT_EQ(cluster.data_node(0).id(), 3);
  EXPECT_EQ(cluster.data_node(1).id(), 4);
  EXPECT_FALSE(cluster.is_data_node(2));
  EXPECT_TRUE(cluster.is_data_node(3));
  EXPECT_EQ(cluster.data_node_id(1), 4);
}

TEST(ClusterTest, NodesHaveConfiguredCores) {
  Cluster cluster(SmallConfig());
  EXPECT_EQ(cluster.node(0).cpu().cores(), 4);
}

TEST(ClusterTest, DiskServiceTimeFollowsModel) {
  ClusterConfig c = SmallConfig();
  c.machine.disk.seek_time = 0.01;
  c.machine.disk.bandwidth_bytes_per_sec = 1000.0;
  Cluster cluster(c);
  EXPECT_DOUBLE_EQ(cluster.node(0).DiskServiceTime(500.0), 0.01 + 0.5);
}

TEST(ClusterTest, NetworkSpansAllNodes) {
  Cluster cluster(SmallConfig());
  EXPECT_EQ(cluster.network().num_nodes(), 5);
}

TEST(ClusterTest, TotalCpuBusyAggregates) {
  Cluster cluster(SmallConfig());
  cluster.node(0).cpu().Reserve(0.0, 2.0);
  cluster.node(4).cpu().Reserve(0.0, 3.0);
  EXPECT_DOUBLE_EQ(cluster.TotalCpuBusy(), 5.0);
}

TEST(ClusterTest, PaperScaleCluster) {
  ClusterConfig c;  // defaults: 10 + 10 nodes, 8 cores
  Cluster cluster(c);
  EXPECT_EQ(cluster.num_nodes(), 20);
  EXPECT_EQ(cluster.node(0).cpu().cores(), 8);
}

}  // namespace
}  // namespace joinopt
