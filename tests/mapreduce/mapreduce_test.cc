#include "joinopt/mapreduce/mapreduce.h"

#include <gtest/gtest.h>

#include "joinopt/common/random.h"

namespace joinopt {
namespace {

struct MrRig {
  Simulation sim;
  Cluster cluster;
  std::vector<Key> records;
  std::vector<double> value_bytes;
  std::vector<double> udf_cost;

  explicit MrRig(int nodes = 4)
      : cluster([&nodes] {
          ClusterConfig c;
          c.num_compute_nodes = nodes;
          c.num_data_nodes = 0;
          c.machine.cores = 4;
          return c;
        }()) {}

  void MakeKeys(int num_keys, double sv, double cost) {
    value_bytes.assign(static_cast<size_t>(num_keys), sv);
    udf_cost.assign(static_cast<size_t>(num_keys), cost);
  }

  MapReduceJoinSpec Spec(int partitions) {
    MapReduceJoinSpec s;
    s.records = &records;
    s.value_bytes = &value_bytes;
    s.udf_cost = &udf_cost;
    s.num_partitions = partitions;
    s.partitioner = [partitions](Key k, int64_t) {
      return static_cast<int>(Mix64(k) % static_cast<uint64_t>(partitions));
    };
    return s;
  }
};

TEST(MapReduceTest, ProcessesAllRecords) {
  MrRig rig;
  rig.MakeKeys(100, 1024, 1e-3);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    rig.records.push_back(rng.NextBounded(100));
  }
  JobResult r = RunMapReduceJoin(&rig.sim, &rig.cluster, rig.Spec(16), {});
  EXPECT_EQ(r.tuples_processed, 5000);
  EXPECT_EQ(r.udf_invocations, 5000);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.network_bytes, 0.0);
}

TEST(MapReduceTest, UniformKeysBalanceWell) {
  MrRig rig(4);
  rig.MakeKeys(10000, 1024, 1e-3);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    rig.records.push_back(rng.NextBounded(10000));
  }
  JobResult r = RunMapReduceJoin(&rig.sim, &rig.cluster, rig.Spec(32), {});
  EXPECT_LT(r.compute_cpu_skew, 1.3);
}

TEST(MapReduceTest, HeavyHitterCreatesStraggler) {
  MrRig skewed(4), uniform(4);
  skewed.MakeKeys(1000, 1024, 1e-3);
  uniform.MakeKeys(1000, 1024, 1e-3);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    // 60% of records hit key 7.
    skewed.records.push_back(rng.Bernoulli(0.6) ? 7 : rng.NextBounded(1000));
    uniform.records.push_back(rng.NextBounded(1000));
  }
  JobResult rs =
      RunMapReduceJoin(&skewed.sim, &skewed.cluster, skewed.Spec(32), {});
  JobResult ru =
      RunMapReduceJoin(&uniform.sim, &uniform.cluster, uniform.Spec(32), {});
  EXPECT_GT(rs.makespan, ru.makespan * 2);
  EXPECT_GT(rs.compute_cpu_skew, 1.5);
}

TEST(MapReduceTest, SprayPartitionerRemovesHeavyHitterSkew) {
  MrRig rig(4);
  rig.MakeKeys(1000, 1024, 1e-3);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    rig.records.push_back(rng.Bernoulli(0.6) ? 7 : rng.NextBounded(1000));
  }
  MapReduceJoinSpec spec = rig.Spec(32);
  spec.partitioner = [](Key k, int64_t i) {
    if (k == 7) return static_cast<int>(i % 32);  // replicate key 7
    return static_cast<int>(Mix64(k) % 32);
  };
  JobResult r = RunMapReduceJoin(&rig.sim, &rig.cluster, spec, {});
  EXPECT_LT(r.compute_cpu_skew, 1.4);
}

TEST(MapReduceTest, ExpensiveUdfKeyDominatesWithoutCostAwareness) {
  // One moderately frequent key with a 100x UDF cost: frequency-based
  // replication won't catch it, cost-aware (CSAW-style) will.
  MrRig rig(4);
  rig.MakeKeys(1000, 1024, 1e-3);
  rig.udf_cost[42] = 0.1;
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    rig.records.push_back(rng.Bernoulli(0.05) ? 42 : rng.NextBounded(1000));
  }
  JobResult hashed = RunMapReduceJoin(&rig.sim, &rig.cluster, rig.Spec(32), {});
  EXPECT_GT(hashed.compute_cpu_skew, 1.5);
}

TEST(MapReduceTest, MorePartitionsSmoothLoad) {
  MrRig coarse(4), fine(4);
  coarse.MakeKeys(64, 1024, 2e-3);
  fine.MakeKeys(64, 1024, 2e-3);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    Key k = rng.NextBounded(64);
    coarse.records.push_back(k);
    fine.records.push_back(k);
  }
  JobResult rc =
      RunMapReduceJoin(&coarse.sim, &coarse.cluster, coarse.Spec(4), {});
  JobResult rf = RunMapReduceJoin(&fine.sim, &fine.cluster, fine.Spec(32), {});
  EXPECT_LE(rf.makespan, rc.makespan * 1.05);
}

}  // namespace
}  // namespace joinopt
