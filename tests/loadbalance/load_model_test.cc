#include "joinopt/loadbalance/load_model.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

SizeParams SimpleSizes() {
  SizeParams s;
  s.sk = 10;
  s.sp = 90;
  s.sv = 1000;
  s.scv = 100;
  return s;
}

TEST(LoadModelTest, CompCpuDecreasesInD) {
  ComputeNodeStats cn;
  cn.tcc = 0.1;
  DataNodeLocalStats dn;
  BatchLoadModel m = BuildLoadModel(cn, dn, SimpleSizes(), 100);
  EXPECT_LT(m.comp_cpu.slope, 0.0);
  EXPECT_GT(m.comp_cpu.At(0), m.comp_cpu.At(100));
}

TEST(LoadModelTest, DataCpuIncreasesInD) {
  ComputeNodeStats cn;
  DataNodeLocalStats dn;
  dn.tcd = 0.1;
  BatchLoadModel m = BuildLoadModel(cn, dn, SimpleSizes(), 100);
  EXPECT_GT(m.data_cpu.slope, 0.0);
  EXPECT_DOUBLE_EQ(m.data_cpu.At(0), 0.0);
  EXPECT_DOUBLE_EQ(m.data_cpu.At(50), 5.0);
}

TEST(LoadModelTest, NetworkSlopePrefersComputedResponsesWhenSmall) {
  // scv < sv: each request computed at the data node sends back scv
  // instead of sv, so both network loads decrease in d.
  ComputeNodeStats cn;
  DataNodeLocalStats dn;
  BatchLoadModel m = BuildLoadModel(cn, dn, SimpleSizes(), 100);
  EXPECT_LT(m.comp_net.slope, 0.0);
  EXPECT_LT(m.data_net.slope, 0.0);
}

TEST(LoadModelTest, NetworkSlopeFlipsWhenComputedValuesAreLarge) {
  SizeParams s = SimpleSizes();
  s.scv = 5000;  // UDF inflates the data
  ComputeNodeStats cn;
  DataNodeLocalStats dn;
  BatchLoadModel m = BuildLoadModel(cn, dn, s, 100);
  EXPECT_GT(m.comp_net.slope, 0.0);
  EXPECT_GT(m.data_net.slope, 0.0);
}

TEST(LoadModelTest, CpuWorkDividedByCores) {
  ComputeNodeStats cn;
  cn.tcc = 0.1;
  cn.cores = 1;
  DataNodeLocalStats dn;
  dn.tcd = 0.1;
  dn.cores = 4;
  BatchLoadModel m = BuildLoadModel(cn, dn, SimpleSizes(), 100);
  EXPECT_DOUBLE_EQ(m.data_cpu.At(40), 0.1 * 40 / 4);
  EXPECT_DOUBLE_EQ(m.comp_cpu.At(100), 0.0);  // all work shipped to data
}

TEST(LoadModelTest, PendingWorkRaisesIntercepts) {
  ComputeNodeStats cn;
  cn.tcc = 0.1;
  cn.lcc = 50;
  DataNodeLocalStats dn;
  dn.tcd = 0.1;
  dn.rd_all = 30;
  BatchLoadModel m = BuildLoadModel(cn, dn, SimpleSizes(), 10);
  ComputeNodeStats cn0;
  cn0.tcc = 0.1;
  DataNodeLocalStats dn0;
  dn0.tcd = 0.1;
  BatchLoadModel m0 = BuildLoadModel(cn0, dn0, SimpleSizes(), 10);
  EXPECT_GT(m.comp_cpu.intercept, m0.comp_cpu.intercept);
  EXPECT_GT(m.data_cpu.intercept, m0.data_cpu.intercept);
}

TEST(LoadModelTest, CompletionTimeIsMaxOfComponents) {
  BatchLoadModel m;
  m.comp_cpu = {10, 0};
  m.comp_net = {0, 0.5};
  m.data_cpu = {0, 0};
  m.data_net = {2, 0};
  m.batch_size = 100;
  EXPECT_DOUBLE_EQ(m.CompletionTime(0), 10.0);
  EXPECT_DOUBLE_EQ(m.CompletionTime(40), 20.0);
}

TEST(LoadModelTest, SubgradientPicksActiveComponent) {
  BatchLoadModel m;
  m.comp_cpu = {10, -0.1};
  m.data_cpu = {0, 0.2};
  m.comp_net = {0, 0};
  m.data_net = {0, 0};
  m.batch_size = 100;
  EXPECT_DOUBLE_EQ(m.Subgradient(0), -0.1);    // comp_cpu active
  EXPECT_DOUBLE_EQ(m.Subgradient(100), 0.2);   // data_cpu active
}

TEST(LoadModelTest, BalancedClusterCrossoverNearHalf) {
  // Symmetric nodes, pure CPU workload: the optimum splits the batch in
  // proportion to capacity — here 50/50.
  ComputeNodeStats cn;
  cn.tcc = 0.1;
  cn.cores = 8;
  DataNodeLocalStats dn;
  dn.tcd = 0.1;
  dn.cores = 8;
  SizeParams tiny;
  tiny.sk = tiny.sp = tiny.sv = tiny.scv = 1;  // network negligible
  cn.net_bw = dn.net_bw = 1e12;
  BatchLoadModel m = BuildLoadModel(cn, dn, tiny, 100);
  double at_half = m.CompletionTime(50);
  EXPECT_LT(at_half, m.CompletionTime(0));
  EXPECT_LT(at_half, m.CompletionTime(100));
}

}  // namespace
}  // namespace joinopt
