#include "joinopt/loadbalance/gradient_descent.h"

#include <gtest/gtest.h>

#include "joinopt/common/random.h"

namespace joinopt {
namespace {

BatchLoadModel MakeModel(AffineLoad a, AffineLoad b, AffineLoad c,
                         AffineLoad d, double batch) {
  BatchLoadModel m;
  m.comp_cpu = a;
  m.comp_net = b;
  m.data_cpu = c;
  m.data_net = d;
  m.batch_size = batch;
  return m;
}

TEST(GradientDescentTest, FindsInteriorKink) {
  // comp_cpu decreasing, data_cpu increasing; optimum where they cross:
  // 10 - 0.1 d = 0.2 d -> d = 33.33.
  BatchLoadModel m = MakeModel({10, -0.1}, {0, 0}, {0, 0.2}, {0, 0}, 100);
  double d = GradientDescentMinimize(m);
  EXPECT_NEAR(d, 100.0 / 3.0, 0.5);
}

TEST(GradientDescentTest, BoundarySolutionAtZero) {
  // Everything increasing in d: best is d = 0.
  BatchLoadModel m = MakeModel({0, 0.1}, {0, 0}, {0, 0.2}, {0, 0}, 100);
  EXPECT_NEAR(GradientDescentMinimize(m), 0.0, 0.5);
}

TEST(GradientDescentTest, BoundarySolutionAtB) {
  // Everything decreasing: best is d = b.
  BatchLoadModel m = MakeModel({10, -0.1}, {5, -0.01}, {0, 0}, {0, 0}, 100);
  EXPECT_NEAR(GradientDescentMinimize(m), 100.0, 0.5);
}

TEST(GradientDescentTest, FlatObjectiveReturnsValidPoint) {
  BatchLoadModel m = MakeModel({5, 0}, {5, 0}, {5, 0}, {5, 0}, 100);
  double d = GradientDescentMinimize(m);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 100.0);
}

TEST(GradientDescentTest, ZeroBatch) {
  BatchLoadModel m = MakeModel({1, -1}, {0, 0}, {0, 1}, {0, 0}, 0);
  EXPECT_DOUBLE_EQ(GradientDescentMinimize(m), 0.0);
}

TEST(ExactMinimizeTest, MatchesAnalyticOptimum) {
  BatchLoadModel m = MakeModel({10, -0.1}, {0, 0}, {0, 0.2}, {0, 0}, 100);
  EXPECT_NEAR(ExactMinimize(m), 100.0 / 3.0, 1e-9);
}

// Property: on random convex instances, gradient descent lands within a
// small relative gap of the exact optimum — justifying the paper's "cheap
// heuristic" claim (the objective is convex, so there are no bad local
// minima to get stuck in).
class GdVsExactProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GdVsExactProperty, NearOptimal) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    auto rand_affine = [&](double sign_bias) {
      double intercept = rng.NextDouble() * 100.0;
      double slope = (rng.NextDouble() - sign_bias) * 2.0;
      return AffineLoad{intercept, slope};
    };
    double b = 1.0 + static_cast<double>(rng.NextBounded(1000));
    BatchLoadModel m = MakeModel(rand_affine(0.8), rand_affine(0.5),
                                 rand_affine(0.2), rand_affine(0.5), b);
    double d_gd = GradientDescentMinimize(m);
    double d_exact = ExactMinimize(m);
    double v_gd = m.CompletionTime(d_gd);
    double v_exact = m.CompletionTime(d_exact);
    ASSERT_GE(v_gd, v_exact - 1e-9);
    // Gap bounded at 2.5% of the objective's magnitude (random instances
    // may have negative values, so scale by |v_exact|).
    EXPECT_LE(v_gd - v_exact, 0.025 * std::max(std::abs(v_exact), 1.0))
        << "trial " << trial << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GdVsExactProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(GradientDescentTest, RespectsStartFraction) {
  GradientDescentOptions opt;
  opt.start_fraction = 0.0;
  BatchLoadModel m = MakeModel({10, -0.1}, {0, 0}, {0, 0.2}, {0, 0}, 100);
  EXPECT_NEAR(GradientDescentMinimize(m, opt), 100.0 / 3.0, 0.5);
  opt.start_fraction = 1.0;
  EXPECT_NEAR(GradientDescentMinimize(m, opt), 100.0 / 3.0, 0.5);
}

}  // namespace
}  // namespace joinopt
