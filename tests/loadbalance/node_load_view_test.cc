#include "joinopt/loadbalance/node_load_view.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace joinopt {
namespace {

TEST(NodeLoadViewTest, OutstandingAccounting) {
  NodeLoadView view(3);
  view.StartRequest(1);
  view.StartRequest(1);
  view.StartRequest(2);
  EXPECT_EQ(view.Outstanding(0), 0);
  EXPECT_EQ(view.Outstanding(1), 2);
  EXPECT_EQ(view.Outstanding(2), 1);
  view.FinishRequest(1, 1e-3);
  EXPECT_EQ(view.Outstanding(1), 1);
  EXPECT_EQ(view.stats().latency_observations, 1);
  // latency < 0 means "no observation" (the failed-exchange contract).
  view.FinishRequest(2, -1.0);
  EXPECT_EQ(view.stats().latency_observations, 1);
}

TEST(NodeLoadViewTest, ExpectedSecondsFallsBackToCostModel) {
  NodeLoadView view(2);
  // No signal at all: the uniform prior, equal across nodes.
  EXPECT_DOUBLE_EQ(view.ExpectedSeconds(0), view.ExpectedSeconds(1));
  // Cost estimates only: the (tCompute + tFetch)/2 proxy.
  view.ObserveCostEstimates(0, 4e-3, 2e-3);
  EXPECT_NEAR(view.ExpectedSeconds(0), 3e-3, 1e-9);
  // A direct latency observation takes over from the proxy.
  view.StartRequest(0);
  view.FinishRequest(0, 10e-3);
  EXPECT_NEAR(view.ExpectedSeconds(0), 10e-3, 1e-9);
}

TEST(NodeLoadViewTest, LoadScoreScalesWithQueueDepth) {
  NodeLoadView view(1);
  view.StartRequest(0);
  view.FinishRequest(0, 2e-3);
  double idle = view.LoadScore(0);
  view.StartRequest(0);
  view.StartRequest(0);
  EXPECT_NEAR(view.LoadScore(0), 3 * idle, 1e-9);
}

TEST(NodeLoadViewTest, TwoChoicesAvoidsDegradedNode) {
  NodeLoadView view(3, /*seed=*/99);
  // Node 1 is 100x slower than its peers (a constant-slow straggler —
  // exactly the case outstanding-only balancing is blind to when idle).
  for (int i = 0; i < 50; ++i) {
    for (NodeId n : {0, 1, 2}) {
      view.StartRequest(n);
      view.FinishRequest(n, n == 1 ? 100e-3 : 1e-3);
    }
  }
  std::vector<NodeId> candidates{0, 1, 2};
  int picked_degraded = 0;
  const int kPicks = 1000;
  for (int i = 0; i < kPicks; ++i) {
    if (view.PickTwoChoices(candidates) == 1) ++picked_degraded;
  }
  // Node 1 wins only when the sampler draws {1} against itself — which
  // PickTwoChoices never does (two distinct indices) — so it is shut out.
  EXPECT_EQ(picked_degraded, 0);
  EXPECT_EQ(view.stats().picks, kPicks);
  EXPECT_EQ(view.stats().two_choice_picks, kPicks);
}

TEST(NodeLoadViewTest, TwoChoicesSpreadsAcrossEqualNodes) {
  NodeLoadView view(4, /*seed=*/7);
  std::vector<NodeId> candidates{0, 1, 2, 3};
  std::vector<int> hits(4, 0);
  const int kPicks = 8000;
  for (int i = 0; i < kPicks; ++i) {
    NodeId n = view.PickTwoChoices(candidates);
    // Simulate an instantaneous request so outstanding stays zero and only
    // the sampler's uniformity is on trial.
    view.StartRequest(n);
    view.FinishRequest(n, 1e-3);
    ++hits[static_cast<size_t>(n)];
  }
  for (int n = 0; n < 4; ++n) {
    EXPECT_GT(hits[static_cast<size_t>(n)], kPicks / 8)
        << "node " << n << " starved";
  }
}

TEST(NodeLoadViewTest, SingleCandidateShortCircuits) {
  NodeLoadView view(2, /*seed=*/3);
  std::vector<NodeId> only{1};
  EXPECT_EQ(view.PickTwoChoices(only), 1);
  EXPECT_EQ(view.stats().picks, 1);
  EXPECT_EQ(view.stats().two_choice_picks, 0);
}

TEST(NodeLoadViewTest, FailurePenaltyRepelsThenDecays) {
  NodeLoadView view(2, /*seed=*/11);
  for (int i = 0; i < 20; ++i) {
    for (NodeId n : {0, 1}) {
      view.StartRequest(n);
      view.FinishRequest(n, 1e-3);
    }
  }
  view.NoteFailure(0, /*penalty_seconds=*/2.0);
  EXPECT_GT(view.ExpectedSeconds(0), 100e-3);
  EXPECT_EQ(view.stats().failure_penalties, 1);
  std::vector<NodeId> candidates{0, 1};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(view.PickTwoChoices(candidates), 1);
  }
  // Successes decay the penalty back down (EWMA alpha 0.2).
  for (int i = 0; i < 100; ++i) {
    view.StartRequest(0);
    view.FinishRequest(0, 1e-3);
  }
  EXPECT_LT(view.ExpectedSeconds(0), 5e-3);
}

TEST(NodeLoadViewTest, ConcurrentUseIsClean) {
  NodeLoadView view(4, /*seed=*/1);
  std::vector<NodeId> candidates{0, 1, 2, 3};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&view, &candidates] {
      for (int i = 0; i < 2000; ++i) {
        NodeId n = view.PickTwoChoices(candidates);
        view.StartRequest(n);
        view.ObserveCostEstimates(n, 1e-3, 2e-3);
        view.FinishRequest(n, 1e-3);
      }
    });
  }
  for (auto& th : threads) th.join();
  NodeLoadViewStats s = view.stats();
  EXPECT_EQ(s.picks, 8 * 2000);
  EXPECT_EQ(s.latency_observations, 8 * 2000);
  for (NodeId n : candidates) EXPECT_EQ(view.Outstanding(n), 0);
}

}  // namespace
}  // namespace joinopt
