#include "joinopt/loadbalance/balancer.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

SizeParams CpuOnlySizes() {
  SizeParams s;
  s.sk = s.sp = s.sv = s.scv = 1;
  return s;
}

TEST(BalancerTest, AllAtDataMode) {
  Balancer b({MinimizerKind::kAllAtData, {}});
  EXPECT_EQ(b.ChooseComputedAtData({}, {}, {}, 50), 50);
}

TEST(BalancerTest, AllAtComputeMode) {
  Balancer b({MinimizerKind::kAllAtCompute, {}});
  EXPECT_EQ(b.ChooseComputedAtData({}, {}, {}, 50), 0);
}

TEST(BalancerTest, SplitsCpuBoundBatchEvenly) {
  ComputeNodeStats cn;
  cn.tcc = 0.1;
  cn.cores = 8;
  cn.net_bw = 1e12;
  DataNodeLocalStats dn;
  dn.tcd = 0.1;
  dn.cores = 8;
  dn.net_bw = 1e12;
  Balancer b;
  int64_t d = b.ChooseComputedAtData(cn, dn, CpuOnlySizes(), 100);
  EXPECT_NEAR(static_cast<double>(d), 50.0, 3.0);
}

TEST(BalancerTest, LoadedDataNodeReturnsMore) {
  ComputeNodeStats cn;
  cn.tcc = 0.1;
  cn.cores = 8;
  cn.net_bw = 1e12;
  DataNodeLocalStats dn;
  dn.tcd = 0.1;
  dn.cores = 8;
  dn.net_bw = 1e12;
  dn.rd_all = 500;  // deep local UDF queue
  Balancer b;
  int64_t d = b.ChooseComputedAtData(cn, dn, CpuOnlySizes(), 100);
  EXPECT_LT(d, 10);  // nearly everything bounced back
}

TEST(BalancerTest, LoadedComputeNodeKeepsWorkAtData) {
  ComputeNodeStats cn;
  cn.tcc = 0.1;
  cn.cores = 8;
  cn.net_bw = 1e12;
  cn.lcc = 500;  // compute node drowning in local work
  DataNodeLocalStats dn;
  dn.tcd = 0.1;
  dn.cores = 8;
  dn.net_bw = 1e12;
  Balancer b;
  int64_t d = b.ChooseComputedAtData(cn, dn, CpuOnlySizes(), 100);
  EXPECT_GT(d, 90);
}

TEST(BalancerTest, NetworkBoundBatchPrefersComputeAtData) {
  // Large stored values, tiny computed values, slow network: shipping raw
  // values back dominates — compute at the data node.
  ComputeNodeStats cn;
  cn.tcc = 1e-6;
  cn.cores = 8;
  cn.net_bw = 1e6;
  DataNodeLocalStats dn;
  dn.tcd = 1e-6;
  dn.cores = 8;
  dn.net_bw = 1e6;
  SizeParams s;
  s.sk = 16;
  s.sp = 64;
  s.sv = 100000;  // 100 KB stored values (the DH workload shape)
  s.scv = 100;
  Balancer b;
  int64_t d = b.ChooseComputedAtData(cn, dn, s, 100);
  EXPECT_GT(d, 90);
}

TEST(BalancerTest, StatsAccumulate) {
  Balancer b({MinimizerKind::kAllAtData, {}});
  b.ChooseComputedAtData({}, {}, {}, 10);
  b.ChooseComputedAtData({}, {}, {}, 20);
  EXPECT_EQ(b.stats().batches, 2);
  EXPECT_EQ(b.stats().requests_seen, 30);
  EXPECT_EQ(b.stats().computed_at_data, 30);
  EXPECT_EQ(b.stats().returned_to_compute, 0);
}

TEST(BalancerTest, ExactMinimizerAgreesWithGradientDescent) {
  ComputeNodeStats cn;
  cn.tcc = 0.05;
  cn.cores = 4;
  cn.net_bw = 1e9;
  DataNodeLocalStats dn;
  dn.tcd = 0.08;
  dn.cores = 8;
  dn.net_bw = 1e9;
  dn.rd_all = 40;
  SizeParams s;
  Balancer gd({MinimizerKind::kGradientDescent, {}});
  Balancer ex({MinimizerKind::kExact, {}});
  int64_t d_gd = gd.ChooseComputedAtData(cn, dn, s, 200);
  int64_t d_ex = ex.ChooseComputedAtData(cn, dn, s, 200);
  BatchLoadModel m = BuildLoadModel(cn, dn, s, 200);
  EXPECT_LE(m.CompletionTime(static_cast<double>(d_gd)),
            m.CompletionTime(static_cast<double>(d_ex)) * 1.05);
}

TEST(BalancerTest, ClampsToBatch) {
  Balancer b;
  int64_t d = b.ChooseComputedAtData({}, {}, {}, 0);
  EXPECT_EQ(d, 0);
}

}  // namespace
}  // namespace joinopt
